"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish parameter problems from runtime failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ParameterError(ReproError, ValueError):
    """A scheme or hardware parameter is malformed or unsupported."""


class KeyError_(ReproError, KeyError):
    """A required evaluation/rotation/bootstrapping key is missing."""


class LevelError(ReproError):
    """A ciphertext has too few remaining limbs for the requested op."""


class ScaleMismatchError(ReproError):
    """Two ciphertexts with incompatible scales were combined."""


class NoiseBudgetExceeded(ReproError):
    """Decryption noise exceeded the correctness bound."""
