"""Key material for CKKS: secret, public, relinearisation and Galois keys.

The switching keys follow the hybrid (dnum-digit) key-switching method
the paper builds on (Han & Ki [30]; paper Section VIII): the limb chain
is split into ``dnum`` digit groups, and for each group ``j`` the key
holds an encryption of ``P * Q_j_star * s_src`` under ``s``, over the
extended basis ``Q * P``.  ``d = dnum = 2`` matches the paper's
decomposition number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import KeyError_, ParameterError
from ..math.rns import RnsBasis, RnsPoly
from ..math.sampling import Sampler, mask_stream
from .context import CkksContext


class SecretKey:
    """Ternary secret held as integer coefficients; residues materialised
    lazily per basis (the same physical secret serves Q, P and Q*P)."""

    def __init__(self, coeffs: np.ndarray):
        self.coeffs = np.asarray(coeffs, dtype=object)
        self._cache: Dict[Tuple[int, ...], RnsPoly] = {}

    def on_basis(self, n: int, basis: RnsBasis) -> RnsPoly:
        key = tuple(basis.moduli)
        poly = self._cache.get(key)
        if poly is None:
            poly = RnsPoly.from_int_coeffs(n, basis, self.coeffs).to_eval()
            self._cache[key] = poly
        return poly

    def __repr__(self) -> str:
        """Redacted: dimension only, never the coefficient payload."""
        return f"SecretKey(n={len(self.coeffs)}, coeffs=<redacted>)"


@dataclass
class PublicKey:
    b: RnsPoly  # -a*s + e
    a: RnsPoly


@dataclass
class SwitchKey:
    """Hybrid switching key: one (b_j, a_j) pair per digit group.

    Two derived views are cached on the key (ARK's key-reuse insight:
    switching keys are long-lived, so anything derived from them should
    be computed once):

    * ``_restricted`` — per extended basis, the components' limb lists
      restricted to that basis (what the scalar inner product consumes);
    * ``_eval_tensors`` — per extended basis, the components stacked into
      one ``(L_ext, dnum, 2, N)`` int64 tensor for the batched engine's
      fused MAC.

    Both are keyed on the moduli tuple and excluded from equality/repr.
    """

    components: List[Tuple[RnsPoly, RnsPoly]]  # over extended basis Q*P, eval domain
    _restricted: Dict[Tuple[int, ...], List[Tuple[RnsPoly, RnsPoly]]] = field(
        default_factory=dict, repr=False, compare=False)
    _eval_tensors: Dict[Tuple[int, ...], np.ndarray] = field(
        default_factory=dict, repr=False, compare=False)
    #: Mask seed when generated seeded (the ``a_j`` halves replay from
    #: it); ``None`` for eager keys.  Treated as secret material by the
    #: lint rules — never format or log it.
    mask_seed: Optional[int] = field(default=None, repr=False, compare=False)

    def bodies(self) -> List[RnsPoly]:
        """Stored half of the seed+``b`` form, digit-group order."""
        return [b for b, _a in self.components]

    def restricted(self, ext: RnsBasis) -> List[Tuple[RnsPoly, RnsPoly]]:
        """Components with limbs restricted to ``ext`` (cached per basis).

        ``ext.moduli`` must be a prefix-compatible selection of the key
        basis: limb ``i`` of the restriction is the limb of the component
        at the position of ``ext.moduli[i]`` in the key's own basis.
        """
        cache_key = tuple(ext.moduli)
        cached = self._restricted.get(cache_key)
        if cached is None:
            full = self.components[0][0].basis
            pos = [full.moduli.index(q) for q in ext.moduli]
            cached = [
                (
                    RnsPoly(b.n, ext, [b.limbs[i] for i in pos], b.domain),
                    RnsPoly(a.n, ext, [a.limbs[i] for i in pos], a.domain),
                )
                for b, a in self.components
            ]
            self._restricted[cache_key] = cached
        return cached


@dataclass
class KeySet:
    """Everything a server-side evaluator needs."""

    public: PublicKey
    relin: Optional[SwitchKey] = None
    galois: Dict[int, SwitchKey] = field(default_factory=dict)

    def galois_key(self, t: int) -> SwitchKey:
        key = self.galois.get(t)
        if key is None:
            raise KeyError_(f"missing Galois key for automorphism exponent {t}")
        return key


class CkksKeyGenerator:
    """Generates all key material for a context."""

    def __init__(self, context: CkksContext, sampler: Optional[Sampler] = None):
        self.ctx = context
        self.sampler = sampler or Sampler()

    # -- secret / public ------------------------------------------------------------

    def secret_key(self) -> SecretKey:
        return SecretKey(self.sampler.ternary(self.ctx.n).astype(object))

    def public_key(self, sk: SecretKey) -> PublicKey:
        basis = self.ctx.full_basis
        n = self.ctx.n
        a = self._uniform_poly(n, basis)
        e = self._error_poly(n, basis)
        s = sk.on_basis(n, basis)
        b = (-(a * s)) + e.to_eval()
        return PublicKey(b=b, a=a)

    # -- switching keys -----------------------------------------------------------------

    def switch_key(self, sk_src: SecretKey, sk_dst: SecretKey,
                   mask_seed: Optional[int] = None) -> SwitchKey:
        """Key switching ``s_src -> s_dst`` over the extended basis.

        Component ``j`` encrypts ``P * Q_j_star * s_src`` where
        ``Q_j_star = Q / Q_j`` for digit group ``j``.

        With ``mask_seed`` the uniform ``a_j`` halves stream from a
        replayable seeded source (digit-group order, limbs in basis
        order) instead of the generator's sampler, so only the ``b_j``
        halves plus the seed need storing;
        :func:`expand_ckks_switch_key` rebuilds the key bit-identically.
        """
        ctx = self.ctx
        n = ctx.n
        ext = ctx.extended_basis
        p_prod = ctx.special_basis.product
        groups = ctx.digit_groups(ctx.max_level)
        s_dst = sk_dst.on_basis(n, ext)
        big_q = ctx.full_basis.product
        masks = mask_stream(mask_seed) if mask_seed is not None else None
        comps = []
        for group in groups:
            qj = 1
            for idx in group:
                qj *= ctx.full_basis.moduli[idx]
            qj_star = big_q // qj
            # CRT interpolation factor: qj_tilde = 1 (mod Q_j), 0 (mod Q/Q_j).
            qj_tilde = qj_star * pow(qj_star % qj, -1, qj)
            if masks is None:
                a = self._uniform_poly(n, ext)
            else:
                a = _uniform_poly_from(masks, n, ext)
            e = self._error_poly(n, ext)
            payload = RnsPoly.from_int_coeffs(
                n, ext, (sk_src.coeffs * (p_prod * qj_tilde)) % ext.product
            ).to_eval()
            b = (-(a * s_dst)) + e.to_eval() + payload
            comps.append((b, a))
        return SwitchKey(components=comps, mask_seed=mask_seed)

    def relin_key(self, sk: SecretKey) -> SwitchKey:
        """Switching key for ``s^2 -> s`` (used after Mult)."""
        # s^2 as integer coefficients: negacyclic square of the ternary vector.
        s2 = _negacyclic_int_mul(sk.coeffs, sk.coeffs)
        return self.switch_key(SecretKey(s2), sk)

    def galois_key(self, sk: SecretKey, t: int) -> SwitchKey:
        """Switching key for ``s(X^t) -> s`` (Rotate/Conjugate)."""
        rotated = _int_automorphism(sk.coeffs, t)
        return self.switch_key(SecretKey(rotated), sk)

    def keyset(self, sk: SecretKey, rotations: Optional[List[int]] = None,
               conjugate: bool = False) -> KeySet:
        """One-stop key generation for the evaluator."""
        ks = KeySet(public=self.public_key(sk), relin=self.relin_key(sk))
        two_n = 2 * self.ctx.n
        for r in rotations or []:
            t = pow(5, r % self.ctx.slots, two_n)
            ks.galois[t] = self.galois_key(sk, t)
        if conjugate:
            t = two_n - 1
            ks.galois[t] = self.galois_key(sk, t)
        return ks

    # -- sampling helpers ---------------------------------------------------------------

    def _uniform_poly(self, n: int, basis: RnsBasis) -> RnsPoly:
        limbs = [self.sampler.uniform(n, q) for q in basis.moduli]
        limbs = [e.asarray(limb) for e, limb in zip(basis.engines, limbs)]
        return RnsPoly(n, basis, limbs, "eval")

    def _error_poly(self, n: int, basis: RnsBasis) -> RnsPoly:
        e = self.sampler.gaussian(n, self.ctx.params.error_std).astype(object)
        return RnsPoly.from_int_coeffs(n, basis, e)


def _uniform_poly_from(rng: Sampler, n: int, basis: RnsBasis) -> RnsPoly:
    """Evaluation-domain uniform polynomial from a replayable stream
    (one ``uniform(n, q)`` call per limb, basis order)."""
    limbs = [e.asarray(rng.uniform(n, q))
             for e, q in zip(basis.engines, basis.moduli)]
    return RnsPoly(n, basis, limbs, "eval")


def expand_ckks_switch_key(mask_seed: int, bodies: List[RnsPoly],
                           ext: RnsBasis) -> SwitchKey:
    """Rebuild a seeded hybrid switch key from its seed and ``b_j`` halves.

    Replays exactly the ``a_j`` draws :meth:`CkksKeyGenerator.switch_key`
    made for ``mask_seed``, so the expansion is bit-identical to the key
    produced at keygen for every digit-group count (``dnum``)."""
    rng = mask_stream(mask_seed)
    n = bodies[0].n
    comps = [(b, _uniform_poly_from(rng, n, ext)) for b in bodies]
    return SwitchKey(components=comps, mask_seed=mask_seed)


# -- integer-coefficient helpers (exact, secret-key side only) ---------------------


def _negacyclic_int_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Exact negacyclic product of small integer vectors (object dtype)."""
    n = len(a)
    out = np.zeros(n, dtype=object)
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return out


def _int_automorphism(coeffs: np.ndarray, t: int) -> np.ndarray:
    """Apply ``X -> X^t`` to exact integer coefficients."""
    n = len(coeffs)
    if t % 2 == 0:
        raise ParameterError("automorphism exponent must be odd")
    out = np.zeros(n, dtype=object)
    for i in range(n):
        e = (i * t) % (2 * n)
        if e >= n:
            out[e - n] -= int(coeffs[i])
        else:
            out[e] += int(coeffs[i])
    return out
