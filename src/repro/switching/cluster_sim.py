"""Functional simulation of the multi-FPGA deployment (paper Section V).

A :class:`SimulatedCluster` runs the scheme-switching bootstrap with the
BlindRotate phase distributed over explicit :class:`SimulatedNode`
workers.  Ciphertexts cross node boundaries only in serialized,
CRC-framed form (through :mod:`repro.io`), so the simulation exercises a
real wire format and produces a per-link communication log that the
hardware model's CMAC accounting can be checked against.

Since the pipeline refactor the cluster is a *thin shell*: it plugs a
:class:`ClusterExecutor` into the one shared
:class:`~repro.switching.pipeline.BootstrapPipeline`, so steps 1-2 and
4-5 of Algorithm 2 execute the exact same code as the single-node
bootstrapper and every engine flag (``blind_rotate_engine`` /
``repack_engine``) is honoured on both paths — the output is
bit-identical for every combination (tests assert it), the basis of the
paper's claim that the approach "can be mapped to any system with
multiple compute nodes".

The primary follows the paper's send policy exactly — it "sends all the
ciphertexts intended for one of the secondary FPGAs before sending the
ciphertexts for the next one" — and extends it with a fault model the
fixed-fabric FPGA deployment never needed: a :class:`FaultInjector` can
crash a node mid-batch, drop or corrupt a reply blob, or delay a node
(straggler).  The dispatch + recovery loop itself lives in
:class:`~repro.switching.fanout.FaultTolerantFanout` (shared with the
real multiprocessing pool); this module supplies the simulated
transport: in-process :class:`SimulatedNode` calls with CRC frames,
retry traffic accounted separately on the :class:`CommLog`, and a typed
:class:`~repro.errors.ClusterExecutionError` when recovery is
exhausted.  :class:`CommLog`, :class:`Fault` and :class:`FaultInjector`
are re-exported from :mod:`repro.switching.fanout` for compatibility.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..errors import ParameterError, WireFormatError
from ..io import (
    deserialize_glwe,
    deserialize_lwe,
    deserialize_rns_poly,
    frame_blob,
    serialize_glwe,
    serialize_lwe,
    serialize_rns_poly,
    unframe_blob,
)
from ..tfhe.blind_rotate import blind_rotate_batch
from ..tfhe.glwe import GlweCiphertext
from ..tfhe.lwe import LweCiphertext
from .fanout import CommLog, Fault, FaultInjector, FaultTolerantFanout
from .keys import SwitchingKeySet
from .pipeline import BootstrapPipeline, BootstrapTrace, _registry_vector

__all__ = [
    "CommLog",
    "Fault",
    "FaultInjector",
    "SimulatedNode",
    "ClusterExecutor",
    "SimulatedCluster",
]


class _NodeCrash(Exception):
    """Internal signal: a simulated node died mid-batch (never escapes
    the executor — the primary sees it as a missing reply)."""


class SimulatedNode:
    """One compute node holding a copy of the public switching keys."""

    def __init__(self, node_id: int, keys: SwitchingKeySet, test_vector):
        self.node_id = node_id
        self.keys = keys
        self.test_vector = test_vector
        self.processed = 0
        #: Programmable LUTs installed over the wire, keyed by registry
        #: id — a node only ever sees a LUT as a CRC-framed blob.
        self._luts: Dict[str, object] = {}

    def install_lut(self, lut_id: str, blob: bytes) -> None:
        """Accept one CRC-framed serialized test vector from the primary
        (shipped once per node per LUT; cached for every later batch)."""
        self._luts[lut_id] = deserialize_rns_poly(unframe_blob(blob))

    def process(self, wire_lwes: List[bytes],
                engine: str = "vectorized",
                fail_after: Optional[int] = None,
                lut: Optional[str] = None) -> List[bytes]:
        """Unframe and deserialize the assigned batch, BlindRotate it on
        the selected engine (the batched §IV-E schedule), and return
        CRC-framed serialized accumulators.  ``fail_after`` simulates a
        crash after that many BlindRotates (the work is spent — it counts
        toward :attr:`processed` — but no reply is produced).  ``lut``
        selects a previously :meth:`install_lut`-ed test vector instead
        of the Algorithm-2 switching vector."""
        if lut is None:
            tv = self.test_vector
        elif lut in self._luts:
            tv = self._luts[lut]
        else:
            raise ParameterError(
                f"node {self.node_id}: LUT {lut!r} was never installed")
        lwes = [deserialize_lwe(unframe_blob(b)) for b in wire_lwes]
        if fail_after is not None and fail_after < len(lwes):
            if fail_after:
                blind_rotate_batch(tv, lwes[:fail_after],
                                   self.keys.brk, engine=engine)
                self.processed += fail_after
            raise _NodeCrash(self.node_id)
        accs = blind_rotate_batch(tv, lwes, self.keys.brk,
                                  engine=engine)
        self.processed += len(accs)
        return [frame_blob(serialize_glwe(a)) for a in accs]


class ClusterExecutor(FaultTolerantFanout):
    """The fan-out stage over simulated message-passing nodes.

    Inherits the dispatch + recovery loop from
    :class:`~repro.switching.fanout.FaultTolerantFanout` and supplies
    the simulated transport: each slice is serialized, CRC-framed and
    "sent" to a :class:`SimulatedNode` by direct call; crash faults
    (``crash`` and ``kill_worker`` are equivalent here) surface as a
    missing reply, stragglers as simulated latency against
    ``straggler_timeout``, and drop/corrupt faults mutate the reply
    blobs so the primary's CRC/count validation catches them.
    """

    def __init__(self, nodes: Sequence[SimulatedNode], comm: CommLog,
                 fault_injector: Optional[FaultInjector] = None,
                 blind_rotate_engine: str = "vectorized",
                 straggler_timeout: float = 30.0,
                 max_retries: Optional[int] = None,
                 keys: Optional[SwitchingKeySet] = None):
        self.nodes = list(nodes)
        self.comm = comm
        self.injector = fault_injector if fault_injector is not None \
            else FaultInjector()
        self.blind_rotate_engine = blind_rotate_engine
        #: Simulated seconds after which a delayed node is presumed dead.
        self.straggler_timeout = straggler_timeout
        self.max_retries = max_retries
        #: Key set whose LUT registry programmable batches resolve
        #: against (defaults to the first node's copy).
        self.keys = keys if keys is not None \
            else (self.nodes[0].keys if self.nodes else None)
        #: ``(node_id, lut_id)`` pairs already shipped — a LUT crosses
        #: each link once, then lives in the node's cache.
        self._lut_shipped: set = set()

    # -- FaultTolerantFanout contract -----------------------------------------

    def _workers(self) -> Dict[int, SimulatedNode]:
        return {node.node_id: node for node in self.nodes}

    def _load(self, handle: SimulatedNode) -> int:
        return handle.processed

    def _dispatch(self, handle: SimulatedNode, start: int, stop: int,
                  lwes: Sequence[LweCiphertext],
                  results: List[Optional[GlweCiphertext]],
                  healthy: Dict[int, SimulatedNode],
                  trace: BootstrapTrace, retry: bool) -> bool:
        """Send one contiguous slice, validate the reply, splice the
        accumulators into ``results``.  Returns False on any detected
        failure (the caller queues the slice for re-dispatch)."""
        nid = handle.node_id
        lut = self._lut
        if lut is not None and (nid, lut) not in self._lut_shipped:
            # First use of this LUT on this node: ship the test vector
            # CRC-framed, exactly like key material would travel.
            lut_blob = frame_blob(serialize_rns_poly(
                _registry_vector(self.keys, lut)))
            if nid != 0:
                self.comm.record(0, nid, lut_blob, retry=retry)
            handle.install_lut(lut, lut_blob)
            self._lut_shipped.add((nid, lut))
        wire_in = [frame_blob(serialize_lwe(lwe)) for lwe in lwes[start:stop]]
        if nid != 0:  # the primary's own slice never crosses the wire
            for blob in wire_in:
                self.comm.record(0, nid, blob, retry=retry)

        # Only realisable faults are consumed: a crash scheduled beyond
        # this slice's length stays queued for a later (longer) slice.
        crash = self.injector.take_any(nid, "crash", "kill_worker",
                                       slice_len=stop - start)
        t0 = time.perf_counter()
        try:
            wire_out = handle.process(wire_in,
                                      engine=self.blind_rotate_engine,
                                      fail_after=crash.after if crash else None,
                                      lut=lut)
        except _NodeCrash:
            self._add_time(trace, nid, time.perf_counter() - t0)
            self._mark_dead(nid, healthy, trace, "crashed mid-batch")
            return False
        elapsed = time.perf_counter() - t0

        straggle = self.injector.take(nid, "straggle")
        if straggle is not None:
            elapsed += straggle.delay_seconds
        self._add_time(trace, nid, elapsed)
        if straggle is not None and \
                straggle.delay_seconds > self.straggler_timeout:
            self._mark_dead(
                nid, healthy, trace,
                f"timed out ({straggle.delay_seconds:.3f}s simulated > "
                f"{self.straggler_timeout:.3f}s limit)")
            return False

        drop = self.injector.take(nid, "drop_reply")
        if drop is not None and wire_out:
            del wire_out[min(drop.reply_index, len(wire_out) - 1)]
        corrupt = self.injector.take(nid, "corrupt_reply")
        if corrupt is not None and wire_out:
            i = min(corrupt.reply_index, len(wire_out) - 1)
            blob = bytearray(wire_out[i])
            blob[-1] ^= 0x41
            wire_out[i] = bytes(blob)

        if nid != 0:
            for blob in wire_out:
                self.comm.record(nid, 0, blob, retry=retry)

        if len(wire_out) != stop - start:
            trace.notes.append(
                f"node {nid}: short reply ({len(wire_out)} of "
                f"{stop - start}) — slice queued for re-dispatch")
            return False
        try:
            accs = [deserialize_glwe(unframe_blob(b)) for b in wire_out]
        except WireFormatError:
            trace.notes.append(
                f"node {nid}: reply failed CRC check — slice queued for "
                f"re-dispatch")
            return False
        results[start:stop] = accs
        return True


class SimulatedCluster:
    """Primary + secondaries executing the distributed bootstrap — a thin
    shell over the shared pipeline with a :class:`ClusterExecutor` in the
    fan-out stage."""

    def __init__(self, ctx: CkksContext, keys: SwitchingKeySet,
                 num_nodes: int = 8,
                 blind_rotate_engine: str = "vectorized",
                 repack_engine: str = "vectorized",
                 fault_injector: Optional[FaultInjector] = None,
                 straggler_timeout: float = 30.0,
                 max_retries: Optional[int] = None):
        if num_nodes < 1:
            raise ParameterError("need at least one node")
        self.ctx = ctx
        self.keys = keys
        test_vector = keys.test_vector(ctx.n, ctx.full_basis.moduli[0])
        self.nodes = [SimulatedNode(i, keys, test_vector)
                      for i in range(num_nodes)]
        self.comm = CommLog()
        self.executor = ClusterExecutor(
            self.nodes, self.comm, fault_injector=fault_injector,
            blind_rotate_engine=blind_rotate_engine,
            straggler_timeout=straggler_timeout, max_retries=max_retries,
            keys=keys)
        self.pipeline = BootstrapPipeline(ctx, keys, executor=self.executor,
                                          repack_engine=repack_engine)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def bootstrap(self, ct: CkksCiphertext,
                  trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Distributed Algorithm 2; output bit-identical to the
        single-node bootstrapper's, including runs with injected faults
        (recovery re-dispatches, the result is unchanged)."""
        return self.pipeline.run(ct, trace)

    def pbs(self, ct: CkksCiphertext, f,
            trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Distributed programmable bootstrap: ``f``'s LUT ships to each
        node once (CRC-framed, logged on :attr:`comm`) and the fan-out
        runs the same recovery loop as :meth:`bootstrap` — output
        bit-identical to the local executor's."""
        return self.pipeline.run_pbs(ct, f, trace)

    def utilisation(self) -> Dict[int, int]:
        """BlindRotates executed per node (includes work a node spent on
        a batch it crashed out of — the cycles are burned either way)."""
        return {node.node_id: node.processed for node in self.nodes}
