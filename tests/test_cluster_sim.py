"""Tests for the message-passing multi-node bootstrap simulation."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet
from repro.switching.cluster_sim import SimulatedCluster

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(501))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(502))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(503), base_bits=4,
                                   error_std=0.8)
    return ctx, sk, ev, swk


class TestDistributedBootstrap:
    def test_bit_identical_to_single_node(self, stack):
        """The hardware-agnostic claim: the distributed execution is the
        same computation, byte for byte."""
        ctx, sk, ev, swk = stack
        z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        reference = SchemeSwitchBootstrapper(ctx, swk).bootstrap(ct)
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        distributed = cluster.bootstrap(ct)
        for ref_l, got_l in zip(reference.c0.to_coeff().limbs,
                                distributed.c0.to_coeff().limbs):
            assert ref_l.tolist() == got_l.tolist()
        for ref_l, got_l in zip(reference.c1.to_coeff().limbs,
                                distributed.c1.to_coeff().limbs):
            assert ref_l.tolist() == got_l.tolist()

    def test_decrypts_correctly(self, stack):
        ctx, sk, ev, swk = stack
        z = np.random.default_rng(1).uniform(-1, 1, ctx.slots)
        cluster = SimulatedCluster(ctx, swk, num_nodes=2)
        out = cluster.bootstrap(ev.encrypt(z, level=0))
        assert np.allclose(ev.decrypt(out, sk).real, z, atol=0.05)

    def test_work_distribution(self, stack):
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        cluster.bootstrap(ev.encrypt(0.2, level=0))
        util = cluster.utilisation()
        assert sum(util.values()) == ctx.n
        assert max(util.values()) - min(util.values()) <= 1  # balanced

    def test_single_node_has_no_traffic(self, stack):
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=1)
        cluster.bootstrap(ev.encrypt(0.2, level=0))
        assert cluster.comm.total_bytes() == 0

    def test_comm_log_structure(self, stack):
        """Every secondary receives its LWE batch from the primary and
        returns one accumulator per BlindRotate."""
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        cluster.bootstrap(ev.encrypt(0.2, level=0))
        per_node = ctx.n // 4
        for node_id in (1, 2, 3):
            assert cluster.comm.messages[(0, node_id)] == per_node
            assert cluster.comm.messages[(node_id, 0)] == per_node
            # Results (RLWE over Qp) are much bigger than the 2N-modulus
            # LWE inputs — the paper's asymmetric traffic pattern.
            assert (cluster.comm.link_bytes(node_id, 0) >
                    10 * cluster.comm.link_bytes(0, node_id))

    def test_invalid_config(self, stack):
        ctx, sk, ev, swk = stack
        with pytest.raises(ParameterError):
            SimulatedCluster(ctx, swk, num_nodes=0)
        cluster = SimulatedCluster(ctx, swk, num_nodes=2)
        with pytest.raises(ParameterError):
            cluster.bootstrap(ev.encrypt(0.1))  # not level 0
