"""Partitioning of BlindRotate work over multiple compute nodes.

Section V: one primary node distributes the LWE ciphertexts to the
secondaries, every node runs its share of BlindRotates (512 per FPGA for
a fully-packed bootstrap on eight FPGAs), and the results stream back to
the primary for repacking.  The schedule below reproduces that policy —
contiguous blocks, primary sends one node's full batch before the next
(Section V: "sends all the ciphertexts intended for one of the secondary
FPGAs before sending the ciphertexts for the next one") — and is used
both by the functional multi-node simulation and by the hardware
performance model.

``n_br`` is the paper's knob for sparsely-packed ciphertexts: the number
of BlindRotate operations actually scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, TypeVar

from ..errors import ParameterError

T = TypeVar("T")


@dataclass(frozen=True)
class NodeAssignment:
    """The contiguous slice of BlindRotates a node executes."""

    node_id: int
    start: int
    count: int
    is_primary: bool

    @property
    def stop(self) -> int:
        return self.start + self.count


@dataclass(frozen=True)
class BootstrapSchedule:
    """A full multi-node schedule for ``n_br`` BlindRotates."""

    n_br: int
    nodes: List[NodeAssignment]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def max_per_node(self) -> int:
        return max(a.count for a in self.nodes)

    def slices(self, items: Sequence[T]) -> List[Sequence[T]]:
        """Split a work list according to the schedule."""
        if len(items) != self.n_br:
            raise ParameterError(
                f"schedule built for {self.n_br} items, got {len(items)}")
        return [items[a.start: a.stop] for a in self.nodes]


def make_schedule(n_br: int, num_nodes: int) -> BootstrapSchedule:
    """Distribute ``n_br`` BlindRotates as evenly as possible.

    The primary (node 0) both coordinates and computes, as in the paper's
    eight-FPGA deployment.
    """
    if n_br < 1:
        raise ParameterError("n_br must be positive")
    if num_nodes < 1:
        raise ParameterError("need at least one node")
    base = n_br // num_nodes
    extra = n_br % num_nodes
    nodes = []
    start = 0
    for node in range(num_nodes):
        count = base + (1 if node < extra else 0)
        nodes.append(NodeAssignment(node_id=node, start=start, count=count,
                                    is_primary=(node == 0)))
        start += count
    return BootstrapSchedule(n_br=n_br, nodes=nodes)


def pick_recovery_node(healthy: Sequence[int], loads: Mapping[int, int],
                       exclude: Optional[int] = None) -> int:
    """Choose the node to receive a re-dispatched fan-out slice.

    Extends the Section-V send policy to recovery: the whole contiguous
    slice goes to *one* surviving node — the least-loaded healthy one
    (ties broken by lowest id, keeping utilisation balanced), avoiding
    ``exclude`` (the node whose dispatch just failed) unless it is the
    only survivor.  Raises :class:`~repro.errors.ParameterError` when no
    healthy node remains (the executor converts that into a typed
    :class:`~repro.errors.ClusterExecutionError`).
    """
    if not healthy:
        raise ParameterError("no healthy node remains to re-dispatch to")
    candidates = [node for node in healthy if node != exclude] or list(healthy)
    return min(candidates, key=lambda node: (loads.get(node, 0), node))
