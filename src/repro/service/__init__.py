"""Async bootstrap serving: cross-user batch coalescing over the
fan-out executors, byte-accounted per-user key residency, bounded-queue
backpressure.  See :mod:`repro.service.service` for the architecture."""

from .key_cache import KeyCacheEntry, LruKeyCache, UserKeys
from .service import BootstrapService, ServiceTrace, pool_executor_factory

__all__ = [
    "BootstrapService",
    "ServiceTrace",
    "UserKeys",
    "LruKeyCache",
    "KeyCacheEntry",
    "pool_executor_factory",
]
