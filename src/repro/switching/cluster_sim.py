"""Functional simulation of the multi-FPGA deployment (paper Section V).

A :class:`SimulatedCluster` runs the scheme-switching bootstrap with the
BlindRotate phase distributed over explicit :class:`SimulatedNode`
workers.  Ciphertexts cross node boundaries only in serialized,
CRC-framed form (through :mod:`repro.io`), so the simulation exercises a
real wire format and produces a per-link communication log that the
hardware model's CMAC accounting can be checked against.

Since the pipeline refactor the cluster is a *thin shell*: it plugs a
:class:`ClusterExecutor` into the one shared
:class:`~repro.switching.pipeline.BootstrapPipeline`, so steps 1-2 and
4-5 of Algorithm 2 execute the exact same code as the single-node
bootstrapper and every engine flag (``blind_rotate_engine`` /
``repack_engine``) is honoured on both paths — the output is
bit-identical for every combination (tests assert it), the basis of the
paper's claim that the approach "can be mapped to any system with
multiple compute nodes".

The primary follows the paper's send policy exactly — it "sends all the
ciphertexts intended for one of the secondary FPGAs before sending the
ciphertexts for the next one" — and extends it with a fault model the
fixed-fabric FPGA deployment never needed: a :class:`FaultInjector` can
crash a node mid-batch, drop or corrupt a reply blob, or delay a node
(straggler).  The primary detects failures via the CRC frames, reply
counts and a straggler timeout, re-dispatches the failed *contiguous
slice* to the least-loaded surviving node, accounts the retry traffic
separately in :class:`CommLog`, and raises a typed
:class:`~repro.errors.ClusterExecutionError` only when no healthy node
remains (or the retry budget is exhausted by persistent faults).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..errors import ClusterExecutionError, ParameterError, WireFormatError
from ..io import (
    deserialize_glwe,
    deserialize_lwe,
    frame_blob,
    serialize_glwe,
    serialize_lwe,
    unframe_blob,
)
from ..profiling import record_fanout
from ..tfhe.blind_rotate import blind_rotate_batch
from ..tfhe.glwe import GlweCiphertext
from ..tfhe.lwe import LweCiphertext
from .keys import SwitchingKeySet
from .pipeline import BootstrapPipeline, BootstrapTrace
from .scheduler import make_schedule, pick_recovery_node


@dataclass
class CommLog:
    """Bytes and message counts per (src, dst) link.

    First-attempt and recovery traffic are accounted *separately*:
    ``record(..., retry=True)`` adds to the grand totals **and** to the
    ``retry_*`` breakdowns, so :meth:`total_bytes` is everything that
    crossed the wire and :meth:`total_retry_bytes` the share caused by
    fault recovery.
    """

    bytes_sent: Dict[tuple, int] = field(default_factory=dict)
    messages: Dict[tuple, int] = field(default_factory=dict)
    retry_bytes: Dict[tuple, int] = field(default_factory=dict)
    retry_messages: Dict[tuple, int] = field(default_factory=dict)

    def record(self, src: int, dst: int, payload: bytes,
               retry: bool = False) -> None:
        key = (src, dst)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0) + len(payload)
        self.messages[key] = self.messages.get(key, 0) + 1
        if retry:
            self.retry_bytes[key] = self.retry_bytes.get(key, 0) + len(payload)
            self.retry_messages[key] = self.retry_messages.get(key, 0) + 1

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def link_bytes(self, src: int, dst: int) -> int:
        return self.bytes_sent.get((src, dst), 0)

    def total_retry_bytes(self) -> int:
        return sum(self.retry_bytes.values())

    def retry_link_bytes(self, src: int, dst: int) -> int:
        return self.retry_bytes.get((src, dst), 0)


@dataclass
class Fault:
    """One injected fault against a node.

    ``kind`` is one of ``"crash"`` (die after ``after`` BlindRotates of
    the incoming batch), ``"drop_reply"`` / ``"corrupt_reply"`` (lose or
    bit-flip reply blob ``reply_index``), or ``"straggle"`` (add
    ``delay_seconds`` of simulated latency — a timeout failure if it
    exceeds the executor's ``straggler_timeout``).  Non-persistent faults
    fire exactly once, so recovery succeeds; ``persistent=True`` models a
    node that stays broken.
    """

    kind: str
    node_id: int
    after: int = 0
    reply_index: int = 0
    delay_seconds: float = 0.0
    persistent: bool = False

    @classmethod
    def crash(cls, node_id: int, after: int = 0,
              persistent: bool = False) -> "Fault":
        return cls("crash", node_id, after=after, persistent=persistent)

    @classmethod
    def drop_reply(cls, node_id: int, index: int = 0,
                   persistent: bool = False) -> "Fault":
        return cls("drop_reply", node_id, reply_index=index,
                   persistent=persistent)

    @classmethod
    def corrupt_reply(cls, node_id: int, index: int = 0,
                      persistent: bool = False) -> "Fault":
        return cls("corrupt_reply", node_id, reply_index=index,
                   persistent=persistent)

    @classmethod
    def straggler(cls, node_id: int, delay_seconds: float,
                  persistent: bool = False) -> "Fault":
        return cls("straggle", node_id, delay_seconds=delay_seconds,
                   persistent=persistent)


class FaultInjector:
    """Deterministic fault source the :class:`ClusterExecutor` consults.

    Holds a list of :class:`Fault` specs; :meth:`take` pops the first
    matching non-persistent fault (persistent ones keep firing).  An
    empty injector is a no-op — the default, fault-free execution.
    """

    def __init__(self, faults: Sequence[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    def take(self, node_id: int, kind: str) -> Optional[Fault]:
        for i, fault in enumerate(self.faults):
            if fault.node_id == node_id and fault.kind == kind:
                if not fault.persistent:
                    del self.faults[i]
                return fault
        return None


class _NodeCrash(Exception):
    """Internal signal: a simulated node died mid-batch (never escapes
    the executor — the primary sees it as a missing reply)."""


class SimulatedNode:
    """One compute node holding a copy of the public switching keys."""

    def __init__(self, node_id: int, keys: SwitchingKeySet, test_vector):
        self.node_id = node_id
        self.keys = keys
        self.test_vector = test_vector
        self.processed = 0

    def process(self, wire_lwes: List[bytes],
                engine: str = "vectorized",
                fail_after: Optional[int] = None) -> List[bytes]:
        """Unframe and deserialize the assigned batch, BlindRotate it on
        the selected engine (the batched §IV-E schedule), and return
        CRC-framed serialized accumulators.  ``fail_after`` simulates a
        crash after that many BlindRotates (the work is spent — it counts
        toward :attr:`processed` — but no reply is produced)."""
        lwes = [deserialize_lwe(unframe_blob(b)) for b in wire_lwes]
        if fail_after is not None and fail_after < len(lwes):
            if fail_after:
                blind_rotate_batch(self.test_vector, lwes[:fail_after],
                                   self.keys.brk, engine=engine)
                self.processed += fail_after
            raise _NodeCrash(self.node_id)
        accs = blind_rotate_batch(self.test_vector, lwes, self.keys.brk,
                                  engine=engine)
        self.processed += len(accs)
        return [frame_blob(serialize_glwe(a)) for a in accs]


class ClusterExecutor:
    """The fan-out stage over simulated message-passing nodes, with
    primary-side failure detection and recovery.

    First pass: the paper's send policy — each node's full contiguous
    slice is serialized, framed and sent before the next node's.  Any
    slice whose reply fails validation (crash, timeout, short reply, CRC
    mismatch) is queued and re-dispatched whole to the least-loaded
    surviving node (:func:`~repro.switching.scheduler.pick_recovery_node`);
    retry traffic is recorded separately on the :class:`CommLog` and the
    retry counters land on the :class:`~repro.switching.pipeline.
    BootstrapTrace` plus the active :func:`~repro.profiling.count_ops`
    region.
    """

    def __init__(self, nodes: Sequence[SimulatedNode], comm: CommLog,
                 fault_injector: Optional[FaultInjector] = None,
                 blind_rotate_engine: str = "vectorized",
                 straggler_timeout: float = 30.0,
                 max_retries: Optional[int] = None):
        self.nodes = list(nodes)
        self.comm = comm
        self.injector = fault_injector if fault_injector is not None \
            else FaultInjector()
        self.blind_rotate_engine = blind_rotate_engine
        #: Simulated seconds after which a delayed node is presumed dead.
        self.straggler_timeout = straggler_timeout
        #: Re-dispatch budget per fan-out (defaults to 4x the node count);
        #: exhausting it — only possible with persistent faults on healthy
        #: nodes — raises ClusterExecutionError instead of looping forever.
        self.max_retries = max_retries

    def fanout(self, lwes: Sequence[LweCiphertext],
               trace: BootstrapTrace) -> List[GlweCiphertext]:
        schedule = make_schedule(len(lwes), len(self.nodes))
        results: List[Optional[GlweCiphertext]] = [None] * len(lwes)
        healthy: Dict[int, SimulatedNode] = {
            node.node_id: node for node in self.nodes}
        failed: List[Tuple[int, int, int]] = []  # (start, stop, failed node)

        # First pass: the Section-V send policy, one node's full slice
        # before the next.
        for assignment in schedule.nodes:
            if assignment.count == 0:
                continue
            node = healthy[assignment.node_id]
            record_fanout(dispatches=1)
            if not self._dispatch(node, assignment.start, assignment.stop,
                                  lwes, results, healthy, trace, retry=False):
                failed.append((assignment.start, assignment.stop,
                               assignment.node_id))

        # Recovery: re-dispatch each failed contiguous slice whole.
        budget = self.max_retries if self.max_retries is not None \
            else 4 * len(self.nodes)
        while failed:
            if not healthy:
                raise ClusterExecutionError(
                    f"fan-out failed: no healthy node remains for "
                    f"{len(failed)} pending slice(s)",
                    failed_nodes=trace.failed_nodes,
                    pending_slices=[(s, e) for s, e, _ in failed])
            if trace.fanout_retries >= budget:
                raise ClusterExecutionError(
                    f"fan-out failed: retry budget ({budget}) exhausted "
                    f"with {len(failed)} pending slice(s)",
                    failed_nodes=trace.failed_nodes,
                    pending_slices=[(s, e) for s, e, _ in failed])
            start, stop, origin = failed.pop(0)
            loads = {nid: node.processed for nid, node in healthy.items()}
            target = healthy[pick_recovery_node(list(healthy), loads,
                                                exclude=origin)]
            trace.fanout_retries += 1
            trace.fanout_redispatched_lwes += stop - start
            record_fanout(retries=1, redispatched_lwes=stop - start)
            trace.notes.append(
                f"re-dispatching LWEs [{start}, {stop}) from node "
                f"{origin} to node {target.node_id}")
            if not self._dispatch(target, start, stop, lwes, results,
                                  healthy, trace, retry=True):
                failed.append((start, stop, target.node_id))
        # Recovery guarantees completeness: every slot is filled.
        return [acc for acc in results if acc is not None]

    # -- one slice ------------------------------------------------------------

    def _dispatch(self, node: SimulatedNode, start: int, stop: int,
                  lwes: Sequence[LweCiphertext],
                  results: List[Optional[GlweCiphertext]],
                  healthy: Dict[int, SimulatedNode],
                  trace: BootstrapTrace, retry: bool) -> bool:
        """Send one contiguous slice, validate the reply, splice the
        accumulators into ``results``.  Returns False on any detected
        failure (the caller queues the slice for re-dispatch)."""
        nid = node.node_id
        wire_in = [frame_blob(serialize_lwe(lwe)) for lwe in lwes[start:stop]]
        if nid != 0:  # the primary's own slice never crosses the wire
            for blob in wire_in:
                self.comm.record(0, nid, blob, retry=retry)

        crash = self.injector.take(nid, "crash")
        t0 = time.perf_counter()
        try:
            wire_out = node.process(wire_in, engine=self.blind_rotate_engine,
                                    fail_after=crash.after if crash else None)
        except _NodeCrash:
            self._add_time(trace, nid, time.perf_counter() - t0)
            self._mark_dead(nid, healthy, trace, "crashed mid-batch")
            return False
        elapsed = time.perf_counter() - t0

        straggle = self.injector.take(nid, "straggle")
        if straggle is not None:
            elapsed += straggle.delay_seconds
        self._add_time(trace, nid, elapsed)
        if straggle is not None and \
                straggle.delay_seconds > self.straggler_timeout:
            self._mark_dead(
                nid, healthy, trace,
                f"timed out ({straggle.delay_seconds:.3f}s simulated > "
                f"{self.straggler_timeout:.3f}s limit)")
            return False

        drop = self.injector.take(nid, "drop_reply")
        if drop is not None and wire_out:
            del wire_out[min(drop.reply_index, len(wire_out) - 1)]
        corrupt = self.injector.take(nid, "corrupt_reply")
        if corrupt is not None and wire_out:
            i = min(corrupt.reply_index, len(wire_out) - 1)
            blob = bytearray(wire_out[i])
            blob[-1] ^= 0x41
            wire_out[i] = bytes(blob)

        if nid != 0:
            for blob in wire_out:
                self.comm.record(nid, 0, blob, retry=retry)

        if len(wire_out) != stop - start:
            trace.notes.append(
                f"node {nid}: short reply ({len(wire_out)} of "
                f"{stop - start}) — slice queued for re-dispatch")
            return False
        try:
            accs = [deserialize_glwe(unframe_blob(b)) for b in wire_out]
        except WireFormatError:
            trace.notes.append(
                f"node {nid}: reply failed CRC check — slice queued for "
                f"re-dispatch")
            return False
        results[start:stop] = accs
        return True

    @staticmethod
    def _add_time(trace: BootstrapTrace, nid: int, seconds: float) -> None:
        trace.node_seconds[nid] = trace.node_seconds.get(nid, 0.0) + seconds

    @staticmethod
    def _mark_dead(nid: int, healthy: Dict[int, SimulatedNode],
                   trace: BootstrapTrace, why: str) -> None:
        healthy.pop(nid, None)
        if nid not in trace.failed_nodes:
            trace.failed_nodes.append(nid)
        trace.notes.append(f"node {nid} {why}")


class SimulatedCluster:
    """Primary + secondaries executing the distributed bootstrap — a thin
    shell over the shared pipeline with a :class:`ClusterExecutor` in the
    fan-out stage."""

    def __init__(self, ctx: CkksContext, keys: SwitchingKeySet,
                 num_nodes: int = 8,
                 blind_rotate_engine: str = "vectorized",
                 repack_engine: str = "vectorized",
                 fault_injector: Optional[FaultInjector] = None,
                 straggler_timeout: float = 30.0,
                 max_retries: Optional[int] = None):
        if num_nodes < 1:
            raise ParameterError("need at least one node")
        self.ctx = ctx
        self.keys = keys
        test_vector = keys.test_vector(ctx.n, ctx.full_basis.moduli[0])
        self.nodes = [SimulatedNode(i, keys, test_vector)
                      for i in range(num_nodes)]
        self.comm = CommLog()
        self.executor = ClusterExecutor(
            self.nodes, self.comm, fault_injector=fault_injector,
            blind_rotate_engine=blind_rotate_engine,
            straggler_timeout=straggler_timeout, max_retries=max_retries)
        self.pipeline = BootstrapPipeline(ctx, keys, executor=self.executor,
                                          repack_engine=repack_engine)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def bootstrap(self, ct: CkksCiphertext,
                  trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Distributed Algorithm 2; output bit-identical to the
        single-node bootstrapper's, including runs with injected faults
        (recovery re-dispatches, the result is unchanged)."""
        return self.pipeline.run(ct, trace)

    def utilisation(self) -> Dict[int, int]:
        """BlindRotates executed per node (includes work a node spent on
        a batch it crashed out of — the cycles are burned either way)."""
        return {node.node_id: node.processed for node in self.nodes}
