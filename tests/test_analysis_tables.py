"""Tests for the table generators: every paper table regenerates and the
qualitative conclusions ("who wins") match the paper."""

import pytest

from repro.analysis import (
    format_table,
    key_size_table,
    table2_resources,
    table3_basic_ops,
    table4_ntt,
    table5_bootstrap,
    table6_lr,
    table7_resnet,
    table8_ablation,
)
from repro.hardware import ClusterBootstrapModel, SingleFpgaModel


@pytest.fixture(scope="module")
def models():
    return SingleFpgaModel(), ClusterBootstrapModel()


def row_by(rows, key, value):
    for r in rows:
        if r[key] == value:
            return r
    raise KeyError(value)


class TestTable2:
    def test_matches_paper_exactly(self):
        headers, rows = table2_resources()
        for r in rows:
            assert r["Utilized (model)"] == r["Utilized (paper)"]

    def test_percentages(self):
        _, rows = table2_resources()
        lut = row_by(rows, "Resource", "LUTs")
        assert lut["% Utilization"] == pytest.approx(77.61, abs=0.05)


class TestTable3:
    def test_heap_wins_every_op(self, models):
        fpga, _ = models
        _, rows = table3_basic_ops(fpga)
        for r in rows:
            for col in ("vs FAB", "vs GPU", "vs GME", "vs TFHE"):
                if r[col] is not None:
                    assert r[col] > 1, (r["Operation"], col)

    def test_speedups_match_paper_order_of_magnitude(self, models):
        fpga, _ = models
        _, rows = table3_basic_ops(fpga)
        for r in rows:
            pairs = [("vs FAB", "paper vs FAB"), ("vs GPU", "paper vs GPU"),
                     ("vs GME", "paper vs GME"), ("vs TFHE", "paper vs TFHE")]
            for model_col, paper_col in pairs:
                if r.get(model_col) is not None and r.get(paper_col) is not None:
                    ratio = r[model_col] / r[paper_col]
                    assert 0.5 < ratio < 2.0, (r["Operation"], model_col)


class TestTable4:
    def test_ntt_speedups(self):
        _, rows = table4_ntt()
        fab = row_by(rows, "System", "FAB")
        heax = row_by(rows, "System", "HEAX")
        assert fab["HEAP speedup (model)"] == pytest.approx(2.04, abs=0.05)
        assert heax["HEAP speedup (model)"] == pytest.approx(2.34, abs=0.05)


class TestTable5:
    def test_win_loss_pattern_matches_paper(self, models):
        """HEAP beats CPU/GPU/F1/BTS-2/CL/FAB and loses to ARK and SHARP
        in absolute time — exactly the paper's pattern."""
        fpga, cluster = models
        _, rows = table5_bootstrap(fpga, cluster)
        wins = ("Lattigo", "GPU", "F1", "CraterLake", "FAB")
        losses = ("ARK", "SHARP")
        for name in wins:
            assert row_by(rows, "Work", name)["Speedup time (model)"] > 1, name
        for name in losses:
            assert row_by(rows, "Work", name)["Speedup time (model)"] < 1, name

    def test_fab_speedup_direction(self, models):
        """The headline claim: HEAP decisively beats the prior FPGA
        state of the art (paper: 15.4x; our Eq.-3-faithful model: ~6x —
        see EXPERIMENTS.md for the 2.6x metric discrepancy)."""
        fpga, cluster = models
        _, rows = table5_bootstrap(fpga, cluster)
        assert row_by(rows, "Work", "FAB")["Speedup time (model)"] > 4

    def test_cycle_speedups_exceed_time_speedups_for_fast_clocks(self, models):
        fpga, cluster = models
        _, rows = table5_bootstrap(fpga, cluster)
        for r in rows:
            if r["Work"] in ("ARK", "SHARP", "BTS-2", "GME", "GPU"):
                assert r["Speedup cycles (model)"] > r["Speedup time (model)"]


class TestTable6:
    def test_win_loss_pattern(self, models):
        fpga, cluster = models
        _, rows = table6_lr(fpga, cluster)
        for name in ("Lattigo", "GPU", "GME", "F1", "BTS-2", "FAB", "FAB-2"):
            assert row_by(rows, "Work", name)["Speedup time (model)"] > 1, name
        assert row_by(rows, "Work", "SHARP")["Speedup time (model)"] < 1

    def test_heap_iteration_time_near_paper(self, models):
        fpga, cluster = models
        _, rows = table6_lr(fpga, cluster)
        model_row = row_by(rows, "Work", "HEAP (model)")
        assert model_row["Time (s)"] == pytest.approx(0.007, rel=0.15)


class TestTable7:
    def test_win_loss_pattern(self, models):
        fpga, cluster = models
        _, rows = table7_resnet(fpga, cluster)
        for name in ("CPU", "GME", "CraterLake"):
            assert row_by(rows, "Work", name)["Speedup time (model)"] > 1, name
        for name in ("ARK", "SHARP"):
            assert row_by(rows, "Work", name)["Speedup time (model)"] < 1, name


class TestTable8:
    def test_speedup_split(self):
        _, rows = table8_ablation()
        for r in rows:
            # Scheme switching alone: 9.6x / 15.5x / 34.2x in the paper.
            assert r["Speedup1 (paper)"] > 5
            # Hardware on top of scheme switching: hundreds more.
            assert r["Speedup2 (model)"] > 50

    def test_measured_column_integration(self):
        measured = {"bootstrapping": {"ckks_cpu": 10.0, "ss_cpu": 1.0}}
        _, rows = table8_ablation(measured)
        boot = row_by(rows, "Workload", "bootstrapping")
        assert boot["Speedup1 (measured)"] == 10.0


class TestKeySizeTable:
    def test_every_claim_within_10pct(self):
        _, rows = key_size_table()
        for r in rows:
            assert r["Model"] == pytest.approx(r["Paper"], rel=0.12), r["Quantity"]


class TestFormatting:
    def test_format_table_renders(self):
        headers, rows = table2_resources()
        text = format_table(headers, rows)
        assert "LUTs" in text and "77.61" in text

    def test_handles_none(self):
        text = format_table(["a"], [{"a": None}])
        assert "-" in text


class TestOpCounts:
    def test_production_scale_comparison(self):
        from repro.analysis import bootstrap_op_comparison
        c = bootstrap_op_comparison()
        # The honest trade-off: SS does more raw work, all parallel.
        assert c["ss_over_conventional"] > 1
        assert c["ss_parallel_fraction"] > 0.95
        assert c["conventional_mults"] > 1e10

    def test_ntt_mults_formula(self):
        from repro.analysis.opcounts import ntt_mults
        assert ntt_mults(8) == 4 * 3
        assert ntt_mults(1 << 13) == (1 << 12) * 13


class TestCliEntry:
    def test_main_runs(self, capsys):
        from repro.analysis.__main__ import main
        main()
        out = capsys.readouterr().out
        assert "Table II" in out and "Table VIII" in out
        assert "HEAP-8 within ASIC envelope: True" in out
