"""Tests for the negacyclic NTT engine against naive references."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.math.modular import find_ntt_primes
from repro.math.ntt import NttEngine, get_ntt_engine, naive_negacyclic_mul


@pytest.fixture(params=[8, 64, 256], ids=lambda n: f"N={n}")
def sized_engine(request):
    n = request.param
    q = find_ntt_primes(28, n, 1)[0]
    return NttEngine(n, q)


class TestRoundTrip:
    def test_forward_inverse_identity(self, sized_engine):
        rng = np.random.default_rng(2)
        a = rng.integers(0, sized_engine.q, sized_engine.n)
        a = sized_engine.mod.asarray(a)
        assert np.array_equal(sized_engine.inverse(sized_engine.forward(a)), a)

    def test_inverse_forward_identity(self, sized_engine):
        rng = np.random.default_rng(3)
        a = sized_engine.mod.asarray(rng.integers(0, sized_engine.q, sized_engine.n))
        assert np.array_equal(sized_engine.forward(sized_engine.inverse(a)), a)

    def test_batched_last_axis(self, sized_engine):
        rng = np.random.default_rng(4)
        a = sized_engine.mod.asarray(rng.integers(0, sized_engine.q, (3, sized_engine.n)))
        batched = sized_engine.forward(a)
        rows = np.stack([sized_engine.forward(a[i]) for i in range(3)])
        assert np.array_equal(batched, rows)

    def test_zero_is_fixed_point(self, sized_engine):
        z = sized_engine.mod.zeros(sized_engine.n)
        assert np.array_equal(sized_engine.forward(z), z)


class TestConvolution:
    def test_matches_schoolbook(self, sized_engine):
        rng = np.random.default_rng(5)
        n, q = sized_engine.n, sized_engine.q
        a = sized_engine.mod.asarray(rng.integers(0, q, n))
        b = sized_engine.mod.asarray(rng.integers(0, q, n))
        fast = sized_engine.negacyclic_mul(a, b)
        slow = naive_negacyclic_mul(a, b, q)
        assert [int(v) for v in fast] == [int(v) for v in slow]

    def test_x_to_n_equals_minus_one(self, sized_engine):
        """Multiplying X^(N-1) by X must give -1: the negacyclic identity."""
        n, q = sized_engine.n, sized_engine.q
        a = sized_engine.mod.zeros(n)
        a[n - 1] = 1
        b = sized_engine.mod.zeros(n)
        b[1] = 1
        out = sized_engine.negacyclic_mul(a, b)
        expected = sized_engine.mod.zeros(n)
        expected[0] = q - 1
        assert np.array_equal(out, expected)

    def test_multiplicative_identity(self, sized_engine):
        rng = np.random.default_rng(6)
        n, q = sized_engine.n, sized_engine.q
        a = sized_engine.mod.asarray(rng.integers(0, q, n))
        one = sized_engine.mod.zeros(n)
        one[0] = 1
        assert np.array_equal(sized_engine.negacyclic_mul(a, one), a)

    @given(st.integers(0, 2**32))
    @settings(max_examples=25, deadline=None)
    def test_convolution_property(self, seed):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = get_ntt_engine(n, q)
        rng = np.random.default_rng(seed)
        a = eng.mod.asarray(rng.integers(0, q, n))
        b = eng.mod.asarray(rng.integers(0, q, n))
        assert [int(v) for v in eng.negacyclic_mul(a, b)] == [
            int(v) for v in naive_negacyclic_mul(a, b, q)
        ]


class TestLinearity:
    def test_forward_is_linear(self, sized_engine):
        rng = np.random.default_rng(7)
        n, q = sized_engine.n, sized_engine.q
        a = sized_engine.mod.asarray(rng.integers(0, q, n))
        b = sized_engine.mod.asarray(rng.integers(0, q, n))
        lhs = sized_engine.forward(sized_engine.mod.add(a, b))
        rhs = sized_engine.mod.add(sized_engine.forward(a), sized_engine.forward(b))
        assert np.array_equal(lhs, rhs)


class TestWideModulus:
    def test_36bit_roundtrip(self):
        n = 32
        q = find_ntt_primes(36, n, 1)[0]
        eng = NttEngine(n, q)
        rng = np.random.default_rng(8)
        a = eng.mod.asarray(np.asarray([int(x) for x in rng.integers(0, 2**35, n)], dtype=object))
        assert np.array_equal(eng.inverse(eng.forward(a)), a)

    def test_36bit_convolution(self):
        n = 16
        q = find_ntt_primes(36, n, 1)[0]
        eng = NttEngine(n, q)
        rng = np.random.default_rng(9)
        a = eng.mod.asarray(np.asarray([int(x) for x in rng.integers(0, 2**35, n)], dtype=object))
        b = eng.mod.asarray(np.asarray([int(x) for x in rng.integers(0, 2**35, n)], dtype=object))
        assert [int(v) for v in eng.negacyclic_mul(a, b)] == [
            int(v) for v in naive_negacyclic_mul(a, b, q)
        ]


class TestStackedMultiLimb:
    """Regression for the batched blind-rotate engine: a 3-D stacked
    transform (e.g. ``(batch, h+1, N)`` accumulators) must be element-wise
    identical to transforming each row on its own, in both twiddle modes."""

    @pytest.mark.parametrize("twiddle_mode", ["cached", "on_the_fly"])
    def test_forward_3d_matches_per_row(self, twiddle_mode):
        n = 64
        q = find_ntt_primes(26, n, 1)[0]
        eng = NttEngine(n, q, twiddle_mode=twiddle_mode)
        rng = np.random.default_rng(20)
        a = eng.mod.asarray(rng.integers(0, q, (4, 3, n)))
        stacked = eng.forward(a)
        assert stacked.shape == a.shape
        for i in range(4):
            for j in range(3):
                assert np.array_equal(stacked[i, j], eng.forward(a[i, j]))

    @pytest.mark.parametrize("twiddle_mode", ["cached", "on_the_fly"])
    def test_inverse_3d_matches_per_row(self, twiddle_mode):
        n = 32
        q = find_ntt_primes(26, n, 1)[0]
        eng = NttEngine(n, q, twiddle_mode=twiddle_mode)
        rng = np.random.default_rng(21)
        a = eng.mod.asarray(rng.integers(0, q, (2, 5, n)))
        stacked = eng.inverse(a)
        assert stacked.shape == a.shape
        for i in range(2):
            for j in range(5):
                assert np.array_equal(stacked[i, j], eng.inverse(a[i, j]))

    def test_4d_roundtrip(self):
        """The digit tensors are 4-D ``(batch, h+1, d, N)`` stacks."""
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = get_ntt_engine(n, q)
        rng = np.random.default_rng(22)
        a = eng.mod.asarray(rng.integers(0, q, (3, 2, 2, n)))
        assert np.array_equal(eng.inverse(eng.forward(a)), a)


class TestEngineCache:
    def test_cache_returns_same_object(self):
        q = find_ntt_primes(24, 32, 1)[0]
        assert get_ntt_engine(32, q) is get_ntt_engine(32, q)

    def test_cold_key_race_converges_on_one_engine(self):
        """Regression for the unlocked get-or-create the HL101 rule
        flags: threads racing on a cold (n, q) must all receive the SAME
        engine.  Before the double-checked lock, each racer could build
        and publish its own instance — callers then held engines whose
        workspaces were invisible to each other."""
        import concurrent.futures
        import threading

        from repro.math import ntt as ntt_mod

        n = 128
        q = find_ntt_primes(25, n, 2)[1]  # unlikely to be cached already
        ntt_mod._ENGINE_CACHE.pop((n, q), None)  # force the cold path
        workers = 8
        barrier = threading.Barrier(workers)

        def grab():
            barrier.wait(timeout=30)
            return get_ntt_engine(n, q)

        with concurrent.futures.ThreadPoolExecutor(workers) as pool:
            engines = [f.result(timeout=60)
                       for f in [pool.submit(grab) for _ in range(workers)]]
        assert all(e is engines[0] for e in engines)


class TestOnTheFlyTwiddles:
    """Section IV-D: cached vs regenerated twiddles are bit-identical."""

    def test_forward_matches_cached(self):
        n = 64
        q = find_ntt_primes(26, n, 1)[0]
        cached = NttEngine(n, q, twiddle_mode="cached")
        otf = NttEngine(n, q, twiddle_mode="on_the_fly")
        rng = np.random.default_rng(11)
        a = cached.mod.asarray(rng.integers(0, q, n))
        assert np.array_equal(cached.forward(a), otf.forward(a))

    def test_roundtrip(self):
        n = 32
        q = find_ntt_primes(24, n, 1)[0]
        otf = NttEngine(n, q, twiddle_mode="on_the_fly")
        rng = np.random.default_rng(12)
        a = otf.mod.asarray(rng.integers(0, q, n))
        assert np.array_equal(otf.inverse(otf.forward(a)), a)

    def test_unknown_mode_rejected(self):
        from repro.errors import ParameterError
        q = find_ntt_primes(24, 16, 1)[0]
        with pytest.raises(ParameterError):
            NttEngine(16, q, twiddle_mode="telepathy")
