"""Tests for the coalescing bootstrap service: batch-composition
invariance (a request's result is byte-equal no matter which other
requests it was batched with, across executors and engines), LRU
key-cache eviction order and byte accounting, backpressure, graceful
drain, and the pipeline's prepare/complete split (``run_many``)."""

import asyncio
import datetime
import json
import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError, ServiceClosedError, ServiceOverloadError
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.profiling import count_ops
from repro.service import (BootstrapService, KeyCacheEntry, LruKeyCache,
                           UserKeys, pool_executor_factory)
from repro.service.key_cache import rns_poly_bytes
from repro.switching import RELU, SIGN, SwitchingKeySet
from repro.switching.pipeline import BootstrapPipeline, BootstrapTrace, LocalExecutor
from repro.tfhe.blind_rotate import BlindRotateKey, build_test_vector
from repro.tfhe.glwe import GlweSecretKey
from repro.tfhe.lwe import LweSecretKey, lwe_encrypt

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks"))
import _timing  # noqa: E402

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)

#: Toy LWE-serving shape: ring dimension of the accumulator / LUT.
N_RING = 64
#: LWE dimension of the toy blind-rotate key.
N_T = 8


class _KeyBox:
    """Minimal key-set stand-in: executors only need ``.brk``."""

    def __init__(self, brk):
        self.brk = brk


@pytest.fixture(scope="module")
def lwe_stack():
    q = find_ntt_primes(28, N_RING, 1)[0]
    basis = RnsBasis([q])
    gadget = GadgetVector(q=q, base_bits=14, digits=2)
    s = Sampler(1234)
    lwe_sk = LweSecretKey.generate(N_T, s)
    glwe_sk = GlweSecretKey.generate(N_RING, 1, s)
    brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)

    def g(t):
        t = t % (2 * N_RING)
        return (q // 8) * (1 if t < N_RING else -1) % q

    tv = build_test_vector(g, N_RING, basis)
    return basis, q, lwe_sk, brk, tv


@pytest.fixture(scope="module")
def ckks_stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(501))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(502))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(503), base_bits=4,
                                   error_std=0.8)
    return ctx, sk, ev, swk


def make_lwes(lwe_stack, count, seed=42):
    _, _, lwe_sk, _, _ = lwe_stack
    s = Sampler(seed)
    return [lwe_encrypt(i * 5, lwe_sk, 2 * N_RING, s, error_std=0.5)
            for i in range(count)]


def solo_results(lwe_stack, lwes, engine="vectorized"):
    """Reference: each request dispatched alone (batch of one)."""
    _, _, _, brk, tv = lwe_stack
    ex = LocalExecutor(_KeyBox(brk), tv, engine)
    return [ex.fanout([lw], BootstrapTrace())[0] for lw in lwes]


def assert_glwe_equal(a, b):
    for pa, pb in zip(list(a.mask) + [a.body], list(b.mask) + [b.body]):
        ca, cb = pa.to_coeff(), pb.to_coeff()
        for la, lb in zip(ca.limbs, cb.limbs):
            assert np.asarray(la).tolist() == np.asarray(lb).tolist()


def assert_ct_equal(a, b):
    for ref_l, got_l in zip(a.c0.to_coeff().limbs, b.c0.to_coeff().limbs):
        assert ref_l.tolist() == got_l.tolist()
    for ref_l, got_l in zip(a.c1.to_coeff().limbs, b.c1.to_coeff().limbs):
        assert ref_l.tolist() == got_l.tolist()


def serve_all(lwe_stack, lwes, user_ids, **svc_kwargs):
    """Run every request through one service instance; returns results
    in submission order plus the service trace."""
    _, _, _, brk, tv = lwe_stack
    uk = UserKeys(_KeyBox(brk), tv)

    async def main():
        svc = BootstrapService(lambda uid: uk, **svc_kwargs)
        async with svc:
            results = await asyncio.gather(
                *[svc.submit(uid, lw) for uid, lw in zip(user_ids, lwes)])
        return results, svc.trace

    return asyncio.run(main())


class TestBatchCompositionInvariance:
    """The correctness gate: coalescing must be invisible in the bytes."""

    @pytest.mark.parametrize("max_batch", [1, 3, 8, 32])
    def test_any_batch_size_matches_solo(self, lwe_stack, max_batch):
        lwes = make_lwes(lwe_stack, 10)
        reference = solo_results(lwe_stack, lwes)
        got, trace = serve_all(lwe_stack, lwes, ["u"] * len(lwes),
                               max_batch=max_batch, max_delay_s=0.005)
        for ref, out in zip(reference, got):
            assert_glwe_equal(ref, out)
        assert trace.requests_completed == len(lwes)
        assert max(trace.batch_fill) <= max_batch

    @pytest.mark.parametrize("engine", ["vectorized", "reference"])
    def test_engines_match_solo(self, lwe_stack, engine):
        lwes = make_lwes(lwe_stack, 6)
        reference = solo_results(lwe_stack, lwes, engine)
        got, _ = serve_all(lwe_stack, lwes, ["u"] * len(lwes),
                           max_batch=4, max_delay_s=0.005,
                           blind_rotate_engine=engine)
        for ref, out in zip(reference, got):
            assert_glwe_equal(ref, out)

    def test_multi_user_shared_keys_coalesce_and_match(self, lwe_stack):
        """Users sharing one key set coalesce into common batches; each
        still gets exactly the solo-dispatch bytes."""
        lwes = make_lwes(lwe_stack, 9)
        users = [f"user-{i % 3}" for i in range(9)]
        reference = solo_results(lwe_stack, lwes)
        got, trace = serve_all(lwe_stack, lwes, users,
                               max_batch=8, max_delay_s=0.01)
        for ref, out in zip(reference, got):
            assert_glwe_equal(ref, out)
        # 3 user ids, one UserKeys object: one entry, cross-user batches.
        assert trace.key_cache_misses == 3
        assert trace.key_cache_hits == 6
        assert trace.mean_batch_fill > 1.0

    def test_process_pool_executor_matches_solo(self, lwe_stack):
        lwes = make_lwes(lwe_stack, 6)
        reference = solo_results(lwe_stack, lwes)
        got, trace = serve_all(lwe_stack, lwes, ["u"] * len(lwes),
                               max_batch=6, max_delay_s=0.02,
                               executor_factory=pool_executor_factory(
                                   num_workers=2))
        for ref, out in zip(reference, got):
            assert_glwe_equal(ref, out)
        assert trace.drained  # drain also closed the pool

    def test_concurrent_tenants_share_ntt_engine_safely(self, lwe_stack):
        """NTT engines are cached process-wide per (n, q), but the service
        runs concurrent per-tenant batches on worker threads — the engine
        workspaces must be thread-local (regression: a shared butterfly
        buffer raced across tenants and corrupted transforms)."""
        import concurrent.futures

        basis, q, lwe_sk, brk, tv = lwe_stack
        gadget = GadgetVector(q=q, base_bits=14, digits=2)
        s2 = Sampler(999)
        brk2 = BlindRotateKey.generate(LweSecretKey.generate(N_T, s2),
                                       GlweSecretKey.generate(N_RING, 1, s2),
                                       basis, gadget, s2)
        lwes = make_lwes(lwe_stack, 4)
        ex_a = LocalExecutor(_KeyBox(brk), tv, "vectorized")
        ex_b = LocalExecutor(_KeyBox(brk2), tv, "vectorized")
        want_a = ex_a.fanout(lwes, BootstrapTrace())
        want_b = ex_b.fanout(lwes, BootstrapTrace())

        def hammer(ex):
            return [ex.fanout(lwes, BootstrapTrace()) for _ in range(8)]

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            runs_a = pool.submit(hammer, ex_a)
            runs_b = pool.submit(hammer, ex_b)
            for run in runs_a.result():
                for ref, out in zip(want_a, run):
                    assert_glwe_equal(ref, out)
            for run in runs_b.result():
                for ref, out in zip(want_b, run):
                    assert_glwe_equal(ref, out)

    def test_two_services_concurrent_through_shared_engine_cache(
            self, lwe_stack):
        """Two full BootstrapService instances — separate event loops on
        separate threads, distinct tenant keys — hammer the SAME
        process-wide NTT/monomial/plan caches concurrently.  Every result
        must stay bit-identical to a solo run: if the double-checked
        locks on those caches (or the thread-local engine workspaces from
        the PR-7 fix) regress, this goes red."""
        import concurrent.futures
        import threading

        basis, q, lwe_sk, brk, tv = lwe_stack
        gadget = GadgetVector(q=q, base_bits=14, digits=2)
        s2 = Sampler(4242)
        brk2 = BlindRotateKey.generate(LweSecretKey.generate(N_T, s2),
                                       GlweSecretKey.generate(N_RING, 1, s2),
                                       basis, gadget, s2)
        lwes = make_lwes(lwe_stack, 6)
        references = {}
        for name, key in (("a", brk), ("b", brk2)):
            ex = LocalExecutor(_KeyBox(key), tv, "vectorized")
            references[name] = [ex.fanout([lw], BootstrapTrace())[0]
                                for lw in lwes]

        barrier = threading.Barrier(2)

        def serve(key, rounds=3):
            uk = UserKeys(_KeyBox(key), tv)

            async def main():
                svc = BootstrapService(lambda uid: uk, max_batch=4,
                                       max_delay_s=0.002)
                out = []
                async with svc:
                    for _ in range(rounds):
                        out.append(await asyncio.gather(
                            *[svc.submit("tenant", lw) for lw in lwes]))
                return out

            barrier.wait(timeout=60)
            return asyncio.run(main())

        with concurrent.futures.ThreadPoolExecutor(max_workers=2) as pool:
            futures = {"a": pool.submit(serve, brk),
                       "b": pool.submit(serve, brk2)}
            for name, fut in futures.items():
                for round_results in fut.result(timeout=300):
                    for ref, out in zip(references[name], round_results):
                        assert_glwe_equal(ref, out)

    @settings(max_examples=8, deadline=None)
    @given(max_batch=st.integers(min_value=1, max_value=7),
           count=st.integers(min_value=1, max_value=7),
           users=st.integers(min_value=1, max_value=3))
    def test_property_composition_invariance(self, lwe_stack, max_batch,
                                             count, users):
        """Property form: any request count, batch bound, and user
        spread produces byte-identical per-request results."""
        lwes = make_lwes(lwe_stack, count)
        reference = solo_results(lwe_stack, lwes)
        got, _ = serve_all(lwe_stack, lwes,
                           [f"u{i % users}" for i in range(count)],
                           max_batch=max_batch, max_delay_s=0.002)
        for ref, out in zip(reference, got):
            assert_glwe_equal(ref, out)


class TestCiphertextRequests:
    def test_ciphertext_request_matches_pipeline(self, ckks_stack):
        ctx, _, ev, swk = ckks_stack
        z = np.random.default_rng(7).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        reference = BootstrapPipeline(ctx, swk).run(ct)
        uk = UserKeys.from_switching(ctx, swk)

        async def main():
            async with BootstrapService(lambda uid: uk, max_batch=ctx.n,
                                        max_delay_s=0.005) as svc:
                return await svc.submit_ciphertext("tenant", ct)

        assert_ct_equal(reference, asyncio.run(main()))

    def test_cobatched_ciphertexts_match_solo_runs(self, ckks_stack):
        """Two users' Algorithm-2 bootstraps share ONE fan-out call and
        still equal their solo pipeline runs byte for byte."""
        ctx, _, ev, swk = ckks_stack
        rng = np.random.default_rng(11)
        cts = [ev.encrypt(rng.uniform(-1, 1, ctx.slots), level=0)
               for _ in range(2)]
        pipe = BootstrapPipeline(ctx, swk)
        reference = [pipe.run(ct) for ct in cts]
        uk = UserKeys.from_switching(ctx, swk)

        async def main():
            svc = BootstrapService(lambda uid: uk, max_batch=2 * ctx.n,
                                   max_delay_s=0.05)
            async with svc:
                results = await asyncio.gather(
                    svc.submit_ciphertext("alice", cts[0]),
                    svc.submit_ciphertext("bob", cts[1]))
            return results, svc.trace

        got, trace = asyncio.run(main())
        for ref, out in zip(reference, got):
            assert_ct_equal(ref, out)
        # Both rode one coalesced batch of 2N blind rotates.
        assert trace.batch_fill == {2 * ctx.n: 1}

    def test_ciphertext_requires_ctx(self, lwe_stack):
        _, _, _, brk, tv = lwe_stack
        uk = UserKeys(_KeyBox(brk), tv)  # no ctx

        async def main():
            async with BootstrapService(lambda uid: uk) as svc:
                with pytest.raises(ParameterError, match="ctx"):
                    await svc.submit_ciphertext("u", object())

        asyncio.run(main())


class _FakeExecutor:
    def __init__(self):
        self.closed = False

    def close(self):
        self.closed = True


def _fake_cache(capacity_bytes, nbytes=100):
    """A cache over synthetic UserKeys with fixed per-entry bytes."""
    boxes = {}

    def provider(uid):
        if uid not in boxes:
            uk = UserKeys.__new__(UserKeys)
            uk.keys = None
            uk.test_vector = None
            uk.ctx = None
            boxes[uid] = uk
        return boxes[uid]

    def factory(uk):
        return KeyCacheEntry(uk, _FakeExecutor(), None, nbytes)

    return LruKeyCache(provider, factory, capacity_bytes)


class TestLruKeyCache:
    def test_eviction_order_is_least_recently_used(self):
        cache = _fake_cache(capacity_bytes=300, nbytes=100)
        for uid in "abc":
            cache.get(uid)
        cache.get("a")  # refresh a: LRU order is now b, c, a
        cache.get("d")  # evicts b
        assert cache.resident_users() == {"a", "c", "d"}
        assert cache.evictions == 1
        cache.get("e")  # evicts c
        assert cache.resident_users() == {"a", "d", "e"}

    def test_byte_accounting_and_peak(self):
        cache = _fake_cache(capacity_bytes=250, nbytes=100)
        a = cache.get("a")
        cache.get("b")
        assert cache.resident_bytes() == 200
        cache.get("c")  # 300 > 250: evict a
        assert cache.resident_bytes() == 200
        assert cache.peak_resident_bytes == 300
        assert a.executor.closed

    def test_pinned_entry_survives_eviction_pressure(self):
        cache = _fake_cache(capacity_bytes=150, nbytes=100)
        a = cache.get("a")
        a.pin()
        b = cache.get("b")  # over capacity but a is pinned: b is newest
        assert cache.resident_users() == {"a", "b"}
        c = cache.get("c")  # evicts b (unpinned), keeps pinned a
        assert cache.resident_users() == {"a", "c"}
        assert b.executor.closed and not a.executor.closed
        assert c is cache.get("c")
        a.unpin()
        cache.get("d")  # now a is evictable
        assert "a" not in cache.resident_users()
        assert a.executor.closed

    def test_evicted_while_pinned_closes_on_last_unpin(self):
        cache = _fake_cache(capacity_bytes=100, nbytes=100)
        a = cache.get("a")
        a.pin()
        a.pin()
        cache._evict(next(iter(cache._entries)))
        assert a.defunct and not a.executor.closed
        a.unpin()
        assert not a.executor.closed
        a.unpin()
        assert a.executor.closed

    def test_shared_keys_alias_one_entry(self):
        cache = _fake_cache(capacity_bytes=None, nbytes=100)
        shared = cache._provider("tenant")
        cache._provider = lambda uid: shared  # every user, same keys
        e1, e2 = cache.get("u1"), cache.get("u2")
        assert e1 is e2
        assert len(cache) == 1
        assert cache.resident_bytes() == 100
        assert cache.resident_users() == {"u1", "u2"}
        cache._evict(next(iter(cache._entries)))
        assert cache.resident_users() == set()

    def test_close_releases_everything(self):
        cache = _fake_cache(capacity_bytes=None)
        entries = [cache.get(u) for u in "abc"]
        cache.close()
        assert len(cache) == 0
        assert all(e.executor.closed for e in entries)

    def test_real_keyset_accounting_matches_resident_bytes(self, ckks_stack):
        ctx, _, _, swk = ckks_stack
        uk = UserKeys.from_switching(ctx, swk)
        assert uk.resident_bytes() == (swk.resident_bytes()
                                       + rns_poly_bytes(uk.test_vector))
        assert uk.resident_bytes() > 0


class TestBackpressureAndLifecycle:
    def test_overload_raises_typed_error(self, lwe_stack):
        _, _, _, brk, tv = lwe_stack
        uk = UserKeys(_KeyBox(brk), tv)
        lwes = make_lwes(lwe_stack, 3)

        async def main():
            # Huge delay + huge batch: requests sit queued until drain.
            svc = BootstrapService(lambda uid: uk, max_batch=64,
                                   max_delay_s=30.0, max_queue=2)
            await svc.start()
            tasks = [asyncio.ensure_future(svc.submit("u", lw))
                     for lw in lwes[:2]]
            await asyncio.sleep(0.01)
            with pytest.raises(ServiceOverloadError) as info:
                await svc.submit("u", lwes[2])
            assert info.value.retry_after > 0
            await svc.stop()  # drain waives the deadline
            results = await asyncio.gather(*tasks)
            return results, svc.trace

        results, trace = asyncio.run(main())
        reference = solo_results(lwe_stack, lwes[:2])
        for ref, out in zip(reference, results):
            assert_glwe_equal(ref, out)
        assert trace.requests_rejected == 1
        assert trace.requests_completed == 2
        assert trace.drained

    def test_submit_outside_lifecycle_raises(self, lwe_stack):
        _, _, _, brk, tv = lwe_stack
        uk = UserKeys(_KeyBox(brk), tv)
        (lwe,) = make_lwes(lwe_stack, 1)

        async def main():
            svc = BootstrapService(lambda uid: uk)
            with pytest.raises(ServiceClosedError):
                await svc.submit("u", lwe)  # not started
            await svc.start()
            await svc.stop()
            await svc.stop()  # idempotent
            with pytest.raises(ServiceClosedError):
                await svc.submit("u", lwe)  # stopped
            with pytest.raises(ServiceClosedError):
                await svc.start()  # cannot restart a stopped service

        asyncio.run(main())

    def test_bad_parameters_rejected(self, lwe_stack):
        _, _, _, brk, tv = lwe_stack
        uk = UserKeys(_KeyBox(brk), tv)
        with pytest.raises(ParameterError):
            BootstrapService(lambda uid: uk, max_batch=0)
        with pytest.raises(ParameterError):
            BootstrapService(lambda uid: uk, max_queue=0)
        with pytest.raises(ParameterError):
            BootstrapService(lambda uid: uk, max_delay_s=-1.0)

    def test_service_activity_lands_in_opstats(self, lwe_stack):
        lwes = make_lwes(lwe_stack, 6)
        with count_ops() as stats:
            _, trace = serve_all(lwe_stack, lwes, ["u"] * 6,
                                 max_batch=3, max_delay_s=0.005)
        assert stats.service_requests == 6
        assert stats.service_batches == trace.batches
        assert stats.service_coalesced_lwes == 6
        assert stats.service_key_cache_misses == 1
        assert stats.service_key_cache_hits == 5
        assert sum(stats.service_batch_fill_hist.values()) == trace.batches


class TestRunMany:
    def test_run_many_matches_individual_runs(self, ckks_stack):
        ctx, _, ev, swk = ckks_stack
        rng = np.random.default_rng(23)
        cts = [ev.encrypt(rng.uniform(-1, 1, ctx.slots), level=0)
               for _ in range(2)]
        pipe = BootstrapPipeline(ctx, swk)
        reference = [pipe.run(ct) for ct in cts]
        trace = BootstrapTrace()
        got = pipe.run_many(cts, trace)
        for ref, out in zip(reference, got):
            assert_ct_equal(ref, out)
        assert trace.num_blind_rotates == 2 * ctx.n


class TestTrajectoryStamp:
    @pytest.fixture(autouse=True)
    def _fresh_cache(self):
        # git_commit() memoises per process; each test resolves afresh.
        _timing._git_commit_cache = _timing._GIT_UNRESOLVED
        yield
        _timing._git_commit_cache = _timing._GIT_UNRESOLVED

    def _write(self, tmp_path, monkeypatch):
        out_dir = tmp_path / "out"
        monkeypatch.setattr(_timing, "OUT_DIR", str(out_dir))
        monkeypatch.setattr(_timing, "TRAJECTORY_PATH",
                            str(out_dir / "trajectory.jsonl"))
        bench_path = tmp_path / "BENCH_test.json"
        _timing.write_bench_json(str(bench_path), "stamp_test",
                                 [{"seconds": 1.0}])
        with open(out_dir / "trajectory.jsonl") as fh:
            (record,) = [json.loads(line) for line in fh]
        return bench_path, record

    def test_record_stamped_with_commit_and_timestamp(self, tmp_path,
                                                      monkeypatch):
        _, record = self._write(tmp_path, monkeypatch)
        head = subprocess.run(["git", "rev-parse", "HEAD"],
                              cwd=_timing.REPO_ROOT, capture_output=True,
                              text=True).stdout.strip()
        assert record["git_commit"] == head
        assert len(record["git_commit"]) == 40
        # ISO-8601 UTC; strptime raises if malformed.
        datetime.datetime.strptime(record["timestamp"], "%Y-%m-%dT%H:%M:%SZ")
        assert record["benchmark"] == "stamp_test"

    def test_degrades_to_none_without_git(self, tmp_path, monkeypatch):
        def no_git(*args, **kwargs):
            raise FileNotFoundError("git not installed")

        monkeypatch.setattr(_timing.subprocess, "run", no_git)
        bench_path, record = self._write(tmp_path, monkeypatch)
        assert record["git_commit"] is None
        # The bench output itself must still be written.
        assert bench_path.exists()
        assert _timing.git_commit() is None


class TestProgrammableBootstrapRequests:
    """submit_pbs routes through the same coalescing loop as Algorithm-2
    traffic, but batches are keyed by (LUT, scale) — one fan-out tensor
    carries exactly one test vector."""

    def _encrypt(self, ckks_stack, values, seed):
        ctx, _, ev, _ = ckks_stack
        vals = np.zeros(ctx.n // 2)
        vals[:len(values)] = values
        return ev.drop_to_level(ev.encrypt_coeffs(vals), 0)

    def test_pbs_request_matches_pipeline(self, ckks_stack):
        ctx, _, ev, swk = ckks_stack
        ct = self._encrypt(ckks_stack, [0.5, -0.9, 0.05], 3)
        reference = BootstrapPipeline(ctx, swk).run_pbs(ct, SIGN)
        uk = UserKeys.from_switching(ctx, swk)

        async def main():
            svc = BootstrapService(lambda uid: uk, max_batch=ctx.n,
                                   max_delay_s=0.005)
            async with svc:
                out = await svc.submit_pbs("tenant", ct, SIGN)
            return out, svc.trace

        got, trace = asyncio.run(main())
        assert_ct_equal(reference, got)
        assert trace.pbs_requests == 1

    def test_same_lut_requests_coalesce(self, ckks_stack):
        """Two users' sign() bootstraps share ONE fan-out batch and still
        equal their solo pipeline runs byte for byte."""
        ctx, _, ev, swk = ckks_stack
        cts = [self._encrypt(ckks_stack, [0.4, -0.6], 5),
               self._encrypt(ckks_stack, [-0.2, 0.8], 6)]
        pipe = BootstrapPipeline(ctx, swk)
        reference = [pipe.run_pbs(ct, SIGN) for ct in cts]
        uk = UserKeys.from_switching(ctx, swk)

        async def main():
            svc = BootstrapService(lambda uid: uk, max_batch=2 * ctx.n,
                                   max_delay_s=0.05)
            async with svc:
                results = await asyncio.gather(
                    svc.submit_pbs("alice", cts[0], SIGN),
                    svc.submit_pbs("bob", cts[1], SIGN))
            return results, svc.trace

        got, trace = asyncio.run(main())
        for ref, out in zip(reference, got):
            assert_ct_equal(ref, out)
        assert trace.batch_fill == {2 * ctx.n: 1}
        assert trace.pbs_requests == 2

    def test_different_luts_never_share_a_batch(self, ckks_stack):
        """sign and relu requests arrive together but dispatch as two
        separate fan-out batches — a tensor carries one test vector."""
        ctx, _, ev, swk = ckks_stack
        cts = [self._encrypt(ckks_stack, [0.4, -0.6], 7),
               self._encrypt(ckks_stack, [0.3, -0.7], 8)]
        pipe = BootstrapPipeline(ctx, swk)
        ref_sign = pipe.run_pbs(cts[0], SIGN)
        ref_relu = pipe.run_pbs(cts[1], RELU)
        uk = UserKeys.from_switching(ctx, swk)

        async def main():
            svc = BootstrapService(lambda uid: uk, max_batch=4 * ctx.n,
                                   max_delay_s=0.05)
            async with svc:
                results = await asyncio.gather(
                    svc.submit_pbs("alice", cts[0], SIGN),
                    svc.submit_pbs("bob", cts[1], RELU))
            return results, svc.trace

        got, trace = asyncio.run(main())
        assert_ct_equal(ref_sign, got[0])
        assert_ct_equal(ref_relu, got[1])
        assert trace.batch_fill == {ctx.n: 2}

    def test_mixed_algorithm2_and_pbs_split_batches(self, ckks_stack):
        """Algorithm-2 and PBS traffic from the same key group coexist
        in one service but never ride the same tensor."""
        ctx, _, ev, swk = ckks_stack
        z = np.random.default_rng(9).uniform(-1, 1, ctx.slots)
        ct_a2 = ev.encrypt(z, level=0)
        ct_pbs = self._encrypt(ckks_stack, [0.5, -0.5], 10)
        pipe = BootstrapPipeline(ctx, swk)
        ref_a2 = pipe.run(ct_a2)
        ref_pbs = pipe.run_pbs(ct_pbs, SIGN)
        uk = UserKeys.from_switching(ctx, swk)

        async def main():
            svc = BootstrapService(lambda uid: uk, max_batch=4 * ctx.n,
                                   max_delay_s=0.05)
            async with svc:
                results = await asyncio.gather(
                    svc.submit_ciphertext("alice", ct_a2),
                    svc.submit_pbs("bob", ct_pbs, SIGN))
            return results, svc.trace

        got, trace = asyncio.run(main())
        assert_ct_equal(ref_a2, got[0])
        assert_ct_equal(ref_pbs, got[1])
        assert trace.batch_fill == {ctx.n: 2}
        assert trace.pbs_requests == 1
