"""Integration tests: LR training with scheme-switching bootstrap in the
loop, and the tiny encrypted CNN block (ResNet miniature)."""

import numpy as np
import pytest

from repro.apps import (
    EncryptedLogisticRegression,
    PlaintextLogisticRegression,
    TinyEncryptedCnn,
    resnet20_op_counts,
    resnet_inference_model,
    total_bootstrap_count,
)
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.ckks.bootstrap import make_bootstrappable_toy_params
from repro.hardware import ClusterBootstrapModel, SingleFpgaModel
from repro.math.sampling import Sampler
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet

# Small ring keeps the in-loop bootstraps (N blind rotates each) tractable;
# fixed-point layout (rescale primes ~ Delta, wider q0) keeps the scale
# stable across the deep LR iteration.
PARAMS = make_bootstrappable_toy_params(n=16, levels=8, delta_bits=22,
                                        q0_bits=28)


@pytest.fixture(scope="module")
def lr_with_bootstrap():
    ctx = CkksContext(PARAMS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(11))
    sk = gen.secret_key()
    f, b = 2, 4
    rots = set()
    shift = 1
    while shift < f:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    shift = f
    while shift < f * b:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    keys = gen.keyset(sk, rotations=sorted(rots))
    ev = CkksEvaluator(ctx, keys, Sampler(12), scale_rtol=5e-2)
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(13), base_bits=4,
                                   error_std=0.8)
    boot = SchemeSwitchBootstrapper(ctx, swk)
    return ctx, sk, ev, boot, f, b


class TestLrTrainingWithBootstrap:
    def test_two_iterations_with_refresh(self, lr_with_bootstrap):
        """The paper's LR protocol in miniature: iterate, bootstrap,
        iterate again — levels are refreshed and training still tracks
        the plaintext reference."""
        ctx, sk, ev, boot, f, b = lr_with_bootstrap
        trainer = EncryptedLogisticRegression(ctx, ev, f, b, lr=0.5,
                                              bootstrapper=boot)
        rng = np.random.default_rng(5)
        x1 = rng.uniform(-1, 1, (b, f))
        y1 = rng.integers(0, 2, b).astype(float)
        x2 = rng.uniform(-1, 1, (b, f))
        y2 = rng.integers(0, 2, b).astype(float)

        ref = PlaintextLogisticRegression(f, lr=0.5)
        ref.iterate(x1, y1)
        ref.iterate(x2, y2)

        ct_w = ev.encrypt(trainer.pack_weights(np.zeros(f)))
        ct_w = trainer.iterate(ct_w, x1, y1)
        assert ct_w.level < ctx.max_level - 4  # levels really were consumed
        ct_w = trainer._refresh(ct_w)
        assert ct_w.level >= ctx.max_level - 2  # and restored
        ct_w = trainer.iterate(ct_w, x2, y2)
        got = trainer.unpack_weights(ev.decrypt(ct_w, sk))
        assert np.allclose(got, ref.w, atol=0.08), (got, ref.w)


TOYCNN_PARAMS = make_bootstrappable_toy_params(n=32, levels=6, delta_bits=24,
                                               q0_bits=30)


@pytest.fixture(scope="module")
def cnn_stack():
    ctx = CkksContext(TOYCNN_PARAMS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(21))
    sk = gen.secret_key()
    side = 4
    kernel = np.array([[1.0, -0.5], [0.25, 0.75]])
    probe = TinyEncryptedCnn.__new__(TinyEncryptedCnn)
    # Rotations: conv taps + pooling shifts.
    rots = set()
    for di in range(2):
        for dj in range(2):
            r = di * side + dj
            if r:
                rots.add(r)
    shift = 1
    while shift < ctx.slots:
        rots.add(shift)
        shift *= 2
    keys = gen.keyset(sk, rotations=sorted(rots))
    ev = CkksEvaluator(ctx, keys, Sampler(22), scale_rtol=5e-2)
    return ctx, sk, ev, side, kernel


class TestTinyCnn:
    def test_conv_square_matches_reference(self, cnn_stack):
        ctx, sk, ev, side, kernel = cnn_stack
        cnn = TinyEncryptedCnn(ctx, ev, side, kernel)
        rng = np.random.default_rng(6)
        img = rng.uniform(-0.5, 0.5, (side, side))
        ct = ev.encrypt(cnn.pack_image(img))
        out = cnn.square_activation(cnn.conv(ct))
        got = ev.decrypt(out, sk).real
        want = cnn.reference(img, kernel)
        out_side = side - kernel.shape[0] + 1
        for i in range(out_side):
            assert np.allclose(got[i * side: i * side + out_side],
                               want[i], atol=0.05)

    def test_sum_pool(self, cnn_stack):
        ctx, sk, ev, side, kernel = cnn_stack
        cnn = TinyEncryptedCnn(ctx, ev, side, kernel)
        rng = np.random.default_rng(7)
        img = rng.uniform(0, 0.3, (side, side))
        ct = ev.encrypt(cnn.pack_image(img))
        pooled = cnn.sum_pool(ct)
        got = ev.decrypt(pooled, sk).real[0]
        assert got == pytest.approx(float(np.sum(img)), abs=0.05)

    def test_image_too_large_rejected(self, cnn_stack):
        from repro.errors import ParameterError
        ctx, sk, ev, side, kernel = cnn_stack
        with pytest.raises(ParameterError):
            TinyEncryptedCnn(ctx, ev, 100, kernel)


class TestResNetModel:
    def test_layer_inventory(self):
        layers = resnet20_op_counts()
        names = [layer.name for layer in layers]
        assert names[0] == "stem-conv"
        assert sum(1 for n in names if "block" in n) == 9  # 3 stages x 3 blocks
        assert names[-1] == "avgpool-fc"

    def test_matches_paper_anchors(self):
        total, share = resnet_inference_model(SingleFpgaModel(),
                                              ClusterBootstrapModel())
        assert total == pytest.approx(0.267, rel=0.1)
        assert share == pytest.approx(0.44, abs=0.06)

    def test_bootstrap_count_plausible(self):
        # ARK/SHARP-era implementations report a few hundred bootstraps.
        assert 100 <= total_bootstrap_count() <= 500
