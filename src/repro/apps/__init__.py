"""Application workloads: logistic-regression training and ResNet-20."""

from .datasets import (
    MNIST_3V8_FEATURES,
    MNIST_3V8_SAMPLES,
    Dataset,
    synthetic_cifar_batch,
    synthetic_mnist_3v8,
    train_test_split,
)
from .logistic_regression import (
    SIGMOID_DEG3,
    EncryptedLogisticRegression,
    EncryptedLrState,
    LrOpCounts,
    PlaintextLogisticRegression,
    lr_iteration_model,
    poly_sigmoid,
)
from .resnet import (
    ResNetLayer,
    TinyEncryptedCnn,
    resnet20_op_counts,
    resnet_inference_model,
    total_bootstrap_count,
)

__all__ = [
    "MNIST_3V8_FEATURES",
    "MNIST_3V8_SAMPLES",
    "Dataset",
    "synthetic_cifar_batch",
    "synthetic_mnist_3v8",
    "train_test_split",
    "SIGMOID_DEG3",
    "EncryptedLogisticRegression",
    "EncryptedLrState",
    "LrOpCounts",
    "PlaintextLogisticRegression",
    "lr_iteration_model",
    "poly_sigmoid",
    "ResNetLayer",
    "TinyEncryptedCnn",
    "resnet20_op_counts",
    "resnet_inference_model",
    "total_bootstrap_count",
]
