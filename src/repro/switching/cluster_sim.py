"""Functional simulation of the multi-FPGA deployment (paper Section V).

A :class:`SimulatedCluster` runs the scheme-switching bootstrap with the
BlindRotate phase distributed over explicit :class:`SimulatedNode`
workers.  Ciphertexts cross node boundaries only in serialized form
(through :mod:`repro.io`), so the simulation exercises a real wire
format and produces a per-link communication log that the hardware
model's CMAC accounting can be checked against.

The primary follows the paper's policy exactly: it "sends all the
ciphertexts intended for one of the secondary FPGAs before sending the
ciphertexts for the next one", each secondary streams results back as
they complete, and the primary repacks and finishes steps 4-5.  The
output is bit-identical to the single-node bootstrap (tests assert it) —
the basis of the paper's claim that the approach "can be mapped to any
system with multiple compute nodes".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..errors import ParameterError
from ..io import deserialize_glwe, deserialize_lwe, serialize_glwe, serialize_lwe
from ..tfhe.blind_rotate import blind_rotate_batch
from ..tfhe.glwe import GlweCiphertext
from .bootstrap import SchemeSwitchBootstrapper
from .keys import SwitchingKeySet
from .scheduler import make_schedule


@dataclass
class CommLog:
    """Bytes and message counts per (src, dst) link."""

    bytes_sent: Dict[tuple, int] = field(default_factory=dict)
    messages: Dict[tuple, int] = field(default_factory=dict)

    def record(self, src: int, dst: int, payload: bytes) -> None:
        key = (src, dst)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0) + len(payload)
        self.messages[key] = self.messages.get(key, 0) + 1

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def link_bytes(self, src: int, dst: int) -> int:
        return self.bytes_sent.get((src, dst), 0)


class SimulatedNode:
    """One compute node holding a copy of the public switching keys."""

    def __init__(self, node_id: int, keys: SwitchingKeySet, test_vector):
        self.node_id = node_id
        self.keys = keys
        self.test_vector = test_vector
        self.processed = 0

    def process(self, wire_lwes: List[bytes]) -> List[bytes]:
        """Deserialize the assigned batch, BlindRotate it (the batched
        §IV-E schedule), and return serialized accumulators."""
        lwes = [deserialize_lwe(b) for b in wire_lwes]
        accs = blind_rotate_batch(self.test_vector, lwes, self.keys.brk)
        self.processed += len(accs)
        return [serialize_glwe(a) for a in accs]


class SimulatedCluster:
    """Primary + secondaries executing the distributed bootstrap."""

    def __init__(self, ctx: CkksContext, keys: SwitchingKeySet,
                 num_nodes: int = 8):
        if num_nodes < 1:
            raise ParameterError("need at least one node")
        self.ctx = ctx
        self.keys = keys
        self.boot = SchemeSwitchBootstrapper(ctx, keys)
        self.nodes = [SimulatedNode(i, keys, self.boot._test_vector)
                      for i in range(num_nodes)]
        self.comm = CommLog()

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def bootstrap(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Distributed Algorithm 2; output identical to the single-node
        bootstrapper's."""
        if ct.level != 0:
            raise ParameterError("expects a level-0 ciphertext")
        n = self.ctx.n
        two_n = 2 * n
        q = ct.basis.moduli[0]

        # Steps 1-2 + extraction happen on the primary.
        c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
        c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
        c0_prime = (two_n * c0) % q
        c1_prime = (two_n * c1) % q
        c0_ms = (two_n * c0 - c0_prime) // q
        c1_ms = (two_n * c1 - c1_prime) // q
        lwes = [self.boot._extract_mod_2n(c1_ms, c0_ms, i, two_n)
                for i in range(n)]

        # Step 3: distribute, node by node (the paper's send policy).
        schedule = make_schedule(n, self.num_nodes)
        accs: List[GlweCiphertext] = []
        for assignment, node in zip(schedule.nodes, self.nodes):
            part = lwes[assignment.start: assignment.stop]
            wire_in = [serialize_lwe(lwe) for lwe in part]
            if not assignment.is_primary:
                for blob in wire_in:
                    self.comm.record(0, node.node_id, blob)
            wire_out = node.process(wire_in)
            if not assignment.is_primary:
                for blob in wire_out:
                    self.comm.record(node.node_id, 0, blob)
            accs.extend(deserialize_glwe(b) for b in wire_out)

        # Steps 3c-5 on the primary: reuse the reference implementation by
        # splicing the gathered accumulators into its pipeline.
        from ..math.rns import RnsPoly
        from ..tfhe.repack import repack

        packed = repack([a.to_eval() for a in accs], self.keys.auto_keys)
        ct_prime = GlweCiphertext(
            mask=[RnsPoly.from_int_coeffs(n, self.boot.raised_basis, c1_prime)],
            body=RnsPoly.from_int_coeffs(n, self.boot.raised_basis, c0_prime),
        )
        ct_dprime = packed + ct_prime
        p = self.boot.raised_basis.moduli[-1]
        w = (p - 1) // two_n
        body = (ct_dprime.body * w).rescale_last_limb().to_eval()
        mask = (ct_dprime.mask[0] * w).rescale_last_limb().to_eval()
        return CkksCiphertext(c0=body, c1=mask, scale=ct.scale)

    def utilisation(self) -> Dict[int, int]:
        """BlindRotates executed per node."""
        return {node.node_id: node.processed for node in self.nodes}
