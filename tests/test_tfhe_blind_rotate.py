"""Tests for BlindRotate (Algorithm 1), test vectors, extraction, repack."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis, RnsPoly
from repro.math.sampling import Sampler
from repro.tfhe.blind_rotate import (
    BlindRotateKey,
    blind_rotate,
    blind_rotate_batch,
    build_test_vector,
)
from repro.tfhe.extract import (
    embed_lwe,
    extract_lwe,
    extract_rns_lwe,
    rlwe_secret_as_lwe_key,
)
from repro.tfhe.glwe import GlweSecretKey, glwe_decrypt_coeffs, glwe_encrypt
from repro.tfhe.keyswitch import AutomorphismKeySet
from repro.tfhe.lwe import LweSecretKey, lwe_encrypt, lwe_phase
from repro.tfhe.repack import repack, repack_exponents

N = 32
Q = find_ntt_primes(28, N, 1)[0]
BASIS = RnsBasis([Q])
GADGET = GadgetVector(q=Q, base_bits=7, digits=4)
N_T = 16


@pytest.fixture(scope="module")
def keys():
    s = Sampler(99)
    lwe_sk = LweSecretKey.generate(N_T, s)
    glwe_sk = GlweSecretKey.generate(N, 1, s)
    brk = BlindRotateKey.generate(lwe_sk, glwe_sk, BASIS, GADGET, s)
    return lwe_sk, glwe_sk, brk


class TestTestVector:
    def test_negacyclic_check_enforced(self):
        with pytest.raises(ParameterError):
            build_test_vector(lambda t: 1, N, BASIS)  # constant is not negacyclic

    def test_vector_semantics_plaintext(self):
        """const(f * X^phi) == g(phi) for every phi, checked in plaintext."""
        def g(t):
            t = t % (2 * N)
            return (Q // 8) * (1 if t < N else -1) % Q

        f = build_test_vector(g, N, BASIS)
        from repro.tfhe.glwe import _shift_rns
        for phi in range(2 * N):
            rotated = _shift_rns(f, phi)
            got = int(rotated.limbs[0][0])
            assert got == g(phi) % Q, f"phi={phi}"

    def test_linear_lut_vector(self):
        """g(t) = c*t on [0, N) extended anti-periodically."""
        def g(t):
            t = t % (2 * N)
            return (17 * t) % Q if t < N else (-17 * (t - N)) % Q

        f = build_test_vector(g, N, BASIS)
        from repro.tfhe.glwe import _shift_rns
        for phi in range(2 * N):
            got = int(_shift_rns(f, phi).limbs[0][0])
            assert got == g(phi), f"phi={phi}"


class TestBlindRotate:
    def _sign_lut(self):
        def g(t):
            t = t % (2 * N)
            return (Q // 8) * (1 if t < N else -1) % Q
        return g

    def test_rotation_matches_phase(self, keys):
        lwe_sk, glwe_sk, brk = keys
        s = Sampler(1)
        g = self._sign_lut()
        f = build_test_vector(g, N, BASIS)
        # Message in upper half-plane of Z_2N.
        m = N // 4
        ct = lwe_encrypt(m, lwe_sk, 2 * N, s, error_std=0.5)
        phi = lwe_phase(ct, lwe_sk) % (2 * N)
        acc = blind_rotate(f, ct, brk)
        const = int(glwe_decrypt_coeffs(acc, glwe_sk)[0])
        expected = g(phi)
        expected = expected - Q if expected > Q // 2 else expected
        assert abs(const - expected) < Q // 64

    @pytest.mark.parametrize("phase_target", [0, 5, N - 1, N + 3, 2 * N - 1])
    def test_various_phases(self, keys, phase_target):
        lwe_sk, glwe_sk, brk = keys
        s = Sampler(2 + phase_target)
        def g(t):
            t = t % (2 * N)
            c = Q // (8 * N)
            return (c * t) % Q if t < N else (-c * (t - N)) % Q

        f = build_test_vector(g, N, BASIS)
        ct = lwe_encrypt(phase_target, lwe_sk, 2 * N, s, error_std=0.0)
        phi = lwe_phase(ct, lwe_sk) % (2 * N)
        acc = blind_rotate(f, ct, brk)
        const = int(glwe_decrypt_coeffs(acc, glwe_sk)[0]) % Q
        assert min((const - g(phi)) % Q, (g(phi) - const) % Q) < Q // 256

    def test_wrong_modulus_rejected(self, keys):
        lwe_sk, _, brk = keys
        s = Sampler(3)
        f = build_test_vector(self._sign_lut(), N, BASIS)
        ct = lwe_encrypt(0, lwe_sk, 4 * N, s)
        with pytest.raises(ParameterError):
            blind_rotate(f, ct, brk)

    def test_batch_matches_sequential(self, keys):
        lwe_sk, glwe_sk, brk = keys
        s = Sampler(4)
        f = build_test_vector(self._sign_lut(), N, BASIS)
        cts = [lwe_encrypt(i * 7, lwe_sk, 2 * N, s, error_std=0.5) for i in range(4)]
        batch = blind_rotate_batch(f, cts, brk)
        for ct, acc_b in zip(cts, batch):
            acc_s = blind_rotate(f, ct, brk)
            got_b = int(glwe_decrypt_coeffs(acc_b, glwe_sk)[0]) % Q
            got_s = int(glwe_decrypt_coeffs(acc_s, glwe_sk)[0]) % Q
            # Same inputs, same keys -> identical ciphertexts.
            assert got_b == got_s

    def test_key_size_accounting(self, keys):
        _, __, brk = keys
        rows, cols = brk.plus[0].matrix_shape()
        expected = N_T * 2 * rows * cols * N * Q.bit_length() // 8
        assert brk.size_bytes() == expected


class TestExtract:
    def test_extract_phase_identity(self, keys):
        """Eq. 2: the LWE phase equals the RLWE phase coefficient."""
        _, glwe_sk, __ = keys
        s = Sampler(5)
        m = np.zeros(N, dtype=object)
        m[0], m[3], m[N - 1] = 1000, -2000, 3000
        ct = glwe_encrypt(RnsPoly.from_int_coeffs(N, BASIS, m), glwe_sk, s)
        rlwe_phase = glwe_decrypt_coeffs(ct, glwe_sk)
        lwe_key = rlwe_secret_as_lwe_key(glwe_sk.coeffs[0])
        for i in (0, 3, N - 1):
            lwe = extract_lwe(ct, i)
            phase = lwe_phase(lwe, lwe_key)
            assert phase == int(rlwe_phase[i]) % Q

    def test_extract_all_indices(self, keys):
        _, glwe_sk, __ = keys
        s = Sampler(6)
        rng = np.random.default_rng(0)
        m = np.asarray([int(v) for v in rng.integers(-500, 500, N)], dtype=object) * 100
        ct = glwe_encrypt(RnsPoly.from_int_coeffs(N, BASIS, m), glwe_sk, s)
        rlwe_phase = glwe_decrypt_coeffs(ct, glwe_sk)
        lwe_key = rlwe_secret_as_lwe_key(glwe_sk.coeffs[0])
        for i in range(N):
            assert lwe_phase(extract_lwe(ct, i), lwe_key) == int(rlwe_phase[i]) % Q

    def test_rns_extract_matches_single_limb(self, keys):
        _, glwe_sk, __ = keys
        s = Sampler(7)
        m = np.zeros(N, dtype=object)
        m[2] = 12345
        ct = glwe_encrypt(RnsPoly.from_int_coeffs(N, BASIS, m), glwe_sk, s)
        rns = extract_rns_lwe(ct, 2)
        single = extract_lwe(ct, 2)
        lwe_key = rlwe_secret_as_lwe_key(glwe_sk.coeffs[0])
        assert rns.phase(glwe_sk.coeffs[0]) % Q == lwe_phase(single, lwe_key)

    def test_embed_is_inverse_of_extract0(self, keys):
        _, glwe_sk, __ = keys
        s = Sampler(8)
        m = np.zeros(N, dtype=object)
        m[0] = 777
        ct = glwe_encrypt(RnsPoly.from_int_coeffs(N, BASIS, m), glwe_sk, s)
        back = embed_lwe(extract_rns_lwe(ct, 0))
        src = ct.to_coeff()
        assert np.array_equal(back.mask[0].limbs[0], src.mask[0].limbs[0])
        assert int(back.body.limbs[0][0]) == int(src.body.limbs[0][0])

    def test_index_out_of_range(self, keys):
        _, glwe_sk, __ = keys
        s = Sampler(9)
        ct = glwe_encrypt(RnsPoly.zero(N, BASIS), glwe_sk, s)
        with pytest.raises(ParameterError):
            extract_lwe(ct, N)


class TestRepack:
    def test_exponent_list(self):
        assert repack_exponents(8) == [3, 5, 9]
        assert repack_exponents(2) == [3]

    def test_repack_constant_coefficients(self, keys):
        """Pack 4 RLWE cts; coeff i*(N/4) must be 4 * v_i, garbage gone."""
        _, glwe_sk, __ = keys
        s = Sampler(10)
        values = [1000, -2000, 3000, 4000]
        cts = []
        for i, v in enumerate(values):
            m = np.zeros(N, dtype=object)
            m[0] = v
            # Deliberate garbage in other coefficients.
            m[5] = 99999 * (i + 1)
            cts.append(glwe_encrypt(RnsPoly.from_int_coeffs(N, BASIS, m), glwe_sk, s))
        keys_auto = AutomorphismKeySet.generate(
            glwe_sk, repack_exponents(N), BASIS, GADGET, s)
        packed = repack(cts, keys_auto)
        phase = glwe_decrypt_coeffs(packed, glwe_sk)
        stride = N // 4
        for i, v in enumerate(values):
            got = int(phase[i * stride])
            assert abs(got - N * v) < Q // 1024, f"slot {i}: {got} vs {N * v}"
        # Non-stride coefficients only hold noise.
        for j in range(N):
            if j % stride:
                assert abs(int(phase[j])) < Q // 1024

    def test_repack_single(self, keys):
        _, glwe_sk, __ = keys
        s = Sampler(11)
        m = np.zeros(N, dtype=object)
        m[0] = 5555
        ct = glwe_encrypt(RnsPoly.from_int_coeffs(N, BASIS, m), glwe_sk, s)
        keys_auto = AutomorphismKeySet.generate(
            glwe_sk, repack_exponents(N), BASIS, GADGET, s)
        packed = repack([ct], keys_auto)
        got = int(glwe_decrypt_coeffs(packed, glwe_sk)[0])
        assert abs(got - N * 5555) < Q // 1024

    def test_repack_full_ring(self, keys):
        """Pack N ciphertexts: every coefficient position used."""
        _, glwe_sk, __ = keys
        s = Sampler(12)
        values = [(i + 1) * 300 for i in range(N)]
        cts = []
        for v in values:
            m = np.zeros(N, dtype=object)
            m[0] = v
            cts.append(glwe_encrypt(RnsPoly.from_int_coeffs(N, BASIS, m), glwe_sk, s))
        keys_auto = AutomorphismKeySet.generate(
            glwe_sk, repack_exponents(N), BASIS, GADGET, s)
        packed = repack(cts, keys_auto)
        phase = glwe_decrypt_coeffs(packed, glwe_sk)
        for i, v in enumerate(values):
            assert abs(int(phase[i]) - N * v) < Q // 256

    def test_non_power_of_two_rejected(self, keys):
        _, glwe_sk, __ = keys
        s = Sampler(13)
        ct = glwe_encrypt(RnsPoly.zero(N, BASIS), glwe_sk, s)
        keys_auto = AutomorphismKeySet.generate(glwe_sk, [3], BASIS, GADGET, s)
        with pytest.raises(ParameterError):
            repack([ct, ct, ct], keys_auto)
