"""End-to-end tests for the scheme-switching bootstrap (Algorithm 2)."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import (
    BootstrapTrace,
    SchemeSwitchBootstrapper,
    SwitchingKeySet,
    expected_k_prime_std,
    make_schedule,
)

# Small ring so the N blind rotates run in seconds; 30-bit limbs give
# enough noise headroom for the full pipeline.
PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(7))
    sk = gen.secret_key()
    keys = gen.keyset(sk)
    ev = CkksEvaluator(ctx, keys, Sampler(8))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(9), base_bits=4, error_std=0.8)
    boot = SchemeSwitchBootstrapper(ctx, swk)
    return ctx, sk, ev, boot


class TestBootstrapCorrectness:
    def test_refreshes_level(self, stack):
        ctx, sk, ev, boot = stack
        z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        refreshed = boot.bootstrap(ct)
        assert refreshed.level == ctx.max_level
        got = ev.decrypt(refreshed, sk)
        assert np.allclose(got.real, z, atol=0.05), np.max(np.abs(got.real - z))

    def test_complex_message(self, stack):
        ctx, sk, ev, boot = stack
        rng = np.random.default_rng(1)
        z = rng.uniform(-1, 1, ctx.slots) + 1j * rng.uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        got = ev.decrypt(boot.bootstrap(ct), sk)
        assert np.allclose(got, z, atol=0.05)

    def test_enables_further_multiplications(self, stack):
        """The whole point: levels restored, Mult works again."""
        ctx, sk, ev, boot = stack
        z = np.random.default_rng(2).uniform(0.2, 0.9, ctx.slots)
        ct = ev.encrypt(z, level=0)  # exhausted ciphertext
        refreshed = boot.bootstrap(ct)
        prod = ev.mul_relin_rescale(
            refreshed, ev.encrypt(z, level=refreshed.level, scale=refreshed.scale))
        got = ev.decrypt(prod, sk)
        assert np.allclose(got.real, z * z, atol=0.1)

    def test_scale_preserved(self, stack):
        ctx, sk, ev, boot = stack
        ct = ev.encrypt(0.5, level=0)
        assert boot.bootstrap(ct).scale == ct.scale

    def test_rejects_non_level0(self, stack):
        ctx, sk, ev, boot = stack
        ct = ev.encrypt(0.5)  # top level
        with pytest.raises(ParameterError):
            boot.bootstrap(ct)

    def test_trace_counters(self, stack):
        ctx, sk, ev, boot = stack
        trace = BootstrapTrace()
        boot.bootstrap(ev.encrypt(0.1, level=0), trace)
        assert trace.num_lwe == ctx.n
        assert trace.num_blind_rotates == ctx.n
        assert trace.modswitch_ops == 2 * ctx.n
        # Full pack: n - 1 merge-tree keyswitches, no trace levels.
        assert trace.repack_merge_keyswitches == ctx.n - 1
        assert trace.repack_trace_keyswitches == 0
        assert trace.repack_keyswitches == ctx.n - 1
        assert set(trace.step_seconds) == {"extract", "blind_rotate",
                                           "repack", "finish"}

    def test_bootstrap_twice(self, stack):
        """Bootstrap output, burn levels back to 0, bootstrap again."""
        ctx, sk, ev, boot = stack
        z = np.random.default_rng(3).uniform(-0.5, 0.5, ctx.slots)
        ct = ev.encrypt(z, level=0)
        refreshed = boot.bootstrap(ct)
        dropped = ev.drop_to_level(refreshed, 0)
        again = boot.bootstrap(dropped)
        got = ev.decrypt(again, sk)
        assert np.allclose(got.real, z, atol=0.08)


class TestKPrimeBound:
    def test_k_prime_std_prediction(self):
        """Empirical wrap count matches the random-walk model, and stays
        far below the N/2 aliasing bound."""
        rng = np.random.default_rng(4)
        n = 64
        q = (1 << 30) + 1
        trials = []
        for _ in range(200):
            s = rng.integers(-1, 2, n)
            c = rng.integers(0, q, n)
            inner = int(np.dot(c.astype(object), s.astype(object)))
            trials.append(inner // q)
        std = float(np.std(trials))
        predicted = expected_k_prime_std(n)
        assert 0.5 * predicted < std < 2.0 * predicted
        assert max(abs(t) for t in trials) < n // 2


class TestMultiNodeEquivalence:
    def test_partitioned_blind_rotates_match_single_node(self, stack):
        """Running the batch split over k simulated nodes gives bitwise
        the same accumulators as a single node — the basis of the paper's
        hardware-agnostic scaling claim."""
        from repro.tfhe.blind_rotate import blind_rotate_batch
        ctx, sk, ev, boot = stack
        n = ctx.n
        two_n = 2 * n
        ct = ev.encrypt(0.3, level=0)
        q = ct.basis.moduli[0]
        c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
        c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
        c0_ms = (two_n * c0 - (two_n * c0) % q) // q
        c1_ms = (two_n * c1 - (two_n * c1) % q) // q
        lwes = [boot._extract_mod_2n(c1_ms, c0_ms, i, two_n) for i in range(n)]
        single = blind_rotate_batch(boot._test_vector, lwes, boot.keys.brk)
        schedule = make_schedule(n, 4)
        multi = []
        for part in schedule.slices(lwes):
            multi.extend(blind_rotate_batch(boot._test_vector, part, boot.keys.brk))
        for a, b in zip(single, multi):
            assert a.body.to_coeff().limbs[0].tolist() == b.body.to_coeff().limbs[0].tolist()


class TestScheduler:
    def test_even_split(self):
        s = make_schedule(4096, 8)
        assert s.max_per_node == 512
        assert sum(a.count for a in s.nodes) == 4096
        assert s.nodes[0].is_primary and not s.nodes[1].is_primary

    def test_uneven_split(self):
        s = make_schedule(10, 3)
        assert [a.count for a in s.nodes] == [4, 3, 3]
        assert [a.start for a in s.nodes] == [0, 4, 7]

    def test_single_node(self):
        s = make_schedule(100, 1)
        assert s.nodes[0].count == 100

    def test_invalid(self):
        with pytest.raises(ParameterError):
            make_schedule(0, 2)
        with pytest.raises(ParameterError):
            make_schedule(5, 0)

    def test_slices_roundtrip(self):
        s = make_schedule(7, 2)
        parts = s.slices(list(range(7)))
        assert [list(p) for p in parts] == [[0, 1, 2, 3], [4, 5, 6]]
