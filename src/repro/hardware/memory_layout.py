"""On-chip memory layout and NTT address generation (Figures 2-3, §IV-C/D).

Formalises three things the paper describes prose-and-picture style:

* **URAM layout (Fig. 2)** — each 72-bit word holds two 36-bit
  coefficients; the limbs of ``a`` and ``b`` sharing a modulus sit
  adjacent so one fetch feeds both NTT passes with one twiddle read.
* **BRAM layout (Fig. 3)** — 1024x18 primitives, two blocks pair up per
  36-bit coefficient, organised to match the URAM addressing so "the
  address generation logic ... remains the same irrespective of URAM or
  BRAM".
* **NTT address generation (§IV-D)** — coefficients are grouped by the
  twiddle they need: ``n_c = N / 2^cs`` per group, ``n_g = N / n_c``
  groups, ``address = i_g + i_nc * 2^cs``.  Tests prove the map is a
  bijection onto ``[0, N)`` and that butterfly partners differ only in
  the top bit of ``i_nc`` — the property that makes the fetch logic
  trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from ..errors import ParameterError
from .config import HeapHwConfig


@dataclass(frozen=True)
class WordCoordinate:
    """Physical location of one coefficient: block index, word address,
    and which half of the (72-bit URAM / paired-BRAM) word."""

    block: int
    word: int
    half: int


class UramLayout:
    """Fig. 2: coefficient placement in URAM for an RLWE ciphertext."""

    def __init__(self, hw: HeapHwConfig, n: int, limbs: int):
        self.hw = hw
        self.n = n
        self.limbs = limbs
        # Two coefficients per word; a- and b-limbs with the same modulus
        # interleave across the two halves of each word.
        self.words_per_limb_pair = n  # n words hold limb_a[i], limb_b[i] pairs
        self.blocks_per_ciphertext = 2 * limbs * n // (2 * hw.uram_words)

    def locate(self, element: int, limb: int, coeff: int) -> WordCoordinate:
        """Element 0 = ``a``, 1 = ``b``; both share the word so their limbs
        (same modulus) are fetched together (the Fig. 2 pairing)."""
        if element not in (0, 1):
            raise ParameterError("RLWE ciphertext has two ring elements")
        if not (0 <= limb < self.limbs and 0 <= coeff < self.n):
            raise ParameterError("limb/coefficient out of range")
        flat_word = limb * self.n + coeff
        block = flat_word // self.hw.uram_words
        word = flat_word % self.hw.uram_words
        return WordCoordinate(block=block, word=word, half=element)

    def fetch_pair(self, limb: int, coeff: int) -> Tuple[WordCoordinate, WordCoordinate]:
        """One read returns the same-modulus coefficient of both elements."""
        a = self.locate(0, limb, coeff)
        b = self.locate(1, limb, coeff)
        return a, b


class BramLayout:
    """Fig. 3: two 1024x18 BRAM primitives pair per 36-bit coefficient,
    word-organisation matched to URAM."""

    def __init__(self, hw: HeapHwConfig, n: int, limbs: int):
        self.hw = hw
        self.n = n
        self.limbs = limbs
        self.blocks_per_ciphertext = 4 * limbs * n // hw.bram_words

    def locate(self, element: int, limb: int, coeff: int) -> WordCoordinate:
        if element not in (0, 1):
            raise ParameterError("RLWE ciphertext has two ring elements")
        if not (0 <= limb < self.limbs and 0 <= coeff < self.n):
            raise ParameterError("limb/coefficient out of range")
        flat = (element * self.limbs + limb) * self.n + coeff
        pair = flat // self.hw.bram_words   # which 2-block pair
        word = flat % self.hw.bram_words
        return WordCoordinate(block=2 * pair, word=word, half=0)

    def blocks_for(self, element: int, limb: int, coeff: int) -> Tuple[int, int]:
        """The low/high 18-bit halves live in adjacent paired blocks."""
        base = self.locate(element, limb, coeff).block
        return base, base + 1


class NttAddressGenerator:
    """§IV-D: twiddle-grouped butterfly addressing for stage ``cs``."""

    def __init__(self, n: int):
        if n & (n - 1) or n < 2:
            raise ParameterError("N must be a power of two")
        self.n = n

    def group_size(self, cs: int) -> int:
        """``n_c = N / 2^cs`` coefficients share each twiddle."""
        return self.n >> cs

    def num_groups(self, cs: int) -> int:
        return self.n // self.group_size(cs)

    def address(self, cs: int, i_g: int, i_nc: int) -> int:
        """The paper's formula: ``address = i_g + i_nc * 2^cs``."""
        if not (0 <= i_g < self.num_groups(cs)):
            raise ParameterError("group index out of range")
        if not (0 <= i_nc < self.group_size(cs)):
            raise ParameterError("in-group index out of range")
        return i_g + (i_nc << cs)

    def group_addresses(self, cs: int, i_g: int) -> List[int]:
        return [self.address(cs, i_g, i) for i in range(self.group_size(cs))]

    def butterfly_pairs(self, cs: int, i_g: int) -> Iterator[Tuple[int, int]]:
        """Butterfly operands within a group: partners are half a group
        apart, i.e. they differ in the top bit of ``i_nc`` only."""
        half = self.group_size(cs) // 2
        for i in range(half):
            yield (self.address(cs, i_g, i), self.address(cs, i_g, i + half))

    def stage_coverage(self, cs: int) -> List[int]:
        """All addresses touched in a stage (must be exactly [0, N))."""
        out = []
        for g in range(self.num_groups(cs)):
            out.extend(self.group_addresses(cs, g))
        return out
