"""The scheme-switching CKKS bootstrap (paper Algorithm 2) — local path.

Given a level-0 CKKS ciphertext ``ct = (c0, c1)`` modulo the base limb
``q`` with message ``m`` (``|m| << q``), produce a ciphertext modulo the
full ``Q`` encrypting the same ``m`` — *without* the linear transforms
and sine approximation of conventional bootstrapping.

The algorithm itself — stages, arithmetic and the full correctness
derivation — lives in :mod:`repro.switching.pipeline`; this class is a
thin shell that plugs the in-process :class:`~repro.switching.pipeline.
LocalExecutor` into the shared :class:`~repro.switching.pipeline.
BootstrapPipeline`.  The multi-node simulation
(:mod:`repro.switching.cluster_sim`) wraps the *same* pipeline with a
message-passing executor, so the two paths cannot drift.
"""

from __future__ import annotations

import math
from typing import Optional

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..tfhe.blind_rotate import get_monomial_cache
from .keys import SwitchingKeySet
from .pipeline import BootstrapPipeline, BootstrapTrace, extract_mod_2n

__all__ = ["BootstrapTrace", "SchemeSwitchBootstrapper",
           "expected_k_prime_std"]


class SchemeSwitchBootstrapper:
    """Executes Algorithm 2 against a CKKS context and switching keys."""

    def __init__(self, ctx: CkksContext, keys: SwitchingKeySet,
                 blind_rotate_engine: str = "vectorized",
                 repack_engine: str = "vectorized"):
        """``blind_rotate_engine`` selects the BlindRotate backend for the
        N-way fan-out of step 3: ``"vectorized"`` (default) runs the whole
        batch through :mod:`repro.tfhe.batch_engine`'s tensor engine,
        ``"reference"`` falls back to the scalar per-ciphertext oracle.
        ``repack_engine`` does the same for step 3c's LWE->RLWE packing
        (:mod:`repro.tfhe.repack_engine` vs the scalar recursion).  All
        combinations are bit-identical; the flags exist for cross-checking."""
        self.ctx = ctx
        self.keys = keys
        self.raised_basis = keys.raised_basis
        self.blind_rotate_engine = blind_rotate_engine
        self.repack_engine = repack_engine
        self.pipeline = BootstrapPipeline(
            ctx, keys, blind_rotate_engine=blind_rotate_engine,
            repack_engine=repack_engine)
        self._test_vector = self.pipeline.test_vector
        self._mono_cache = get_monomial_cache(ctx.n, self.raised_basis)

    def bootstrap(self, ct: CkksCiphertext,
                  trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Refresh a level-0 ciphertext to the top level (minus one)."""
        return self.pipeline.run(ct, trace)

    # Eq. 2 extraction, kept here as an alias for tests/examples that
    # exercise the step in isolation.
    _extract_mod_2n = staticmethod(extract_mod_2n)


def expected_k_prime_std(n: int) -> float:
    """Predicted std of the wrap count ``K'`` for a ternary secret.

    Each nonzero secret digit contributes ``+-U(0,1)`` wraps (uniform mask
    residue over ``q``); with density 2/3 the per-term variance is
    ``(2/3) * E[U^2] = 2/9``, so ``std(K') ~ sqrt(2n/9)`` — far below the
    ``N/2`` aliasing bound of the test function for all practical ``n``.
    """
    return math.sqrt(n * 2.0 / 9.0)
