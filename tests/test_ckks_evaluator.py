"""End-to-end tests for CKKS encrypt/evaluate/decrypt."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import LevelError, ScaleMismatchError
from repro.math.sampling import Sampler
from repro.params import make_toy_params

PARAMS = make_toy_params(n=32, limbs=4, limb_bits=28, scale_bits=26)


@pytest.fixture(scope="module")
def setup():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(1234))
    sk = gen.secret_key()
    keys = gen.keyset(sk, rotations=[1, 2, 5], conjugate=True)
    ev = CkksEvaluator(ctx, keys, Sampler(99))
    return ctx, sk, ev


def rand_slots(seed, ctx, real=True, lo=-1.0, hi=1.0):
    rng = np.random.default_rng(seed)
    z = rng.uniform(lo, hi, ctx.slots)
    if not real:
        z = z + 1j * rng.uniform(lo, hi, ctx.slots)
    return z


class TestEncryptDecrypt:
    def test_roundtrip_real(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(0, ctx)
        got = ev.decrypt(ev.encrypt(z), sk)
        assert np.allclose(got.real, z, atol=1e-3)

    def test_roundtrip_complex(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(1, ctx, real=False)
        got = ev.decrypt(ev.encrypt(z), sk)
        assert np.allclose(got, z, atol=1e-3)

    def test_encrypt_at_lower_level(self, setup):
        ctx, sk, ev = setup
        ct = ev.encrypt(rand_slots(2, ctx), level=1)
        assert ct.level == 1
        got = ev.decrypt(ct, sk)
        assert np.allclose(got.real, rand_slots(2, ctx), atol=1e-3)

    def test_fresh_ciphertext_metadata(self, setup):
        ctx, sk, ev = setup
        ct = ev.encrypt(rand_slots(3, ctx))
        assert ct.level == ctx.max_level
        assert ct.scale == ctx.params.scale


class TestAdditive:
    def test_add(self, setup):
        ctx, sk, ev = setup
        a, b = rand_slots(4, ctx), rand_slots(5, ctx)
        got = ev.decrypt(ev.add(ev.encrypt(a), ev.encrypt(b)), sk)
        assert np.allclose(got.real, a + b, atol=1e-3)

    def test_sub(self, setup):
        ctx, sk, ev = setup
        a, b = rand_slots(6, ctx), rand_slots(7, ctx)
        got = ev.decrypt(ev.sub(ev.encrypt(a), ev.encrypt(b)), sk)
        assert np.allclose(got.real, a - b, atol=1e-3)

    def test_negate(self, setup):
        ctx, sk, ev = setup
        a = rand_slots(8, ctx)
        got = ev.decrypt(ev.negate(ev.encrypt(a)), sk)
        assert np.allclose(got.real, -a, atol=1e-3)

    def test_add_plain(self, setup):
        ctx, sk, ev = setup
        a, b = rand_slots(9, ctx), rand_slots(10, ctx)
        got = ev.decrypt(ev.add_plain(ev.encrypt(a), b), sk)
        assert np.allclose(got.real, a + b, atol=1e-3)

    def test_sub_plain(self, setup):
        ctx, sk, ev = setup
        a, b = rand_slots(11, ctx), rand_slots(12, ctx)
        got = ev.decrypt(ev.sub_plain(ev.encrypt(a), b), sk)
        assert np.allclose(got.real, a - b, atol=1e-3)

    def test_add_different_levels_aligns(self, setup):
        ctx, sk, ev = setup
        a, b = rand_slots(13, ctx), rand_slots(14, ctx)
        ct_a = ev.encrypt(a)
        ct_b = ev.encrypt(b, level=1)
        out = ev.add(ct_a, ct_b)
        assert out.level == 1
        assert np.allclose(ev.decrypt(out, sk).real, a + b, atol=1e-3)


class TestMultiplicative:
    def test_mul_plain_and_rescale(self, setup):
        ctx, sk, ev = setup
        a, b = rand_slots(15, ctx), rand_slots(16, ctx)
        ct = ev.rescale(ev.mul_plain(ev.encrypt(a), b))
        assert ct.level == ctx.max_level - 1
        assert np.allclose(ev.decrypt(ct, sk).real, a * b, atol=1e-2)

    def test_ct_ct_multiply(self, setup):
        ctx, sk, ev = setup
        a, b = rand_slots(17, ctx), rand_slots(18, ctx)
        ct = ev.mul_relin_rescale(ev.encrypt(a), ev.encrypt(b))
        got = ev.decrypt(ct, sk)
        assert np.allclose(got.real, a * b, atol=1e-2)

    def test_square(self, setup):
        ctx, sk, ev = setup
        a = rand_slots(19, ctx)
        ct = ev.rescale(ev.square(ev.encrypt(a)))
        assert np.allclose(ev.decrypt(ct, sk).real, a * a, atol=1e-2)

    def test_multiplication_chain_uses_all_levels(self, setup):
        """L=4 limbs supports 3 sequential rescaled multiplications."""
        ctx, sk, ev = setup
        a = rand_slots(20, ctx, lo=0.5, hi=1.0)
        ct = ev.encrypt(a)
        expected = a.copy()
        for __ in range(ctx.max_level):
            companion = ev.encrypt(a, level=ct.level, scale=ct.scale)
            ct = ev.mul_relin_rescale(ct, companion)
            expected = expected * a
        assert ct.level == 0
        assert np.allclose(ev.decrypt(ct, sk).real, expected, atol=5e-2)

    def test_exhausted_levels_raise(self, setup):
        ctx, sk, ev = setup
        ct = ev.encrypt(rand_slots(21, ctx), level=0)
        with pytest.raises(LevelError):
            ev.rescale(ct)

    def test_mul_scalar_int(self, setup):
        ctx, sk, ev = setup
        a = rand_slots(22, ctx)
        got = ev.decrypt(ev.mul_scalar_int(ev.encrypt(a), 3), sk)
        assert np.allclose(got.real, 3 * a, atol=1e-2)

    def test_scale_mismatch_detected(self, setup):
        ctx, sk, ev = setup
        a = ev.encrypt(rand_slots(23, ctx))
        b = ev.encrypt(rand_slots(24, ctx), scale=2.0**21)
        with pytest.raises(ScaleMismatchError):
            ev.add(a, b)


class TestRotation:
    def test_rotate_by_one(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(25, ctx)
        got = ev.decrypt(ev.rotate(ev.encrypt(z), 1), sk)
        assert np.allclose(got.real, np.roll(z, -1), atol=1e-3)

    def test_rotate_by_five(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(26, ctx)
        got = ev.decrypt(ev.rotate(ev.encrypt(z), 5), sk)
        assert np.allclose(got.real, np.roll(z, -5), atol=1e-3)

    def test_rotations_compose(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(27, ctx)
        ct = ev.rotate(ev.rotate(ev.encrypt(z), 1), 2)
        # 1 + 2 = 3; no direct key for 3 needed since we composed.
        assert np.allclose(ev.decrypt(ct, sk).real, np.roll(z, -3), atol=1e-3)

    def test_conjugate(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(28, ctx, real=False)
        got = ev.decrypt(ev.conjugate(ev.encrypt(z)), sk)
        assert np.allclose(got, np.conj(z), atol=1e-3)

    def test_missing_rotation_key_raises(self, setup):
        from repro.errors import KeyError_
        ctx, sk, ev = setup
        with pytest.raises(KeyError_):
            ev.rotate(ev.encrypt(rand_slots(29, ctx)), 7)

    def test_rotate_at_low_level(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(30, ctx)
        ct = ev.encrypt(z, level=1)
        got = ev.decrypt(ev.rotate(ct, 2), sk)
        assert np.allclose(got.real, np.roll(z, -2), atol=1e-3)


class TestLevelManagement:
    def test_drop_to_level(self, setup):
        ctx, sk, ev = setup
        z = rand_slots(31, ctx)
        ct = ev.drop_to_level(ev.encrypt(z), 1)
        assert ct.level == 1
        assert np.allclose(ev.decrypt(ct, sk).real, z, atol=1e-3)

    def test_raise_level_rejected(self, setup):
        ctx, sk, ev = setup
        ct = ev.encrypt(rand_slots(32, ctx), level=1)
        with pytest.raises(LevelError):
            ev.drop_to_level(ct, 2)


class TestHomomorphicCircuits:
    def test_inner_product_via_rotations(self, setup):
        """sum_k a_k b_k in slot 0 via mult + log-step rotations (n=16)."""
        ctx, sk, ev = setup
        a, b = rand_slots(33, ctx), rand_slots(34, ctx)
        ct = ev.mul_relin_rescale(ev.encrypt(a), ev.encrypt(b))
        shift = 1
        while shift < ctx.slots:
            if shift in (1, 2):
                ct = ev.add(ct, ev.rotate(ct, shift))
                shift *= 2
            else:
                # compose shift 4 = 2+2 rotations via repeated rotate(2)... use key 5?
                break
        # partial sums of 4 consecutive slots after shifts 1,2:
        got = ev.decrypt(ct, sk).real
        expect = np.array([np.sum((a * b)[i:i + 4]) for i in range(ctx.slots - 3)])
        assert np.allclose(got[: ctx.slots - 3], expect, atol=5e-2)

    def test_polynomial_evaluation(self, setup):
        """Evaluate 1 + x + x^2 homomorphically with proper scale bridging."""
        ctx, sk, ev = setup
        x = rand_slots(35, ctx, lo=-0.9, hi=0.9)
        ct = ev.encrypt(x)
        x2 = ev.mul_relin_rescale(ct, ct)
        # Bring x to x2's scale: multiply by 1 encoded at the bridging
        # scale, then rescale (standard CKKS scale management).
        q_last = ct.basis.moduli[-1]
        bridge = x2.scale * q_last / ct.scale
        x1 = ev.rescale(ev.mul_plain(ct, np.ones(ctx.slots), scale=bridge))
        acc = ev.add(x2, x1)
        acc = ev.add_plain(acc, np.ones(ctx.slots))
        got = ev.decrypt(acc, sk).real
        assert np.allclose(got, 1 + x + x * x, atol=5e-2)


class TestContextValidation:
    def test_dnum_bounds(self):
        from repro.ckks import CkksContext
        from repro.errors import ParameterError
        with pytest.raises(ParameterError):
            CkksContext(PARAMS.ckks, dnum=0)
        with pytest.raises(ParameterError):
            CkksContext(PARAMS.ckks, dnum=99)

    def test_digit_groups_partition_limbs(self):
        from repro.ckks import CkksContext
        ctx = CkksContext(PARAMS.ckks, dnum=2)
        groups = ctx.digit_groups(ctx.max_level)
        flat = [i for g in groups for i in g]
        assert flat == list(range(ctx.params.max_limbs))

    def test_ciphertext_size_accounting(self):
        from repro.ckks import CkksContext
        ctx = CkksContext(PARAMS.ckks, dnum=2)
        ct = CkksEvaluator(ctx, CkksKeyGenerator(ctx, Sampler(1)).keyset(
            CkksKeyGenerator(ctx, Sampler(1)).secret_key()), Sampler(2)
        ).encrypt(0.5)
        bits = sum(q.bit_length() for q in ct.basis.moduli)
        assert ct.size_bytes() == 2 * bits * ctx.n // 8
