"""Residue number system (RNS) machinery for multi-limb CKKS arithmetic.

The CKKS ciphertext modulus ``Q = prod(q_i)`` is far wider than a machine
word, so polynomials are stored as a stack of *limbs*: one residue
polynomial per prime ``q_i`` (paper Section II-A).  This module provides

* :class:`RnsBasis` — an ordered set of NTT-friendly primes with cached
  CRT constants;
* :class:`RnsPoly` — a stack of limb polynomials with vectorised
  arithmetic, per-limb NTT domain tracking, limb dropping (Rescale) and
  limb extension (ModUp); and
* :func:`basis_convert` — the approximate fast basis conversion
  (HPS-style) that the paper's external-product unit executes during
  ``ModUp``/``ModDown`` in the hybrid key switch.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from .automorphism import get_automorphism_perm
from .modular import ModulusEngine, crt_compose
from .ntt import get_ntt_engine, get_stacked_ntt_engine

COEFF = "coeff"
EVAL = "eval"

#: Exclusive bound for a uint64 lane; BConv plans check their deferred
#: accumulation bounds exactly against this at plan-build time.
_U64_MAX = (1 << 64) - 1


class RnsBasis:
    """An ordered list of distinct primes ``q_0, ..., q_{L-1}``."""

    def __init__(self, moduli: Sequence[int]):
        moduli = [int(q) for q in moduli]
        if len(set(moduli)) != len(moduli):
            raise ParameterError("RNS moduli must be distinct")
        if not moduli:
            raise ParameterError("RNS basis must be non-empty")
        self.moduli: List[int] = moduli
        self.engines = [ModulusEngine(q) for q in moduli]

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __getitem__(self, i):
        return self.moduli[i]

    @property
    def product(self) -> int:
        prod = 1
        for q in self.moduli:
            prod *= q
        return prod

    def prefix(self, count: int) -> "RnsBasis":
        return RnsBasis(self.moduli[:count])

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __repr__(self) -> str:  # pragma: no cover
        bits = [q.bit_length() for q in self.moduli]
        return f"RnsBasis(L={len(self)}, bits={bits})"


class RnsPoly:
    """A polynomial in ``R_Q`` stored limb-wise.

    ``limbs[i]`` is the residue vector modulo ``basis[i]``; every limb is
    in the same domain (all-coeff or all-eval), tracked by ``domain``.
    """

    __slots__ = ("n", "basis", "limbs", "domain")

    def __init__(self, n: int, basis: RnsBasis, limbs: List[np.ndarray], domain: str = COEFF):
        if len(limbs) != len(basis):
            raise ParameterError("limb count does not match basis size")
        self.n = n
        self.basis = basis
        self.limbs = limbs
        self.domain = domain

    # -- constructors -------------------------------------------------------------

    @classmethod
    def zero(cls, n: int, basis: RnsBasis, domain: str = COEFF) -> "RnsPoly":
        return cls(n, basis, [e.zeros(n) for e in basis.engines], domain)

    @classmethod
    def from_int_coeffs(cls, n: int, basis: RnsBasis, coeffs: Iterable[int]) -> "RnsPoly":
        """Reduce a vector of (possibly huge / signed) integers limb-wise."""
        raw = list(coeffs) if not isinstance(coeffs, np.ndarray) else coeffs
        coeffs = np.asarray(raw, dtype=object)  # heaplint: disable=HL001 big-int ingest, not a hot loop
        if coeffs.shape != (n,):
            raise ParameterError(f"expected {n} coefficients, got {coeffs.shape}")
        limbs = [e.asarray(coeffs) for e in basis.engines]
        return cls(n, basis, limbs, COEFF)

    # -- domain management -----------------------------------------------------------

    def _stackable(self):
        """Int64 limb stack when every modulus has a fast stacked NTT."""
        if not all(
            isinstance(limb, np.ndarray) and limb.dtype == np.int64
            for limb in self.limbs
        ):
            return None
        try:
            engine = get_stacked_ntt_engine(self.n, self.basis.moduli)
        except ParameterError:
            return None
        return engine, np.stack(self.limbs)

    def to_eval(self) -> "RnsPoly":
        if self.domain == EVAL:
            return self
        stacked = self._stackable()
        if stacked is not None:
            engine, stack = stacked
            out = engine.forward(stack)
            return RnsPoly(self.n, self.basis, list(out), EVAL)
        limbs = [
            get_ntt_engine(self.n, q).forward(limb)
            for q, limb in zip(self.basis.moduli, self.limbs)
        ]
        return RnsPoly(self.n, self.basis, limbs, EVAL)

    def to_coeff(self) -> "RnsPoly":
        if self.domain == COEFF:
            return self
        stacked = self._stackable()
        if stacked is not None:
            engine, stack = stacked
            out = engine.inverse(stack)
            return RnsPoly(self.n, self.basis, list(out), COEFF)
        limbs = [
            get_ntt_engine(self.n, q).inverse(limb)
            for q, limb in zip(self.basis.moduli, self.limbs)
        ]
        return RnsPoly(self.n, self.basis, limbs, COEFF)

    # -- arithmetic -----------------------------------------------------------------

    def _check(self, other: "RnsPoly") -> None:
        if self.n != other.n or self.basis.moduli != other.basis.moduli:
            raise ParameterError("RNS poly mismatch (n or basis)")

    def _aligned(self, other: "RnsPoly"):
        self._check(other)
        if self.domain == other.domain:
            return self, other, self.domain
        return self.to_coeff(), other.to_coeff(), COEFF

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        a, b, dom = self._aligned(other)
        limbs = [e.add(x, y) for e, x, y in zip(self.basis.engines, a.limbs, b.limbs)]
        return RnsPoly(self.n, self.basis, limbs, dom)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        a, b, dom = self._aligned(other)
        limbs = [e.sub(x, y) for e, x, y in zip(self.basis.engines, a.limbs, b.limbs)]
        return RnsPoly(self.n, self.basis, limbs, dom)

    def __neg__(self) -> "RnsPoly":
        limbs = [e.neg(x) for e, x in zip(self.basis.engines, self.limbs)]
        return RnsPoly(self.n, self.basis, limbs, self.domain)

    def __mul__(self, other) -> "RnsPoly":
        if isinstance(other, (int, np.integer)):
            limbs = [
                e.mul(x, int(other) % e.q) for e, x in zip(self.basis.engines, self.limbs)
            ]
            return RnsPoly(self.n, self.basis, limbs, self.domain)
        self._check(other)
        a, b = self.to_eval(), other.to_eval()
        from ..profiling import record_mul

        record_mul(self.n * len(self.basis))
        limbs = [e.mul(x, y) for e, x, y in zip(self.basis.engines, a.limbs, b.limbs)]
        return RnsPoly(self.n, self.basis, limbs, EVAL)

    __rmul__ = __mul__

    def automorphism(self, t: int) -> "RnsPoly":
        """Apply ``X -> X^t`` limb-wise (used by Rotate/Conjugate)."""
        src_poly = self.to_coeff()
        n = self.n
        perm = get_automorphism_perm(n, t)
        limbs = []
        for e, limb in zip(self.basis.engines, src_poly.limbs):
            picked = limb[perm.src]
            limbs.append(np.where(perm.src_flip, e.neg(picked), picked))
        return RnsPoly(n, self.basis, limbs, COEFF)

    # -- limb management (Rescale / level handling) ------------------------------------

    def drop_last_limb(self) -> "RnsPoly":
        """Forget the last limb (basis shrink without value correction)."""
        if len(self.basis) == 1:
            raise ParameterError("cannot drop the last remaining limb")
        return RnsPoly(self.n, self.basis.prefix(len(self.basis) - 1),
                       self.limbs[:-1], self.domain)

    def rescale_last_limb(self) -> "RnsPoly":
        """Exact RNS rescale: divide by the last prime ``q_l`` and round.

        Standard full-RNS trick: for each remaining limb ``q_i`` compute
        ``(x_i - x_l) * q_l^{-1} mod q_i``.  Requires coefficient domain
        for the cross-limb subtraction of ``x_l``.
        """
        if len(self.basis) == 1:
            raise ParameterError("cannot rescale a single-limb polynomial")
        src = self.to_coeff()
        q_last = self.basis.moduli[-1]
        x_last = src.limbs[-1]
        new_basis = self.basis.prefix(len(self.basis) - 1)
        limbs = []
        for e, limb in zip(new_basis.engines, src.limbs[:-1]):
            diff = e.sub(limb, e.reduce(x_last))
            limbs.append(e.mul(diff, e.inv(q_last)))
        return RnsPoly(self.n, new_basis, limbs, COEFF)

    # -- integer views -------------------------------------------------------------------

    def to_int_coeffs(self) -> np.ndarray:
        """CRT-compose into big-int coefficients in ``[0, Q)`` (object array)."""
        src = self.to_coeff()
        stack = np.stack([np.asarray(limb, dtype=object) for limb in src.limbs])  # heaplint: disable=HL001 CRT big-int egress, not a hot loop
        return crt_compose(stack, self.basis.moduli)

    def to_centered_int_coeffs(self) -> np.ndarray:
        """CRT-compose into centred big-int coefficients in ``(-Q/2, Q/2]``."""
        vals = self.to_int_coeffs()
        big_q = self.basis.product
        half = big_q // 2
        return np.where(vals > half, vals - big_q, vals)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.n, self.basis, [limb.copy() for limb in self.limbs], self.domain)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RnsPoly):
            return NotImplemented
        if self.n != other.n or self.basis.moduli != other.basis.moduli:
            return False
        a, b = self.to_coeff(), other.to_coeff()
        return all(np.array_equal(x, y) for x, y in zip(a.limbs, b.limbs))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RnsPoly(n={self.n}, L={len(self.basis)}, domain={self.domain})"


class BconvPlan:
    """Cached constants for one ``(source basis, target basis)`` BConv pair.

    The HPS conversion ``y_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i)
    mod p_j`` needs, per pair of bases, the scaling vector
    ``q~_i = (Q/q_i)^{-1} mod q_i`` and the factor matrix
    ``F[j, i] = (Q/q_i) mod p_j``.  The old path recomputed the big-int
    quotients ``Q // q_i`` (and a modular inverse) on *every call*; a plan
    computes them once, keyed on the moduli tuples, and bakes them into
    engine-dtype tables so the whole conversion is a single stacked
    matrix-MAC — the fused-MAC workload of paper Section IV-A.

    When every modulus on both sides is a fast prime (``q < 2^31``) the
    conversion runs as one uint64 matmul with lazy reduction; otherwise it
    falls back to exact object-dtype accumulation (bit-identical either
    way, since all arithmetic is exact mod ``p_j``).
    """

    def __init__(self, src_moduli: Sequence[int], dst_moduli: Sequence[int]):
        self.src_moduli: Tuple[int, ...] = tuple(int(q) for q in src_moduli)
        self.dst_moduli: Tuple[int, ...] = tuple(int(q) for q in dst_moduli)
        if not self.src_moduli or not self.dst_moduli:
            raise ParameterError("BConv bases must be non-empty")
        big_q = 1
        for q in self.src_moduli:
            big_q *= q
        self.src_product = big_q
        # q~_i = (Q/q_i)^{-1} mod q_i  and  F[j, i] = (Q/q_i) mod p_j.
        q_star = [big_q // q for q in self.src_moduli]
        self.q_tilde: List[int] = [
            pow(q_star[i] % q, -1, q) for i, q in enumerate(self.src_moduli)
        ]
        self.factors: List[List[int]] = [
            [q_star[i] % pj for i in range(len(self.src_moduli))]
            for pj in self.dst_moduli
        ]
        self.rows_in = len(self.src_moduli)
        self.rows_out = len(self.dst_moduli)
        self.fast = all(q < (1 << 31) for q in self.src_moduli + self.dst_moduli)
        if self.fast:
            self._q_tilde_u = np.asarray(self.q_tilde, dtype=np.uint64).reshape(-1, 1)
            self._src_q_u = np.asarray(self.src_moduli, dtype=np.uint64).reshape(-1, 1)
            self._dst_q_u = np.asarray(self.dst_moduli, dtype=np.uint64).reshape(-1, 1)
            self._factors_u = np.asarray(self.factors, dtype=np.uint64)
            # Exact (python-int) worst case of one output row of the
            # deferred matmul: every scaled residue at its maximum q_i - 1.
            worst = max(
                sum((q - 1) * f for q, f in zip(self.src_moduli, row))
                for row in self.factors
            )
            self._matmul_ok = worst <= _U64_MAX

    def convert_stack(self, stack: np.ndarray) -> np.ndarray:
        """Fast-path conversion of an ``(L_in, ..., N)`` canonical stack.

        Row ``i`` holds residues mod ``src_moduli[i]``; returns the
        ``(L_out, ..., N)`` stack of residues mod ``dst_moduli[j]``.
        Canonical ``int64`` in, canonical ``int64`` out.
        """
        arr = np.asarray(stack)
        trailing = arr.shape[1:]
        a = np.ascontiguousarray(arr, dtype=np.int64).view(np.uint64)
        a = a.reshape(self.rows_in, -1)
        # lazy-bound: canonical residue (< q_i < 2^31) times q~_i (< q_i)
        # stays below 2^62; reduced immediately, row-wise.
        scaled = (a * self._q_tilde_u) % self._src_q_u
        if self._matmul_ok:
            # lazy-bound: output row j accumulates sum_i (q_i - 1) * F[j, i];
            # the exact worst case was checked against 2^64 - 1 at plan
            # build (self._matmul_ok), so the uint64 matmul cannot wrap.
            acc = self._factors_u @ scaled
            acc %= self._dst_q_u
        else:
            acc = np.empty((self.rows_out, scaled.shape[1]), dtype=np.uint64)
            for j in range(self.rows_out):
                pj = self._dst_q_u[j]
                prods = (scaled * self._factors_u[j][:, None]) % pj
                # lazy-bound: L_in canonical summands each < p_j < 2^31, so
                # the deferred sum stays below L_in * 2^31 << 2^64.
                acc[j] = prods.sum(axis=0) % pj
        return acc.view(np.int64).reshape((self.rows_out,) + trailing)

    def convert_limbs_wide(self, limbs: List[np.ndarray],
                           src_engines: List[ModulusEngine],
                           dst_engines: List[ModulusEngine]) -> List[np.ndarray]:
        """Object-dtype fallback for moduli beyond the fast bound.

        Exact accumulation then a single reduction per output limb — the
        same value mod ``p_j`` as the fast path, in the engine's dtype.
        """
        scaled = [
            e.mul(limb, tilde % e.q)
            for e, limb, tilde in zip(src_engines, limbs, self.q_tilde)
        ]
        out = []
        for e_out, row in zip(dst_engines, self.factors):
            acc = sum(
                np.asarray(s, dtype=object) * f for s, f in zip(scaled, row)  # heaplint: disable=HL001 wide-modulus fallback, exact big-int path
            )
            out.append(e_out.asarray(acc))
        return out


_BCONV_PLANS: Dict[Tuple[Tuple[int, ...], Tuple[int, ...]], BconvPlan] = {}
_BCONV_PLANS_LOCK = threading.Lock()


def get_bconv_plan(src_moduli: Sequence[int], dst_moduli: Sequence[int]) -> BconvPlan:
    """Process-wide plan cache keyed on the two moduli tuples.

    Lock-free on a hit; the miss path double-checks under a lock so
    concurrent tenants share one plan instead of racing two half-built
    ones into the cache.
    """
    from ..profiling import record_bconv_plan

    key = (tuple(int(q) for q in src_moduli), tuple(int(q) for q in dst_moduli))
    plan = _BCONV_PLANS.get(key)
    if plan is None:
        with _BCONV_PLANS_LOCK:
            plan = _BCONV_PLANS.get(key)
            if plan is None:
                plan = BconvPlan(key[0], key[1])
                _BCONV_PLANS[key] = plan
                record_bconv_plan(hit=False)
                return plan
        record_bconv_plan(hit=True)
    else:
        record_bconv_plan(hit=True)
    return plan


def basis_convert(poly: RnsPoly, target: RnsBasis) -> RnsPoly:
    """Approximate fast basis conversion (HPS BConv).

    Converts the residues of ``poly`` from basis ``B = {q_i}`` to a
    *disjoint* basis ``C = {p_j}`` without CRT reconstruction:

    ``y_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i) mod p_j``

    The result may differ from the exact value by a small multiple of
    ``Q`` (the well-known approximation error), which the hybrid key
    switch tolerates; tests bound this error explicitly.  This is exactly
    the MAC-unit workload described for ModUp/ModDown in Section IV-A.

    All per-pair constants come from a cached :class:`BconvPlan`; on fast
    moduli the conversion is one stacked uint64 matrix-MAC.  Bit-identical
    to :func:`basis_convert_reference` (tests cross-check).
    """
    src = poly.to_coeff()
    plan = get_bconv_plan(src.basis.moduli, target.moduli)
    if plan.fast:
        out = plan.convert_stack(np.stack(src.limbs))
        out_limbs = [out[j] for j in range(len(target))]
    else:
        out_limbs = plan.convert_limbs_wide(src.limbs, src.basis.engines, target.engines)
    return RnsPoly(src.n, target, out_limbs, COEFF)


def basis_convert_reference(poly: RnsPoly, target: RnsBasis) -> RnsPoly:
    """Frozen scalar BConv oracle (the pre-engine per-limb object MAC).

    Kept verbatim as the cross-check baseline for the keyswitch engine's
    ``"reference"`` mode and the benchmark denominator; new code should
    call :func:`basis_convert`.
    """
    src = poly.to_coeff()
    b_moduli = src.basis.moduli
    big_q = src.basis.product
    # [x_i * q_i_star^{-1}]_{q_i}
    scaled = []
    for e, limb in zip(src.basis.engines, src.limbs):
        qi_star = big_q // e.q
        qi_tilde = e.inv(qi_star % e.q)
        scaled.append(e.mul(limb, qi_tilde))
    out_limbs = []
    for e_out in target.engines:
        acc = e_out.zeros(src.n)
        for qi, s in zip(b_moduli, scaled):
            factor = (big_q // qi) % e_out.q
            acc = e_out.mac(acc, np.asarray(s, dtype=object) % e_out.q, factor)  # heaplint: disable=HL001 frozen scalar oracle
        out_limbs.append(e_out.reduce(acc))
    return RnsPoly(src.n, target, out_limbs, COEFF)


def concat_bases(a: RnsBasis, b: RnsBasis) -> RnsBasis:
    return RnsBasis(list(a.moduli) + list(b.moduli))
