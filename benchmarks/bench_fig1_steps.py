"""Figure 1: step structure of conventional vs modified CKKS bootstrapping.

The paper's only figure with algorithmic content contrasts the two
pipelines.  This bench executes both of this repo's implementations with
tracing enabled and prints the recovered step lists side by side, along
with the level budgets — the conventional path consumes most of the
chain, the scheme-switching path exactly one level."""

from conftest import emit

from repro.ckks import (
    CkksContext,
    CkksEvaluator,
    CkksKeyGenerator,
    ConventionalBootstrapper,
    ConventionalBootstrapTrace,
    make_bootstrappable_toy_params,
)
from repro.math.sampling import Sampler
from repro.switching import BootstrapTrace, SchemeSwitchBootstrapper, SwitchingKeySet


def bench_fig1_step_structure(benchmark):
    params = make_bootstrappable_toy_params(n=16, levels=17, delta_bits=24,
                                            q0_bits=30)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(81))
    sk = gen.secret_key()
    rots = ConventionalBootstrapper.required_rotation_indices(ctx)
    keys = gen.keyset(sk, rotations=rots, conjugate=True)
    ev = CkksEvaluator(ctx, keys, Sampler(82), scale_rtol=5e-2)
    conv_boot = ConventionalBootstrapper(ctx, keys, evaluator=ev)
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(83), base_bits=6,
                                   error_std=0.8)
    ss_boot = SchemeSwitchBootstrapper(ctx, swk)

    def run_both():
        ct = ev.encrypt(0.3, level=0)
        conv_trace = ConventionalBootstrapTrace()
        conv_out = conv_boot.bootstrap(ct, conv_trace)
        ss_trace = BootstrapTrace()
        ss_out = ss_boot.bootstrap(ev.encrypt(0.3, level=0), ss_trace)
        return conv_trace, conv_out, ss_trace, ss_out

    conv_trace, conv_out, ss_trace, ss_out = benchmark.pedantic(
        run_both, rounds=1, iterations=1, warmup_rounds=0)

    lines = ["Figure 1: bootstrap step structure",
             "",
             "(a) conventional CKKS bootstrapping:"]
    for note in conv_trace.notes:
        lines.append(f"    {note}")
    lines.append(f"    levels consumed: {conv_trace.levels_consumed} "
                 f"of {ctx.max_level} (paper: 15-19 at production scale)")
    lines.append("")
    lines.append("(b) modified (scheme-switching) bootstrapping:")
    lines.append(f"    ModulusSwitch ({ss_trace.modswitch_ops} scalar ops)")
    lines.append(f"    Extract -> {ss_trace.num_lwe} LWE ciphertexts")
    lines.append(f"    BlindRotate x {ss_trace.num_blind_rotates} (parallel)")
    lines.append(f"    Repack ({ss_trace.repack_keyswitches} key switches: "
                 f"{ss_trace.repack_merge_keyswitches} merge + "
                 f"{ss_trace.repack_trace_keyswitches} trace)")
    lines.append("    Add ct' + Rescale by p")
    shares = ", ".join(f"{k} {v * 1e3:.1f}ms"
                       for k, v in ss_trace.step_seconds.items())
    lines.append(f"    step breakdown: {shares}")
    fanout = ", ".join(f"node{k} {v * 1e3:.1f}ms"
                       for k, v in sorted(ss_trace.node_seconds.items()))
    lines.append(f"    fan-out: {fanout} (retries {ss_trace.fanout_retries}, "
                 f"re-sent LWEs {ss_trace.fanout_redispatched_lwes})")
    lines.append(f"    levels consumed: {ctx.max_level - ss_out.level + 1} "
                 "(bootstrap depth 1)")
    emit("fig1_steps", "\n".join(lines))

    assert conv_trace.levels_consumed >= 8
    assert ss_out.level == ctx.max_level
