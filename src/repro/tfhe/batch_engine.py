"""Vectorized batched BlindRotate: structure-of-arrays tensors end to end.

:func:`blind_rotate_batch` realises HEAP's Section IV-E schedule — all
accumulators advance together through iteration ``i`` so each ``brk_i`` is
fetched once per batch — but the reference implementation walks that
schedule with nested Python loops over per-ciphertext ``GlweCiphertext``
objects.  The batch dimension never reaches numpy, so the software spends
its time in object plumbing rather than butterflies and MACs.

This module executes the same schedule on dense tensors instead:

* **Accumulators** live as one array per limb of shape ``(N, batch, h+1)``
  (equivalently a single ``(batch, h+1, L, N)`` stack, kept limb-major and
  *coefficient/slot-major* so each prime's arithmetic is contiguous and
  the stacked NTTs run transform-axis-first without transpose copies).
* **Keys** are pre-lifted once per ``(N, moduli)`` ring into evaluation-
  domain tensors of shape ``(n_t, N, (h+1)*d, 2*(h+1))`` per limb — row
  ``r = c*d + k`` is the GLWE row for component ``c``, digit ``k``, the
  exact ``((h+1)d, h+1)`` matrix of paper Section II-B, with the ``s+``
  and ``s-`` key halves stacked along the column axis so one contraction
  serves both.
* **Gadget decomposition + external-product MAC** are fused: the whole
  selected sub-batch is inverse-transformed in one stacked NTT call per
  limb, decomposed with dtype-preserving tensor ops
  (:meth:`GadgetVector.decompose_tensor`), forward-transformed again, and
  contracted against the key tensor.  The Algorithm-1 update
  ``ACC x (RGSW(1) + (X^a-1) brk+ + (X^-a-1) brk-)`` is *distributed*:
  ``RGSW(1)``'s rows are the constant gadget factors in the evaluation
  domain, so its term is just the digit recomposition, and the monomial
  factors scale the two key contractions after the row sum — exact
  modular algebra, no ``combined`` tensor ever materialises.
* On the int64 fast path the contraction is a single lazily-reduced
  ``np.matmul`` per limb (``rows * (q-1)^2 < 2^64`` holds for every fast
  modulus at practical digit counts), with one reduction per accumulator
  drain — the software analogue of the paper's 512 modular units all busy
  on one BlindRotate wavefront, lazy Barrett reduction included.

The engine is **bit-identical** to mapping the scalar
:func:`repro.tfhe.blind_rotate.blind_rotate` oracle over the batch
(``tests/test_batch_engine.py`` asserts equality of every limb of every
output ciphertext): modular addition is exact, associative and
distributive, so reordering the MAC accumulation and fusing reductions
cannot change any canonical residue.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from ..math.modular import crt_compose
from ..math.ntt import fast_mod_u64, get_ntt_engine
from ..math.rns import RnsBasis, RnsPoly
from .blind_rotate import BlindRotateKey, get_monomial_cache
from .glwe import GlweCiphertext, _shift_rns
from .lwe import LweCiphertext

_U64_MAX = (1 << 64) - 1


class BatchBlindRotateEngine:
    """Dense-tensor BlindRotate executor bound to one key and one ring.

    Construction lifts the blind-rotate key into its tensor form (one pass
    over ``n_t * 2`` RGSW matrices); :meth:`for_key` memoises the engine on
    the key object so repeated batches — e.g. the ``N`` fan-outs of every
    scheme-switching bootstrap — pay the lift exactly once.
    """

    def __init__(self, brk: BlindRotateKey, n: int, basis: RnsBasis,
                 key_pm: Optional[List[np.ndarray]] = None):
        sample = brk.plus[0]
        if sample.n != n or tuple(sample.basis.moduli) != tuple(basis.moduli):
            raise ParameterError("blind-rotate key does not match the requested ring")
        self.brk = brk
        self.n = n
        self.basis = basis
        self.h = brk.h
        self.gadget = brk.gadget
        self.d = brk.gadget.digits
        self.cols = self.h + 1
        self.rows = self.cols * self.d
        self.engines = basis.engines
        self.ntts = [get_ntt_engine(n, q) for q in basis.moduli]
        self.mono = get_monomial_cache(n, basis)
        # One (n_t, N, rows, 2*cols) eval-domain stack per limb: columns
        # [0, cols) hold brk+, [cols, 2*cols) hold brk-.  A caller that
        # already holds the lifted tensors — a pool worker viewing them
        # zero-copy in shared memory — passes them in and skips the lift.
        if key_pm is not None:
            expected = (brk.n_t, n, self.rows, 2 * self.cols)
            for li, tensor in enumerate(key_pm):
                if tuple(tensor.shape) != expected:
                    raise ParameterError(
                        f"pre-lifted key tensor for limb {li} has shape "
                        f"{tuple(tensor.shape)}, expected {expected}")
            self.key_pm = list(key_pm)
        else:
            self.key_pm = self._lift(brk.plus, brk.minus)
        # RGSW(1) never needs a tensor: its rows are the gadget factors as
        # constants, so its MAC term is the digit recomposition below.
        self.g_mod = [e.asarray(self.gadget.factors()) for e in self.engines]
        # When the gadget covers every bit of q (shift = 0) decomposition
        # is exact, so the recomposition equals the accumulator itself and
        # the RGSW(1) term needs no contraction at all.
        self._exact_gadget = (
            self.gadget.q.bit_length() == self.d * self.gadget.base_bits)
        # Whether the fast-path contraction may defer every reduction to
        # the drain: both the row sum of unreduced digit*key products and
        # the three-term accumulator update (recomposition plus two
        # monomial-scaled products) must fit in a uint64 lane.
        self._lazy = [e.fast and (self.rows + 2) * (e.q - 1) ** 2 <= _U64_MAX
                      for e in self.engines]
        #: Quotient workspaces for the drain reductions, keyed by shape —
        #: the i-loop reuses them so the fast floordiv-based reduction
        #: allocates nothing steady-state.  Thread-local because the
        #: engine is cached on the key and the bootstrap service may
        #: drive one key from several worker threads.
        self._quot_bufs = threading.local()

    # -- construction ---------------------------------------------------------

    #: Guards the lazy per-key engine caches: the service drives one key
    #: from several worker threads, and two tenants racing on a cold key
    #: must not each lift the (large) tensor form or publish separate
    #: caches onto the key object.
    _FOR_KEY_LOCK = threading.Lock()

    @classmethod
    def for_key(cls, brk: BlindRotateKey, n: int,
                basis: RnsBasis) -> "BatchBlindRotateEngine":
        """Engine cached on the key (keyed by ``(n, moduli)``).

        Lock-free on a hit; the miss path double-checks under a class
        lock so concurrent callers converge on one engine per key.
        """
        key = (n, tuple(basis.moduli))
        cache: Optional[Dict[Tuple[int, Tuple[int, ...]],
                             "BatchBlindRotateEngine"]]
        cache = getattr(brk, "_batch_engines", None)
        if cache is not None:
            engine = cache.get(key)
            if engine is not None:
                return engine
        with cls._FOR_KEY_LOCK:
            cache = getattr(brk, "_batch_engines", None)
            if cache is None:
                cache = {}
                brk._batch_engines = cache
            engine = cache.get(key)
            if engine is None:
                engine = cls(brk, n, basis)
                cache[key] = engine
                # Account the lifted tensor stack in the process-wide key
                # registry (ARK-style reuse bookkeeping): the streaming
                # cache's demote tier drops the engine with the key, and
                # the registry's byte totals price the lift.  on_drop
                # keeps the per-key engine cache consistent without
                # strongly capturing the key.
                from ..keyreg import get_key_registry

                get_key_registry().register(
                    brk, "brk_lift", key, engine.key_pm,
                    on_drop=lambda o, _k=key: getattr(
                        o, "_batch_engines", {}).pop(_k, None))
        return engine

    def _lift(self, plus, minus) -> List[np.ndarray]:
        n_t = len(plus)
        tensors = [e.zeros((n_t, self.n, self.rows, 2 * self.cols))
                   for e in self.engines]
        for i, (rp, rm) in enumerate(zip(plus, minus)):
            for li, limb in enumerate(rp.to_limb_tensors()):
                tensors[li][i, :, :, :self.cols] = np.moveaxis(limb, 2, 0)
            for li, limb in enumerate(rm.to_limb_tensors()):
                tensors[li][i, :, :, self.cols:] = np.moveaxis(limb, 2, 0)
        return tensors

    # -- execution ------------------------------------------------------------

    def rotate_batch(self, test_vector: RnsPoly,
                     cts: Sequence[LweCiphertext]) -> List[GlweCiphertext]:
        """BlindRotate every ciphertext of the batch through the tensors."""
        n = self.n
        two_n = 2 * n
        if test_vector.n != n or tuple(test_vector.basis.moduli) != tuple(self.basis.moduli):
            raise ParameterError("test vector does not match the engine's ring")
        for ct in cts:
            if ct.q != two_n or ct.dim != self.brk.n_t:
                raise ParameterError("batch contains an incompatible LWE ciphertext")
        batch = len(cts)
        if batch == 0:
            return []

        from ..profiling import record_external_product

        acc = self._initial_accumulators(test_vector, cts)
        # (batch, n_t) rotation amounts, already folded into [0, 2N).
        a_mat = np.array([[int(ct.a[i]) % two_n for i in range(self.brk.n_t)]
                          for ct in cts], dtype=np.int64)

        for i in range(self.brk.n_t):
            sel = np.flatnonzero(a_mat[:, i])
            if sel.size == 0:
                continue
            # The common case is every rotation amount nonzero: basic
            # slicing then keeps the gather/scatter below as views instead
            # of fancy-index copies of the whole accumulator stack.
            idx = slice(None) if sel.size == batch else sel
            record_external_product(int(sel.size))
            digits = self._decompose(acc, idx, sel.size)
            a_vals = a_mat[idx, i]
            # (N, bsel) monomial matrices per limb: one dense-table column
            # gather when the ring is small enough, else stacked cache hits.
            mats_p = self.mono.minus_one_matrix(a_vals)
            if mats_p is not None:
                mats_m = self.mono.minus_one_matrix(two_n - a_vals)
            else:
                mono_p = [self.mono.monomial_minus_one(int(a)) for a in a_vals]
                mono_m = [self.mono.monomial_minus_one(two_n - int(a))
                          for a in a_vals]
                mats_p = [np.stack([m[li] for m in mono_p], axis=1)
                          for li in range(len(self.engines))]
                mats_m = [np.stack([m[li] for m in mono_m], axis=1)
                          for li in range(len(self.engines))]
            for li, e in enumerate(self.engines):
                deval = digits[li]                      # (N, bsel, rows)
                key_i = self.key_pm[li][i]              # (N, rows, 2*cols)
                mp = mats_p[li]                         # (N, bsel)
                mm = mats_m[li]
                # recomp = sum_k digits[c*d+k] * g_k: the RGSW(1) term.
                dv4 = deval.reshape(n, sel.size, self.cols, self.d)
                if self._lazy[li]:
                    # lazy-bound: (rows + 2) * (q - 1)^2 <= 2^64 - 1 is
                    # checked per limb in __init__ (self._lazy gates this
                    # branch), covering the row sum and the three-term
                    # accumulator drain below.
                    qu = np.uint64(e.q)
                    du = deval.view(np.uint64)
                    ep = np.matmul(du, key_i.view(np.uint64))
                    fast_mod_u64(ep, qu, ep, self._quot(ep.shape))
                    # Scale each contraction by its monomial in place, then
                    # accumulate both onto the recomposition: recomp < d*q^2
                    # and each scaled product < q^2, so the three-term sum
                    # still fits a uint64 lane and one reduction drains it.
                    ep[..., :self.cols] *= mp.view(np.uint64)[:, :, None]
                    ep[..., self.cols:] *= mm.view(np.uint64)[:, :, None]
                    if self._exact_gadget:
                        # Exact decomposition: sum_k d_k g_k == ACC mod q,
                        # so the RGSW(1) term is the accumulator unchanged.
                        out = ep[..., :self.cols] + ep[..., self.cols:]
                        out += acc[li][:, idx, :].view(np.uint64)
                    else:
                        out = np.matmul(dv4.view(np.uint64),
                                        self.g_mod[li].view(np.uint64))
                        out += ep[..., :self.cols]
                        out += ep[..., self.cols:]
                    fast_mod_u64(out, qu, out, self._quot(out.shape))
                    acc[li][:, idx, :] = out.view(np.int64)
                else:
                    ep = e.lazy_mac_sum(deval[:, :, :, None],
                                        key_i[:, None, :, :], axis=2)
                    recomp = e.lazy_mac_sum(dv4, self.g_mod[li], axis=3)
                    out = e.add(recomp,
                                e.add(e.mul(ep[..., :self.cols], mp[:, :, None]),
                                      e.mul(ep[..., self.cols:], mm[:, :, None])))
                    acc[li][:, idx, :] = out
        return self._export(acc, batch)

    def _quot(self, shape: Tuple[int, ...]) -> np.ndarray:
        cache: Dict[Tuple[int, ...], np.ndarray]
        cache = getattr(self._quot_bufs, "bufs", None)
        if cache is None:
            cache = self._quot_bufs.bufs = {}
        buf = cache.get(shape)
        if buf is None:
            buf = np.empty(shape, dtype=np.uint64)
            cache[shape] = buf
        return buf

    # -- stages ---------------------------------------------------------------

    def _initial_accumulators(self, test_vector: RnsPoly,
                              cts: Sequence[LweCiphertext]) -> List[np.ndarray]:
        """``ACC_j = (0, .., 0, f * X^{b_j})`` as eval-domain limb tensors."""
        shifted = [_shift_rns(test_vector, int(ct.b)) for ct in cts]
        acc = []
        for li, (e, eng) in enumerate(zip(self.engines, self.ntts)):
            stack = np.stack([s.limbs[li] for s in shifted], axis=1)  # (N, batch)
            a = e.zeros((self.n, len(cts), self.cols))
            a[:, :, self.h] = eng.forward_axis0(stack)
            acc.append(a)
        return acc

    def _decompose(self, acc: List[np.ndarray], idx, bsel: int) -> List[np.ndarray]:
        """Gadget-decompose the selected accumulators into digit tensors.

        ``idx`` selects the batch axis (``slice(None)`` for the whole batch,
        else an index array).  Returns one eval-domain ``(N, bsel, (h+1)*d)``
        tensor per limb, with row ``r = c*d + k`` matching the key tensors'
        layout.
        """
        coeff = [eng.inverse_axis0(acc[li][:, idx, :])
                 for li, eng in enumerate(self.ntts)]  # (N, bsel, h+1) each
        if len(self.basis) == 1:
            big = coeff[0]  # residues mod q ARE the [0, Q) integers
        else:
            stack = np.stack([np.asarray(c, dtype=object) for c in coeff])  # heaplint: disable=HL001 CRT compose needs exact big ints on the wide-modulus path
            big = crt_compose(stack, self.basis.moduli)
        # (N, bsel, h+1, d): component-major, digit k matching factors()[k],
        # so flattening the last two axes gives the r = c*d + k row order.
        digit_stack = np.stack(self.gadget.decompose_tensor(big), axis=3)
        out = []
        for e, eng in zip(self.engines, self.ntts):
            if e.fast and digit_stack.dtype == np.int64:
                # Balanced digits satisfy |digit| <= q, so one shift puts
                # them in [0, 2q] — no reduction needed here, because the
                # forward twist multiplies by psi < q and reduces, and
                # 2q * (q-1) fits int64 for every fast (q < 2^31) modulus.
                # Bit-identical to e.asarray + forward on canonical input.
                reduced = digit_stack + e.q
            else:
                reduced = e.asarray(digit_stack)
            out.append(eng.forward_axis0(reduced).reshape(self.n, bsel, self.rows))
        return out

    def _export(self, acc: List[np.ndarray], batch: int) -> List[GlweCiphertext]:
        results = []
        for j in range(batch):
            polys = [RnsPoly(self.n, self.basis,
                             [np.ascontiguousarray(acc[li][:, j, c])
                              for li in range(len(self.basis))],
                             "eval")
                     for c in range(self.cols)]
            results.append(GlweCiphertext(mask=polys[:self.h], body=polys[self.h]))
        return results


def blind_rotate_batch_vectorized(test_vector: RnsPoly,
                                  cts: Sequence[LweCiphertext],
                                  brk: BlindRotateKey) -> List[GlweCiphertext]:
    """Module-level entry point used by the dispatcher in ``blind_rotate``."""
    if not cts:
        return []
    engine = BatchBlindRotateEngine.for_key(brk, test_vector.n, test_vector.basis)
    return engine.rotate_batch(test_vector, cts)
