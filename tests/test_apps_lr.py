"""Tests for the logistic-regression workload: plaintext reference,
encrypted iteration, bootstrap-integrated training, Table VI model."""

import numpy as np
import pytest

from repro.apps import (
    EncryptedLogisticRegression,
    LrOpCounts,
    PlaintextLogisticRegression,
    lr_iteration_model,
    poly_sigmoid,
    synthetic_mnist_3v8,
    train_test_split,
)
from repro.ckks import (
    CkksContext,
    CkksEvaluator,
    CkksKeyGenerator,
    make_bootstrappable_toy_params,
)
from repro.hardware import ClusterBootstrapModel, SingleFpgaModel
from repro.math.sampling import Sampler


class TestDatasets:
    def test_shape_matches_paper(self):
        ds = synthetic_mnist_3v8()
        assert ds.x.shape == (11982, 196)
        assert set(np.unique(ds.y)) <= {0, 1}

    def test_deterministic(self):
        a, b = synthetic_mnist_3v8(seed=1), synthetic_mnist_3v8(seed=1)
        assert np.array_equal(a.x, b.x)

    def test_split(self):
        ds = synthetic_mnist_3v8(num_samples=100, num_features=8)
        tr, te = train_test_split(ds, 0.2)
        assert tr.num_samples == 80 and te.num_samples == 20


class TestPlaintextLr:
    def test_sigmoid_approx_is_close_in_range(self):
        z = np.linspace(-4, 4, 100)
        true = 1.0 / (1.0 + np.exp(-z))
        # HELR's degree-3 least-squares fit is accurate to ~0.1 on [-4, 4].
        assert np.max(np.abs(poly_sigmoid(z) - true)) < 0.12

    def test_training_reaches_paper_accuracy(self):
        """Paper Section VI-F3: ~97% LR accuracy after 30 iterations."""
        ds = synthetic_mnist_3v8(num_samples=2000)
        tr, te = train_test_split(ds)
        model = PlaintextLogisticRegression(ds.num_features, lr=2.0)
        model.train(tr, iterations=30, batch_size=512)
        assert model.accuracy(te) > 0.93

    def test_loss_direction(self):
        ds = synthetic_mnist_3v8(num_samples=500, num_features=16)
        model = PlaintextLogisticRegression(16, lr=1.0)
        acc0 = model.accuracy(ds)
        model.train(ds, iterations=10, batch_size=128)
        assert model.accuracy(ds) > acc0


# Fixed-point layout: rescale primes ~ Delta with a wider base limb, so a
# deep LR iteration keeps its scale stable (same discipline as the
# conventional bootstrapper).
PARAMS_CKKS = make_bootstrappable_toy_params(n=32, levels=9, delta_bits=24,
                                             q0_bits=30)


@pytest.fixture(scope="module")
def enc_stack():
    ctx = CkksContext(PARAMS_CKKS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(101))
    sk = gen.secret_key()
    trainer_probe = EncryptedLogisticRegression.__new__(EncryptedLogisticRegression)
    # Build rotation list for f=4, b=4 on 16 slots.
    f, b = 4, 4
    rots = set()
    shift = 1
    while shift < f:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    shift = f
    while shift < f * b:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    keys = gen.keyset(sk, rotations=sorted(rots))
    ev = CkksEvaluator(ctx, keys, Sampler(102), scale_rtol=2e-2)
    return ctx, sk, ev


class TestEncryptedIteration:
    def test_matches_plaintext_gradient_step(self, enc_stack):
        ctx, sk, ev = enc_stack
        f, b = 4, 4
        trainer = EncryptedLogisticRegression(ctx, ev, f, b, lr=0.5)
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, (b, f))
        y = rng.integers(0, 2, b).astype(float)
        w0 = rng.uniform(-0.3, 0.3, f)

        ref = PlaintextLogisticRegression(f, lr=0.5)
        ref.w = w0.copy()
        ref.iterate(x, y)

        ct_w = ev.encrypt(trainer.pack_weights(w0))
        ct_w = trainer.iterate(ct_w, x, y)
        got = trainer.unpack_weights(ev.decrypt(ct_w, sk))
        assert np.allclose(got, ref.w, atol=0.05), (got, ref.w)

    def test_rotation_indices_cover_iteration(self, enc_stack):
        ctx, sk, ev = enc_stack
        trainer = EncryptedLogisticRegression(ctx, ev, 4, 4)
        rots = trainer.rotation_indices()
        assert all(0 < r < ctx.slots for r in rots)

    def test_invalid_packing_rejected(self, enc_stack):
        from repro.errors import ParameterError
        ctx, sk, ev = enc_stack
        with pytest.raises(ParameterError):
            EncryptedLogisticRegression(ctx, ev, 3, 4)
        with pytest.raises(ParameterError):
            EncryptedLogisticRegression(ctx, ev, 16, 16)


class TestTableVIModel:
    def test_matches_paper_anchors(self):
        total, share = lr_iteration_model(SingleFpgaModel(), ClusterBootstrapModel())
        assert total == pytest.approx(0.007, rel=0.1)
        assert share == pytest.approx(0.21, abs=0.05)

    def test_sparser_packing_cheaper_bootstraps(self):
        fpga, cluster = SingleFpgaModel(), ClusterBootstrapModel()
        t_sparse, _ = lr_iteration_model(fpga, cluster, LrOpCounts(slots=128))
        t_dense, _ = lr_iteration_model(fpga, cluster, LrOpCounts(slots=1024))
        assert t_sparse < t_dense
