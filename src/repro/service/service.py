"""The coalescing asyncio bootstrap service (the "millions of users" front-end).

The batched engines earn their speedups only at batch size — BlindRotate
runs 5-13x faster when the ``(N, batch, h+1)`` tensors are full — but a
real deployment receives *single* ciphertexts, one request at a time,
from many concurrent users.  Dispatched individually, every request
would pay the scalar-era latency profile and the engines' wins would
never materialise.  :class:`BootstrapService` closes that gap the same
way BTS argues bootstrapping throughput must be won in hardware: by
amortising the expensive shared work across many ciphertexts.

The moving parts:

* **Coalescer.**  Accepted requests join one queue; a dispatcher fills a
  batch per key group up to ``max_batch`` LWEs *or* until the oldest
  member has waited ``max_delay_s`` — whichever comes first — then
  dispatches the composed batch as ONE ``executor.fanout`` call and
  slices the accumulators back into per-request replies.  Correctness
  gate: the engines are bit-identical deterministic oracles and every
  BlindRotate is independent, so a request's result is **byte-equal no
  matter which other requests it was batched with** (tests assert this
  property across executors and engines).
* **Per-user keys.**  Requests are keyed by ``user_id``; key material is
  resolved through the byte-accounted LRU :class:`~repro.service.
  key_cache.LruKeyCache` (ARK direction: the resident key working set,
  not the ciphertexts, is the binding resource under many tenants).
  Requests can only coalesce with requests under the *same* key — blind
  rotation is keyed — so cross-user batching happens exactly when users
  share an evaluation-key context (one tenant app, many end users).
* **Backpressure.**  The queue is bounded by ``max_queue`` requests
  (pending + in flight); beyond it, submission fails fast with a typed
  :class:`~repro.errors.ServiceOverloadError` carrying a measured
  ``retry_after`` instead of letting latency grow without bound.
* **Executors.**  Each key group's batches dispatch onto the executor
  built by ``executor_factory`` — in-process
  :class:`~repro.switching.pipeline.LocalExecutor` by default, or a
  per-key :class:`~repro.switching.mp_executor.ProcessPoolFanoutExecutor`
  (:func:`pool_executor_factory`) so coalescing composes with true
  multi-core fan-out.  Batches run in a worker thread
  (``asyncio.to_thread``); the event loop keeps accepting requests while
  a batch computes.
* **Shutdown.**  :meth:`~BootstrapService.stop` drains: new submissions
  are refused, every queued request is dispatched immediately (deadline
  waived), in-flight batches complete, and cached executors are closed —
  worker pools release their processes and shared-memory key blocks.

Three request granularities share the machinery: :meth:`~BootstrapService.
submit` bootstraps one LWE ciphertext (one blind rotation),
:meth:`~BootstrapService.submit_ciphertext` runs a full Algorithm-2
scheme-switching bootstrap whose N extracted LWEs ride the same
coalesced fan-out via the pipeline's ``prepare``/``complete`` stage
split, and :meth:`~BootstrapService.submit_pbs` runs a programmable
(LUT) bootstrap the same way.  PBS requests batch per ``(LUT, scale)``
group — one fan-out tensor carries one test vector — so same-function
traffic from different users under a shared key coalesces, while
Algorithm-2 and different-LUT requests dispatch as separate batches.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..ckks.ciphertext import CkksCiphertext
from ..errors import ParameterError, ServiceClosedError, ServiceOverloadError
from ..profiling import record_service
from ..switching.pipeline import BootstrapPipeline, BootstrapTrace, LocalExecutor
from ..tfhe.glwe import GlweCiphertext
from ..tfhe.lwe import LweCiphertext
from .key_cache import KeyCacheEntry, LruKeyCache, UserKeys


@dataclass
class ServiceTrace:
    """Lifetime record of one service instance (what the load benchmark
    reads): request intake and outcome counts, achieved batch fill, the
    coalescing wait each batch paid, queue depth, and key-cache traffic.
    """

    requests_accepted: int = 0
    requests_rejected: int = 0
    requests_completed: int = 0
    requests_failed: int = 0
    batches: int = 0
    #: Total LWE blind-rotates dispatched across all coalesced batches.
    coalesced_lwes: int = 0
    #: Achieved batch fill histogram (LWEs per batch -> occurrences).
    batch_fill: Dict[int, int] = field(default_factory=dict)
    #: Summed per-request queue wait (arrival -> dispatch), seconds.
    coalesce_wait_s: float = 0.0
    max_coalesce_wait_s: float = 0.0
    #: Wall-clock spent inside batch execution (prepare+fanout+complete).
    batch_seconds: float = 0.0
    peak_queue_depth: int = 0
    #: Programmable-bootstrap (LUT) requests accepted.
    pbs_requests: int = 0
    key_cache_hits: int = 0
    key_cache_misses: int = 0
    key_cache_evictions: int = 0
    #: Streaming entries dropped back to seed+b residency (tier-1
    #: eviction: expanded tensors freed, entry and executor kept).
    key_cache_demotions: int = 0
    peak_resident_key_bytes: int = 0
    #: True once ``stop()`` finished a graceful drain.
    drained: bool = False

    @property
    def mean_batch_fill(self) -> float:
        return self.coalesced_lwes / self.batches if self.batches else 0.0

    @property
    def key_cache_hit_rate(self) -> float:
        looked_up = self.key_cache_hits + self.key_cache_misses
        return self.key_cache_hits / looked_up if looked_up else 0.0


class _Request:
    """One queued bootstrap request (internal)."""

    __slots__ = ("user_id", "kind", "payload", "weight", "arrival",
                 "future", "entry", "lut", "group")

    def __init__(self, user_id: Any, kind: str, payload: Any, weight: int,
                 future: "asyncio.Future[Any]", entry: KeyCacheEntry,
                 lut: Any = None, group: Any = None):
        self.user_id = user_id
        self.kind = kind
        self.payload = payload
        #: LWE blind-rotates this request contributes to a batch (1 for
        #: an LWE request, N for a full Algorithm-2 ciphertext or PBS).
        self.weight = weight
        self.arrival = time.monotonic()
        self.future = future
        self.entry = entry
        #: Resolved :class:`~repro.switching.luts.LutSpec` for PBS
        #: requests (``None`` on the Algorithm-2 kinds).
        self.lut = lut
        #: Batch key within the key entry: requests coalesce only with
        #: the same group, because one fan-out tensor carries exactly
        #: one test vector — ``None`` for the Algorithm-2 kinds,
        #: ``(lut name, scale)`` for PBS.
        self.group = group


def pool_executor_factory(num_workers: int = 2,
                          **pool_kwargs: Any) -> Callable[[UserKeys], Any]:
    """An ``executor_factory`` that gives every resident key group its
    own :class:`~repro.switching.mp_executor.ProcessPoolFanoutExecutor`
    — coalesced batches then fan out across real cores, and key-cache
    eviction closes the pool (workers + shared key block released)."""
    from ..switching.mp_executor import ProcessPoolFanoutExecutor

    def factory(user_keys: UserKeys) -> Any:
        return ProcessPoolFanoutExecutor(user_keys.keys,
                                         user_keys.test_vector,
                                         num_workers=num_workers,
                                         **pool_kwargs)

    return factory


class BootstrapService:
    """Async front-end coalescing single-ciphertext bootstrap requests
    into engine-sized batches.

    Usage::

        service = BootstrapService(key_provider, max_batch=32,
                                   max_delay_s=0.01)
        async with service:
            acc = await service.submit("alice", lwe_ct)

    ``key_provider(user_id) -> UserKeys`` supplies key material on cache
    miss (it runs synchronously on the submitting task — point lookups
    are expected; generation-on-miss works but stalls that submitter).
    """

    def __init__(self, key_provider: Callable[[Any], UserKeys], *,
                 max_batch: int = 32,
                 max_delay_s: float = 0.010,
                 max_queue: int = 256,
                 key_cache_bytes: Optional[int] = None,
                 executor_factory: Optional[Callable[[UserKeys], Any]] = None,
                 blind_rotate_engine: str = "vectorized",
                 repack_engine: str = "vectorized",
                 trace: Optional[ServiceTrace] = None):
        if max_batch < 1:
            raise ParameterError("max_batch must be at least 1")
        if max_queue < 1:
            raise ParameterError("max_queue must be at least 1")
        if max_delay_s < 0:
            raise ParameterError("max_delay_s must be non-negative")
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.max_queue = max_queue
        self.repack_engine = repack_engine
        self.blind_rotate_engine = blind_rotate_engine
        self.trace = trace if trace is not None else ServiceTrace()
        self._executor_factory: Callable[[UserKeys], Any] = \
            executor_factory if executor_factory is not None \
            else (lambda uk: LocalExecutor(
                uk.keys, uk.test_vector, blind_rotate_engine))
        self.cache = LruKeyCache(key_provider, self._make_entry,
                                 key_cache_bytes)
        self._pending: List[_Request] = []
        self._inflight = 0
        self._batch_tasks: Set["asyncio.Future[None]"] = set()
        self._wakeup = asyncio.Event()
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._started = False
        self._stopping = False
        self._closed = False
        #: EWMA of per-request service time, feeding ``retry_after``.
        self._ewma_request_s = 0.0

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> "BootstrapService":
        """Start the dispatcher (idempotent until :meth:`stop`)."""
        if self._closed:
            raise ServiceClosedError("service has been stopped")
        if not self._started:
            self._started = True
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="bootstrap-service-dispatcher")
        return self

    async def stop(self) -> None:
        """Graceful drain: refuse new requests, dispatch everything
        queued immediately (deadline waived), await in-flight batches,
        then close cached executors (pools release workers + shared
        memory).  Idempotent."""
        if self._closed:
            return
        self._stopping = True
        self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
        while self._batch_tasks:
            await asyncio.gather(*list(self._batch_tasks),
                                 return_exceptions=True)
        self._closed = True
        self.cache.close()
        self._sync_cache_stats()
        self.trace.drained = True

    async def __aenter__(self) -> "BootstrapService":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    def queue_depth(self) -> int:
        """Requests currently held by the service (queued + in flight)."""
        return len(self._pending) + self._inflight

    # -- submission -----------------------------------------------------------

    async def submit(self, user_id: Any, lwe: LweCiphertext) -> GlweCiphertext:
        """Bootstrap one LWE ciphertext (one blind rotation against the
        user's key and test vector); resolves to its accumulator."""
        return await self._submit(user_id, "lwe", lwe)

    async def submit_ciphertext(self, user_id: Any,
                                ct: CkksCiphertext) -> CkksCiphertext:
        """Run a full Algorithm-2 scheme-switching bootstrap; the N
        extracted LWEs ride the coalesced fan-out with everyone else's.
        Requires the user's :class:`UserKeys` to carry a ``ctx``."""
        return await self._submit(user_id, "ckks", ct)

    async def submit_pbs(self, user_id: Any, ct: CkksCiphertext,
                         f: Any) -> CkksCiphertext:
        """Programmable bootstrap: apply ``f`` (a callable,
        :class:`~repro.switching.luts.LutSpec`, or workload name)
        coefficient-wise to a level-0 ciphertext through the coalesced
        fan-out.  Same-LUT requests (same function, same scale) batch
        into one fan-out tensor; different LUTs never share a batch —
        one tensor carries one test vector.  Requires the user's
        :class:`UserKeys` to carry a ``ctx``."""
        return await self._submit(user_id, "pbs", ct, f=f)

    async def _submit(self, user_id: Any, kind: str, payload: Any,
                      f: Any = None) -> Any:
        if self._closed or self._stopping or not self._started:
            raise ServiceClosedError(
                "service is not accepting requests (not started, stopping, "
                "or stopped)")
        depth = self.queue_depth()
        if depth >= self.max_queue:
            self.trace.requests_rejected += 1
            record_service(rejected=1)
            raise ServiceOverloadError(
                f"request queue is full ({depth} of {self.max_queue})",
                retry_after=self._retry_after(depth))
        entry = self.cache.get(user_id)
        self._sync_cache_stats()
        lut = None
        group = None
        if kind in ("ckks", "pbs"):
            if entry.pipeline is None:
                raise ParameterError(
                    f"user {user_id!r} has no CKKS context: ciphertext "
                    f"requests need UserKeys built with ctx "
                    f"(UserKeys.from_switching)")
            weight = entry.pipeline.ctx.n
            if kind == "pbs":
                # Resolve to a named spec now (cheap — no LUT build);
                # the N-point NTT build happens once, in the batch's
                # worker thread, guarded by the registry's lock.
                luts = getattr(entry.pipeline.keys, "luts", None)
                if luts is None:
                    raise ParameterError(
                        f"user {user_id!r}: key set has no LUT registry")
                lut = luts.spec_for(f)
                group = (lut.name, float(payload.scale))
                self.trace.pbs_requests += 1
        else:
            weight = 1
        future: "asyncio.Future[Any]" = \
            asyncio.get_running_loop().create_future()
        req = _Request(user_id, kind, payload, weight, future, entry,
                       lut=lut, group=group)
        entry.pin()
        self._pending.append(req)
        self.trace.requests_accepted += 1
        self.trace.peak_queue_depth = max(self.trace.peak_queue_depth,
                                          self.queue_depth())
        record_service(requests=1)
        self._wakeup.set()
        try:
            return await future
        finally:
            entry.unpin()

    def _retry_after(self, depth: int) -> float:
        """When queue room is likely: the backlog priced at the measured
        per-request service time, floored at one coalescing window."""
        return max(self.max_delay_s, depth * self._ewma_request_s, 1e-3)

    # -- coalescing dispatcher ------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            # Clear-before-scan: a submit landing after the scan re-sets
            # the event, so the wait below returns immediately instead of
            # sleeping past the new request's deadline.
            self._wakeup.clear()
            now = time.monotonic()
            ready, next_deadline = self._ready_groups(now)
            if ready:
                for group in ready:
                    self._launch(group)
                continue
            if self._stopping and not self._pending:
                return
            timeout = None if next_deadline is None else \
                max(next_deadline - time.monotonic(), 0.0)
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout)
            except asyncio.TimeoutError:
                pass

    def _ready_groups(self, now: float
                      ) -> Tuple[List[List[_Request]], Optional[float]]:
        """Group pending requests by batch key — key entry plus LUT
        group (arrival order preserved) — and split into groups ready to
        dispatch — full to ``max_batch``, past the ``max_delay_s``
        deadline, or draining — plus the earliest deadline among the
        not-yet-ready rest.  Algorithm-2 traffic (group ``None``) and
        each distinct PBS LUT batch separately: one fan-out tensor, one
        test vector."""
        groups: Dict[Tuple[int, Any], List[_Request]] = {}
        for req in self._pending:
            groups.setdefault((id(req.entry), req.group), []).append(req)
        ready: List[List[_Request]] = []
        next_deadline: Optional[float] = None
        for reqs in groups.values():
            fill = sum(r.weight for r in reqs)
            deadline = reqs[0].arrival + self.max_delay_s
            if self._stopping or fill >= self.max_batch or now >= deadline:
                ready.append(reqs)
            elif next_deadline is None or deadline < next_deadline:
                next_deadline = deadline
        return ready, next_deadline

    def _launch(self, group: List[_Request]) -> None:
        """Carve up to ``max_batch`` LWEs off a ready group (oldest
        first; a single overweight request still dispatches alone) and
        run them as one batch task."""
        batch: List[_Request] = []
        fill = 0
        for req in group:
            if batch and fill + req.weight > self.max_batch:
                break
            batch.append(req)
            fill += req.weight
        taken = set(map(id, batch))
        self._pending = [r for r in self._pending if id(r) not in taken]
        self._inflight += len(batch)
        task = asyncio.create_task(self._run_batch(batch, fill))
        self._batch_tasks.add(task)
        task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: List[_Request], fill: int) -> None:
        entry = batch[0].entry
        # One batch in flight per key entry: the pool executor is not
        # re-entrant, and serialising here keeps LocalExecutor identical.
        async with entry.lock:
            depth = self.queue_depth()
            dispatch_t = time.monotonic()
            waits = [dispatch_t - r.arrival for r in batch]
            seconds = 0.0
            try:
                results, seconds = await asyncio.to_thread(
                    self._execute_batch, entry, batch)
            except Exception as exc:
                for req in batch:
                    if not req.future.done():
                        req.future.set_exception(exc)
                self.trace.requests_failed += len(batch)
            else:
                for req, result in zip(batch, results):
                    if not req.future.done():
                        req.future.set_result(result)
                self.trace.requests_completed += len(batch)
                per_request = seconds / len(batch)
                self._ewma_request_s = per_request \
                    if self._ewma_request_s == 0.0 \
                    else 0.7 * self._ewma_request_s + 0.3 * per_request
            finally:
                self._inflight -= len(batch)
            waited = sum(waits)
            self.trace.batches += 1
            self.trace.coalesced_lwes += fill
            self.trace.batch_fill[fill] = \
                self.trace.batch_fill.get(fill, 0) + 1
            self.trace.coalesce_wait_s += waited
            self.trace.max_coalesce_wait_s = max(
                self.trace.max_coalesce_wait_s, max(waits))
            self.trace.batch_seconds += seconds
            record_service(batch_fill=fill, coalesce_wait_s=waited,
                           queue_depth=depth)

    def _execute_batch(self, entry: KeyCacheEntry,
                       batch: List[_Request]) -> Tuple[List[Any], float]:
        """Compose the batch, run ONE fan-out, slice replies back (runs
        in a worker thread).  LWE requests map 1:1 onto accumulators;
        ciphertext requests are prepared here (ModSwitch + Extract) and
        completed per request (Repack + Finish) on their own slice.  A
        PBS batch (all requests share one LUT group, by construction of
        ``_ready_groups``) resolves its LUT id once and passes it to the
        single fan-out call."""
        t0 = time.perf_counter()
        lwes: List[LweCiphertext] = []
        spans: List[Tuple[int, int]] = []
        preps: List[Any] = []
        lut_id: Optional[str] = None
        for req in batch:
            if req.kind == "lwe":
                spans.append((len(lwes), len(lwes) + 1))
                preps.append(None)
                lwes.append(req.payload)
            else:
                if req.kind == "pbs":
                    prep = entry.pipeline.prepare_pbs(req.payload)
                    if lut_id is None:
                        lut_id = entry.pipeline.resolve_lut(
                            req.lut, req.payload.scale)
                else:
                    prep = entry.pipeline.prepare(req.payload)
                spans.append((len(lwes), len(lwes) + len(prep.lwes)))
                preps.append(prep)
                lwes.extend(prep.lwes)
        btrace = BootstrapTrace()
        if lut_id is None:
            # No lut kwarg on the default path: custom executors that
            # predate the programmable protocol keep working.
            accs = entry.executor.fanout(lwes, btrace)
        else:
            accs = entry.executor.fanout(lwes, btrace, lut=lut_id)
        results: List[Any] = []
        for req, (start, stop), prep in zip(batch, spans, preps):
            if req.kind == "lwe":
                results.append(accs[start])
            else:
                results.append(entry.pipeline.complete(
                    prep, accs[start:stop], btrace))
        return results, time.perf_counter() - t0

    # -- wiring ---------------------------------------------------------------

    def _make_entry(self, user_keys: UserKeys) -> KeyCacheEntry:
        executor = self._executor_factory(user_keys)
        pipeline = None
        if user_keys.ctx is not None:
            pipeline = BootstrapPipeline(user_keys.ctx, user_keys.keys,
                                         executor=executor,
                                         repack_engine=self.repack_engine)
        def nbytes_fn() -> int:
            return user_keys.resident_bytes() + \
                int(getattr(executor, "shared_key_bytes", 0))

        return KeyCacheEntry(user_keys, executor, pipeline, nbytes_fn(),
                             nbytes_fn=nbytes_fn)

    def _sync_cache_stats(self) -> None:
        self.trace.key_cache_hits = self.cache.hits
        self.trace.key_cache_misses = self.cache.misses
        self.trace.key_cache_evictions = self.cache.evictions
        self.trace.key_cache_demotions = self.cache.demotions
        self.trace.peak_resident_key_bytes = max(
            self.trace.peak_resident_key_bytes,
            self.cache.peak_resident_bytes)
