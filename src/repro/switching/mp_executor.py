"""Truly parallel BlindRotate fan-out on a persistent process pool.

Everything before this module *simulated* distribution: the
:class:`~repro.switching.cluster_sim.ClusterExecutor` runs its "nodes"
sequentially in one process, so Algorithm 2's headline parallelism
(mutually-independent BlindRotates, paper Fig. 1 / Table V) never
produced wall-clock speedup.  :class:`ProcessPoolFanoutExecutor` is the
real thing: a persistent pool of ``multiprocessing`` workers that plugs
into the same :class:`~repro.switching.pipeline.Executor` protocol and
runs the fan-out stage concurrently across cores.

Design points, in the order they matter:

* **Key material is shared, not sent.**  ARK's observation — the
  blind-rotate key working set (1.76 GB at paper parameters), not the
  ciphertexts, is the binding cost of fanning bootstrap work out — is
  taken literally: the key is published **once** into a
  ``multiprocessing.shared_memory`` block
  (:func:`repro.io.publish_shared_arrays`) and every worker attaches
  zero-copy numpy views.  What is shared is the
  :class:`~repro.tfhe.batch_engine.BatchBlindRotateEngine`'s lifted
  evaluation-domain tensor form (one ``(n_t, N, (h+1)d, 2(h+1))`` stack
  per limb) plus the Algorithm-2 test vector: the vectorized engine
  consumes the tensors directly (``key_pm=`` constructor injection), and
  the reference engine's :class:`~repro.tfhe.blind_rotate.BlindRotateKey`
  is rebuilt from *strided views* of the same block — no copy either
  way.  Wide-modulus (``object``-dtype) keys cannot be memory-mapped;
  publishing raises :class:`~repro.errors.SharedBufferError` and callers
  fall back to the in-process executors.
* **Ciphertexts travel framed.**  Task slices and replies are the PR-5
  CRC wire format (:func:`~repro.io.frame_blob`), so the primary detects
  corruption exactly as the simulated cluster does.
* **Send and collect are separate phases.**  The primary sends *every*
  worker's slice before awaiting any reply (the base loop's send
  phase), then gathers replies as they land via
  :func:`multiprocessing.connection.wait` over all in-flight pipes,
  with a per-worker reply deadline — so all workers compute
  concurrently and the fan-out's wall-clock is the slowest slice, not
  the sum of slices.
* **The recovery loop is the shared one.**  This class subclasses
  :class:`~repro.switching.fanout.FaultTolerantFanout`; what it adds is
  *real* failure detection — ``SIGKILL``, nonzero exit, reply timeout —
  plus worker **respawn**: a dead worker is replaced (same id, fresh
  process, re-attached keys) under a respawn budget, and the failed
  slice is re-dispatched through the ordinary
  :func:`~repro.switching.scheduler.pick_recovery_node` path.
* **Faults are injected deterministically.**  The primary pops
  :class:`~repro.switching.fanout.Fault` specs from its injector and
  ships them *with the task*; the worker realises them
  (``kill_worker`` → SIGKILL itself mid-batch, ``straggle`` → sleep,
  ``drop_reply``/``corrupt_reply`` → mutate reply blobs).  The same
  pickled schedule drives the simulated cluster and this pool.

Output is bit-identical to :class:`~repro.switching.pipeline.
LocalExecutor` for every engine combination — BlindRotate is exact
modular arithmetic, and partitioning an embarrassingly parallel batch
changes no operand — including runs where a worker is killed mid-batch
(tests assert both).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from multiprocessing import connection
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import (ClusterExecutionError, ParameterError,
                      SharedBufferError, WireFormatError)
from ..io import (
    SharedBufferManifest,
    attach_shared_arrays,
    deserialize_glwe,
    deserialize_lwe,
    frame_blob,
    publish_shared_arrays,
    serialize_glwe,
    serialize_lwe,
    unframe_blob,
)
from ..math.gadget import GadgetVector
from ..math.rns import RnsBasis, RnsPoly
from ..profiling import record_fanout
from ..tfhe.batch_engine import BatchBlindRotateEngine
from ..tfhe.blind_rotate import BlindRotateKey, blind_rotate_batch
from ..tfhe.glwe import GlweCiphertext
from ..tfhe.lwe import LweCiphertext
from ..tfhe.rgsw import RgswCiphertext
from .fanout import PRIMARY, CommLog, Fault, FaultInjector, FaultTolerantFanout
from .pipeline import BootstrapTrace, _registry_vector


# -- key material <-> shared memory -----------------------------------------------


def _pack_key_material(brk: BlindRotateKey,
                       test_vector: RnsPoly) -> Tuple[Dict[str, np.ndarray],
                                                      Dict[str, object]]:
    """The publish-side layout, with the scalar parameters needed to
    rebuild everything in ``meta``.

    Eager keys ship the batch engine's full lifted tensors (one per
    limb) plus the test vector's coefficient limbs.  Seeded keys
    (``brk.mask_seeds`` present) ship only the **body** polynomials —
    shape ``(n_t, 2, (h+1)d, N)`` per limb — plus the per-entry mask
    seeds in ``meta``; workers replay the uniform mask halves locally,
    which cuts the shared key bytes roughly in half (exactly half at
    ``h = 1``) at the price of per-worker expansion compute and private
    (non-shared) mask residency.  That is ARK's tradeoff, taken
    literally: seeds travel, bandwidth doesn't.
    """
    basis = test_vector.basis
    n = test_vector.n
    tv = test_vector.to_coeff()
    arrays: Dict[str, np.ndarray] = {
        "test_vector": np.stack([np.asarray(limb) for limb in tv.limbs]),
    }
    meta: Dict[str, object] = {
        "n": n,
        "n_t": brk.n_t,
        "h": brk.h,
        "moduli": list(basis.moduli),
        "gadget_q": brk.gadget.q,
        "gadget_base_bits": brk.gadget.base_bits,
        "gadget_digits": brk.gadget.digits,
        "tv_domain": "coeff",
    }
    if brk.mask_seeds is not None:
        from ..tfhe.rgsw import rgsw_bodies

        d = brk.gadget.digits
        rows_dim = (brk.h + 1) * d
        nlimbs = len(basis)
        bodies = [np.empty((brk.n_t, 2, rows_dim, n), dtype=np.int64)
                  for _ in range(nlimbs)]
        for i in range(brk.n_t):
            for pm, rgsw in ((0, brk.plus[i]), (1, brk.minus[i])):
                for r, body in enumerate(rgsw_bodies(rgsw)):
                    for li, limb in enumerate(body.to_eval().limbs):
                        arr = np.asarray(limb)
                        if arr.dtype == object:
                            raise SharedBufferError(
                                "wide-modulus seeded keys cannot be "
                                "shared as fixed-width bodies")
                        bodies[li][i, pm, r] = arr
        for li in range(nlimbs):
            arrays[f"brk_b_{li}"] = bodies[li]
        meta["seeded"] = True
        meta["brk_mask_seeds"] = [[int(p), int(m)] for p, m in brk.mask_seeds]
        return arrays, meta
    # Built directly, NOT via `for_key`: that would cache the lifted
    # tensors on the primary's key object, leaving the primary holding
    # the full key working set twice (cache + shared block) even though
    # it never BlindRotates in pool mode.  This engine is transient —
    # its tensors are copied into shared memory and then dropped.
    engine = BatchBlindRotateEngine(brk, n, basis)
    for li, tensor in enumerate(engine.key_pm):
        arrays[f"key_pm_{li}"] = tensor
    return arrays, meta


def _expand_seeded_key_pm(views: Dict[str, np.ndarray], meta: Dict[str, object],
                          n: int, n_t: int, h: int, d: int,
                          basis: RnsBasis) -> List[np.ndarray]:
    """Worker-side runtime key expansion (ARK): rebuild the full lifted
    tensor stack from shared bodies plus mask seeds.

    Bodies are copied out of the shared block into the worker-local
    tensor; the mask columns are pure PRNG replay of the exact draw
    order :func:`~repro.tfhe.rgsw.rgsw_encrypt_seeded` used (entry seed
    → rows ``c`` outer / ``k`` inner → mask components → limbs in basis
    order), written directly as evaluation-domain residues — no NTTs.
    The expanded stack is bit-identical to the eager-published tensors.
    """
    from ..math.sampling import mask_stream

    cols = h + 1
    seeds = meta["brk_mask_seeds"]
    key_pm = [e.zeros((n_t, n, (h + 1) * d, 2 * cols)) for e in basis.engines]
    bodies = [views[f"brk_b_{li}"] for li in range(len(basis))]
    for i in range(n_t):
        seed_p, seed_m = seeds[i]  # type: ignore[index]
        for pm, (col_off, seed) in enumerate(((0, seed_p), (cols, seed_m))):
            rng = mask_stream(int(seed))
            for c in range(cols):
                for k in range(d):
                    r = c * d + k
                    for mc in range(h):
                        for li, q in enumerate(basis.moduli):
                            key_pm[li][i, :, r, col_off + mc] = rng.uniform(n, q)
                    for li in range(len(basis)):
                        key_pm[li][i, :, r, col_off + h] = bodies[li][i, pm, r]
    return key_pm


def _rebuild_key_material(manifest: SharedBufferManifest):
    """Worker-side inverse of :func:`_pack_key_material`: attach the block
    and rebuild ``(block, brk, test_vector)`` as zero-copy views.

    The reference engine's :class:`~repro.tfhe.rgsw.RgswCiphertext` rows
    are strided views into the lifted tensor (row ``r = c*d + k``,
    columns ``[0, h+1)`` = brk+, ``[h+1, 2(h+1))`` = brk−), and the
    vectorized :class:`~repro.tfhe.batch_engine.BatchBlindRotateEngine`
    is pre-registered on the key with the tensors injected directly, so
    neither engine ever copies the key.
    """
    block, views = attach_shared_arrays(manifest)
    meta = manifest.meta
    n = int(meta["n"])
    n_t = int(meta["n_t"])
    h = int(meta["h"])
    basis = RnsBasis(meta["moduli"])
    gadget = GadgetVector(q=int(meta["gadget_q"]),
                          base_bits=int(meta["gadget_base_bits"]),
                          digits=int(meta["gadget_digits"]))
    d = gadget.digits
    cols = h + 1
    nlimbs = len(basis)
    if meta.get("seeded"):
        key_pm = _expand_seeded_key_pm(views, meta, n, n_t, h, d, basis)
    else:
        key_pm = [views[f"key_pm_{li}"] for li in range(nlimbs)]

    def rgsw_view(i: int, col_off: int) -> RgswCiphertext:
        rows: List[List[GlweCiphertext]] = []
        for c in range(cols):
            comp = []
            for k in range(d):
                r = c * d + k
                polys = [RnsPoly(n, basis,
                                 [key_pm[li][i, :, r, col_off + col]
                                  for li in range(nlimbs)],
                                 "eval")
                         for col in range(cols)]
                comp.append(GlweCiphertext(mask=polys[:h], body=polys[h]))
            rows.append(comp)
        return RgswCiphertext(rows=rows, gadget=gadget)

    seeds = meta.get("brk_mask_seeds")
    brk = BlindRotateKey(plus=[rgsw_view(i, 0) for i in range(n_t)],
                         minus=[rgsw_view(i, cols) for i in range(n_t)],
                         gadget=gadget, h=h,
                         mask_seeds=[(int(p), int(m)) for p, m in seeds]
                         if seeds is not None else None)
    tv_stack = views["test_vector"]
    test_vector = RnsPoly(n, basis, [tv_stack[li] for li in range(nlimbs)],
                          str(meta["tv_domain"]))
    # Pre-register the vectorized engine with the shared tensors so
    # `for_key` never re-lifts (which would copy the key per worker).
    engine = BatchBlindRotateEngine(brk, n, basis, key_pm=key_pm)
    brk._batch_engines = {(n, tuple(basis.moduli)): engine}
    return block, brk, test_vector


# -- the worker process ------------------------------------------------------------


def _worker_main(conn, wid: int, manifest: SharedBufferManifest) -> None:
    """Worker loop: attach keys once, then serve task slices until told
    to stop (or until an injected fault kills the process).

    Must stay a module-level function: under the ``spawn`` start method
    it is located by import, not inherited by fork.
    """
    block, brk, test_vector = _rebuild_key_material(manifest)
    #: Programmable LUTs attached from shared memory, keyed by registry
    #: id: ``lut_id -> (shm_block, RnsPoly view)``.  A respawned worker
    #: starts empty and re-attaches on first use — the manifest rides in
    #: every task message that names a LUT.
    lut_cache: Dict[str, Tuple[object, RnsPoly]] = {}
    try:
        conn.send({"op": "ready", "worker": wid, "pid": os.getpid()})
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg.get("op") == "stop":
                break
            if msg.get("op") != "task":
                continue
            lut_id = msg.get("lut")
            if lut_id is None:
                tv = test_vector
            elif lut_id in lut_cache:
                tv = lut_cache[lut_id][1]
            else:
                lut_manifest: SharedBufferManifest = msg["lut_manifest"]
                lblock, lviews = attach_shared_arrays(lut_manifest)
                lmeta = lut_manifest.meta
                lbasis = RnsBasis(lmeta["moduli"])
                stack = lviews["lut"]
                tv = RnsPoly(int(lmeta["n"]), lbasis,
                             [stack[li] for li in range(len(lbasis))],
                             str(lmeta["domain"]))
                lut_cache[lut_id] = (lblock, tv)
            faults: List[Fault] = list(msg.get("faults") or ())
            kill = next((f for f in faults
                         if f.kind in ("kill_worker", "crash")), None)
            straggle = next((f for f in faults if f.kind == "straggle"), None)
            drop = next((f for f in faults if f.kind == "drop_reply"), None)
            corrupt = next((f for f in faults
                            if f.kind == "corrupt_reply"), None)

            lwes = [deserialize_lwe(unframe_blob(b)) for b in msg["lwes"]]
            t0 = time.perf_counter()
            # The primary only ships faults realisable on this slice
            # (Fault.realisable), so a shipped kill always fires.
            if kill is not None and kill.after < len(lwes):
                if kill.after:
                    # Burn the partial work like a real mid-batch death.
                    blind_rotate_batch(tv, lwes[:kill.after], brk,
                                       engine=msg["engine"])
                if kill.exit_code is not None:
                    os._exit(int(kill.exit_code))
                os.kill(os.getpid(), signal.SIGKILL)
            accs = blind_rotate_batch(tv, lwes, brk,
                                      engine=msg["engine"])
            if straggle is not None:
                time.sleep(straggle.delay_seconds)
            seconds = time.perf_counter() - t0
            wire_out = [frame_blob(serialize_glwe(a)) for a in accs]
            if drop is not None and wire_out:
                del wire_out[min(drop.reply_index, len(wire_out) - 1)]
            if corrupt is not None and wire_out:
                i = min(corrupt.reply_index, len(wire_out) - 1)
                blob = bytearray(wire_out[i])
                blob[-1] ^= 0x41
                wire_out[i] = bytes(blob)
            try:
                conn.send({"op": "result", "slice_id": msg["slice_id"],
                           "blobs": wire_out, "seconds": seconds,
                           "processed": len(accs)})
            except (BrokenPipeError, OSError):
                break
    finally:
        try:
            conn.close()
        finally:
            for lblock, _ in lut_cache.values():
                try:
                    lblock.close()
                except OSError:  # pragma: no cover
                    pass
            block.close()


class _WorkerHandle:
    """Primary-side bookkeeping for one pool worker.

    ``deadline``/``retry`` describe the slice currently in flight on
    the worker (set by ``_send``, read by ``_collect``)."""

    __slots__ = ("wid", "process", "conn", "processed", "deadline", "retry")

    def __init__(self, wid: int, process, conn, processed: int = 0):
        self.wid = wid
        self.process = process
        self.conn = conn
        self.processed = processed
        self.deadline = 0.0
        self.retry = False


# -- the executor ------------------------------------------------------------------


class ProcessPoolFanoutExecutor(FaultTolerantFanout):
    """A persistent worker pool executing the fan-out stage in parallel.

    Plugs into :class:`~repro.switching.pipeline.BootstrapPipeline`
    exactly like the in-process executors.  The pool owns OS resources —
    worker processes and one shared-memory block — so it is a context
    manager; use ``with ProcessPoolFanoutExecutor.for_keys(...)`` or
    call :meth:`close` explicitly.

    ``reply_timeout`` plays the simulated executor's
    ``straggler_timeout`` role: a worker that has not replied within it
    is presumed dead, killed, and (budget permitting) respawned.
    """

    def __init__(self, keys, test_vector: RnsPoly, num_workers: int = 2,
                 blind_rotate_engine: str = "vectorized",
                 fault_injector: Optional[FaultInjector] = None,
                 comm: Optional[CommLog] = None,
                 reply_timeout: float = 30.0,
                 ready_timeout: float = 60.0,
                 start_method: Optional[str] = None,
                 max_retries: Optional[int] = None,
                 max_respawns: Optional[int] = None):
        if num_workers < 1:
            raise ParameterError("need at least one worker")
        self.keys = keys
        self.test_vector = test_vector
        self.num_workers = num_workers
        self.blind_rotate_engine = blind_rotate_engine
        self.injector = fault_injector if fault_injector is not None \
            else FaultInjector()
        self.comm = comm if comm is not None else CommLog()
        self.reply_timeout = reply_timeout
        self.ready_timeout = ready_timeout
        self.max_retries = max_retries
        #: Dead-worker replacement budget over the pool's lifetime.
        self.max_respawns = max_respawns if max_respawns is not None \
            else 2 * num_workers
        self._respawns_used = 0
        self._mp = multiprocessing.get_context(start_method)
        self._closed = False
        self._block = None
        #: Published programmable-LUT tensors:
        #: ``lut_id -> (shm_block, manifest)``.  Like the key block,
        #: each LUT is published once and attached zero-copy by every
        #: worker (including respawns) on first use.
        self._lut_blocks: Dict[str, Tuple[object, SharedBufferManifest]] = {}
        self._handles: Dict[int, _WorkerHandle] = {}
        #: Workers with a slice in flight (wid -> handle), mirrors the
        #: base loop's ``pending`` map on the transport side.
        self._inflight: Dict[int, _WorkerHandle] = {}

        arrays, meta = _pack_key_material(keys.brk, test_vector)
        self._block, self.manifest = publish_shared_arrays(arrays, meta)
        self.shared_key_bytes = self.manifest.total_bytes
        t0 = time.perf_counter()
        try:
            for wid in range(num_workers):
                self._handles[wid] = self._spawn(wid)
        except BaseException:
            self.close()
            raise
        self.spinup_seconds = time.perf_counter() - t0
        record_fanout(pool_spinups=1, pool_spinup_s=self.spinup_seconds,
                      shared_key_bytes=self.shared_key_bytes)

    @classmethod
    def for_keys(cls, ctx, keys, num_workers: int = 2,
                 **kwargs) -> "ProcessPoolFanoutExecutor":
        """Build a pool for a context + key set (the shared Algorithm-2
        test vector is derived exactly as the other executors derive it)."""
        test_vector = keys.test_vector(ctx.n, ctx.full_basis.moduli[0])
        return cls(keys, test_vector, num_workers=num_workers, **kwargs)

    # -- lifecycle ------------------------------------------------------------

    def _spawn(self, wid: int, processed: int = 0) -> _WorkerHandle:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(target=_worker_main,
                                   args=(child_conn, wid, self.manifest),
                                   daemon=True,
                                   name=f"fanout-worker-{wid}")
        process.start()
        child_conn.close()  # the child owns its end now
        deadline = time.monotonic() + self.ready_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or (process.exitcode is not None
                                  and not parent_conn.poll(0)):
                process.kill()
                process.join(2.0)
                parent_conn.close()
                raise ClusterExecutionError(
                    f"worker {wid} failed to come up "
                    f"(exitcode={process.exitcode})")
            try:
                if parent_conn.poll(min(0.05, max(remaining, 0.0))):
                    msg = parent_conn.recv()
                    if msg.get("op") == "ready":
                        break
            except (EOFError, OSError):
                continue  # loop re-checks exitcode
        return _WorkerHandle(wid, process, parent_conn, processed)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (workers stopped, shared key
        block released).  The service's key cache asserts this on its
        eviction and drain paths."""
        return self._closed

    def close(self) -> None:
        """Stop every worker and release the shared key block.  Idempotent
        (safe to call repeatedly, from ``__exit__``, cache eviction, and
        ``__del__`` alike — only the first call does work)."""
        if self._closed:
            return
        self._closed = True
        for handle in self._handles.values():
            try:
                handle.conn.send({"op": "stop"})
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles.values():
            handle.process.join(2.0)
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(2.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._handles.clear()
        for lblock, _ in self._lut_blocks.values():
            try:
                lblock.close()
                lblock.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._lut_blocks.clear()
        if self._block is not None:
            try:
                self._block.close()
                self._block.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._block = None

    def __enter__(self) -> "ProcessPoolFanoutExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def utilisation(self) -> Dict[int, int]:
        """BlindRotates confirmed per worker (a killed worker's burned
        partial batch is invisible to the primary — no reply came back)."""
        return {wid: h.processed for wid, h in self._handles.items()}

    # -- FaultTolerantFanout contract -----------------------------------------

    def _lut_manifest(self, lut_id: str) -> SharedBufferManifest:
        """Publish one programmable LUT's coefficient limbs into its own
        shared-memory block (idempotent per id); workers attach
        zero-copy views from the manifest shipped with their tasks."""
        if lut_id in self._lut_blocks:
            return self._lut_blocks[lut_id][1]
        poly = _registry_vector(self.keys, lut_id).to_coeff()
        arrays = {"lut": np.stack([np.asarray(limb) for limb in poly.limbs])}
        meta = {"n": poly.n, "moduli": list(poly.basis.moduli),
                "domain": "coeff", "lut_id": lut_id}
        block, manifest = publish_shared_arrays(arrays, meta)
        self._lut_blocks[lut_id] = (block, manifest)
        self.shared_key_bytes += manifest.total_bytes
        record_fanout(shared_key_bytes=manifest.total_bytes)
        return manifest

    def fanout(self, lwes: Sequence[LweCiphertext],
               trace: BootstrapTrace,
               lut: Optional[str] = None) -> List[GlweCiphertext]:
        if self._closed:
            raise ClusterExecutionError("worker pool is closed")
        if not self._handles:
            raise ClusterExecutionError(
                "no healthy worker remains in the pool")
        if lut is not None:
            self._lut_manifest(lut)  # published before any slice flies
        # A previous fan-out that raised may have left slices in flight;
        # their stale replies are rejected by the slice-id check below.
        self._inflight = {}
        trace.pool_spinup_seconds = self.spinup_seconds
        trace.shared_key_bytes = self.shared_key_bytes
        return super().fanout(lwes, trace, lut=lut)

    def _workers(self) -> Dict[int, _WorkerHandle]:
        return dict(self._handles)

    def _load(self, handle: _WorkerHandle) -> int:
        return handle.processed

    def _send(self, wid: int, handle: _WorkerHandle, start: int, stop: int,
              lwes: Sequence[LweCiphertext],
              results: List[Optional[GlweCiphertext]],
              healthy: Dict[int, _WorkerHandle],
              trace: BootstrapTrace, retry: bool) -> bool:
        """Deliver one slice and return immediately — replies are
        gathered by :meth:`_collect`, so every worker's slice is on the
        wire before any reply is awaited."""
        wire_in = [frame_blob(serialize_lwe(lwe)) for lwe in lwes[start:stop]]
        faults = [f for f in (self.injector.take_any(wid, "kill_worker",
                                                     "crash",
                                                     slice_len=stop - start),
                              self.injector.take(wid, "straggle"),
                              self.injector.take(wid, "drop_reply"),
                              self.injector.take(wid, "corrupt_reply"))
                  if f is not None]
        lut = self._lut
        try:
            handle.conn.send({"op": "task", "slice_id": (start, stop),
                              "lwes": wire_in,
                              "engine": self.blind_rotate_engine,
                              "faults": faults,
                              "lut": lut,
                              "lut_manifest": self._lut_manifest(lut)
                              if lut is not None else None})
        except (BrokenPipeError, OSError):
            self._fail_worker(handle, healthy, trace,
                              "died before dispatch (send failed)")
            return False
        # Traffic is accounted only once the send actually succeeded —
        # bytes that never left the primary are not wire traffic.
        for blob in wire_in:
            self.comm.record(PRIMARY, wid, blob, retry=retry)
        handle.deadline = time.monotonic() + self.reply_timeout
        handle.retry = retry
        self._inflight[wid] = handle
        return True

    def _collect(self, pending: Dict[int, Tuple[int, int]],
                 lwes: Sequence[LweCiphertext],
                 results: List[Optional[GlweCiphertext]],
                 healthy: Dict[int, _WorkerHandle],
                 trace: BootstrapTrace) -> List[Tuple[int, bool]]:
        """Block until at least one in-flight slice resolves: a reply
        lands (:func:`multiprocessing.connection.wait` over every
        pending pipe), a pipe hits EOF (worker death), or a per-worker
        reply deadline expires (worker presumed dead: killed + reaped).
        """
        outcomes: List[Tuple[int, bool]] = []
        while not outcomes and self._inflight:
            conns = {h.conn: h for h in self._inflight.values()}
            timeout = max(0.0, min(h.deadline
                                   for h in self._inflight.values())
                          - time.monotonic())
            ready = connection.wait(list(conns), timeout)
            for conn in ready:
                handle = conns[conn]
                wid = handle.wid
                start, stop = pending[wid]
                del self._inflight[wid]
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    self._fail_worker(handle, healthy, trace,
                                      self._death_reason(handle.process))
                    outcomes.append((wid, False))
                    continue
                outcomes.append((wid, self._accept_reply(
                    handle, reply, start, stop, results, trace)))
            if ready:
                continue
            now = time.monotonic()
            for wid, handle in list(self._inflight.items()):
                if handle.deadline > now:
                    continue
                try:
                    if handle.conn.poll(0):
                        continue  # a reply raced the deadline; take it
                except (EOFError, OSError):
                    pass  # next wait() returns the EOF'd pipe as ready
                del self._inflight[wid]
                self._fail_worker(
                    handle, healthy, trace,
                    f"timed out (> {self.reply_timeout:.3f}s "
                    f"without a reply)")
                outcomes.append((wid, False))
        return outcomes

    def _accept_reply(self, handle: _WorkerHandle, reply,
                      start: int, stop: int,
                      results: List[Optional[GlweCiphertext]],
                      trace: BootstrapTrace) -> bool:
        """Validate one reply and splice its accumulators into
        ``results``; ``False`` queues the slice for re-dispatch."""
        wid = handle.wid
        retry = handle.retry
        self._add_time(trace, wid, float(reply.get("seconds", 0.0)))
        handle.processed += int(reply.get("processed", 0))
        if reply.get("op") != "result" or \
                tuple(reply.get("slice_id", ())) != (start, stop):
            trace.notes.append(
                f"worker {wid}: unexpected reply {reply.get('op')!r} for "
                f"slice {reply.get('slice_id')!r} — slice queued for "
                f"re-dispatch")
            return False
        wire_out = list(reply["blobs"])
        for blob in wire_out:
            self.comm.record(wid, PRIMARY, blob, retry=retry)
        if len(wire_out) != stop - start:
            trace.notes.append(
                f"worker {wid}: short reply ({len(wire_out)} of "
                f"{stop - start}) — slice queued for re-dispatch")
            return False
        try:
            accs = [deserialize_glwe(unframe_blob(b)) for b in wire_out]
        except WireFormatError:
            trace.notes.append(
                f"worker {wid}: reply failed CRC check — slice queued for "
                f"re-dispatch")
            return False
        results[start:stop] = accs
        return True

    # -- failure detection + respawn ------------------------------------------

    @staticmethod
    def _death_reason(process) -> str:
        process.join(2.0)  # reap, so exitcode reflects the actual death
        code = process.exitcode
        if code is not None and code < 0:
            return f"killed by signal {-code} mid-batch"
        return f"died mid-batch (exitcode={code})"

    def _fail_worker(self, handle: _WorkerHandle,
                     healthy: Dict[int, _WorkerHandle],
                     trace: BootstrapTrace, why: str) -> None:
        """Declare a worker dead, reap the process, and respawn a
        replacement under the same id if the budget allows (the fresh
        worker rejoins ``healthy`` and can take recovery slices)."""
        wid = handle.wid
        self._inflight.pop(wid, None)
        self._mark_dead(wid, healthy, trace, why)
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(2.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        self._handles.pop(wid, None)
        if self._respawns_used >= self.max_respawns:
            trace.notes.append(
                f"worker {wid} not respawned (budget {self.max_respawns} "
                f"exhausted)")
            return
        t0 = time.perf_counter()
        try:
            fresh = self._spawn(wid, processed=handle.processed)
        except ClusterExecutionError as exc:
            trace.notes.append(f"worker {wid} respawn failed: {exc}")
            return
        self._respawns_used += 1
        self._handles[wid] = fresh
        healthy[wid] = fresh
        trace.worker_respawns += 1
        record_fanout(worker_respawns=1,
                      pool_spinup_s=time.perf_counter() - t0)
        trace.notes.append(f"worker {wid} respawned")
