"""Ring elements of ``R_q = Z_q[X]/(X^N + 1)`` with single modulus.

:class:`RingPoly` is the workhorse type for the TFHE side of the stack
(single-limb arithmetic); the CKKS side stacks several of these into an
RNS representation (see :mod:`repro.math.rns`).  Elements track which
domain they are in (coefficient vs. evaluation/NTT) and convert lazily,
mirroring the paper's convention that CKKS ciphertexts live in the
evaluation domain by default while TFHE rotation/decomposition happen in
the coefficient domain (Section IV-E).
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

from ..errors import ParameterError
from .ntt import get_ntt_engine

COEFF = "coeff"
EVAL = "eval"


class RingPoly:
    """A polynomial in ``Z_q[X]/(X^N + 1)``.

    Parameters
    ----------
    n, q:
        Ring dimension (power of two) and coefficient modulus.
    data:
        Length-``N`` integer vector.
    domain:
        ``"coeff"`` or ``"eval"``; arithmetic converts operands as needed.
    """

    __slots__ = ("n", "q", "data", "domain")

    def __init__(self, n: int, q: int, data: Union[np.ndarray, Iterable[int]], domain: str = COEFF):
        if domain not in (COEFF, EVAL):
            raise ParameterError(f"unknown domain {domain!r}")
        engine = get_ntt_engine(n, q)
        arr = engine.mod.asarray(np.asarray(data))
        if arr.shape != (n,):
            raise ParameterError(f"expected shape ({n},), got {arr.shape}")
        self.n = n
        self.q = q
        self.data = arr
        self.domain = domain

    # -- constructors ---------------------------------------------------------

    @classmethod
    def zero(cls, n: int, q: int, domain: str = COEFF) -> "RingPoly":
        return cls(n, q, get_ntt_engine(n, q).mod.zeros(n), domain)

    @classmethod
    def constant(cls, n: int, q: int, value: int) -> "RingPoly":
        data = get_ntt_engine(n, q).mod.zeros(n)
        data[0] = value % q
        return cls(n, q, data, COEFF)

    @classmethod
    def monomial(cls, n: int, q: int, exponent: int, coeff: int = 1) -> "RingPoly":
        """``coeff * X^exponent`` with the negacyclic identity ``X^N = -1``."""
        e = exponent % (2 * n)
        sign = 1
        if e >= n:
            e -= n
            sign = -1
        data = get_ntt_engine(n, q).mod.zeros(n)
        data[e] = (sign * coeff) % q
        return cls(n, q, data, COEFF)

    # -- domain management ------------------------------------------------------

    @property
    def engine(self):
        return get_ntt_engine(self.n, self.q)

    def to_coeff(self) -> "RingPoly":
        if self.domain == COEFF:
            return self
        return RingPoly(self.n, self.q, self.engine.inverse(self.data), COEFF)

    def to_eval(self) -> "RingPoly":
        if self.domain == EVAL:
            return self
        return RingPoly(self.n, self.q, self.engine.forward(self.data), EVAL)

    # -- arithmetic ----------------------------------------------------------------

    def _coerce(self, other: "RingPoly") -> str:
        if not isinstance(other, RingPoly):
            raise TypeError(f"cannot combine RingPoly with {type(other)!r}")
        if (self.n, self.q) != (other.n, other.q):
            raise ParameterError("ring mismatch")
        return self.domain if self.domain == other.domain else COEFF

    def __add__(self, other: "RingPoly") -> "RingPoly":
        dom = self._coerce(other)
        a = self if self.domain == dom else self.to_coeff()
        b = other if other.domain == dom else other.to_coeff()
        return RingPoly(self.n, self.q, a.engine.mod.add(a.data, b.data), dom)

    def __sub__(self, other: "RingPoly") -> "RingPoly":
        dom = self._coerce(other)
        a = self if self.domain == dom else self.to_coeff()
        b = other if other.domain == dom else other.to_coeff()
        return RingPoly(self.n, self.q, a.engine.mod.sub(a.data, b.data), dom)

    def __neg__(self) -> "RingPoly":
        return RingPoly(self.n, self.q, self.engine.mod.neg(self.data), self.domain)

    def __mul__(self, other) -> "RingPoly":
        if isinstance(other, (int, np.integer)):
            return RingPoly(
                self.n, self.q, self.engine.mod.mul(self.data, int(other) % self.q), self.domain
            )
        dom = self._coerce(other)
        a, b = self.to_eval(), other.to_eval()
        prod = a.engine.pointwise(a.data, b.data)
        out = RingPoly(self.n, self.q, prod, EVAL)
        return out if dom == EVAL else out.to_coeff()

    __rmul__ = __mul__

    # -- structural operations ----------------------------------------------------

    def negacyclic_shift(self, k: int) -> "RingPoly":
        """Multiply by ``X^k`` (the TFHE rotation-unit operation).

        Performed on coefficients: a shift by ``k`` with sign flips on
        wraparound, exactly what the paper's rotation unit does in
        Section IV-A ("polynomial negacyclic rotation").
        """
        c = self.to_coeff().data
        n, q = self.n, self.q
        k = k % (2 * n)
        sign_flip = k >= n
        k = k % n
        rolled = np.roll(c, k)
        if k:
            head = rolled[:k]
            rolled = rolled.copy()
            rolled[:k] = np.where(head == 0, head, q - head)
        if sign_flip:
            rolled = np.where(rolled == 0, rolled, q - rolled)
        return RingPoly(n, q, rolled, COEFF)

    def automorphism(self, t: int) -> "RingPoly":
        """Apply ``X -> X^t`` for odd ``t`` (the CKKS automorph unit).

        Coefficient ``i`` moves to position ``i*t mod 2N`` with a sign flip
        when the destination falls in the upper half — the index mapping
        ``i_r = i * 5^r (mod N)`` of Section IV-A is the special case
        ``t = 5^r``.
        """
        if t % 2 == 0:
            raise ParameterError("automorphism exponent must be odd")
        c = self.to_coeff().data
        n, q = self.n, self.q
        idx = (np.arange(n) * t) % (2 * n)
        dest = idx % n
        sign = idx >= n
        out = self.engine.mod.zeros(n)
        vals = np.where(sign, np.where(c == 0, c, q - c), c)
        out[dest] = vals
        return RingPoly(n, q, out, COEFF)

    # -- inspection ---------------------------------------------------------------

    def centered(self) -> np.ndarray:
        """Coefficients as centred representatives in ``(-q/2, q/2]``."""
        return self.engine.mod.centered(self.to_coeff().data)

    def copy(self) -> "RingPoly":
        return RingPoly(self.n, self.q, self.data.copy(), self.domain)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RingPoly):
            return NotImplemented
        if (self.n, self.q) != (other.n, other.q):
            return False
        return bool(np.array_equal(self.to_coeff().data, other.to_coeff().data))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingPoly(n={self.n}, q={self.q}, domain={self.domain})"
