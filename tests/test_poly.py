"""Tests for RingPoly: ring arithmetic, rotation, automorphism."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.modular import find_ntt_primes
from repro.math.ntt import naive_negacyclic_mul
from repro.math.poly import COEFF, EVAL, RingPoly

N = 32
Q = find_ntt_primes(26, N, 1)[0]


def rand_poly(seed, n=N, q=Q):
    rng = np.random.default_rng(seed)
    return RingPoly(n, q, rng.integers(0, q, n))


class TestConstruction:
    def test_zero(self):
        z = RingPoly.zero(N, Q)
        assert all(int(c) == 0 for c in z.data)

    def test_constant(self):
        c = RingPoly.constant(N, Q, 7)
        assert int(c.data[0]) == 7
        assert all(int(v) == 0 for v in c.data[1:])

    def test_negative_inputs_are_reduced(self):
        p = RingPoly(N, Q, [-1] * N)
        assert all(int(v) == Q - 1 for v in p.data)

    def test_wrong_length_rejected(self):
        with pytest.raises(ParameterError):
            RingPoly(N, Q, [1, 2, 3])

    def test_bad_domain_rejected(self):
        with pytest.raises(ParameterError):
            RingPoly(N, Q, [0] * N, domain="fourier")

    def test_monomial_wraps_negacyclically(self):
        # X^N == -1, X^(2N) == 1.
        assert RingPoly.monomial(N, Q, N) == RingPoly.constant(N, Q, -1)
        assert RingPoly.monomial(N, Q, 2 * N) == RingPoly.constant(N, Q, 1)
        assert RingPoly.monomial(N, Q, -1) == RingPoly.monomial(N, Q, 2 * N - 1)


class TestArithmetic:
    def test_add_commutes(self):
        a, b = rand_poly(1), rand_poly(2)
        assert a + b == b + a

    def test_sub_is_add_neg(self):
        a, b = rand_poly(3), rand_poly(4)
        assert a - b == a + (-b)

    def test_mul_matches_schoolbook(self):
        a, b = rand_poly(5), rand_poly(6)
        prod = (a * b).to_coeff()
        ref = naive_negacyclic_mul(a.data, b.data, Q)
        assert [int(v) for v in prod.data] == [int(v) for v in ref]

    def test_scalar_mul(self):
        a = rand_poly(7)
        assert (a * 3) == a + a + a
        assert (3 * a) == a * 3

    def test_mixed_domain_add(self):
        a, b = rand_poly(8), rand_poly(9).to_eval()
        assert (a + b) == (a + b.to_coeff())

    def test_ring_mismatch_rejected(self):
        a = rand_poly(10)
        other_q = find_ntt_primes(26, N, 1, skip=1)[0]
        b = RingPoly(N, other_q, [0] * N)
        with pytest.raises(ParameterError):
            _ = a + b

    def test_distributivity(self):
        a, b, c = rand_poly(11), rand_poly(12), rand_poly(13)
        assert a * (b + c) == a * b + a * c


class TestDomains:
    def test_roundtrip(self):
        a = rand_poly(14)
        assert a.to_eval().to_coeff() == a

    def test_domain_flags(self):
        a = rand_poly(15)
        assert a.domain == COEFF
        assert a.to_eval().domain == EVAL


class TestNegacyclicShift:
    def test_shift_matches_monomial_mult(self):
        a = rand_poly(16)
        for k in (0, 1, 5, N - 1, N, N + 3, 2 * N - 1):
            shifted = a.negacyclic_shift(k)
            mono = RingPoly.monomial(N, Q, k)
            assert shifted == a * mono, f"k={k}"

    def test_shift_by_2n_is_identity(self):
        a = rand_poly(17)
        assert a.negacyclic_shift(2 * N) == a

    def test_shift_by_n_negates(self):
        a = rand_poly(18)
        assert a.negacyclic_shift(N) == -a

    @given(st.integers(-100, 100))
    @settings(max_examples=30, deadline=None)
    def test_shift_composes_additively(self, k):
        a = rand_poly(19)
        assert a.negacyclic_shift(k).negacyclic_shift(5) == a.negacyclic_shift(k + 5)


class TestAutomorphism:
    def test_identity_automorphism(self):
        a = rand_poly(20)
        assert a.automorphism(1) == a

    def test_even_exponent_rejected(self):
        with pytest.raises(ParameterError):
            rand_poly(21).automorphism(2)

    def test_automorphism_is_ring_homomorphism(self):
        a, b = rand_poly(22), rand_poly(23)
        t = 5
        lhs = (a * b).automorphism(t)
        rhs = a.automorphism(t) * b.automorphism(t)
        assert lhs == rhs

    def test_automorphism_composition(self):
        a = rand_poly(24)
        # phi_s(phi_t(a)) == phi_{st mod 2N}(a)
        s, t = 5, 7
        assert a.automorphism(t).automorphism(s) == a.automorphism((s * t) % (2 * N))

    def test_conjugation_exponent(self):
        """X -> X^(2N-1) is the CKKS Conjugate map; applying twice is identity."""
        a = rand_poly(25)
        conj = a.automorphism(2 * N - 1)
        assert conj.automorphism(2 * N - 1) == a

    def test_automorphism_on_monomial(self):
        t = 5
        mono = RingPoly.monomial(N, Q, 3)
        assert mono.automorphism(t) == RingPoly.monomial(N, Q, 3 * t)


class TestCentered:
    def test_centered_bounds(self):
        a = rand_poly(26)
        c = a.centered()
        assert all(-Q // 2 <= int(v) <= Q // 2 for v in c)
