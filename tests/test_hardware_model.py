"""Tests for the hardware performance model (config, ops, FPGA, cluster)."""


import pytest

from repro.errors import ParameterError
from repro.hardware import (
    ClusterBootstrapModel,
    ClusterConfig,
    HeapHwConfig,
    OpCost,
    ResourceModel,
    SingleFpgaModel,
    compute_to_bootstrap_ratio,
    cycle_speedup,
    speedup,
    t_mult_a_slot,
)
from repro.hardware.baselines import HEAP_BOOTSTRAP_SPLIT_MS, HEAP_TABLE3
from repro.params import make_heap_params


@pytest.fixture(scope="module")
def fpga():
    return SingleFpgaModel()


@pytest.fixture(scope="module")
def cluster():
    return ClusterBootstrapModel()


class TestConfig:
    def test_onchip_capacity_matches_paper(self):
        hw = HeapHwConfig()
        # Paper Section IV-B/VI-B: ~43 MB of on-chip memory per FPGA.
        assert 40e6 < hw.onchip_bytes < 50e6

    def test_hbm_bytes_per_cycle(self):
        hw = HeapHwConfig()
        assert hw.hbm_bytes_per_cycle == pytest.approx(460e9 / 300e6)

    def test_invalid_config_rejected(self):
        with pytest.raises(ParameterError):
            HeapHwConfig(num_mod_units=0)
        with pytest.raises(ParameterError):
            ClusterConfig(num_nodes=0)


class TestOpCost:
    def test_roofline_latency(self):
        c = OpCost(compute_cycles=100, memory_cycles=300, network_cycles=50,
                   pipeline_fill_cycles=7)
        assert c.latency_cycles == 300 + 50 + 7

    def test_addition_and_scaling(self):
        a = OpCost(10, 20, 0, 5)
        b = OpCost(1, 2, 3, 4)
        s = a + b
        assert (s.compute_cycles, s.memory_cycles) == (11, 22)
        assert a.scaled(2).compute_cycles == 20


class TestCalibration:
    def test_anchored_ops_match_table3(self, fpga):
        """Calibrated latencies reproduce Table III exactly."""
        for op, paper_s in HEAP_TABLE3.items():
            assert fpga.latency_s(op) == pytest.approx(paper_s, rel=1e-6)

    def test_ntt_throughput_matches_table4(self, fpga):
        assert fpga.ntt_throughput_ops_per_s() == pytest.approx(210e3, rel=1e-6)

    def test_raw_model_is_independent(self, fpga):
        raw = SingleFpgaModel(calibrated=False)
        # Raw Add is within 2x of the paper (simple, compute-bound op).
        assert raw.latency_s("add") == pytest.approx(HEAP_TABLE3["add"], rel=1.0)

    def test_blind_rotate_calibration_flags_discrepancy(self, fpga):
        """The repro finding: the paper's 0.06 ms BlindRotate is far below
        the compute-bound estimate of its own datapath."""
        entry = fpga.calibration_report()["blind_rotate"]
        assert entry.efficiency < 0.1

    def test_unknown_op_rejected(self, fpga):
        with pytest.raises(ParameterError):
            fpga.latency_s("bogus")


class TestClusterModel:
    def test_reproduces_paper_split(self, cluster):
        bd = cluster.bootstrap_breakdown(4096, 8)
        assert bd.modswitch_s == pytest.approx(
            HEAP_BOOTSTRAP_SPLIT_MS["steps_1_2"] * 1e-3, rel=1e-6)
        assert bd.step3_s == pytest.approx(
            HEAP_BOOTSTRAP_SPLIT_MS["step_3"] * 1e-3, rel=1e-6)
        assert bd.total_s == pytest.approx(1.5e-3, rel=1e-3)

    def test_scaling_is_monotone(self, cluster):
        curve = cluster.scaling_curve(4096, 8)
        times = [curve[k] for k in sorted(curve)]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_eight_fpga_speedup_over_one(self, cluster):
        """The parallelised bootstrap actually uses the cluster — the
        contrast with FAB's ~20% multi-FPGA gain."""
        curve = cluster.scaling_curve(4096, 8)
        assert curve[1] / curve[8] > 4.0

    def test_sparse_packing_is_faster(self, cluster):
        assert cluster.bootstrap_latency_s(256) < cluster.bootstrap_latency_s(1024)
        assert cluster.bootstrap_latency_s(1024) < cluster.bootstrap_latency_s(4096)

    def test_invalid_n_br(self, cluster):
        with pytest.raises(ParameterError):
            cluster.bootstrap_latency_s(0)


class TestResources:
    def test_table2_reproduced(self):
        report = ResourceModel().report()
        assert report["luts"].percent == pytest.approx(77.61, abs=0.05)
        assert report["ffs"].percent == pytest.approx(74.26, abs=0.05)
        assert report["dsps"].percent == pytest.approx(68.08, abs=0.05)
        assert report["bram"].percent == pytest.approx(95.24, abs=0.05)
        assert report["uram"].percent == pytest.approx(99.80, abs=0.05)

    def test_ciphertext_capacities(self):
        caps = ResourceModel().onchip_rlwe_capacity(make_heap_params().ckks)
        assert caps["uram_blocks_per_ct"] == 12
        assert caps["uram_ct_capacity"] == 80
        assert caps["bram_blocks_per_ct"] == 192
        assert caps["bram_ct_capacity"] == 20

    def test_halving_units_frees_resources(self):
        small = ResourceModel(HeapHwConfig(num_mod_units=256))
        full = ResourceModel()
        assert small.report()["dsps"].utilized < full.report()["dsps"].utilized


class TestMetrics:
    def test_t_mult_a_slot(self):
        # 1 ms bootstrap, 5 levels at 0.1 ms, 1000 slots.
        v = t_mult_a_slot(1e-3, [1e-4] * 5, 1000)
        assert v == pytest.approx((1e-3 + 5e-4) / 5000)

    def test_t_mult_requires_levels(self):
        with pytest.raises(ParameterError):
            t_mult_a_slot(1.0, [], 10)

    def test_speedup(self):
        assert speedup(2.0, 1.0) == 2.0

    def test_cycle_speedup_normalises_frequency(self):
        # Same cycle count at different frequencies -> speedup 1.
        assert cycle_speedup(1.0, 1e9, 10.0, 1e8) == pytest.approx(1.0)

    def test_compute_to_bootstrap_ratio(self):
        # 70% bootstrap -> ratio 0.43; 21% -> 3.76 (paper quotes the
        # inverse convention 0.3 -> 0.79 per-iteration normalised).
        r = compute_to_bootstrap_ratio(10.0, 7.0)
        assert r == pytest.approx(3.0 / 7.0)


class TestTraffic:
    def test_key_claims(self):
        from repro.hardware import key_traffic_reduction, scheme_switching_key_bytes
        p = make_heap_params()
        ss = scheme_switching_key_bytes(p.tfhe, p.ckks.log_q_total)
        assert ss == pytest.approx(1.76e9, rel=0.02)
        assert 15 < key_traffic_reduction(p.tfhe, p.ckks.log_q_total) < 22
