"""Noise-growth model for the scheme-switching pipeline.

Parameter selection for Algorithm 2 rests on two bounds the paper never
spells out; this module makes them explicit and testable:

1. **Aliasing bound** — the blind-rotate LUT only represents
   ``q * t`` for ``|t| < N/2``, so the wrap counts must satisfy
   ``|J - K'| < N/2``.  ``K'`` is a random-walk sum with
   ``std ~ sqrt(2n/9)`` (ternary secret), ``J ~ 2N * m / q``; the model
   reports the failure probability under a Gaussian tail.
2. **Additive noise budget** — noise ``E`` accumulated in ``ct_kq``
   shrinks by ``2N`` in the final rescale, so the slot error is roughly
   ``E * sqrt(N) / (2N * Delta)``.  ``E`` itself stacks the external
   product noise of ``n_iter`` blind-rotate iterations and the ``x N``
   amplification plus key-switch noise of the repack.

Tests validate each formula against measured runs within an order of
magnitude — the standard the HE literature holds such heuristics to.
"""

from __future__ import annotations

from dataclasses import dataclass
import math


def gaussian_tail(x: float) -> float:
    """P(|Z| > x) for standard normal Z (two-sided)."""
    return math.erfc(x / math.sqrt(2.0))


@dataclass(frozen=True)
class SwitchingNoiseModel:
    """Heuristic (average-case) noise tracker for Algorithm 2."""

    n: int                 # ring dimension
    n_iter: int            # blind-rotate iterations (N direct, n_t keyswitched)
    gadget_base: int       # B of the external-product gadget
    gadget_digits: int
    key_error_std: float   # sigma of the RGSW/keyswitch key noise

    # -- aliasing ------------------------------------------------------------------

    def k_prime_std(self) -> float:
        """Wrap-count std for a ternary secret of length ``n_iter``."""
        return math.sqrt(2.0 * self.n_iter / 9.0)

    def aliasing_failure_probability(self, j_bound: float = 2.0) -> float:
        """P(|J - K'| >= N/2) per coefficient (union bound over J range)."""
        margin = self.n / 2.0 - j_bound
        if margin <= 0:
            return 1.0
        return gaussian_tail(margin / self.k_prime_std())

    # -- additive noise -----------------------------------------------------------------

    def external_product_noise_std(self) -> float:
        """Per-external-product noise: ``(h+1)d`` digit polynomials of
        ``n`` coefficients, digits ~ U(-B/2, B/2), key noise sigma."""
        digit_rms = self.gadget_base / math.sqrt(12.0)
        terms = 2 * self.gadget_digits * self.n  # (h+1)=2 components
        return math.sqrt(terms) * digit_rms * self.key_error_std

    def blind_rotate_noise_std(self) -> float:
        """Accumulated over ``n_iter`` iterations (independent errors)."""
        return math.sqrt(self.n_iter) * self.external_product_noise_std()

    def repack_noise_std(self) -> float:
        """Repack multiplies payload noise by N and adds ~log2(N)
        key-switch noises, themselves amplified by the halving levels."""
        levels = max(1, int(math.log2(self.n)))
        ks = self.external_product_noise_std()  # keyswitch ~ ext product
        amplified_payload = self.n * self.blind_rotate_noise_std()
        amplified_ks = ks * math.sqrt(sum(4.0 ** lv for lv in range(levels)))
        return math.sqrt(amplified_payload ** 2 + amplified_ks ** 2)

    def final_slot_error(self, delta: float) -> float:
        """Predicted max slot error of the bootstrap output."""
        e_ct_kq = self.repack_noise_std()
        coeff_error = e_ct_kq / (2.0 * self.n)   # the p/(2N)-rescale shrink
        # Decode spreads coefficient noise across slots ~ sqrt(N).
        return coeff_error * math.sqrt(self.n) / delta * 3.0  # 3-sigma


def required_ring_dimension(n_iter: int, fail_prob: float = 2**-40,
                            j_bound: float = 2.0) -> int:
    """Smallest power-of-two ``N`` keeping per-coefficient aliasing below
    ``fail_prob`` — the constraint that puts an *upper* bound on how small
    the paper's ``N = 2^13`` could have been pushed."""
    n = 2
    while True:
        model = SwitchingNoiseModel(n=n, n_iter=n_iter, gadget_base=2,
                                    gadget_digits=1, key_error_std=1.0)
        if model.aliasing_failure_probability(j_bound) < fail_prob:
            return n
        n *= 2
        if n > 2 ** 24:  # pragma: no cover - parameter error guard
            raise ValueError("no feasible ring dimension")
