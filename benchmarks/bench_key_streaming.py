"""ARK-style seeded key streaming: resident set vs throughput (ISSUE 9).

Three measurements, one json (``BENCH_key_streaming.json``):

1. **At-rest compression** — a seeded switching key set stores only the
   ``b``-halves plus per-key seeds; the uniform ``a``-halves replay from
   the PRNG at expansion time.  At ``h = 1`` that is half the bytes
   (gate: >= 1.9x measured on real toy-parameter keys).

2. **Pool publish** — the process-pool executor ships seeds + bodies
   through shared memory and each worker expands locally, so
   ``shared_key_bytes`` drops by the same ~2x while workers trade
   expansion compute for bandwidth (the ARK tradeoff; the expansion
   cost is timed and reported, not hidden).

3. **Resident-set-vs-throughput curve** — a multi-tenant LWE bootstrap
   workload through :class:`~repro.service.BootstrapService` swept over
   ``key_cache_bytes`` capacities.  Streaming keys give the LRU cache a
   second eviction tier: a cold tenant first *demotes* (expanded
   tensors freed, seed+``b`` and executor kept) and only under further
   pressure fully evicts.  The curve records throughput alongside
   hits/misses/evictions/demotions/expansions at each capacity — the
   paper-level story that the key working set, not compute, is the
   binding resource for multi-tenant serving.

Run with ``PYTHONPATH=src python benchmarks/bench_key_streaming.py``
(or via pytest).  ``--quick`` is the CI variant: fewer requests per
capacity point, same 4-point curve shape, all gates still enforced.
"""

import asyncio
import os
import sys
import time

try:
    from conftest import emit
except ImportError:  # running as a plain script, not under pytest
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit

import numpy as np
from _timing import time_interleaved, write_bench_json

from repro.ckks import CkksContext, CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.service import BootstrapService, ServiceTrace, UserKeys
from repro.switching.keys import StreamingSwitchingKeys, SwitchingKeySet
from repro.switching.mp_executor import ProcessPoolFanoutExecutor
from repro.tfhe.lwe import LweSecretKey, lwe_encrypt

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_key_streaming.json")

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)
SEED = 20240908
TENANTS = 4


def _make_stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(501))
    sk = gen.secret_key()
    return ctx, sk


def _at_rest_section(ctx, sk):
    """Measured seed+b compression on real keys (not the formula)."""
    seeded = SwitchingKeySet.generate_seeded(ctx, sk, key_seed=SEED,
                                             base_bits=4, error_std=0.8)
    material = seeded.compress()
    expanded_bytes = seeded.resident_bytes()
    at_rest_bytes = material.resident_bytes()
    ratio = expanded_bytes / at_rest_bytes
    assert ratio >= 1.9, (
        f"seed+b at-rest form only {ratio:.2f}x smaller than expanded keys")

    # Runtime expansion cost: the compute side of the ARK tradeoff.
    def expand():
        stream = StreamingSwitchingKeys(material)
        _ = stream.brk
        for t in stream.auto_keys.keys:
            _ = stream.auto_keys.keys[t]
        return stream

    expand()  # warmup (NTT/monomial caches)
    (expand_s,) = time_interleaved(expand)
    return seeded, material, {
        "expanded_bytes": expanded_bytes,
        "at_rest_bytes": at_rest_bytes,
        "compression_ratio": round(ratio, 3),
        "full_expansion_seconds": round(expand_s, 6),
    }


def _pool_section(ctx, sk, seeded):
    """shared_key_bytes: eager lifted publish vs seeds + bodies."""
    eager = SwitchingKeySet.generate(ctx, sk, Sampler(503), base_bits=4,
                                     error_std=0.8)
    with ProcessPoolFanoutExecutor.for_keys(ctx, eager,
                                            num_workers=1) as pool:
        eager_bytes = pool.shared_key_bytes
    t0 = time.perf_counter()
    with ProcessPoolFanoutExecutor.for_keys(ctx, seeded,
                                            num_workers=1) as pool:
        seeded_bytes = pool.shared_key_bytes
        seeded_spinup = time.perf_counter() - t0
    ratio = eager_bytes / seeded_bytes
    assert seeded_bytes < eager_bytes, (
        "seeded publish did not reduce shared key bytes")
    return {
        "eager_shared_key_bytes": eager_bytes,
        "seeded_shared_key_bytes": seeded_bytes,
        "shared_bytes_ratio": round(ratio, 3),
        "seeded_pool_spinup_s": round(seeded_spinup, 6),
    }


def _make_tenants(ctx):
    """Per-tenant streaming keys (distinct seeds and secrets) plus the
    LWE secrets the submitted ciphertexts encrypt under."""
    tenants = {}
    for t in range(TENANTS):
        gen = CkksKeyGenerator(ctx, Sampler(7000 + t))
        sk = gen.secret_key()
        swk = SwitchingKeySet.generate_seeded(ctx, sk, key_seed=SEED + t,
                                              base_bits=4, error_std=0.8)
        material = swk.compress()
        lwe_sk = LweSecretKey(coeffs=np.asarray(sk.coeffs, dtype=object))
        tenants[f"tenant-{t}"] = (material, lwe_sk)
    return tenants


def _curve_point(ctx, tenants, capacity, requests):
    """One capacity point: zipf-skewed tenant access, waved submissions
    (in-flight requests pin their entries; waves let eviction breathe)."""
    streams = {}

    def provider(uid):
        # Fresh StreamingSwitchingKeys per admission: an evicted tenant
        # pays re-admission from material, a demoted one only re-expands.
        material, _ = tenants[uid]
        stream = StreamingSwitchingKeys(material)
        streams.setdefault(uid, []).append(stream)
        return UserKeys.from_switching(ctx, stream)

    s = Sampler(77)
    rng = np.random.default_rng(SEED)
    weights = np.array([1.0 / (t + 1) for t in range(TENANTS)])
    weights /= weights.sum()
    sequence = rng.choice(TENANTS, size=requests, p=weights)
    lwes = {uid: lwe_encrypt(3, lwe_sk, 2 * ctx.n, s, error_std=0.5)
            for uid, (_m, lwe_sk) in tenants.items()}
    trace = ServiceTrace()

    async def main():
        svc = BootstrapService(provider, max_batch=8, max_delay_s=0.002,
                               key_cache_bytes=capacity, trace=trace)
        async with svc:
            t0 = time.perf_counter()
            wave = 8
            for i in range(0, len(sequence), wave):
                await asyncio.gather(*[
                    svc.submit(f"tenant-{t}", lwes[f"tenant-{t}"])
                    for t in sequence[i:i + wave]])
            return time.perf_counter() - t0

    elapsed = asyncio.run(main())
    expansions = sum(st.expansions for ss in streams.values() for st in ss)
    return {
        "capacity_bytes": capacity,
        "requests": requests,
        "throughput_rps": round(requests / elapsed, 2),
        "key_cache_hits": trace.key_cache_hits,
        "key_cache_misses": trace.key_cache_misses,
        "evictions": trace.key_cache_evictions,
        "demotions": trace.key_cache_demotions,
        "expansions": expansions,
        "peak_resident_key_bytes": trace.peak_resident_key_bytes,
    }


def _run(requests_per_point):
    ctx, sk = _make_stack()
    seeded, material, at_rest = _at_rest_section(ctx, sk)
    pool = _pool_section(ctx, sk, seeded)

    tenants = _make_tenants(ctx)
    # Anchor capacities to a measured fully-expanded entry footprint
    # (keys + lifted tensors + executor) so the sweep stresses the same
    # regimes on any parameter change: ~1 expanded tenant, ~2, ~3, all.
    probe = _curve_point(ctx, tenants, None, min(requests_per_point, 16))
    expanded_entry = probe["peak_resident_key_bytes"] // TENANTS
    capacities = [int(expanded_entry * f) for f in (1.25, 2.25, 3.25)] + [None]
    curve = [_curve_point(ctx, tenants, cap, requests_per_point)
             for cap in capacities]
    assert len(curve) >= 4
    assert any(p["demotions"] > 0 for p in curve), (
        "no capacity point exercised the demote tier")

    write_bench_json(JSON_PATH, "key_streaming", curve,
                     extra={"n": ctx.n, "tenants": TENANTS,
                            "at_rest": at_rest, "pool_publish": pool})

    lines = ["Seeded key streaming: resident set vs throughput "
             f"(n={ctx.n}, {TENANTS} tenants, zipf access)",
             f"at rest:   {at_rest['expanded_bytes']:>9} B expanded -> "
             f"{at_rest['at_rest_bytes']:>9} B seed+b "
             f"({at_rest['compression_ratio']:.2f}x), full expansion "
             f"{at_rest['full_expansion_seconds'] * 1e3:.1f} ms",
             f"pool:      {pool['eager_shared_key_bytes']:>9} B shared -> "
             f"{pool['seeded_shared_key_bytes']:>9} B "
             f"({pool['shared_bytes_ratio']:.2f}x)",
             f"{'capacity':>12} {'rps':>8} {'hit':>5} {'miss':>5} "
             f"{'evict':>6} {'demote':>7} {'expand':>7} {'peak MB':>8}"]
    for p in curve:
        cap = "unbounded" if p["capacity_bytes"] is None \
            else str(p["capacity_bytes"])
        lines.append(
            f"{cap:>12} {p['throughput_rps']:>8.2f} "
            f"{p['key_cache_hits']:>5} {p['key_cache_misses']:>5} "
            f"{p['evictions']:>6} {p['demotions']:>7} {p['expansions']:>7} "
            f"{p['peak_resident_key_bytes'] / 1e6:>8.2f}")
    emit("key_streaming", "\n".join(lines))
    return curve


def bench_key_streaming():
    _run(64)


if __name__ == "__main__":
    _run(24 if "--quick" in sys.argv[1:] else 64)
    print("bench_key_streaming: OK")
