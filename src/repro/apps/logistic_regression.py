"""Homomorphic logistic-regression training (HELR [29], paper Section VI-F1).

Three layers, mirroring how the paper evaluates the workload:

1. :class:`PlaintextLogisticRegression` — the exact training loop
   (gradient descent with the HELR degree-3 polynomial sigmoid) in the
   clear; the accuracy reference (~97% on the 3-vs-8 task).
2. :class:`EncryptedLogisticRegression` — the same iteration executed on
   CKKS ciphertexts (packing a minibatch row-major in the slots), with a
   scheme-switching bootstrap refreshing the weight ciphertext between
   iterations, exactly as the paper runs "30 iterations and perform a
   bootstrapping operation after every iteration".
3. :func:`lr_iteration_model` — op counts per iteration that drive the
   Table VI latency prediction through the hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..ckks import CkksCiphertext, CkksContext, CkksEvaluator
from ..errors import ParameterError
from ..switching.bootstrap import SchemeSwitchBootstrapper
from .datasets import Dataset

#: HELR's least-squares degree-3 sigmoid approximation on [-8, 8].
SIGMOID_DEG3 = (0.5, 0.15012, 0.0, -0.0015930078125)


def poly_sigmoid(z: np.ndarray) -> np.ndarray:
    """The degree-3 polynomial the encrypted loop evaluates."""
    c0, c1, _, c3 = SIGMOID_DEG3
    z = np.asarray(z, dtype=np.float64)
    return c0 + c1 * z + c3 * z**3


class PlaintextLogisticRegression:
    """Reference trainer with the identical polynomial activation."""

    def __init__(self, num_features: int, lr: float = 1.0):
        self.w = np.zeros(num_features)
        self.lr = lr

    def iterate(self, x: np.ndarray, y: np.ndarray) -> None:
        z = x @ self.w
        pred = poly_sigmoid(z)
        grad = x.T @ (pred - y) / len(y)
        self.w -= self.lr * grad

    def train(self, ds: Dataset, iterations: int = 30,
              batch_size: Optional[int] = None) -> None:
        batch = batch_size or ds.num_samples
        i = 0
        while i < iterations:
            for xb, yb in ds.batches(batch):
                self.iterate(xb, yb)
                i += 1
                if i >= iterations:
                    break

    def accuracy(self, ds: Dataset) -> float:
        pred = (ds.x @ self.w) > 0
        return float(np.mean(pred == ds.y))


@dataclass
class EncryptedLrState:
    """Weights held as a (replicated-layout) CKKS ciphertext."""

    ct_w: CkksCiphertext
    iteration: int = 0


class EncryptedLogisticRegression:
    """One HELR-style iteration on CKKS ciphertexts.

    Packing: a minibatch of ``b`` examples with ``f`` features occupies
    the ``b*f`` slots row-major (``slot[i*f + j] = x[i, j]``); the weight
    vector is replicated ``b`` times.  Inner products use ``log2 f``
    rotate-and-add steps; the gradient reduction uses ``log2 b`` steps at
    stride ``f``.  ``f`` and ``b`` must be powers of two.
    """

    def __init__(self, ctx: CkksContext, ev: CkksEvaluator,
                 num_features: int, batch: int, lr: float = 1.0,
                 bootstrapper: Optional[SchemeSwitchBootstrapper] = None):
        if num_features & (num_features - 1) or batch & (batch - 1):
            raise ParameterError("features and batch must be powers of two")
        if num_features * batch > ctx.slots:
            raise ParameterError("minibatch does not fit in the slots")
        self.ctx = ctx
        self.ev = ev
        self.f = num_features
        self.b = batch
        self.lr = lr
        self.boot = bootstrapper

    # -- packing helpers -----------------------------------------------------------

    def pack_batch(self, x: np.ndarray) -> np.ndarray:
        flat = np.zeros(self.ctx.slots)
        flat[: self.f * self.b] = x[: self.b, : self.f].ravel()
        return flat

    def pack_weights(self, w: np.ndarray) -> np.ndarray:
        flat = np.zeros(self.ctx.slots)
        flat[: self.f * self.b] = np.tile(w[: self.f], self.b)
        return flat

    def pack_labels(self, y: np.ndarray) -> np.ndarray:
        flat = np.zeros(self.ctx.slots)
        flat[: self.f * self.b] = np.repeat(y[: self.b].astype(float), self.f)
        return flat

    def unpack_weights(self, slots: np.ndarray) -> np.ndarray:
        return np.real(slots[: self.f])

    # -- the encrypted iteration --------------------------------------------------------

    def iterate(self, ct_w: CkksCiphertext, x: np.ndarray,
                y: np.ndarray) -> CkksCiphertext:
        """One gradient step, everything about the data encrypted."""
        ev = self.ev
        xb = self.pack_batch(x)
        yb = self.pack_labels(y)

        # z_i (replicated over the row): multiply then rotate-sum over
        # feature strides; the row-sum result is replicated back across
        # the row by the wrap-around of the rotations within a row...
        prod = ev.rescale(ev.mul_plain(ct_w, xb, scale=self.ctx.params.scale))
        z = prod
        shift = 1
        while shift < self.f:
            z = ev.add(z, ev.rotate(z, shift))
            shift *= 2
        # Row i now holds z_i in slot i*f (other slots hold partials).
        # Mask to the row head and re-replicate across the row.
        mask = np.zeros(self.ctx.slots)
        mask[0: self.f * self.b: self.f] = 1.0
        z = ev.rescale(ev.mul_plain(z, mask, scale=self.ctx.params.scale))
        rep = z
        shift = 1
        while shift < self.f:
            rep = ev.add(rep, ev.rotate(rep, -shift))
            shift *= 2

        # Degree-3 sigmoid: c0 + c1 z + c3 z^3.
        c0, c1, _, c3 = SIGMOID_DEG3
        z2 = ev.mul_relin_rescale(rep, rep)
        z1m = ev.rescale(ev.mul_plain(rep, np.full(self.ctx.slots, c1)))
        z3 = ev.mul_relin_rescale(
            z2, ev.rescale(ev.mul_plain(
                ev.drop_to_level(rep, z2.level + 1),
                np.full(self.ctx.slots, c3))))
        lvl = min(z1m.level, z3.level)
        sig = ev.add(ev.drop_to_level(z1m, lvl), ev.drop_to_level(z3, lvl))
        sig = ev.add_plain(sig, np.full(self.ctx.slots, c0))

        # Residual (sigma(z) - y), times features, reduced over the batch.
        resid = ev.sub_plain(sig, yb)
        gx = ev.rescale(ev.mul_plain(resid, xb, scale=self.ctx.params.scale))
        shift = self.f
        while shift < self.f * self.b:
            gx = ev.add(gx, ev.rotate(gx, shift))
            shift *= 2
        # Row 0 now holds the summed gradient; re-replicate to all rows.
        mask = np.zeros(self.ctx.slots)
        mask[: self.f] = 1.0
        grad = ev.rescale(ev.mul_plain(gx, mask, scale=self.ctx.params.scale))
        rep_g = grad
        shift = self.f
        while shift < self.f * self.b:
            rep_g = ev.add(rep_g, ev.rotate(rep_g, -shift))
            shift *= 2

        # w <- w - lr/b * grad (bridge w to the gradient's level/scale).
        step = ev.rescale(ev.mul_plain(
            rep_g, np.full(self.ctx.slots, self.lr / self.b)))
        w_bridged = ct_w
        while w_bridged.level > step.level + 1:
            w_bridged = self.ev.drop_to_level(w_bridged, step.level + 1)
        bridge = step.scale * w_bridged.basis.moduli[w_bridged.level] / w_bridged.scale
        w_bridged = ev.rescale(ev.mul_plain(
            w_bridged, np.ones(self.ctx.slots), scale=bridge))
        w_bridged.scale = step.scale
        return ev.sub(w_bridged, ev.drop_to_level(step, w_bridged.level))

    def rotation_indices(self) -> List[int]:
        """Rotation keys an iteration needs (positive and negative)."""
        rots = set()
        shift = 1
        while shift < self.f:
            rots.update([shift, self.ctx.slots - shift])
            shift *= 2
        shift = self.f
        while shift < self.f * self.b:
            rots.update([shift, self.ctx.slots - shift])
            shift *= 2
        return sorted(rots)

    def train(self, state: EncryptedLrState, ds: Dataset,
              iterations: int) -> EncryptedLrState:
        """Run iterations, bootstrapping the weights whenever exhausted."""
        ct = state.ct_w
        it = state.iteration
        for xb, yb in ds.batches(self.b):
            if it >= iterations:
                break
            ct = self.iterate(ct, xb, yb)
            if self.boot is not None and ct.level < 6:
                # Refresh: drop to the base limb and scheme-switch.
                ct = self._refresh(ct)
            it += 1
        return EncryptedLrState(ct_w=ct, iteration=it)

    def _refresh(self, ct: CkksCiphertext) -> CkksCiphertext:
        ct0 = self.ev.drop_to_level(ct, 0)
        # The bootstrapper preserves the scale label; re-anchor to Delta
        # afterwards via a bridging multiply if needed.
        out = self.boot.bootstrap(ct0)
        delta = self.ctx.params.scale
        if abs(out.scale / delta - 1.0) > 1e-9:
            bridge = delta * out.basis.moduli[out.level] / out.scale
            out = self.ev.rescale(self.ev.mul_plain(
                out, np.ones(self.ctx.slots), scale=bridge))
            out.scale = delta
        return out


# -- Table VI op-count model -------------------------------------------------------


@dataclass(frozen=True)
class LrOpCounts:
    """Homomorphic ops in one HELR iteration at production scale.

    The paper does not list HELR's op counts; these are fitted to its
    two reported facts — 0.007 s/iteration on HEAP and ~21% of iteration
    time in bootstrapping (Section VI-F1) — while staying plausible for
    the HELR circuit (196 features, 1024-sample minibatch, sparse
    256-slot packing, several live ciphertexts bootstrapped per
    iteration).  EXPERIMENTS.md documents the fit.
    """

    mults: int = 120
    rotates: int = 80
    adds: int = 200
    bootstraps: int = 6
    slots: int = 256


def lr_iteration_model(fpga_model, cluster_model,
                       counts: LrOpCounts = LrOpCounts()):
    """Predict (iteration_seconds, bootstrap_share) through the models."""
    compute = (counts.mults * fpga_model.latency_s("mult") +
               counts.rotates * fpga_model.latency_s("rotate") +
               counts.adds * fpga_model.latency_s("add"))
    boot = counts.bootstraps * cluster_model.bootstrap_latency_s(counts.slots)
    total = compute + boot
    return total, boot / total
