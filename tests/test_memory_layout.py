"""Tests for the Fig. 2/3 memory layouts and §IV-D address generation."""

import math

import pytest

from repro.errors import ParameterError
from repro.hardware.config import HeapHwConfig
from repro.hardware.memory_layout import (
    BramLayout,
    NttAddressGenerator,
    UramLayout,
)
from repro.params import make_heap_params

HW = HeapHwConfig()
HEAP = make_heap_params().ckks


class TestUramLayout:
    def test_paper_block_count(self):
        layout = UramLayout(HW, HEAP.n, HEAP.max_limbs)
        assert layout.blocks_per_ciphertext == 12  # paper Section IV-C

    def test_pair_shares_word(self):
        """Fig. 2: the same-modulus limbs of a and b share one word, so a
        single fetch serves both NTT passes (one twiddle read)."""
        layout = UramLayout(HW, HEAP.n, HEAP.max_limbs)
        a, b = layout.fetch_pair(limb=2, coeff=100)
        assert (a.block, a.word) == (b.block, b.word)
        assert {a.half, b.half} == {0, 1}

    def test_all_coefficients_fit(self):
        layout = UramLayout(HW, HEAP.n, HEAP.max_limbs)
        last = layout.locate(1, HEAP.max_limbs - 1, HEAP.n - 1)
        assert last.block < layout.blocks_per_ciphertext

    def test_no_collisions_within_limb(self):
        layout = UramLayout(HW, 64, 2)
        seen = set()
        for limb in range(2):
            for coeff in range(64):
                loc = layout.locate(0, limb, coeff)
                key = (loc.block, loc.word)
                assert key not in seen
                seen.add(key)

    def test_bounds_checked(self):
        layout = UramLayout(HW, HEAP.n, HEAP.max_limbs)
        with pytest.raises(ParameterError):
            layout.locate(2, 0, 0)
        with pytest.raises(ParameterError):
            layout.locate(0, HEAP.max_limbs, 0)


class TestBramLayout:
    def test_paper_block_count(self):
        layout = BramLayout(HW, HEAP.n, HEAP.max_limbs)
        assert layout.blocks_per_ciphertext == 192  # paper Section IV-C

    def test_paired_blocks_adjacent(self):
        layout = BramLayout(HW, HEAP.n, HEAP.max_limbs)
        lo, hi = layout.blocks_for(0, 0, 0)
        assert hi == lo + 1

    def test_capacity(self):
        layout = BramLayout(HW, HEAP.n, HEAP.max_limbs)
        assert HW.bram_blocks_used // layout.blocks_per_ciphertext == 20


class TestNttAddressGeneration:
    @pytest.mark.parametrize("n", [16, 64, 1 << 13])
    def test_stage_coverage_is_bijection(self, n):
        """Every stage's address map covers [0, N) exactly once."""
        gen = NttAddressGenerator(n)
        for cs in range(int(math.log2(n))):
            addrs = gen.stage_coverage(cs)
            assert sorted(addrs) == list(range(n)), f"stage {cs}"

    def test_paper_formula(self):
        gen = NttAddressGenerator(64)
        # address = i_g + i_nc * 2^cs
        assert gen.address(cs=2, i_g=3, i_nc=5) == 3 + 5 * 4

    def test_group_counts(self):
        gen = NttAddressGenerator(1 << 13)
        for cs in (0, 5, 12):
            assert gen.group_size(cs) * gen.num_groups(cs) == 1 << 13

    def test_butterfly_partners_stride(self):
        """Partners within a group sit exactly group_size/2 * 2^cs apart —
        a single adder in hardware."""
        gen = NttAddressGenerator(64)
        for cs in range(5):
            stride = (gen.group_size(cs) // 2) << cs
            for g in range(gen.num_groups(cs)):
                for lo, hi in gen.butterfly_pairs(cs, g):
                    assert hi - lo == stride

    def test_first_stage_single_group(self):
        gen = NttAddressGenerator(32)
        assert gen.num_groups(0) == 1
        assert gen.group_size(0) == 32

    def test_bad_indices_rejected(self):
        gen = NttAddressGenerator(32)
        with pytest.raises(ParameterError):
            gen.address(1, 99, 0)
        with pytest.raises(ParameterError):
            NttAddressGenerator(33)

    def test_group_shares_twiddle_semantics(self):
        """Cross-check against the software NTT: members of one §IV-D
        group correspond to butterflies using one twiddle factor.  In the
        DIT implementation (tests/test_ntt), stage with half-size m uses
        twiddle index (j % m) * (n/2m) for position j; the generator's
        groups must be constant in that index."""
        n = 32
        gen = NttAddressGenerator(n)
        for cs in range(1, 5):
            m = n >> cs  # group size
            for g in range(gen.num_groups(cs)):
                pairs = list(gen.butterfly_pairs(cs, g))
                assert len(pairs) == m // 2
