#!/usr/bin/env python3
"""Serving bootstrap traffic: the coalescing service front-end.

The batched engines only pay off when the fan-out tensors are full,
but real traffic arrives one ciphertext at a time.  This example runs
``repro.service.BootstrapService`` at toy ring size:

1. one tenant generates CKKS switching keys; several end users share
   them (the provider returns the same ``UserKeys`` object, so they
   alias one cache entry and coalesce into common batches),
2. the users submit exhausted ciphertexts concurrently,
3. the service coalesces the requests, runs one shared fan-out per
   batch, slices the results back, and every user decrypts a
   refreshed ciphertext — bit-identical to solo dispatch.
"""

import asyncio

import numpy as np

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.service import BootstrapService, ServiceTrace, UserKeys
from repro.switching import SwitchingKeySet


async def main() -> None:
    # One tenant's key material, shared by all of its end users.
    params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(1))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(2))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(3), base_bits=4,
                                   error_std=0.8)
    tenant_keys = UserKeys.from_switching(ctx, swk)
    print(f"tenant keys resident: {tenant_keys.resident_bytes()} bytes")

    users = [f"user-{i}" for i in range(4)]
    plaintexts = {u: np.linspace(0.1, 0.6, ctx.slots) + 0.05 * i
                  for i, u in enumerate(users)}
    cts = {u: ev.encrypt(v, level=0) for u, v in plaintexts.items()}

    trace = ServiceTrace()
    svc = BootstrapService(lambda user_id: tenant_keys,
                           max_batch=4 * ctx.n,   # room for 4 ciphertexts
                           max_delay_s=0.05,      # latency budget
                           key_cache_bytes=64 << 20,
                           trace=trace)
    async with svc:
        refreshed = dict(zip(users, await asyncio.gather(*[
            svc.submit_ciphertext(u, cts[u]) for u in users])))
        # A second round from the same users hits the warm key cache.
        await asyncio.gather(*[
            svc.submit_ciphertext(u, cts[u]) for u in users])

    for u in users:
        err = np.max(np.abs(ev.decrypt(refreshed[u], sk).real
                            - plaintexts[u]))
        print(f"{u}: refreshed to level {refreshed[u].level}, "
              f"max error {err:.4f}")

    print(f"\n{trace.requests_completed} requests served in "
          f"{trace.batches} coalesced batch(es), "
          f"mean fill {trace.mean_batch_fill:.0f} LWEs, "
          f"key-cache hit rate {trace.key_cache_hit_rate:.2f} "
          f"({trace.key_cache_misses} miss / {trace.key_cache_hits} hit)")


if __name__ == "__main__":
    asyncio.run(main())
