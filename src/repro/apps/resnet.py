"""ResNet-20 inference workload (paper Section VI-F2).

Two layers:

* :func:`resnet20_op_counts` / :func:`resnet_inference_model` — the
  homomorphic op sequence of Lee et al.'s multiplexed-parallel-convolution
  ResNet-20 (the network the paper and all its comparators run), driving
  the Table VII latency prediction.  1024 slots are packed, so every
  bootstrap processes 1024 LWE ciphertexts in HEAP.
* :class:`TinyEncryptedCnn` — a functional demonstration that the CKKS
  stack really evaluates a convolution + activation + pooling block on
  encrypted data (a full encrypted ResNet-20 is ~10^4 seconds even on
  the paper's CPU baseline, so the functional demo is a structurally
  identical miniature; the performance layer handles the full network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..ckks import CkksCiphertext, CkksContext, CkksEvaluator
from ..errors import ParameterError


@dataclass(frozen=True)
class ResNetLayer:
    """One homomorphic layer's op counts."""

    name: str
    mults: int
    rotates: int
    adds: int
    bootstraps: int


def resnet20_op_counts() -> List[ResNetLayer]:
    """Homomorphic op counts for ResNet-20 (Lee et al. [39] structure).

    ResNet-20: one stem conv, three stages of three residual blocks
    (16/32/64 channels), average-pool + FC.  Under multiplexed parallel
    convolution each conv layer is a BSGS matrix-style kernel of
    rotations and plaintext mults, and each ReLU is a high-degree
    polynomial needing a bootstrap per activation layer.  Counts are
    per-layer estimates fitted to the paper's two anchors — 0.267 s total
    on HEAP with ~44% of time in bootstrapping (Section VI-F2) — with the
    bootstrap count (~230) in line with what ARK/SHARP report for this
    network.  EXPERIMENTS.md documents the fit.
    """
    layers: List[ResNetLayer] = [ResNetLayer("stem-conv", 60, 50, 120, 2)]
    for stage, blocks in ((1, 3), (2, 3), (3, 3)):
        for b in range(blocks):
            layers.append(ResNetLayer(
                name=f"stage{stage}-block{b}",
                mults=320, rotates=230, adds=800,
                bootstraps=25))
        # Downsampling shortcut between stages.
        layers.append(ResNetLayer(f"stage{stage}-shortcut", 30, 20, 60, 0))
    layers.append(ResNetLayer("avgpool-fc", 80, 60, 150, 3))
    return layers


def resnet_inference_model(fpga_model, cluster_model,
                           slots: int = 1024) -> Tuple[float, float]:
    """Predict (total_seconds, bootstrap_share) for ResNet-20 inference."""
    total_compute = 0.0
    total_boot = 0.0
    boot_latency = cluster_model.bootstrap_latency_s(slots)
    for layer in resnet20_op_counts():
        total_compute += (layer.mults * fpga_model.latency_s("mult") +
                          layer.rotates * fpga_model.latency_s("rotate") +
                          layer.adds * fpga_model.latency_s("add"))
        total_boot += layer.bootstraps * boot_latency
    total = total_compute + total_boot
    return total, total_boot / total


def total_bootstrap_count() -> int:
    return sum(layer.bootstraps for layer in resnet20_op_counts())


# -- functional miniature ------------------------------------------------------------


class TinyEncryptedCnn:
    """Conv2d(valid) + square activation + sum-pool on an encrypted image.

    The image (``side x side``) is packed row-major in the slots; a
    ``k x k`` kernel becomes ``k^2`` rotations with plaintext-masked
    taps — the same rotation/PtMult structure as the multiplexed
    convolutions of Lee et al., at thumbnail scale.  Square activation is
    the standard HE-friendly stand-in for ReLU in functional tests (the
    paper's own non-linearities go through the TFHE LUT path instead).
    """

    def __init__(self, ctx: CkksContext, ev: CkksEvaluator, side: int,
                 kernel: np.ndarray):
        if side * side > ctx.slots:
            raise ParameterError("image does not fit in the slots")
        self.ctx = ctx
        self.ev = ev
        self.side = side
        self.kernel = np.asarray(kernel, dtype=np.float64)
        if self.kernel.ndim != 2 or self.kernel.shape[0] != self.kernel.shape[1]:
            raise ParameterError("kernel must be square")

    def pack_image(self, img: np.ndarray) -> np.ndarray:
        flat = np.zeros(self.ctx.slots)
        flat[: self.side * self.side] = img[: self.side, : self.side].ravel()
        return flat

    def rotation_indices(self) -> List[int]:
        k = self.kernel.shape[0]
        rots = set()
        for di in range(k):
            for dj in range(k):
                r = (di * self.side + dj) % self.ctx.slots
                if r:
                    rots.add(r)
        return sorted(rots)

    def conv(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Valid convolution: output (side-k+1)^2 values at the original
        row-major positions of their top-left corner."""
        ev = self.ev
        k = self.kernel.shape[0]
        out_side = self.side - k + 1
        acc = None
        for di in range(k):
            for dj in range(k):
                tap = float(self.kernel[di, dj])
                if abs(tap) < 1e-14:
                    continue
                r = di * self.side + dj
                rotated = ev.rotate(ct, r) if r else ct
                mask = np.zeros(self.ctx.slots)
                for i in range(out_side):
                    row = i * self.side
                    mask[row: row + out_side] = tap
                term = ev.mul_plain(rotated, mask, scale=self.ctx.params.scale)
                acc = term if acc is None else ev.add(acc, term)
        return ev.rescale(acc)

    def square_activation(self, ct: CkksCiphertext) -> CkksCiphertext:
        return self.ev.mul_relin_rescale(ct, ct)

    def sum_pool(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Sum every slot of the (valid-region) feature map into slot 0."""
        ev = self.ev
        out = ct
        shift = 1
        while shift < self.ctx.slots:
            out = ev.add(out, ev.rotate(out, shift))
            shift *= 2
        return out

    def pool_rotations(self) -> List[int]:
        rots = []
        shift = 1
        while shift < self.ctx.slots:
            rots.append(shift)
            shift *= 2
        return rots

    @staticmethod
    def reference(img: np.ndarray, kernel: np.ndarray) -> np.ndarray:
        """Plaintext conv + square for verification."""
        side = img.shape[0]
        k = kernel.shape[0]
        out_side = side - k + 1
        out = np.zeros((out_side, out_side))
        for i in range(out_side):
            for j in range(out_side):
                out[i, j] = float(np.sum(img[i:i + k, j:j + k] * kernel))
        return out ** 2
