"""Key material for the scheme-switching bootstrap.

One :class:`SwitchingKeySet` holds everything Algorithm 2 needs:

* **blind-rotate keys** ``brk = {RGSW(s_i^+), RGSW(s_i^-)}`` — RGSW
  encryptions (over the raised basis ``Q * p``) of the indicator digits of
  the *CKKS* secret, under that same secret viewed as a GLWE key.  The
  accumulator key equals the CKKS key so that the blind-rotate output can
  be added directly to the raised ciphertext in step 4 of Algorithm 2.
* **repacking keys** — automorphism key-switch keys for the ``log2 N``
  exponents used by the LWE-to-RLWE repack.

Size audit helpers implement the paper's Section III-C accounting and are
exercised by the key-size benchmark (0.44 MB ciphertext, ~3.52 MB per
brk entry, 1.76 GB total, ~18x less key traffic than conventional
bootstrapping).

Note on dimensions: the paper key-switches extracted LWE ciphertexts down
to ``n_t = 500`` before blind rotation, so its brk has 500 entries.  Our
functional pipeline blind-rotates at dimension ``N`` directly (exactly as
Algorithm 2 is written — its Extract produces dimension-``N`` LWE
ciphertexts and there is no key-switch step in the algorithm listing);
the ``n_t`` distinction is honoured by the performance model and by
:meth:`SwitchingKeySet.paper_sizes`, and DESIGN.md records the
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from ..ckks.context import CkksContext
from ..ckks.keys import SecretKey
from ..math.gadget import GadgetVector
from ..math.rns import RnsBasis, RnsPoly, concat_bases
from ..math.sampling import Sampler
from ..params import TfheParams
from ..tfhe.blind_rotate import BlindRotateKey
from ..tfhe.glwe import GlweSecretKey
from ..tfhe.keyswitch import AutomorphismKeySet
from ..tfhe.lwe import LweSecretKey
from ..tfhe.repack import repack_exponents


def rns_poly_bytes(poly: RnsPoly) -> int:
    """Resident bytes of one RNS polynomial: ``nbytes`` of each machine-
    dtype limb; wide (``object``-dtype) limbs priced at the paper's
    §III-C coefficient width of ``ceil(log2 q_i / 8)`` bytes per slot."""
    total = 0
    for q, limb in zip(poly.basis.moduli, poly.limbs):
        arr = np.asarray(limb)
        if arr.dtype == object:
            total += arr.size * ((int(q).bit_length() + 7) // 8)
        else:
            total += arr.nbytes
    return total


@dataclass
class SwitchingKeySet:
    """Blind-rotate + repacking keys over the raised basis ``Q * p``."""

    brk: BlindRotateKey
    auto_keys: AutomorphismKeySet
    raised_basis: RnsBasis
    gadget: GadgetVector
    glwe_sk_ref: GlweSecretKey  # kept for tests/debug decryption only
    #: Cached Algorithm-2 test vectors keyed by ``(n, q)`` — built lazily
    #: by :meth:`test_vector` and shared by every execution path (the
    #: local pipeline and all simulated cluster nodes).
    _test_vectors: Dict[Tuple[int, int], RnsPoly] = field(
        default_factory=dict, repr=False, compare=False)

    def resident_bytes(self) -> int:
        """Measured bytes of this key set's polynomial material — the
        blind-rotate RGSW entries plus every automorphism key-switch key
        (the quantities §III-C audits by formula; ``bench_keysizes.py``
        checks the formula against the paper, this counts the *actual*
        resident arrays).  The service's LRU key cache charges each user
        this amount (ARK direction: bound the resident key working set).

        Machine-dtype limbs are priced at ``ndarray.nbytes``; wide
        (``object``-dtype) limbs at the §III-C coefficient width
        ``ceil(log2 q / 8)`` bytes per slot, since a Python-int pointer
        array has no meaningful ``nbytes``.
        """
        total = sum(rns_poly_bytes(p) for rgsw in
                    list(self.brk.plus) + list(self.brk.minus)
                    for row in rgsw.rows for ct in row
                    for p in list(ct.mask) + [ct.body])
        for ksk in self.auto_keys.keys.values():
            total += sum(rns_poly_bytes(p) for ct in ksk.rows
                         for p in list(ct.mask) + [ct.body])
        return total

    def test_vector(self, n: int, q: int) -> RnsPoly:
        """The Algorithm-2 blind-rotate LUT over this key set's raised
        basis (``g(t) = q*t`` folded with ``N^{-1}``), built once per
        ``(n, q)`` and reused."""
        key = (n, q)
        if key not in self._test_vectors:
            from .pipeline import build_switching_test_vector

            self._test_vectors[key] = build_switching_test_vector(
                n, q, self.raised_basis)
        return self._test_vectors[key]

    @classmethod
    def generate(cls, ctx: CkksContext, sk: SecretKey,
                 sampler: Optional[Sampler] = None,
                 base_bits: int = 6,
                 error_std: float = 1.0) -> "SwitchingKeySet":
        """Generate switching keys for a CKKS context and secret.

        ``base_bits`` sizes the gadget used by both the external products
        of BlindRotate and the repacking key switches; smaller digits mean
        lower noise but more work per external product (the paper's
        ``d = 2`` corresponds to a very coarse digit over its 252-bit
        raised modulus).
        """
        sampler = sampler or Sampler()
        raised = concat_bases(ctx.full_basis, RnsBasis([ctx.special_basis.moduli[0]]))
        total_bits = raised.product.bit_length()
        # Floor division: the couple of uncovered low-order bits only add
        # +-2^(bits mod base) of rounding noise, far below the error term.
        digits = max(1, total_bits // base_bits)
        gadget = GadgetVector(q=raised.product, base_bits=base_bits, digits=digits)
        glwe_sk = GlweSecretKey(coeffs=[np.asarray(sk.coeffs, dtype=object)], n=ctx.n)
        lwe_view = LweSecretKey(coeffs=np.asarray(sk.coeffs, dtype=object))
        brk = BlindRotateKey.generate(lwe_view, glwe_sk, raised, gadget, sampler,
                                      error_std=error_std)
        auto_keys = AutomorphismKeySet.generate(
            glwe_sk, repack_exponents(ctx.n), raised, gadget, sampler,
            error_std=error_std)
        return cls(brk=brk, auto_keys=auto_keys, raised_basis=raised,
                   gadget=gadget, glwe_sk_ref=glwe_sk)


@dataclass(frozen=True)
class KeySizeAudit:
    """Section III-C size accounting for a parameter set."""

    rlwe_ciphertext_bytes: int
    lwe_ciphertext_bytes: int
    rgsw_key_bytes: int
    total_brk_bytes: int

    @classmethod
    def from_params(cls, params: TfheParams, log_q_total: int) -> "KeySizeAudit":
        """Audit with the paper's own accounting.

        * RLWE ct: ``2 * logQ * N / 8`` bytes (paper: ~0.44 MB).
        * LWE ct: ``(n_t + 1) * log q / 8`` bytes (paper: ~2.3 KB).
        * One brk entry: ``(h+1)d x (h+1)`` polynomials of ``N`` coeffs at
          ``log q`` bits (paper: ~3.52 MB for the pair).
        * Total: ``n_t`` entries (paper: ~1.76 GB).
        """
        n = params.n
        log_q = params.q.bit_length()
        rlwe = 2 * log_q_total * n // 8
        lwe = (params.n_t + 1) * log_q // 8
        rows = (params.glwe_mask + 1) * params.decomp_digits
        cols = params.glwe_mask + 1
        # The paper counts the *pair* {RGSW(s+), RGSW(s-)} as one key, and
        # its 3.52 MB figure implies full-Q (logQ = 216 bit) coefficients
        # for the key polynomials (the blind rotation accumulates in the
        # raised ring R_Qp).
        rgsw_pair = 2 * rows * cols * n * log_q_total // 8
        total = params.n_t * rgsw_pair
        return cls(rlwe_ciphertext_bytes=rlwe, lwe_ciphertext_bytes=lwe,
                   rgsw_key_bytes=rgsw_pair, total_brk_bytes=total)


def conventional_bootstrap_key_bytes(n: int = 1 << 16, log_q: int = 1728,
                                     num_keys: int = 25) -> int:
    """Key traffic of conventional CKKS bootstrapping (paper Section III-C):
    ~126 MB per switching key (at bootstrappable parameters), ~25 keys
    (24 rotation + 1 multiplication) -> ~3.2 GB per pass; the paper's
    "32 GB" figure counts repeated reads across the bootstrap pipeline."""
    per_key = 2 * 2 * log_q * n // 8 * 2  # dnum-digit key: ~4 ring elements at Q*P
    return num_keys * per_key
