"""Multi-FPGA bootstrap latency model (paper Sections V and VI-E).

Reproduces the end-to-end scheme-switching bootstrap time on a cluster:
the primary distributes LWE ciphertexts, every node BlindRotates its
share (Section IV-E batch schedule), results stream back over the 100G
CMAC links (458 kernel cycles per RLWE ciphertext) overlapped with
compute, and the primary repacks and finishes steps 4-5.

The paper's anchor (Section VI-E): fully-packed bootstrap, n = 4096 LWE
ciphertexts over eight FPGAs (512 each) takes ~1.5 ms, split as
0.0025 / 1.3303 / 0.1672 ms across steps 1&2 / 3 / 4&5.  The model's
``bootstrap_breakdown`` reproduces that split; its residual calibration
factor is fit on the step-3 anchor and reported.
"""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Dict, Optional

from ..errors import ParameterError
from ..params import HeapParams, make_heap_params
from ..switching.scheduler import make_schedule
from .baselines import HEAP_BOOTSTRAP_SPLIT_MS
from .config import ClusterConfig, EIGHT_FPGA
from .fpga import SingleFpgaModel


@dataclass
class BootstrapBreakdown:
    """Latency (seconds) of each Algorithm-2 phase on the cluster."""

    modswitch_s: float
    blind_rotate_s: float
    communication_s: float
    repack_s: float
    finish_s: float

    @property
    def step3_s(self) -> float:
        """Step 3 = BlindRotate + (non-overlapped) communication + repack."""
        return max(self.blind_rotate_s, self.communication_s) + self.repack_s

    @property
    def total_s(self) -> float:
        return self.modswitch_s + self.step3_s + self.finish_s


class ClusterBootstrapModel:
    """Scheme-switching bootstrap latency for ``n_br`` BlindRotates."""

    def __init__(self, cluster: Optional[ClusterConfig] = None,
                 params: Optional[HeapParams] = None,
                 calibrated: bool = True):
        self.cluster = cluster or EIGHT_FPGA
        self.params = params or make_heap_params()
        self.node_model = SingleFpgaModel(self.cluster.node, self.params,
                                          calibrated=calibrated)
        self.calibrated = calibrated
        self._phase_factors = self._fit_phases() if calibrated else (1.0, 1.0, 1.0)

    # -- calibration -----------------------------------------------------------------

    def _raw_breakdown(self, n_br: int, num_nodes: int) -> BootstrapBreakdown:
        hw = self.cluster.node
        n = self.params.ckks.n
        schedule = make_schedule(n_br, num_nodes)
        per_node = schedule.max_per_node

        # Steps 1 & 2: 2N scalar ops through the mod-unit array.
        modswitch = hw.cycles_to_seconds(2 * n / hw.num_mod_units +
                                         hw.modop_latency_cycles)

        # Step 3: every node BlindRotates its batch; brk streamed once.
        blind = self.node_model.blind_rotate_batch_s(per_node)

        # Communication: secondaries return one result ciphertext per
        # BlindRotate (458 kernel cycles each, Section V).  Transfers run
        # concurrently on the per-secondary CMAC links and are overlapped
        # with computation ("no FPGA is sitting idle, i.e. communication
        # between the FPGAs is not the bottleneck"); the roofline below
        # charges only the slowest link.
        from_secondaries = n_br - schedule.nodes[0].count
        secondaries = max(1, num_nodes - 1)
        per_link = -(-from_secondaries // secondaries)
        comm = hw.cycles_to_seconds(hw.cycles_per_rlwe_tx * per_link)

        # Repack on the primary: log2(n_br) automorphism+keyswitch levels.
        levels = max(1, int(math.log2(max(2, n_br))))
        repack = levels * self.node_model.latency_s("keyswitch")

        # Steps 4 & 5: one addition + scalar multiply + rescale over Qp.
        finish = (self.node_model.latency_s("add") +
                  self.node_model.latency_s("rescale"))
        return BootstrapBreakdown(modswitch_s=modswitch, blind_rotate_s=blind,
                                  communication_s=comm, repack_s=repack,
                                  finish_s=finish)

    def _fit_phases(self):
        """Per-phase factors from the paper's Section VI-E split
        (0.0025 / 1.3303 / 0.1672 ms at 4096 BlindRotates on 8 FPGAs).

        The step-3 factor is large (the paper's batched BlindRotate is far
        faster than the compute-bound estimate of its own datapath — see
        EXPERIMENTS.md); we apply it uniformly to the blind-rotate,
        communication and repack components so relative scaling with
        ``n_br`` and node count follows the op counts.
        """
        bd = self._raw_breakdown(4096, 8)
        k12 = (HEAP_BOOTSTRAP_SPLIT_MS["steps_1_2"] * 1e-3) / bd.modswitch_s
        k3 = (HEAP_BOOTSTRAP_SPLIT_MS["step_3"] * 1e-3) / bd.step3_s
        k45 = (HEAP_BOOTSTRAP_SPLIT_MS["steps_4_5"] * 1e-3) / bd.finish_s
        return (k12, k3, k45)

    # -- public API -------------------------------------------------------------------

    def bootstrap_breakdown(self, n_br: Optional[int] = None,
                            num_nodes: Optional[int] = None) -> BootstrapBreakdown:
        n_br = n_br if n_br is not None else self.params.ckks.n // 2
        num_nodes = num_nodes or self.cluster.num_nodes
        if n_br < 1:
            raise ParameterError("n_br must be positive")
        bd = self._raw_breakdown(n_br, num_nodes)
        if not self.calibrated:
            return bd
        k12, k3, k45 = self._phase_factors
        return BootstrapBreakdown(
            modswitch_s=bd.modswitch_s * k12,
            blind_rotate_s=bd.blind_rotate_s * k3,
            communication_s=bd.communication_s * k3,
            repack_s=bd.repack_s * k3,
            finish_s=bd.finish_s * k45,
        )

    def bootstrap_latency_s(self, n_br: Optional[int] = None,
                            num_nodes: Optional[int] = None) -> float:
        return self.bootstrap_breakdown(n_br, num_nodes).total_s

    def scaling_curve(self, n_br: int, max_nodes: int = 8) -> Dict[int, float]:
        """Bootstrap latency vs node count — the paper's core scaling
        argument (conventional bootstrapping cannot use extra FPGAs;
        scheme switching can)."""
        return {k: self.bootstrap_latency_s(n_br, k)
                for k in range(1, max_nodes + 1)}
