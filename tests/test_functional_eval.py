"""Tests for non-linear function evaluation via scheme switching (§III-A)."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError
from repro.math.modular import find_ntt_primes
from repro.math.sampling import Sampler
from repro.params import CkksParams
from repro.switching import SwitchingKeySet
from repro.switching.functional import (
    FunctionalEvaluator,
    relu_fn,
    sigmoid_fn,
    sign_fn,
)


def make_lut_params(n=32):
    """Small q/Delta ratio for fine phase quantisation (step = q/(2N*Delta))."""
    primes = find_ntt_primes(30, n, 5)
    return CkksParams(n=n, moduli=primes[:3], special_moduli=primes[3:5],
                      scale_bits=28)


PARAMS = make_lut_params()


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(801))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(802))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(803), base_bits=4,
                                   error_std=0.6)
    fev = FunctionalEvaluator(ctx, swk)
    return ctx, sk, ev, fev


class TestDomain:
    def test_max_input_and_step(self, stack):
        ctx, sk, ev, fev = stack
        q = ctx.full_basis.moduli[0]
        assert fev.max_abs_input() == pytest.approx(q / (4 * ctx.params.scale))
        assert fev.quantisation_step() == pytest.approx(
            q / (2 * ctx.n * ctx.params.scale))
        # The chosen parameters give sub-0.1 resolution.
        assert fev.quantisation_step() < 0.1

    def test_requires_level0(self, stack):
        ctx, sk, ev, fev = stack
        with pytest.raises(ParameterError):
            fev.evaluate(ev.encrypt_coeffs([0.1]), sign_fn)


class TestNonLinearFunctions:
    def test_sign(self, stack):
        """Discontinuous sign — impossible for the Chebyshev route, exact
        here up to quantisation around 0."""
        ctx, sk, ev, fev = stack
        rng = np.random.default_rng(0)
        z = rng.uniform(-0.9, 0.9, ctx.n)
        z[np.abs(z) < 0.2] += 0.3 * np.sign(z[np.abs(z) < 0.2] + 0.01)
        ct = ev.encrypt_coeffs(z, level=0)
        out = fev.evaluate(ct, sign_fn)
        got = ev.decrypt_coeffs_scaled(out, sk)
        assert np.allclose(got, np.sign(z), atol=0.3), (got, np.sign(z))

    def test_relu(self, stack):
        ctx, sk, ev, fev = stack
        z = np.random.default_rng(1).uniform(-0.9, 0.9, ctx.n)
        ct = ev.encrypt_coeffs(z, level=0)
        got = ev.decrypt_coeffs_scaled(fev.evaluate(ct, relu_fn), sk)
        assert np.allclose(got, np.maximum(z, 0), atol=0.3)

    def test_sigmoid(self, stack):
        ctx, sk, ev, fev = stack
        z = np.random.default_rng(2).uniform(-0.9, 0.9, ctx.n)
        ct = ev.encrypt_coeffs(z, level=0)
        got = ev.decrypt_coeffs_scaled(fev.evaluate(ct, sigmoid_fn), sk)
        want = 1.0 / (1.0 + np.exp(-z))
        assert np.allclose(got, want, atol=0.3)

    def test_output_is_top_level(self, stack):
        """LUT evaluation doubles as a bootstrap: output at the top level,
        no multiplicative depth consumed."""
        ctx, sk, ev, fev = stack
        ct = ev.encrypt_coeffs([0.5], level=0)
        out = fev.evaluate(ct, relu_fn)
        assert out.level == ctx.max_level

    def test_coefficient_packing_roundtrip(self, stack):
        ctx, sk, ev, fev = stack
        z = np.random.default_rng(3).uniform(-1, 1, ctx.n)
        got = ev.decrypt_coeffs_scaled(ev.encrypt_coeffs(z), sk)
        assert np.allclose(got, z, atol=1e-4)


class TestHelpers:
    def test_sign_fn(self):
        assert sign_fn(2.0) == 1.0 and sign_fn(-2.0) == -1.0 and sign_fn(0) == 0

    def test_relu_fn(self):
        assert relu_fn(3.0) == 3.0 and relu_fn(-3.0) == 0.0

    def test_sigmoid_fn(self):
        assert sigmoid_fn(0.0) == pytest.approx(0.5)
