"""HL1xx: concurrency and process-boundary rules.

These rules target the bug classes the repo has actually hit (or is one
refactor away from hitting) now that bootstrapping is served through
three concurrency layers at once — an asyncio coalescing service, a
``multiprocessing`` fan-out pool with shared-memory key manifests, and
thread-local numpy workspaces:

* **HL101** — mutable module/class-level state (dicts, lists, sets,
  ndarrays) written by a function reachable from a threaded or async
  entry point, without a lock around the write, a ``threading.local``
  carrier, or an explicit ``# heaplint: threadsafe <reason>`` waiver.
  This is the PR-7 WRITEBACKIFCOPY bug class: two tenants racing through
  one process-wide engine cache.
* **HL102** — asyncio hygiene: blocking calls (``time.sleep``, pipe
  ``.recv``, ``multiprocessing.connection.wait``, direct engine
  ``fanout``) inside ``async def``; coroutine calls whose result is
  never awaited; a *synchronous* ``threading.Lock`` held across an
  ``await``.
* **HL103** — process-boundary payloads: values flowing into
  ``multiprocessing.Process`` dispatch, ``publish_shared_arrays``, or a
  pipe/connection ``.send`` must be picklable — lambdas, closures
  (nested functions), open file handles, and object-dtype arrays are
  flagged.
* **HL104** — numpy aliasing: in-place writes into views obtained from
  ``attach_shared_arrays`` (cross-worker shared memory) unless the view
  was first frozen with ``.setflags(write=False)``.

HL101/HL102 are :class:`~repro.lint.core.ProjectRule` subclasses — they
consume the repo-wide call graph from :mod:`repro.lint.dataflow`.
HL103/HL104 are local dataflow over one function body and stay per-file.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import FileContext, Finding, ProjectRule, Rule
from .dataflow import FunctionInfo, ProjectIndex, call_name, dotted_name

#: Method calls that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "add", "update", "clear", "pop", "popitem", "setdefault",
    "extend", "remove", "discard", "insert", "appendleft", "fill",
    "sort", "resize", "put", "itemset",
})


def _unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""


def _is_lockish(expr: ast.expr) -> bool:
    """Whether a ``with`` context expression looks like a mutex."""
    text = _unparse(expr).lower()
    return "lock" in text or "mutex" in text or "rlock" in text


# ---------------------------------------------------------------------------
# HL101: shared mutable state written on a concurrent path without a lock
# ---------------------------------------------------------------------------


class SharedMutableStateRule(ProjectRule):
    code = "HL101"
    name = "shared-mutable-state"
    description = (
        "Module/class-level mutable state written by a function reachable "
        "from a threaded or async entry point must be written under a lock, "
        "kept in threading.local, or carry a '# heaplint: threadsafe' waiver."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, str]] = set()
        for qual, info in index.functions.items():
            reach = index.concurrent_reach(qual)
            if reach is None:
                continue
            module_globals = {
                g.name: g for g in index.mutable_globals.get(info.module, [])
            }
            if not module_globals:
                continue
            # Receiver spellings that denote each shared binding from
            # inside this function.
            spellings: Dict[str, str] = {}
            for gname in module_globals:
                if "." in gname:
                    cls, attr = gname.split(".", 1)
                    spellings[f"{cls}.{attr}"] = gname
                    if info.cls == cls:
                        spellings[f"self.{attr}"] = gname
                        spellings[f"cls.{attr}"] = gname
                else:
                    spellings[gname] = gname
            rebindable = {
                g for g in module_globals if "." not in g
            } & self._global_decls(info.node)
            for node, gname in self._writes(info.node, spellings, rebindable):
                glob = module_globals[gname]
                line = getattr(node, "lineno", 1)
                key = (info.ctx.path, line, gname)
                if key in seen:
                    continue
                seen.add(key)
                if info.ctx.is_threadsafe_waived(line):
                    continue
                if info.ctx.is_threadsafe_waived(glob.line):
                    continue
                kind, chain = reach
                yield info.ctx.finding(
                    self.code, node,
                    f"unlocked write to shared {glob.kind} '{gname}' on a "
                    f"{kind} path ({chain}); guard with a lock, use "
                    f"threading.local, or waive with "
                    f"'# heaplint: threadsafe <reason>'",
                )

    @staticmethod
    def _global_decls(func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Global):
                names.update(node.names)
        return names

    def _writes(self, func: ast.AST, spellings: Dict[str, str],
                rebindable: Set[str]) -> Iterator[Tuple[ast.AST, str]]:
        """Yield ``(node, shared-name)`` for unguarded writes in ``func``."""
        yield from self._scan(list(ast.iter_child_nodes(func)), spellings,
                              rebindable, locked=False)

    def _scan(self, nodes: Sequence[ast.AST], spellings: Dict[str, str],
              rebindable: Set[str], locked: bool,
              ) -> Iterator[Tuple[ast.AST, str]]:
        for node in nodes:
            if isinstance(node, ast.With):
                inner = locked or any(
                    _is_lockish(item.context_expr) for item in node.items)
                yield from self._scan(node.body, spellings, rebindable, inner)
                continue
            if not locked:
                yield from self._match_write(node, spellings, rebindable)
            yield from self._scan(list(ast.iter_child_nodes(node)),
                                  spellings, rebindable, locked)

    def _match_write(self, node: ast.AST, spellings: Dict[str, str],
                     rebindable: Set[str],
                     ) -> Iterator[Tuple[ast.AST, str]]:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, ast.Subscript):
                    base = dotted_name(target.value)
                    if base in spellings:
                        yield node, spellings[base]
                elif isinstance(target, ast.Name) and \
                        target.id in rebindable:
                    yield node, target.id
        elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute):
            if node.func.attr in MUTATOR_METHODS:
                base = dotted_name(node.func.value)
                if base in spellings:
                    yield node, spellings[base]


# ---------------------------------------------------------------------------
# HL102: asyncio hygiene
# ---------------------------------------------------------------------------

#: asyncio scheduling helpers whose bare-call result is intentionally not
#: awaited at the call site.
_SCHEDULERS = frozenset({"create_task", "ensure_future", "gather", "run",
                         "run_until_complete"})


class AsyncHygieneRule(ProjectRule):
    code = "HL102"
    name = "async-hygiene"
    description = (
        "No blocking calls inside 'async def' (time.sleep, pipe .recv, "
        "multiprocessing connection.wait, direct engine fanout), no "
        "coroutine results dropped without await, and no synchronous lock "
        "held across an await."
    )

    def check_project(self, index: ProjectIndex) -> Iterator[Finding]:
        seen: Set[Tuple[str, int, str]] = set()
        for info in index.functions.values():
            for finding in self._check_function(info, index):
                key = (finding.path, finding.line, finding.message)
                if key not in seen:
                    seen.add(key)
                    yield finding

    def _check_function(self, info: FunctionInfo,
                        index: ProjectIndex) -> Iterator[Finding]:
        if info.is_async:
            yield from self._blocking_calls(info)
            yield from self._lock_across_await(info)
        yield from self._dropped_coroutines(info, index)

    def _own_nodes(self, func: ast.AST) -> Iterator[ast.AST]:
        """Walk ``func`` without descending into nested def/lambda bodies
        (code in a nested sync def does not run on the event loop just
        because its enclosing function is a coroutine)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _blocking_calls(self, info: FunctionInfo) -> Iterator[Finding]:
        for node in self._own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            dotted = dotted_name(node.func)
            message: Optional[str] = None
            if dotted == "time.sleep":
                message = ("time.sleep blocks the event loop; use "
                           "'await asyncio.sleep(...)'")
            elif name == "recv" and isinstance(node.func, ast.Attribute):
                message = ("pipe/connection .recv() blocks the event loop; "
                           "move it to a worker via asyncio.to_thread")
            elif name == "fanout":
                message = ("engine fanout() is CPU/IPC-bound and blocks "
                           "the event loop; dispatch it via "
                           "asyncio.to_thread or an executor")
            elif name == "wait" and dotted.endswith("connection.wait"):
                message = ("multiprocessing connection.wait blocks the "
                           "event loop; poll from a worker thread")
            if message is not None:
                yield info.ctx.finding(
                    self.code, node,
                    f"blocking call inside 'async def {info.name}': "
                    f"{message}")

    def _lock_across_await(self, info: FunctionInfo) -> Iterator[Finding]:
        for node in self._own_nodes(info.node):
            if not isinstance(node, ast.With):
                continue
            if not any(_is_lockish(item.context_expr) for item in node.items):
                continue
            for inner in node.body:
                for sub in ast.walk(inner):
                    if isinstance(sub, ast.Await):
                        yield info.ctx.finding(
                            self.code, node,
                            f"synchronous lock held across 'await' in "
                            f"'async def {info.name}'; other tasks on this "
                            f"loop will deadlock behind it — use "
                            f"asyncio.Lock with 'async with'")
                        break
                else:
                    continue
                break

    def _dropped_coroutines(self, info: FunctionInfo,
                            index: ProjectIndex) -> Iterator[Finding]:
        for node in self._own_nodes(info.node):
            if not isinstance(node, ast.Expr) or not isinstance(
                    node.value, ast.Call):
                continue
            call = node.value
            name = call_name(call)
            if name in _SCHEDULERS:
                continue
            # Only plain names and self/cls method calls resolve precisely
            # enough to assert "this is a coroutine": `obj.start()` on an
            # arbitrary receiver must not match `async def start` elsewhere
            # (e.g. Process.start vs a service's async start).
            if isinstance(call.func, ast.Attribute):
                receiver = dotted_name(call.func.value)
                if receiver not in ("self", "cls") or info.cls is None:
                    continue
                own = f"{info.module}.{info.cls}.{name}"
                own_info = index.functions.get(own)
                is_coro = own_info is not None and own_info.is_async
            else:
                is_coro = index.is_async_function(name)
            if is_coro:
                yield info.ctx.finding(
                    self.code, node,
                    f"coroutine '{name}(...)' is never awaited — the call "
                    f"builds a coroutine object and drops it; await it or "
                    f"schedule it with asyncio.create_task")


# ---------------------------------------------------------------------------
# HL103: process-boundary payloads must be picklable
# ---------------------------------------------------------------------------


class ProcessPayloadRule(Rule):
    code = "HL103"
    name = "process-payload"
    description = (
        "Values crossing a process boundary (multiprocessing dispatch, "
        "publish_shared_arrays, pipe/connection .send) must be picklable: "
        "no lambdas, closures, open file handles, or object-dtype arrays."
    )

    #: Receiver-name fragments that identify a pipe/connection/socket.
    _WIRE_RECEIVERS = ("conn", "pipe", "sock", "chan")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(ctx, func)

    def _check_function(self, ctx: FileContext,
                        func: ast.AST) -> Iterator[Finding]:
        tainted = self._tainted_names(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in ("Process", "Timer"):
                yield from self._check_process_ctor(ctx, node, tainted)
            elif name == "publish_shared_arrays":
                for arg in node.args:
                    yield from self._check_payload(
                        ctx, arg, tainted, "publish_shared_arrays payload")
            elif name == "send" and isinstance(node.func, ast.Attribute):
                receiver = dotted_name(node.func.value).lower()
                if any(frag in receiver for frag in self._WIRE_RECEIVERS):
                    for arg in node.args:
                        yield from self._check_payload(
                            ctx, arg, tainted,
                            f"payload sent over '{receiver}'")
            elif name in ("apply_async", "starmap"):
                if node.args:
                    yield from self._check_payload(
                        ctx, node.args[0], tainted,
                        f"worker function passed to {name}")
            elif name == "map" and isinstance(node.func, ast.Attribute):
                receiver = dotted_name(node.func.value).lower()
                if "pool" in receiver and node.args:
                    yield from self._check_payload(
                        ctx, node.args[0], tainted,
                        "worker function passed to pool.map")

    def _check_process_ctor(self, ctx: FileContext, node: ast.Call,
                            tainted: Dict[str, str]) -> Iterator[Finding]:
        for kw in node.keywords:
            if kw.arg == "target":
                yield from self._check_payload(
                    ctx, kw.value, tainted, "Process target")
            elif kw.arg == "args" and isinstance(
                    kw.value, (ast.Tuple, ast.List)):
                for elt in kw.value.elts:
                    yield from self._check_payload(
                        ctx, elt, tainted, "Process args element")

    def _check_payload(self, ctx: FileContext, expr: ast.expr,
                       tainted: Dict[str, str],
                       where: str) -> Iterator[Finding]:
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for elt in expr.elts:
                yield from self._check_payload(ctx, elt, tainted, where)
            return
        if isinstance(expr, ast.Dict):
            for value in expr.values:
                if value is not None:
                    yield from self._check_payload(ctx, value, tainted, where)
            return
        if isinstance(expr, ast.Lambda):
            yield ctx.finding(
                self.code, expr,
                f"{where} is a lambda — lambdas cannot be pickled across a "
                f"process boundary (spawn start method); use a module-level "
                f"function")
        elif isinstance(expr, ast.Call):
            if call_name(expr) == "open":
                yield ctx.finding(
                    self.code, expr,
                    f"{where} is an open file handle — file objects cannot "
                    f"cross a process boundary; send the path instead")
            elif self._is_object_dtype_call(expr):
                yield ctx.finding(
                    self.code, expr,
                    f"{where} is an object-dtype array — element-wise "
                    f"pickling is slow and shape-lossy; convert to a fixed-"
                    f"width dtype or CRC-framed bytes first")
        elif isinstance(expr, ast.Name) and expr.id in tainted:
            yield ctx.finding(
                self.code, expr,
                f"{where} '{expr.id}' is {tainted[expr.id]} — it cannot "
                f"cross a process boundary; use a module-level function / "
                f"picklable value")

    def _tainted_names(self, func: ast.AST) -> Dict[str, str]:
        """Local names bound to unpicklable values, with a description."""
        tainted: Dict[str, str] = {}
        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not func:
                tainted[node.name] = (
                    "a nested function (closure)")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if isinstance(node.value, ast.Lambda):
                        tainted[target.id] = "a lambda"
                    elif isinstance(node.value, ast.Call):
                        if call_name(node.value) == "open":
                            tainted[target.id] = "an open file handle"
                        elif self._is_object_dtype_call(node.value):
                            tainted[target.id] = "an object-dtype array"
        return tainted

    @staticmethod
    def _is_object_dtype_call(node: ast.Call) -> bool:
        for kw in node.keywords:
            if kw.arg != "dtype":
                continue
            if isinstance(kw.value, ast.Name) and kw.value.id == "object":
                return True
            if dotted_name(kw.value) in ("np.object_", "numpy.object_"):
                return True
        return False


# ---------------------------------------------------------------------------
# HL104: in-place writes into cross-worker shared-memory views
# ---------------------------------------------------------------------------


class SharedArrayAliasingRule(Rule):
    code = "HL104"
    name = "shared-array-aliasing"
    description = (
        "Views obtained from attach_shared_arrays alias memory owned by "
        "another process; in-place writes corrupt every attached worker. "
        "Freeze with .setflags(write=False) or copy before writing."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                tainted: Set[str] = set()
                yield from self._scan(ctx, list(func.body), tainted)

    def _scan(self, ctx: FileContext, stmts: Sequence[ast.stmt],
              tainted: Set[str]) -> Iterator[Finding]:
        """Process statements in order so a freeze discharges later writes."""
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                yield from self._check_write_targets(ctx, stmt.targets,
                                                     stmt, tainted)
                self._propagate(stmt, tainted)
            elif isinstance(stmt, ast.AugAssign):
                yield from self._check_write_targets(ctx, [stmt.target],
                                                     stmt, tainted)
            elif isinstance(stmt, ast.Expr):
                yield from self._check_call(ctx, stmt.value, tainted)
            elif isinstance(stmt, ast.For):
                if isinstance(stmt.target, ast.Name) and \
                        self._expr_tainted(stmt.iter, tainted):
                    tainted.add(stmt.target.id)
                yield from self._scan(ctx, stmt.body, tainted)
                yield from self._scan(ctx, stmt.orelse, tainted)
            elif isinstance(stmt, (ast.If, ast.While)):
                yield from self._scan(ctx, stmt.body, tainted)
                yield from self._scan(ctx, stmt.orelse, tainted)
            elif isinstance(stmt, ast.With):
                yield from self._scan(ctx, stmt.body, tainted)
            elif isinstance(stmt, ast.Try):
                yield from self._scan(ctx, stmt.body, tainted)
                for handler in stmt.handlers:
                    yield from self._scan(ctx, handler.body, tainted)
                yield from self._scan(ctx, stmt.orelse, tainted)
                yield from self._scan(ctx, stmt.finalbody, tainted)

    # -- taint bookkeeping ---------------------------------------------------

    def _propagate(self, stmt: ast.Assign, tainted: Set[str]) -> None:
        source = self._expr_tainted(stmt.value, tainted)
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                if source:
                    tainted.add(target.id)
                else:
                    tainted.discard(target.id)
            elif isinstance(target, ast.Tuple) and source:
                for elt in target.elts:
                    if isinstance(elt, ast.Name):
                        tainted.add(elt.id)

    def _expr_tainted(self, expr: ast.expr, tainted: Set[str]) -> bool:
        if isinstance(expr, ast.Call):
            if call_name(expr) == "attach_shared_arrays":
                return True
            return False
        if isinstance(expr, ast.Name):
            return expr.id in tainted
        if isinstance(expr, ast.Subscript):
            return self._expr_tainted(expr.value, tainted)
        if isinstance(expr, ast.Starred):
            return self._expr_tainted(expr.value, tainted)
        return False

    # -- write detection -----------------------------------------------------

    def _check_write_targets(self, ctx: FileContext,
                             targets: Sequence[ast.expr], stmt: ast.stmt,
                             tainted: Set[str]) -> Iterator[Finding]:
        for target in targets:
            base: Optional[ast.expr] = None
            if isinstance(target, ast.Subscript):
                base = target.value
            elif isinstance(target, ast.Name) and isinstance(
                    stmt, ast.AugAssign):
                base = target
            if base is not None and self._expr_tainted(base, tainted):
                yield ctx.finding(
                    self.code, stmt,
                    f"in-place write into shared-memory view "
                    f"'{_unparse(base)}' from attach_shared_arrays — this "
                    f"aliases another process's key material; copy first "
                    f"or freeze the view with .setflags(write=False)")

    def _check_call(self, ctx: FileContext, expr: ast.expr,
                    tainted: Set[str]) -> Iterator[Finding]:
        if not isinstance(expr, ast.Call):
            return
        name = call_name(expr)
        # Freeze discharges the taint for that name.
        if name == "setflags" and isinstance(expr.func, ast.Attribute):
            if self._freezes(expr):
                base = expr.func.value
                if isinstance(base, ast.Name):
                    tainted.discard(base.id)
            return
        if name == "copyto" and expr.args and \
                self._expr_tainted(expr.args[0], tainted):
            yield ctx.finding(
                self.code, expr,
                "np.copyto into a shared-memory view from "
                "attach_shared_arrays overwrites another process's key "
                "material")
            return
        if name == "fill" and isinstance(expr.func, ast.Attribute) and \
                self._expr_tainted(expr.func.value, tainted):
            yield ctx.finding(
                self.code, expr,
                ".fill() on a shared-memory view from attach_shared_arrays "
                "overwrites another process's key material")
            return
        for kw in expr.keywords:
            if kw.arg == "out" and self._expr_tainted(kw.value, tainted):
                yield ctx.finding(
                    self.code, expr,
                    "out= targets a shared-memory view from "
                    "attach_shared_arrays; the kernel would write into "
                    "another process's key material")

    @staticmethod
    def _freezes(call: ast.Call) -> bool:
        for kw in call.keywords:
            if kw.arg == "write" and isinstance(kw.value, ast.Constant) \
                    and kw.value.value is False:
                return True
        if call.args and isinstance(call.args[0], ast.Constant) and \
                call.args[0].value is False:
            return True
        return False
