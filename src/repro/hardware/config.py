"""Hardware configuration of the HEAP accelerator (paper Sections IV-V).

Every number here is taken from the paper's description of the Alveo
U280 mapping: 512 modular arithmetic units at 7 cycles per scalar op,
512 automorph lanes covering 16 elements each, 32 AXI ports into two
HBM2 stacks (460 GB/s), a 100 Gb/s CMAC link needing 458 kernel cycles
per RLWE ciphertext, 300 MHz kernel / 450 MHz memory clocks, and the
URAM/BRAM geometry of Figures 2-3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ParameterError


@dataclass(frozen=True)
class HeapHwConfig:
    """Static description of one HEAP FPGA instance."""

    # Clocks (Section IV-B / VI).
    kernel_freq_hz: float = 300e6
    mem_freq_hz: float = 450e6
    cmac_freq_hz: float = 322e6

    # Functional units (Section IV-A).
    num_mod_units: int = 512
    modop_latency_cycles: int = 7
    num_automorph_units: int = 512
    automorph_elems_per_unit: int = 16

    # Main memory (Section V).
    hbm_bandwidth_bytes_per_s: float = 460e9
    hbm_capacity_bytes: int = 8 * 2**30
    axi_ports: int = 32
    axi_width_bits: int = 256

    # Network (Section V).
    cmac_gbps: float = 100.0
    cycles_per_rlwe_tx: int = 458

    # On-chip memory (Section IV-C).
    uram_blocks_used: int = 960
    uram_blocks_available: int = 962
    uram_words: int = 4096
    uram_word_bits: int = 72
    bram_blocks_used: int = 3840
    bram_blocks_available: int = 4032
    bram_words: int = 1024
    bram_word_bits: int = 18  # BRAM18 primitive: each address holds half a coefficient

    # Register files and FIFOs (Section IV-B).
    register_file_bytes: int = 1 * 2**20
    rd_fifo_depth: int = 512
    wr_fifo_depth: int = 128
    num_fifos: int = 32

    def __post_init__(self):
        if self.num_mod_units <= 0 or self.kernel_freq_hz <= 0:
            raise ParameterError("invalid hardware configuration")

    # -- derived quantities ---------------------------------------------------------

    @property
    def uram_bytes(self) -> int:
        return self.uram_blocks_used * self.uram_words * self.uram_word_bits // 8

    @property
    def bram_bytes(self) -> int:
        return self.bram_blocks_used * self.bram_words * self.bram_word_bits // 8

    @property
    def onchip_bytes(self) -> int:
        """Total on-chip storage; the paper quotes ~43 MB per FPGA."""
        return self.uram_bytes + self.bram_bytes + self.register_file_bytes

    @property
    def hbm_bytes_per_cycle(self) -> float:
        """HBM throughput normalised to kernel cycles."""
        return self.hbm_bandwidth_bytes_per_s / self.kernel_freq_hz

    @property
    def cmac_bytes_per_cycle(self) -> float:
        return (self.cmac_gbps * 1e9 / 8.0) / self.kernel_freq_hz

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.kernel_freq_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.kernel_freq_hz


@dataclass(frozen=True)
class ClusterConfig:
    """A multi-FPGA HEAP deployment (Section V: one primary + secondaries)."""

    node: HeapHwConfig = field(default_factory=HeapHwConfig)
    num_nodes: int = 8

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ParameterError("cluster needs at least one node")


#: The two deployments evaluated in the paper.
SINGLE_FPGA = ClusterConfig(num_nodes=1)
EIGHT_FPGA = ClusterConfig(num_nodes=8)
