#!/usr/bin/env python3
"""Algorithm 2 in slow motion, plus the multi-node parallel schedule.

Walks through the scheme-switching bootstrap step by step, showing the
intermediate quantities the paper's Section III-B derives, then re-runs
the BlindRotate batch split over simulated compute nodes (the paper's
eight-FPGA deployment) and verifies the partitioned execution is
bit-identical to the single-node run — the property that makes the
approach "agnostic of the hardware".
"""

import numpy as np

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import (
    SchemeSwitchBootstrapper,
    SwitchingKeySet,
    expected_k_prime_std,
    make_schedule,
)
from repro.tfhe.blind_rotate import blind_rotate_batch
from repro.tfhe.glwe import glwe_decrypt_coeffs


def main() -> None:
    params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(4))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(5))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(6), base_bits=4,
                                   error_std=0.8)
    boot = SchemeSwitchBootstrapper(ctx, swk)

    n = ctx.n
    two_n = 2 * n
    values = np.cos(np.linspace(0, 3, ctx.slots))
    ct = ev.encrypt(values, level=0)
    q = ct.basis.moduli[0]
    print(f"level-0 ciphertext over q = {q} ({q.bit_length()} bits), N = {n}")

    # -- Steps 1 & 2: ModulusSwitch ------------------------------------------------
    c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
    c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
    c0p, c1p = (two_n * c0) % q, (two_n * c1) % q
    c0m, c1m = (two_n * c0 - c0p) // q, (two_n * c1 - c1p) // q
    print(f"step 1-2: ct' over Z_q, ct_ms over Z_2N (components in [0, {two_n}))")
    print(f"  predicted wrap-count std ~ {expected_k_prime_std(n):.2f} "
          f"(aliasing bound N/2 = {n // 2})")

    # -- Step 3a: Extract ------------------------------------------------------------
    lwes = [boot._extract_mod_2n(c1m, c0m, i, two_n) for i in range(n)]
    print(f"step 3a: extracted {len(lwes)} independent LWE ciphertexts (Eq. 2)")

    # -- Step 3b: BlindRotate, single node vs partitioned -----------------------------
    single = blind_rotate_batch(boot._test_vector, lwes, swk.brk)
    for nodes in (2, 4):
        schedule = make_schedule(len(lwes), nodes)
        multi = []
        for part in schedule.slices(lwes):
            multi.extend(blind_rotate_batch(boot._test_vector, part, swk.brk))
        same = all(
            a.body.to_coeff().limbs[0].tolist() == b.body.to_coeff().limbs[0].tolist()
            for a, b in zip(single, multi))
        print(f"step 3b: {nodes}-node schedule "
              f"({[a.count for a in schedule.nodes]} BlindRotates/node) "
              f"matches single node: {same}")

    # The blind-rotate outputs encrypt N^{-1} * q * (J - K') in their
    # constant term (the N^{-1} cancels the repack factor); undo both
    # factors to display the recovered wrap counts J - K'.
    big_qp = swk.raised_basis.product
    wraps = []
    for acc in single[:6]:
        c = int(glwe_decrypt_coeffs(acc, swk.glwe_sk_ref)[0]) * n % big_qp
        c = c - big_qp if c > big_qp // 2 else c
        wraps.append(round(c / q))
    print(f"step 3b: recovered per-coefficient wrap counts J - K': {wraps}")

    # -- Full pipeline -----------------------------------------------------------------
    refreshed = boot.bootstrap(ct)
    got = ev.decrypt(refreshed, sk).real
    print(f"steps 3c-5: repacked, added ct', rescaled by p")
    print(f"refreshed to level {refreshed.level}; "
          f"max error {np.max(np.abs(got - values)):.4f}")


if __name__ == "__main__":
    main()
