"""FPGA resource accounting — regenerates Table II.

The paper reports post-synthesis utilisation on the Alveo U280.  We model
it from the unit inventory: per-unit costs are the paper's *implied*
costs (Table II totals divided by the stated unit counts and component
shares — e.g. "the functional units utilize 42% of the total LUTs"), so
that recomputing utilisation from the configuration reproduces Table II,
and ablations that vary unit counts move the totals faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import HeapHwConfig

#: Alveo U280 totals (Table II "Available" column).
U280_AVAILABLE = {
    "luts": 1304_000,
    "ffs": 2607_000,
    "dsps": 9024,
    "bram": 4032,
    "uram": 962,
}

#: Table II "Utilized" column — the anchor the per-unit costs are fit to.
PAPER_UTILIZED = {
    "luts": 1012_000,
    "ffs": 1936_000,
    "dsps": 6144,
    "bram": 3840,
    "uram": 960,
}

#: Paper Section VI-A shares: functional units take 42% of utilised LUTs;
#: all DSPs belong to the modular arithmetic / MAC units.
FUNCTIONAL_UNIT_LUT_SHARE = 0.42


@dataclass(frozen=True)
class ResourceReport:
    """Utilisation for one resource class."""

    available: int
    utilized: int

    @property
    def percent(self) -> float:
        return 100.0 * self.utilized / self.available


class ResourceModel:
    """Recompute Table II from a hardware configuration."""

    def __init__(self, hw: HeapHwConfig | None = None):
        self.hw = hw or HeapHwConfig()
        base = HeapHwConfig()
        # Implied per-unit costs from the paper's totals at the baseline
        # configuration (512 units, 32 FIFOs, 1 MB of RFs).
        self._lut_per_mod_unit = (
            PAPER_UTILIZED["luts"] * FUNCTIONAL_UNIT_LUT_SHARE / base.num_mod_units)
        self._lut_fixed = PAPER_UTILIZED["luts"] * (1 - FUNCTIONAL_UNIT_LUT_SHARE)
        self._ff_per_mod_unit = (
            PAPER_UTILIZED["ffs"] * FUNCTIONAL_UNIT_LUT_SHARE / base.num_mod_units)
        self._ff_fixed = PAPER_UTILIZED["ffs"] * (1 - FUNCTIONAL_UNIT_LUT_SHARE)
        self._dsp_per_mod_unit = PAPER_UTILIZED["dsps"] / base.num_mod_units

    def report(self) -> Dict[str, ResourceReport]:
        hw = self.hw
        luts = int(self._lut_fixed + self._lut_per_mod_unit * hw.num_mod_units)
        ffs = int(self._ff_fixed + self._ff_per_mod_unit * hw.num_mod_units)
        dsps = int(self._dsp_per_mod_unit * hw.num_mod_units)
        return {
            "luts": ResourceReport(U280_AVAILABLE["luts"], luts),
            "ffs": ResourceReport(U280_AVAILABLE["ffs"], ffs),
            "dsps": ResourceReport(U280_AVAILABLE["dsps"], dsps),
            "bram": ResourceReport(U280_AVAILABLE["bram"], hw.bram_blocks_used),
            "uram": ResourceReport(U280_AVAILABLE["uram"], hw.uram_blocks_used),
        }

    def onchip_rlwe_capacity(self, params) -> Dict[str, int]:
        """How many RLWE ciphertexts fit on chip (Section IV-C: 80 in
        URAM, 20 in BRAM for the HEAP parameter set)."""
        hw = self.hw
        limbs = params.max_limbs
        # URAM: 12 blocks store both ring elements of one ciphertext
        # (2 coefficients of 36 bits per 72-bit word).
        blocks_per_ct_uram = 2 * limbs * params.n // (2 * hw.uram_words)
        # BRAM: 1024x18 primitives, two blocks pair up to hold a 36-bit
        # coefficient -> 4*L*N/1024 blocks per ciphertext (paper: 192).
        blocks_per_ct_bram = 4 * limbs * params.n // hw.bram_words
        return {
            "uram_blocks_per_ct": blocks_per_ct_uram,
            "uram_ct_capacity": hw.uram_blocks_used // blocks_per_ct_uram,
            "bram_blocks_per_ct": blocks_per_ct_bram,
            "bram_ct_capacity": hw.bram_blocks_used // blocks_per_ct_bram,
        }
