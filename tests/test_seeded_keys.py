"""Seeded key streaming: expansion bit-identity, streaming residency,
demote/re-expand round-trips, and the key-cache byte accounting.

The load-bearing property is *bit-identity*: a key expanded at runtime
from ``seed + b`` must be indistinguishable — limb for limb — from the
key produced at keygen, for every key type, level count and dnum.
Anything less and the seeded path silently computes a different
bootstrap.  Hypothesis drives the seeds and shape parameters; the
fixed-size comparisons stay exact (``tolist()`` equality, never
``allclose``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksContext, CkksKeyGenerator
from repro.ckks.keys import expand_ckks_switch_key
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis
from repro.math.sampling import Sampler, derive_seed, mask_stream
from repro.params import make_toy_params
from repro.service.key_cache import KeyCacheEntry, LruKeyCache
from repro.switching.keys import (
    StreamingSwitchingKeys,
    SwitchingKeySet,
    expand_switching_keys,
)
from repro.tfhe.glwe import GlweSecretKey
from repro.tfhe.keyswitch import (
    AutomorphismKeySet,
    GlweKeySwitchKey,
    expand_glwe_keyswitch_key,
)
from repro.tfhe.lwe import LweKeySwitchKey, LweSecretKey, expand_lwe_keyswitch_key
from repro.tfhe.rgsw import expand_rgsw, rgsw_bodies, rgsw_encrypt_seeded

N = 32
Q = find_ntt_primes(28, N, 1)[0]
BASIS = RnsBasis([Q])

seeds = st.integers(min_value=0, max_value=2**32 - 1)


def poly_eq(p, q):
    if p.domain != q.domain:
        q = q.to_eval() if p.domain == "eval" else q.to_coeff()
    return all(a.tolist() == b.tolist() for a, b in zip(p.limbs, q.limbs))


# -- derive_seed -------------------------------------------------------------


class TestDeriveSeed:
    @given(master=seeds, i=st.integers(0, 1 << 20))
    @settings(max_examples=25, deadline=None)
    def test_deterministic_and_path_separated(self, master, i):
        assert derive_seed(master, "brk", i, "+") == \
            derive_seed(master, "brk", i, "+")
        assert derive_seed(master, "brk", i, "+") != \
            derive_seed(master, "brk", i, "-")
        assert derive_seed(master, "brk", i, "+") != \
            derive_seed(master, "auto", i, "+")

    def test_fits_in_int64(self):
        for path in [("brk", 0, "+"), ("auto", 3), ("x",)]:
            s = derive_seed(12345, *path)
            assert 0 <= s < 2**63


# -- primitive expansion bit-identity ----------------------------------------


class TestLweKeySwitchExpansion:
    @given(seed=seeds, base_bits=st.sampled_from([4, 7]))
    @settings(max_examples=10, deadline=None)
    def test_expansion_matches_keygen(self, seed, base_bits):
        gadget = GadgetVector(q=Q, base_bits=base_bits,
                              digits=-(-Q.bit_length() // base_bits))
        sk_in = LweSecretKey.generate(24, Sampler(seed + 1))
        sk_out = LweSecretKey.generate(16, Sampler(seed + 2))
        ksk = LweKeySwitchKey.generate_seeded(
            sk_in, sk_out, Q, gadget, mask_stream(seed), Sampler(seed + 3))
        back = expand_lwe_keyswitch_key(mask_stream(seed), ksk.bodies(),
                                        sk_out.dim, Q, gadget)
        for row, row2 in zip(ksk.rows, back.rows):
            for ct, ct2 in zip(row, row2):
                assert ct.a.tolist() == ct2.a.tolist()
                assert int(ct.b) == int(ct2.b)


class TestGlweKeySwitchExpansion:
    @given(seed=seeds, h=st.sampled_from([1, 2]))
    @settings(max_examples=10, deadline=None)
    def test_expansion_matches_keygen(self, seed, h):
        gadget = GadgetVector(q=Q, base_bits=7, digits=4)
        sk = GlweSecretKey.generate(N, h, Sampler(seed + 1))
        payload = np.asarray(
            [int(v) for v in np.random.default_rng(seed).integers(0, Q, N)],
            dtype=object)
        ksk = GlweKeySwitchKey.generate_seeded(
            payload, sk, BASIS, gadget, mask_stream(seed), Sampler(seed + 2))
        back = expand_glwe_keyswitch_key(mask_stream(seed), ksk.bodies(),
                                         h, BASIS, gadget)
        for row, row2 in zip(ksk.rows, back.rows):
            assert poly_eq(row.body, row2.body)
            for m1, m2 in zip(row.mask, row2.mask):
                assert poly_eq(m1, m2)


class TestRgswExpansion:
    @given(seed=seeds, m=st.sampled_from([-1, 0, 1]), h=st.sampled_from([1, 2]))
    @settings(max_examples=10, deadline=None)
    def test_expansion_matches_keygen(self, seed, m, h):
        gadget = GadgetVector(q=Q, base_bits=7, digits=4)
        sk = GlweSecretKey.generate(N, h, Sampler(seed + 1))
        ct = rgsw_encrypt_seeded(m, sk, BASIS, gadget, mask_stream(seed),
                                 Sampler(seed + 2))
        back = expand_rgsw(mask_stream(seed), rgsw_bodies(ct), BASIS,
                           gadget, h)
        for comp, comp2 in zip(ct.rows, back.rows):
            for row, row2 in zip(comp, comp2):
                assert poly_eq(row.body, row2.body)
                for m1, m2 in zip(row.mask, row2.mask):
                    assert poly_eq(m1, m2)


class TestAutomorphismSetExpansion:
    @given(key_seed=seeds)
    @settings(max_examples=5, deadline=None)
    def test_per_exponent_streams_are_independent(self, key_seed):
        gadget = GadgetVector(q=Q, base_bits=7, digits=4)
        sk = GlweSecretKey.generate(N, 1, Sampler(7))
        exps = [3, 5, 9]
        aks = AutomorphismKeySet.generate_seeded(
            sk, exps, BASIS, gadget, key_seed, Sampler(8))
        assert aks.mask_seeds is not None
        # Each exponent expands alone from its derived seed — the order
        # of expansion cannot matter for a streaming provider.
        for t in reversed(exps):
            ksk = aks.keys[t]
            back = expand_glwe_keyswitch_key(
                mask_stream(aks.mask_seeds[t]), ksk.bodies(), 1, BASIS, gadget)
            for row, row2 in zip(ksk.rows, back.rows):
                assert poly_eq(row.body, row2.body)
                for m1, m2 in zip(row.mask, row2.mask):
                    assert poly_eq(m1, m2)


# -- CKKS hybrid switch keys -------------------------------------------------


class TestCkksSwitchKeyExpansion:
    @given(mask_seed=seeds, dnum=st.sampled_from([2, 4]))
    @settings(max_examples=6, deadline=None)
    def test_expansion_matches_keygen(self, mask_seed, dnum):
        params = make_toy_params(n=16, limbs=4, limb_bits=28, scale_bits=22)
        ctx = CkksContext(params.ckks, dnum=dnum)
        gen = CkksKeyGenerator(ctx, Sampler(11))
        sk1, sk2 = gen.secret_key(), gen.secret_key()
        key = gen.switch_key(sk1, sk2, mask_seed=mask_seed)
        assert key.mask_seed == mask_seed
        back = expand_ckks_switch_key(mask_seed, key.bodies(),
                                      ctx.extended_basis)
        assert len(back.components) == len(key.components)
        for (b1, a1), (b2, a2) in zip(key.components, back.components):
            assert poly_eq(b1, b2)
            assert poly_eq(a1, a2)


# -- full switching key set: compress / expand / stream ----------------------


PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)


@pytest.fixture(scope="module")
def seeded_stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(501))
    sk = gen.secret_key()
    swk = SwitchingKeySet.generate_seeded(ctx, sk, key_seed=424242,
                                          base_bits=4, error_std=0.8)
    return ctx, sk, swk


def assert_keyset_bit_identical(a, b):
    for rgsw1, rgsw2 in zip(list(a.brk.plus) + list(a.brk.minus),
                            list(b.brk.plus) + list(b.brk.minus)):
        for comp1, comp2 in zip(rgsw1.rows, rgsw2.rows):
            for row1, row2 in zip(comp1, comp2):
                assert poly_eq(row1.body, row2.body)
                for m1, m2 in zip(row1.mask, row2.mask):
                    assert poly_eq(m1, m2)
    assert sorted(a.auto_keys.keys) == sorted(b.auto_keys.keys)
    for t in a.auto_keys.keys:
        for row1, row2 in zip(a.auto_keys.keys[t].rows,
                              b.auto_keys.keys[t].rows):
            assert poly_eq(row1.body, row2.body)
            for m1, m2 in zip(row1.mask, row2.mask):
                assert poly_eq(m1, m2)


class TestSwitchingKeyCompression:
    def test_compress_expand_round_trip(self, seeded_stack):
        _, _, swk = seeded_stack
        material = swk.compress()
        back = expand_switching_keys(material)
        assert_keyset_bit_identical(swk, back)

    def test_at_rest_compression_ratio(self, seeded_stack):
        _, _, swk = seeded_stack
        material = swk.compress()
        assert swk.resident_bytes() / material.resident_bytes() >= 1.9

    def test_eager_keys_refuse_compression(self, seeded_stack):
        ctx, sk, _ = seeded_stack
        from repro.errors import ParameterError
        eager = SwitchingKeySet.generate(ctx, sk, Sampler(77), base_bits=4,
                                         error_std=0.8)
        with pytest.raises(ParameterError):
            eager.compress()

    def test_material_repr_redacts_seeds(self, seeded_stack):
        _, _, swk = seeded_stack
        material = swk.compress()
        text = repr(material)
        assert str(material.meta["key_seed"]) not in text


class TestStreamingKeys:
    def test_streaming_matches_eager_expansion(self, seeded_stack):
        _, _, swk = seeded_stack
        stream = StreamingSwitchingKeys(swk.compress())
        assert_keyset_bit_identical(swk, stream)

    def test_drop_and_reexpand_round_trip(self, seeded_stack):
        _, _, swk = seeded_stack
        stream = StreamingSwitchingKeys(swk.compress())
        _ = stream.brk  # force expansion
        resident_full = stream.resident_bytes()
        freed = stream.drop_expanded()
        assert freed > 0
        assert stream.resident_bytes() < resident_full
        assert stream.demotions == 1
        assert_keyset_bit_identical(swk, stream)  # re-expands on demand

    def test_resident_bytes_grow_with_expansion(self, seeded_stack):
        _, _, swk = seeded_stack
        stream = StreamingSwitchingKeys(swk.compress())
        at_rest = stream.resident_bytes()
        _ = stream.brk
        assert stream.resident_bytes() > at_rest
        assert stream.expansions > 0


# -- key-cache accounting ----------------------------------------------------


class _FakeStreamingKeys:
    """Duck-typed stand-in: a compressed core plus droppable expansion."""

    def __init__(self, core, expanded):
        self.core = core
        self.expanded = expanded
        self.drops = 0

    def resident_bytes(self):
        return self.core + self.expanded

    def drop_expanded(self):
        freed, self.expanded = self.expanded, 0
        self.drops += 1
        return freed


def _entry_for(keys):
    class _Holder:
        pass

    holder = _Holder()
    holder.keys = keys
    return KeyCacheEntry(holder, executor=None, pipeline=None,
                         nbytes=keys.resident_bytes(),
                         nbytes_fn=keys.resident_bytes)


class TestLruKeyCacheAccounting:
    def _cache(self, sizes, capacity):
        keys = {u: _FakeStreamingKeys(core, exp)
                for u, (core, exp) in sizes.items()}
        cache = LruKeyCache(lambda u: keys[u],
                            lambda holder_keys: _entry_for(holder_keys),
                            capacity_bytes=capacity)
        # provider returns the fake keys object directly; the factory
        # wraps it (LruKeyCache only ids the provider's return value).
        return cache, keys

    @given(st.lists(st.tuples(st.integers(0, 5),
                              st.integers(0, 300), st.integers(0, 700)),
                    min_size=1, max_size=30),
           st.integers(500, 3000))
    @settings(max_examples=30, deadline=None)
    def test_running_total_matches_recount(self, accesses, capacity):
        """The satellite fix: the running byte total must equal a full
        re-walk after any interleaving of admissions, demotions,
        evictions and size changes."""
        sizes = {u: (100 + 50 * u, 400) for u in range(6)}
        cache, keys = self._cache(sizes, capacity)
        for user, shrink, grow in accesses:
            cache.get(user)
            # Simulate a pipeline run changing the streaming footprint;
            # the cache folds the delta in on its next touch of the
            # entry (hit refresh), never by re-walking everything.
            keys[user].expanded = max(0, keys[user].expanded - shrink) + grow
            assert cache.resident_bytes() == cache.recount_bytes()
        assert cache.resident_bytes() == cache.recount_bytes()

    def test_demote_tier_runs_before_eviction(self):
        sizes = {0: (100, 900), 1: (100, 900), 2: (100, 900)}
        # Two expanded entries fit; the third only fits if the coldest
        # demotes.  Demotion must be tried before any executor is torn
        # down.
        cache, keys = self._cache(sizes, capacity=2200)
        cache.get(0)
        cache.get(1)
        cache.get(2)
        assert cache.demotions >= 1
        assert cache.evictions == 0
        assert keys[0].drops == 1  # coldest demoted, not evicted
        assert len(cache) == 3
        assert cache.resident_bytes() == cache.recount_bytes()

    def test_eviction_still_fires_when_demotion_insufficient(self):
        sizes = {u: (400, 200) for u in range(4)}
        cache, _ = self._cache(sizes, capacity=1000)
        for u in range(4):
            cache.get(u)
        assert cache.evictions >= 1
        assert cache.resident_bytes() <= 1000
        assert cache.resident_bytes() == cache.recount_bytes()

    def test_pinned_entries_never_demoted(self):
        sizes = {0: (100, 900), 1: (100, 900)}
        cache, keys = self._cache(sizes, capacity=1100)
        first = cache.get(0)
        first.pin()
        cache.get(1)
        assert keys[0].drops == 0  # pinned: left alone
        first.unpin()

    def test_hit_refreshes_entry_size(self):
        sizes = {0: (100, 0)}
        cache, keys = self._cache(sizes, capacity=None)
        cache.get(0)
        assert cache.resident_bytes() == 100
        keys[0].expanded = 5000  # grew between touches
        cache.get(0)
        assert cache.resident_bytes() == 5100
        assert cache.peak_resident_bytes >= 5100
