"""Vectorised modular arithmetic over word-sized prime moduli.

This module is the lowest layer of the stack: everything above it (NTT,
ring arithmetic, RNS, both FHE schemes) reduces to the operations here.

Two execution paths are provided, mirroring the paper's discussion of
modular-arithmetic circuit design (Section IV-A):

* a *fast path* for moduli below 2**31 where products of two residues fit
  into ``int64`` and all operations are plain vectorised numpy, and
* a *wide path* for larger moduli (the paper uses 36-bit limbs) using
  numpy ``object`` arrays of Python integers.  This path is slow but
  exact, and lets tests exercise the paper's exact 36-bit parameter set.

Barrett reduction is implemented explicitly (``barrett_reduce``) both as
documentation of what the hardware does and so the unit tests can check
it against the plain ``%`` operator; the hot vectorised path simply uses
numpy's remainder, which is what a software reproduction should do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

import numpy as np

from ..errors import ParameterError

#: Moduli strictly below this bound use the fast int64 path.
_FAST_MODULUS_BOUND = 1 << 31


def is_prime(n: int) -> bool:
    """Deterministic Miller-Rabin primality test for 64-bit-ish integers.

    The witness set is sufficient for all ``n < 3.3 * 10**24`` which covers
    every modulus this library will ever construct.
    """
    if n < 2:
        return False
    for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True


def find_ntt_primes(bits: int, n: int, count: int, skip: int = 0) -> List[int]:
    """Return ``count`` primes of roughly ``bits`` bits with ``p = 1 (mod 2n)``.

    Such primes admit a primitive ``2n``-th root of unity, which the
    negacyclic NTT over ``Z[X]/(X^n + 1)`` requires.  Primes are returned
    in decreasing order starting just below ``2**bits``; ``skip`` skips the
    first few hits (used to build disjoint bases, e.g. the special prime).
    """
    if n & (n - 1):
        raise ParameterError(f"ring dimension must be a power of two, got {n}")
    step = 2 * n
    top = 1 << bits
    candidate = top - (top - 1) % step  # largest value < 2**bits with = 1 (mod 2n)
    if candidate >= top:
        candidate -= step
    primes: List[int] = []
    skipped = 0
    while len(primes) < count:
        if candidate < step:
            raise ParameterError(
                f"ran out of {bits}-bit NTT primes for n={n} (need {count})"
            )
        if is_prime(candidate):
            if skipped < skip:
                skipped += 1
            else:
                primes.append(candidate)
        candidate -= step
    return primes


def primitive_root(q: int) -> int:
    """Smallest generator of the multiplicative group of ``Z_q`` (q prime)."""
    if not is_prime(q):
        raise ParameterError(f"{q} is not prime")
    order = q - 1
    factors = _factorize(order)
    for g in range(2, q):
        if all(pow(g, order // f, q) != 1 for f in factors):
            return g
    raise ParameterError(f"no primitive root found for {q}")  # pragma: no cover


def root_of_unity(q: int, order: int) -> int:
    """A primitive ``order``-th root of unity modulo prime ``q``."""
    if (q - 1) % order:
        raise ParameterError(f"{order} does not divide q-1 for q={q}")
    g = primitive_root(q)
    root = pow(g, (q - 1) // order, q)
    # pow of a generator always has exact order ``order`` here, but verify:
    if pow(root, order // 2, q) == 1:  # pragma: no cover - safety net
        raise ParameterError("root does not have the requested order")
    return root


def _factorize(n: int) -> List[int]:
    """Distinct prime factors of ``n`` by trial division (n is ~64 bits)."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        factors.append(n)
    return factors


def barrett_precompute(q: int, k: Optional[int] = None) -> "BarrettConstant":
    """Precompute the Barrett constant ``mu = floor(4**k / q)``.

    ``k`` defaults to ``q.bit_length()`` so that ``mu`` fits in ``2k`` bits,
    matching the classic Barrett formulation the paper's modular multiplier
    implements in DSP blocks.
    """
    if k is None:
        k = q.bit_length()
    return BarrettConstant(q=q, k=k, mu=(1 << (2 * k)) // q)


@dataclass(frozen=True)
class BarrettConstant:
    """Constants for Barrett reduction modulo ``q``."""

    q: int
    k: int
    mu: int

    def reduce(self, x: int) -> int:
        """Barrett-reduce ``0 <= x < q**2`` to ``x mod q``.

        This is the scalar reference used by tests; the vectorised code
        paths use numpy remainder which is numerically identical.
        """
        t = (x * self.mu) >> (2 * self.k)
        r = x - t * self.q
        if r >= self.q:
            r -= self.q
        if r >= self.q:  # pragma: no cover - Barrett error is at most one q
            r -= self.q
        return r


class ModulusEngine:
    """Vectorised arithmetic in ``Z_q`` choosing a fast or exact path.

    Arrays handled by an engine are numpy arrays of dtype ``int64`` (fast
    path) or ``object`` (wide path); the dtype is exposed as
    :attr:`dtype` so callers can allocate compatible buffers.
    """

    def __init__(self, q: int):
        if q < 2:
            raise ParameterError(f"modulus must be >= 2, got {q}")
        self.q = q
        self.fast = q < _FAST_MODULUS_BOUND
        self.dtype = np.int64 if self.fast else object
        self.barrett = barrett_precompute(q)

    # -- array construction -------------------------------------------------

    def asarray(self, values: Iterable[int]) -> np.ndarray:
        """Coerce ``values`` into this engine's canonical residue array.

        Inputs may be arbitrarily large (or negative) Python ints, e.g.
        CRT-composed coefficients, so reduction happens in object space
        before any narrowing cast.
        """
        arr = np.asarray(values)
        if arr.dtype == object or arr.dtype.kind not in "iu":
            arr = np.mod(np.asarray(arr, dtype=object), self.q)
            return arr.astype(np.int64) if self.fast else arr
        return self.reduce(arr.astype(self.dtype) if self.fast else arr.astype(object))

    def power_table(self, base: int, count: int) -> np.ndarray:
        """Successive powers ``base**j mod q`` for ``j in [0, count)``.

        Computed with exact Python-int arithmetic and returned as this
        engine's canonical residue array, so table construction never
        materialises an object-dtype ndarray on the fast path (the NTT
        twiddle/twist tables are built through here).
        """
        b = int(base) % self.q
        powers: List[int] = []
        cur = 1
        for _ in range(count):
            powers.append(cur)
            cur = cur * b % self.q
        return self.asarray(powers)

    def zeros(self, shape) -> np.ndarray:
        if self.fast:
            return np.zeros(shape, dtype=np.int64)
        out = np.empty(shape, dtype=object)
        out[...] = 0
        return out

    # -- core ops ------------------------------------------------------------

    def reduce(self, a: np.ndarray) -> np.ndarray:
        """Reduce arbitrary integers into ``[0, q)``."""
        return np.mod(a, self.q)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """``(a + b) mod q`` using the hardware's conditional-subtract trick."""
        s = a + b
        return np.where(s >= self.q, s - self.q, s)

    def sub(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = a - b
        return np.where(d < 0, d + self.q, d)

    def neg(self, a: np.ndarray) -> np.ndarray:
        return np.where(a == 0, a, self.q - a)

    def mul(self, a: np.ndarray, b) -> np.ndarray:
        """Element-wise ``(a * b) mod q``; ``b`` may be an array or scalar."""
        if self.fast:
            return (a * b) % self.q
        return np.mod(a * b, self.q)

    def mac(self, acc: np.ndarray, a: np.ndarray, b) -> np.ndarray:
        """Fused multiply-accumulate ``(acc + a*b) mod q``.

        Mirrors the external-product MAC units (Section IV-A): the lazy
        reduction there corresponds to reducing once after the fused op.
        """
        return np.mod(acc + a * b, self.q)

    # -- lazy-reduction helpers (batched external-product MACs) ----------------

    def lazy_sum(self, terms: np.ndarray, axis: int) -> np.ndarray:
        """Sum residues along ``axis`` with a single final reduction.

        On the fast path the inputs are canonical residues below ``2**31``,
        so up to ``2**32`` of them accumulate in a 64-bit lane without
        overflow — the software analogue of the MAC units' lazy reduction
        (one Barrett reduction per accumulator drain instead of one per
        addition).  Residues are reinterpreted as uint64 because numpy's
        unsigned remainder is several times cheaper than signed ``np.mod``;
        the result is bit-identical for canonical (non-negative) inputs.
        """
        if self.fast:
            # lazy-bound: canonical residues are < 2^31, so up to 2^32 of
            # them accumulate in a uint64 lane before overflow could occur.
            s = np.sum(np.asarray(terms).view(np.uint64), axis=axis)
            return np.mod(s, np.uint64(self.q)).view(np.int64)
        return np.mod(np.sum(terms, axis=axis), self.q)

    def lazy_mac_sum(self, a: np.ndarray, b: np.ndarray, axis: int) -> np.ndarray:
        """``sum(a * b, axis) mod q`` with lazily-reduced accumulation.

        Broadcasting applies before the contraction, so e.g. a digit tensor
        ``(batch, rows, 1, N)`` against a key tensor ``(rows, cols, N)``
        contracts over ``rows`` in one fused call.  On the fast path each
        product is reduced once into ``[0, q)`` (two int32 residues already
        saturate int64, so the product reduction cannot be deferred) and the
        accumulation itself stays lazy; on the wide path both the products
        and the accumulation are exact big-int ops with one final reduce.
        """
        if self.fast:
            # lazy-bound: each product of two residues < 2^31 fits uint64
            # and is reduced into [0, q) immediately; the deferred sum then
            # has the same 2^32-term capacity as lazy_sum.
            qu = np.uint64(self.q)
            p = (np.asarray(a).view(np.uint64) * np.asarray(b).view(np.uint64)) % qu
            return np.mod(np.sum(p, axis=axis), qu).view(np.int64)
        return np.mod(np.sum(a * b, axis=axis), self.q)

    def pow(self, base: int, exp: int) -> int:
        return pow(int(base), int(exp), self.q)

    def pow_vec(self, base: np.ndarray, exp: int) -> np.ndarray:
        """Element-wise ``base**exp mod q`` by square-and-multiply.

        Used to build evaluation-domain monomials ``X^a`` from the cached
        transform of ``X`` without a full NTT (the software analogue of the
        rotation unit's shift trick).
        """
        exp = int(exp)
        if exp < 0:
            raise ParameterError("negative exponents are not supported here")
        result = self.zeros(base.shape) + 1
        acc = base
        while exp:
            if exp & 1:
                result = self.mul(result, acc)
            exp >>= 1
            if exp:
                acc = self.mul(acc, acc)
        return result

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat (q prime for all our moduli)."""
        a = int(a) % self.q
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        return pow(a, self.q - 2, self.q)

    # -- signed (centred) representatives -------------------------------------

    def centered(self, a: np.ndarray) -> np.ndarray:
        """Map residues in ``[0, q)`` to centred representatives in
        ``(-q/2, q/2]`` — used when interpreting noise and when switching
        between moduli."""
        half = self.q // 2
        if self.fast:
            return np.where(a > half, a - self.q, a).astype(np.int64)
        return np.where(a > half, a - self.q, a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModulusEngine(q={self.q}, fast={self.fast})"


def crt_compose(residues: np.ndarray, moduli: List[int]) -> np.ndarray:
    """Compose RNS residues (shape ``(L, ...)``) into big integers mod prod(q_i).

    Returns an object-dtype array of Python ints in ``[0, Q)``.
    """
    big_q = 1
    for q in moduli:
        big_q *= q
    result = np.zeros(residues.shape[1:], dtype=object)
    for i, q in enumerate(moduli):
        qi_star = big_q // q
        qi_tilde = pow(qi_star % q, q - 2, q)  # (Q/qi)^-1 mod qi
        term = residues[i].astype(object) * (qi_star * qi_tilde)
        result = (result + term) % big_q
    return result


def crt_decompose(values: np.ndarray, moduli: List[int]) -> np.ndarray:
    """Decompose integers into RNS residues, shape ``(L,) + values.shape``."""
    values = np.asarray(values, dtype=object)
    out = np.empty((len(moduli),) + values.shape, dtype=object)
    for i, q in enumerate(moduli):
        out[i] = np.mod(values, q)
    return out
