"""Tests for GLWE encryption, RGSW, external product, CMux, InternalProduct."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis, RnsPoly
from repro.math.sampling import Sampler
from repro.tfhe.glwe import (
    GlweCiphertext,
    GlweSecretKey,
    glwe_decrypt_coeffs,
    glwe_encrypt,
)
from repro.tfhe.rgsw import (
    cmux,
    external_product,
    internal_product,
    rgsw_encrypt,
    rgsw_trivial,
)

N = 32
Q = find_ntt_primes(28, N, 1)[0]
BASIS = RnsBasis([Q])
GADGET = GadgetVector(q=Q, base_bits=7, digits=4)
DELTA = Q // 64  # message scale for noise headroom


def msg_poly(values):
    c = np.zeros(N, dtype=object)
    for i, v in enumerate(values):
        c[i] = (v * DELTA) % Q
    return RnsPoly.from_int_coeffs(N, BASIS, c)


def decode(coeffs):
    return [round(int(c) / DELTA) for c in coeffs]


@pytest.fixture(scope="module")
def sk():
    return GlweSecretKey.generate(N, 1, Sampler(21))


@pytest.fixture(scope="module")
def sk_h2():
    return GlweSecretKey.generate(N, 2, Sampler(22))


class TestGlwe:
    def test_encrypt_decrypt(self, sk):
        s = Sampler(0)
        m = msg_poly([1, 2, 3, -4])
        ct = glwe_encrypt(m, sk, s)
        got = decode(glwe_decrypt_coeffs(ct, sk))
        assert got[:4] == [1, 2, 3, -4]
        assert all(v == 0 for v in got[4:])

    def test_encrypt_decrypt_h2(self, sk_h2):
        s = Sampler(1)
        m = msg_poly([5, -6])
        ct = glwe_encrypt(m, sk_h2, s)
        assert decode(glwe_decrypt_coeffs(ct, sk_h2))[:2] == [5, -6]

    def test_additive_homomorphism(self, sk):
        s = Sampler(2)
        a = glwe_encrypt(msg_poly([1, 1]), sk, s)
        b = glwe_encrypt(msg_poly([2, -3]), sk, s)
        assert decode(glwe_decrypt_coeffs(a + b, sk))[:2] == [3, -2]

    def test_negacyclic_shift(self, sk):
        s = Sampler(3)
        ct = glwe_encrypt(msg_poly([7]), sk, s)
        shifted = ct.negacyclic_shift(2)
        got = decode(glwe_decrypt_coeffs(shifted, sk))
        assert got[2] == 7 and got[0] == 0

    def test_shift_wraps_with_sign(self, sk):
        s = Sampler(4)
        ct = glwe_encrypt(msg_poly([3]), sk, s)
        got = decode(glwe_decrypt_coeffs(ct.negacyclic_shift(N), sk))
        assert got[0] == -3

    def test_trivial_ciphertext(self, sk):
        m = msg_poly([9, 8])
        ct = GlweCiphertext.trivial(m, h=1)
        assert decode(glwe_decrypt_coeffs(ct, sk))[:2] == [9, 8]

    def test_mismatch_rejected(self, sk, sk_h2):
        s = Sampler(5)
        a = glwe_encrypt(msg_poly([0]), sk, s)
        b = glwe_encrypt(msg_poly([0]), sk_h2, s)
        with pytest.raises(ParameterError):
            _ = a + b


class TestExternalProduct:
    @pytest.mark.parametrize("m", [0, 1, -1])
    def test_rgsw_times_glwe(self, sk, m):
        s = Sampler(6)
        rgsw = rgsw_encrypt(m, sk, BASIS, GADGET, s)
        glwe = glwe_encrypt(msg_poly([2, -5, 1]), sk, s)
        out = external_product(rgsw, glwe)
        got = decode(glwe_decrypt_coeffs(out, sk))
        assert got[:3] == [2 * m, -5 * m, 1 * m]

    def test_trivial_rgsw_one_is_identity(self, sk):
        s = Sampler(7)
        glwe = glwe_encrypt(msg_poly([4, 2]), sk, s)
        one = rgsw_trivial(1, 1, N, BASIS, GADGET)
        got = decode(glwe_decrypt_coeffs(external_product(one, glwe), sk))
        assert got[:2] == [4, 2]

    def test_monomial_scaled_rgsw(self, sk):
        """(X^a) * RGSW(1) x GLWE(m) == GLWE(m * X^a): the BlindRotate step."""
        from repro.tfhe.blind_rotate import MonomialCache
        s = Sampler(8)
        glwe = glwe_encrypt(msg_poly([6]), sk, s)
        one = rgsw_trivial(1, 1, N, BASIS, GADGET)
        cache = MonomialCache(N, BASIS)
        # (X^3 - 1)*RGSW(1) + RGSW(1) = RGSW(X^3)
        rgsw_x3 = one.mul_eval_vector(cache.monomial_minus_one(3)) + one
        got = decode(glwe_decrypt_coeffs(external_product(rgsw_x3, glwe), sk))
        assert got[3] == 6 and got[0] == 0

    def test_external_product_h2(self, sk_h2):
        s = Sampler(9)
        rgsw = rgsw_encrypt(1, sk_h2, BASIS, GADGET, s)
        glwe = glwe_encrypt(msg_poly([3, 3]), sk_h2, s)
        got = decode(glwe_decrypt_coeffs(external_product(rgsw, glwe), sk_h2))
        assert got[:2] == [3, 3]

    def test_operand_mismatch_rejected(self, sk, sk_h2):
        s = Sampler(10)
        rgsw = rgsw_encrypt(1, sk, BASIS, GADGET, s)
        glwe = glwe_encrypt(msg_poly([0]), sk_h2, s)
        with pytest.raises(ParameterError):
            external_product(rgsw, glwe)

    def test_noise_growth_bounded(self, sk):
        """Chained external products by RGSW(1) keep the message intact."""
        s = Sampler(11)
        glwe = glwe_encrypt(msg_poly([1, -1, 2]), sk, s)
        rgsw = rgsw_encrypt(1, sk, BASIS, GADGET, s)
        for _ in range(8):
            glwe = external_product(rgsw, glwe)
        assert decode(glwe_decrypt_coeffs(glwe, sk))[:3] == [1, -1, 2]


class TestCmux:
    def test_selects_true_branch(self, sk):
        s = Sampler(12)
        sel = rgsw_encrypt(1, sk, BASIS, GADGET, s)
        d0 = glwe_encrypt(msg_poly([10]), sk, s)
        d1 = glwe_encrypt(msg_poly([20]), sk, s)
        assert decode(glwe_decrypt_coeffs(cmux(sel, d0, d1), sk))[0] == 20

    def test_selects_false_branch(self, sk):
        s = Sampler(13)
        sel = rgsw_encrypt(0, sk, BASIS, GADGET, s)
        d0 = glwe_encrypt(msg_poly([10]), sk, s)
        d1 = glwe_encrypt(msg_poly([20]), sk, s)
        assert decode(glwe_decrypt_coeffs(cmux(sel, d0, d1), sk))[0] == 10


class TestInternalProduct:
    def test_product_of_rgsw(self, sk):
        """RGSW(a) x RGSW(b) acts like RGSW(a*b) in an external product."""
        s = Sampler(14)
        r1 = rgsw_encrypt(1, sk, BASIS, GADGET, s)
        r0 = rgsw_encrypt(0, sk, BASIS, GADGET, s)
        prod = internal_product(r1, r0)  # encrypts 0
        glwe = glwe_encrypt(msg_poly([5]), sk, s)
        assert decode(glwe_decrypt_coeffs(external_product(prod, glwe), sk))[0] == 0

    def test_product_of_ones(self, sk):
        s = Sampler(15)
        r1 = rgsw_encrypt(1, sk, BASIS, GADGET, s)
        prod = internal_product(r1, r1)
        glwe = glwe_encrypt(msg_poly([5]), sk, s)
        assert decode(glwe_decrypt_coeffs(external_product(prod, glwe), sk))[0] == 5

    def test_paper_matrix_shape(self, sk):
        s = Sampler(16)
        r = rgsw_encrypt(1, sk, BASIS, GADGET, s)
        assert r.matrix_shape() == ((1 + 1) * GADGET.digits, 1 + 1)
