"""Tests for Chebyshev approximation and homomorphic evaluation, and for
slot-space linear transforms."""

import numpy as np
import pytest

from repro.ckks import (
    ChebyshevApprox,
    CkksContext,
    CkksEvaluator,
    CkksKeyGenerator,
    apply_conjugation_pair,
    apply_matrix,
    eval_chebyshev,
    required_rotations,
)
from repro.ckks.bootstrap import make_bootstrappable_toy_params
from repro.ckks.linear_transform import bsgs_split, matrix_diagonals
from repro.math.sampling import Sampler

PARAMS = make_bootstrappable_toy_params(n=16, levels=9, delta_bits=24, q0_bits=30)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(55))
    sk = gen.secret_key()
    keys = gen.keyset(sk, rotations=required_rotations(ctx.slots), conjugate=True)
    ev = CkksEvaluator(ctx, keys, Sampler(56), scale_rtol=5e-2)
    return ctx, sk, ev


class TestChebyshevNumeric:
    def test_interpolation_accuracy(self):
        approx = ChebyshevApprox.interpolate(np.sin, -3, 3, 31)
        assert approx.max_error(np.sin) < 1e-8

    def test_linear_function_is_exact(self):
        approx = ChebyshevApprox.interpolate(lambda x: 2 * x + 1, -1, 1, 3)
        xs = np.linspace(-1, 1, 64)
        assert np.allclose(approx(xs), 2 * xs + 1, atol=1e-12)

    def test_degree_reported(self):
        assert ChebyshevApprox.interpolate(np.cos, -1, 1, 7).degree == 7

    def test_interval_mapping(self):
        approx = ChebyshevApprox.interpolate(np.exp, 1, 2, 15)
        xs = np.linspace(1, 2, 32)
        assert np.allclose(approx(xs), np.exp(xs), atol=1e-10)


class TestHomomorphicChebyshev:
    def test_low_degree_polynomial(self, stack):
        ctx, sk, ev = stack
        approx = ChebyshevApprox.interpolate(lambda x: x**2 - 0.5, -1, 1, 4)
        z = np.random.default_rng(0).uniform(-0.9, 0.9, ctx.slots)
        out = eval_chebyshev(ev, ev.encrypt(z), approx)
        got = ev.decrypt(out, sk).real
        assert np.allclose(got, z**2 - 0.5, atol=2e-2)

    def test_sigmoid(self, stack):
        ctx, sk, ev = stack

        def sigmoid(x):
            return 1.0 / (1.0 + np.exp(-np.asarray(x)))

        approx = ChebyshevApprox.interpolate(sigmoid, -4, 4, 15)
        z = np.random.default_rng(1).uniform(-3, 3, ctx.slots)
        out = eval_chebyshev(ev, ev.encrypt(z), approx)
        got = ev.decrypt(out, sk).real
        assert np.allclose(got, sigmoid(z), atol=5e-2)

    def test_moderate_degree_sine(self, stack):
        ctx, sk, ev = stack
        approx = ChebyshevApprox.interpolate(np.sin, -2, 2, 23)
        z = np.random.default_rng(2).uniform(-1.8, 1.8, ctx.slots)
        out = eval_chebyshev(ev, ev.encrypt(z), approx)
        got = ev.decrypt(out, sk).real
        assert np.allclose(got, np.sin(z), atol=5e-2)


class TestDiagonals:
    def test_diagonal_identity(self):
        n = 8
        rng = np.random.default_rng(3)
        m = rng.normal(size=(n, n))
        z = rng.normal(size=n)
        diags = matrix_diagonals(m)
        recon = np.zeros(n)
        for r, d in enumerate(diags):
            recon = recon + d * np.roll(z, -r)
        assert np.allclose(recon, m @ z)

    def test_bsgs_split(self):
        assert bsgs_split(16) == 4
        assert bsgs_split(64) == 8
        assert bsgs_split(10) in (4, 8)

    def test_required_rotations_subset(self):
        rots = required_rotations(16)
        assert all(0 < r < 16 for r in rots)


class TestApplyMatrix:
    def test_identity_matrix(self, stack):
        ctx, sk, ev = stack
        z = np.random.default_rng(4).uniform(-1, 1, ctx.slots)
        out = apply_matrix(ev, ev.encrypt(z), np.eye(ctx.slots))
        assert np.allclose(ev.decrypt(out, sk).real, z, atol=2e-2)

    def test_random_real_matrix(self, stack):
        ctx, sk, ev = stack
        rng = np.random.default_rng(5)
        m = rng.normal(0, 0.3, (ctx.slots, ctx.slots))
        z = rng.uniform(-1, 1, ctx.slots)
        out = apply_matrix(ev, ev.encrypt(z), m)
        assert np.allclose(ev.decrypt(out, sk).real, m @ z, atol=5e-2)

    def test_complex_matrix(self, stack):
        ctx, sk, ev = stack
        rng = np.random.default_rng(6)
        m = rng.normal(0, 0.3, (ctx.slots, ctx.slots)) + \
            1j * rng.normal(0, 0.3, (ctx.slots, ctx.slots))
        z = rng.uniform(-1, 1, ctx.slots) + 1j * rng.uniform(-1, 1, ctx.slots)
        out = apply_matrix(ev, ev.encrypt(z), m)
        assert np.allclose(ev.decrypt(out, sk), m @ z, atol=5e-2)

    def test_conjugation_pair(self, stack):
        """M1 z + M2 conj(z) — the R-linear transform of CoeffToSlot."""
        ctx, sk, ev = stack
        rng = np.random.default_rng(7)
        m1 = rng.normal(0, 0.3, (ctx.slots, ctx.slots)).astype(np.complex128)
        m2 = rng.normal(0, 0.3, (ctx.slots, ctx.slots)).astype(np.complex128)
        z = rng.uniform(-1, 1, ctx.slots) + 1j * rng.uniform(-1, 1, ctx.slots)
        out = apply_conjugation_pair(ev, ev.encrypt(z), m1, m2)
        want = m1 @ z + m2 @ np.conj(z)
        assert np.allclose(ev.decrypt(out, sk), want, atol=8e-2)

    def test_consumes_one_level(self, stack):
        ctx, sk, ev = stack
        ct = ev.encrypt(np.ones(ctx.slots))
        out = apply_matrix(ev, ct, np.eye(ctx.slots))
        assert out.level == ct.level - 1
