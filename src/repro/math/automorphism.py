"""Cached signed-permutation form of the ring automorphisms ``X -> X^t``.

On ``Z_q[X]/(X^N + 1)`` an odd-exponent automorphism is a *signed
permutation* of the coefficient vector: coefficient ``i`` lands at
position ``i*t mod N`` and is negated when ``i*t mod 2N >= N``.  In the
evaluation (NTT) domain the same map is an *unsigned* permutation of the
transform slots: slot ``k`` holds the evaluation at ``psi^(2k+1)``, and
``phi_t(a)(psi^(2k+1)) = a(psi^(t*(2k+1) mod 2N))``, so the output slot
reads input slot ``(t*(2k+1) mod 2N - 1) / 2`` with no sign at all.

Every consumer of an automorphism — key generation
(:func:`repro.tfhe.keyswitch._int_automorphism`), ciphertext rotation
(:meth:`repro.math.rns.RnsPoly.automorphism`) and the batched repack
engine (:mod:`repro.tfhe.repack_engine`) — shares the tables built here,
cached per ``(n, t)``: the per-coefficient Python loop the seed used for
key generation becomes a single numpy gather, and the repack engine gets
the eval-domain slot gather plus the inverse (gather-form) coefficient
permutation its hoisted decomposition path needs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import ParameterError


@dataclass(frozen=True)
class AutomorphismPerm:
    """Index/sign tables realising ``X -> X^t`` on a dimension-``n`` ring.

    Scatter form (input position ``i``):
      ``out[dest[i]] = -in[i] if dest_flip[i] else in[i]``
    Gather form (output position ``j``):
      ``out[j] = -in[src[j]] if src_flip[j] else in[src[j]]``
    Evaluation domain (NTT slot ``k``, natural order):
      ``out[k] = in[eval_src[k]]`` — sign-free.
    """

    n: int
    t: int
    dest: np.ndarray
    dest_flip: np.ndarray
    src: np.ndarray
    src_flip: np.ndarray
    eval_src: np.ndarray


_PERM_CACHE: Dict[Tuple[int, int], AutomorphismPerm] = {}
_PERM_CACHE_LOCK = threading.Lock()


def get_automorphism_perm(n: int, t: int) -> AutomorphismPerm:
    """Shared :class:`AutomorphismPerm` for ``(n, t)`` (``t`` odd).

    Lock-free on a hit; the miss path double-checks under a lock so
    concurrent tenants share one permutation table.
    """
    t = int(t) % (2 * n)
    if t % 2 == 0:
        raise ParameterError("automorphism exponent must be odd")
    key = (n, t)
    perm = _PERM_CACHE.get(key)
    if perm is not None:
        return perm
    with _PERM_CACHE_LOCK:
        perm = _PERM_CACHE.get(key)
        if perm is not None:
            return perm
        i = np.arange(n)
        e = (i * t) % (2 * n)
        dest = e % n
        dest_flip = e >= n
        # t is invertible mod 2N, so dest is a permutation of [0, n).
        src = np.empty(n, dtype=np.int64)
        src[dest] = i
        src_flip = np.empty(n, dtype=bool)
        src_flip[dest] = dest_flip
        eval_src = ((t * (2 * i + 1)) % (2 * n) - 1) // 2
        perm = AutomorphismPerm(n=n, t=t, dest=dest, dest_flip=dest_flip,
                                src=src, src_flip=src_flip, eval_src=eval_src)
        _PERM_CACHE[key] = perm
    return perm
