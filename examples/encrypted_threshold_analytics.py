#!/usr/bin/env python3
"""Encrypted threshold analytics through the programmable-bootstrap service.

A provider hosts encrypted sensor readings for several users and wants
per-reading *risk bands* — ``band(v) = [v >= 0.25] + [v >= 0.625]`` in
{0, 1, 2} — without ever decrypting.  Each indicator is one programmable
bootstrap with a :func:`repro.switching.threshold` LUT, and the band is
a single homomorphic addition of the two indicator ciphertexts: no
polynomial approximation, no multiplicative depth, and the outputs come
back *fresh* (top level).

The requests go through ``BootstrapService.submit_pbs``: the service
coalesces same-LUT requests from different users into one shared
fan-out tensor per LUT (a tensor carries exactly one test vector, so
the two thresholds dispatch as two batches), and every result is
bit-identical to a solo ``BootstrapPipeline.run_pbs`` call.
"""

import asyncio

import numpy as np

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.service import BootstrapService, ServiceTrace, UserKeys
from repro.switching import SwitchingKeySet, threshold

LOW, HIGH = 0.25, 0.625


async def main() -> None:
    params = make_toy_params(n=64, limbs=3, limb_bits=30, scale_bits=28,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(21))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(22))
    print("generating switching keys...")
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(23), base_bits=4,
                                   error_std=0.6)
    tenant_keys = UserKeys.from_switching(ctx, swk)

    # Two predicate LUTs, built once each and cached on the key set's
    # registry (OpStats counts the hits).
    is_elevated = threshold(LOW)
    is_critical = threshold(HIGH)

    # Per-user coefficient-packed readings on exact phase-bucket
    # centers (buckets 0, 14, 26 of 32), several buckets clear of both
    # band edges (buckets 8 and 20) and of the LUT's anti-periodic
    # domain edge (bucket 32) — the honest contract of a 2N-bucket
    # lookup at toy ring size.
    users = ["plant-a", "plant-b", "plant-c"]
    rng = np.random.default_rng(5)
    readings = {u: rng.choice([0.0, 0.4375, 0.8125], size=ctx.n // 2)
                for u in users}
    cts = {u: ev.drop_to_level(ev.encrypt_coeffs(v), 0)
           for u, v in readings.items()}

    trace = ServiceTrace()
    svc = BootstrapService(lambda uid: tenant_keys,
                           max_batch=len(users) * ctx.n,
                           max_delay_s=0.05, trace=trace)
    async with svc:
        # 6 PBS requests, 2 LUTs: the service coalesces them into one
        # fan-out batch per LUT.
        elevated, critical = {}, {}
        results = await asyncio.gather(*(
            [svc.submit_pbs(u, cts[u], is_elevated) for u in users]
            + [svc.submit_pbs(u, cts[u], is_critical) for u in users]))
        for u, ct_lo in zip(users, results[:len(users)]):
            elevated[u] = ct_lo
        for u, ct_hi in zip(users, results[len(users):]):
            critical[u] = ct_hi

    print(f"\n{trace.pbs_requests} PBS requests -> "
          f"batches (fill -> count): {dict(trace.batch_fill)}")

    print(f"\nband(v) = [v >= {LOW}] + [v >= {HIGH}], computed encrypted:")
    for u in users:
        band_ct = ev.add(elevated[u], critical[u])  # depth-free stump
        got = np.round(ev.decrypt_coeffs_scaled(band_ct, sk)[:ctx.n // 2])
        want = ((readings[u] >= LOW).astype(int)
                + (readings[u] >= HIGH).astype(int))
        ok = (got == want).all()
        counts = {b: int((got == b).sum()) for b in (0, 1, 2)}
        print(f"  {u}: bands {counts}  "
              f"{'matches plaintext' if ok else 'MISMATCH'}")
        assert ok

    print("\nnote: each indicator is a *discontinuous* predicate — the")
    print("polynomial (CKKS-only) route would need a high-degree")
    print("approximation and multiplicative depth; here both come back")
    print("at the top level, and same-LUT traffic from different users")
    print("shares one blind-rotate tensor.")


if __name__ == "__main__":
    asyncio.run(main())
