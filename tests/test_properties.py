"""Hypothesis property tests on cross-cutting invariants of the stack."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.modular import find_ntt_primes
from repro.math.poly import RingPoly
from repro.math.rns import RnsBasis, RnsPoly
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.tfhe.extract import extract_lwe, rlwe_secret_as_lwe_key
from repro.tfhe.glwe import GlweSecretKey, glwe_encrypt
from repro.tfhe.lwe import LweSecretKey, lwe_decrypt, lwe_encrypt, lwe_phase

N = 16
Q = find_ntt_primes(26, N, 1)[0]

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=28, scale_bits=22)
_CTX = CkksContext(PARAMS.ckks, dnum=2)
_GEN = CkksKeyGenerator(_CTX, Sampler(2718))
_SK = _GEN.secret_key()
_KEYS = _GEN.keyset(_SK, rotations=[1, 3])
_EV = CkksEvaluator(_CTX, _KEYS, Sampler(2719))


small_vecs = st.lists(st.floats(min_value=-1, max_value=1, allow_nan=False),
                      min_size=_CTX.slots, max_size=_CTX.slots)


class TestCkksHomomorphismProperties:
    @given(small_vecs, small_vecs)
    @settings(max_examples=10, deadline=None)
    def test_addition_homomorphism(self, a, b):
        a, b = np.asarray(a), np.asarray(b)
        got = _EV.decrypt(_EV.add(_EV.encrypt(a), _EV.encrypt(b)), _SK)
        assert np.allclose(got.real, a + b, atol=5e-3)

    @given(small_vecs)
    @settings(max_examples=10, deadline=None)
    def test_negation_involution(self, a):
        a = np.asarray(a)
        ct = _EV.encrypt(a)
        got = _EV.decrypt(_EV.negate(_EV.negate(ct)), _SK)
        assert np.allclose(got.real, a, atol=5e-3)

    @given(small_vecs, st.integers(0, 3))
    @settings(max_examples=10, deadline=None)
    def test_rotation_permutes(self, a, r):
        a = np.asarray(a)
        if r not in (0, 1, 3):
            r = 1
        ct = _EV.rotate(_EV.encrypt(a), r) if r else _EV.encrypt(a)
        got = _EV.decrypt(ct, _SK)
        assert np.allclose(got.real, np.roll(a, -r), atol=5e-3)

    @given(small_vecs)
    @settings(max_examples=10, deadline=None)
    def test_encrypt_decrypt_noise_bound(self, a):
        a = np.asarray(a)
        got = _EV.decrypt(_EV.encrypt(a), _SK)
        assert np.max(np.abs(got.real - a)) < 1e-3


class TestRingAlgebraProperties:
    @given(st.integers(0, 2**32), st.integers(0, 2 * N - 1))
    @settings(max_examples=30, deadline=None)
    def test_shift_then_unshift(self, seed, k):
        rng = np.random.default_rng(seed)
        p = RingPoly(N, Q, rng.integers(0, Q, N))
        assert p.negacyclic_shift(k).negacyclic_shift(2 * N - k) == p

    @given(st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_automorphism_group_closure(self, seed):
        rng = np.random.default_rng(seed)
        p = RingPoly(N, Q, rng.integers(0, Q, N))
        # 5 generates a subgroup of (Z/2N)^*; 5^k for k = order gives identity.
        t, k = 5, 1
        while pow(5, k, 2 * N) != 1:
            k += 1
        out = p
        for _ in range(k):
            out = out.automorphism(5)
        assert out == p

    @given(st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_rns_mul_commutes(self, seed):
        rng = np.random.default_rng(seed)
        basis = RnsBasis(find_ntt_primes(20, N, 3))
        a = RnsPoly.from_int_coeffs(
            N, basis, np.asarray([int(v) for v in rng.integers(0, 10**6, N)],
                                 dtype=object))
        b = RnsPoly.from_int_coeffs(
            N, basis, np.asarray([int(v) for v in rng.integers(0, 10**6, N)],
                                 dtype=object))
        assert a * b == b * a


class TestTfhePhaseProperties:
    @given(st.integers(0, 2**31), st.integers(-1000, 1000))
    @settings(max_examples=25, deadline=None)
    def test_lwe_phase_linearity(self, seed, m):
        s = Sampler(seed)
        sk = LweSecretKey.generate(12, s)
        a = lwe_encrypt(m % Q, sk, Q, s)
        b = lwe_encrypt((2 * m) % Q, sk, Q, s)
        got = lwe_decrypt(a + a - b, sk)
        assert abs(got) < 200  # m + m - 2m = 0 up to noise

    @given(st.integers(0, 2**31))
    @settings(max_examples=10, deadline=None)
    def test_extraction_commutes_with_addition(self, seed):
        s = Sampler(seed)
        sk = GlweSecretKey.generate(N, 1, s)
        basis = RnsBasis([Q])
        m1 = np.zeros(N, dtype=object)
        m2 = np.zeros(N, dtype=object)
        m1[0], m2[0] = 5000, 7000
        c1 = glwe_encrypt(RnsPoly.from_int_coeffs(N, basis, m1), sk, s)
        c2 = glwe_encrypt(RnsPoly.from_int_coeffs(N, basis, m2), sk, s)
        lwe_key = rlwe_secret_as_lwe_key(sk.coeffs[0])
        lhs = lwe_phase(extract_lwe(c1 + c2, 0), lwe_key)
        rhs = (lwe_phase(extract_lwe(c1, 0), lwe_key) +
               lwe_phase(extract_lwe(c2, 0), lwe_key)) % Q
        assert lhs == rhs
