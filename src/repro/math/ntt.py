"""Negacyclic number-theoretic transform over ``Z_q[X]/(X^N + 1)``.

The paper's NTT datapath (Section IV-D) performs radix-2 Cooley-Tukey
butterflies with grouped twiddle access; this module implements the same
algorithm in vectorised numpy.  The transform is *negacyclic*: pointwise
multiplication in the evaluation domain corresponds to multiplication
modulo ``X^N + 1`` in the coefficient domain, which is the convolution
both CKKS and TFHE need.

Implementation notes
--------------------
We use the classic psi-twisting formulation: with ``psi`` a primitive
``2N``-th root of unity and ``omega = psi**2``,

* forward:  ``NTT(a)_k = sum_j a_j psi^j omega^{jk}`` — a cyclic NTT of
  the twisted sequence ``a_j psi^j``;
* inverse:  untwist by ``psi^{-j}`` and scale by ``N^{-1}`` after the
  cyclic inverse NTT.

The cyclic transform itself is an iterative Cooley-Tukey with the grouped
addressing scheme of Section IV-D (coefficients sharing a twiddle are
processed together), vectorised so a whole stage is a handful of numpy
slice operations.  Transforms accept stacked inputs of shape
``(..., N)`` so multiple limbs are transformed in one call — the software
analogue of the paper's "two limbs per pass" memory layout.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ParameterError
from .modular import ModulusEngine, root_of_unity

#: Largest value an unsigned 64-bit lane can hold; the fast-path butterfly
#: tracks an exact per-stage bound against this to decide when a deferred
#: reduction can no longer be deferred.
_U64_MAX = (1 << 64) - 1


def fast_mod_u64(src: np.ndarray, qu: np.uint64, out: np.ndarray,
                 div: np.ndarray = None) -> np.ndarray:
    """``out = src % qu`` for uint64 arrays via ``src - (src // qu) * qu``.

    numpy routes ``//`` by a scalar through a vectorised reciprocal
    division but ``%`` through per-element hardware remainder, so three
    cheap passes beat one ``np.mod`` about 3x on the reduction-heavy
    butterfly path.  Exact for the full uint64 range.  ``div`` is the
    quotient workspace; when ``src`` and ``out`` are distinct arrays it
    may be omitted and ``out`` doubles as the workspace (``src`` is only
    read again by the final subtraction).
    """
    if div is None:
        div = out
    np.floor_divide(src, qu, out=div)
    np.multiply(div, qu, out=div)
    np.subtract(src, div, out=out)
    return out


class NttEngine:
    """Cached negacyclic NTT for a fixed ``(N, q)`` pair.

    ``twiddle_mode`` mirrors the control signal of paper Section IV-D:
    ``"cached"`` reads precomputed twiddles (the default, on-chip tables),
    ``"on_the_fly"`` regenerates each stage's twiddles from the root by
    repeated squaring — trading compute for table storage, "helpful when
    the on-chip memory is not sufficient to store all the twiddle factors
    at once and we have available compute bandwidth".  Both modes are
    bit-identical (tests assert it).
    """

    def __init__(self, n: int, q: int, twiddle_mode: str = "cached"):
        if n & (n - 1) or n < 2:
            raise ParameterError(f"N must be a power of two >= 2, got {n}")
        if twiddle_mode not in ("cached", "on_the_fly"):
            raise ParameterError(f"unknown twiddle mode {twiddle_mode!r}")
        self.twiddle_mode = twiddle_mode
        self.n = n
        self.mod = ModulusEngine(q)
        self.q = q
        self.psi = root_of_unity(q, 2 * n)
        self.omega = self.psi * self.psi % q
        self.n_inv = self.mod.inv(n)

        # psi^j / psi^-j twist vectors and omega^k stage tables (plus the
        # inverse direction's), all built through the engine's exact
        # Python-int power_table so no object-dtype intermediate exists on
        # the fast path.
        self._psi = self.mod.power_table(self.psi, n)
        self._psi_inv = self.mod.power_table(self.mod.inv(self.psi), n)
        self._omega = self.mod.power_table(self.omega, n)
        self._omega_inv = self.mod.power_table(self.mod.inv(self.omega), n)

        # Fast-path (q < 2^31) tables in uint64.  Unsigned remainder is
        # several times cheaper than signed np.mod in numpy, and working
        # unsigned lets the butterfly accumulate *lazily*: sums grow by at
        # most q per stage, so only the twiddle products are reduced
        # eagerly and everything else is reduced once at the end — the
        # software analogue of the lazy reduction in the paper's modular
        # MAC datapath (Section IV-A).
        if self.mod.fast:
            self._qu = np.uint64(q)
            self._psi_u = self._psi.view(np.uint64)
            # Inverse untwist fused with the 1/N scaling: one multiply.
            self._psi_inv_n_u = self.mod.mul(self._psi_inv, self.n_inv).view(np.uint64)
            if twiddle_mode == "cached":
                self._stages_fwd_u = self._stage_tables_u(self._omega)
                self._stages_inv_u = self._stage_tables_u(self._omega_inv)
            else:
                self._stages_fwd_u = self._stages_inv_u = None
            # Reusable butterfly workspaces keyed by batch width.  Fresh
            # megabyte-sized allocations per transform land on mmap and pay
            # soft page faults every call; a pipeline only ever uses a
            # handful of batch widths, so the cache stays small.  The cache
            # is thread-local: engines are shared process-wide per (n, q),
            # and the bootstrap service runs concurrent per-tenant batches
            # on worker threads.
            self._work = threading.local()

    def _stage_tables_u(self, omega_pows: np.ndarray) -> List[np.ndarray]:
        """Per-stage twiddle tables ``w^(j * n/(2m))`` as uint64 arrays."""
        n = self.n
        tables = []
        m = 1
        while m < n:
            tables.append(omega_pows[np.arange(m) * (n // (2 * m))].view(np.uint64))
            m *= 2
        return tables

    # -- public API -----------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient -> evaluation domain (shape-preserving, last axis N)."""
        arr = np.asarray(coeffs)
        _profile_ntt(self.n, arr)
        if self.mod.fast:
            a = np.asarray(arr, dtype=np.int64).view(np.uint64)
            a = (a * self._psi_u) % self._qu
            return self._cyclic_fast(a, forward=True).view(np.int64)
        a = self.mod.mul(arr.astype(self.mod.dtype, copy=False), self._psi)
        return self._cyclic(a, self._omega)

    def _work_bufs(self, batch: int) -> Tuple[np.ndarray, np.ndarray,
                                              np.ndarray, np.ndarray]:
        """Two ``(n, batch)`` ping-pong buffers plus two half-size
        scratches (twiddle products and their reduction quotients)."""
        cache: Dict[int, Tuple[np.ndarray, ...]]
        cache = getattr(self._work, "bufs", None)
        if cache is None:
            cache = self._work.bufs = {}
        bufs = cache.get(batch)
        if bufs is None:
            bufs = (np.empty((self.n, batch), dtype=np.uint64),
                    np.empty((self.n, batch), dtype=np.uint64),
                    np.empty((self.n // 2, batch), dtype=np.uint64),
                    np.empty((self.n // 2, batch), dtype=np.uint64))
            cache[batch] = bufs
        return bufs

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation -> coefficient domain."""
        arr = np.asarray(evals)
        _profile_ntt(self.n, arr)
        if self.mod.fast:
            a = np.asarray(arr, dtype=np.int64).view(np.uint64)
            a = self._cyclic_fast(a, forward=False)
            # Untwist and scale by N^-1 in one fused multiply.
            return ((a * self._psi_inv_n_u) % self._qu).view(np.int64)
        a = self._cyclic(arr.astype(self.mod.dtype, copy=False), self._omega_inv)
        a = self.mod.mul(a, self.n_inv)
        return self.mod.mul(a, self._psi_inv)

    def forward_axis0(self, coeffs: np.ndarray) -> np.ndarray:
        """Forward transform along axis 0 of an ``(N, ...)`` stack.

        The transposed entry point for batch-major tensor pipelines (the
        batched blind-rotate engine keeps all state ``(N, batch, ...)``):
        on the fast path the butterfly core already works transform-axis-
        first, so this skips the two transpose copies :meth:`forward` pays
        per call.  Bit-identical to ``forward`` applied over the moved
        axis.
        """
        arr = np.asarray(coeffs)
        _profile_ntt(self.n, arr)
        if self.mod.fast:
            tail = arr.shape[1:]
            a = np.asarray(arr, dtype=np.int64).view(np.uint64).reshape(self.n, -1)
            wb, buf, scratch, quot = self._work_bufs(a.shape[1])
            np.multiply(a, self._psi_u[:, None], out=buf)
            fast_mod_u64(buf, self._qu, buf, wb)  # wb is rewritten below
            np.take(buf, _bitrev_indices(self.n), axis=0, out=wb)
            res, _ = self._butterfly(wb, buf, scratch, quot, forward=True)
            out = np.empty_like(res)
            fast_mod_u64(res, self._qu, out)
            return out.view(np.int64).reshape((self.n,) + tail)
        out = self.mod.mul(np.moveaxis(arr, 0, -1).astype(self.mod.dtype, copy=False),
                           self._psi)
        return np.moveaxis(self._cyclic(out, self._omega), -1, 0)

    def inverse_axis0(self, evals: np.ndarray) -> np.ndarray:
        """Inverse transform along axis 0 of an ``(N, ...)`` stack."""
        arr = np.asarray(evals)
        _profile_ntt(self.n, arr)
        if self.mod.fast:
            tail = arr.shape[1:]
            a = np.asarray(arr, dtype=np.int64).view(np.uint64).reshape(self.n, -1)
            wb, buf, scratch, quot = self._work_bufs(a.shape[1])
            np.take(a, _bitrev_indices(self.n), axis=0, out=wb)
            res, bound = self._butterfly(wb, buf, scratch, quot, forward=False)
            # Untwist/scale the *unreduced* butterfly output: the product
            # bound check mirrors the per-stage guard, and the single
            # reduction lands in a fresh output array — exactly the values
            # ((res mod q) * psi^-j/N) mod q, one full pass cheaper.
            if (bound - 1) * (self.q - 1) > _U64_MAX:
                res %= self._qu
            np.multiply(res, self._psi_inv_n_u[:, None], out=res)
            out = np.empty_like(res)
            fast_mod_u64(res, self._qu, out)
            return out.view(np.int64).reshape((self.n,) + tail)
        a = self._cyclic(np.moveaxis(arr, 0, -1).astype(self.mod.dtype, copy=False),
                         self._omega_inv)
        a = self.mod.mul(a, self.n_inv)
        return np.moveaxis(self.mod.mul(a, self._psi_inv), -1, 0)

    def pointwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Hadamard product in the evaluation domain."""
        from ..profiling import record_mul

        record_mul(int(np.asarray(a).size))
        return self.mod.mul(a, b)

    def negacyclic_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full negacyclic product of two coefficient-domain polynomials."""
        return self.inverse(self.pointwise(self.forward(a), self.forward(b)))

    # -- internals --------------------------------------------------------------

    def _cyclic_fast(self, a: np.ndarray, forward: bool) -> np.ndarray:
        """Radix-2 DIT cyclic NTT on the last axis, uint64 lazy-reduction path.

        Inputs are canonical residues reinterpreted as uint64.  Per stage
        only the twiddle product ``hi * tw`` is reduced; the butterfly sums
        ``lo + t`` and ``lo + (q - t)`` stay unreduced, so the value bound
        grows by ``q`` per stage.  An exact Python-int bound tracks when
        ``hi * tw`` could exceed 2^64 and forces a full reduction first
        (never for q below ~2^30 at practical ring sizes).  The final array
        is reduced once, so the output residues are bit-identical to the
        eagerly-reduced object path.  Stages ping-pong between two buffers
        to avoid per-stage concatenation.
        """
        n = self.n
        pre = a.shape[:-1]
        batch = int(np.prod(pre, dtype=np.int64)) if pre else 1
        # Batch-last working layout: transposing puts the transform axis
        # FIRST, so every stage's lo/hi slice is contiguous runs of
        # ``batch`` lanes — early stages (m = 1, 2, ...) would otherwise
        # stride through 2m-element blocks and defeat vectorisation exactly
        # where the batched engine wins.
        wb, buf, scratch, quot = self._work_bufs(batch)
        np.take(a.reshape(batch, n).T, _bitrev_indices(n), axis=0, out=wb)
        res, _ = self._butterfly(wb, buf, scratch, quot, forward)
        out = np.empty((batch, n), dtype=np.uint64)
        # Fuse the final reduction into the transpose-out copy.
        fast_mod_u64(res.T, self._qu, out)
        return out.reshape(pre + (n,))

    def _butterfly(self, w: np.ndarray, buf: np.ndarray, scratch: np.ndarray,
                   quot: np.ndarray, forward: bool) -> Tuple[np.ndarray, int]:
        """uint64 butterfly stages on a bit-reversed ``(n, batch)`` array.

        ``w`` must already be row-gathered by :func:`_bitrev_indices`; the
        stages ping-pong between ``w`` and ``buf`` (both engine-owned
        workspaces).  Returns the buffer holding the *unreduced* result and
        the exclusive value bound the caller must drain — fusing that last
        reduction into the copy that materialises the caller's output is
        what keeps every transform at one fresh allocation.
        """
        n = self.n
        q = self.q
        qu = self._qu
        batch = w.shape[1]
        tables = self._stages_fwd_u if forward else self._stages_inv_u
        omega_pows = self._omega if forward else self._omega_inv
        bound = q  # exclusive upper bound on the values currently in ``w``
        m = 1
        stage = 0
        while m < n:
            if tables is not None:
                tw = tables[stage]
            else:
                # On-the-fly generation: successive powers of the stage
                # root w^(n/(2m)) by running multiplication.
                stage_root = int(omega_pows[n // (2 * m)])
                tw = np.empty(m, dtype=np.uint64)
                cur = 1
                for j in range(m):
                    tw[j] = cur
                    cur = cur * stage_root % q
            if (bound - 1) * (q - 1) > _U64_MAX:
                w %= qu
                bound = q
            shape = (n // (2 * m), 2 * m, batch)
            va = w.reshape(shape)
            vb = buf.reshape(shape)
            lo = va[:, :m]
            t = scratch.reshape(n // (2 * m), m, batch)
            d = quot.reshape(n // (2 * m), m, batch)
            if m == 1:
                # First stage's only twiddle is w^0 = 1: the product (and
                # its reduction) is the identity, so butterfly directly on
                # the canonical inputs.
                np.add(lo, va[:, m:], out=vb[:, :m])
                np.subtract(qu, va[:, m:], out=t)
                np.add(lo, t, out=vb[:, m:])
                bound += q
            elif m == 2:
                # Second stage's twiddles are [1, w^(n/4)]: the even half
                # skips the multiply and reduction, but then stays lazily
                # unreduced below the entry bound — which here is always
                # exactly 2q (stage 1 grew it from q, and the guard above
                # cannot fire this early for q < 2^31), so the subtraction
                # complements against 2q and the bound grows by 2q.
                t[:, 0] = va[:, 2]
                np.multiply(va[:, 3], tw[1], out=t[:, 1])
                fast_mod_u64(t[:, 1], qu, t[:, 1], d[:, 1])
                np.add(lo, t, out=vb[:, :m])
                np.subtract(np.uint64(2 * q), t, out=t)
                np.add(lo, t, out=vb[:, m:])
                bound += 2 * q
            else:
                np.multiply(va[:, m:], tw[:, None], out=t)
                fast_mod_u64(t, qu, t, d)
                np.add(lo, t, out=vb[:, :m])
                np.subtract(qu, t, out=t)
                np.add(lo, t, out=vb[:, m:])
                bound += q
            w, buf = buf, w
            m *= 2
            stage += 1
        return w, bound

    def _cyclic(self, a: np.ndarray, omega_pows: np.ndarray) -> np.ndarray:
        """Iterative radix-2 DIT cyclic NTT on the last axis.

        ``omega_pows[k]`` must hold ``w^k`` for the transform direction's
        root ``w``.  Input is consumed in natural order; we bit-reverse
        first, then run log2(N) butterfly stages.  Each stage is expressed
        with the Section IV-D grouping: ``m`` butterflies share each
        twiddle ``w^{k * (n / (2m))}``.
        """
        n = self.n
        a = a[..., _bitrev_indices(n)].copy()
        q = self.q
        m = 1
        while m < n:
            # Twiddles for this stage: w^(j * n/(2m)) for j in [0, m).
            if self.twiddle_mode == "cached":
                tw = omega_pows[(np.arange(m) * (n // (2 * m)))]
            else:
                # On-the-fly generation: successive powers of the stage
                # root w^(n/(2m)) by running multiplication.
                stage_root = int(omega_pows[n // (2 * m)])
                tw = self.mod.zeros(m)
                cur = 1
                for j in range(m):
                    tw[j] = cur
                    cur = cur * stage_root % q
            a = a.reshape(a.shape[:-1] + (n // (2 * m), 2 * m))
            lo = a[..., :m]
            hi = a[..., m:]
            t = np.mod(hi * tw, q)
            a = np.concatenate(
                [
                    np.where(lo + t >= q, lo + t - q, lo + t),
                    np.where(lo - t < 0, lo - t + q, lo - t),
                ],
                axis=-1,
            )
            a = a.reshape(a.shape[:-2] + (n,))
            m *= 2
        return a


class StackedNttEngine:
    """One butterfly pass for a whole stack of limbs over *distinct* moduli.

    :class:`NttEngine` already vectorises over a batch axis for a single
    modulus; an RNS polynomial, however, is a stack of limbs each with its
    *own* prime, and transforming it limb-by-limb costs one Python-level
    engine call per limb — at small rings the interpreter overhead of
    those calls dominates the arithmetic.  This engine stacks the per-limb
    twist/twiddle tables into ``(L, ...)`` arrays with a per-row modulus
    vector and runs a single radix-2 pass over an ``(L, ..., N)`` tensor:
    the software analogue of the paper's memory layout that streams
    multiple limbs through the shared butterfly datapath per pass
    (Section IV-D).

    Bit-identity: every stage reduces the twiddle product eagerly and
    accumulates lazily exactly like :meth:`NttEngine._butterfly` (the
    bound grows by ``max(q)`` per stage and is drained once at the end),
    and modular arithmetic is exact, so row ``i`` of the output equals
    ``get_ntt_engine(n, moduli[i]).forward/inverse`` of row ``i``
    bit-for-bit (tests assert it).  Fast-path moduli only (q < 2^31).
    """

    def __init__(self, n: int, moduli: Sequence[int]):
        engines = [get_ntt_engine(n, int(q)) for q in moduli]
        if not all(e.mod.fast for e in engines):
            raise ParameterError("stacked NTT requires fast moduli (q < 2^31)")
        if not engines:
            raise ParameterError("stacked NTT needs at least one modulus")
        self.n = n
        self.moduli: Tuple[int, ...] = tuple(int(q) for q in moduli)
        self.rows = len(engines)
        self.max_q = max(self.moduli)
        # Per-row modulus vectors broadcasting over (L, B, N) / (L, B, g, 2m).
        qv = np.asarray(self.moduli, dtype=np.uint64)
        self._qv3 = qv.reshape(-1, 1, 1)
        self._qv4 = qv.reshape(-1, 1, 1, 1)
        self._psi_u = np.stack([e._psi_u for e in engines])[:, None, :]
        self._psi_inv_n_u = np.stack([e._psi_inv_n_u for e in engines])[:, None, :]
        # Stage tables stacked across rows: stage s holds a (L, m) array.
        self._stages_fwd = [np.stack(rows) for rows in
                            zip(*(e._stages_fwd_u for e in engines))]
        self._stages_inv = [np.stack(rows) for rows in
                            zip(*(e._stages_inv_u for e in engines))]

    # -- public API -----------------------------------------------------------

    def forward(self, stack: np.ndarray) -> np.ndarray:
        """Coefficient -> evaluation on an ``(L, ..., N)`` limb stack.

        Row ``i`` is transformed modulo ``moduli[i]``; middle axes are an
        ordinary batch.  Canonical ``int64`` in, canonical ``int64`` out.
        """
        arr = np.asarray(stack)
        _profile_ntt(self.n, arr)
        shape = arr.shape
        a = np.ascontiguousarray(arr, dtype=np.int64).view(np.uint64)
        a = a.reshape(self.rows, -1, self.n)
        # lazy-bound: canonical residue times psi^j (both < 2^31) fits
        # uint64; reduced immediately, so the butterfly starts canonical.
        a = (a * self._psi_u) % self._qv3
        a = a[..., _bitrev_indices(self.n)]
        w, _ = self._butterfly(a, forward=True)
        out = w % self._qv3
        return out.view(np.int64).reshape(shape)

    def inverse(self, stack: np.ndarray) -> np.ndarray:
        """Evaluation -> coefficient on an ``(L, ..., N)`` limb stack."""
        arr = np.asarray(stack)
        _profile_ntt(self.n, arr)
        shape = arr.shape
        a = np.ascontiguousarray(arr, dtype=np.int64).view(np.uint64)
        a = a.reshape(self.rows, -1, self.n)
        a = a[..., _bitrev_indices(self.n)]
        w, bound = self._butterfly(a, forward=False)
        if (bound - 1) * (self.max_q - 1) > _U64_MAX:
            w = w % self._qv3
        # Fused untwist + 1/N scaling on the unreduced butterfly output
        # (product bound checked above), one reduction at the end.
        out = (w * self._psi_inv_n_u) % self._qv3
        return out.view(np.int64).reshape(shape)

    # -- internals --------------------------------------------------------------

    def _butterfly(self, w: np.ndarray, forward: bool) -> Tuple[np.ndarray, int]:
        """Radix-2 DIT stages on a bit-reversed ``(L, B, N)`` uint64 stack.

        Identical lazy-reduction discipline to :meth:`NttEngine._butterfly`
        with the bound tracked against the *largest* row modulus: only the
        twiddle products are reduced (per row, via the broadcast modulus
        vector), sums stay unreduced and grow the bound by ``max_q`` per
        stage, and the guard forces a full reduction before any product
        could overflow 64 bits.  Returns the unreduced result plus its
        exclusive bound for the caller to drain.
        """
        n = self.n
        max_q = self.max_q
        tables = self._stages_fwd if forward else self._stages_inv
        bound = max_q
        m = 1
        for tw in tables:
            if (bound - 1) * (max_q - 1) > _U64_MAX:
                w = w % self._qv3
                bound = max_q
            v = w.reshape(self.rows, -1, n // (2 * m), 2 * m)
            lo = v[..., :m]
            hi = v[..., m:]
            if m == 1:
                # Stage-1 twiddle is w^0 = 1 for every row: inputs are
                # canonical, so the product/reduction is the identity.
                t = hi
            else:
                t = (hi * tw[:, None, None, :]) % self._qv4
            # lo - t realised as lo + (q - t) against the per-row modulus;
            # t is canonical so the complement stays non-negative.
            w = np.concatenate([lo + t, lo + (self._qv4 - t)], axis=-1)
            w = w.reshape(self.rows, -1, n)
            bound += max_q
            m *= 2
        return w, bound


_STACKED_CACHE: Dict[Tuple[int, Tuple[int, ...]], StackedNttEngine] = {}
_STACKED_CACHE_LOCK = threading.Lock()


def get_stacked_ntt_engine(n: int, moduli: Sequence[int]) -> StackedNttEngine:
    """Process-wide cache of stacked multi-modulus NTT engines.

    Lock-free on a hit (dict reads are atomic under the GIL); the miss
    path double-checks under a lock so two tenants racing on a cold key
    get the *same* engine instead of each publishing their own — the
    HL101 bug class PR 7 hit with concurrent service tenants.
    """
    key = (n, tuple(int(q) for q in moduli))
    engine = _STACKED_CACHE.get(key)
    if engine is None:
        with _STACKED_CACHE_LOCK:
            engine = _STACKED_CACHE.get(key)
            if engine is None:
                engine = StackedNttEngine(n, key[1])
                _STACKED_CACHE[key] = engine
    return engine


def naive_negacyclic_mul(a, b, q: int) -> np.ndarray:
    """Schoolbook ``O(N^2)`` negacyclic convolution — test reference only."""
    a = np.asarray(a, dtype=object)  # heaplint: disable=HL001 exact big-int test reference, never on a hot path
    b = np.asarray(b, dtype=object)  # heaplint: disable=HL001 exact big-int test reference, never on a hot path
    n = a.shape[-1]
    out = np.zeros(n, dtype=object)  # heaplint: disable=HL001 exact big-int test reference, never on a hot path
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return np.mod(out, q)


def naive_dft(a, q: int, root: int) -> np.ndarray:
    """Quadratic-time cyclic DFT used to validate the fast transform."""
    a = np.asarray(a, dtype=object)  # heaplint: disable=HL001 exact big-int test reference, never on a hot path
    n = len(a)
    out = np.zeros(n, dtype=object)  # heaplint: disable=HL001 exact big-int test reference, never on a hot path
    for k in range(n):
        acc = 0
        for j in range(n):
            acc += int(a[j]) * pow(root, j * k, q)
        out[k] = acc % q
    return out


def _profile_ntt(n: int, arr: np.ndarray) -> None:
    """Report transforms to the profiler (batch = product of lead dims).

    The batch size of every stacked call is recorded, not just the total:
    the profiler keeps a batch histogram so a run can be audited for how
    much of its transform work actually reached the vectorised ``(..., N)``
    interface (one ``_cyclic`` pass per stage for the whole stack) versus
    degenerate one-row calls.
    """
    from ..profiling import record_ntt

    batch = int(arr.size // n) if arr.size else 0
    if batch:
        record_ntt(n, batch)


_BITREV_CACHE: Dict[int, np.ndarray] = {}
_BITREV_CACHE_LOCK = threading.Lock()


def _bitrev_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation indices for length ``n`` (cached).

    Double-checked: the hit path stays lock-free, the build races behind
    a lock so every caller shares one (read-only) index table.
    """
    cached = _BITREV_CACHE.get(n)
    if cached is not None:
        return cached
    with _BITREV_CACHE_LOCK:
        cached = _BITREV_CACHE.get(n)
        if cached is not None:
            return cached
        bits = n.bit_length() - 1
        idx = np.arange(n)
        rev = np.zeros(n, dtype=np.int64)
        for _ in range(bits):
            rev = (rev << 1) | (idx & 1)
            idx >>= 1
        rev.setflags(write=False)
        _BITREV_CACHE[n] = rev
    return rev


_ENGINE_CACHE: Dict[Tuple[int, int], NttEngine] = {}
_ENGINE_CACHE_LOCK = threading.Lock()


def get_ntt_engine(n: int, q: int) -> NttEngine:
    """Process-wide cache of NTT engines (twiddle tables are expensive).

    Lock-free hit, double-checked miss: concurrent tenants on a cold key
    must converge on one engine (its thread-local workspaces make the
    *instance* safe to share; two half-built instances are not).
    """
    key = (n, q)
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        with _ENGINE_CACHE_LOCK:
            engine = _ENGINE_CACHE.get(key)
            if engine is None:
                engine = NttEngine(n, q)
                _ENGINE_CACHE[key] = engine
    return engine
