"""Evaluation metrics: amortised per-slot multiplication time (Eq. 3) and
cycle-normalised speedups.

The paper compares bootstrapping across systems with different slot
counts and frequencies, using::

    T_mult,a/slot = (T_BS + sum_i T_mult(i)) / (l * n)        (Eq. 3)

where ``l`` is the number of levels left after bootstrapping and ``n``
the slot count, and additionally reports *cycle* speedups that remove the
frequency difference between a 300 MHz FPGA and GHz-class ASICs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ParameterError


def t_mult_a_slot(t_bs_s: float, t_mult_per_level_s: Sequence[float],
                  slots: int) -> float:
    """Eq. 3: amortised per-slot multiplication time in seconds."""
    levels = len(t_mult_per_level_s)
    if levels == 0 or slots <= 0:
        raise ParameterError("need at least one level and one slot")
    return (t_bs_s + float(sum(t_mult_per_level_s))) / (levels * slots)


def speedup(other_s: float, ours_s: float) -> float:
    """Plain wall-clock speedup of us over the comparator."""
    if ours_s <= 0:
        raise ParameterError("latency must be positive")
    return other_s / ours_s


def cycle_speedup(other_s: float, other_freq_hz: float,
                  ours_s: float, ours_freq_hz: float) -> float:
    """Frequency-normalised speedup (paper's "Speedup (Cycles)" columns):
    compares cycle counts ``t * f`` instead of times."""
    if ours_s <= 0 or ours_freq_hz <= 0:
        raise ParameterError("latency and frequency must be positive")
    return (other_s * other_freq_hz) / (ours_s * ours_freq_hz)


def compute_to_bootstrap_ratio(total_s: float, bootstrap_s: float) -> float:
    """Paper Section VI-F: ratio of non-bootstrapping compute time to
    bootstrapping time within one application iteration."""
    if not 0 < bootstrap_s <= total_s:
        raise ParameterError("bootstrap time must be within (0, total]")
    return (total_s - bootstrap_s) / total_s / (bootstrap_s / total_s)


def geometric_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals or any(v <= 0 for v in vals):
        raise ParameterError("geometric mean needs positive values")
    prod = 1.0
    for v in vals:
        prod *= v
    return prod ** (1.0 / len(vals))
