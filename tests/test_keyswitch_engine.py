"""Batched hybrid-keyswitch engine vs the frozen scalar reference.

Every routed operation must be bit-identical between
``keyswitch_engine="batched"`` and ``"reference"`` — same limbs, same
canonical residues — at every level, for every digit-group count, and
for whole hoisted rotation sets.  Plus: the cached BConv plan against
the frozen oracle, the approximation-error bound against exact CRT, the
stacked NTT against the per-limb engines, and the new profiling
counters.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.ckks.bootstrap import (
    ConventionalBootstrapConfig,
    ConventionalBootstrapper,
    ConventionalBootstrapTrace,
    make_bootstrappable_toy_params,
)
from repro.ckks.context import CkksContext
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import CkksKeyGenerator
from repro.ckks.keyswitch import KeySwitcher
from repro.ckks.keyswitch_engine import CkksKeyswitchEngine
from repro.ckks.linear_transform import apply_matrix
from repro.errors import ParameterError
from repro.math.modular import find_ntt_primes
from repro.math.ntt import get_ntt_engine, get_stacked_ntt_engine
from repro.math.rns import (
    RnsBasis,
    RnsPoly,
    basis_convert,
    basis_convert_reference,
    get_bconv_plan,
)
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.profiling import count_ops


def _same_ct(a, b):
    return a.c0 == b.c0 and a.c1 == b.c1 and a.scale == b.scale


def _rand_poly(seed, n, basis, domain="eval"):
    rng = np.random.default_rng(seed)
    limbs = [np.asarray(rng.integers(0, q, n), dtype=np.int64)
             for q in basis.moduli]
    return RnsPoly(n, basis, limbs, domain)


def _setup(n=16, limbs=4, special=4, dnum=2, rotations=(), conjugate=False,
           seed=3):
    p = make_toy_params(n=n, limbs=limbs, limb_bits=28, special_limbs=special)
    ctx = CkksContext(p.ckks, dnum=dnum)
    gen = CkksKeyGenerator(ctx, Sampler(seed=seed))
    sk = gen.secret_key()
    keys = gen.keyset(sk, rotations=list(rotations), conjugate=conjugate)
    return ctx, sk, keys


class TestStackedNtt:
    def test_matches_per_limb_engines(self):
        n = 64
        moduli = find_ntt_primes(24, n, 4)
        eng = get_stacked_ntt_engine(n, moduli)
        rng = np.random.default_rng(0)
        x = np.stack([rng.integers(0, q, (3, n)).astype(np.int64)
                      for q in moduli])
        fwd = eng.forward(x)
        for i, q in enumerate(moduli):
            ref = get_ntt_engine(n, q).forward(x[i])
            assert np.array_equal(fwd[i], ref)
        assert np.array_equal(eng.inverse(fwd), x)

    def test_multi_axis_batch(self):
        n = 32
        moduli = find_ntt_primes(24, n, 3)
        eng = get_stacked_ntt_engine(n, moduli)
        rng = np.random.default_rng(1)
        x = np.stack([rng.integers(0, q, (2, 5, n)).astype(np.int64)
                      for q in moduli])
        fwd = eng.forward(x)
        for i, q in enumerate(moduli):
            ref = get_ntt_engine(n, q).forward(
                x[i].reshape(-1, n)).reshape(2, 5, n)
            assert np.array_equal(fwd[i], ref)

    def test_wide_moduli_rejected(self):
        with pytest.raises(ParameterError):
            get_stacked_ntt_engine(16, [(1 << 36) - 5])


class TestBconvPlan:
    def test_plan_matches_frozen_oracle(self):
        n = 32
        primes = find_ntt_primes(24, n, 6)
        src = RnsBasis(primes[:4])
        dst = RnsBasis(primes[4:])
        poly = _rand_poly(2, n, src, domain="coeff")
        fast = basis_convert(poly, dst)
        ref = basis_convert_reference(poly, dst)
        assert fast == ref
        for x, y in zip(fast.limbs, ref.limbs):
            assert np.array_equal(np.asarray(x, dtype=np.int64),
                                  np.asarray(y, dtype=np.int64))

    def test_plan_is_cached(self):
        primes = find_ntt_primes(24, 16, 4)
        with count_ops() as stats:
            a = get_bconv_plan(primes[:2], primes[2:])
            b = get_bconv_plan(primes[:2], primes[2:])
        assert a is b
        assert stats.bconv_plan_hits >= 1

    def test_wide_fallback_matches_oracle(self):
        src = RnsBasis([(1 << 36) - 5, (1 << 36) - 17])
        dst = RnsBasis([(1 << 36) - 35])
        rng = np.random.default_rng(4)
        coeffs = [int(x) % src.product
                  for x in rng.integers(0, 2**62, 8, dtype=np.int64)]
        poly = RnsPoly.from_int_coeffs(8, src, coeffs)
        assert basis_convert(poly, dst) == basis_convert_reference(poly, dst)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**40 - 1), st.integers(2, 4))
    def test_approximation_error_bounded(self, seed, limbs_in):
        """BConv differs from the exact CRT value by k*Q with 0 <= k <= L."""
        n = 8
        primes = find_ntt_primes(24, n, limbs_in + 2)
        src = RnsBasis(primes[:limbs_in])
        dst = RnsBasis(primes[limbs_in:])
        poly = _rand_poly(seed, n, src, domain="coeff")
        exact = poly.to_int_coeffs()          # in [0, Q)
        approx = basis_convert(poly, dst)
        big_q = src.product
        for j, pj in enumerate(dst.moduli):
            got = np.asarray(approx.limbs[j], dtype=object)
            for col in range(n):
                # got = (exact + k*Q) mod p_j for some 0 <= k <= L.
                ks = [k for k in range(limbs_in + 1)
                      if (int(exact[col]) + k * big_q) % pj == int(got[col])]
                assert ks, "no k in [0, L] explains the BConv output"


class TestSwitchBitIdentity:
    @pytest.mark.parametrize("dnum", [1, 2, 3, 4])
    def test_relin_switch_all_levels(self, dnum):
        ctx, sk, keys = _setup(dnum=dnum)
        ref = KeySwitcher(ctx, engine="reference")
        bat = KeySwitcher(ctx, engine="batched")
        assert bat.engine is not None
        for level in range(ctx.max_level + 1):
            basis = ctx.basis_at_level(level)
            d = _rand_poly(level + 10, ctx.n, basis)
            r0, r1 = ref.switch(d, keys.relin)
            b0, b1 = bat.switch(d, keys.relin)
            assert r0 == b0 and r1 == b1

    def test_mod_down_dispatch_identity(self):
        ctx, sk, keys = _setup()
        ref = KeySwitcher(ctx, engine="reference")
        bat = KeySwitcher(ctx, engine="batched")
        from repro.math.rns import concat_bases
        for level in (0, ctx.max_level):
            target = ctx.basis_at_level(level)
            ext = concat_bases(target, ctx.special_basis)
            u = _rand_poly(level + 30, ctx.n, ext)
            assert bat.mod_down(u, target) == ref.mod_down(u, target)

    def test_wide_moduli_fall_back_to_reference(self):
        from repro.params import CkksParams
        from repro.math.modular import find_ntt_primes as fp
        n = 16
        wide = fp(33, n, 3)
        specials = fp(33, n, 2, skip=3)
        params = CkksParams(n=n, moduli=wide, special_moduli=specials,
                            scale_bits=26)
        ctx = CkksContext(params, dnum=2)
        sw = KeySwitcher(ctx, engine="batched")
        assert sw.engine is None  # scalar fallback, still correct

    def test_unknown_engine_rejected(self):
        ctx, _, _ = _setup()
        with pytest.raises(ParameterError):
            KeySwitcher(ctx, engine="nope")


class TestEvaluatorBitIdentity:
    def _pair(self, ctx, keys, seed=9):
        ev_b = CkksEvaluator(ctx, keys, sampler=Sampler(seed=seed))
        ev_r = CkksEvaluator(ctx, keys, sampler=Sampler(seed=seed),
                             keyswitch_engine="reference")
        return ev_b, ev_r

    def test_rotate_conjugate_mul(self):
        ctx, sk, keys = _setup(n=64, limbs=4, special=2,
                               rotations=[1, 2, 3, 5], conjugate=True)
        ev_b, ev_r = self._pair(ctx, keys)
        vals = np.arange(ctx.slots) * 0.01 + 0.5
        ct_b, ct_r = ev_b.encrypt(vals), ev_r.encrypt(vals)
        assert _same_ct(ct_b, ct_r)
        for r in (1, 2, 3, 5):
            assert _same_ct(ev_b.rotate(ct_b, r), ev_r.rotate(ct_r, r))
        assert _same_ct(ev_b.conjugate(ct_b), ev_r.conjugate(ct_r))
        m_b = ev_b.mul_relin_rescale(ct_b, ct_b)
        m_r = ev_r.mul_relin_rescale(ct_r, ct_r)
        assert _same_ct(m_b, m_r)
        # At a dropped level too.
        assert _same_ct(ev_b.rotate(m_b, 2), ev_r.rotate(m_r, 2))

    @pytest.mark.parametrize("rots", [[1], [1, 2, 3], [1, 2, 3, 5, 7]])
    def test_hoisted_rotation_sets(self, rots):
        ctx, sk, keys = _setup(n=64, limbs=4, special=2,
                               rotations=rots)
        ev_b, ev_r = self._pair(ctx, keys)
        vals = np.linspace(-1, 1, ctx.slots)
        ct_b, ct_r = ev_b.encrypt(vals), ev_r.encrypt(vals)
        hb = ev_b.rotate_hoisted(ct_b, rots)
        hr = ev_r.rotate_hoisted(ct_r, rots)
        for r in rots:
            assert _same_ct(hb[r], hr[r])

    def test_hoisted_empty_set(self):
        ctx, sk, keys = _setup(n=64, limbs=4, special=2)
        ev_b, _ = self._pair(ctx, keys)
        assert ev_b.rotate_hoisted(ev_b.encrypt([0.1]), []) == {}

    def test_hoisted_values_decrypt_like_rotate(self):
        """Hoisted and plain rotation agree in value (not bitwise)."""
        ctx, sk, keys = _setup(n=64, limbs=4, special=2, rotations=[1, 3])
        ev_b, _ = self._pair(ctx, keys)
        vals = np.linspace(-1, 1, ctx.slots)
        ct = ev_b.encrypt(vals)
        hoisted = ev_b.rotate_hoisted(ct, [1, 3])
        for r in (1, 3):
            a = ev_b.decrypt(hoisted[r], sk)
            b = ev_b.decrypt(ev_b.rotate(ct, r), sk)
            assert np.allclose(a, b, atol=1e-2)


class TestBsgsAndBootstrap:
    @pytest.mark.parametrize("n", [1 << 6, 1 << 7, 1 << 8])
    def test_apply_matrix_identity(self, n):
        from repro.ckks.linear_transform import required_rotations
        p = make_toy_params(n=n, limbs=3, limb_bits=28, special_limbs=2)
        ctx = CkksContext(p.ckks, dnum=2)
        gen = CkksKeyGenerator(ctx, Sampler(seed=5))
        sk = gen.secret_key()
        keys = gen.keyset(sk, rotations=required_rotations(ctx.slots))
        ev_b = CkksEvaluator(ctx, keys, sampler=Sampler(seed=7))
        ev_r = CkksEvaluator(ctx, keys, sampler=Sampler(seed=7),
                             keyswitch_engine="reference")
        rng = np.random.default_rng(n)
        m = rng.normal(size=(ctx.slots, ctx.slots)) / ctx.slots
        vals = np.linspace(-1, 1, ctx.slots)
        ct_b, ct_r = ev_b.encrypt(vals), ev_r.encrypt(vals)
        out_b = apply_matrix(ev_b, ct_b, m)
        out_r = apply_matrix(ev_r, ct_r, m)
        assert _same_ct(out_b, out_r)
        got = ev_b.decrypt(out_b, sk).real
        assert np.allclose(got, m @ vals, atol=1e-2)

    def test_conventional_bootstrap_end_to_end(self):
        params = make_bootstrappable_toy_params(n=32, levels=17)
        ctx = CkksContext(params, dnum=2)
        gen = CkksKeyGenerator(ctx, Sampler(seed=11))
        sk = gen.secret_key()
        rots = ConventionalBootstrapper.required_rotation_indices(ctx)
        keys = gen.keyset(sk, rotations=rots, conjugate=True)
        cfg = ConventionalBootstrapConfig()
        ev_b = CkksEvaluator(ctx, keys, scale_rtol=5e-2)
        ev_r = CkksEvaluator(ctx, keys, scale_rtol=5e-2,
                             keyswitch_engine="reference")
        boot_b = ConventionalBootstrapper(ctx, keys, cfg, evaluator=ev_b)
        boot_r = ConventionalBootstrapper(ctx, keys, cfg, evaluator=ev_r)
        vals = np.linspace(-0.4, 0.4, ctx.slots)
        ct0 = ev_b.drop_to_level(ev_b.encrypt(vals), 0)
        tr_b = ConventionalBootstrapTrace()
        out_b = boot_b.bootstrap(ct0, tr_b)
        out_r = boot_r.bootstrap(ct0)
        assert out_b.c0 == out_r.c0 and out_b.c1 == out_r.c1
        # Step wall-clock breakdown is populated for every pipeline step.
        for step in ("ModRaise", "CoeffToSlot", "EvalMod", "SlotToCoeff"):
            assert tr_b.step_seconds.get(step, 0.0) > 0.0
        got = boot_b.ev.decrypt(out_b, sk).real
        assert np.allclose(got, vals, atol=0.05)


class TestProfilingCounters:
    def test_keyswitch_counters_recorded(self):
        ctx, sk, keys = _setup(n=64, limbs=4, special=2, rotations=[1, 2, 3])
        ev = CkksEvaluator(ctx, keys, sampler=Sampler(seed=1))
        ct = ev.encrypt(np.linspace(-1, 1, ctx.slots))
        with count_ops() as stats:
            ev.rotate_hoisted(ct, [1, 2, 3])
        assert stats.ks_modup_macs > 0
        assert stats.ks_moddown_macs > 0
        assert stats.ks_hoisted_rotations == 3
        assert stats.ks_ntt_saved > 0
        assert stats.bconv_plan_hits > 0

    def test_key_tensor_cached_on_key(self):
        ctx, sk, keys = _setup(n=64, limbs=4, special=2)
        eng = CkksKeyswitchEngine.for_context(ctx)
        d = _rand_poly(0, ctx.n, ctx.full_basis)
        eng.switch(d, keys.relin)
        assert len(keys.relin._eval_tensors) == 1
        eng.switch(d, keys.relin)
        assert len(keys.relin._eval_tensors) == 1

    def test_restricted_key_cached(self):
        ctx, sk, keys = _setup()
        sw = KeySwitcher(ctx, engine="reference")
        basis = ctx.basis_at_level(1)
        d = _rand_poly(1, ctx.n, basis)
        sw.switch(d, keys.relin)
        sw.switch(d, keys.relin)
        assert len(keys.relin._restricted) == 1
