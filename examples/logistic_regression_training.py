#!/usr/bin/env python3
"""Encrypted logistic-regression training (the paper's LR workload).

Trains a binary classifier on encrypted data, HELR-style: minibatch
packed in CKKS slots, degree-3 polynomial sigmoid, gradient step fully
under encryption, and a scheme-switching bootstrap refreshing the weight
ciphertext between iterations — "30 iterations and a bootstrapping
operation after every iteration" in the paper, two iterations here at
toy ring size.  Ends with the Table VI hardware-model prediction for the
production-scale run.
"""

import numpy as np

from repro.apps import (
    EncryptedLogisticRegression,
    PlaintextLogisticRegression,
    lr_iteration_model,
    synthetic_mnist_3v8,
    train_test_split,
)
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.ckks.bootstrap import make_bootstrappable_toy_params
from repro.hardware import ClusterBootstrapModel, SingleFpgaModel
from repro.math.sampling import Sampler
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet


def main() -> None:
    # -- plaintext reference at the paper's dataset shape ------------------------
    ds = synthetic_mnist_3v8(num_samples=2000)
    train, test = train_test_split(ds)
    ref = PlaintextLogisticRegression(ds.num_features, lr=2.0)
    ref.train(train, iterations=30, batch_size=512)
    print(f"plaintext LR on synthetic MNIST-3v8 shape: "
          f"{100 * ref.accuracy(test):.1f}% accuracy after 30 iterations "
          f"(paper reports ~97%)")

    # -- encrypted training at toy scale -------------------------------------------
    f, b = 2, 4
    params = make_bootstrappable_toy_params(n=16, levels=8, delta_bits=22,
                                            q0_bits=28)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(31))
    sk = gen.secret_key()
    rots = set()
    shift = 1
    while shift < f:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    shift = f
    while shift < f * b:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    keys = gen.keyset(sk, rotations=sorted(rots))
    ev = CkksEvaluator(ctx, keys, Sampler(32), scale_rtol=5e-2)
    print("generating switching keys for the in-loop bootstrap...")
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(33), base_bits=4,
                                   error_std=0.8)
    boot = SchemeSwitchBootstrapper(ctx, swk)
    trainer = EncryptedLogisticRegression(ctx, ev, f, b, lr=0.5,
                                          bootstrapper=boot)

    rng = np.random.default_rng(7)
    plain = PlaintextLogisticRegression(f, lr=0.5)
    ct_w = ev.encrypt(trainer.pack_weights(np.zeros(f)))
    for it in range(2):
        x = rng.uniform(-1, 1, (b, f))
        y = rng.integers(0, 2, b).astype(float)
        plain.iterate(x, y)
        ct_w = trainer.iterate(ct_w, x, y)
        print(f"iteration {it}: encrypted weights at level {ct_w.level}")
        if ct_w.level < 6:
            ct_w = trainer._refresh(ct_w)
            print(f"  scheme-switching bootstrap -> level {ct_w.level}")
    got = trainer.unpack_weights(ev.decrypt(ct_w, sk))
    print(f"encrypted weights: {np.round(got, 4)}")
    print(f"plaintext weights: {np.round(plain.w, 4)}")
    print(f"max deviation: {np.max(np.abs(got - plain.w)):.4f}")

    # -- Table VI prediction at production scale ---------------------------------------
    total, share = lr_iteration_model(SingleFpgaModel(), ClusterBootstrapModel())
    print(f"\nhardware model, production scale (N=2^13, 8 FPGAs, 256 slots): "
          f"{total * 1e3:.2f} ms/iteration, {100 * share:.0f}% in bootstrapping "
          f"(paper: 7 ms, ~21%)")


if __name__ == "__main__":
    main()
