"""Single-FPGA latency model with explicit calibration against Table III/IV.

:class:`SingleFpgaModel` exposes every primitive's latency in seconds.
It is built in two layers:

* the *raw* layer is :class:`~repro.hardware.opmodel.HeapOpModel` —
  first-principles cycle counts;
* the *calibrated* layer multiplies each primitive by an efficiency
  factor fit once against the paper's own single-FPGA microbenchmarks
  (Table III for Add/Mult/Rescale/Rotate/BlindRotate, Table IV for NTT).

Both numbers are always available (``raw_latency_s`` vs ``latency_s``)
and the fit residuals are reported by :meth:`calibration_report`, which
EXPERIMENTS.md quotes — notably the BlindRotate entry, where the paper's
0.06 ms is far below a compute-bound estimate of the datapath it
describes (see the discussion there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ParameterError
from ..params import HeapParams, make_heap_params
from .baselines import HEAP_NTT_THROUGHPUT, HEAP_TABLE3
from .config import HeapHwConfig
from .opmodel import HeapOpModel, OpCost

#: Primitives with a Table III anchor.
_ANCHORED = ("add", "mult", "rescale", "rotate", "blind_rotate")


@dataclass
class CalibrationEntry:
    op: str
    raw_cycles: float
    paper_cycles: float

    @property
    def efficiency(self) -> float:
        """paper / raw: > 1 means the paper is slower than first principles
        (pipeline bubbles etc.); < 1 means the paper reports a latency the
        described datapath cannot reach compute-bound — a repro finding."""
        return self.paper_cycles / self.raw_cycles


class SingleFpgaModel:
    """Latencies of HEAP primitives on one FPGA."""

    def __init__(self, hw: Optional[HeapHwConfig] = None,
                 params: Optional[HeapParams] = None,
                 calibrated: bool = True):
        self.hw = hw or HeapHwConfig()
        self.params = params or make_heap_params()
        self.op_model = HeapOpModel(self.hw, self.params.ckks, self.params.tfhe)
        self.calibrated = calibrated
        self._calibration = self._fit_calibration()

    # -- calibration -------------------------------------------------------------------

    def _raw_cost(self, op: str, **kw) -> OpCost:
        if op == "add":
            return self.op_model.add()
        if op == "mult":
            return self.op_model.mult()
        if op == "rescale":
            return self.op_model.rescale()
        if op == "rotate":
            return self.op_model.rotate()
        if op == "blind_rotate":
            return self.op_model.blind_rotate(batch=1)
        if op == "ntt":
            return self.op_model.ntt(limbs=1)
        if op == "keyswitch":
            return self.op_model.keyswitch()
        raise ParameterError(f"unknown op {op!r}")

    def _fit_calibration(self) -> Dict[str, CalibrationEntry]:
        table = {}
        for op in _ANCHORED:
            raw = self._raw_cost(op).latency_cycles
            paper = HEAP_TABLE3[op] * self.hw.kernel_freq_hz
            table[op] = CalibrationEntry(op=op, raw_cycles=raw, paper_cycles=paper)
        # NTT anchored on Table IV throughput.
        raw_ntt = self._raw_cost("ntt").latency_cycles
        paper_ntt = self.hw.kernel_freq_hz / HEAP_NTT_THROUGHPUT
        table["ntt"] = CalibrationEntry("ntt", raw_ntt, paper_ntt)
        # Keyswitch inherits the mult factor (same datapath dominates).
        ks_raw = self._raw_cost("keyswitch").latency_cycles
        table["keyswitch"] = CalibrationEntry(
            "keyswitch", ks_raw, ks_raw * table["mult"].efficiency)
        return table

    def calibration_report(self) -> Dict[str, CalibrationEntry]:
        return dict(self._calibration)

    # -- latency API ------------------------------------------------------------------------

    def cycles(self, op: str, **kw) -> float:
        raw = self._raw_cost(op, **kw).latency_cycles
        if not self.calibrated:
            return raw
        entry = self._calibration.get(op)
        return raw * entry.efficiency if entry else raw

    def latency_s(self, op: str, **kw) -> float:
        return self.hw.cycles_to_seconds(self.cycles(op, **kw))

    def raw_latency_s(self, op: str, **kw) -> float:
        return self.hw.cycles_to_seconds(self._raw_cost(op, **kw).latency_cycles)

    # -- batched BlindRotate (the Section IV-E schedule) ------------------------------------

    def blind_rotate_batch_s(self, batch: int, resident_keys: bool = False) -> float:
        """A batch of BlindRotates with keys fetched once for the batch.

        Calibrated so that a batch of 1 matches the Table III anchor and
        the marginal per-ciphertext cost scales with the compute model;
        key traffic is paid once per batch.
        """
        raw_one = self.op_model.blind_rotate(1, resident_keys=True).latency_cycles
        eff = self._calibration["blind_rotate"].efficiency if self.calibrated else 1.0
        compute = raw_one * eff * batch
        key_cycles = 0.0
        if not resident_keys:
            key_bytes = self.params.tfhe.blind_rotate_key_bytes()
            key_cycles = key_bytes / self.hw.hbm_bytes_per_cycle
        # Roofline: the batch schedule streams keys while computing.
        return self.hw.cycles_to_seconds(max(compute, key_cycles))

    # -- NTT throughput (Table IV) -------------------------------------------------------------

    def ntt_throughput_ops_per_s(self) -> float:
        return 1.0 / self.latency_s("ntt")
