"""GLWE (RLWE) key switching via gadget decomposition.

The paper (Section VII-A) describes the TFHE KeySwitch as "Decomposition
+ ExternalProduct with the evaluation keys" — exactly what this module
does.  The primary client is the automorphism evaluation needed by the
LWE-to-RLWE repacking (Chen et al. [11]): applying ``X -> X^t`` to a
ciphertext leaves it encrypted under ``s(X^t)``, and a
:class:`GlweKeySwitchKey` for payload ``s(X^t)`` brings it back under
``s``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import KeyError_, ParameterError
from ..math.automorphism import get_automorphism_perm
from ..math.gadget import GadgetVector
from ..math.rns import RnsBasis, RnsPoly
from ..math.sampling import Sampler, derive_seed, mask_stream
from .glwe import (GlweCiphertext, GlweSecretKey, draw_uniform_masks,
                   glwe_encrypt, glwe_encrypt_seeded)


@dataclass
class GlweKeySwitchKey:
    """Digit-wise encryptions of ``g_k * payload`` under the target key."""

    rows: List[GlweCiphertext]
    gadget: GadgetVector

    @classmethod
    def generate(cls, payload_coeffs: np.ndarray, sk_dst: GlweSecretKey,
                 basis: RnsBasis, gadget: GadgetVector, sampler: Sampler,
                 error_std: Optional[float] = None) -> "GlweKeySwitchKey":
        n = sk_dst.n
        rows = []
        for g in gadget.factors():
            msg = RnsPoly.from_int_coeffs(
                n, basis, (np.asarray(payload_coeffs, dtype=object) * g) % basis.product
            )
            rows.append(glwe_encrypt(msg, sk_dst, sampler, error_std).to_eval())
        return cls(rows=rows, gadget=gadget)

    @classmethod
    def generate_seeded(cls, payload_coeffs: np.ndarray, sk_dst: GlweSecretKey,
                        basis: RnsBasis, gadget: GadgetVector, mask_rng: Sampler,
                        noise: Sampler,
                        error_std: Optional[float] = None) -> "GlweKeySwitchKey":
        """Seeded variant: every row's uniform masks come from one
        replayable ``mask_rng`` stream (digit order, then
        :func:`~repro.tfhe.glwe.draw_uniform_masks` order within the row),
        so only the ``d`` bodies plus the seed need to be stored."""
        n = sk_dst.n
        rows = []
        for g in gadget.factors():
            msg = RnsPoly.from_int_coeffs(
                n, basis, (np.asarray(payload_coeffs, dtype=object) * g) % basis.product
            )
            rows.append(glwe_encrypt_seeded(msg, sk_dst, mask_rng, noise, error_std))
        return cls(rows=rows, gadget=gadget)

    def bodies(self) -> List[RnsPoly]:
        """Stored half of the seed+``b`` form, digit order."""
        return [row.body for row in self.rows]


def expand_glwe_keyswitch_key(mask_rng: Sampler, bodies: List[RnsPoly], h: int,
                              basis: RnsBasis,
                              gadget: GadgetVector) -> GlweKeySwitchKey:
    """Rebuild a seeded key-switch key bit-identically from seed + bodies."""
    if len(bodies) != gadget.digits:
        raise ParameterError("seeded key-switch body count does not match gadget digits")
    n = bodies[0].n
    rows = [GlweCiphertext(mask=draw_uniform_masks(mask_rng, h, n, basis), body=b)
            for b in bodies]
    return GlweKeySwitchKey(rows=rows, gadget=gadget)


def glwe_keyswitch(d: RnsPoly, body: RnsPoly, ksk: GlweKeySwitchKey) -> GlweCiphertext:
    """Rebase ``(d, body)`` where the phase is ``body + d * payload``.

    Decomposes ``d`` into gadget digits and MACs against the key rows;
    output decrypts (under the key's target secret) to
    ``body + d * payload`` plus decomposition noise.
    """
    basis = d.basis
    n = d.n
    coeffs = d.to_coeff().to_int_coeffs()
    digit_vecs = ksk.gadget.decompose(coeffs)
    acc = GlweCiphertext.trivial(body.to_eval(), h=ksk.rows[0].h)
    for dv, row in zip(digit_vecs, ksk.rows):
        digit_poly = RnsPoly.from_int_coeffs(n, basis, dv).to_eval()
        acc = acc + row.mul_poly(digit_poly)
    return acc


@dataclass
class AutomorphismKeySet:
    """Key-switch keys for a set of automorphism exponents ``t``."""

    keys: Dict[int, GlweKeySwitchKey]
    #: Per-exponent mask seeds when the set was generated seeded
    #: (``derive_seed(key_seed, "auto", t)``); ``None`` for eager keys.
    mask_seeds: Optional[Dict[int, int]] = field(
        default=None, repr=False, compare=False)

    @classmethod
    def generate(cls, sk: GlweSecretKey, exponents: List[int], basis: RnsBasis,
                 gadget: GadgetVector, sampler: Sampler,
                 error_std: Optional[float] = None) -> "AutomorphismKeySet":
        if sk.h != 1:
            raise ParameterError("automorphism keys assume an RLWE (h=1) key")
        n = sk.n
        keys = {}
        for t in set(exponents):
            rotated = _int_automorphism(sk.coeffs[0], t)
            keys[t] = GlweKeySwitchKey.generate(rotated, sk, basis, gadget,
                                                sampler, error_std)
        return cls(keys=keys)

    @classmethod
    def generate_seeded(cls, sk: GlweSecretKey, exponents: List[int],
                        basis: RnsBasis, gadget: GadgetVector, key_seed: int,
                        noise: Sampler,
                        error_std: Optional[float] = None) -> "AutomorphismKeySet":
        """Seeded variant: exponent ``t``'s masks stream from
        ``derive_seed(key_seed, "auto", t)`` — each key expands
        independently, which is what lets the streaming provider
        materialise exactly the exponents a workload touches."""
        if sk.h != 1:
            raise ParameterError("automorphism keys assume an RLWE (h=1) key")
        keys = {}
        seeds = {}
        for t in sorted(set(exponents)):
            rotated = _int_automorphism(sk.coeffs[0], t)
            seeds[t] = derive_seed(key_seed, "auto", t)
            keys[t] = GlweKeySwitchKey.generate_seeded(
                rotated, sk, basis, gadget, mask_stream(seeds[t]), noise, error_std)
        return cls(keys=keys, mask_seeds=seeds)

    def key_for(self, t: int) -> GlweKeySwitchKey:
        key = self.keys.get(t)
        if key is None:
            raise KeyError_(f"missing automorphism key for exponent {t}")
        return key


def eval_automorphism(ct: GlweCiphertext, t: int,
                      keys: AutomorphismKeySet) -> GlweCiphertext:
    """Homomorphic ``m(X) -> m(X^t)`` on an RLWE ciphertext."""
    if ct.h != 1:
        raise ParameterError("eval_automorphism expects an RLWE ciphertext")
    rotated = ct.automorphism(t)
    return glwe_keyswitch(rotated.mask[0], rotated.body, keys.key_for(t))


def _int_automorphism(coeffs: np.ndarray, t: int) -> np.ndarray:
    """``X -> X^t`` on exact integer coefficients as one signed gather.

    The seed walked the ``n`` coefficients in a Python loop; the cached
    :class:`~repro.math.automorphism.AutomorphismPerm` (shared with
    :meth:`RnsPoly.automorphism` and the repack engine) turns it into a
    fancy-index gather plus a sign select.  Raises for even ``t`` (not a
    ring automorphism), exactly as before.
    """
    coeffs = np.asarray(coeffs, dtype=object)
    perm = get_automorphism_perm(len(coeffs), t)
    picked = coeffs[perm.src]
    return np.where(perm.src_flip, -picked, picked)
