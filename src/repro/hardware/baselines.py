"""Published comparator numbers from the paper's evaluation tables.

Every system HEAP is compared against is wrapped as a
:class:`ReferencePoint` carrying its published latencies exactly as the
paper's tables report them (we cannot re-run Lattigo, cuFHE or the ASIC
simulators here; the paper itself compares against these published
numbers, and so do we).  The speedup columns of Tables III-VII are then
*recomputed* from these constants and our model's HEAP numbers — the
benches assert the recomputation reproduces the paper's ratios.

An executable FAB-style model is also provided: FAB runs *conventional*
bootstrapping on the same FPGA family, so its op counts can be derived
from our conventional-bootstrap implementation and the paper's FAB
figures used as the calibration anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

MS = 1e-3
US = 1e-6


@dataclass(frozen=True)
class ReferencePoint:
    """One comparator system with its published figures."""

    name: str
    platform: str
    freq_ghz: float
    slots: Optional[int] = None
    #: metric name -> seconds (or stated unit in the key).
    metrics: Dict[str, float] = field(default_factory=dict)
    note: str = ""

    def metric(self, key: str) -> float:
        return self.metrics[key]


# -- Table III: basic op latencies (ms -> s), comparators at their own params. --

TABLE3_REFERENCES = [
    ReferencePoint("FAB", "FPGA", 0.3, metrics={
        "add": 0.04 * MS, "mult": 1.71 * MS, "rescale": 0.19 * MS,
        "rotate": 1.57 * MS}, note="N=2^16, logQ=1728, 128-bit"),
    ReferencePoint("GPU", "GPU", 1.2, metrics={
        "add": 0.16 * MS, "mult": 2.96 * MS, "rescale": 0.49 * MS,
        "rotate": 2.55 * MS}, note="Jung et al., N=2^16, logQ=1693, 100-bit"),
    ReferencePoint("GME", "GPU", 1.5, metrics={
        "add": 0.028 * MS, "mult": 0.464 * MS, "rescale": 0.069 * MS,
        "rotate": 0.364 * MS}, note="N=2^16, logQ=1728, 128-bit"),
    ReferencePoint("TFHE-lib", "CPU", 3.5, metrics={
        "blind_rotate": 9.40 * MS}, note="TFHE reference library"),
]

#: HEAP's own Table III numbers (single FPGA) — calibration anchors.
HEAP_TABLE3 = {
    "add": 0.001 * MS,
    "mult": 0.028 * MS,
    "rescale": 0.010 * MS,
    "rotate": 0.025 * MS,
    "blind_rotate": 0.060 * MS,
}

# -- Table IV: NTT throughput (ops/second), N=2^13, logQ=218. --

TABLE4_REFERENCES = [
    ReferencePoint("FAB", "FPGA", 0.3, metrics={"ntt_ops_per_s": 103e3}),
    ReferencePoint("HEAX", "FPGA", 0.3, metrics={"ntt_ops_per_s": 90e3}),
]
HEAP_NTT_THROUGHPUT = 210e3

# -- Table V: bootstrapping T_mult,a/slot (microseconds) --

TABLE5_REFERENCES = [
    ReferencePoint("Lattigo", "CPU", 3.5, slots=2**15,
                   metrics={"t_mult_a_slot": 101.78 * US}),
    ReferencePoint("GPU", "GPU", 1.2, slots=2**15,
                   metrics={"t_mult_a_slot": 0.716 * US}),
    ReferencePoint("GME", "GPU", 1.5, slots=2**16,
                   metrics={"t_mult_a_slot": 0.074 * US}),
    ReferencePoint("F1", "ASIC", 1.0, slots=1,
                   metrics={"t_mult_a_slot": 254.46 * US},
                   note="single-slot bootstrapping only"),
    ReferencePoint("BTS-2", "ASIC", 1.2, slots=2**16,
                   metrics={"t_mult_a_slot": 0.0455 * US}),
    ReferencePoint("CraterLake", "ASIC", 1.0, slots=2**15,
                   metrics={"t_mult_a_slot": 4.19 * US}),
    ReferencePoint("ARK", "ASIC", 1.0, slots=2**15,
                   metrics={"t_mult_a_slot": 0.014 * US}),
    ReferencePoint("SHARP", "ASIC", 1.0, slots=2**15,
                   metrics={"t_mult_a_slot": 0.012 * US}),
    ReferencePoint("FAB", "FPGA", 0.3, slots=2**15,
                   metrics={"t_mult_a_slot": 0.477 * US}),
]
HEAP_TABLE5 = ReferencePoint("HEAP", "FPGA", 0.3, slots=2**12,
                             metrics={"t_mult_a_slot": 0.031 * US})

#: Paper Section VI-E: the 1.5 ms bootstrap split over Algorithm 2 steps.
HEAP_BOOTSTRAP_SPLIT_MS = {"steps_1_2": 0.0025, "step_3": 1.3303,
                           "steps_4_5": 0.1672, "total": 1.5}

# -- Table VI: LR training time per iteration (seconds). --

TABLE6_REFERENCES = [
    ReferencePoint("Lattigo", "CPU", 3.5, metrics={"lr_iter": 37.05}),
    ReferencePoint("GPU", "GPU", 1.2, metrics={"lr_iter": 0.775}),
    ReferencePoint("GME", "GPU", 1.5, metrics={"lr_iter": 0.054}),
    ReferencePoint("F1", "ASIC", 1.0, metrics={"lr_iter": 1.024}),
    ReferencePoint("BTS-2", "ASIC", 1.2, metrics={"lr_iter": 0.028}),
    ReferencePoint("ARK", "ASIC", 1.0, metrics={"lr_iter": 0.008}),
    ReferencePoint("SHARP", "ASIC", 1.0, metrics={"lr_iter": 0.002}),
    ReferencePoint("FAB", "FPGA", 0.3, metrics={"lr_iter": 0.103}),
    ReferencePoint("FAB-2", "FPGA", 0.3, metrics={"lr_iter": 0.081},
                   note="eight-FPGA FAB"),
]
HEAP_LR_ITER_S = 0.007

# -- Table VII: ResNet-20 inference (seconds). --

TABLE7_REFERENCES = [
    ReferencePoint("CPU", "CPU", 3.5, metrics={"resnet": 10602.0},
                   note="Lee et al. [40]"),
    ReferencePoint("GME", "GPU", 1.5, metrics={"resnet": 0.982}),
    ReferencePoint("CraterLake", "ASIC", 1.0, metrics={"resnet": 0.321}),
    ReferencePoint("ARK", "ASIC", 1.0, metrics={"resnet": 0.125}),
    ReferencePoint("SHARP", "ASIC", 1.0, metrics={"resnet": 0.099}),
]
HEAP_RESNET_S = 0.267

# -- Table VIII: scheme switching vs hardware ablation (paper-reported). --

TABLE8_PAPER = {
    "bootstrapping": {"ckks_cpu": 4.168, "ss_cpu": 0.436, "ss_heap": 0.0015},
    "lr_training": {"ckks_cpu": 37.05, "ss_cpu": 2.39, "ss_heap": 0.007},
    "resnet20": {"ckks_cpu": 10602.0, "ss_cpu": 309.7, "ss_heap": 0.267},
}

#: Application-level context (Sections VI-F): bootstrap share of runtime.
BOOTSTRAP_SHARE = {
    "lr_fab": 0.70, "lr_heap": 0.21,
    "resnet_conventional": 0.80, "resnet_heap": 0.44,
}


def reference_by_name(refs, name: str) -> ReferencePoint:
    for r in refs:
        if r.name == name:
            return r
    raise KeyError(name)
