"""Scalar vs batched LWE->RLWE repack engine (ISSUE 2 perf gate).

Times the scalar reference recursion (``repack_reference``) against the
level-batched repack engine at N in {2^8, 2^10} for a full pack
(n_cts = N) and a partial pack (n_cts = N/4, which exercises the trace
tail), and emits ``BENCH_repack.json`` at the repo root so successive
PRs can track the speedup trajectory.  The acceptance gate is a >= 4x
speedup at N = 2^10, full pack.

Methodology mirrors ``bench_blind_rotate_batch.py``: both engines run
once untimed first — that pass doubles as the bit-identity check (the
engines must agree on every limb of mask and body before a timing
counts) and as warmup, so one-time costs (key-tensor lift, automorphism
permutation cache, monomial cache) do not distort either side.  Each
engine is then timed interleaved via the shared
``_timing.time_interleaved`` loop and the minimum is reported.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_repack.py -q``
(the bench is excluded from tier-1 ``testpaths``), or directly as a
script.  ``python benchmarks/bench_repack.py --quick`` runs the CI
variant: bit-identity at N = 2^6 and 2^7 across both digit paths, no
timing gate — fast enough for every pull request.
"""

import os
import sys

import numpy as np

from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis, RnsPoly
from repro.math.sampling import Sampler
from repro.tfhe.glwe import GlweSecretKey, glwe_encrypt
from repro.tfhe.keyswitch import AutomorphismKeySet
from repro.tfhe.repack import (
    repack_exponents,
    repack_keyswitch_count,
    repack_reference,
)
from repro.tfhe.repack_engine import RepackEngine

try:
    from conftest import emit
except ImportError:  # running as a plain script, not under pytest
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit

from _timing import time_interleaved, write_bench_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_repack.json")


def _setup(n):
    q = find_ntt_primes(28, n, 1)[0]
    basis = RnsBasis([q])
    gadget = GadgetVector(q=q, base_bits=14, digits=2)
    s = Sampler(1234)
    glwe_sk = GlweSecretKey.generate(n, 1, s)
    auto = AutomorphismKeySet.generate(glwe_sk, repack_exponents(n), basis,
                                       gadget, s)
    return basis, glwe_sk, auto, s


def _encrypt_batch(n, basis, sk, s, count):
    cts = []
    for i in range(count):
        m = np.zeros(n, dtype=object)
        m[0] = 1000 * (i + 1)
        cts.append(glwe_encrypt(RnsPoly.from_int_coeffs(n, basis, m), sk, s))
    return cts


def _assert_bit_identical(vec, ref):
    for pv, pr in zip(list(vec.mask) + [vec.body], list(ref.mask) + [ref.body]):
        cv, cr = pv.to_coeff(), pr.to_coeff()
        for lv, lr in zip(cv.limbs, cr.limbs):
            assert (np.asarray(lv) == np.asarray(lr)).all()


def _run(ring_sizes, gate=True):
    results = []
    for n in ring_sizes:
        basis, glwe_sk, auto, s = _setup(n)
        engine = RepackEngine.for_keys(auto)
        for n_cts in (n, n // 4):
            cts = _encrypt_batch(n, basis, glwe_sk, s, n_cts)
            # Warmup + correctness: both digit paths must match the
            # scalar oracle bit-for-bit before any timing counts.
            ref_out = repack_reference(cts, auto)
            _assert_bit_identical(engine.pack(cts, digit_path="hoisted"),
                                  ref_out)
            _assert_bit_identical(engine.pack(cts, digit_path="fresh"),
                                  ref_out)
            vec_s, ref_s = time_interleaved(
                lambda: engine.pack(cts),
                lambda: repack_reference(cts, auto))
            results.append({
                "n": n,
                "n_cts": n_cts,
                "keyswitches": repack_keyswitch_count(n_cts, n),
                "scalar_s": round(ref_s, 6),
                "vectorized_s": round(vec_s, 6),
                "speedup": round(ref_s / vec_s, 2),
            })

    write_bench_json(JSON_PATH, "repack", results)

    lines = ["Repack: scalar reference recursion vs batched level engine",
             f"{'N':>6} {'n_cts':>6} {'ksw':>6} {'scalar (s)':>12} "
             f"{'vector (s)':>12} {'speedup':>9}"]
    for r in results:
        lines.append(f"{r['n']:>6} {r['n_cts']:>6} {r['keyswitches']:>6} "
                     f"{r['scalar_s']:>12.4f} {r['vectorized_s']:>12.4f} "
                     f"{r['speedup']:>8.1f}x")
    emit("repack", "\n".join(lines))

    if gate:
        top = next(r for r in results
                   if r["n"] == max(ring_sizes) and r["n_cts"] == r["n"])
        assert top["speedup"] >= 4.0, (
            f"repack engine only {top['speedup']}x at N={top['n']}, full pack")
    return results


def bench_repack_engines():
    _run((1 << 8, 1 << 10), gate=True)


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        # CI variant: small rings, bit-identity still enforced in the
        # warmup pass, no timing gate (container timings are too noisy
        # to gate every pull request on).
        _run((1 << 6, 1 << 7), gate=False)
    else:
        _run((1 << 8, 1 << 10), gate=True)
    print("bench_repack: OK")
