"""Ablation benches for the design choices DESIGN.md calls out.

* ``d``/``h`` key-size scaling — Section III-C: "the size of the key
  linearly scales with these two values";
* the ``n_br`` knob — Section V: sparse packing schedules fewer
  BlindRotates, tuning performance per application;
* mod-unit count — the compute roofline of the op model;
* batch scheduling — Section IV-E: one key fetch per batch vs per
  ciphertext.
"""

import pytest

from conftest import emit
from repro.hardware import HeapHwConfig, SingleFpgaModel
from repro.hardware.traffic import scheme_switching_key_bytes
from repro.params import TfheParams, make_heap_params


def bench_ablation_d_h_key_scaling(benchmark):
    """brk size vs decomposition degree d and GLWE mask h."""
    base = make_heap_params()
    log_q = base.ckks.log_q_total

    def sweep():
        rows = []
        for d in (1, 2, 3, 4):
            for h in (1, 2):
                tfhe = TfheParams(n_t=base.tfhe.n_t, n=base.tfhe.n,
                                  q=base.tfhe.q, aux_prime=base.tfhe.aux_prime,
                                  glwe_mask=h, decomp_digits=d)
                rows.append((d, h, scheme_switching_key_bytes(tfhe, log_q)))
        return rows

    rows = benchmark(sweep)
    lines = ["Ablation: brk size vs (d, h) — paper picks d=2, h=1",
             "  d  h  total brk (GB)"]
    for d, h, size in rows:
        marker = "  <- paper" if (d, h) == (2, 1) else ""
        lines.append(f"  {d}  {h}  {size / 1e9:14.2f}{marker}")
    emit("ablation_d_h", "\n".join(lines))
    by = {(d, h): s for d, h, s in rows}
    # Linear scaling in d; superlinear in h ((h+1)^2 appears).
    assert by[(4, 1)] == pytest.approx(2 * by[(2, 1)], rel=1e-6)
    assert by[(2, 2)] > 2 * by[(2, 1)]


def bench_ablation_n_br_knob(benchmark, cluster_model):
    """Bootstrap latency vs the number of scheduled BlindRotates."""
    def sweep():
        return {n_br: cluster_model.bootstrap_latency_s(n_br)
                for n_br in (256, 512, 1024, 2048, 4096)}

    curve = benchmark(sweep)
    lines = ["Ablation: n_br knob (sparse packing -> fewer BlindRotates)",
             "  n_br  bootstrap (ms)"]
    for n_br, t in curve.items():
        lines.append(f"  {n_br:5d}  {t * 1e3:10.3f}")
    lines.append("  (LR uses 256 slots, ResNet 1024, fully packed 4096)")
    emit("ablation_n_br", "\n".join(lines))
    assert curve[256] < curve[1024] < curve[4096]


def bench_ablation_mod_unit_count(benchmark):
    """Raw compute latency vs the number of modular units."""
    def sweep():
        out = {}
        for units in (128, 256, 512, 1024):
            model = SingleFpgaModel(hw=HeapHwConfig(num_mod_units=units),
                                    calibrated=False)
            out[units] = model.raw_latency_s("mult")
        return out

    curve = benchmark(sweep)
    lines = ["Ablation: Mult latency (raw model) vs modular-unit count",
             "  units  mult (us)"]
    for units, t in curve.items():
        marker = "  <- paper (512)" if units == 512 else ""
        lines.append(f"  {units:5d}  {t * 1e6:9.2f}{marker}")
    emit("ablation_units", "\n".join(lines))
    assert curve[128] > curve[512] > curve[1024]


def bench_ablation_batched_key_fetch(benchmark, fpga_model):
    """Section IV-E: batched BlindRotate amortises the brk streaming."""
    def compare():
        batch = 512
        batched = fpga_model.blind_rotate_batch_s(batch)
        sequential = batch * fpga_model.blind_rotate_batch_s(1)
        return batched, sequential

    batched, sequential = benchmark(compare)
    emit("ablation_batching",
         "Ablation: batched vs per-ciphertext BlindRotate (512 ciphertexts)\n"
         f"  batched schedule (keys fetched once): {batched * 1e3:9.3f} ms\n"
         f"  sequential (keys refetched each time): {sequential * 1e3:8.3f} ms\n"
         f"  batching advantage: {sequential / batched:.2f}x")
    assert batched < sequential


def bench_ablation_direct_vs_keyswitched_pipeline(benchmark):
    """Functional ablation: Algorithm 2 as printed (dimension-N blind
    rotation) vs the paper's n_t variant (LWE key switch first) — key
    size shrinks by N/n_t, noise grows by the key-switch term."""
    import numpy as np
    from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
    from repro.math.sampling import Sampler
    from repro.switching import (
        KeySwitchedBootstrapper,
        KeySwitchedKeySet,
        SchemeSwitchBootstrapper,
        SwitchingKeySet,
        make_keyswitched_toy_params,
    )

    n, n_t = 16, 8
    params = make_keyswitched_toy_params(n=n, limbs=3, limb_bits=30,
                                         scale_bits=23, special_limbs=2)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(91))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(92))
    direct_keys = SwitchingKeySet.generate(ctx, sk, Sampler(93), base_bits=4,
                                           error_std=0.6)
    kw_keys = KeySwitchedKeySet.generate(ctx, sk, n_t=n_t, sampler=Sampler(94),
                                         base_bits=4, error_std=0.6)
    direct = SchemeSwitchBootstrapper(ctx, direct_keys)
    keysw = KeySwitchedBootstrapper(ctx, kw_keys)
    z = np.random.default_rng(3).uniform(-1, 1, ctx.slots)

    def run_both():
        ct = ev.encrypt(z, level=0)
        out_d = direct.bootstrap(ct)
        out_k = keysw.bootstrap(ev.encrypt(z, level=0))
        return out_d, out_k

    out_d, out_k = benchmark.pedantic(run_both, rounds=1, iterations=1,
                                      warmup_rounds=0)
    err_d = float(np.max(np.abs(ev.decrypt(out_d, sk).real - z)))
    err_k = float(np.max(np.abs(ev.decrypt(out_k, sk).real - z)))
    emit("ablation_pipelines",
         "Ablation: direct (dim-N) vs keyswitched (dim-n_t) bootstrap\n"
         f"  brk entries:      direct {direct_keys.brk.n_t}, "
         f"keyswitched {kw_keys.brk.n_t} (N/n_t = {n // n_t}x smaller)\n"
         f"  brk bytes:        direct {direct_keys.brk.size_bytes()}, "
         f"keyswitched {kw_keys.brk.size_bytes()}\n"
         f"  max slot error:   direct {err_d:.4f}, keyswitched {err_k:.4f} "
         "(key-switch noise is the price of the smaller key)")
    assert kw_keys.brk.size_bytes() < direct_keys.brk.size_bytes()
    assert err_d < 0.1 and err_k < 0.25


def bench_ablation_gadget_base_noise_sweep(benchmark):
    """Measured series: bootstrap output error vs gadget base — the
    d/noise trade-off behind the paper's d = 2 choice (coarser digits =
    fewer external-product terms but more noise per term)."""
    import numpy as np
    from repro.analysis.noise import SwitchingNoiseModel
    from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
    from repro.math.sampling import Sampler
    from repro.params import make_toy_params
    from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet

    params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(95))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(96))
    z = np.random.default_rng(4).uniform(-1, 1, ctx.slots)

    def sweep():
        rows = []
        for base_bits in (4, 8):
            swk = SwitchingKeySet.generate(ctx, sk, Sampler(97),
                                           base_bits=base_bits, error_std=0.8)
            boot = SchemeSwitchBootstrapper(ctx, swk)
            out = boot.bootstrap(ev.encrypt(z, level=0))
            err = float(np.max(np.abs(ev.decrypt(out, sk).real - z)))
            model = SwitchingNoiseModel(
                n=ctx.n, n_iter=ctx.n, gadget_base=1 << base_bits,
                gadget_digits=swk.gadget.digits, key_error_std=0.8)
            rows.append((base_bits, swk.gadget.digits, err,
                         model.final_slot_error(ctx.params.scale)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    lines = ["Ablation: bootstrap error vs gadget base (measured + predicted)",
             "  base_bits  digits  measured err  predicted (3-sigma)"]
    for base_bits, digits, err, pred in rows:
        lines.append(f"  {base_bits:9d}  {digits:6d}  {err:12.5f}  {pred:12.5f}")
    lines.append("  (coarser digits -> fewer terms, more noise; the paper's")
    lines.append("   d=2 sits at the coarse end, relying on the huge Qp)")
    emit("ablation_gadget_noise", "\n".join(lines))
    # Coarser base must not *reduce* error.
    assert rows[1][2] >= rows[0][2] * 0.5


def bench_ablation_double_angle_evalmod(benchmark):
    """Ablation on the conventional baseline: plain degree-119 sine vs the
    Han-Ki double-angle refinement (degree-31 sine/cosine + 2 doublings)."""
    import time

    import numpy as np
    from repro.ckks import (
        CkksContext,
        CkksEvaluator,
        CkksKeyGenerator,
        ConventionalBootstrapConfig,
        ConventionalBootstrapper,
        ConventionalBootstrapTrace,
        make_bootstrappable_toy_params,
    )
    from repro.math.sampling import Sampler

    params = make_bootstrappable_toy_params(n=16, levels=17, delta_bits=24,
                                            q0_bits=30)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(98))
    sk = gen.secret_key()
    rots = ConventionalBootstrapper.required_rotation_indices(ctx)
    keys = gen.keyset(sk, rotations=rots, conjugate=True)
    ev = CkksEvaluator(ctx, keys, Sampler(99), scale_rtol=5e-2)
    z = np.random.default_rng(5).uniform(-1, 1, ctx.slots)

    def run_both():
        rows = []
        for label, cfg in (
            ("plain deg-119", ConventionalBootstrapConfig()),
            ("double-angle r=2, deg-31",
             ConventionalBootstrapConfig(sine_degree=31, double_angle=2)),
        ):
            boot = ConventionalBootstrapper(ctx, keys, config=cfg, evaluator=ev)
            trace = ConventionalBootstrapTrace()
            start = time.perf_counter()
            out = boot.bootstrap(ev.encrypt(z, level=0), trace)
            elapsed = time.perf_counter() - start
            err = float(np.max(np.abs(ev.decrypt(out, sk).real - z)))
            rows.append((label, elapsed, trace.levels_consumed, err))
        return rows

    rows = benchmark.pedantic(run_both, rounds=1, iterations=1, warmup_rounds=0)
    lines = ["Ablation: EvalMod strategy in the conventional baseline",
             "  strategy                   time (s)  levels  max err"]
    for label, t, levels, err in rows:
        lines.append(f"  {label:25s}  {t:7.2f}  {levels:6d}  {err:.4f}")
    emit("ablation_double_angle", "\n".join(lines))
    for _, __, ___, err in rows:
        assert err < 0.2
