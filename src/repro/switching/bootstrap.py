"""The scheme-switching CKKS bootstrap (paper Algorithm 2).

Given a level-0 CKKS ciphertext ``ct = (c0, c1)`` modulo the base limb
``q`` with message ``m`` (``|m| << q``), produce a ciphertext modulo the
full ``Q`` encrypting the same ``m`` — *without* the linear transforms
and sine approximation of conventional bootstrapping.

Correctness sketch (per coefficient, all quantities exact integers;
``phi(x) = c0 + c1*s`` with stored representatives in ``[0, q)``):

* ``phi(ct) = [m]_q + q*K`` for an integer ``K``.
* Step 1: ``ct' = [2N * ct]_q`` so ``phi(ct') = [2N m]_q + q*K'`` with
  ``|K'| <~ ||s||_1`` (a random-walk bound, std ~ sqrt(N/18)).
* Step 2: ``ct_ms = (2N*ct - ct')/q`` is an exact integer ciphertext over
  ``Z_2N`` and ``phi(ct_ms) = J - K' (mod 2N)`` where
  ``J = floor(2N*[m]_centered/q)`` is tiny because ``|m| << q``.
* Step 3: Extract the ``N`` dimension-``N`` LWE ciphertexts of ``ct_ms``
  (Eq. 2), BlindRotate each with the test function ``g(t) = q*t`` (folded
  with ``N^{-1}`` for the repack factor), and repack: the result
  ``ct_kq`` encrypts ``q*(J - K')`` in every coefficient — this is the
  ``-k*q`` term of the paper, computed by table lookup instead of a sine
  polynomial.  Requires ``|J - K'| < N/2`` (checked probabilistically by
  parameters; violated coefficients alias).
* Step 4: ``ct'' = ct_kq + ct' (mod Qp)`` has phase
  ``q(J-K') + 2N m - qJ + qK' = 2N * m`` exactly.
* Step 5: multiply by ``w = (p-1)/2N`` (exact — ``p = 1 (mod 2N)`` for
  every NTT prime) and Rescale by ``p``: the message becomes
  ``m * (p-1)/p ~ m`` over the full basis ``Q``.  One level consumed.

The BlindRotates in step 3 are mutually independent — the parallelism the
whole paper is built on; :class:`BootstrapSchedule` (scheduler module)
partitions them over compute nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
import time
from typing import Dict, List, Optional

import numpy as np

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..errors import ParameterError
from ..math.rns import RnsPoly
from ..tfhe.blind_rotate import blind_rotate_batch, build_test_vector, get_monomial_cache
from ..tfhe.glwe import GlweCiphertext
from ..tfhe.lwe import LweCiphertext
from ..tfhe.repack import repack_with_counters
from .keys import SwitchingKeySet


@dataclass
class BootstrapTrace:
    """Step-by-step record (drives the Figure-1 bench and the scheduler).

    ``repack_keyswitches`` is the *true* keyswitch count sourced from the
    repack engine's counters: ``n - 1`` merge-tree nodes plus one per
    trace level (earlier revisions reported only the ``log2 n`` level
    count).  ``step_seconds`` holds wall-clock per pipeline step
    (``extract`` / ``blind_rotate`` / ``repack`` / ``finish``) — the
    Figure-1-style share breakdown.
    """

    num_lwe: int = 0
    num_blind_rotates: int = 0
    modswitch_ops: int = 0
    repack_keyswitches: int = 0
    repack_merge_keyswitches: int = 0
    repack_trace_keyswitches: int = 0
    step_seconds: Dict[str, float] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)


class SchemeSwitchBootstrapper:
    """Executes Algorithm 2 against a CKKS context and switching keys."""

    def __init__(self, ctx: CkksContext, keys: SwitchingKeySet,
                 blind_rotate_engine: str = "vectorized",
                 repack_engine: str = "vectorized"):
        """``blind_rotate_engine`` selects the BlindRotate backend for the
        N-way fan-out of step 3: ``"vectorized"`` (default) runs the whole
        batch through :mod:`repro.tfhe.batch_engine`'s tensor engine,
        ``"reference"`` falls back to the scalar per-ciphertext oracle.
        ``repack_engine`` does the same for step 3c's LWE->RLWE packing
        (:mod:`repro.tfhe.repack_engine` vs the scalar recursion).  All
        combinations are bit-identical; the flags exist for cross-checking."""
        self.ctx = ctx
        self.keys = keys
        self.raised_basis = keys.raised_basis
        self.blind_rotate_engine = blind_rotate_engine
        self.repack_engine = repack_engine
        self._test_vector = self._build_test_vector()
        self._mono_cache = get_monomial_cache(ctx.n, self.raised_basis)

    # -- the public entry point ---------------------------------------------------

    def bootstrap(self, ct: CkksCiphertext,
                  trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Refresh a level-0 ciphertext to the top level (minus one)."""
        if ct.level != 0:
            raise ParameterError(
                f"scheme-switching bootstrap consumes a level-0 ciphertext, got level {ct.level}"
            )
        n = self.ctx.n
        two_n = 2 * n
        q = ct.basis.moduli[0]
        trace = trace if trace is not None else BootstrapTrace()

        # Steps 1 & 2: ModulusSwitch -- exact integer identity
        # 2N*x = q*floor(2N*x/q) + [2N*x]_q applied componentwise.
        t0 = time.perf_counter()
        c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
        c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
        c0_prime = (two_n * c0) % q
        c1_prime = (two_n * c1) % q
        c0_ms = (two_n * c0 - c0_prime) // q
        c1_ms = (two_n * c1 - c1_prime) // q
        trace.modswitch_ops = 2 * n

        # Step 3a: Extract N LWE ciphertexts over Z_2N (Eq. 2).
        lwes = [self._extract_mod_2n(c1_ms, c0_ms, i, two_n) for i in range(n)]
        trace.num_lwe = len(lwes)
        t1 = time.perf_counter()

        # Step 3b: BlindRotate all of them (batch schedule: each brk_i is
        # used across the whole batch before moving on).
        accs = blind_rotate_batch(self._test_vector, lwes, self.keys.brk,
                                  engine=self.blind_rotate_engine)
        trace.num_blind_rotates = len(accs)
        t2 = time.perf_counter()

        # Step 3c: repack the N constant coefficients into one RLWE over Qp.
        packed, repack_ctr = repack_with_counters(accs, self.keys.auto_keys,
                                                  engine=self.repack_engine)
        trace.repack_merge_keyswitches = repack_ctr.merge_keyswitches
        trace.repack_trace_keyswitches = repack_ctr.trace_keyswitches
        trace.repack_keyswitches = repack_ctr.total_keyswitches
        t3 = time.perf_counter()

        # Step 4: raise ct' to Qp and add.
        ct_prime = GlweCiphertext(
            mask=[RnsPoly.from_int_coeffs(n, self.raised_basis, c1_prime)],
            body=RnsPoly.from_int_coeffs(n, self.raised_basis, c0_prime),
        )
        ct_dprime = packed + ct_prime

        # Step 5: multiply by (p-1)/2N (exact: p = 1 mod 2N) and rescale by p.
        p = self.raised_basis.moduli[-1]
        w = (p - 1) // two_n
        body = (ct_dprime.body * w).rescale_last_limb().to_eval()
        mask = (ct_dprime.mask[0] * w).rescale_last_limb().to_eval()
        trace.notes.append(f"rescaled by p={p}, w=(p-1)/2N={w}")
        t4 = time.perf_counter()
        trace.step_seconds = {"extract": t1 - t0, "blind_rotate": t2 - t1,
                              "repack": t3 - t2, "finish": t4 - t3}
        return CkksCiphertext(c0=body, c1=mask, scale=ct.scale)

    # -- helpers ---------------------------------------------------------------------

    def _build_test_vector(self) -> RnsPoly:
        """``g(t) = q * t`` on ``[0, N/2)``, anti-periodically extended, and
        pre-multiplied by ``N^{-1} mod Qp`` to cancel the repack factor."""
        n = self.ctx.n
        q = self.ctx.full_basis.moduli[0]
        big_qp = self.raised_basis.product
        n_inv = pow(n, -1, big_qp)

        def g(t: int) -> int:
            t = t % (2 * n)
            if t < n // 2:
                val = q * t
            elif t < n:
                val = q * (n - t)          # anti-periodic filler
            elif t < 3 * n // 2:
                val = -q * (t - n)
            else:
                val = -q * (n - (t - n))   # = q*(t - 2N) on the wrap side
            return (val * n_inv) % big_qp

        return build_test_vector(g, n, self.raised_basis)

    @staticmethod
    def _extract_mod_2n(c1_ms: np.ndarray, c0_ms: np.ndarray, index: int,
                        two_n: int) -> LweCiphertext:
        """Eq. 2 extraction directly over ``Z_2N`` components."""
        n = len(c1_ms)
        head = c1_ms[: index + 1][::-1]
        tail = c1_ms[index + 1:][::-1]
        neg_tail = (-tail) % two_n
        a = np.concatenate([head, neg_tail]) % two_n
        return LweCiphertext(a=a.astype(np.int64), b=int(c0_ms[index]) % two_n,
                             q=two_n)


def expected_k_prime_std(n: int) -> float:
    """Predicted std of the wrap count ``K'`` for a ternary secret.

    Each nonzero secret digit contributes ``+-U(0,1)`` wraps (uniform mask
    residue over ``q``); with density 2/3 the per-term variance is
    ``(2/3) * E[U^2] = 2/9``, so ``std(K') ~ sqrt(2n/9)`` — far below the
    ``N/2`` aliasing bound of the test function for all practical ``n``.
    """
    return math.sqrt(n * 2.0 / 9.0)
