"""Parameter sets for the HEAP reproduction.

Three families of parameters appear in the paper:

* **HEAP parameters** (Section III-C): ``N = 2^13``, ``log Q = 216`` built
  from six 36-bit limbs, an auxiliary prime ``p``, TFHE side with
  ``n_t = 500``, GLWE mask ``h = 1``, gadget degree ``d = 2``.
* **Conventional-bootstrapping parameters** (what FAB and the ASICs use):
  ``N = 2^16``, ``log Q ~ 1728``, 24 limbs of which ~19 are consumed by
  bootstrapping itself.
* **Toy parameters** for functional tests: identical structure at reduced
  ``N`` so the pure-Python implementation runs in milliseconds.

:func:`make_heap_params` constructs the real paper set (used by all size
and traffic audits); :func:`make_toy_params` scales ``N`` down while
keeping every structural knob, so the same code paths execute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .errors import ParameterError
from .math.modular import find_ntt_primes
from .math.rns import RnsBasis


@dataclass(frozen=True)
class CkksParams:
    """Static CKKS parameters (paper Table I notation)."""

    n: int                 # ring dimension N
    moduli: List[int]      # RNS limb primes q_0..q_{L-1}, q_0 is the base limb
    special_moduli: List[int]  # auxiliary primes p (hybrid keyswitch / bootstrap)
    scale_bits: int        # log2(Delta)
    error_std: float = 3.2

    def __post_init__(self) -> None:
        if self.n & (self.n - 1):
            raise ParameterError("N must be a power of two")
        if not self.moduli:
            raise ParameterError("need at least one limb")

    @property
    def levels(self) -> int:
        """L - 1: number of Rescale-consuming multiplications supported."""
        return len(self.moduli) - 1

    @property
    def max_limbs(self) -> int:
        return len(self.moduli)

    @property
    def slots(self) -> int:
        return self.n // 2

    @property
    def scale(self) -> float:
        return float(2 ** self.scale_bits)

    @property
    def log_q_total(self) -> int:
        total = 1
        for q in self.moduli:
            total *= q
        return total.bit_length()

    def basis(self, level: Optional[int] = None) -> RnsBasis:
        """Basis for a ciphertext with ``level + 1`` limbs (default: all)."""
        count = self.max_limbs if level is None else level + 1
        if not 1 <= count <= self.max_limbs:
            raise ParameterError(f"invalid limb count {count}")
        return RnsBasis(self.moduli[:count])

    def special_basis(self) -> RnsBasis:
        if not self.special_moduli:
            raise ParameterError("parameter set has no special primes")
        return RnsBasis(self.special_moduli)

    def ciphertext_bytes(self, limbs: Optional[int] = None) -> int:
        """Size of an RLWE ciphertext: 2 ring elements, ``limbs`` limbs.

        Uses the paper's accounting ``2 * logQ * N / 8`` bytes.
        """
        count = self.max_limbs if limbs is None else limbs
        bits_per_limb = max(q.bit_length() for q in self.moduli[:count])
        return 2 * count * bits_per_limb * self.n // 8


@dataclass(frozen=True)
class TfheParams:
    """TFHE-side parameters (paper Sections II-B and III-C)."""

    n_t: int           # LWE mask length (paper: 500)
    n: int             # accumulator ring dimension (paper: 2^13, shared with CKKS)
    q: int             # single-limb modulus the blind rotation runs over
    aux_prime: int     # auxiliary prime p for the raised basis Qp
    glwe_mask: int = 1     # h
    decomp_digits: int = 2  # d
    decomp_base_bits: int = 12
    error_std: float = 3.2

    def __post_init__(self) -> None:
        if self.n & (self.n - 1):
            raise ParameterError("N must be a power of two")

    @property
    def lwe_ciphertext_bytes(self) -> int:
        """(n_t + 1) residues of log q bits (paper: ~2.3 KB)."""
        return (self.n_t + 1) * self.q.bit_length() // 8

    @property
    def rgsw_matrix_shape(self) -> Tuple[int, int]:
        """(h+1)*d rows x (h+1) cols of degree N-1 polynomials."""
        return ((self.glwe_mask + 1) * self.decomp_digits, self.glwe_mask + 1)

    def rgsw_ciphertext_bytes(self) -> int:
        rows, cols = self.rgsw_matrix_shape
        return rows * cols * self.n * self.q.bit_length() // 8

    def blind_rotate_key_bytes(self) -> int:
        """Total brk size: n_t keys, each holding RGSW(s+) and RGSW(s-)."""
        return self.n_t * 2 * self.rgsw_ciphertext_bytes()


@dataclass(frozen=True)
class HeapParams:
    """The full hybrid parameter set: CKKS side + TFHE side."""

    ckks: CkksParams
    tfhe: TfheParams
    name: str = "heap"

    @property
    def n(self) -> int:
        return self.ckks.n


def make_heap_params() -> HeapParams:
    """The paper's production parameter set (Section III-C).

    ``N = 2^13``, six 36-bit limbs (log Q = 216), one auxiliary 36-bit
    prime, ``n_t = 500``, ``d = 2``, ``h = 1``.  Constructing this set is
    cheap (prime search only); *running* the crypto at this size in pure
    Python is possible but slow, so functional tests use
    :func:`make_toy_params`.
    """
    n = 1 << 13
    primes = find_ntt_primes(36, n, 9)
    # The paper quotes one auxiliary prime p; the functional hybrid key
    # switch with dnum=2 over 6 limbs needs P >= Q_j (3 limbs), so the
    # constructed set carries 3 special primes.  Size audits that follow
    # the paper's accounting use only the first (see switching.keys).
    return HeapParams(
        ckks=CkksParams(n=n, moduli=primes[:6], special_moduli=primes[6:9], scale_bits=35),
        tfhe=TfheParams(n_t=500, n=n, q=primes[0], aux_prime=primes[6]),
        name="heap-N13-logQ216",
    )


def make_conventional_params() -> CkksParams:
    """FAB-style conventional bootstrappable set: ``N = 2^16``, 24 limbs.

    Only used for size/traffic audits and the baseline cost models; never
    executed functionally in Python.
    """
    n = 1 << 16
    primes = find_ntt_primes(54, n, 25)
    return CkksParams(n=n, moduli=primes[:24], special_moduli=[primes[24]], scale_bits=50)


def make_toy_params(
    n: int = 1 << 6,
    limbs: int = 4,
    limb_bits: int = 28,
    n_t: int = 32,
    scale_bits: int = 26,
    decomp_base_bits: int = 9,
    decomp_digits: int = 3,
    special_limbs: int = 2,
) -> HeapParams:
    """Structurally faithful scaled-down parameters for functional tests.

    Defaults give millisecond-scale operations; raise ``n``/``n_t`` to
    approach the paper set.  TFHE's modulus is the CKKS base limb, and the
    auxiliary prime matches the first CKKS special prime, exactly as in
    the paper's Algorithm 2 where the blind rotation output lives in
    ``R_{Qp}``.

    ``special_limbs`` sizes the hybrid-keyswitch modulus ``P``; noise
    control needs ``P`` at least as large as the biggest digit group,
    i.e. ``special_limbs >= ceil(limbs / dnum)``.
    """
    primes = find_ntt_primes(limb_bits, n, limbs + special_limbs)
    ckks = CkksParams(
        n=n,
        moduli=primes[:limbs],
        special_moduli=primes[limbs: limbs + special_limbs],
        scale_bits=scale_bits,
    )
    tfhe = TfheParams(
        n_t=n_t,
        n=n,
        q=primes[0],
        aux_prime=primes[limbs],
        decomp_base_bits=decomp_base_bits,
        decomp_digits=decomp_digits,
    )
    return HeapParams(ckks=ckks, tfhe=tfhe, name=f"toy-N{n}")
