"""Table IV: NTT throughput (N = 2^13, logQ = 218) — model regeneration
plus measured throughput of this repo's vectorised NTT engine across ring
sizes (the series behind the paper's NTT datapath claims)."""

import numpy as np
import pytest
from conftest import emit

from repro.analysis import format_table, table4_ntt
from repro.math.modular import find_ntt_primes
from repro.math.ntt import NttEngine


def bench_table4_model(benchmark, fpga_model):
    headers, rows = benchmark(table4_ntt, fpga_model)
    emit("table4_ntt", "Table IV: NTT throughput\n" + format_table(headers, rows))
    by = {r["System"]: r for r in rows}
    assert by["HEAP"]["NTT ops/s"] > by["FAB"]["NTT ops/s"] > by["HEAX"]["NTT ops/s"]


@pytest.mark.parametrize("n", [256, 1024, 4096])
def bench_functional_ntt_forward(benchmark, n):
    q = find_ntt_primes(28, n, 1)[0]
    eng = NttEngine(n, q)
    data = eng.mod.asarray(np.random.default_rng(0).integers(0, q, n))
    benchmark(eng.forward, data)


def bench_functional_ntt_paper_size(benchmark):
    """The paper's ring size N = 2^13 with a (fast-path) 28-bit prime."""
    n = 1 << 13
    q = find_ntt_primes(28, n, 1)[0]
    eng = NttEngine(n, q)
    data = eng.mod.asarray(np.random.default_rng(1).integers(0, q, n))
    result = benchmark(eng.forward, data)
    assert len(result) == n


def bench_functional_ntt_batched_two_limbs(benchmark):
    """The Section IV-D optimisation: two limbs sharing twiddles per pass."""
    n = 1 << 12
    q = find_ntt_primes(28, n, 1)[0]
    eng = NttEngine(n, q)
    data = eng.mod.asarray(np.random.default_rng(2).integers(0, q, (2, n)))
    benchmark(eng.forward, data)
