"""Vectorized LWE -> RLWE repacking: level-batched keyswitches on tensors.

The reference :func:`repro.tfhe.repack.repack` walks Chen et al.'s
merge+trace recursion one keyswitch at a time: ``n - 1`` merge nodes plus
``log2(N/n)`` trace folds, each doing an object-dtype big-int gadget
decompose, ``d`` one-row NTTs, a body lift, and two alignment transforms
of domain thrash.  After PR 1 vectorized BlindRotate this scalar chain is
the bootstrap's dominant hot path.

This module executes the same arithmetic level-synchronously:

* **Level batching.**  Every merge node at recursion level ``k`` uses the
  *same* automorphism exponent ``t = 2^(k+1) + 1`` — unrolling the
  recursion breadth-first, level ``k`` pairs ``state[r]`` with
  ``state[r + m/2]`` (``m`` entries remaining) and all ``m/2`` keyswitches
  run as one structure-of-arrays pass: per limb the state is a single
  ``(N, m, 2)`` eval-domain tensor (``[..., 0]`` mask, ``[..., 1]``
  body), the automorphism key is lifted once into an ``(N, d, 2)`` tensor,
  and the digit MAC is one batched ``matmul`` per limb.
* **Eval-domain automorphisms.**  NTT slot ``k`` holds the evaluation at
  ``psi^(2k+1)``, so ``X -> X^t`` is the *sign-free* slot gather
  ``out[k] = in[(t*(2k+1) mod 2N - 1)/2]`` — the state never leaves the
  evaluation domain for the permutation (the reference pays coefficient
  round-trips).  Tables come from :mod:`repro.math.automorphism`.
* **Hoisted digit decomposition.**  In the decomposed domain the
  automorphism is the same signed permutation, but balanced digits are
  *not* negation-equivariant (the ``B/2`` boundary digit and the rounding
  midpoint break under negation), so permuting one digit tensor is wrong.
  The exact Halevi-Shoup-style variant decomposes both polarities — ``x``
  and ``(-x) mod Q`` — of the *unpermuted* mask once, then gathers per
  output position from the matching polarity
  (``minus[src[j]]`` where the permutation flips the sign, ``plus[src[j]]``
  otherwise), which equals fresh decompose-after-permute digit for digit
  because decomposition is elementwise on values.  Note the honest
  caveat: in this dataflow every mask feeds exactly *one* automorphism
  per level, so classical hoisting (amortising one decompose across many
  exponents, as ARK does) is degenerate — the engine keeps both paths,
  counts them, and ``digit_path="auto"`` picks whichever is cheapest for
  the ring (the double decompose is only worthwhile on the int64 fast
  path where it is two vectorised passes).
* **Trace phase** ``ct <- ct + phi_{l+1}(ct)`` reuses the identical
  keyswitch machinery with a batch of one, still stacked across limbs.

Bit-identity with the scalar oracle holds because every step is exact
modular arithmetic on canonical residues — monomial multiply, add/sub,
slot gather, decomposition and MAC are all value-preserving reorderings
of the reference's operations, and the NTT is an exact bijection
(``benchmarks/bench_repack.py`` and ``tests/test_repack_engine.py``
assert equality limb by limb).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ParameterError
from ..math.automorphism import get_automorphism_perm
from ..math.modular import crt_compose
from ..math.ntt import get_ntt_engine
from .blind_rotate import get_monomial_cache
from .glwe import GlweCiphertext
from .keyswitch import AutomorphismKeySet
from .repack import RepackCounters

_U64_MAX = (1 << 64) - 1


class RepackEngine:
    """Dense-tensor repack executor bound to one automorphism key set.

    Construction is cheap (key tensors are lifted lazily, once per
    exponent, on first use); :meth:`for_keys` memoises the engine on the
    key-set object so every bootstrap against the same keys shares the
    lifted tensors and permutation tables.
    """

    def __init__(self, keys: AutomorphismKeySet):
        if not keys.keys:
            raise ParameterError("automorphism key set is empty")
        self.keys = keys
        sample = next(iter(keys.keys.values()))
        row0 = sample.rows[0]
        if row0.h != 1:
            raise ParameterError("repack engine expects RLWE (h=1) keys")
        self.n = row0.n
        self.basis = row0.basis
        self.engines = self.basis.engines
        self.ntts = [get_ntt_engine(self.n, q) for q in self.basis.moduli]
        self.mono = get_monomial_cache(self.n, self.basis)
        self.gadget = sample.gadget
        self.d = self.gadget.digits
        # Whether the fused matmul may defer every reduction to the drain:
        # the d-term digit*key row sum plus the body and the merge addend
        # must fit in a uint64 lane.
        self._lazy = [e.fast and self.d * (e.q - 1) ** 2 + 2 * (e.q - 1) <= _U64_MAX
                      for e in self.engines]
        self._keys_lifted = {}
        #: Counters of the most recent :meth:`pack` call.
        self.last_counters: Optional[RepackCounters] = None

    @classmethod
    def for_keys(cls, keys: AutomorphismKeySet) -> "RepackEngine":
        """Engine cached on the key-set object."""
        engine = getattr(keys, "_repack_engine", None)
        if engine is None:
            engine = cls(keys)
            keys._repack_engine = engine
        return engine

    # -- construction ---------------------------------------------------------

    def _key_tensor(self, t: int) -> List[np.ndarray]:
        """Per-limb ``(N, d, 2)`` eval tensors of the exponent-``t`` key
        (column 0 the row masks, column 1 the row bodies).

        Lifted through the process-wide key registry (owner: the key
        set), so merge and trace digit paths share one tensor per
        exponent, the bytes are accounted centrally, and demoting a
        streaming key to seed+``b`` form drops its lifted tensors too.
        ``_keys_lifted`` mirrors the registry for cheap engine-local
        lookups and is kept consistent by the registry's drop hook.
        """
        cached = self._keys_lifted.get(t)
        if cached is not None:
            return cached

        def build() -> List[np.ndarray]:
            ksk = self.keys.key_for(t)
            if ksk.gadget != self.gadget:
                raise ParameterError("automorphism keys disagree on the gadget")
            lifted = [e.zeros((self.n, self.d, 2)) for e in self.engines]
            for k, row in enumerate(ksk.rows):
                row = row.to_eval()
                for li in range(len(self.engines)):
                    lifted[li][:, k, 0] = row.mask[0].limbs[li]
                    lifted[li][:, k, 1] = row.body.limbs[li]
            return lifted

        from ..keyreg import get_key_registry

        cached = get_key_registry().get_or_build(
            self.keys, "repack_lift", t, build,
            on_drop=lambda o, _t=t: getattr(
                o, "_repack_engine", None) is not None
            and o._repack_engine._keys_lifted.pop(_t, None))
        self._keys_lifted[t] = cached
        return cached

    # -- execution ------------------------------------------------------------

    def pack(self, cts: Sequence[GlweCiphertext],
             digit_path: str = "auto") -> GlweCiphertext:
        """Pack the batch into one RLWE ciphertext (eval domain).

        ``digit_path`` selects how each level's keyswitch digits are
        produced: ``"fresh"`` permutes the mask in the evaluation domain
        and decomposes once; ``"hoisted"`` decomposes both polarities of
        the unpermuted mask and applies the signed permutation in the
        decomposed domain; ``"auto"`` picks ``"hoisted"`` on the
        single-limb int64 fast path and ``"fresh"`` otherwise.  All three
        are bit-identical.
        """
        from ..profiling import record_mul, record_repack_level

        n_cts = len(cts)
        if n_cts & (n_cts - 1) or n_cts == 0:
            raise ParameterError("repack needs a power-of-two ciphertext count")
        if n_cts > self.n:
            raise ParameterError("cannot pack more ciphertexts than ring coefficients")
        for ct in cts:
            if (ct.h != 1 or ct.n != self.n
                    or ct.basis.moduli != self.basis.moduli):
                raise ParameterError("repack inputs must be matching RLWE ciphertexts")
        hoisted = self._resolve_digit_path(digit_path)
        counters = RepackCounters()
        n_limbs = len(self.engines)

        state = self._load(cts)
        level = 0
        m = n_cts
        while m > 1:
            p = m // 2
            l_block = 2 * n_cts // m
            s = self.n // l_block
            t = l_block + 1
            mono = self.mono.monomial(s)
            addend, v_mask, v_body = [], [], []
            for li, e in enumerate(self.engines):
                even = state[li][:, :p, :]
                odd = state[li][:, p:, :]
                shifted = e.mul(odd, mono[li][:, None, None])
                addend.append(e.add(even, shifted))
                v = e.sub(even, shifted)
                v_mask.append(v[:, :, 0])
                v_body.append(v[:, :, 1])
            record_mul(self.n * p * 2 * n_limbs)
            state = self._keyswitch(v_mask, v_body, t, addend, hoisted)
            saved = self._ntt_calls_saved(p, n_limbs)
            counters.merge_keyswitches += p
            counters.levels += 1
            counters.ntt_calls_saved += saved
            if hoisted:
                counters.hoisted_decomposes += p
            else:
                counters.fresh_decomposes += p
            record_repack_level(level, p, phase="merge",
                                hoisted=p if hoisted else 0,
                                fresh=0 if hoisted else p, ntt_saved=saved)
            m = p
            level += 1

        l_sub = 2 * n_cts
        while l_sub <= self.n:
            t = l_sub + 1
            mask = [st[:, :, 0] for st in state]
            body = [st[:, :, 1] for st in state]
            state = self._keyswitch(mask, body, t, state, hoisted)
            saved = self._ntt_calls_saved(1, n_limbs)
            counters.trace_keyswitches += 1
            counters.levels += 1
            counters.ntt_calls_saved += saved
            if hoisted:
                counters.hoisted_decomposes += 1
            else:
                counters.fresh_decomposes += 1
            record_repack_level(level, 1, phase="trace",
                                hoisted=1 if hoisted else 0,
                                fresh=0 if hoisted else 1, ntt_saved=saved)
            l_sub *= 2
            level += 1

        self.last_counters = counters
        return self._export(state)

    # -- stages ---------------------------------------------------------------

    def _resolve_digit_path(self, digit_path: str) -> bool:
        if digit_path == "hoisted":
            return True
        if digit_path == "fresh":
            return False
        if digit_path != "auto":
            raise ParameterError(f"unknown digit path {digit_path!r}")
        return len(self.engines) == 1 and self.engines[0].fast

    def _load(self, cts: Sequence[GlweCiphertext]) -> List[np.ndarray]:
        """Stack the batch into per-limb ``(N, n_cts, 2)`` eval tensors."""
        lifted = [ct.to_eval() for ct in cts]
        state = []
        for li, e in enumerate(self.engines):
            st = e.zeros((self.n, len(cts), 2))
            for j, ct in enumerate(lifted):
                st[:, j, 0] = ct.mask[0].limbs[li]
                st[:, j, 1] = ct.body.limbs[li]
            state.append(st)
        return state

    def _keyswitch(self, mask_eval: List[np.ndarray], body_eval: List[np.ndarray],
                   t: int, addend: List[np.ndarray],
                   hoisted: bool) -> List[np.ndarray]:
        """``addend + KS_t(phi_t(mask, body))`` for a whole level at once.

        ``mask_eval``/``body_eval`` are per-limb ``(N, p)`` eval tensors of
        the keyswitch input *before* the automorphism; ``addend`` is the
        per-limb ``(N, p, 2)`` tensor the keyswitched result folds onto
        (``u`` in the merge phase, the state itself in the trace phase).
        """
        perm = get_automorphism_perm(self.n, t)
        key_t = self._key_tensor(t)
        # The body needs no keyswitch: permute its eval slots (sign-free).
        body_perm = [b[perm.eval_src] for b in body_eval]
        if hoisted:
            # Decompose the unpermuted mask once per polarity, then apply
            # the signed coefficient permutation digit-wise.
            big = self._compose([eng.inverse_axis0(np.ascontiguousarray(m))
                                 for eng, m in zip(self.ntts, mask_eval)])
            big_q = self.basis.product
            minus = np.where(big == 0, big, big_q - big)
            plus_stack = np.stack(self.gadget.decompose_tensor(big), axis=2)
            minus_stack = np.stack(self.gadget.decompose_tensor(minus), axis=2)
            digit_stack = np.where(perm.src_flip[:, None, None],
                                   minus_stack[perm.src], plus_stack[perm.src])
        else:
            big = self._compose([eng.inverse_axis0(m[perm.eval_src])
                                 for eng, m in zip(self.ntts, mask_eval)])
            digit_stack = np.stack(self.gadget.decompose_tensor(big), axis=2)
        out = []
        for li, (e, eng) in enumerate(zip(self.engines, self.ntts)):
            if e.fast and digit_stack.dtype == np.int64:
                # Balanced digits satisfy |digit| <= q, so one shift puts
                # them in [0, 2q] and the forward twist's reduction
                # canonicalises — same trick as the blind-rotate engine.
                reduced = digit_stack + e.q
            else:
                reduced = e.asarray(digit_stack)
            digits = eng.forward_axis0(reduced)            # (N, p, d)
            if self._lazy[li]:
                # lazy-bound: d * (q - 1)^2 + 2 * (q - 1) <= 2^64 - 1 is
                # checked per limb in __init__ (self._lazy gates this
                # branch): the d-term row sum plus the body and merge
                # addends all drain in one reduction.
                qu = np.uint64(e.q)
                acc = np.matmul(digits.view(np.uint64), key_t[li].view(np.uint64))
                acc[:, :, 1] += body_perm[li].view(np.uint64)
                acc += addend[li].view(np.uint64)
                acc %= qu
                out.append(acc.view(np.int64))
            else:
                ep = e.lazy_mac_sum(digits[:, :, :, None],
                                    key_t[li][:, None, :, :], axis=2)
                res = e.add(ep, addend[li])
                res[:, :, 1] = e.add(res[:, :, 1], body_perm[li])
                out.append(res)
        return out

    def _compose(self, coeff: List[np.ndarray]) -> np.ndarray:
        """Big-int ``[0, Q)`` view of per-limb coefficient tensors (the
        single-limb residues already *are* those integers)."""
        if len(self.basis) == 1:
            return coeff[0]
        stack = np.stack([np.asarray(c, dtype=object) for c in coeff])  # heaplint: disable=HL001 CRT compose needs exact big ints on the wide-modulus path
        return crt_compose(stack, self.basis.moduli)

    def _ntt_calls_saved(self, p: int, n_limbs: int) -> int:
        """NTT *invocations* avoided at one level versus the reference.

        Per keyswitch per limb the scalar path issues one call per
        polynomial: the digit forwards (``d``), the body lift, the mask
        inverse and one alignment inverse — ``d + 3`` calls; the engine
        issues two stacked calls per level per limb regardless of ``p``.
        """
        return n_limbs * (p * (self.d + 3) - 2)

    def _export(self, state: List[np.ndarray]) -> GlweCiphertext:
        from ..math.rns import RnsPoly

        n_limbs = len(self.basis)
        mask = RnsPoly(self.n, self.basis,
                       [np.ascontiguousarray(state[li][:, 0, 0])
                        for li in range(n_limbs)], "eval")
        body = RnsPoly(self.n, self.basis,
                       [np.ascontiguousarray(state[li][:, 0, 1])
                        for li in range(n_limbs)], "eval")
        return GlweCiphertext(mask=[mask], body=body)


def repack_vectorized(cts: Sequence[GlweCiphertext], keys: AutomorphismKeySet,
                      digit_path: str = "auto") -> GlweCiphertext:
    """Module-level entry point used by the dispatcher in ``repack``."""
    return RepackEngine.for_keys(keys).pack(cts, digit_path=digit_path)
