"""Tests for RNS polynomials, rescaling, and fast basis conversion."""

from hypothesis import given, settings
from hypothesis import strategies as st
import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.modular import find_ntt_primes
from repro.math.ntt import naive_negacyclic_mul
from repro.math.rns import RnsBasis, RnsPoly, basis_convert, concat_bases

N = 16
PRIMES = find_ntt_primes(22, N, 6)
BASIS = RnsBasis(PRIMES[:4])
AUX = RnsBasis(PRIMES[4:6])


def rand_rns(seed, basis=BASIS, n=N):
    rng = np.random.default_rng(seed)
    big_q = basis.product
    coeffs = np.asarray([int(x) for x in rng.integers(0, 2**60, n)], dtype=object) % big_q
    return RnsPoly.from_int_coeffs(n, basis, coeffs)


class TestBasis:
    def test_duplicate_moduli_rejected(self):
        with pytest.raises(ParameterError):
            RnsBasis([17, 17])

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            RnsBasis([])

    def test_product(self):
        b = RnsBasis([3, 5, 7])
        assert b.product == 105

    def test_prefix(self):
        assert BASIS.prefix(2).moduli == PRIMES[:2]

    def test_concat(self):
        c = concat_bases(BASIS, AUX)
        assert c.moduli == PRIMES[:6]


class TestRnsPolyRoundtrip:
    def test_int_coeff_roundtrip(self):
        p = rand_rns(0)
        back = RnsPoly.from_int_coeffs(N, BASIS, p.to_int_coeffs())
        assert p == back

    def test_centered_roundtrip(self):
        p = rand_rns(1)
        c = p.to_centered_int_coeffs()
        back = RnsPoly.from_int_coeffs(N, BASIS, c)
        assert p == back

    def test_domain_roundtrip(self):
        p = rand_rns(2)
        assert p.to_eval().to_coeff() == p


class TestRnsArithmetic:
    def test_add_matches_bigint(self):
        a, b = rand_rns(3), rand_rns(4)
        got = (a + b).to_int_coeffs()
        want = (a.to_int_coeffs() + b.to_int_coeffs()) % BASIS.product
        assert list(got) == list(want)

    def test_sub_neg_consistency(self):
        a, b = rand_rns(5), rand_rns(6)
        assert (a - b) == (a + (-b))

    def test_mul_matches_bigint_convolution(self):
        a, b = rand_rns(7), rand_rns(8)
        got = (a * b).to_int_coeffs()
        want = naive_negacyclic_mul(a.to_int_coeffs(), b.to_int_coeffs(), BASIS.product)
        assert [int(v) for v in got] == [int(v) for v in want]

    def test_scalar_mul(self):
        a = rand_rns(9)
        assert (a * 3) == (a + a + a)

    def test_basis_mismatch_rejected(self):
        a = rand_rns(10)
        b = rand_rns(11, basis=BASIS.prefix(2))
        with pytest.raises(ParameterError):
            _ = a + b

    def test_automorphism_limbwise_consistent(self):
        a = rand_rns(12)
        t = 5
        got = a.automorphism(t).to_int_coeffs()
        # Reference: automorphism on the composed big-int polynomial.
        # Compose manually: apply index map on big-int coefficients.
        n = N
        coeffs = a.to_int_coeffs()
        big_q = BASIS.product
        idx = (np.arange(n) * t) % (2 * n)
        ref = np.zeros(n, dtype=object)
        ref[idx % n] = np.where(idx >= n, (-coeffs) % big_q, coeffs)
        assert list(got) == list(ref)


class TestRescale:
    def test_rescale_divides_by_last_prime(self):
        """rescale(x) must equal round(x / q_last) up to +-1 (RNS rounding)."""
        a = rand_rns(13)
        q_last = BASIS.moduli[-1]
        scaled = a.rescale_last_limb()
        got = scaled.to_centered_int_coeffs()
        want = a.to_centered_int_coeffs()
        for g, w in zip(got, want):
            assert abs(int(g) * q_last - int(w)) <= q_last // 2 + q_last, (g, w)

    def test_rescale_exact_on_multiples(self):
        """If x is an exact multiple of q_last, rescale is exact division."""
        q_last = BASIS.moduli[-1]
        small_q = BASIS.prefix(3).product
        rng = np.random.default_rng(14)
        base = np.asarray([int(v) for v in rng.integers(0, 10**6, N)], dtype=object)
        a = RnsPoly.from_int_coeffs(N, BASIS, base * q_last)
        got = a.rescale_last_limb().to_int_coeffs()
        assert list(got) == list(base % small_q)

    def test_rescale_single_limb_rejected(self):
        a = rand_rns(15, basis=BASIS.prefix(1))
        with pytest.raises(ParameterError):
            a.rescale_last_limb()

    def test_drop_limb_preserves_prefix_residues(self):
        a = rand_rns(16)
        d = a.drop_last_limb()
        assert len(d.basis) == 3
        for x, y in zip(d.limbs, a.to_coeff().limbs[:3]):
            assert np.array_equal(x, y)


class TestBasisConvert:
    def test_bconv_error_is_small_multiple_of_q(self):
        """Approximate BConv returns x + k*Q for small k >= 0 (HPS bound k < L)."""
        a = rand_rns(17)
        big_q = BASIS.product
        converted = basis_convert(a, AUX)
        x = a.to_int_coeffs()
        got = converted.to_int_coeffs()
        aux_q = AUX.product
        for xi, gi in zip(x, got):
            diff = (int(gi) - int(xi)) % aux_q
            # diff must be k*Q mod aux_q for 0 <= k < L
            candidates = [(k * big_q) % aux_q for k in range(len(BASIS) + 1)]
            assert diff in candidates, f"BConv error not a small multiple of Q: {diff}"

    def test_bconv_exact_for_zero(self):
        """Zero converts exactly — every scaled residue is zero."""
        a = RnsPoly.zero(N, BASIS)
        got = basis_convert(a, AUX).to_int_coeffs()
        assert all(int(v) == 0 for v in got)

    @given(st.integers(0, 2**32))
    @settings(max_examples=20, deadline=None)
    def test_bconv_property(self, seed):
        rng = np.random.default_rng(seed)
        vals = np.asarray([int(v) for v in rng.integers(0, 2**40, N)], dtype=object)
        vals = vals % BASIS.product
        a = RnsPoly.from_int_coeffs(N, BASIS, vals)
        got = basis_convert(a, AUX).to_int_coeffs()
        aux_q = AUX.product
        for xi, gi in zip(vals, got):
            diff = (int(gi) - int(xi)) % aux_q
            ks = [(k * BASIS.product) % aux_q for k in range(len(BASIS) + 1)]
            assert diff in ks
