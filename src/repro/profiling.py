"""Operation counters bridging the functional and performance layers.

Wrap any functional computation in :func:`count_ops` to record how many
NTT passes and element-wise modular multiplications it actually executed;
:func:`estimate_hardware_seconds` then prices those counts on the HEAP
hardware model.  This closes the loop between the two layers of the
reproduction: the op counts driving the Table V-VIII predictions can be
cross-checked against counts *measured* from the real implementation at
toy scale (see ``tests/test_profiling.py``).

Usage::

    with count_ops() as stats:
        boot.bootstrap(ct)
    print(stats.ntt_calls, stats.pointwise_mults)
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, Iterator, Optional

if TYPE_CHECKING:
    from .hardware.config import HeapHwConfig


@dataclass
class OpStats:
    """Primitive-operation tally for one profiled region."""

    ntt_calls: int = 0            # forward + inverse transforms (per limb)
    ntt_points: int = 0           # total transform points (sum of sizes)
    pointwise_mults: int = 0      # element-wise modular multiplications
    external_products: int = 0    # RGSW x GLWE external products
    by_size: Dict[int, int] = field(default_factory=dict)
    #: How many rows each stacked NTT invocation carried (batch -> calls).
    #: A scalar implementation records everything under batch 1; the
    #: vectorised engine shows up as a few large-batch entries instead —
    #: the software mirror of HEAP keeping all 512 units busy.
    ntt_batch_hist: Dict[int, int] = field(default_factory=dict)
    #: External-product batch sizes (batch -> occurrences): how many
    #: accumulators advanced together through one fused decompose-NTT-MAC.
    ep_batch_hist: Dict[int, int] = field(default_factory=dict)
    # -- repack engine counters (LWE -> RLWE packing) --------------------
    repack_merge_keyswitches: int = 0   # merge-phase keyswitches (n_cts - 1 total)
    repack_trace_keyswitches: int = 0   # trace-phase keyswitches (log2(N/n_cts))
    repack_levels: int = 0              # batched automorphism levels executed
    repack_hoisted_decomposes: int = 0  # digit tensors reused via signed gather
    repack_fresh_decomposes: int = 0    # digit tensors decomposed from scratch
    repack_ntt_saved: int = 0           # per-limb NTT calls avoided by batching
    #: Keyswitches executed per repack level (level index -> count); in a
    #: full pack level ``k`` merges ``n/2^(k+1)`` pairs, then each trace
    #: level is a single fold — the counters make the pyramid visible.
    repack_level_hist: Dict[int, int] = field(default_factory=dict)
    # -- CKKS hybrid-keyswitch engine counters ---------------------------
    ks_modup_macs: int = 0      # limb-MACs spent lifting digits to Q*P
    ks_moddown_macs: int = 0    # limb-MACs spent scaling back down by P
    ks_ntt_saved: int = 0       # per-limb NTT calls avoided by hoisting
    ks_hoisted_rotations: int = 0  # rotations served from one shared lift
    bconv_plan_hits: int = 0    # BconvPlan cache hits
    bconv_plan_misses: int = 0  # BconvPlan cache builds
    # -- bootstrap fan-out counters (local + cluster executors) ----------
    fanout_dispatches: int = 0  # BlindRotate slices dispatched (first attempts)
    fanout_retries: int = 0     # recovery re-dispatches after a detected fault
    fanout_redispatched_lwes: int = 0  # LWE ciphertexts re-sent by recovery
    fanout_pool_spinups: int = 0       # worker pools started (fork + attach)
    fanout_pool_spinup_s: float = 0.0  # wall-clock spent spinning pools up
    fanout_worker_respawns: int = 0    # dead workers replaced mid-run
    fanout_shared_key_bytes: int = 0   # key bytes published to shared memory
    # -- programmable-bootstrap LUT registry counters --------------------
    lut_cache_hits: int = 0    # built LUT tensors served from the registry
    lut_cache_misses: int = 0  # LUT tensor builds (one N-point NTT per limb)
    # -- bootstrap service counters (repro.service) ----------------------
    service_requests: int = 0       # requests accepted into the queue
    service_rejected: int = 0       # requests refused by backpressure
    service_batches: int = 0        # coalesced batches dispatched
    service_coalesced_lwes: int = 0  # LWE blind-rotates across those batches
    service_coalesce_wait_s: float = 0.0  # summed request queue wait
    #: Achieved batch fill (LWEs per dispatched batch -> occurrences) —
    #: the software mirror of how full the (N, batch, h+1) tensors ran.
    service_batch_fill_hist: Dict[int, int] = field(default_factory=dict)
    #: Queue depth observed at each dispatch (depth -> occurrences).
    service_queue_depth_hist: Dict[int, int] = field(default_factory=dict)
    service_key_cache_hits: int = 0       # requests served by resident keys
    service_key_cache_misses: int = 0     # key-provider loads
    service_key_cache_evictions: int = 0  # entries evicted to fit capacity
    service_key_cache_demotions: int = 0  # entries dropped to seed+b form

    def record_keyswitch(self, *, modup_macs: int = 0, moddown_macs: int = 0,
                         ntt_saved: int = 0, hoisted_rotations: int = 0) -> None:
        self.ks_modup_macs += modup_macs
        self.ks_moddown_macs += moddown_macs
        self.ks_ntt_saved += ntt_saved
        self.ks_hoisted_rotations += hoisted_rotations

    def record_bconv_plan(self, hit: bool) -> None:
        if hit:
            self.bconv_plan_hits += 1
        else:
            self.bconv_plan_misses += 1

    def record_fanout(self, *, dispatches: int = 0, retries: int = 0,
                      redispatched_lwes: int = 0, pool_spinups: int = 0,
                      pool_spinup_s: float = 0.0, worker_respawns: int = 0,
                      shared_key_bytes: int = 0) -> None:
        self.fanout_dispatches += dispatches
        self.fanout_retries += retries
        self.fanout_redispatched_lwes += redispatched_lwes
        self.fanout_pool_spinups += pool_spinups
        self.fanout_pool_spinup_s += pool_spinup_s
        self.fanout_worker_respawns += worker_respawns
        self.fanout_shared_key_bytes += shared_key_bytes

    def record_lut_cache(self, hit: bool) -> None:
        if hit:
            self.lut_cache_hits += 1
        else:
            self.lut_cache_misses += 1

    def record_service(self, *, requests: int = 0, rejected: int = 0,
                       batch_fill: Optional[int] = None,
                       coalesce_wait_s: float = 0.0,
                       queue_depth: Optional[int] = None,
                       cache_hits: int = 0, cache_misses: int = 0,
                       cache_evictions: int = 0,
                       cache_demotions: int = 0) -> None:
        """Record coalescing-service activity: accepted/rejected
        requests, one dispatched batch (``batch_fill`` = its LWE count,
        ``queue_depth`` = pending requests at dispatch), queue wait, and
        key-cache traffic."""
        self.service_requests += requests
        self.service_rejected += rejected
        self.service_coalesce_wait_s += coalesce_wait_s
        if batch_fill is not None:
            self.service_batches += 1
            self.service_coalesced_lwes += batch_fill
            self.service_batch_fill_hist[batch_fill] = (
                self.service_batch_fill_hist.get(batch_fill, 0) + 1)
        if queue_depth is not None:
            self.service_queue_depth_hist[queue_depth] = (
                self.service_queue_depth_hist.get(queue_depth, 0) + 1)
        self.service_key_cache_hits += cache_hits
        self.service_key_cache_misses += cache_misses
        self.service_key_cache_evictions += cache_evictions
        self.service_key_cache_demotions += cache_demotions

    def merge(self, other: "OpStats") -> None:
        """Add another region's tally into this one (every scalar counter
        summed, every histogram merged per key) — how a nested
        :func:`count_ops` region forwards its ops to its parent."""
        for f in fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            else:
                setattr(self, f.name, mine + theirs)

    def record_ntt(self, n: int, batch: int) -> None:
        self.ntt_calls += batch
        self.ntt_points += n * batch
        self.by_size[n] = self.by_size.get(n, 0) + batch
        self.ntt_batch_hist[batch] = self.ntt_batch_hist.get(batch, 0) + 1

    def record_mul(self, count: int) -> None:
        self.pointwise_mults += count

    def record_external_product(self, batch: int = 1) -> None:
        self.external_products += batch
        self.ep_batch_hist[batch] = self.ep_batch_hist.get(batch, 0) + 1

    def record_repack_level(self, level: int, keyswitches: int, *,
                            phase: str, hoisted: int, fresh: int,
                            ntt_saved: int) -> None:
        if phase == "merge":
            self.repack_merge_keyswitches += keyswitches
        else:
            self.repack_trace_keyswitches += keyswitches
        self.repack_levels += 1
        self.repack_hoisted_decomposes += hoisted
        self.repack_fresh_decomposes += fresh
        self.repack_ntt_saved += ntt_saved
        self.repack_level_hist[level] = (
            self.repack_level_hist.get(level, 0) + keyswitches
        )

    @property
    def butterfly_mults(self) -> int:
        """Scalar multiplications implied by the recorded transforms."""
        total = 0
        for n, calls in self.by_size.items():
            total += calls * (n // 2) * (n.bit_length() - 1)
        return total

    def total_scalar_mults(self) -> int:
        return self.butterfly_mults + self.pointwise_mults


#: The active collector (None = profiling disabled, zero overhead-ish).
_ACTIVE: Optional[OpStats] = None


def record_ntt(n: int, batch: int = 1) -> None:
    if _ACTIVE is not None:
        _ACTIVE.record_ntt(n, batch)


def record_mul(count: int) -> None:
    if _ACTIVE is not None:
        _ACTIVE.record_mul(count)


def record_external_product(batch: int = 1) -> None:
    """Record ``batch`` external products executed as one fused operation."""
    if _ACTIVE is not None:
        _ACTIVE.record_external_product(batch)


def record_repack_level(level: int, keyswitches: int, *, phase: str = "merge",
                        hoisted: int = 0, fresh: int = 0,
                        ntt_saved: int = 0) -> None:
    """Record one batched repack level (``keyswitches`` merged into one pass)."""
    if _ACTIVE is not None:
        _ACTIVE.record_repack_level(level, keyswitches, phase=phase,
                                    hoisted=hoisted, fresh=fresh,
                                    ntt_saved=ntt_saved)


def record_keyswitch(*, modup_macs: int = 0, moddown_macs: int = 0,
                     ntt_saved: int = 0, hoisted_rotations: int = 0) -> None:
    """Record one hybrid-keyswitch pass (MAC counts are per limb element)."""
    if _ACTIVE is not None:
        _ACTIVE.record_keyswitch(modup_macs=modup_macs, moddown_macs=moddown_macs,
                                 ntt_saved=ntt_saved,
                                 hoisted_rotations=hoisted_rotations)


def record_bconv_plan(hit: bool) -> None:
    """Record a BconvPlan cache lookup (hit) or build (miss)."""
    if _ACTIVE is not None:
        _ACTIVE.record_bconv_plan(hit)


def record_fanout(*, dispatches: int = 0, retries: int = 0,
                  redispatched_lwes: int = 0, pool_spinups: int = 0,
                  pool_spinup_s: float = 0.0, worker_respawns: int = 0,
                  shared_key_bytes: int = 0) -> None:
    """Record bootstrap fan-out activity (dispatches / recovery retries /
    worker-pool lifecycle)."""
    if _ACTIVE is not None:
        _ACTIVE.record_fanout(dispatches=dispatches, retries=retries,
                              redispatched_lwes=redispatched_lwes,
                              pool_spinups=pool_spinups,
                              pool_spinup_s=pool_spinup_s,
                              worker_respawns=worker_respawns,
                              shared_key_bytes=shared_key_bytes)


def record_lut_cache(hit: bool) -> None:
    """Record a LUT-registry lookup: served from cache (hit) or built
    fresh (miss)."""
    if _ACTIVE is not None:
        _ACTIVE.record_lut_cache(hit)


def record_service(*, requests: int = 0, rejected: int = 0,
                   batch_fill: Optional[int] = None,
                   coalesce_wait_s: float = 0.0,
                   queue_depth: Optional[int] = None,
                   cache_hits: int = 0, cache_misses: int = 0,
                   cache_evictions: int = 0,
                   cache_demotions: int = 0) -> None:
    """Record bootstrap-service activity (request intake, one coalesced
    batch dispatch, key-cache traffic) on the active collector."""
    if _ACTIVE is not None:
        _ACTIVE.record_service(requests=requests, rejected=rejected,
                               batch_fill=batch_fill,
                               coalesce_wait_s=coalesce_wait_s,
                               queue_depth=queue_depth,
                               cache_hits=cache_hits,
                               cache_misses=cache_misses,
                               cache_evictions=cache_evictions,
                               cache_demotions=cache_demotions)


@contextlib.contextmanager
def count_ops() -> Iterator[OpStats]:
    """Collect op counts for the enclosed block.

    Regions nest: while an inner region is active its collector receives
    the ops, and when it closes the inner tally is *forwarded* to the
    enclosing region, so an outer region always sees the inclusive total
    (earlier revisions silently dropped everything recorded inside a
    nested region).
    """
    global _ACTIVE
    previous = _ACTIVE
    stats = OpStats()
    _ACTIVE = stats
    try:
        yield stats
    finally:
        _ACTIVE = previous
        if previous is not None:
            previous.merge(stats)


def estimate_hardware_seconds(stats: OpStats,
                              hw: Optional[HeapHwConfig] = None) -> float:
    """Price measured op counts on the HEAP compute array (compute-bound
    estimate: total scalar multiplications over 512 pipelined units)."""
    # Imported here: profiling is a leaf module used by the hot paths, and
    # a top-level import would cycle through repro.hardware -> repro.switching.
    from .hardware.config import HeapHwConfig

    hw = hw or HeapHwConfig()
    cycles = stats.total_scalar_mults() / hw.num_mod_units
    return hw.cycles_to_seconds(cycles)
