"""Gadget (digit) decomposition.

TFHE's external product and the hybrid key switch both rely on writing a
ring element ``a`` as ``a = sum_k a_k * B^k`` with small digits ``a_k``;
the paper fixes the decomposition degree ``d = 2`` for both schemes
(Section II-B / III-C).  We implement two flavours:

* *unsigned* digits in ``[0, B)`` — simplest, used by tests as a
  reference; and
* *signed* (balanced) digits in ``[-B/2, B/2)`` — halves the noise growth
  of the external product and is what real TFHE implementations (and the
  accelerator) use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ParameterError


@dataclass(frozen=True)
class GadgetVector:
    """Decomposition parameters: ``digits`` digits of ``base_bits`` bits.

    The gadget covers the top ``digits * base_bits`` bits of ``q``:
    digit ``k`` multiplies ``q / B^(k+1)`` (TFHE convention, approximate
    decomposition of the most-significant bits).
    """

    q: int
    base_bits: int
    digits: int

    def __post_init__(self):
        if self.base_bits <= 0 or self.digits <= 0:
            raise ParameterError("base_bits and digits must be positive")
        if self.digits * self.base_bits > self.q.bit_length():
            raise ParameterError(
                f"gadget covers {self.digits * self.base_bits} bits but q has "
                f"only {self.q.bit_length()}"
            )

    @property
    def base(self) -> int:
        return 1 << self.base_bits

    def factors(self) -> List[int]:
        """``g_k ~ q / B^(k+1)``: the scale each digit is multiplied by."""
        logq = self.q.bit_length()
        return [1 << (logq - (k + 1) * self.base_bits) for k in range(self.digits)]

    # -- decomposition -----------------------------------------------------------

    def decompose(self, values: np.ndarray) -> List[np.ndarray]:
        """Signed (balanced) approximate decomposition of residues mod q.

        Returns ``digits`` arrays of centred digits in ``[-B/2, B/2]`` such
        that ``sum_k d_k * g_k`` is within rounding error (< g_last) of the
        centred representative of ``values``.
        """
        return self.decompose_tensor(np.asarray(values, dtype=object))

    def decompose_tensor(self, values: np.ndarray) -> List[np.ndarray]:
        """Shape- and dtype-preserving signed decomposition.

        Identical arithmetic to :meth:`decompose` (tests assert bit-equality)
        but the input dtype is kept: an int64 tensor of residues below
        ``2**31`` stays int64 end to end, which is what lets the batched
        blind-rotate engine decompose a whole ``(batch, h+1, N)`` accumulator
        stack in a handful of vectorised passes.  numpy's ``%`` and ``>>``
        share Python's floor semantics on negative int64, so both paths
        produce the same digits.
        """
        vals = np.asarray(values)
        half_q = self.q // 2
        centered = np.where(vals > half_q, vals - self.q, vals)
        logq = self.q.bit_length()
        # Round to the precision the gadget can express.
        shift = logq - self.digits * self.base_bits
        if shift > 0:
            centered = (centered + (1 << (shift - 1))) >> shift
        rem = centered
        half_b = self.base // 2
        # Extract from least significant gadget digit upward, balanced.  The
        # top digit absorbs the final carry unbalanced (range ~ [-B/2-1, B/2+1])
        # so that recomposition is exact rather than wrapping modulo B^d.
        raw = []
        for k in range(self.digits):
            if k == self.digits - 1:
                raw.append(rem)
                break
            # base is a power of two, so the floor-mod is a mask — exact for
            # both int64 and object (Python int) lanes, including negatives.
            # Shifting by B/2 before the mask centres the digit branch-free:
            # ((x + B/2) mod B) - B/2 lands in [-B/2, B/2) with d = x mod B.
            d = ((rem + half_b) & (self.base - 1)) - half_b
            raw.append(d)
            rem = (rem - d) >> self.base_bits
        # raw[0] is the *least* significant digit -> corresponds to the
        # smallest factor g_{digits-1}; reverse so index k matches factors()[k].
        return list(reversed(raw))

    def recompose(self, digits: List[np.ndarray]) -> np.ndarray:
        """Inverse of :meth:`decompose` modulo ``q`` (up to rounding error)."""
        if len(digits) != self.digits:
            raise ParameterError("digit count mismatch")
        acc = np.zeros_like(np.asarray(digits[0], dtype=object))
        for d, g in zip(digits, self.factors()):
            acc = acc + np.asarray(d, dtype=object) * g
        return np.mod(acc, self.q)

    def max_error(self) -> int:
        """Upper bound on ``|recompose(decompose(x)) - x|`` (centred)."""
        logq = self.q.bit_length()
        shift = logq - self.digits * self.base_bits
        return 1 << shift if shift > 0 else 1


def exact_digits(value_arr: np.ndarray, base: int, count: int) -> List[np.ndarray]:
    """Exact unsigned base-``base`` digits (LSB first) of non-negative ints.

    Used by the hybrid key switch's RNS-digit variant and as the test
    reference for the signed decomposition.
    """
    arr = np.asarray(value_arr, dtype=object)
    out = []
    for _ in range(count):
        out.append(np.mod(arr, base))
        arr = arr // base
    return out
