"""Non-linear functions on CKKS ciphertexts via scheme switching (§III-A).

The paper motivates scheme switching with exactly this use case before
specialising it to bootstrapping: "for each extracted LWE ciphertext, we
perform the blind rotation with some initial function f.  The function f
can be set as required by the application ... sigmoid, exponentiation, or
ReLU".  This module implements that general path:

1. Extract the ``N`` coefficient LWE ciphertexts of a CKKS ciphertext
   (mod ``q``, dimension ``N``).
2. ModulusSwitch each to ``2N``.  The phase becomes
   ``t_i ~ round(2N * m_i / q) (mod 2N)`` — the ``q*k`` wraps vanish
   modulo ``2N``, so ``t_i`` is a ``log2(2N)``-bit quantisation of the
   slot-encoded value.
3. BlindRotate with the LUT ``g(t) = p * Delta * f(t * q / (2N * Delta))``
   (folded with ``N^{-1}`` for the repack factor), repack, and rescale by
   ``p`` — an encryption of ``Delta * f(v_i)`` over the full modulus
   ``Q``, i.e. a *fresh, top-level* CKKS ciphertext of ``f(values)``.

Precision is limited by the ``2N``-bucket quantisation (plus blind-rotate
noise), and the function domain must satisfy ``|v| < q / (4 * Delta)`` so
the quantised phase stays inside the anti-periodic LUT's faithful range.
Unlike the Chebyshev route this evaluates *discontinuous* functions
(sign, step, ReLU's kink) exactly and costs no multiplicative depth — the
output is at the top level.

The LUT acts per *coefficient* of the plaintext polynomial, so inputs
must be **coefficient-packed** (``CkksEvaluator.encrypt_coeffs`` — the
Pegasus packing): the canonical embedding mixes slot values across
coefficients and would turn a slot-wise non-linearity into garbage.  A
slot-packed ciphertext can be brought to coefficient packing with one
SlotToCoeff linear transform (see :mod:`repro.ckks.bootstrap`'s
matrices) and back afterwards, exactly as Pegasus [41] does; the tests
and example here use coefficient packing directly.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..errors import ParameterError
from ..math.rns import RnsPoly
from ..tfhe.blind_rotate import blind_rotate_batch, build_test_vector
from ..tfhe.lwe import LweCiphertext
from ..tfhe.repack import repack_with_counters
from .bootstrap import BootstrapTrace
from .keys import SwitchingKeySet


class FunctionalEvaluator:
    """Evaluate arbitrary real functions through the TFHE LUT path."""

    def __init__(self, ctx: CkksContext, keys: SwitchingKeySet,
                 repack_engine: str = "vectorized"):
        self.ctx = ctx
        self.keys = keys
        self.raised_basis = keys.raised_basis
        self.repack_engine = repack_engine

    def max_abs_input(self) -> float:
        """Largest |v| the quantised phase can represent faithfully."""
        q = float(self.ctx.full_basis.moduli[0])
        return q / (4.0 * self.ctx.params.scale)

    def quantisation_step(self) -> float:
        """Input resolution: one phase bucket in value units."""
        q = float(self.ctx.full_basis.moduli[0])
        return q / (2.0 * self.ctx.n * self.ctx.params.scale)

    def evaluate(self, ct: CkksCiphertext, f: Callable[[float], float],
                 trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        """Apply ``f`` element-wise to a *level-0*, coefficient-packed
        CKKS ciphertext.

        Returns a fresh top-level coefficient-packed ciphertext of
        ``f(values)`` — the LUT evaluation refreshes noise as a side
        effect (it *is* a programmable bootstrap).
        """
        if ct.level != 0:
            raise ParameterError(
                "functional evaluation consumes a level-0 ciphertext "
                "(drop_to_level first)")
        n = self.ctx.n
        two_n = 2 * n
        q = ct.basis.moduli[0]
        trace = trace if trace is not None else BootstrapTrace()
        trace.reset()  # one trace records exactly one run (see BootstrapTrace)

        c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
        c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
        # Extract + modulus switch in one step: round(2N * x / q) mod 2N.
        lwes = []
        for i in range(n):
            head = c1[: i + 1][::-1]
            tail = c1[i + 1:][::-1]
            a_q = np.concatenate([head, (q - tail) % q]) % q
            a_ms = ((a_q * two_n + q // 2) // q) % two_n
            b_ms = ((int(c0[i]) * two_n + q // 2) // q) % two_n
            lwes.append(LweCiphertext(a=a_ms.astype(np.int64), b=int(b_ms),
                                      q=two_n))
        trace.num_lwe = len(lwes)

        tv = self._build_lut(f, ct.scale)
        accs = blind_rotate_batch(tv, lwes, self.keys.brk)
        trace.num_blind_rotates = len(accs)
        packed, repack_ctr = repack_with_counters(accs, self.keys.auto_keys,
                                                  engine=self.repack_engine)
        trace.repack_merge_keyswitches = repack_ctr.merge_keyswitches
        trace.repack_trace_keyswitches = repack_ctr.trace_keyswitches
        trace.repack_keyswitches = repack_ctr.total_keyswitches

        # Rescale by p: Delta * f(v) lands over the full basis Q.
        body = packed.body.rescale_last_limb().to_eval()
        mask = packed.mask[0].rescale_last_limb().to_eval()
        return CkksCiphertext(c0=body, c1=mask, scale=ct.scale)

    # -- internals ----------------------------------------------------------------

    def _build_lut(self, f: Callable[[float], float], delta: float) -> RnsPoly:
        """LUT over phase buckets: bucket ``t`` holds
        ``p * Delta * f(t_signed * q / (2N * Delta)) * N^{-1} mod Qp``,
        anti-periodically symmetrised (``g(t+N) = -g(t)``), which is exact
        for odd functions and clamps others at the domain edge."""
        n = self.ctx.n
        two_n = 2 * n
        q = self.ctx.full_basis.moduli[0]
        p = self.raised_basis.moduli[-1]
        big_qp = self.raised_basis.product
        n_inv = pow(n, -1, big_qp)
        step = float(q) / (two_n * delta)

        def value(t_signed: int) -> int:
            v = f(t_signed * step)
            return int(round(v * delta)) * p

        def g(t: int) -> int:
            t = t % two_n
            # Faithful range: t in [0, N/2) -> positive inputs,
            # t in (3N/2, 2N) -> negative inputs; the middle is the
            # anti-periodic image.
            if t < n // 2:
                val = value(t)
            elif t < n:
                val = -value(t - n)          # forced by anti-periodicity
            elif t < 3 * n // 2:
                val = -value(t - n)
            else:
                val = value(t - two_n)
            return (val * n_inv) % big_qp

        return build_test_vector(g, n, self.raised_basis)


def sign_fn(x: float) -> float:
    return 1.0 if x > 0 else (-1.0 if x < 0 else 0.0)


def relu_fn(x: float) -> float:
    return x if x > 0 else 0.0


def sigmoid_fn(x: float) -> float:
    return 1.0 / (1.0 + math.exp(-x))
