"""Batched hybrid-keyswitch engine: the CKKS analogue of ``batch_engine``.

HEAP's Section IV-A identifies the basis conversions inside hybrid key
switching (ModUp / ModDown) as the exact fused-MAC workload its 512
modular units accelerate, and HEAAN-Demystified shows BConv plus the
digit inner product dominating CKKS runtime on conventional hardware.
The scalar :class:`~repro.ckks.keyswitch.KeySwitcher` walks those loops
limb by limb in Python with an object-dtype MAC; this engine runs the
same mathematics as a handful of stacked uint64 passes:

* **ModUp** — all digit groups are decomposed at once: verbatim limbs are
  gathered, the cross-basis limbs come from one cached
  :class:`~repro.math.rns.BconvPlan` matrix-MAC per group, and the whole
  ``(L_ext, dnum, N)`` digit tensor goes through ONE stacked NTT
  (:class:`~repro.math.ntt.StackedNttEngine`) instead of
  ``dnum * L_ext`` per-limb transforms.
* **Inner product** — the switching key's components are lifted once per
  ``SwitchKey`` into an eval-domain ``(L_ext, dnum, 2, N)`` tensor
  (cached on the key, ARK's key-reuse insight) and the digit inner
  product is a single lazy uint64 multiply-sum over the ``dnum`` axis.
* **ModDown** — the ``P``-limbs of both accumulator polynomials are
  converted back with a cached plan and the ``* P^{-1}`` correction is
  one fused stacked pass; for hoisted rotation sets, ALL rotations'
  accumulators share one stacked inverse/forward NTT.
* **Hoisting** (Halevi-Shoup) — ``rotate_hoisted`` decomposes once, then
  applies every baby-step automorphism as a single eval-domain gather
  (``perm.eval_src`` from :mod:`repro.math.automorphism`) on the lifted
  digit tensor: a whole BSGS baby-step set becomes one gather + one
  stacked inner product + one batched ModDown.

Bit-identity: the stacked NTT is bit-identical per limb to the scalar
engines, the BConv plan is bit-identical to the frozen reference MAC,
lazy sums agree with iterated ``mac`` modulo each prime, and the
eval-domain gather equals coefficient-permute-then-NTT exactly — so
every routed operation (relinearise, rotate, conjugate, hoisted BSGS,
conventional bootstrap end-to-end) matches ``keyswitch_engine=
"reference"`` bit for bit; ``tests/test_keyswitch_engine.py`` asserts
it at every level and digit-group count.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ParameterError
from ..math.automorphism import get_automorphism_perm
from ..math.ntt import StackedNttEngine, get_stacked_ntt_engine
from ..math.rns import BconvPlan, RnsBasis, RnsPoly, get_bconv_plan
from ..profiling import record_keyswitch, record_mul
from .context import CkksContext
from .keys import SwitchKey

_U64_MAX = (1 << 64) - 1
_FAST_BOUND = 1 << 31


class _GroupPlan:
    """Static ModUp layout for one digit group at one level."""

    def __init__(self, j: int, present_rows: List[int], verbatim_rows: List[int],
                 other_rows: List[int], bconv: BconvPlan):
        self.j = j
        #: Rows of the level's target stack holding this group's residues.
        self.present_rows = present_rows
        #: Rows of the extended stack the residues are copied to verbatim.
        self.verbatim_rows = verbatim_rows
        #: Rows of the extended stack filled by the basis conversion
        #: (order matches ``bconv.dst_moduli``).
        self.other_rows = other_rows
        self.bconv = bconv


class _LevelPlan:
    """Everything static about key switching at one ciphertext level."""

    def __init__(self, ctx: CkksContext, num_limbs: int):
        self.num_limbs = num_limbs
        self.target_moduli: Tuple[int, ...] = tuple(
            ctx.full_basis.moduli[:num_limbs])
        self.special_moduli: Tuple[int, ...] = tuple(ctx.special_basis.moduli)
        self.ext_moduli: Tuple[int, ...] = self.target_moduli + self.special_moduli
        self.rows_ext = len(self.ext_moduli)
        self.rows_target = num_limbs
        self.ntt_target: StackedNttEngine = get_stacked_ntt_engine(
            ctx.n, self.target_moduli)
        self.ntt_ext: StackedNttEngine = get_stacked_ntt_engine(
            ctx.n, self.ext_moduli)
        pos_in_ext = {q: i for i, q in enumerate(self.ext_moduli)}
        self.groups: List[_GroupPlan] = []
        level = num_limbs - 1
        for j, group in enumerate(ctx.digit_groups(ctx.max_level)):
            present = [i for i in group if i <= level]
            if not present:
                continue
            group_moduli = [ctx.full_basis.moduli[i] for i in present]
            group_set = set(group_moduli)
            others = [q for q in self.ext_moduli if q not in group_set]
            self.groups.append(_GroupPlan(
                j=j,
                present_rows=list(present),
                verbatim_rows=[pos_in_ext[q] for q in group_moduli],
                other_rows=[pos_in_ext[q] for q in others],
                bconv=get_bconv_plan(group_moduli, others),
            ))
        self.dnum_active = len(self.groups)
        self.down_plan: BconvPlan = get_bconv_plan(
            self.special_moduli, self.target_moduli)
        # -- ModDown constants ------------------------------------------------
        p_prod = 1
        for p in self.special_moduli:
            p_prod *= p
        self._qv_ext = np.asarray(self.ext_moduli, dtype=np.uint64)
        self._qv_t = np.asarray(self.target_moduli, dtype=np.uint64)
        self._p_inv_u = np.asarray(
            [pow(p_prod % q, -1, q) for q in self.target_moduli],
            dtype=np.uint64)
        # Exact bound for the lazy digit inner product: ``dnum_active``
        # products of canonical residues below the largest extended prime.
        max_q = max(self.ext_moduli)
        self.mac_lazy = self.dnum_active * (max_q - 1) ** 2 <= _U64_MAX
        # Per-switch BConv MAC tallies (limb elements), for profiling.
        self.modup_macs = sum(
            len(g.present_rows) * len(g.other_rows) * ctx.n for g in self.groups)
        self.moddown_macs = len(self.special_moduli) * num_limbs * ctx.n

    def qv_ext(self, *trailing_ones: int) -> np.ndarray:
        return self._qv_ext.reshape((-1,) + (1,) * len(trailing_ones))

    def qv_target(self, *trailing_ones: int) -> np.ndarray:
        return self._qv_t.reshape((-1,) + (1,) * len(trailing_ones))


class CkksKeyswitchEngine:
    """Batched hybrid key switching over a context's modulus chain.

    Construct via :meth:`for_context`; raises
    :class:`~repro.errors.ParameterError` when any extended-basis prime
    exceeds the fast-modulus bound (``2^31``), in which case callers fall
    back to the scalar reference path.
    """

    def __init__(self, ctx: CkksContext):
        if any(q >= _FAST_BOUND for q in ctx.extended_basis.moduli):
            raise ParameterError(
                "keyswitch engine requires fast moduli (q < 2^31)")
        self.ctx = ctx
        self.n = ctx.n
        self._level_plans: Dict[int, _LevelPlan] = {}

    @classmethod
    def for_context(cls, ctx: CkksContext) -> "CkksKeyswitchEngine":
        return cls(ctx)

    # -- plumbing -----------------------------------------------------------------

    def handles(self, basis: RnsBasis) -> bool:
        """True when ``basis`` is a prefix of the context's limb chain."""
        m = basis.moduli
        return list(self.ctx.full_basis.moduli[:len(m)]) == list(m)

    def _plan(self, basis: RnsBasis) -> _LevelPlan:
        num = len(basis)
        plan = self._level_plans.get(num)
        if plan is None:
            plan = _LevelPlan(self.ctx, num)
            self._level_plans[num] = plan
        return plan

    @staticmethod
    def _stack_limbs(poly: RnsPoly) -> np.ndarray:
        return np.stack(
            [np.ascontiguousarray(limb, dtype=np.int64) for limb in poly.limbs])

    # -- ModUp: stacked digit decomposition ---------------------------------------

    def lift_digits_stack(self, d: RnsPoly) -> Tuple[_LevelPlan, np.ndarray]:
        """Decompose ``d`` into the eval-domain digit tensor.

        Returns ``(plan, dig)`` with ``dig`` of shape
        ``(L_ext, dnum_active, N)``: row ``i``, digit ``j`` holds the
        group-``j`` lift's residue mod ``ext_moduli[i]``, NTT'd.  The lift
        is coefficient-wise, so it commutes bit-exactly with ring
        automorphisms — callers may permute ``dig`` per rotation
        (Halevi-Shoup hoisting).
        """
        plan = self._plan(d.basis)
        stack = self._stack_limbs(d)
        if d.domain == "eval":
            coeff = plan.ntt_target.inverse(stack)
        else:
            coeff = stack
        dig = np.empty((plan.rows_ext, plan.dnum_active, self.n), dtype=np.int64)
        for slot, g in enumerate(plan.groups):
            group_stack = coeff[g.present_rows]
            dig[g.verbatim_rows, slot] = group_stack
            dig[g.other_rows, slot] = g.bconv.convert_stack(group_stack)
        dig_eval = plan.ntt_ext.forward(dig)
        record_keyswitch(modup_macs=plan.modup_macs)
        return plan, dig_eval

    # -- key tensors ----------------------------------------------------------------

    def _key_tensor(self, key: SwitchKey, plan: _LevelPlan) -> np.ndarray:
        """Eval-domain ``(L_ext, dnum_active, 2, N)`` view of a switch key.

        Index 2 separates the ``b`` (0) and ``a`` (1) components.  Lifted
        once per ``(key, extended basis)`` through the process-wide key
        registry (ARK-style inter-operation reuse: keyswitch, rotation
        and relinearisation share the same tensor, and the bytes are
        accounted centrally).  ``key._eval_tensors`` mirrors the registry
        entry — kept consistent by the registry's drop hook — so the key
        object still carries its derived views for introspection.
        """
        cache_key = plan.ext_moduli
        kt = key._eval_tensors.get(cache_key)
        if kt is not None:
            return kt

        def build() -> np.ndarray:
            full = key.components[0][0].basis
            pos = [full.moduli.index(q) for q in plan.ext_moduli]
            lifted = np.empty((plan.rows_ext, plan.dnum_active, 2, self.n),
                              dtype=np.int64)
            for slot, g in enumerate(plan.groups):
                b_j, a_j = key.components[g.j]
                for row, p in enumerate(pos):
                    lifted[row, slot, 0] = np.ascontiguousarray(
                        b_j.limbs[p], dtype=np.int64)
                    lifted[row, slot, 1] = np.ascontiguousarray(
                        a_j.limbs[p], dtype=np.int64)
            return lifted

        from ..keyreg import get_key_registry

        kt = get_key_registry().get_or_build(
            key, "ckks_switch_lift", cache_key, build,
            on_drop=lambda o, _k=cache_key: o._eval_tensors.pop(_k, None))
        key._eval_tensors[cache_key] = kt
        return kt

    # -- digit inner product --------------------------------------------------------

    def _inner_product(self, dig: np.ndarray, key_t: np.ndarray,
                       plan: _LevelPlan) -> np.ndarray:
        """Fused MAC of the digit tensor against a key tensor.

        ``dig`` is ``(L_ext, dnum, N)`` or ``(L_ext, dnum, R, N)``;
        ``key_t`` matches it with one extra axis of size 2 (the ``b``/``a``
        components) before the ``N`` axis.  Returns the canonical
        accumulator with the ``dnum`` axis summed out.
        """
        d_u = dig.view(np.uint64)[..., None, :]
        k_u = key_t.view(np.uint64)
        record_mul(dig.size * 2)
        if plan.mac_lazy:
            # lazy-bound: each product of canonical residues is below
            # (max_q - 1)^2 and dnum_active of them are summed; the exact
            # worst case was checked against 2^64 - 1 at plan build
            # (plan.mac_lazy), so the deferred sum cannot wrap.
            acc = (d_u * k_u).sum(axis=1)
            acc %= plan.qv_ext(*range(acc.ndim - 1))
        else:
            shape = np.broadcast_shapes(d_u.shape, k_u.shape)
            acc = np.zeros((shape[0],) + shape[2:], dtype=np.uint64)
            qv = plan.qv_ext(*range(acc.ndim - 1))
            for j in range(dig.shape[1]):
                acc = (acc + (d_u[:, j] * k_u[:, j]) % qv) % qv
        return acc.view(np.int64)

    # -- ModDown --------------------------------------------------------------------

    def _mod_down_stack(self, acc: np.ndarray, plan: _LevelPlan) -> np.ndarray:
        """Batched ModDown of an eval-domain ``(L_ext, ..., N)`` stack.

        Returns the eval-domain ``(L_target, ..., N)`` result of
        ``(u - BConv([u]_P -> Q_l)) * P^{-1}`` — one stacked inverse NTT,
        one plan MAC, one fused correction pass, one stacked forward NTT,
        regardless of how many polynomials ride along the batch axes.
        """
        coeff = plan.ntt_ext.inverse(acc)
        q_rows = coeff[:plan.rows_target].view(np.uint64)
        p_rows = coeff[plan.rows_target:]
        corr = plan.down_plan.convert_stack(p_rows).view(np.uint64)
        trailing = q_rows.ndim - 1
        qv = plan.qv_target(*range(trailing))
        p_inv = plan._p_inv_u.reshape((-1,) + (1,) * trailing)
        # lazy-bound: q_rows < q and (q - corr) <= q give a sum below
        # 2q < 2^32; multiplying by p_inv < q < 2^31 stays below 2^63,
        # within uint64; one reduction afterwards.
        t = ((q_rows + (qv - corr)) * p_inv) % qv
        record_keyswitch(moddown_macs=plan.moddown_macs)
        return plan.ntt_target.forward(t.view(np.int64))

    def mod_down_poly(self, u: RnsPoly, target: RnsBasis) -> RnsPoly:
        """Poly-level ModDown (drop-in for the scalar ``mod_down``)."""
        plan = self._plan(target)
        if tuple(u.basis.moduli) != plan.ext_moduli:
            raise ParameterError("ModDown basis arithmetic mismatch")
        stack = self._stack_limbs(u)[:, None, :]
        if u.domain != "eval":
            stack = plan.ntt_ext.forward(stack)
        out = self._mod_down_stack(stack, plan)
        limbs = [out[i, 0] for i in range(plan.rows_target)]
        return RnsPoly(u.n, target, limbs, "eval")

    # -- the main entry points --------------------------------------------------------

    def switch(self, d: RnsPoly, key: SwitchKey) -> Tuple[RnsPoly, RnsPoly]:
        """Batched equivalent of ``KeySwitcher.switch`` (bit-identical)."""
        plan, dig = self.lift_digits_stack(d)
        key_t = self._key_tensor(key, plan)
        acc = self._inner_product(dig, key_t, plan)        # (L_ext, 2, N)
        out = self._mod_down_stack(acc, plan)              # (L_t, 2, N)
        target = d.basis
        u0 = RnsPoly(d.n, target, [out[i, 0] for i in range(plan.rows_target)],
                     "eval")
        u1 = RnsPoly(d.n, target, [out[i, 1] for i in range(plan.rows_target)],
                     "eval")
        return u0, u1

    def rotate_hoisted_parts(
            self, d: RnsPoly, exponents: List[int],
            keys: List[SwitchKey]) -> List[Tuple[RnsPoly, RnsPoly]]:
        """Hoisted keyswitch of ``σ_t(d)`` for a whole rotation set.

        ``d`` is the ciphertext's ``c1``; for each automorphism exponent
        ``t`` (with its Galois key), returns ``(u0, u1)`` over ``d``'s
        basis — the keyswitch of the rotated ``c1``.  Decomposes once,
        rotates the lifted digit tensor with one fused eval-domain gather
        (``NTT(σ_t(x)) == NTT(x)[eval_src]``), MACs every rotation in one
        stacked inner product, and ModDowns all ``2R`` accumulator
        polynomials in one batched pass.
        """
        plan, dig = self.lift_digits_stack(d)
        n = self.n
        rots = len(exponents)
        idx = np.stack(
            [get_automorphism_perm(n, t).eval_src for t in exponents])
        dig_rot = dig[:, :, idx]                       # (L_ext, dnum, R, N)
        key_st = np.stack(
            [self._key_tensor(k, plan) for k in keys], axis=2)
        # key_st: (L_ext, dnum, R, 2, N); one inner product for all R.
        acc = self._inner_product(dig_rot, key_st, plan)
        flat = acc.reshape(plan.rows_ext, rots * 2, n)
        # Hoisting savings vs per-rotation switching: each extra rotation
        # would have re-run the digit-tensor NTT and its own ModDown NTTs.
        record_keyswitch(
            ntt_saved=(rots - 1) * plan.rows_ext * plan.dnum_active,
            hoisted_rotations=rots)
        down = self._mod_down_stack(flat, plan).reshape(
            plan.rows_target, rots, 2, n)
        out: List[Tuple[RnsPoly, RnsPoly]] = []
        for r in range(rots):
            u0 = RnsPoly(d.n, d.basis,
                         [down[i, r, 0] for i in range(plan.rows_target)],
                         "eval")
            u1 = RnsPoly(d.n, d.basis,
                         [down[i, r, 1] for i in range(plan.rows_target)],
                         "eval")
            out.append((u0, u1))
        return out

    def automorphism_eval_stack(self, poly: RnsPoly,
                                exponents: List[int]) -> np.ndarray:
        """Eval-domain automorphism of ``poly`` for every exponent at once.

        Returns ``(L, R, N)``: one gather on the stacked eval limbs —
        bit-identical to ``poly.automorphism(t).to_eval()`` per exponent.
        """
        ev = poly.to_eval()
        stack = self._stack_limbs(ev)
        idx = np.stack(
            [get_automorphism_perm(self.n, t).eval_src for t in exponents])
        return stack[:, idx]
