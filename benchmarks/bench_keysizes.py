"""Section III-C size audit: ciphertext/key sizes and the 18x key-traffic
reduction claim."""

import pytest
from conftest import emit

from repro.analysis import format_table, key_size_table
from repro.hardware import (
    ConventionalKeyTraffic,
    bootstrap_hbm_seconds,
    key_traffic_reduction,
    scheme_switching_key_bytes,
)
from repro.params import make_heap_params


def bench_key_size_audit(benchmark):
    headers, rows = benchmark(key_size_table)
    emit("keysizes", "Section III-C: key sizes and traffic\n" +
         format_table(headers, rows))
    for r in rows:
        assert r["Model"] == pytest.approx(r["Paper"], rel=0.12), r["Quantity"]


def bench_key_streaming_lower_bound(benchmark):
    """Lower bound on bootstrap latency from key streaming alone: the
    1.76 GB brk at 460 GB/s — a bound the model reports alongside the
    calibrated latency (see EXPERIMENTS.md)."""
    params = make_heap_params()
    ss_bytes = scheme_switching_key_bytes(params.tfhe, params.ckks.log_q_total)

    def bound():
        return bootstrap_hbm_seconds(ss_bytes, 460e9)

    t = benchmark(bound)
    conv = ConventionalKeyTraffic()
    conv_t = bootstrap_hbm_seconds(conv.total_bytes, 460e9)
    emit("keysizes_streaming",
         "Key-streaming lower bounds at 460 GB/s HBM:\n"
         f"  scheme switching: {ss_bytes / 1e9:.2f} GB -> {t * 1e3:.2f} ms\n"
         f"  conventional:     {conv.total_bytes / 1e9:.1f} GB -> "
         f"{conv_t * 1e3:.1f} ms\n"
         f"  reduction: {key_traffic_reduction(params.tfhe, params.ckks.log_q_total):.1f}x "
         "(paper: ~18x)")
    assert conv_t / t > 15
