"""The paper's core contribution: scheme-switching CKKS bootstrapping."""

from .bootstrap import BootstrapTrace, SchemeSwitchBootstrapper, expected_k_prime_std
from .fanout import PRIMARY, CommLog, Fault, FaultInjector, FaultTolerantFanout
from .functional import FunctionalEvaluator, relu_fn, sigmoid_fn, sign_fn
from .keys import KeySizeAudit, SwitchingKeySet, conventional_bootstrap_key_bytes
from .luts import (
    ALGORITHM2,
    RELU,
    SIGMOID,
    SIGN,
    WORKLOADS,
    LutRegistry,
    LutSpec,
    build_functional_lut,
    functional_lut_g,
    quantized,
    threshold,
)
from .keyswitched import (
    KeySwitchedBootstrapper,
    KeySwitchedKeySet,
    make_keyswitched_toy_params,
)
from .mp_executor import ProcessPoolFanoutExecutor
from .pipeline import BootstrapPipeline, Executor, LocalExecutor
from .scheduler import (
    BootstrapSchedule,
    NodeAssignment,
    make_schedule,
    pick_recovery_node,
)

__all__ = [
    "BootstrapPipeline",
    "BootstrapTrace",
    "CommLog",
    "Executor",
    "Fault",
    "FaultInjector",
    "FaultTolerantFanout",
    "LocalExecutor",
    "PRIMARY",
    "ProcessPoolFanoutExecutor",
    "SchemeSwitchBootstrapper",
    "expected_k_prime_std",
    "FunctionalEvaluator",
    "relu_fn",
    "sigmoid_fn",
    "sign_fn",
    "ALGORITHM2",
    "LutRegistry",
    "LutSpec",
    "RELU",
    "SIGMOID",
    "SIGN",
    "WORKLOADS",
    "build_functional_lut",
    "functional_lut_g",
    "quantized",
    "threshold",
    "KeySizeAudit",
    "KeySwitchedBootstrapper",
    "KeySwitchedKeySet",
    "make_keyswitched_toy_params",
    "SwitchingKeySet",
    "conventional_bootstrap_key_bytes",
    "BootstrapSchedule",
    "NodeAssignment",
    "make_schedule",
    "pick_recovery_node",
]
