"""Conventional CKKS bootstrapping — the baseline HEAP is compared against.

Pipeline (paper Fig. 1a): ModRaise -> CoeffToSlot (linear transform) ->
EvalMod (polynomial approximation of modular reduction, a scaled sine) ->
SlotToCoeff (linear transform).  This is the algorithm FAB, BTS, ARK,
SHARP et al. accelerate; HEAP replaces the middle two steps (and their
15-19 consumed levels) with the scheme-switching path.

Implementation notes
--------------------
* The transform matrices are generated numerically from the encoder's
  embedding — exact at any ring size, no index gymnastics to get wrong.
* EvalMod approximates ``f(x) = (q0 / 2 pi Delta') * sin(2 pi x)`` on
  ``x = m/q0 + k`` with ``|k| <= K`` via Chebyshev interpolation of
  degree ``~ deg``; depth ``log2(deg) + 1``.
* Scale discipline: runs its own loose-tolerance evaluator over a
  parameter set whose rescale primes all sit within a hair of ``Delta``
  (``make_bootstrappable_toy_params``), the classic fixed-point approach.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ParameterError
from ..math.modular import find_ntt_primes
from ..math.rns import RnsPoly
from ..params import CkksParams
from .chebyshev import ChebyshevApprox, eval_chebyshev
from .ciphertext import CkksCiphertext
from .context import CkksContext
from .evaluator import CkksEvaluator
from .keys import KeySet
from .linear_transform import apply_conjugation_pair, required_rotations


def make_bootstrappable_toy_params(n: int = 32, levels: int = 13,
                                   delta_bits: int = 24,
                                   q0_bits: int = 30) -> CkksParams:
    """A toy parameter chain for conventional bootstrapping.

    Base limb ``q0`` is wider than the rescale primes so the message
    (at scale ``Delta``) is small relative to ``q0`` — the standard
    bootstrappable layout (the paper's conventional sets use
    ``N = 2^16`` with ~19 of 24 limbs consumed; we keep the structure and
    shrink the ring).
    """
    q0 = find_ntt_primes(q0_bits, n, 1)[0]
    rescale_primes = find_ntt_primes(delta_bits, n, levels)
    # Special modulus P must cover the largest dnum=2 digit group:
    # ceil((levels+1)/2) limbs of up to q0_bits each.
    num_specials = (levels + 2) // 2 + 1
    specials = find_ntt_primes(q0_bits, n, num_specials, skip=1)
    return CkksParams(n=n, moduli=[q0] + rescale_primes,
                      special_moduli=specials, scale_bits=delta_bits)


@dataclass
class ConventionalBootstrapConfig:
    """Tunable knobs of the baseline bootstrap.

    ``double_angle`` enables the Han-Ki refinement the paper cites
    ([30], "Better bootstrapping for approximate HE"): approximate
    sine/cosine on the interval shrunk by ``2^r`` (a much lower Chebyshev
    degree) and recover the full-range sine with ``r`` double-angle
    iterations ``(s, c) <- (2sc, 2c^2 - 1)``, each costing two level-1
    multiplications.  ``bench_ablations`` compares the two modes.
    """

    k_range: int = 12          # |k| bound handled by the sine approximation
    sine_degree: int = 119     # Chebyshev degree for EvalMod
    message_ratio_bits: int = 4  # require |m| <= q0 / 2^message_ratio_bits
    double_angle: int = 0      # r: double-angle iterations (0 = plain sine)


@dataclass
class ConventionalBootstrapTrace:
    """Step/level accounting, mirrored against Fig. 1a by the benches."""

    levels_consumed: int = 0
    rotations: int = 0
    ct_ct_mults: int = 0
    notes: List[str] = field(default_factory=list)
    #: Wall-clock seconds per pipeline step (note -> seconds), mirroring
    #: the scheme-switch ``BootstrapTrace.step_seconds``; the EXPERIMENTS
    #: step-share table is generated from this.
    step_seconds: Dict[str, float] = field(default_factory=dict)


class ConventionalBootstrapper:
    """ModRaise -> CoeffToSlot -> EvalMod -> SlotToCoeff."""

    def __init__(self, ctx: CkksContext, keys: KeySet,
                 config: Optional[ConventionalBootstrapConfig] = None,
                 evaluator: Optional[CkksEvaluator] = None):
        self.ctx = ctx
        self.keys = keys
        self.config = config or ConventionalBootstrapConfig()
        self.ev = evaluator or CkksEvaluator(ctx, keys, scale_rtol=5e-2)
        self._c2s, self._s2c = self._build_transform_matrices()
        self._cos_approx: Optional[ChebyshevApprox] = None
        self._approx = self._build_sine_approx()

    # -- public API ------------------------------------------------------------------

    @staticmethod
    def required_rotation_indices(ctx: CkksContext) -> List[int]:
        """Rotations the key set must contain (paper: "24 keys for
        rotation and 1 for multiplication" at production scale)."""
        return required_rotations(ctx.slots)

    def bootstrap(self, ct: CkksCiphertext,
                  trace: Optional[ConventionalBootstrapTrace] = None) -> CkksCiphertext:
        if ct.level != 0:
            raise ParameterError("conventional bootstrap expects a level-0 ciphertext")
        trace = trace if trace is not None else ConventionalBootstrapTrace()
        start_level = self.ctx.max_level

        tick = time.perf_counter()
        raised = self._mod_raise(ct)
        trace.notes.append("ModRaise")
        now = time.perf_counter()
        trace.step_seconds["ModRaise"] = now - tick
        tick = now

        # CoeffToSlot: slots <- (c_lo + i c_hi) of the raised phase.
        w = apply_conjugation_pair(self.ev, raised, *self._c2s)
        trace.notes.append("CoeffToSlot")
        now = time.perf_counter()
        trace.step_seconds["CoeffToSlot"] = now - tick
        tick = now

        # Split packed real/imag coefficient streams.
        conj_w = self.ev.conjugate(w)
        re = self.ev.mul_plain(self.ev.add(w, conj_w), np.full(self.ctx.slots, 0.5))
        re = self.ev.rescale(re)
        im = self.ev.mul_plain(self.ev.sub(w, conj_w), np.full(self.ctx.slots, -0.5j))
        im = self.ev.rescale(im)

        # EvalMod on each stream.
        re = self._eval_mod(re)
        im = self._eval_mod(im)
        r = self.config.double_angle
        suffix = f",double-angle r={r}" if r else ""
        trace.notes.append(f"EvalMod(deg={self._approx.degree}{suffix})")

        lvl = min(re.level, im.level)
        re = self.ev.drop_to_level(re, lvl)
        im = self.ev.drop_to_level(im, lvl)
        im_i = self.ev.rescale(self.ev.mul_plain(im, np.full(self.ctx.slots, 1j)))
        re = self.ev.drop_to_level(re, im_i.level)
        w2 = self.ev.add(re, im_i)
        now = time.perf_counter()
        trace.step_seconds["EvalMod"] = now - tick
        tick = now

        # SlotToCoeff.
        out = apply_conjugation_pair(self.ev, w2, *self._s2c)
        trace.notes.append("SlotToCoeff")
        trace.step_seconds["SlotToCoeff"] = time.perf_counter() - tick
        trace.levels_consumed = start_level - out.level
        out.scale = ct.scale
        return out

    # -- steps --------------------------------------------------------------------------

    def _mod_raise(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Reinterpret the level-0 residues over the full basis: the
        underlying message becomes ``m + q0 * k``."""
        full = self.ctx.full_basis
        n = self.ctx.n

        def raise_poly(p: RnsPoly) -> RnsPoly:
            coeffs = np.asarray(p.to_coeff().limbs[0], dtype=object)
            return RnsPoly.from_int_coeffs(n, full, coeffs).to_eval()

        return CkksCiphertext(raise_poly(ct.c0), raise_poly(ct.c1), ct.scale)

    def _build_transform_matrices(self) -> Tuple[Tuple[np.ndarray, np.ndarray],
                                                 Tuple[np.ndarray, np.ndarray]]:
        """Numeric CoeffToSlot / SlotToCoeff matrices from the embedding.

        With ``z = E_lo c_lo + E_hi c_hi`` (decode without scale) and the
        packed stream ``w = (c_lo + i c_hi) / Delta_pack``:

        * SlotToCoeff: ``z = V1 w + V2 conj(w)`` with
          ``V1 = (E_lo - i E_hi)/2``, ``V2 = (E_lo + i E_hi)/2``.
        * CoeffToSlot: ``w = W1 z + W2 conj(z)`` obtained by inverting the
          stacked system numerically.
        """
        enc = self.ctx.encoder
        n = self.ctx.slots
        big_n = self.ctx.n
        e_mat = np.zeros((n, big_n), dtype=np.complex128)
        for j in range(big_n):
            unit = np.zeros(big_n)
            unit[j] = 1.0
            e_mat[:, j] = enc.embed(unit)
        e_lo, e_hi = e_mat[:, :n], e_mat[:, n:]
        v1 = (e_lo - 1j * e_hi) / 2.0
        v2 = (e_lo + 1j * e_hi) / 2.0
        # Invert: [z; conj(z)] = [[V1, V2], [conj(V2), conj(V1)]] [w; conj(w)].
        big = np.block([[v1, v2], [np.conj(v2), np.conj(v1)]])
        inv = np.linalg.inv(big)
        w1, w2 = inv[:n, :n], inv[:n, n:]
        return (w1, w2), (v1, v2)

    def _build_sine_approx(self) -> ChebyshevApprox:
        """EvalMod polynomial: maps ``y = (m + q0 k)/Delta`` to ``~ m/Delta``.

        In slot units the input is ``y = x * (q0/Delta)`` with
        ``x = m/q0 + k``; plain mode interpolates
        ``h(y) = (q0 / (2 pi Delta)) * sin(2 pi Delta y / q0)`` over
        ``|y| <= (K + 1/2) * q0/Delta``.  Double-angle mode (r > 0)
        interpolates ``sin`` and ``cos`` of the angle shrunk by ``2^r``
        instead; the final ``q0/(2 pi Delta)`` factor is applied after
        the angle-doubling iterations.
        """
        q0 = float(self.ctx.full_basis.moduli[0])
        delta = self.ctx.params.scale
        ratio = q0 / delta
        k = self.config.k_range
        r = self.config.double_angle
        bound = (k + 0.5) * ratio

        if r == 0:
            def h(y):
                return ratio / (2 * math.pi) * np.sin(
                    2 * math.pi * np.asarray(y) / ratio)

            return ChebyshevApprox.interpolate(h, -bound, bound,
                                               self.config.sine_degree)

        shrink = float(1 << r)

        def h_sin(y):
            return np.sin(2 * math.pi * np.asarray(y) / ratio / shrink)

        self._cos_approx = ChebyshevApprox.interpolate(
            lambda y: np.cos(2 * math.pi * np.asarray(y) / ratio / shrink),
            -bound, bound, self.config.sine_degree)
        return ChebyshevApprox.interpolate(h_sin, -bound, bound,
                                           self.config.sine_degree)

    def _eval_mod(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Apply the modular-reduction approximation to one slot stream."""
        ev = self.ev
        r = self.config.double_angle
        if r == 0:
            return eval_chebyshev(ev, ct, self._approx)
        from .chebyshev import eval_chebyshev_many

        s, c = eval_chebyshev_many(ev, ct, [self._approx, self._cos_approx])
        for _ in range(r):
            lvl = min(s.level, c.level)
            s_a = ev.drop_to_level(s, lvl)
            c_a = ev.drop_to_level(c, lvl)
            new_s = ev.mul_scalar_int(ev.mul_relin_rescale(s_a, c_a), 2)
            new_c = ev.add_plain(
                ev.mul_scalar_int(ev.mul_relin_rescale(c_a, c_a), 2),
                np.full(self.ctx.slots, -1.0))
            s, c = new_s, new_c
        q0 = float(self.ctx.full_basis.moduli[0])
        delta = self.ctx.params.scale
        factor = (q0 / delta) / (2 * math.pi)
        return ev.rescale(ev.mul_plain(s, np.full(self.ctx.slots, factor)))
