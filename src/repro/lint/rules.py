"""The heaplint rule catalogue (HL001-HL005).

Every rule encodes an invariant this codebase actually depends on; the
module docstrings in :mod:`repro.tfhe.batch_engine`,
:mod:`repro.tfhe.repack_engine` and :mod:`repro.math.ntt` motivate them.
See ``DESIGN.md`` section 8 for the prose catalogue.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import FileContext, Finding, Rule

#: Modules whose inner loops must stay on fixed-width numpy paths (HL001).
HOT_PATH_MODULES: Tuple[str, ...] = (
    "repro/tfhe/batch_engine.py",
    "repro/tfhe/repack_engine.py",
    "repro/math/ntt.py",
    "repro/math/automorphism.py",
    "repro/math/rns.py",
    "repro/ckks/keyswitch_engine.py",
    "repro/switching/functional.py",
)

#: Comment marker that discharges an HL002 proof obligation.
LAZY_BOUND_MARKER = "lazy-bound:"

_U64_LIMIT = (1 << 64) - 1


def _call_name(node: ast.Call) -> str:
    """Trailing identifier of the called object (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted_name(node: ast.expr) -> str:
    """``a.b.c`` rendered as a dotted string (empty for other shapes)."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


def _is_object_name(node: ast.expr) -> bool:
    return isinstance(node, ast.Name) and node.id == "object"


def _iter_functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class HotPathObjectDtypeRule(Rule):
    """HL001: no object-dtype ndarrays in hot-path modules.

    Object arrays push every element op back into the Python interpreter
    — exactly what PR 1/PR 2 removed from BlindRotate and repack.  In the
    modules listed in :data:`HOT_PATH_MODULES`, any ``dtype=object``
    construction or ``.astype(object)`` coercion must either move to a
    fixed-width path or carry a justified suppression (e.g. exact big-int
    CRT composition on the wide-modulus path).
    """

    code = "HL001"
    name = "hot-path-object-dtype"
    description = ("object-dtype ndarray constructed or coerced inside a "
                   "hot-path module")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.path.endswith(HOT_PATH_MODULES):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if kw.arg == "dtype" and _is_object_name(kw.value):
                    yield ctx.finding(
                        self.code, node,
                        "object-dtype array construction in a hot-path "
                        "module; use the engine dtype or a fixed-width path",
                    )
            if _call_name(node) == "astype" and node.args \
                    and _is_object_name(node.args[0]):
                yield ctx.finding(
                    self.code, node,
                    "astype(object) coercion in a hot-path module; keep hot "
                    "tensors on fixed-width dtypes",
                )


class LazyBoundProofRule(Rule):
    """HL002: reduction-deferred uint64 accumulation needs a bound proof.

    The lazy-MAC trick (sum unreduced uint64 products, reduce once at the
    drain) is only correct when the worst-case accumulated magnitude fits
    in 64 bits — the ``(rows + 2) * (q - 1)**2 <= 2**64 - 1`` pattern.
    Any function doing reduction-deferred uint64 arithmetic must contain
    either a statically checkable bound guard (a comparison involving a
    2^64 constant such as ``_U64_MAX``) or a ``# lazy-bound:`` proof
    annotation stating where the bound is established.
    """

    code = "HL002"
    name = "lazy-bound-proof"
    description = ("uint64 multiply-accumulate with deferred reduction and "
                   "no adjacent bound guard or '# lazy-bound:' annotation")

    _ARITH_CALLS = frozenset(
        {"matmul", "multiply", "add", "subtract", "sum", "dot", "einsum"})
    _LAZY_HELPERS = frozenset({"lazy_mac_sum", "lazy_sum"})

    # -- detection helpers --------------------------------------------------

    @staticmethod
    def _is_u64_view(node: ast.AST) -> bool:
        """``<expr>.view(np.uint64)`` (or ``.view(numpy.uint64)``)."""
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "view"
                and len(node.args) == 1
                and _dotted_name(node.args[0]).endswith("uint64"))

    def _contains_u64_view(self, node: ast.AST) -> bool:
        return any(self._is_u64_view(n) for n in ast.walk(node))

    def _is_lazy_site(self, stmt: ast.stmt) -> bool:
        has_arith = False
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _call_name(node)
                if name in self._LAZY_HELPERS:
                    return True
                if name in self._ARITH_CALLS and self._contains_u64_view(node):
                    has_arith = True
            elif isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Mult, ast.MatMult, ast.Add, ast.Sub)):
                if self._contains_u64_view(node):
                    has_arith = True
            elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Mult, ast.MatMult, ast.Add, ast.Sub)):
                if self._contains_u64_view(node.value):
                    has_arith = True
        return has_arith

    @classmethod
    def _is_u64_constant(cls, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value in (_U64_LIMIT, _U64_LIMIT + 1)
        if isinstance(node, ast.Name):
            return "U64" in node.id.upper()
        if isinstance(node, ast.Attribute):
            return "U64" in node.attr.upper()
        if isinstance(node, ast.BinOp):
            # (1 << 64), 2 ** 64, and off-by-one variants thereof.
            return cls._is_u64_constant(node.left) or cls._is_u64_constant(
                node.right) or cls._spells_two_to_64(node)
        return False

    @staticmethod
    def _spells_two_to_64(node: ast.BinOp) -> bool:
        def const(n: ast.expr) -> Optional[int]:
            return n.value if isinstance(n, ast.Constant) \
                and isinstance(n.value, int) else None

        left, right = const(node.left), const(node.right)
        if isinstance(node.op, ast.LShift):
            return left == 1 and right == 64
        if isinstance(node.op, ast.Pow):
            return left == 2 and right == 64
        return False

    def _has_bound_guard(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                if any(self._is_u64_constant(op) for op in operands):
                    return True
        return False

    @staticmethod
    def _has_annotation(ctx: FileContext, func: ast.AST) -> bool:
        start = getattr(func, "lineno", 1)
        end = getattr(func, "end_lineno", start) or start
        return any(LAZY_BOUND_MARKER in ctx.line_text(i)
                   for i in range(start, end + 1))

    # -- rule body ----------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _iter_functions(ctx.tree):
            sites = [stmt for node in ast.walk(func)
                     for stmt in ([node] if isinstance(node, ast.stmt) else [])
                     if self._is_lazy_site(stmt)]
            if not sites:
                continue
            if self._has_bound_guard(func) or self._has_annotation(ctx, func):
                continue
            first = min(sites, key=lambda s: s.lineno)
            fname = getattr(func, "name", "<lambda>")
            yield ctx.finding(
                self.code, first,
                f"function '{fname}' defers uint64 reductions but carries "
                "no statically checkable bound guard (compare against a "
                "2^64 constant) and no '# lazy-bound:' proof annotation",
            )


class NttDomainDisciplineRule(Rule):
    """HL003: no mixing of eval-domain and coeff-domain operands.

    Values returned by forward/inverse NTT helpers are tagged
    intraprocedurally; an arithmetic op whose operands carry different
    tags is almost certainly a bug — pointwise arithmetic on an NTT
    spectrum and a coefficient vector produces garbage that no exception
    will ever catch.
    """

    code = "HL003"
    name = "ntt-domain-discipline"
    description = ("arithmetic mixes an eval-domain (NTT) value with a "
                   "coefficient-domain value")

    _TO_EVAL = frozenset({"forward", "forward_axis0", "to_eval"})
    _TO_COEFF = frozenset({"inverse", "inverse_axis0", "to_coeff"})
    _ARITH_HELPERS = frozenset(
        {"add", "sub", "mul", "mac", "pointwise", "lazy_mac_sum"})

    def _tag_of_call(self, node: ast.Call) -> Optional[str]:
        name = _call_name(node)
        if name in self._TO_EVAL:
            return "eval"
        if name in self._TO_COEFF:
            return "coeff"
        return None

    def _expr_tag(self, node: ast.expr, tags: Dict[str, str]) -> Optional[str]:
        if isinstance(node, ast.Name):
            return tags.get(node.id)
        if isinstance(node, ast.Call):
            return self._tag_of_call(node)
        if isinstance(node, ast.BinOp):
            lt = self._expr_tag(node.left, tags)
            rt = self._expr_tag(node.right, tags)
            return lt or rt
        if isinstance(node, (ast.Subscript, ast.Starred)):
            return self._expr_tag(node.value, tags)
        return None

    def _check_pair(self, ctx: FileContext, node: ast.AST, a: Optional[str],
                    b: Optional[str]) -> Optional[Finding]:
        if a is not None and b is not None and a != b:
            return ctx.finding(
                self.code, node,
                f"operand domains disagree ({a} vs {b}): transform both "
                "sides to the same NTT domain before combining them",
            )
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _iter_functions(ctx.tree):
            tags: Dict[str, str] = {}
            yield from self._process(ctx, getattr(func, "body", []), tags)

    def _process(self, ctx: FileContext, stmts: Sequence[ast.stmt],
                 tags: Dict[str, str]) -> Iterator[Finding]:
        """Walk statements in source order so tags flow forward, descending
        into compound statements (loop bodies reuse pre-loop tags; branch
        tags merge optimistically — this is a lint pass, not an abstract
        interpreter, and the baseline absorbs the rare false positive)."""
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes are analysed separately
            if isinstance(stmt, (ast.If, ast.While)):
                yield from self._flag_expr(ctx, stmt.test, tags)
                yield from self._process(ctx, stmt.body, tags)
                yield from self._process(ctx, stmt.orelse, tags)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self._flag_expr(ctx, stmt.iter, tags)
                yield from self._process(ctx, stmt.body, tags)
                yield from self._process(ctx, stmt.orelse, tags)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                yield from self._process(ctx, stmt.body, tags)
            elif isinstance(stmt, ast.Try):
                yield from self._process(ctx, stmt.body, tags)
                for handler in stmt.handlers:
                    yield from self._process(ctx, handler.body, tags)
                yield from self._process(ctx, stmt.orelse, tags)
                yield from self._process(ctx, stmt.finalbody, tags)
            else:
                yield from self._flag_expr(ctx, stmt, tags)
                self._update_tags(stmt, tags)

    def _flag_expr(self, ctx: FileContext, root: ast.AST,
                   tags: Dict[str, str]) -> Iterator[Finding]:
        for node in ast.walk(root):
            if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub, ast.Mult)):
                bad = self._check_pair(
                    ctx, node,
                    self._expr_tag(node.left, tags),
                    self._expr_tag(node.right, tags))
                if bad is not None:
                    yield bad
            elif isinstance(node, ast.Call) \
                    and _call_name(node) in self._ARITH_HELPERS \
                    and len(node.args) >= 2:
                bad = self._check_pair(
                    ctx, node,
                    self._expr_tag(node.args[0], tags),
                    self._expr_tag(node.args[1], tags))
                if bad is not None:
                    yield bad

    def _update_tags(self, stmt: ast.stmt, tags: Dict[str, str]) -> None:
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                and isinstance(stmt.targets[0], ast.Name):
            target = stmt.targets[0].id
            tag = self._expr_tag(stmt.value, tags)
            if tag is not None:
                tags[target] = tag
            else:
                tags.pop(target, None)


class SecretHygieneRule(Rule):
    """HL004: secret-key material must not reach strings, logs or errors.

    Two checks: (a) values that are secret-key typed (by annotation,
    construction or naming convention) must not flow into f-strings,
    ``str.format``, ``repr()``/``str()``, logging calls or exception
    messages — structural attributes (``dim``, ``n``, ``h``, ...) are
    fine, the coefficient payload is not; (b) a ``@dataclass`` whose name
    marks it as a secret key must define ``__repr__`` — the generated
    repr would dump every coefficient into any traceback or debug log.

    Key *seeds* are secrets too: with seeded key streaming the per-key
    PRNG seed plus the ``b``-halves reconstructs the full evaluation
    key, so a leaked ``mask_seed``/``key_seed`` (or any
    ``derive_seed(...)`` result) is as damaging as leaked coefficients.
    Seed-named values flow through the same sink checks, and a
    ``@dataclass`` carrying a seed-named field must either redact it
    (``field(repr=False)``) or define its own ``__repr__``.
    """

    code = "HL004"
    name = "secret-hygiene"
    description = ("secret-key material flows into repr/str/f-string/"
                   "logging/exception text")

    _SECRET_NAME_RE = re.compile(
        r"(^|_)(sk|secret|secret_key)(_|$)|(^|_)sk\d*$", re.IGNORECASE)
    #: Key-expansion seeds: together with the stored b-halves these
    #: reconstruct the full key, so they get the same hygiene.  The
    #: plain name ``seed`` stays benign (samplers take public seeds
    #: everywhere); only key-scoped seed names are secrets.
    _SEED_NAME_RE = re.compile(
        r"(^|_)(mask_seeds?|key_seed|brk_seed|auto_seed)(_|$)",
        re.IGNORECASE)
    _SECRET_TYPE_RE = re.compile(r"SecretKey")
    #: Attributes safe to format: structure, never coefficient payload.
    _SAFE_ATTRS = frozenset(
        {"dim", "n", "h", "q", "shape", "name", "basis", "domain"})
    _LOG_METHODS = frozenset(
        {"debug", "info", "warning", "warn", "error", "exception", "critical",
         "log"})
    _LOG_OBJECTS = frozenset({"logging", "logger", "log"})

    # -- secret value collection -------------------------------------------

    def _annotation_is_secret(self, node: Optional[ast.expr]) -> bool:
        if node is None:
            return False
        return any(self._SECRET_TYPE_RE.search(_dotted_name(n) or "")
                   for n in ast.walk(node)
                   if isinstance(n, (ast.Name, ast.Attribute)))

    def _value_is_secret(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if self._SECRET_TYPE_RE.search(name):
                return True
            # derive_seed(master, ...) results are per-key expansion
            # seeds — secret regardless of what they're assigned to.
            if name.split(".")[-1] == "derive_seed":
                return True
            if name in ("secret_key", "generate") and isinstance(
                    node.func, ast.Attribute):
                return self._SECRET_TYPE_RE.search(
                    _dotted_name(node.func.value)) is not None \
                    or name == "secret_key"
        return False

    def _collect_secrets(self, func: ast.AST) -> Set[str]:
        secrets: Set[str] = set()
        args = getattr(func, "args", None)
        if args is not None:
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if self._annotation_is_secret(arg.annotation) \
                        or self._SECRET_NAME_RE.search(arg.arg) \
                        or self._SEED_NAME_RE.search(arg.arg):
                    secrets.add(arg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and (
                            self._value_is_secret(node.value)
                            or self._SECRET_NAME_RE.search(target.id)
                            or self._SEED_NAME_RE.search(target.id)):
                        secrets.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                    node.target, ast.Name):
                if self._annotation_is_secret(node.annotation):
                    secrets.add(node.target.id)
        return secrets

    def _secret_leak(self, node: ast.AST, secrets: Set[str]) -> bool:
        """Does this subtree read a secret's payload (not a safe attr)?"""
        for n in ast.walk(node):
            if isinstance(n, ast.Attribute) and isinstance(n.value, ast.Name) \
                    and n.value.id in secrets:
                if n.attr not in self._SAFE_ATTRS:
                    return True
            elif isinstance(n, ast.Name) and n.id in secrets:
                if not self._wrapped_in_safe_attribute(node, n):
                    return True
        return False

    @staticmethod
    def _wrapped_in_safe_attribute(root: ast.AST, name: ast.Name) -> bool:
        """True when ``name`` only appears as ``name.<safe attr>``."""
        for n in ast.walk(root):
            if isinstance(n, ast.Attribute) and n.value is name:
                return n.attr in SecretHygieneRule._SAFE_ATTRS
        return False

    # -- sinks --------------------------------------------------------------

    def _sink_nodes(self, func: ast.AST) -> Iterator[Tuple[ast.AST, str]]:
        for node in ast.walk(func):
            if isinstance(node, ast.JoinedStr):
                for part in node.values:
                    if isinstance(part, ast.FormattedValue):
                        yield part.value, "f-string"
            elif isinstance(node, ast.Call):
                name = _call_name(node)
                if name in ("repr", "str", "format"):
                    for arg in node.args:
                        yield arg, f"{name}() call"
                if name in self._LOG_METHODS and isinstance(
                        node.func, ast.Attribute):
                    base = _dotted_name(node.func.value).split(".")[0]
                    if base in self._LOG_OBJECTS:
                        for arg in [*node.args,
                                    *[k.value for k in node.keywords]]:
                            yield arg, "logging call"
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod) \
                    and isinstance(node.left, ast.Constant) \
                    and isinstance(node.left.value, str):
                yield node.right, "%-format of a string"
            elif isinstance(node, ast.Raise) and node.exc is not None:
                if isinstance(node.exc, ast.Call):
                    for arg in node.exc.args:
                        yield arg, "exception message"

    # -- rule body ----------------------------------------------------------

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_dataclasses(ctx)
        for func in _iter_functions(ctx.tree):
            secrets = self._collect_secrets(func)
            if not secrets:
                continue
            for sink, kind in self._sink_nodes(func):
                if self._secret_leak(sink, secrets):
                    yield ctx.finding(
                        self.code, sink,
                        f"secret-key material flows into a {kind}; format "
                        "structural attributes (dim/n/h) only, never "
                        "coefficient data",
                    )

    @staticmethod
    def _field_repr_disabled(value: Optional[ast.expr]) -> bool:
        """True for ``field(..., repr=False)`` declarations."""
        if not isinstance(value, ast.Call):
            return False
        if _call_name(value).split(".")[-1] != "field":
            return False
        return any(kw.arg == "repr" and isinstance(kw.value, ast.Constant)
                   and kw.value.value is False for kw in value.keywords)

    def _check_dataclasses(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            is_dataclass = any(
                _dotted_name(d if not isinstance(d, ast.Call) else d.func)
                .split(".")[-1] == "dataclass"
                for d in node.decorator_list)
            if not is_dataclass:
                continue
            has_repr = any(isinstance(b, ast.FunctionDef)
                           and b.name == "__repr__" for b in node.body)
            if has_repr:
                continue
            if self._SECRET_TYPE_RE.search(node.name) \
                    or self._SECRET_NAME_RE.search(node.name):
                yield ctx.finding(
                    self.code, node,
                    f"dataclass '{node.name}' holds secret-key material but "
                    "has no redacting __repr__: the generated repr dumps "
                    "every coefficient into tracebacks and logs",
                )
                continue
            leaky_seeds = [
                b.target.id for b in node.body
                if isinstance(b, ast.AnnAssign)
                and isinstance(b.target, ast.Name)
                and self._SEED_NAME_RE.search(b.target.id)
                and not self._field_repr_disabled(b.value)]
            if leaky_seeds:
                yield ctx.finding(
                    self.code, node,
                    f"dataclass '{node.name}' exposes key seed field(s) "
                    f"{', '.join(sorted(leaky_seeds))} in its generated "
                    "repr; declare them field(repr=False) or write a "
                    "redacting __repr__ — seed + b-halves reconstruct the "
                    "full evaluation key",
                )


class ParamConstructionRule(Rule):
    """HL005: parameter dataclasses built from literals must be valid.

    ``make_heap_params``/``make_toy_params`` derive every knob from a
    validated prime search; hand-rolled ``CkksParams``/``TfheParams``
    literals bypass that.  A literal ring dimension must be a power of
    two and literal moduli must be NTT-friendly (``q = 1 (mod 2N)``) —
    a non-friendly prime has no 2N-th root of unity and the NTT engine
    will reject it only at first use, far from the construction site.
    """

    code = "HL005"
    name = "param-construction"
    description = ("parameter dataclass instantiated with invalid literals "
                   "(non-power-of-2 N or non-NTT-friendly modulus)")

    _PARAM_CLASSES = frozenset({"CkksParams", "TfheParams"})
    _MODULI_KEYS = frozenset({"moduli", "special_moduli"})
    _SCALAR_MODULUS_KEYS = frozenset({"q", "aux_prime"})

    @staticmethod
    def _literal_int(node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant) and isinstance(node.value, int):
            return node.value
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.LShift):
            left = ParamConstructionRule._literal_int(node.left)
            right = ParamConstructionRule._literal_int(node.right)
            if left is not None and right is not None:
                return left << right
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Pow):
            left = ParamConstructionRule._literal_int(node.left)
            right = ParamConstructionRule._literal_int(node.right)
            if left is not None and right is not None:
                return left ** right
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path.endswith("repro/params.py"):
            return  # the validated constructors themselves live here
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node) not in self._PARAM_CLASSES:
                continue
            kwargs = {kw.arg: kw.value for kw in node.keywords
                      if kw.arg is not None}
            n_node = kwargs.get("n")
            n_val = self._literal_int(n_node) if n_node is not None else None
            if n_val is not None and (n_val < 2 or n_val & (n_val - 1)):
                yield ctx.finding(
                    self.code, node,
                    f"literal ring dimension n={n_val} is not a power of "
                    "two; use make_toy_params()/make_heap_params()",
                )
                continue
            for key, value in kwargs.items():
                if n_val is None:
                    break
                literals: List[Tuple[ast.expr, Optional[int]]] = []
                if key in self._MODULI_KEYS and isinstance(
                        value, (ast.List, ast.Tuple)):
                    literals = [(e, self._literal_int(e)) for e in value.elts]
                elif key in self._SCALAR_MODULUS_KEYS:
                    literals = [(value, self._literal_int(value))]
                for expr, q in literals:
                    if q is not None and q % (2 * n_val) != 1:
                        yield ctx.finding(
                            self.code, expr,
                            f"literal modulus {q} is not NTT-friendly for "
                            f"N={n_val} (needs q = 1 mod {2 * n_val}); use "
                            "find_ntt_primes() or the params factories",
                        )
