"""The n_t-dimension (LWE-keyswitched) scheme-switching bootstrap.

:mod:`repro.switching.bootstrap` follows Algorithm 2 *as printed*: it
extracts dimension-``N`` LWE ciphertexts and blind-rotates with ``N``
iterations.  The paper's key-size story, however, is built on
``n_t = 500``: extracted ciphertexts are key-switched down to an
``n_t``-dimension key before blind rotation, so the blind-rotate key has
only ``n_t`` entries (the 1.76 GB figure).  This module implements that
full pipeline functionally:

1. Extract LWE_i (dim N, mod q, key = CKKS secret coefficients) for
   every coefficient ``i``  (Eq. 2).
2. LWE key switch to ``s_t`` (dim n_t, mod q) — the paper's
   "vector of h*N*d LWE ciphertexts" key.
3. Per-LWE modulus switch (Algorithm 2 steps 1-2 applied to each LWE):
   ``ct'_i = [2N ct_i]_q`` and ``ct_ms,i = (2N ct_i - ct'_i)/q`` over
   ``Z_2N``.
4. BlindRotate every ``ct_ms,i`` with the ``n_t``-entry key (RGSW
   encryptions of ``s_t`` digits *under the CKKS secret*), producing RLWE
   ciphertexts under ``s`` encrypting ``q*(J_i - K'_i)``.
5. The companion term ``phi(ct'_i)`` now lives under ``s_t``, so it is
   embedded into the ring ``R_Qp`` under the padded key ``s_t(X)``,
   packed, and ring-key-switched ``s_t(X) -> s`` once.
6. Pack the blind-rotate outputs, add the companion, multiply by
   ``(p-1) / (2N * N)`` — exact because the switching prime is chosen
   with ``p = 1 (mod 2 N^2)``, absorbing the repack's ``N`` factor — and
   rescale by ``p``.

Correctness algebra per coefficient (cf. the base module's docstring):
``N*q*(J_i - K'_i) + N*([2N M_i]_q + q K'_i) = N * 2N * M_i`` where
``M_i = m_i + e + e_ks`` is the key-switched phase; dividing by
``2 N^2`` and rescaling leaves ``m_i`` (plus key-switch noise — the price
of the smaller key).
"""

from __future__ import annotations

from dataclasses import dataclass
import time
from typing import List, Optional

import numpy as np

from ..ckks.ciphertext import CkksCiphertext
from ..ckks.context import CkksContext
from ..ckks.keys import SecretKey
from ..errors import ParameterError
from ..math.gadget import GadgetVector
from ..math.modular import find_ntt_primes
from ..math.rns import RnsBasis, RnsPoly, concat_bases
from ..math.sampling import Sampler
from ..params import CkksParams
from ..tfhe.blind_rotate import BlindRotateKey, blind_rotate_batch, build_test_vector
from ..tfhe.extract import RnsLweCiphertext, embed_lwe, rlwe_secret_as_lwe_key
from ..tfhe.glwe import GlweCiphertext, GlweSecretKey
from ..tfhe.keyswitch import AutomorphismKeySet, GlweKeySwitchKey, glwe_keyswitch
from ..tfhe.lwe import LweCiphertext, LweKeySwitchKey, LweSecretKey, lwe_keyswitch
from ..tfhe.repack import repack_exponents, repack_with_counters
from .bootstrap import BootstrapTrace


def make_keyswitched_toy_params(n: int = 16, limbs: int = 3,
                                limb_bits: int = 30, scale_bits: int = 23,
                                special_limbs: int = 2) -> CkksParams:
    """Toy CKKS parameters whose first special prime satisfies
    ``p = 1 (mod 2 N^2)`` so the keyswitched pipeline's final division by
    ``2 N^2`` is exact."""
    primes = find_ntt_primes(limb_bits, n, limbs)
    # The switching prime needs the stronger congruence (a prime = 1 mod
    # 2N^2 is automatically NTT-friendly for the ring); skip collisions
    # with the limb chain.
    skip = 0
    while True:
        strong = find_ntt_primes(limb_bits, n * n, 1, skip=skip)
        if strong[0] not in primes:
            break
        skip += 1
    ordinary = [p for p in
                find_ntt_primes(limb_bits, n, limbs + special_limbs + 2)
                if p not in primes and p != strong[0]][: special_limbs - 1]
    return CkksParams(n=n, moduli=primes,
                      special_moduli=strong + ordinary, scale_bits=scale_bits)


@dataclass
class KeySwitchedKeySet:
    """All key material for the n_t pipeline."""

    lwe_ksk: LweKeySwitchKey            # s coeffs (dim N) -> s_t (dim n_t), mod q
    brk: BlindRotateKey                 # n_t RGSW pairs of s_t digits, under s
    auto_keys_s: AutomorphismKeySet     # repack keys under s (ring)
    auto_keys_st: AutomorphismKeySet    # repack keys under padded s_t(X)
    ring_ksk: GlweKeySwitchKey          # s_t(X) -> s over Qp
    raised_basis: RnsBasis
    gadget: GadgetVector
    s_t: LweSecretKey
    glwe_sk_ref: GlweSecretKey

    @classmethod
    def generate(cls, ctx: CkksContext, sk: SecretKey, n_t: int,
                 sampler: Optional[Sampler] = None,
                 base_bits: int = 4,
                 lwe_ks_base_bits: int = 7,
                 error_std: float = 0.8) -> "KeySwitchedKeySet":
        if n_t > ctx.n:
            raise ParameterError("n_t cannot exceed the ring dimension")
        sampler = sampler or Sampler()
        n = ctx.n
        q = ctx.full_basis.moduli[0]
        p = ctx.special_basis.moduli[0]
        if (p - 1) % (2 * n * n):
            raise ParameterError(
                "keyswitched pipeline needs p = 1 (mod 2N^2); build params "
                "with make_keyswitched_toy_params")
        raised = concat_bases(ctx.full_basis, RnsBasis([p]))
        total_bits = raised.product.bit_length()
        gadget = GadgetVector(q=raised.product, base_bits=base_bits,
                              digits=max(1, total_bits // base_bits))

        # The small LWE secret and the dimension switch to it.
        s_t = LweSecretKey.generate(n_t, sampler)
        lwe_gadget = GadgetVector(q=q, base_bits=lwe_ks_base_bits,
                                  digits=max(1, (q.bit_length() - 1)
                                             // lwe_ks_base_bits))
        lwe_ksk = LweKeySwitchKey.generate(
            rlwe_secret_as_lwe_key(np.asarray(sk.coeffs, dtype=object)),
            s_t, q, lwe_gadget, sampler)

        # Blind-rotate keys: s_t digits encrypted under the CKKS secret.
        glwe_sk = GlweSecretKey(coeffs=[np.asarray(sk.coeffs, dtype=object)], n=n)
        brk = BlindRotateKey.generate(s_t, glwe_sk, raised, gadget, sampler,
                                      error_std=error_std)

        # Repack keys under s (for the blind-rotate outputs).
        auto_s = AutomorphismKeySet.generate(glwe_sk, repack_exponents(n),
                                             raised, gadget, sampler, error_std)
        # Repack keys under the padded s_t ring key (for the companions).
        st_coeffs = np.zeros(n, dtype=object)
        st_coeffs[:n_t] = s_t.coeffs
        st_poly_key = GlweSecretKey(coeffs=[st_coeffs], n=n)
        auto_st = AutomorphismKeySet.generate(st_poly_key, repack_exponents(n),
                                              raised, gadget, sampler, error_std)
        # One ring key switch s_t(X) -> s.
        ring_ksk = GlweKeySwitchKey.generate(st_coeffs, glwe_sk, raised,
                                             gadget, sampler, error_std)
        return cls(lwe_ksk=lwe_ksk, brk=brk, auto_keys_s=auto_s,
                   auto_keys_st=auto_st, ring_ksk=ring_ksk,
                   raised_basis=raised, gadget=gadget, s_t=s_t,
                   glwe_sk_ref=glwe_sk)


class KeySwitchedBootstrapper:
    """Algorithm 2 with the paper's n_t-dimension blind rotation."""

    def __init__(self, ctx: CkksContext, keys: KeySwitchedKeySet,
                 repack_engine: str = "vectorized"):
        self.ctx = ctx
        self.keys = keys
        self.raised_basis = keys.raised_basis
        self.repack_engine = repack_engine
        self._test_vector = self._build_test_vector()

    def bootstrap(self, ct: CkksCiphertext,
                  trace: Optional[BootstrapTrace] = None) -> CkksCiphertext:
        if ct.level != 0:
            raise ParameterError("expects a level-0 ciphertext")
        n = self.ctx.n
        two_n = 2 * n
        q = ct.basis.moduli[0]
        trace = trace if trace is not None else BootstrapTrace()
        trace.reset()  # one trace records exactly one run (see BootstrapTrace)
        t0 = time.perf_counter()

        # Step 0: Extract + LWE key switch down to n_t.
        big_lwes = self._extract_all(ct, q)
        small_lwes = [lwe_keyswitch(lwe, self.keys.lwe_ksk) for lwe in big_lwes]
        trace.num_lwe = len(small_lwes)

        # Steps 1-2 per LWE: ct'_i and ct_ms,i.
        companions: List[GlweCiphertext] = []
        switched: List[LweCiphertext] = []
        for lwe in small_lwes:
            a = np.asarray(lwe.a, dtype=object)
            b = int(lwe.b)
            a_p, b_p = (two_n * a) % q, (two_n * b) % q
            a_ms = ((two_n * a - a_p) // q) % two_n
            b_ms = ((two_n * b - b_p) // q) % two_n
            switched.append(LweCiphertext(a=a_ms.astype(np.int64), b=int(b_ms),
                                          q=two_n))
            companions.append(self._embed_companion(a_p, b_p))
        trace.modswitch_ops = 2 * n
        t1 = time.perf_counter()

        # Step 3: n_t-iteration BlindRotates under s + repack.
        accs = blind_rotate_batch(self._test_vector, switched, self.keys.brk)
        trace.num_blind_rotates = len(accs)
        t2 = time.perf_counter()
        packed_kq, ctr_s = repack_with_counters(accs, self.keys.auto_keys_s,
                                                engine=self.repack_engine)

        # Companion: pack under s_t(X), then one ring key switch to s.
        packed_comp_st, ctr_st = repack_with_counters(
            companions, self.keys.auto_keys_st, engine=self.repack_engine)
        packed_comp = glwe_keyswitch(packed_comp_st.mask[0], packed_comp_st.body,
                                     self.keys.ring_ksk)
        trace.repack_merge_keyswitches = (ctr_s.merge_keyswitches
                                          + ctr_st.merge_keyswitches)
        trace.repack_trace_keyswitches = (ctr_s.trace_keyswitches
                                          + ctr_st.trace_keyswitches)
        # +1 for the final s_t(X) -> s ring key switch.
        trace.repack_keyswitches = (ctr_s.total_keyswitches
                                    + ctr_st.total_keyswitches + 1)
        t3 = time.perf_counter()

        # Steps 4-5: add, divide by 2N * N exactly, rescale by p.
        ct_dprime = packed_kq + packed_comp
        p = self.raised_basis.moduli[-1]
        w = (p - 1) // (two_n * n)
        body = (ct_dprime.body * w).rescale_last_limb().to_eval()
        mask = (ct_dprime.mask[0] * w).rescale_last_limb().to_eval()
        t4 = time.perf_counter()
        trace.step_seconds = {"extract": t1 - t0, "blind_rotate": t2 - t1,
                              "repack": t3 - t2, "finish": t4 - t3}
        return CkksCiphertext(c0=body, c1=mask, scale=ct.scale)

    # -- helpers --------------------------------------------------------------------

    def _extract_all(self, ct: CkksCiphertext, q: int) -> List[LweCiphertext]:
        n = self.ctx.n
        c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
        c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
        out = []
        for i in range(n):
            head = c1[: i + 1][::-1]
            tail = c1[i + 1:][::-1]
            a = np.concatenate([head, (q - tail) % q]) % q
            out.append(LweCiphertext(a=a, b=int(c0[i]), q=q))
        return out

    def _embed_companion(self, a_p: np.ndarray, b_p: int) -> GlweCiphertext:
        """Embed the mod-q LWE ``ct'_i`` (dim n_t, key s_t) as an RLWE over
        the raised basis under the padded ring key ``s_t(X)``: constant
        phase coefficient = phi(ct'_i) exactly (values are in [0, q) and
        embed exactly into the larger modulus)."""
        n = self.ctx.n
        padded = np.zeros(n, dtype=object)
        padded[: len(a_p)] = a_p
        rns = RnsLweCiphertext(
            a=[np.mod(padded, qi) for qi in self.raised_basis.moduli],
            b=[int(b_p) % qi for qi in self.raised_basis.moduli],
            basis=self.raised_basis,
        )
        return embed_lwe(rns)

    def _build_test_vector(self) -> RnsPoly:
        """Same LUT as the base pipeline but *without* the ``N^{-1}``
        fold — the repack factor is divided out exactly at the end."""
        n = self.ctx.n
        q = self.ctx.full_basis.moduli[0]
        big_qp = self.raised_basis.product

        def g(t: int) -> int:
            t = t % (2 * n)
            if t < n // 2:
                val = q * t
            elif t < n:
                val = q * (n - t)
            elif t < 3 * n // 2:
                val = -q * (t - n)
            else:
                val = -q * (n - (t - n))
            return val % big_qp

        return build_test_vector(g, n, self.raised_basis)
