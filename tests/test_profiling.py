"""Tests for the op profiler and the functional-vs-model cross-check."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.modular import find_ntt_primes
from repro.math.ntt import NttEngine
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.profiling import OpStats, count_ops, estimate_hardware_seconds
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet


class TestCounters:
    def test_single_ntt_counted(self):
        n = 32
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(n))
        with count_ops() as stats:
            eng.forward(a)
        assert stats.ntt_calls == 1
        assert stats.ntt_points == n
        assert stats.butterfly_mults == (n // 2) * 5  # log2(32) = 5

    def test_batched_ntt_counted_per_row(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(3 * n).reshape(3, n) % q)
        with count_ops() as stats:
            eng.forward(a)
        assert stats.ntt_calls == 3

    def test_disabled_outside_context(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(n))
        with count_ops() as stats:
            pass
        eng.forward(a)  # after the context: not recorded
        assert stats.ntt_calls == 0

    def test_nested_contexts_forward_to_parent(self):
        """A nested region's ops are forwarded to the enclosing region on
        exit, so the outer tally is the *inclusive* total (the inner
        region used to swallow them entirely)."""
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(n))
        with count_ops() as outer:
            with count_ops() as inner:
                eng.forward(a)
            eng.forward(a)
        assert inner.ntt_calls == 1
        assert outer.ntt_calls == 2
        assert outer.ntt_points == 2 * n

    def test_nested_contexts_merge_histograms(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        batch = eng.mod.asarray(np.arange(4 * n).reshape(4, n) % q)
        with count_ops() as outer:
            with count_ops() as inner:
                eng.forward(batch)
            eng.forward(batch[0])
        assert inner.ntt_batch_hist == {4: 1}
        assert outer.ntt_batch_hist == {4: 1, 1: 1}
        assert outer.by_size == {n: 5}

    def test_nested_region_exits_restore_collector(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(n))
        with count_ops() as outer:
            with count_ops():
                pass
            eng.forward(a)  # recorded by the restored outer collector
        assert outer.ntt_calls == 1


class TestExternalProductCounters:
    def _blind_rotate_setup(self):
        from repro.math.gadget import GadgetVector
        from repro.math.rns import RnsBasis
        from repro.tfhe.blind_rotate import BlindRotateKey, build_test_vector
        from repro.tfhe.glwe import GlweSecretKey
        from repro.tfhe.lwe import LweSecretKey, lwe_encrypt

        n = 16
        q = find_ntt_primes(26, n, 1)[0]
        basis = RnsBasis([q])
        gadget = GadgetVector(q=q, base_bits=6, digits=3)
        s = Sampler(5)
        lwe_sk = LweSecretKey.generate(4, s)
        glwe_sk = GlweSecretKey.generate(n, 1, s)
        brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)

        def g(t):
            t = t % (2 * n)
            return (q // 8) * (1 if t < n else -1) % q

        f = build_test_vector(g, n, basis)
        cts = [lwe_encrypt(i, lwe_sk, 2 * n, s, error_std=0.5) for i in range(3)]
        return f, cts, brk

    def test_scalar_path_records_batch_one(self):
        from repro.tfhe.blind_rotate import blind_rotate

        f, cts, brk = self._blind_rotate_setup()
        with count_ops() as stats:
            blind_rotate(f, cts[0], brk)
        assert stats.external_products > 0
        # The scalar oracle advances one accumulator at a time.
        assert set(stats.ep_batch_hist) == {1}
        assert stats.ep_batch_hist[1] == stats.external_products

    def test_vectorized_path_records_batch_sizes(self):
        from repro.tfhe.blind_rotate import blind_rotate_batch

        f, cts, brk = self._blind_rotate_setup()
        with count_ops() as stats:
            blind_rotate_batch(f, cts, brk, engine="vectorized")
        assert stats.external_products > 0
        # At least one fused iteration advanced the whole batch at once.
        assert max(stats.ep_batch_hist) > 1
        assert sum(b * c for b, c in stats.ep_batch_hist.items()) == stats.external_products

    def test_engines_record_equal_totals(self):
        from repro.tfhe.blind_rotate import blind_rotate_batch

        f, cts, brk = self._blind_rotate_setup()
        with count_ops() as vec_stats:
            blind_rotate_batch(f, cts, brk, engine="vectorized")
        with count_ops() as ref_stats:
            blind_rotate_batch(f, cts, brk, engine="reference")
        # Same schedule, same skipped iterations -> same ciphertext-level
        # external-product count, just different batching.
        assert vec_stats.external_products == ref_stats.external_products

    def test_ntt_batch_histogram(self):
        n = 16
        q = find_ntt_primes(24, n, 1)[0]
        eng = NttEngine(n, q)
        a = eng.mod.asarray(np.arange(4 * n).reshape(4, n) % q)
        with count_ops() as stats:
            eng.forward(a)
            eng.forward(a[0])
        assert stats.ntt_batch_hist == {4: 1, 1: 1}


class TestFunctionalVsModel:
    def test_bootstrap_op_counts_measured(self):
        """Profile a real toy bootstrap and sanity-check the counts the
        performance model assumes: NTT work dominated by the blind-rotate
        external products (N rotations x digits x limbs)."""
        params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                                 special_limbs=2)
        ctx = CkksContext(params.ckks, dnum=2)
        gen = CkksKeyGenerator(ctx, Sampler(901))
        sk = gen.secret_key()
        ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(902))
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(903), base_bits=8,
                                       error_std=0.8)
        boot = SchemeSwitchBootstrapper(ctx, swk)
        ct = ev.encrypt(0.3, level=0)
        with count_ops() as stats:
            boot.bootstrap(ct)
        # Lower bound: N blind rotates x N iterations x digit transforms,
        # over the 4-limb raised basis.
        digits = swk.gadget.digits
        min_ntts = ctx.n * ctx.n * digits  # very conservative
        assert stats.ntt_calls > min_ntts / 4
        assert stats.pointwise_mults > 0
        # The compute-bound hardware estimate for this toy run is far
        # below a millisecond — the array is built for N=2^13 rings.
        assert estimate_hardware_seconds(stats) < 1e-2

    def test_hardware_estimate_scales_with_work(self):
        a = OpStats()
        a.record_ntt(1 << 13, 100)
        b = OpStats()
        b.record_ntt(1 << 13, 200)
        assert estimate_hardware_seconds(b) == pytest.approx(
            2 * estimate_hardware_seconds(a))
