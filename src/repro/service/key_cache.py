"""Per-user key residency for the bootstrap service (ARK direction).

Every bootstrap request is useless without its user's key material —
the blind-rotate key, the repack automorphism keys, the Algorithm-2
test vector — and that material is the binding resource when many
tenants are served from one process: ARK measures 3.52 MB per brk entry
and 1.76 GB per user at paper parameters (``bench_keysizes.py`` audits
the formula; :meth:`~repro.switching.keys.SwitchingKeySet.
resident_bytes` counts the actual resident arrays).  This module bounds
it: :class:`LruKeyCache` keeps at most ``capacity_bytes`` of key
material resident, evicting the least-recently-used user's entry —
*including its executor*: an evicted :class:`~repro.switching.
mp_executor.ProcessPoolFanoutExecutor` is closed, releasing its worker
processes and shared-memory key block, not just the primary's arrays.

Entries are **pinned** while requests reference them (queued or in
flight), so eviction can never close an executor mid-batch: evicting a
pinned entry removes it from the cache immediately (it stops counting
toward capacity-driven admission and cannot be returned again) but the
actual close is deferred to the last unpin.

Users may *share* key material — the provider returning the same
:class:`UserKeys` object for several user ids models one tenant
application serving many end users under one evaluation-key context.
Shared keys alias one cache entry (bytes counted once, one executor),
which is what lets the coalescer batch those users' requests together.

Streaming keys add a second, cheaper eviction tier: when the resident
keys support ``drop_expanded()`` (see :class:`~repro.switching.keys.
StreamingSwitchingKeys`), an over-capacity cache first *demotes* cold
unpinned entries — freeing the expanded eval-domain tensors while the
seed+``b`` material (and the entry's executor) stays resident — and
only falls back to full eviction if demotion alone cannot fit.  A
demoted user's next request pays re-expansion, not a provider reload
and executor rebuild.

Because a streaming entry's footprint changes as it expands and
demotes, entries carry an optional ``nbytes_fn`` re-measured on every
cache hit; the cache maintains a running byte total (updated on
insert/refresh/evict) instead of re-walking every entry per eviction
iteration, which made eviction quadratic in resident users.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Set

from ..ckks.context import CkksContext
from ..math.rns import RnsPoly
from ..profiling import record_service
from ..switching.keys import rns_poly_bytes


class UserKeys:
    """One user's loaded bootstrap key material.

    ``keys`` must expose ``.brk`` (what the fan-out executors consume);
    a full :class:`~repro.switching.keys.SwitchingKeySet` additionally
    enables ciphertext-level (Algorithm 2) requests when ``ctx`` is
    given.  ``test_vector`` is the blind-rotate LUT shared by every
    request under this key.
    """

    def __init__(self, keys: Any, test_vector: RnsPoly,
                 ctx: Optional[CkksContext] = None):
        self.keys = keys
        self.test_vector = test_vector
        self.ctx = ctx

    @classmethod
    def from_switching(cls, ctx: CkksContext, keys: Any) -> "UserKeys":
        """Wrap a :class:`~repro.switching.keys.SwitchingKeySet` with the
        Algorithm-2 test vector derived exactly as the executors derive
        it (so the cached LUT is shared, not rebuilt)."""
        test_vector = keys.test_vector(ctx.n, ctx.full_basis.moduli[0])
        return cls(keys, test_vector, ctx=ctx)

    def resident_bytes(self) -> int:
        """Measured bytes of this user's resident key material (the
        quantity the cache charges against its capacity)."""
        fn = getattr(self.keys, "resident_bytes", None)
        if callable(fn):
            total = int(fn())
        else:
            brk = self.keys.brk
            total = sum(rns_poly_bytes(p)
                        for rgsw in list(brk.plus) + list(brk.minus)
                        for row in rgsw.rows for ct in row
                        for p in list(ct.mask) + [ct.body])
        return total + rns_poly_bytes(self.test_vector)


class KeyCacheEntry:
    """One resident user: keys + the executor (and pipeline) bound to
    them, with the pin count that guards the executor's lifetime."""

    __slots__ = ("user_keys", "executor", "pipeline", "nbytes",
                 "nbytes_fn", "users", "pins", "defunct", "closed", "lock")

    def __init__(self, user_keys: UserKeys, executor: Any,
                 pipeline: Any, nbytes: int,
                 nbytes_fn: Optional[Callable[[], int]] = None):
        self.user_keys = user_keys
        self.executor = executor
        self.pipeline = pipeline
        self.nbytes = nbytes
        #: Re-measures the entry's footprint (streaming keys grow on
        #: expansion and shrink on demotion); ``None`` = static size.
        self.nbytes_fn = nbytes_fn
        #: Every user id this entry serves (shared-key aliasing).
        self.users: Set[Any] = set()
        self.pins = 0
        #: Evicted while pinned: close deferred to the last unpin.
        self.defunct = False
        self.closed = False
        #: Serialises dispatches onto this entry's executor (a worker
        #: pool is not re-entrant; one batch in flight per entry).
        self.lock = asyncio.Lock()

    def pin(self) -> None:
        self.pins += 1

    def unpin(self) -> None:
        self.pins -= 1
        if self.pins == 0 and self.defunct:
            self.close()

    def close(self) -> None:
        """Release the executor's OS resources (idempotent)."""
        if self.closed:
            return
        self.closed = True
        close = getattr(self.executor, "close", None)
        if callable(close):
            close()

    def release(self) -> None:
        """Eviction-side close: immediate when unpinned, deferred to the
        last unpin while requests are still in flight."""
        if self.pins == 0:
            self.close()
        else:
            self.defunct = True

    def measure(self) -> int:
        """Current footprint: re-measured via ``nbytes_fn`` when the
        entry's keys can change size, else the recorded size."""
        if self.nbytes_fn is not None:
            self.nbytes = int(self.nbytes_fn())
        return self.nbytes

    def demote(self) -> int:
        """Drop the keys back to seed+``b`` residency if they support
        it; returns bytes freed (0 for eager keys)."""
        drop = getattr(self.user_keys.keys, "drop_expanded", None)
        if not callable(drop):
            return 0
        freed = int(drop())
        if self.nbytes_fn is not None:
            self.measure()
        else:
            self.nbytes = max(0, self.nbytes - freed)
        return freed


class LruKeyCache:
    """Byte-accounted LRU over :class:`KeyCacheEntry`.

    ``key_provider(user_id) -> UserKeys`` loads (or generates) a user's
    key material on miss; ``entry_factory(user_keys) -> KeyCacheEntry``
    builds the executor/pipeline around it (supplied by the service so
    the cache stays executor-agnostic).  ``capacity_bytes=None`` means
    unbounded.

    A *hit* is a request whose user already maps to a resident entry —
    no provider call.  A miss calls the provider; if the returned
    ``UserKeys`` object is already resident under another user id the
    new user aliases that entry (no new bytes, no new executor).

    Eviction never touches pinned entries (their bytes are resident
    regardless until in-flight work completes), so with every entry
    pinned the cache can transiently exceed capacity; the service's
    bounded queue bounds that overshoot.
    """

    def __init__(self, key_provider: Callable[[Any], UserKeys],
                 entry_factory: Callable[[UserKeys], KeyCacheEntry],
                 capacity_bytes: Optional[int] = None):
        self._provider = key_provider
        self._factory = entry_factory
        self.capacity_bytes = capacity_bytes
        #: id(UserKeys) -> entry, in LRU order (front = coldest).
        self._entries: "OrderedDict[int, KeyCacheEntry]" = OrderedDict()
        self._by_user: Dict[Any, int] = {}
        #: Running total of resident entry bytes — kept in sync on every
        #: insert/refresh/evict so eviction is O(victims), not a full
        #: re-walk of the cache per freed entry.
        self._resident = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.demotions = 0
        self.peak_resident_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def resident_bytes(self) -> int:
        return self._resident

    def recount_bytes(self) -> int:
        """Walk every entry and return the measured total (does not
        mutate the running total) — the consistency oracle for tests."""
        return sum(e.nbytes for e in self._entries.values())

    def _refresh(self, entry: KeyCacheEntry) -> None:
        """Re-measure one entry and fold the delta into the running
        total (streaming keys change size between touches)."""
        before = entry.nbytes
        self._resident += entry.measure() - before
        self.peak_resident_bytes = max(self.peak_resident_bytes,
                                       self._resident)

    def resident_users(self) -> Set[Any]:
        return set(self._by_user)

    def get(self, user_id: Any) -> KeyCacheEntry:
        """The (pinned-by-caller-next) entry for ``user_id``, loading and
        evicting as needed."""
        ref = self._by_user.get(user_id)
        if ref is not None and ref in self._entries:
            self.hits += 1
            record_service(cache_hits=1)
            entry = self._entries[ref]
            self._entries.move_to_end(ref)
            self._refresh(entry)
            self._evict_to_fit(keep=ref)
            return entry

        self.misses += 1
        record_service(cache_misses=1)
        user_keys = self._provider(user_id)
        ref = id(user_keys)
        entry = self._entries.get(ref)
        if entry is None:
            entry = self._factory(user_keys)
            self._entries[ref] = entry
            self._resident += entry.nbytes
            self.peak_resident_bytes = max(self.peak_resident_bytes,
                                           self._resident)
            self._evict_to_fit(keep=ref)
        else:
            # Another user id already loaded these exact keys: alias.
            self._entries.move_to_end(ref)
            self._refresh(entry)
        entry.users.add(user_id)
        self._by_user[user_id] = ref
        return entry

    def _evict_to_fit(self, keep: int) -> None:
        if self.capacity_bytes is None:
            return
        # Tier 1: demote cold streaming entries back to seed+b residency
        # — the expanded tensors go, the entry (and executor) stays.
        if self._resident > self.capacity_bytes:
            for ref in list(self._entries):
                if self._resident <= self.capacity_bytes:
                    return
                entry = self._entries.get(ref)
                if entry is None or entry.pins > 0 or ref == keep:
                    continue
                before = entry.nbytes
                if entry.demote() > 0:
                    self._resident += entry.nbytes - before
                    self.demotions += 1
                    record_service(cache_demotions=1)
        # Tier 2: full eviction (closes the executor).
        while self._resident > self.capacity_bytes:
            victim = next((r for r, e in self._entries.items()
                           if e.pins == 0 and r != keep), None)
            if victim is None:
                return  # everything else pinned (or alone): admit oversize
            self._evict(victim)

    def _evict(self, ref: int) -> None:
        entry = self._entries.pop(ref)
        self._resident -= entry.nbytes
        for user in entry.users:
            self._by_user.pop(user, None)
        self.evictions += 1
        record_service(cache_evictions=1)
        entry.release()

    def close(self) -> None:
        """Drop every entry (drain path).  Entries with in-flight pins
        are closed by their last unpin."""
        while self._entries:
            ref = next(iter(self._entries))
            entry = self._entries.pop(ref)
            self._resident -= entry.nbytes
            for user in entry.users:
                self._by_user.pop(user, None)
            entry.release()
