"""Serialization for ciphertexts and ring elements.

JSON-based: Python's arbitrary-precision ints serialise losslessly, which
matters for wide-modulus limbs.  The format is versioned and explicit
about moduli so deserialisation can validate against a context (mixing
ciphertexts across parameter sets is rejected rather than silently
producing garbage).

For transport across simulated node boundaries every blob can
additionally be wrapped in a CRC frame (:func:`frame_blob` /
:func:`unframe_blob`): an 8-byte header carrying the payload's CRC32 and
length.  The cluster simulation frames everything it puts on the wire so
the receiving side can *detect* corruption and truncation — the trigger
for the primary's re-dispatch recovery (Section V fault model) — instead
of feeding garbage into the bootstrap.

For the real multiprocessing executor the *key material* never travels
as blobs at all: :func:`publish_shared_arrays` places a set of numpy
arrays into one ``multiprocessing.shared_memory`` block and returns a
picklable :class:`SharedBufferManifest` (per array: name, dtype, shape,
byte offset, CRC32).  Workers :func:`attach_shared_arrays` once at spawn
and get zero-copy read-only views — the 1.76 GB blind-rotate key of the
paper's parameter set is mapped, not re-deserialized per batch (the ARK
observation that the key working set, not the ciphertexts, is the
binding cost of fanning bootstrap work out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import json
import struct
from typing import Dict, List, Optional, Tuple
import zlib

import numpy as np

from .ckks.ciphertext import CkksCiphertext
from .errors import ParameterError, SharedBufferError, WireFormatError
from .math.rns import RnsBasis, RnsPoly
from .tfhe.lwe import LweCiphertext

FORMAT_VERSION = 1

#: Wire frame header: big-endian CRC32 of the payload, then payload length.
WIRE_HEADER = struct.Struct(">II")


def frame_blob(payload: bytes) -> bytes:
    """Wrap a serialized blob for the wire: ``CRC32 | length | payload``."""
    return WIRE_HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF,
                            len(payload)) + payload


def unframe_blob(blob: bytes) -> bytes:
    """Verify and strip a :func:`frame_blob` frame.

    Raises :class:`~repro.errors.WireFormatError` on a short header, a
    length mismatch (truncated/padded payload) or a CRC32 mismatch — the
    three corruption modes the fault injector exercises.
    """
    if len(blob) < WIRE_HEADER.size:
        raise WireFormatError(
            f"framed blob of {len(blob)} bytes is shorter than its header")
    crc, length = WIRE_HEADER.unpack_from(blob)
    payload = blob[WIRE_HEADER.size:]
    if len(payload) != length:
        raise WireFormatError(
            f"framed blob length mismatch: header says {length} bytes, "
            f"payload has {len(payload)}")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise WireFormatError("CRC32 mismatch: blob corrupted in transit")
    return payload


# -- RnsPoly ---------------------------------------------------------------------


def rns_poly_to_dict(poly: RnsPoly) -> dict:
    src = poly.to_coeff()
    return {
        "n": src.n,
        "moduli": [int(q) for q in src.basis.moduli],
        "limbs": [[int(v) for v in limb] for limb in src.limbs],
    }


def rns_poly_from_dict(data: dict) -> RnsPoly:
    basis = RnsBasis(data["moduli"])
    n = data["n"]
    limbs = [e.asarray(np.asarray(limb, dtype=object))
             for e, limb in zip(basis.engines, data["limbs"])]
    return RnsPoly(n, basis, limbs, "coeff")


# -- CkksCiphertext ---------------------------------------------------------------------


def serialize_ciphertext(ct: CkksCiphertext) -> bytes:
    payload = {
        "version": FORMAT_VERSION,
        "kind": "ckks",
        "scale": ct.scale,
        "c0": rns_poly_to_dict(ct.c0),
        "c1": rns_poly_to_dict(ct.c1),
    }
    return json.dumps(payload).encode()


def deserialize_ciphertext(blob: bytes, expected_moduli=None) -> CkksCiphertext:
    payload = json.loads(blob.decode())
    _check(payload, "ckks")
    ct = CkksCiphertext(
        c0=rns_poly_from_dict(payload["c0"]).to_eval(),
        c1=rns_poly_from_dict(payload["c1"]).to_eval(),
        scale=float(payload["scale"]),
    )
    if expected_moduli is not None:
        prefix = list(expected_moduli)[: len(ct.basis.moduli)]
        if list(ct.basis.moduli) != prefix:
            raise ParameterError(
                "ciphertext moduli do not match the expected parameter set")
    return ct


# -- LweCiphertext -------------------------------------------------------------------------


def serialize_lwe(ct: LweCiphertext) -> bytes:
    payload = {
        "version": FORMAT_VERSION,
        "kind": "lwe",
        "q": int(ct.q),
        "a": [int(v) for v in ct.a],
        "b": int(ct.b),
    }
    return json.dumps(payload).encode()


def deserialize_lwe(blob: bytes) -> LweCiphertext:
    payload = json.loads(blob.decode())
    _check(payload, "lwe")
    q = payload["q"]
    a = np.asarray(payload["a"], dtype=object)
    if q < 2**31:
        a = a.astype(np.int64)
    return LweCiphertext(a=a, b=int(payload["b"]) % q, q=q)


def _check(payload: dict, kind: str) -> None:
    if payload.get("version") != FORMAT_VERSION:
        raise ParameterError(
            f"unsupported format version {payload.get('version')!r}")
    if payload.get("kind") != kind:
        raise ParameterError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}")


# -- GlweCiphertext (TFHE / accumulator) ------------------------------------------


def serialize_glwe(ct) -> bytes:
    """Serialise a GLWE/RLWE ciphertext (TFHE side)."""
    from .tfhe.glwe import GlweCiphertext

    if not isinstance(ct, GlweCiphertext):
        raise ParameterError("expected a GlweCiphertext")
    payload = {
        "version": FORMAT_VERSION,
        "kind": "glwe",
        "mask": [rns_poly_to_dict(m) for m in ct.mask],
        "body": rns_poly_to_dict(ct.body),
    }
    return json.dumps(payload).encode()


def deserialize_glwe(blob: bytes):
    from .tfhe.glwe import GlweCiphertext

    payload = json.loads(blob.decode())
    _check(payload, "glwe")
    return GlweCiphertext(
        mask=[rns_poly_from_dict(m) for m in payload["mask"]],
        body=rns_poly_from_dict(payload["body"]),
    )


# -- RnsPoly (standalone wire form: programmable LUT shipping) --------------------


def serialize_rns_poly(poly: RnsPoly) -> bytes:
    """Serialise one RNS polynomial as a standalone wire payload — the
    form the cluster primary ships programmable-bootstrap test vectors
    in (CRC-framed via :func:`frame_blob`, once per node per LUT)."""
    payload = {
        "version": FORMAT_VERSION,
        "kind": "rns_poly",
        "poly": rns_poly_to_dict(poly),
    }
    return json.dumps(payload).encode()


def deserialize_rns_poly(blob: bytes) -> RnsPoly:
    """Inverse of :func:`serialize_rns_poly` (coefficient domain, ready
    for :func:`~repro.tfhe.blind_rotate.blind_rotate_batch`)."""
    payload = json.loads(blob.decode())
    _check(payload, "rns_poly")
    return rns_poly_from_dict(payload["poly"])


# -- seeded key material (ARK-style seed + b-half at-rest form) -------------------


@dataclass
class SeededKeyMaterial:
    """Seed + ``b``-half at-rest form of one seeded key structure.

    ``bodies`` holds the stored halves as fixed-width evaluation-domain
    stacks (one array per limb/group, e.g. ``brk_b_0`` of shape
    ``(n_t, 2, (h+1)d, N)``); ``meta`` carries the public parameters
    (ring size, moduli, gadget) *and the mask seeds* needed to replay the
    uniform ``a``-halves.  The seeds are secret material: with seed and
    body an attacker reconstructs the full key ciphertexts, so this
    object redacts its repr and must never be logged (heaplint HL004
    enforces the same rule for anything named ``*_seed``).

    The same representation serves both transports: :func:`
    serialize_seeded_key_material` CRC-frames it for the wire, and
    :func:`publish_seeded_material` maps the bodies into shared memory so
    pool workers expand the masks locally instead of mapping them.
    """

    kind: str
    meta: Dict[str, object]
    bodies: Dict[str, np.ndarray]

    def resident_bytes(self) -> int:
        """At-rest bytes: the stored bodies (seeds and params are noise)."""
        return sum(arr.nbytes for arr in self.bodies.values())

    def __repr__(self) -> str:
        """Redacted: shapes only — the meta holds mask seeds."""
        shapes = {name: tuple(arr.shape) for name, arr in self.bodies.items()}
        return (f"SeededKeyMaterial(kind={self.kind!r}, meta=<redacted>, "
                f"bodies={shapes})")


def serialize_seeded_key_material(material: SeededKeyMaterial) -> bytes:
    """CRC-framed wire form: a framed JSON header (kind, meta, array
    directory) followed by one framed raw-byte segment per body array.
    Every segment carries its own CRC32, so truncation or corruption of
    either the directory or any body is detected on read."""
    header = {
        "version": FORMAT_VERSION,
        "kind": "seeded_keys",
        "material_kind": material.kind,
        "meta": material.meta,
        "arrays": [{"name": name, "dtype": arr.dtype.str,
                    "shape": list(arr.shape)}
                   for name, arr in material.bodies.items()],
    }
    parts = [frame_blob(json.dumps(header).encode())]
    for name, arr in material.bodies.items():
        if arr.dtype == object or arr.dtype.hasobject:
            raise WireFormatError(
                f"seeded body {name!r} has object dtype — wide-modulus "
                f"limbs cannot be serialised as fixed-width segments")
        parts.append(frame_blob(np.ascontiguousarray(arr).tobytes()))
    return b"".join(parts)


def _walk_frames(blob: bytes):
    """Yield the payload of each consecutive :func:`frame_blob` segment."""
    offset = 0
    while offset < len(blob):
        if len(blob) - offset < WIRE_HEADER.size:
            raise WireFormatError("trailing bytes shorter than a frame header")
        _, length = WIRE_HEADER.unpack_from(blob, offset)
        end = offset + WIRE_HEADER.size + length
        yield unframe_blob(blob[offset:end])
        offset = end


def deserialize_seeded_key_material(blob: bytes) -> SeededKeyMaterial:
    """Parse and CRC-verify a :func:`serialize_seeded_key_material` blob."""
    frames = _walk_frames(blob)
    try:
        header = json.loads(next(frames).decode())
    except StopIteration:
        raise WireFormatError("seeded key blob is empty") from None
    _check(header, "seeded_keys")
    bodies: Dict[str, np.ndarray] = {}
    for spec in header["arrays"]:
        try:
            payload = next(frames)
        except StopIteration:
            raise WireFormatError(
                f"seeded key blob truncated before array {spec['name']!r}") from None
        arr = np.frombuffer(payload, dtype=np.dtype(spec["dtype"]))
        bodies[spec["name"]] = arr.reshape(spec["shape"]).copy()
    return SeededKeyMaterial(kind=header["material_kind"],
                             meta=header["meta"], bodies=bodies)


def publish_seeded_material(material: SeededKeyMaterial,
                            ) -> Tuple[object, "SharedBufferManifest"]:
    """Map a seeded key's bodies into one shared-memory block.

    Only the ``b``-halves occupy shared bytes; the seeds and parameters
    ride in the (picklable) manifest meta, and each attaching worker
    replays the mask streams locally — the ARK tradeoff of per-worker
    expansion compute for roughly half the shared key bytes.
    """
    meta = {"seeded_kind": material.kind, "seeded_meta": dict(material.meta)}
    return publish_shared_arrays(material.bodies, meta=meta)


def seeded_material_from_views(manifest: "SharedBufferManifest",
                               views: Dict[str, np.ndarray]) -> SeededKeyMaterial:
    """Rebuild a :class:`SeededKeyMaterial` over a worker's attached
    (CRC-verified, read-only) views — zero-copy for the bodies."""
    meta = manifest.meta
    if "seeded_meta" not in meta:
        raise SharedBufferError("manifest does not describe seeded key material")
    return SeededKeyMaterial(kind=str(meta["seeded_kind"]),
                             meta=dict(meta["seeded_meta"]),  # type: ignore[arg-type]
                             bodies=views)


# -- shared-memory buffers (multiprocessing key material) -------------------------


#: Byte alignment of every array inside a shared block (cache-line).
_SHM_ALIGN = 64


@dataclass(frozen=True)
class SharedArraySpec:
    """One array inside a shared block: where it lives and how to check it."""

    name: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int
    crc32: int


@dataclass
class SharedBufferManifest:
    """Picklable description of one published shared-memory block.

    ``block`` is the OS-level ``shared_memory`` name a worker attaches
    to; ``arrays`` lists every array with its dtype, shape, byte offset
    and CRC32 (computed at publish time — :func:`attach_shared_arrays`
    re-checks it once per attach, so a worker never maps a torn or
    foreign block); ``meta`` carries small picklable metadata the
    consumer needs to interpret the arrays (ring size, moduli, gadget
    parameters, domains) without any further deserialization.
    """

    block: str
    total_bytes: int
    arrays: List[SharedArraySpec]
    meta: Dict[str, object] = field(default_factory=dict)

    def spec(self, name: str) -> SharedArraySpec:
        for spec in self.arrays:
            if spec.name == name:
                return spec
        raise SharedBufferError(f"manifest has no array named {name!r}")


def _shm_module():
    from multiprocessing import shared_memory

    return shared_memory


def publish_shared_arrays(arrays: Dict[str, np.ndarray],
                          meta: Optional[Dict[str, object]] = None,
                          ) -> Tuple[object, SharedBufferManifest]:
    """Copy ``arrays`` into one new shared-memory block.

    Returns ``(block, manifest)``: the owning ``SharedMemory`` handle
    (the publisher must keep it alive and eventually ``close()`` +
    ``unlink()`` it) and the picklable manifest consumers attach with.
    Arrays must have a fixed-width dtype — ``object`` limbs (wide-modulus
    rings) cannot be memory-mapped and raise :class:`~repro.errors.
    SharedBufferError`; callers fall back to the simulated executor.
    """
    specs: List[SharedArraySpec] = []
    offset = 0
    for name, arr in arrays.items():
        if arr.dtype == object or arr.dtype.hasobject:
            raise SharedBufferError(
                f"array {name!r} has object dtype — only fixed-width dtypes "
                f"can be shared zero-copy (wide-modulus limbs cannot)")
        offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
        specs.append(SharedArraySpec(
            name=name, dtype=arr.dtype.str, shape=tuple(arr.shape),
            offset=offset, nbytes=arr.nbytes,
            crc32=zlib.crc32(np.ascontiguousarray(arr).data) & 0xFFFFFFFF))
        offset += arr.nbytes
    total = max(offset, 1)
    block = _shm_module().SharedMemory(create=True, size=total)
    for spec, arr in zip(specs, arrays.values()):
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=block.buf, offset=spec.offset)
        view[...] = arr
    return block, SharedBufferManifest(block=block.name, total_bytes=total,
                                       arrays=specs, meta=dict(meta or {}))


def attach_shared_arrays(manifest: SharedBufferManifest,
                         verify: bool = True,
                         writable: bool = False,
                         ) -> Tuple[object, Dict[str, np.ndarray]]:
    """Attach to a published block and return zero-copy views.

    Returns ``(block, views)``; the attaching process must keep ``block``
    alive as long as it uses the views and ``close()`` it afterwards
    (never ``unlink()`` — the publisher owns the block's lifetime).  With
    ``verify=True`` (the default) every array's CRC32 is checked once
    against the manifest, so corruption or a stale/foreign block is
    detected at attach time rather than mid-bootstrap.

    Views are **read-only** by default: the block aliases the publisher's
    key material across every attached worker, so an in-place write in
    one worker silently corrupts all of them (and invalidates the
    manifest CRCs).  A consumer that genuinely owns the block's contents
    — a scratch-buffer protocol, not key material — must opt in with
    ``writable=True``.
    """
    shared_memory = _shm_module()
    try:
        block = shared_memory.SharedMemory(name=manifest.block)
    except FileNotFoundError as exc:
        raise SharedBufferError(
            f"shared block {manifest.block!r} does not exist (publisher "
            f"gone or already unlinked)") from exc
    # Attach registers the block with the resource tracker (bpo-39959).
    # Pool workers share the publisher's tracker (multiprocessing hands
    # the tracker fd to fork and spawn children alike), where the
    # registration is an idempotent set-add: worker attaches are no-ops
    # against the publisher's own registration and the publisher's
    # ``unlink()`` performs the one unregister.  Unregistering here
    # would strip that registration out from under the publisher —
    # tracker noise at unlink, no leak cleanup on crash.  Only a process
    # *outside* the publisher's tree (its own tracker) must unregister,
    # or its exit unlinks the key material under every sibling; this
    # repo's consumers are all pool children, so no unregister.
    if block.size < manifest.total_bytes:
        block.close()
        raise SharedBufferError(
            f"shared block {manifest.block!r} is {block.size} bytes, "
            f"manifest expects {manifest.total_bytes}")
    views: Dict[str, np.ndarray] = {}
    for spec in manifest.arrays:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=block.buf, offset=spec.offset)
        if verify and zlib.crc32(np.ascontiguousarray(view).data) & 0xFFFFFFFF != spec.crc32:
            block.close()
            raise SharedBufferError(
                f"array {spec.name!r} in shared block {manifest.block!r} "
                f"failed its CRC32 check — block corrupted or mismatched")
        if not writable:
            view.setflags(write=False)
        views[spec.name] = view
    return block, views
