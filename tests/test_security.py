"""Tests for the HE-standard security checks on the paper's parameters."""

import pytest

from repro.errors import ParameterError
from repro.params import make_conventional_params, make_heap_params
from repro.security import check_params, estimate_security, max_log_q


class TestStandardTables:
    def test_paper_claim_n13_logq216(self):
        """The headline claim: N = 2^13 with logQ = 216 is 128-bit secure
        (standard bound 218)."""
        est = estimate_security(1 << 13, 216)
        assert est.meets_128
        assert est.margin_bits == 2

    def test_paper_conventional_set(self):
        """FAB-style N = 2^16, logQ = 1728 against the 1772 bound."""
        est = estimate_security(1 << 16, 1728)
        assert est.meets_128

    def test_oversized_modulus_fails(self):
        est = estimate_security(1 << 13, 219)
        assert not est.meets_128

    def test_higher_levels(self):
        assert estimate_security(1 << 13, 118).level == 256
        assert estimate_security(1 << 13, 152).level >= 192

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ParameterError):
            max_log_q(1000)

    def test_below_table_rejected(self):
        with pytest.raises(ParameterError):
            max_log_q(512)

    def test_unknown_level_rejected(self):
        with pytest.raises(ParameterError):
            max_log_q(1 << 13, level=80)


class TestParamChecks:
    def test_heap_q_only_is_secure(self):
        """The ciphertext modulus alone (216 bits at N=2^13) meets the
        standard."""
        p = make_heap_params().ckks
        est = check_params(p, include_specials=False)
        assert est.meets_128

    def test_heap_with_specials_finding(self):
        """Reproduction finding: counting the key-switch special primes
        (as the standard says one should, since evaluation keys live mod
        Q*P), the paper's N = 2^13 set exceeds the 218-bit bound — its
        claim holds only for the ciphertext modulus."""
        p = make_heap_params().ckks
        with pytest.raises(ParameterError):
            check_params(p, include_specials=True)

    def test_conventional_params(self):
        p = make_conventional_params()
        est = check_params(p, include_specials=False)
        assert est.meets_128
