"""Table VII: ResNet-20 inference (1024-slot packing) via the op-sequence
model, plus a measured encrypted convolution block (the functional
miniature of Lee et al.'s multiplexed convolutions)."""

import numpy as np
from conftest import emit

from repro.analysis import format_table, table7_resnet
from repro.apps import TinyEncryptedCnn, resnet20_op_counts, resnet_inference_model
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.ckks.bootstrap import make_bootstrappable_toy_params
from repro.hardware.baselines import BOOTSTRAP_SHARE
from repro.math.sampling import Sampler


def bench_table7_model(benchmark, fpga_model, cluster_model):
    headers, rows = benchmark(table7_resnet, fpga_model, cluster_model)
    total, share = resnet_inference_model(fpga_model, cluster_model)
    layers = resnet20_op_counts()
    lines = ["Table VII: ResNet-20 inference",
             format_table(headers, rows),
             f"\nbootstrap share: {share:.2%} "
             f"(paper: ~{BOOTSTRAP_SHARE['resnet_heap']:.0%}); "
             f"{sum(layer.bootstraps for layer in layers)} bootstraps across "
             f"{len(layers)} homomorphic layers"]
    emit("table7_resnet", "\n".join(lines))
    by = {r["Work"]: r for r in rows}
    assert by["CraterLake"]["Speedup time (model)"] > 1
    assert by["SHARP"]["Speedup time (model)"] < 1


def bench_functional_encrypted_conv(benchmark):
    """Measured conv + square-activation block on an encrypted image."""
    params = make_bootstrappable_toy_params(n=32, levels=6, delta_bits=24,
                                            q0_bits=30)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(61))
    sk = gen.secret_key()
    side = 4
    kernel = np.array([[0.5, -0.25], [0.125, 0.375]])
    rots = {di * side + dj for di in range(2) for dj in range(2)} - {0}
    keys = gen.keyset(sk, rotations=sorted(rots))
    ev = CkksEvaluator(ctx, keys, Sampler(62), scale_rtol=5e-2)
    cnn = TinyEncryptedCnn(ctx, ev, side, kernel)
    img = np.random.default_rng(2).uniform(-0.5, 0.5, (side, side))
    ct = ev.encrypt(cnn.pack_image(img))

    def block():
        return cnn.square_activation(cnn.conv(ct))

    out = benchmark.pedantic(block, rounds=1, iterations=1, warmup_rounds=0)
    got = ev.decrypt(out, sk).real
    want = cnn.reference(img, kernel)
    assert abs(got[0] - want[0, 0]) < 0.05
