#!/usr/bin/env python3
"""Non-linear functions on encrypted data via scheme switching (§III-A).

The paper motivates scheme switching with non-linear evaluation before
specialising it to bootstrapping: "The function f can be set to evaluate
sigmoid, exponentiation, or ReLU function."  This example runs that
general path — sign, ReLU and sigmoid through the TFHE LUT on
(coefficient-packed) CKKS ciphertexts — and contrasts it with the
polynomial (Chebyshev) route the CKKS-only world is limited to.
"""

import numpy as np

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.modular import find_ntt_primes
from repro.math.sampling import Sampler
from repro.params import CkksParams
from repro.switching import (
    FunctionalEvaluator,
    SwitchingKeySet,
    relu_fn,
    sigmoid_fn,
    sign_fn,
)


def main() -> None:
    # Fine LUT quantisation wants a small q/Delta ratio.
    n = 32
    primes = find_ntt_primes(30, n, 5)
    params = CkksParams(n=n, moduli=primes[:3], special_moduli=primes[3:5],
                        scale_bits=28)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(11))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(12))
    print("generating switching keys...")
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(13), base_bits=4,
                                   error_std=0.6)
    fev = FunctionalEvaluator(ctx, swk)
    print(f"LUT domain: |v| < {fev.max_abs_input():.2f}, "
          f"resolution {fev.quantisation_step():.4f} "
          f"({2 * n} phase buckets)")

    rng = np.random.default_rng(3)
    z = rng.uniform(-0.9, 0.9, n)
    ct = ev.encrypt_coeffs(z, level=0)

    for name, f, ref in (
        ("sign", sign_fn, np.sign),
        ("ReLU", relu_fn, lambda x: np.maximum(x, 0)),
        ("sigmoid", sigmoid_fn, lambda x: 1 / (1 + np.exp(-x))),
    ):
        out = fev.evaluate(ct, f)
        got = ev.decrypt_coeffs_scaled(out, sk)
        err = float(np.max(np.abs(got - ref(z))))
        print(f"{name:8s}: level {out.level} output "
              f"(fresh, no depth spent), max error {err:.3f}")

    print("\nfirst few values:")
    out = ev.decrypt_coeffs_scaled(fev.evaluate(ct, relu_fn), sk)
    for i in range(6):
        print(f"  v = {z[i]:+.3f}  ->  ReLU = {out[i]:+.3f}")

    print("\nnote: sign is *discontinuous* — the CKKS-only (Chebyshev)")
    print("route cannot represent it; this is the paper's argument for")
    print("switching to TFHE for non-linear operations (Section III-A).")


if __name__ == "__main__":
    main()
