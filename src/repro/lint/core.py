"""heaplint engine: file contexts, suppressions, baseline, runner.

The engine is deliberately small: a :class:`FileContext` bundles one
parsed module (source, lines, AST, suppression table); a :class:`Rule`
walks the AST and yields :class:`Finding` objects; the runner applies
inline suppressions, then subtracts the checked-in baseline so CI fails
only on *new* findings.

Suppression syntax (same line as the finding, or a standalone comment
line directly above it)::

    x = np.zeros(n, dtype=object)  # heaplint: disable=HL001 exact big-int table

The reason text after the code list is mandatory — a suppression without
one is itself reported (code ``HL000``), so every waiver carries its
justification in the diff.

Baseline fingerprints hash ``(path, rule, normalized source line)`` so
they survive unrelated edits that renumber lines; the baseline stores a
count per fingerprint, so adding a *second* identical offence on a new
line still fails.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import hashlib
import json
from pathlib import Path
import re
import tokenize
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Reported when a suppression comment is malformed or has no reason.
BAD_SUPPRESSION_CODE = "HL000"

_SUPPRESS_RE = re.compile(
    r"#\s*heaplint:\s*disable=(?P<codes>HL\d{3}(?:\s*,\s*HL\d{3})*)(?P<reason>.*)$"
)
_SUPPRESS_ANY_RE = re.compile(r"#\s*heaplint:\s*disable")

# ``# heaplint: threadsafe <reason>`` asserts that the shared state defined
# (or written) on the annotated line is safe without a lock — e.g. written
# only before threads start, or monotonic-idempotent by construction.  The
# reason is mandatory, same as for disable= suppressions.
_THREADSAFE_RE = re.compile(r"#\s*heaplint:\s*threadsafe(?P<reason>.*)$")
_THREADSAFE_ANY_RE = re.compile(r"#\s*heaplint:\s*threadsafe")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str

    def fingerprint(self) -> str:
        """Stable identity for baselining: path + rule + normalized line.

        Line *numbers* are deliberately excluded so unrelated edits above
        a baselined finding do not resurrect it.
        """
        payload = f"{self.path}|{self.rule}|{self.snippet.strip()}"
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """A parsed ``# heaplint: disable=...`` comment."""

    line: int
    codes: Tuple[str, ...]
    reason: str
    standalone: bool  # comment-only line: applies to the next code line


class FileContext:
    """One parsed module plus everything rules need to inspect it."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        self.suppressions: List[Suppression] = []
        self.bad_suppressions: List[Finding] = []
        self._suppressed_lines: Dict[int, Set[str]] = {}
        self._threadsafe_lines: Dict[int, str] = {}
        self._collect_suppressions()

    # -- suppression handling ----------------------------------------------

    def _comment_tokens(self) -> Iterator[Tuple[int, int, str, str]]:
        """Yield ``(line, col, comment_text, full_line)`` for every comment."""
        readline = iter(self.source.splitlines(keepends=True)).__next__
        try:
            for tok in tokenize.generate_tokens(readline):
                if tok.type == tokenize.COMMENT:
                    yield tok.start[0], tok.start[1], tok.string, tok.line
        except tokenize.TokenError:  # pragma: no cover - ast.parse catches first
            return

    def _collect_suppressions(self) -> None:
        for lineno, col, comment, full_line in self._comment_tokens():
            if _THREADSAFE_ANY_RE.search(comment):
                self._collect_threadsafe(lineno, col, comment, full_line)
                continue
            if not _SUPPRESS_ANY_RE.search(comment):
                continue
            snippet = full_line.rstrip("\n")
            match = _SUPPRESS_RE.search(comment)
            reason = match.group("reason").strip() if match else ""
            if match is None or not reason:
                self.bad_suppressions.append(
                    Finding(
                        rule=BAD_SUPPRESSION_CODE,
                        path=self.path,
                        line=lineno,
                        col=col,
                        message=(
                            "malformed heaplint suppression: expected "
                            "'# heaplint: disable=HLxxx[,HLyyy] <reason>' "
                            "with a non-empty reason"
                        ),
                        snippet=snippet,
                    )
                )
                continue
            codes = tuple(c.strip() for c in match.group("codes").split(","))
            standalone = full_line[:col].strip() == ""
            sup = Suppression(
                line=lineno, codes=codes, reason=reason, standalone=standalone
            )
            self.suppressions.append(sup)
            target = lineno
            if standalone:
                target = self._next_code_line(lineno)
            self._suppressed_lines.setdefault(target, set()).update(codes)

    def _collect_threadsafe(self, lineno: int, col: int, comment: str,
                            full_line: str) -> None:
        match = _THREADSAFE_RE.search(comment)
        reason = match.group("reason").strip() if match else ""
        if not reason:
            self.bad_suppressions.append(
                Finding(
                    rule=BAD_SUPPRESSION_CODE,
                    path=self.path,
                    line=lineno,
                    col=col,
                    message=(
                        "malformed heaplint waiver: expected "
                        "'# heaplint: threadsafe <reason>' with a "
                        "non-empty reason"
                    ),
                    snippet=full_line.rstrip("\n"),
                )
            )
            return
        target = lineno
        if full_line[:col].strip() == "":
            target = self._next_code_line(lineno)
        self._threadsafe_lines[target] = reason

    def _next_code_line(self, after: int) -> int:
        """First non-blank, non-comment line after ``after`` (1-based)."""
        for i in range(after, len(self.lines)):
            stripped = self.lines[i].strip()
            if stripped and not stripped.startswith("#"):
                return i + 1
        return after

    def is_suppressed(self, code: str, line: int) -> bool:
        return code in self._suppressed_lines.get(line, set())

    def is_threadsafe_waived(self, line: int) -> bool:
        """Whether ``line`` carries a ``# heaplint: threadsafe`` waiver."""
        return line in self._threadsafe_lines

    # -- helpers for rules --------------------------------------------------

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=lineno,
            col=col,
            message=message,
            snippet=self.line_text(lineno),
        )


class Rule:
    """Base class: subclasses set the class attributes and yield findings."""

    code: str = "HL999"
    name: str = "unnamed"
    description: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs the whole-repo view (call graph, reachability).

    Project rules run once per lint invocation over every parsed file at
    the same time, after the per-file rules.  ``check`` is unused; the
    runner calls :meth:`check_project` with the shared
    :class:`~repro.lint.dataflow.ProjectIndex`.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, index: "object") -> Iterator[Finding]:
        raise NotImplementedError


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, ordered by code."""
    from .concurrency_rules import (
        AsyncHygieneRule,
        ProcessPayloadRule,
        SharedArrayAliasingRule,
        SharedMutableStateRule,
    )
    from .rules import (
        HotPathObjectDtypeRule,
        LazyBoundProofRule,
        NttDomainDisciplineRule,
        ParamConstructionRule,
        SecretHygieneRule,
    )

    rules: List[Rule] = [
        HotPathObjectDtypeRule(),
        LazyBoundProofRule(),
        NttDomainDisciplineRule(),
        SecretHygieneRule(),
        ParamConstructionRule(),
        SharedMutableStateRule(),
        AsyncHygieneRule(),
        ProcessPayloadRule(),
        SharedArrayAliasingRule(),
    ]
    return sorted(rules, key=lambda r: r.code)


# -- baseline ---------------------------------------------------------------


@dataclass
class Baseline:
    """Counts of accepted pre-existing findings, keyed by fingerprint."""

    counts: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        entries = data.get("findings", {})
        counts: Dict[str, int] = {}
        for fp, entry in entries.items():
            counts[fp] = int(entry["count"]) if isinstance(entry, dict) else int(entry)
        return cls(counts=counts)

    @staticmethod
    def dump(findings: Sequence[Finding], path: Path) -> None:
        """Write ``findings`` as the new baseline (sorted, annotated)."""
        entries: Dict[str, Dict[str, object]] = {}
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule)):
            fp = f.fingerprint()
            if fp in entries:
                entries[fp]["count"] = int(str(entries[fp]["count"])) + 1
            else:
                entries[fp] = {
                    "count": 1,
                    "rule": f.rule,
                    "path": f.path,
                    "snippet": f.snippet.strip(),
                }
        payload = {
            "comment": (
                "heaplint baseline: pre-existing findings accepted as-is. "
                "Regenerate with 'python -m repro.lint --update-baseline ...'; "
                "new findings beyond these counts fail CI."
            ),
            "findings": entries,
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")

    def filter_new(self, findings: Sequence[Finding]) -> List[Finding]:
        """Findings beyond the baselined count for their fingerprint."""
        budget = dict(self.counts)
        fresh: List[Finding] = []
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
            fp = f.fingerprint()
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
            else:
                fresh.append(f)
        return fresh


# -- runner -----------------------------------------------------------------


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule=BAD_SUPPRESSION_CODE,
        path=path.replace("\\", "/"),
        line=exc.lineno or 1,
        col=exc.offset or 0,
        message=f"file does not parse: {exc.msg}",
        snippet=(exc.text or "").rstrip(),
    )


def _run_rules(contexts: Sequence[FileContext],
               rules: Sequence[Rule]) -> List[Finding]:
    """Per-file rules on each context, then project rules once over all."""
    from .dataflow import ProjectIndex

    by_path = {ctx.path: ctx for ctx in contexts}
    found: List[Finding] = []
    for ctx in contexts:
        found.extend(ctx.bad_suppressions)
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            for f in rule.check(ctx):
                if not ctx.is_suppressed(f.rule, f.line):
                    found.append(f)
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    if project_rules:
        index = ProjectIndex(contexts)
        for rule in project_rules:
            for f in rule.check_project(index):
                ctx = by_path.get(f.path)
                if ctx is None or not ctx.is_suppressed(f.rule, f.line):
                    found.append(f)
    return found


def analyze_source(source: str, path: str,
                   rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """All unsuppressed findings for one module's source text.

    The single file stands in as the whole project, so project rules
    (call graph, reachability) see exactly this module — which is what
    fixture tests want.
    """
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [_syntax_finding(path, exc)]
    return _run_rules([ctx], list(rules) if rules is not None else all_rules())


def analyze_file(path: Path, root: Optional[Path] = None,
                 rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    rel = str(path)
    if root is not None:
        try:
            rel = str(path.resolve().relative_to(root.resolve()))
        except ValueError:
            rel = str(path)
    return analyze_source(path.read_text(encoding="utf-8"), rel, rules)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through), sorted."""
    seen: Set[Path] = set()
    for p in paths:
        if p.is_dir():
            candidates: Iterable[Path] = sorted(p.rglob("*.py"))
        else:
            candidates = [p]
        for c in candidates:
            if any(part.startswith(".") for part in c.parts):
                continue
            if c not in seen:
                seen.add(c)
                yield c


def analyze_paths(paths: Sequence[Path], root: Optional[Path] = None,
                  rules: Optional[Sequence[Rule]] = None) -> List[Finding]:
    """Run every rule over every python file under ``paths``.

    All files are parsed up front so project rules analyze the full
    cross-module call graph, not one file at a time.
    """
    rule_set = list(rules) if rules is not None else all_rules()
    contexts: List[FileContext] = []
    findings: List[Finding] = []
    for f in iter_python_files(paths):
        rel = str(f)
        if root is not None:
            try:
                rel = str(f.resolve().relative_to(root.resolve()))
            except ValueError:
                rel = str(f)
        try:
            contexts.append(FileContext(rel, f.read_text(encoding="utf-8")))
        except SyntaxError as exc:
            findings.append(_syntax_finding(rel, exc))
    findings.extend(_run_rules(contexts, rule_set))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
