"""Tests for the shared staged bootstrap pipeline (Algorithm 2)."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.profiling import count_ops
from repro.switching import (
    BootstrapPipeline,
    LocalExecutor,
    SchemeSwitchBootstrapper,
    SwitchingKeySet,
)
from repro.switching.cluster_sim import Fault, FaultInjector, SimulatedCluster
from repro.switching.pipeline import BootstrapTrace, mod_switch

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(601))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(602))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(603), base_bits=4,
                                   error_std=0.8)
    return ctx, sk, ev, swk


class TestStages:
    def test_mod_switch_exact_identity(self, stack):
        """Steps 1-2 are an exact integer split:
        2N*x = q*ct_ms + ct' componentwise, for both components."""
        ctx, sk, ev, swk = stack
        ct = ev.encrypt(0.3, level=0)
        n, two_n = ctx.n, 2 * ctx.n
        q = ct.basis.moduli[0]
        ms = mod_switch(ct, two_n, q)
        c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
        c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
        assert all(two_n * int(c0[i]) == q * int(ms.c0_ms[i]) +
                   int(ms.c0_prime[i]) for i in range(n))
        assert all(two_n * int(c1[i]) == q * int(ms.c1_ms[i]) +
                   int(ms.c1_prime[i]) for i in range(n))

    def test_rejects_non_level0_input(self, stack):
        ctx, sk, ev, swk = stack
        pipeline = BootstrapPipeline(ctx, swk)
        with pytest.raises(ParameterError):
            pipeline.run(ev.encrypt(0.2))  # top level, not level 0

    def test_default_executor_is_local(self, stack):
        ctx, sk, ev, swk = stack
        pipeline = BootstrapPipeline(ctx, swk, blind_rotate_engine="reference")
        assert isinstance(pipeline.executor, LocalExecutor)
        assert pipeline.blind_rotate_engine == "reference"

    def test_shells_share_the_pipeline_class(self, stack):
        """The de-fork: both entry points are thin shells over the same
        BootstrapPipeline — the algorithm's arithmetic lives once."""
        ctx, sk, ev, swk = stack
        boot = SchemeSwitchBootstrapper(ctx, swk)
        cluster = SimulatedCluster(ctx, swk, num_nodes=2)
        assert type(boot.pipeline) is BootstrapPipeline
        assert type(cluster.pipeline) is BootstrapPipeline
        assert type(boot.pipeline) is type(cluster.pipeline)


class TestTraceSemantics:
    def test_local_run_reports_single_node_timing(self, stack):
        ctx, sk, ev, swk = stack
        boot = SchemeSwitchBootstrapper(ctx, swk)
        trace = BootstrapTrace()
        boot.bootstrap(ev.encrypt(0.3, level=0), trace)
        assert list(trace.node_seconds) == [0]
        assert trace.node_seconds[0] > 0.0
        assert trace.fanout_retries == 0
        assert trace.failed_nodes == []
        assert set(trace.step_seconds) == {"extract", "blind_rotate",
                                           "repack", "finish"}

    def test_reused_trace_records_only_the_latest_run(self, stack):
        """One trace = one run: reuse resets *everything*, so notes do not
        accumulate across calls (they used to grow unboundedly while the
        timings were silently overwritten)."""
        ctx, sk, ev, swk = stack
        boot = SchemeSwitchBootstrapper(ctx, swk)
        ct = ev.encrypt(0.3, level=0)
        trace = BootstrapTrace()
        boot.bootstrap(ct, trace)
        first_notes = list(trace.notes)
        first_lwe = trace.num_lwe
        boot.bootstrap(ct, trace)
        assert len(trace.notes) == len(first_notes)
        assert trace.num_lwe == first_lwe
        assert trace.num_blind_rotates == ctx.n

    def test_reset_restores_every_field(self):
        trace = BootstrapTrace()
        trace.num_lwe = 7
        trace.fanout_retries = 3
        trace.fanout_redispatched_lwes = 12
        trace.failed_nodes.append(2)
        trace.step_seconds["extract"] = 1.0
        trace.node_seconds[1] = 2.0
        trace.notes.append("stale")
        trace.reset()
        assert trace == BootstrapTrace()

    def test_reset_produces_fresh_containers(self):
        """reset() must not alias containers between traces (a shared
        default dict would leak one run's timings into another)."""
        trace = BootstrapTrace()
        trace.reset()
        other = BootstrapTrace()
        trace.notes.append("mine")
        trace.step_seconds["extract"] = 1.0
        assert other.notes == []
        assert other.step_seconds == {}


class TestFanoutCounters:
    def test_local_fanout_counted_in_opstats(self, stack):
        ctx, sk, ev, swk = stack
        boot = SchemeSwitchBootstrapper(ctx, swk)
        with count_ops() as stats:
            boot.bootstrap(ev.encrypt(0.3, level=0))
        assert stats.fanout_dispatches == 1
        assert stats.fanout_retries == 0
        assert stats.fanout_redispatched_lwes == 0

    def test_cluster_fanout_counted_in_opstats(self, stack):
        ctx, sk, ev, swk = stack
        cluster = SimulatedCluster(ctx, swk, num_nodes=4)
        with count_ops() as stats:
            cluster.bootstrap(ev.encrypt(0.3, level=0))
        assert stats.fanout_dispatches == 4  # one per node slice

    def test_recovery_counted_in_opstats(self, stack):
        """The retry counters flow from the executor through count_ops —
        a profiled region sees fault recovery as first-class work."""
        ctx, sk, ev, swk = stack
        injector = FaultInjector([Fault.crash(2, after=1)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=3,
                                   fault_injector=injector)
        with count_ops() as stats:
            cluster.bootstrap(ev.encrypt(0.3, level=0))
        assert stats.fanout_dispatches == 3
        assert stats.fanout_retries == 1
        assert stats.fanout_redispatched_lwes == 5  # node 2's slice of 16
