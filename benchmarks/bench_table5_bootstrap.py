"""Table V: bootstrapping performance (T_mult,a/slot, Eq. 3) across nine
comparator systems, the Section VI-E latency split, the multi-FPGA
scaling series, and a measured end-to-end scheme-switching bootstrap of
this repo's functional implementation at toy ring size."""

import numpy as np
from conftest import emit

from repro.analysis import format_table, table5_bootstrap
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet


def bench_table5_model(benchmark, fpga_model, cluster_model):
    headers, rows = benchmark(table5_bootstrap, fpga_model, cluster_model)
    lines = ["Table V: bootstrapping T_mult,a/slot and speedups",
             format_table(headers, rows)]
    bd = cluster_model.bootstrap_breakdown(4096, 8)
    lines.append("\nSection VI-E split (paper: 0.0025 / 1.3303 / 0.1672 ms):")
    lines.append(f"  steps 1-2: {bd.modswitch_s * 1e3:.4f} ms   "
                 f"step 3: {bd.step3_s * 1e3:.4f} ms   "
                 f"steps 4-5: {bd.finish_s * 1e3:.4f} ms   "
                 f"total: {bd.total_s * 1e3:.4f} ms")
    emit("table5_bootstrap", "\n".join(lines))
    by = {r["Work"]: r for r in rows}
    # Win/loss pattern must match the paper.
    assert by["FAB"]["Speedup time (model)"] > 1
    assert by["SHARP"]["Speedup time (model)"] < 1


def bench_multi_fpga_scaling_series(benchmark, cluster_model):
    """The scaling series (the paper's core architectural argument)."""
    curve = benchmark(cluster_model.scaling_curve, 4096, 8)
    lines = ["Bootstrap latency vs FPGA count (fully packed, 4096 BlindRotates):"]
    for k in sorted(curve):
        lines.append(f"  {k} FPGA(s): {curve[k] * 1e3:8.3f} ms")
    speedup = curve[1] / curve[8]
    lines.append(f"  8-FPGA speedup over 1 FPGA: {speedup:.2f}x "
                 "(FAB's conventional bootstrap gained only ~20%)")
    emit("table5_scaling", "\n".join(lines))
    assert speedup > 4


def bench_functional_scheme_switch_bootstrap(benchmark):
    """Measured wall-clock of the real (toy-ring) Algorithm 2 pipeline."""
    params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(41))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(42))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(43), base_bits=4,
                                   error_std=0.8)
    boot = SchemeSwitchBootstrapper(ctx, swk)
    z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
    ct = ev.encrypt(z, level=0)

    result = benchmark.pedantic(boot.bootstrap, args=(ct,), rounds=1,
                                iterations=1, warmup_rounds=0)
    got = ev.decrypt(result, sk)
    assert np.allclose(got.real, z, atol=0.05)


def bench_event_level_timeline(benchmark):
    """Event-granularity replay of the Section V schedule: per-node
    timeline, secondary utilisation ("no FPGA sitting idle"), and
    agreement with the analytic model."""
    from repro.hardware.simulator import BootstrapEventSimulator

    sim = BootstrapEventSimulator()
    result = benchmark(sim.simulate, 4096, 8)
    idle = sim.secondary_idle_fraction(4096, 8)
    lines = ["Event-level bootstrap timeline (4096 BlindRotates, 8 FPGAs):"]
    for node_id in range(8):
        evs = result.events_for(f"node{node_id}")
        if evs:
            e = evs[0]
            lines.append(f"  node{node_id}: blind-rotate "
                         f"{e.start_s * 1e3:7.4f} -> {e.end_s * 1e3:7.4f} ms")
    for e in result.events_for("primary"):
        lines.append(f"  primary: {e.phase:20s} "
                     f"{e.start_s * 1e3:7.4f} -> {e.end_s * 1e3:7.4f} ms")
    lines.append(f"  total: {result.total_s * 1e3:.4f} ms "
                 "(analytic model: 1.5 ms)")
    lines.append(f"  secondary idle fraction during compute: {idle:.1%} "
                 "(paper: 'no FPGA is sitting idle')")
    emit("table5_event_timeline", "\n".join(lines))
    assert idle < 0.2
