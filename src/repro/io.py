"""Serialization for ciphertexts and ring elements.

JSON-based: Python's arbitrary-precision ints serialise losslessly, which
matters for wide-modulus limbs.  The format is versioned and explicit
about moduli so deserialisation can validate against a context (mixing
ciphertexts across parameter sets is rejected rather than silently
producing garbage).

For transport across simulated node boundaries every blob can
additionally be wrapped in a CRC frame (:func:`frame_blob` /
:func:`unframe_blob`): an 8-byte header carrying the payload's CRC32 and
length.  The cluster simulation frames everything it puts on the wire so
the receiving side can *detect* corruption and truncation — the trigger
for the primary's re-dispatch recovery (Section V fault model) — instead
of feeding garbage into the bootstrap.
"""

from __future__ import annotations

import json
import struct
import zlib

import numpy as np

from .ckks.ciphertext import CkksCiphertext
from .errors import ParameterError, WireFormatError
from .math.rns import RnsBasis, RnsPoly
from .tfhe.lwe import LweCiphertext

FORMAT_VERSION = 1

#: Wire frame header: big-endian CRC32 of the payload, then payload length.
WIRE_HEADER = struct.Struct(">II")


def frame_blob(payload: bytes) -> bytes:
    """Wrap a serialized blob for the wire: ``CRC32 | length | payload``."""
    return WIRE_HEADER.pack(zlib.crc32(payload) & 0xFFFFFFFF,
                            len(payload)) + payload


def unframe_blob(blob: bytes) -> bytes:
    """Verify and strip a :func:`frame_blob` frame.

    Raises :class:`~repro.errors.WireFormatError` on a short header, a
    length mismatch (truncated/padded payload) or a CRC32 mismatch — the
    three corruption modes the fault injector exercises.
    """
    if len(blob) < WIRE_HEADER.size:
        raise WireFormatError(
            f"framed blob of {len(blob)} bytes is shorter than its header")
    crc, length = WIRE_HEADER.unpack_from(blob)
    payload = blob[WIRE_HEADER.size:]
    if len(payload) != length:
        raise WireFormatError(
            f"framed blob length mismatch: header says {length} bytes, "
            f"payload has {len(payload)}")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise WireFormatError("CRC32 mismatch: blob corrupted in transit")
    return payload


# -- RnsPoly ---------------------------------------------------------------------


def rns_poly_to_dict(poly: RnsPoly) -> dict:
    src = poly.to_coeff()
    return {
        "n": src.n,
        "moduli": [int(q) for q in src.basis.moduli],
        "limbs": [[int(v) for v in limb] for limb in src.limbs],
    }


def rns_poly_from_dict(data: dict) -> RnsPoly:
    basis = RnsBasis(data["moduli"])
    n = data["n"]
    limbs = [e.asarray(np.asarray(limb, dtype=object))
             for e, limb in zip(basis.engines, data["limbs"])]
    return RnsPoly(n, basis, limbs, "coeff")


# -- CkksCiphertext ---------------------------------------------------------------------


def serialize_ciphertext(ct: CkksCiphertext) -> bytes:
    payload = {
        "version": FORMAT_VERSION,
        "kind": "ckks",
        "scale": ct.scale,
        "c0": rns_poly_to_dict(ct.c0),
        "c1": rns_poly_to_dict(ct.c1),
    }
    return json.dumps(payload).encode()


def deserialize_ciphertext(blob: bytes, expected_moduli=None) -> CkksCiphertext:
    payload = json.loads(blob.decode())
    _check(payload, "ckks")
    ct = CkksCiphertext(
        c0=rns_poly_from_dict(payload["c0"]).to_eval(),
        c1=rns_poly_from_dict(payload["c1"]).to_eval(),
        scale=float(payload["scale"]),
    )
    if expected_moduli is not None:
        prefix = list(expected_moduli)[: len(ct.basis.moduli)]
        if list(ct.basis.moduli) != prefix:
            raise ParameterError(
                "ciphertext moduli do not match the expected parameter set")
    return ct


# -- LweCiphertext -------------------------------------------------------------------------


def serialize_lwe(ct: LweCiphertext) -> bytes:
    payload = {
        "version": FORMAT_VERSION,
        "kind": "lwe",
        "q": int(ct.q),
        "a": [int(v) for v in ct.a],
        "b": int(ct.b),
    }
    return json.dumps(payload).encode()


def deserialize_lwe(blob: bytes) -> LweCiphertext:
    payload = json.loads(blob.decode())
    _check(payload, "lwe")
    q = payload["q"]
    a = np.asarray(payload["a"], dtype=object)
    if q < 2**31:
        a = a.astype(np.int64)
    return LweCiphertext(a=a, b=int(payload["b"]) % q, q=q)


def _check(payload: dict, kind: str) -> None:
    if payload.get("version") != FORMAT_VERSION:
        raise ParameterError(
            f"unsupported format version {payload.get('version')!r}")
    if payload.get("kind") != kind:
        raise ParameterError(
            f"expected a {kind!r} payload, got {payload.get('kind')!r}")


# -- GlweCiphertext (TFHE / accumulator) ------------------------------------------


def serialize_glwe(ct) -> bytes:
    """Serialise a GLWE/RLWE ciphertext (TFHE side)."""
    from .tfhe.glwe import GlweCiphertext

    if not isinstance(ct, GlweCiphertext):
        raise ParameterError("expected a GlweCiphertext")
    payload = {
        "version": FORMAT_VERSION,
        "kind": "glwe",
        "mask": [rns_poly_to_dict(m) for m in ct.mask],
        "body": rns_poly_to_dict(ct.body),
    }
    return json.dumps(payload).encode()


def deserialize_glwe(blob: bytes):
    from .tfhe.glwe import GlweCiphertext

    payload = json.loads(blob.decode())
    _check(payload, "glwe")
    return GlweCiphertext(
        mask=[rns_poly_from_dict(m) for m in payload["mask"]],
        body=rns_poly_from_dict(payload["body"]),
    )
