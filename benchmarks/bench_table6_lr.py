"""Table VI: logistic-regression training time per iteration (sparse
256-slot packing), plus a measured encrypted LR iteration at toy scale
and the compute-to-bootstrap ratio claim of Section VI-F1."""

import numpy as np
from conftest import emit

from repro.analysis import format_table, table6_lr
from repro.apps import EncryptedLogisticRegression, lr_iteration_model
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.ckks.bootstrap import make_bootstrappable_toy_params
from repro.hardware.baselines import BOOTSTRAP_SHARE
from repro.math.sampling import Sampler


def bench_table6_model(benchmark, fpga_model, cluster_model):
    headers, rows = benchmark(table6_lr, fpga_model, cluster_model)
    total, share = lr_iteration_model(fpga_model, cluster_model)
    lines = ["Table VI: LR training time per iteration",
             format_table(headers, rows),
             f"\nbootstrap share of iteration: {share:.2%} "
             f"(paper: ~{BOOTSTRAP_SHARE['lr_heap']:.0%}; FAB spent "
             f"~{BOOTSTRAP_SHARE['lr_fab']:.0%})"]
    emit("table6_lr", "\n".join(lines))
    by = {r["Work"]: r for r in rows}
    assert by["FAB"]["Speedup time (model)"] > 1
    assert by["FAB-2"]["Speedup time (model)"] > 1
    assert by["SHARP"]["Speedup time (model)"] < 1


def bench_functional_lr_iteration(benchmark):
    """Measured encrypted gradient step (f=4, b=4 minibatch in the slots)."""
    params = make_bootstrappable_toy_params(n=32, levels=9, delta_bits=24,
                                            q0_bits=30)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(51))
    sk = gen.secret_key()
    f, b = 4, 4
    rots = set()
    shift = 1
    while shift < f:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    shift = f
    while shift < f * b:
        rots.update([shift, ctx.slots - shift])
        shift *= 2
    keys = gen.keyset(sk, rotations=sorted(rots))
    ev = CkksEvaluator(ctx, keys, Sampler(52), scale_rtol=5e-2)
    trainer = EncryptedLogisticRegression(ctx, ev, f, b, lr=0.5)
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, (b, f))
    y = rng.integers(0, 2, b).astype(float)
    ct_w = ev.encrypt(trainer.pack_weights(np.zeros(f)))

    out = benchmark.pedantic(trainer.iterate, args=(ct_w, x, y), rounds=1,
                             iterations=1, warmup_rounds=0)
    assert out.level < ct_w.level  # the iteration really consumed levels
