"""Measured process-pool fan-out scaling vs the cluster model (ISSUE 6).

Times the real :class:`~repro.switching.mp_executor.
ProcessPoolFanoutExecutor` fan-out stage at 1, 2, 4 and 8 workers
(N = 2^10, batch = 32, n_t = 8 — the same workload as
``bench_blind_rotate_batch.py``) and emits ``BENCH_mp_scaling.json`` at
the repo root with the measured speedup next to the
:class:`~repro.hardware.cluster.ClusterBootstrapModel` predicted curve
normalised to one node.  Both curves answer the paper's core question —
how much of Algorithm 2's embarrassing fan-out parallelism survives
contact with a real transport (here: process spawn, shared-memory key
attach, framed pipe traffic instead of 100 Gbit Ethernet).

Methodology: the 1-worker pool is the baseline (so pool overheads —
framing, dispatch, reply deserialization — cancel out of the speedup
ratio and only *parallelism* is measured).  Each pool first runs the
fan-out once untimed; that pass is the bit-identity check against the
in-process ``blind_rotate_batch`` and the warmup (worker key attach,
monomial caches).  Timing then uses the shared
``_timing.time_interleaved`` min-of-REPS loop.  Pool spin-up is
reported separately — it is a once-per-key cost, not a per-bootstrap
cost.

The >= 2.5x-at-4-workers acceptance gate only fires when the container
actually exposes >= 4 CPUs (``os.sched_getaffinity``); on a 1-CPU
container the workers time-slice one core and no speedup is physically
possible, so the gate is recorded as skipped instead of failing.

A second check IS enforced everywhere: the *dispatch-overlap* proof.
Two workers each carrying an injected straggle sleep of D seconds
finish in ~D wall-clock only if both slices were in flight
simultaneously — sequential dispatch (send, block for the reply, send
the next slice) necessarily pays >= 2D.  Sleep overlap needs no spare
cores, so this asserts the pool's concurrency even on the 1-CPU
containers where the speedup gate must be skipped; the result is
recorded under ``dispatch_overlap`` in the json.

Run with ``PYTHONPATH=src python benchmarks/bench_mp_scaling.py`` (or
via pytest; excluded from tier-1 ``testpaths``).  ``--quick`` is the CI
variant: 2 workers, N = 2^6, batch = 8, bit-identity still enforced,
no gate.
"""

import os
import sys
import time

try:
    from conftest import emit
except ImportError:  # running as a plain script, not under pytest
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit

from _timing import time_interleaved, write_bench_json

from repro.hardware import ClusterBootstrapModel
from repro.switching.fanout import Fault, FaultInjector
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis
from repro.math.sampling import Sampler
from repro.switching.mp_executor import ProcessPoolFanoutExecutor
from repro.switching.pipeline import BootstrapTrace
from repro.tfhe.blind_rotate import (
    BlindRotateKey,
    blind_rotate_batch,
    build_test_vector,
)
from repro.tfhe.glwe import GlweSecretKey
from repro.tfhe.lwe import LweSecretKey, lwe_encrypt

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_mp_scaling.json")

#: LWE dimension, matching ``bench_blind_rotate_batch.py``.
N_T = 8


class _KeyBox:
    """Minimal key-set stand-in: the pool only needs ``.brk``."""

    def __init__(self, brk):
        self.brk = brk


def _setup(n):
    q = find_ntt_primes(28, n, 1)[0]
    basis = RnsBasis([q])
    gadget = GadgetVector(q=q, base_bits=14, digits=2)
    s = Sampler(1234)
    lwe_sk = LweSecretKey.generate(N_T, s)
    glwe_sk = GlweSecretKey.generate(n, 1, s)
    brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)

    def g(t):
        t = t % (2 * n)
        return (q // 8) * (1 if t < n else -1) % q

    f = build_test_vector(g, n, basis)
    return basis, lwe_sk, brk, f


def _assert_bit_identical(got, ref):
    for v, r in zip(got, ref):
        for pv, pr in zip(list(v.mask) + [v.body], list(r.mask) + [r.body]):
            cv, cr = pv.to_coeff(), pr.to_coeff()
            for lv, lr in zip(cv.limbs, cr.limbs):
                assert (lv == lr).all()


def _run(n, batch, worker_counts, gate=True):
    basis, lwe_sk, brk, f = _setup(n)
    s = Sampler(42)
    cts = [lwe_encrypt(i * 5, lwe_sk, 2 * n, s, error_std=0.5)
           for i in range(batch)]
    reference = blind_rotate_batch(f, cts, brk, engine="vectorized")
    cpus = len(os.sched_getaffinity(0))
    predicted = ClusterBootstrapModel().scaling_curve(
        batch, max_nodes=max(worker_counts))

    results = []
    for workers in worker_counts:
        with ProcessPoolFanoutExecutor(_KeyBox(brk), f,
                                       num_workers=workers) as pool:
            # Warmup + correctness: the pool must agree bit-for-bit with
            # the in-process engine before any timing counts.
            _assert_bit_identical(pool.fanout(cts, BootstrapTrace()),
                                  reference)
            trace = BootstrapTrace()
            (seconds,) = time_interleaved(lambda: pool.fanout(cts, trace))
            results.append({
                "workers": workers,
                "seconds": round(seconds, 6),
                "pool_spinup_s": round(pool.spinup_seconds, 6),
                "shared_key_bytes": pool.shared_key_bytes,
                "predicted_speedup": round(predicted[1] / predicted[workers],
                                           2),
            })
    base = results[0]["seconds"]
    for r in results:
        r["speedup"] = round(base / r["seconds"], 2)

    # Dispatch-overlap proof: two workers sleeping D seconds each take
    # ~D wall-clock only if both slices were in flight at once; a
    # serialized dispatch loop pays >= 2D.  Sleeping needs no spare
    # cores, so unlike the speedup gate this is asserted on any host.
    two = next((r for r in results if r["workers"] == 2), results[0])
    delay = round(two["seconds"] + 0.5, 3)
    with ProcessPoolFanoutExecutor(
            _KeyBox(brk), f, num_workers=2,
            fault_injector=FaultInjector([Fault.straggler(0, delay),
                                          Fault.straggler(1, delay)])) as pool:
        t0 = time.perf_counter()
        slowed = pool.fanout(cts, BootstrapTrace())
        wall = time.perf_counter() - t0
    _assert_bit_identical(slowed, reference)
    overlap = {"workers": 2, "sleep_per_worker_s": delay,
               "wall_s": round(wall, 6),
               "sequential_floor_s": round(2 * delay, 6),
               "overlapped": wall < 2 * delay}
    assert wall < 2 * delay, (
        f"worker sleeps did not overlap: {wall:.3f}s wall >= "
        f"{2 * delay:.3f}s sequential floor — dispatch is serialized")

    gated = gate and cpus >= 4
    write_bench_json(JSON_PATH, "mp_scaling", results,
                     extra={"n": n, "batch": batch, "n_t": N_T,
                            "cpus_available": cpus,
                            "gate_enforced": gated,
                            "dispatch_overlap": overlap})

    lines = ["Process-pool fan-out scaling: measured vs cluster-model "
             "predicted speedup",
             f"(N={n}, batch={batch}, n_t={N_T}, "
             f"cpus_available={cpus})",
             f"{'workers':>8} {'seconds':>10} {'speedup':>9} "
             f"{'predicted':>10} {'spinup (s)':>11}"]
    for r in results:
        lines.append(f"{r['workers']:>8} {r['seconds']:>10.4f} "
                     f"{r['speedup']:>8.2f}x {r['predicted_speedup']:>9.2f}x "
                     f"{r['pool_spinup_s']:>11.4f}")
    if gate and not gated:
        lines.append(f"scaling gate skipped: only {cpus} CPU(s) visible — "
                     f"workers time-slice one core, no speedup possible")
    lines.append(f"dispatch overlap: 2 workers sleeping "
                 f"{delay:.2f}s each finished in {wall:.3f}s wall "
                 f"(sequential floor {2 * delay:.2f}s) — slices were "
                 f"concurrently in flight")
    emit("mp_scaling", "\n".join(lines))

    if gated:
        four = next(r for r in results if r["workers"] == 4)
        assert four["speedup"] >= 2.5, (
            f"pool only {four['speedup']}x at 4 workers "
            f"(N={n}, batch={batch})")
    return results


def bench_mp_scaling():
    _run(1 << 10, 32, (1, 2, 4, 8), gate=True)


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        # CI variant: tiny ring, 1 vs 2 workers, bit-identity still
        # enforced in the warmup pass, no scaling gate.
        _run(1 << 6, 8, (1, 2), gate=False)
    else:
        _run(1 << 10, 32, (1, 2, 4, 8), gate=True)
    print("bench_mp_scaling: OK")
