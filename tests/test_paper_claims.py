"""The paper's headline (abstract/intro) claims, recomputed end to end.

One test per quotable sentence of the abstract, so a reader can map the
paper's claims onto this reproduction directly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.analysis import heap_t_mult_a_slot
from repro.hardware import (
    ClusterBootstrapModel,
    SingleFpgaModel,
    key_traffic_reduction,
    speedup,
)
from repro.hardware.baselines import TABLE5_REFERENCES, TABLE6_REFERENCES, reference_by_name
from repro.params import make_heap_params


@pytest.fixture(scope="module")
def models():
    return SingleFpgaModel(), ClusterBootstrapModel()


class TestAbstractClaims:
    def test_18x_less_key_data(self):
        """"we require smaller-sized bootstrapping keys leading to about
        18x less amount of data to be read from the main memory"."""
        p = make_heap_params()
        r = key_traffic_reduction(p.tfhe, p.ckks.log_q_total)
        assert 15 < r < 22

    def test_bootstrapping_beats_fab(self, models):
        """"a 15.39x improvement when compared to FAB" — our
        Eq.-3-faithful model gives ~6x; direction and decisiveness hold
        (see EXPERIMENTS.md for the metric discrepancy)."""
        fpga, cluster = models
        ours = heap_t_mult_a_slot(fpga, cluster)
        fab = reference_by_name(TABLE5_REFERENCES, "FAB").metrics["t_mult_a_slot"]
        assert speedup(fab, ours) > 4

    def test_lr_beats_fab_and_fab2(self, models):
        """"14.71x and 11.57x improvement when compared to FAB and FAB-2"."""
        fpga, cluster = models
        from repro.apps import lr_iteration_model
        ours, _ = lr_iteration_model(fpga, cluster)
        fab = reference_by_name(TABLE6_REFERENCES, "FAB").metrics["lr_iter"]
        fab2 = reference_by_name(TABLE6_REFERENCES, "FAB-2").metrics["lr_iter"]
        assert speedup(fab, ours) == pytest.approx(14.71, rel=0.25)
        assert speedup(fab2, ours) == pytest.approx(11.57, rel=0.25)

    def test_small_parameters_suffice(self):
        """"real-world practical applications are feasible using small
        parameters such as N = 2^13": the hybrid set leaves the same 5
        usable levels as the conventional N = 2^16 set."""
        p = make_heap_params()
        conventional_usable = 24 - 19   # paper Section VI-C
        heap_usable = p.ckks.max_limbs - 1  # depth-1 bootstrap
        assert heap_usable == conventional_usable == 5

    def test_parallelism_claim(self, models):
        """"there are no data dependencies between distinct LWE
        ciphertexts": 8 FPGAs give near-linear bootstrap scaling."""
        _, cluster = models
        curve = cluster.scaling_curve(4096, 8)
        assert curve[1] / curve[8] > 4  # vs FAB's ~1.2x

    def test_single_limb_bootstrap(self):
        """"our bootstrapping utilizes only a single limb": verified
        structurally on the functional pipeline at toy scale in
        tests/test_switching_bootstrap.py (output level == max)."""
        # The structural property is asserted functionally elsewhere;
        # here: the parameter accounting it enables.
        p = make_heap_params()
        assert p.ckks.levels == 5  # L=6 minus depth-1 bootstrap


class TestModswitchIdentityProperty:
    """The exact integer identity behind Algorithm 2 steps 1-2."""

    @given(st.integers(0, 2**36 - 1), st.integers(4, 10))
    @settings(max_examples=200)
    def test_decomposition_identity(self, x, logn):
        q = (1 << 36) - 91  # any modulus works for the identity
        x = x % q
        two_n = 1 << logn
        ct_prime = (two_n * x) % q
        ct_ms = (two_n * x - ct_prime) // q
        # Exactness and ranges.
        assert two_n * x == q * ct_ms + ct_prime
        assert 0 <= ct_ms < two_n
        assert 0 <= ct_prime < q
