"""The TFHE scheme: LWE/GLWE/RGSW, BlindRotate, Extract, repack, gates."""

from .batch_engine import BatchBlindRotateEngine, blind_rotate_batch_vectorized
from .blind_rotate import (
    BlindRotateKey,
    MonomialCache,
    blind_rotate,
    blind_rotate_batch,
    blind_rotate_batch_reference,
    build_test_vector,
    get_monomial_cache,
    get_rgsw_one,
)
from .extract import (
    RnsLweCiphertext,
    embed_lwe,
    extract_lwe,
    extract_rns_lwe,
    rlwe_secret_as_lwe_key,
)
from .gates import TfheKeySet, TfheScheme
from .glwe import GlweCiphertext, GlweSecretKey, glwe_decrypt_coeffs, glwe_encrypt, glwe_phase
from .keyswitch import AutomorphismKeySet, GlweKeySwitchKey, eval_automorphism, glwe_keyswitch
from .lwe import (
    LweCiphertext,
    LweKeySwitchKey,
    LweSecretKey,
    lwe_decrypt,
    lwe_encrypt,
    lwe_keyswitch,
    lwe_phase,
    modulus_switch,
)
from .repack import repack, repack_exponents
from .rgsw import (
    RgswCiphertext,
    cmux,
    external_product,
    internal_product,
    rgsw_encrypt,
    rgsw_trivial,
)

__all__ = [
    "BatchBlindRotateEngine",
    "BlindRotateKey",
    "MonomialCache",
    "blind_rotate",
    "blind_rotate_batch",
    "blind_rotate_batch_reference",
    "blind_rotate_batch_vectorized",
    "build_test_vector",
    "get_monomial_cache",
    "get_rgsw_one",
    "RnsLweCiphertext",
    "embed_lwe",
    "extract_lwe",
    "extract_rns_lwe",
    "rlwe_secret_as_lwe_key",
    "TfheKeySet",
    "TfheScheme",
    "GlweCiphertext",
    "GlweSecretKey",
    "glwe_decrypt_coeffs",
    "glwe_encrypt",
    "glwe_phase",
    "AutomorphismKeySet",
    "GlweKeySwitchKey",
    "eval_automorphism",
    "glwe_keyswitch",
    "LweCiphertext",
    "LweKeySwitchKey",
    "LweSecretKey",
    "lwe_decrypt",
    "lwe_encrypt",
    "lwe_keyswitch",
    "lwe_phase",
    "modulus_switch",
    "repack",
    "repack_exponents",
    "RgswCiphertext",
    "cmux",
    "external_product",
    "internal_product",
    "rgsw_encrypt",
    "rgsw_trivial",
]
