"""Serialization round-trip tests."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError, SharedBufferError, WireFormatError
from repro.io import (
    WIRE_HEADER,
    attach_shared_arrays,
    deserialize_ciphertext,
    deserialize_lwe,
    deserialize_rns_poly,
    frame_blob,
    publish_shared_arrays,
    rns_poly_from_dict,
    rns_poly_to_dict,
    serialize_ciphertext,
    serialize_lwe,
    serialize_rns_poly,
    unframe_blob,
)
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis, RnsPoly
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.tfhe.lwe import LweSecretKey, lwe_decrypt, lwe_encrypt

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(401))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(402))
    return ctx, sk, ev


class TestRnsPolyRoundtrip:
    def test_roundtrip(self):
        basis = RnsBasis(find_ntt_primes(30, 16, 3))
        rng = np.random.default_rng(0)
        p = RnsPoly.from_int_coeffs(
            16, basis,
            np.asarray([int(v) for v in rng.integers(0, 2**60, 16)], dtype=object))
        back = rns_poly_from_dict(rns_poly_to_dict(p))
        assert back == p

    def test_eval_domain_normalised(self):
        basis = RnsBasis(find_ntt_primes(30, 16, 2))
        p = RnsPoly.from_int_coeffs(16, basis, np.arange(16, dtype=object)).to_eval()
        back = rns_poly_from_dict(rns_poly_to_dict(p))
        assert back == p  # equality compares coefficient domains

    def test_blob_roundtrip_coeff_domain(self):
        """The standalone wire form (used to ship programmable-bootstrap
        test vectors) survives a framed round trip."""
        basis = RnsBasis(find_ntt_primes(30, 16, 3))
        rng = np.random.default_rng(2)
        p = RnsPoly.from_int_coeffs(
            16, basis,
            np.asarray([int(v) for v in rng.integers(0, 2**60, 16)], dtype=object))
        back = deserialize_rns_poly(unframe_blob(frame_blob(serialize_rns_poly(p))))
        assert back == p

    def test_blob_roundtrip_eval_domain(self):
        basis = RnsBasis(find_ntt_primes(30, 16, 2))
        p = RnsPoly.from_int_coeffs(16, basis, np.arange(16, dtype=object)).to_eval()
        back = deserialize_rns_poly(serialize_rns_poly(p))
        assert back == p

    def test_blob_rejects_wrong_kind(self):
        basis = RnsBasis(find_ntt_primes(30, 16, 1))
        s = Sampler(77)
        sk = LweSecretKey.generate(8, s)
        lwe_blob = serialize_lwe(lwe_encrypt(3, sk, 32, s, error_std=0.5))
        with pytest.raises(ParameterError, match="rns_poly"):
            deserialize_rns_poly(lwe_blob)

    def test_framed_blob_corruption_detected(self):
        basis = RnsBasis(find_ntt_primes(30, 16, 1))
        p = RnsPoly.from_int_coeffs(16, basis, np.arange(16, dtype=object))
        framed = bytearray(frame_blob(serialize_rns_poly(p)))
        framed[len(framed) // 2] ^= 0xFF
        with pytest.raises(WireFormatError):
            unframe_blob(bytes(framed))


class TestCkksCiphertextRoundtrip:
    def test_decrypts_identically(self, stack):
        ctx, sk, ev = stack
        z = np.random.default_rng(1).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z)
        blob = serialize_ciphertext(ct)
        back = deserialize_ciphertext(blob, expected_moduli=ctx.params.moduli)
        assert back.scale == ct.scale
        assert np.allclose(ev.decrypt(back, sk), ev.decrypt(ct, sk))

    def test_partial_level_roundtrip(self, stack):
        ctx, sk, ev = stack
        ct = ev.encrypt(0.5, level=1)
        back = deserialize_ciphertext(serialize_ciphertext(ct))
        assert back.level == 1

    def test_wrong_params_rejected(self, stack):
        ctx, sk, ev = stack
        blob = serialize_ciphertext(ev.encrypt(0.5))
        with pytest.raises(ParameterError):
            deserialize_ciphertext(blob, expected_moduli=[17, 97, 193])

    def test_operations_on_deserialized(self, stack):
        ctx, sk, ev = stack
        a = np.random.default_rng(2).uniform(-1, 1, ctx.slots)
        ct = deserialize_ciphertext(serialize_ciphertext(ev.encrypt(a)))
        out = ev.add(ct, ev.encrypt(a))
        assert np.allclose(ev.decrypt(out, sk).real, 2 * a, atol=1e-2)


class TestLweRoundtrip:
    def test_roundtrip(self):
        q = find_ntt_primes(28, 16, 1)[0]
        s = Sampler(3)
        sk = LweSecretKey.generate(12, s)
        ct = lwe_encrypt(12345, sk, q, s)
        back = deserialize_lwe(serialize_lwe(ct))
        assert lwe_decrypt(back, sk) == lwe_decrypt(ct, sk)

    def test_kind_mismatch_rejected(self, stack):
        ctx, sk, ev = stack
        blob = serialize_ciphertext(ev.encrypt(0.1))
        with pytest.raises(ParameterError):
            deserialize_lwe(blob)

    def test_version_check(self):
        import json
        bad = json.dumps({"version": 99, "kind": "lwe"}).encode()
        with pytest.raises(ParameterError):
            deserialize_lwe(bad)


class TestGlweRoundtrip:
    def test_roundtrip(self):
        from repro.io import deserialize_glwe, serialize_glwe
        from repro.math.rns import RnsBasis, RnsPoly
        from repro.tfhe.glwe import GlweSecretKey, glwe_decrypt_coeffs, glwe_encrypt
        q = find_ntt_primes(28, 16, 1)[0]
        basis = RnsBasis([q])
        s = Sampler(5)
        sk = GlweSecretKey.generate(16, 1, s)
        m = np.zeros(16, dtype=object)
        m[0] = 12345
        ct = glwe_encrypt(RnsPoly.from_int_coeffs(16, basis, m), sk, s)
        back = deserialize_glwe(serialize_glwe(ct))
        assert (glwe_decrypt_coeffs(back, sk).tolist()
                == glwe_decrypt_coeffs(ct, sk).tolist())

    def test_type_check(self):
        from repro.errors import ParameterError
        from repro.io import serialize_glwe
        with pytest.raises(ParameterError):
            serialize_glwe("not a ciphertext")


class TestWireFraming:
    """CRC32 framing for blobs crossing simulated node boundaries."""

    def test_roundtrip(self):
        payload = b"switching-key material \x00\xff" * 7
        assert unframe_blob(frame_blob(payload)) == payload

    def test_empty_payload_roundtrip(self):
        assert unframe_blob(frame_blob(b"")) == b""

    def test_header_layout(self):
        framed = frame_blob(b"abc")
        assert len(framed) == WIRE_HEADER.size + 3

    def test_single_bit_flip_detected(self):
        framed = bytearray(frame_blob(b"payload bytes"))
        for i in range(len(framed)):
            corrupted = bytearray(framed)
            corrupted[i] ^= 0x01
            with pytest.raises(WireFormatError):
                unframe_blob(bytes(corrupted))

    def test_truncation_detected(self):
        framed = frame_blob(b"payload bytes")
        with pytest.raises(WireFormatError, match="length"):
            unframe_blob(framed[:-1])

    def test_trailing_garbage_detected(self):
        framed = frame_blob(b"payload bytes")
        with pytest.raises(WireFormatError, match="length"):
            unframe_blob(framed + b"x")

    def test_short_header_detected(self):
        with pytest.raises(WireFormatError, match="header"):
            unframe_blob(b"\x01\x02")

    def test_lwe_blob_roundtrip(self):
        q = find_ntt_primes(28, 16, 1)[0]
        s = Sampler(9)
        sk = LweSecretKey.generate(12, s)
        ct = lwe_encrypt(777, sk, q, s)
        back = deserialize_lwe(unframe_blob(frame_blob(serialize_lwe(ct))))
        assert lwe_decrypt(back, sk) == lwe_decrypt(ct, sk)


class TestSharedBuffers:
    """The shared-memory key-publication layer used by the worker pool."""

    def _sample_arrays(self):
        rng = np.random.default_rng(12)
        return {
            "key": rng.integers(0, 2**31, size=(3, 4, 8), dtype=np.int64),
            "tv": rng.integers(0, 2**31, size=(2, 16), dtype=np.int64),
            "small": np.array([7], dtype=np.int32),
        }

    def test_publish_attach_roundtrip_zero_copy(self):
        arrays = self._sample_arrays()
        block, manifest = publish_shared_arrays(
            arrays, meta={"n": 16, "moduli": [17, 97]})
        try:
            attached, views = attach_shared_arrays(manifest)
            try:
                for name, arr in arrays.items():
                    assert views[name].dtype == arr.dtype
                    assert np.array_equal(views[name], arr)
                    # Zero-copy: the view's memory IS the shared block.
                    assert views[name].base is not None
                assert manifest.meta["moduli"] == [17, 97]
            finally:
                attached.close()
        finally:
            block.close()
            block.unlink()

    def test_arrays_are_cache_line_aligned(self):
        block, manifest = publish_shared_arrays(self._sample_arrays())
        try:
            for spec in manifest.arrays:
                assert spec.offset % 64 == 0
            assert manifest.total_bytes >= sum(s.nbytes
                                               for s in manifest.arrays)
        finally:
            block.close()
            block.unlink()

    def test_object_dtype_rejected(self):
        wide = np.array([2**80, 2**90], dtype=object)
        with pytest.raises(SharedBufferError, match="object dtype"):
            # heaplint: disable=HL103 intentionally invalid payload, asserts the rejection
            publish_shared_arrays({"wide": wide})

    def test_corruption_detected_at_attach(self):
        arrays = self._sample_arrays()
        block, manifest = publish_shared_arrays(arrays)
        try:
            spec = manifest.spec("key")
            block.buf[spec.offset] ^= 0x41  # flip one byte of "key"
            with pytest.raises(SharedBufferError, match="CRC32"):
                attach_shared_arrays(manifest)
            # verify=False attaches anyway (benchmark escape hatch).
            attached, views = attach_shared_arrays(manifest, verify=False)
            attached.close()
        finally:
            block.close()
            block.unlink()

    def test_attached_views_are_read_only_by_default(self):
        """A worker writing into attached key material must raise, not
        silently corrupt every sibling attached to the same block."""
        arrays = self._sample_arrays()
        block, manifest = publish_shared_arrays(arrays)
        try:
            attached, views = attach_shared_arrays(manifest)
            try:
                for name in arrays:
                    assert not views[name].flags.writeable
                with pytest.raises(ValueError, match="read-only"):
                    # heaplint: disable=HL104 asserts the write raises
                    views["key"][0, 0, 0] = 1
                with pytest.raises(ValueError, match="read-only"):
                    # heaplint: disable=HL104 asserts the write raises
                    views["tv"] += 1
                # The shared bytes are untouched after the failed writes.
                fresh, fresh_views = attach_shared_arrays(manifest)
                try:
                    for name, arr in arrays.items():
                        assert np.array_equal(fresh_views[name], arr)
                finally:
                    fresh.close()
            finally:
                attached.close()
        finally:
            block.close()
            block.unlink()

    def test_attach_writable_opt_in(self):
        """Consumers that own the block's contents can still opt in."""
        arrays = self._sample_arrays()
        block, manifest = publish_shared_arrays(arrays)
        try:
            attached, views = attach_shared_arrays(manifest, writable=True)
            try:
                assert views["key"].flags.writeable
                # heaplint: disable=HL104 writable=True opt-in under test
                views["key"][0, 0, 0] = 123
                # Zero-copy both ways: a second attach sees the write.
                other, other_views = attach_shared_arrays(manifest,
                                                          verify=False)
                try:
                    assert other_views["key"][0, 0, 0] == 123
                finally:
                    other.close()
            finally:
                attached.close()
        finally:
            block.close()
            block.unlink()

    def test_missing_block_detected(self):
        block, manifest = publish_shared_arrays(self._sample_arrays())
        block.close()
        block.unlink()
        with pytest.raises(SharedBufferError, match="does not exist"):
            attach_shared_arrays(manifest)

    def test_manifest_spec_lookup(self):
        block, manifest = publish_shared_arrays(self._sample_arrays())
        try:
            assert manifest.spec("tv").shape == (2, 16)
            with pytest.raises(SharedBufferError, match="no array"):
                manifest.spec("nope")
        finally:
            block.close()
            block.unlink()


class TestSeededKeyMaterial:
    """The seed+b at-rest form: CRC-framed on the wire, body-only in shm."""

    def _sample_material(self):
        from repro.io import SeededKeyMaterial
        rng = np.random.default_rng(31)
        bodies = {
            "brk_b_0": rng.integers(0, 2**31, size=(4, 2, 8, 16),
                                    dtype=np.int64),
            "auto_b_0": rng.integers(0, 2**31, size=(3, 4, 16),
                                     dtype=np.int64),
        }
        meta = {"n": 16, "h": 1, "key_seed": 424242,
                "brk_mask_seeds": [[1, 2], [3, 4], [5, 6], [7, 8]]}
        return SeededKeyMaterial(kind="switching", meta=meta, bodies=bodies)

    def test_wire_roundtrip(self):
        from repro.io import (
            deserialize_seeded_key_material,
            serialize_seeded_key_material,
        )
        material = self._sample_material()
        back = deserialize_seeded_key_material(
            serialize_seeded_key_material(material))
        assert back.kind == material.kind
        assert back.meta == material.meta
        assert set(back.bodies) == set(material.bodies)
        for name, arr in material.bodies.items():
            assert np.array_equal(back.bodies[name], arr)

    def test_wire_corruption_detected(self):
        from repro.io import (
            deserialize_seeded_key_material,
            serialize_seeded_key_material,
        )
        blob = bytearray(serialize_seeded_key_material(self._sample_material()))
        blob[len(blob) // 2] ^= 0x40
        with pytest.raises(WireFormatError):
            deserialize_seeded_key_material(bytes(blob))

    def test_shared_memory_roundtrip(self):
        from repro.io import publish_seeded_material, seeded_material_from_views
        material = self._sample_material()
        block, manifest = publish_seeded_material(material)
        try:
            attached, views = attach_shared_arrays(manifest)
            try:
                back = seeded_material_from_views(manifest, views)
                assert back.kind == material.kind
                assert back.meta == material.meta
                for name, arr in material.bodies.items():
                    assert np.array_equal(back.bodies[name], arr)
                # Only the b-halves occupy shared bytes.
                assert manifest.total_bytes >= material.resident_bytes()
            finally:
                attached.close()
        finally:
            block.close()
            block.unlink()

    def test_repr_redacts_seeds(self):
        material = self._sample_material()
        assert "424242" not in repr(material)
