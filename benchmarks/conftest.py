"""Shared fixtures for the benchmark harness.

Every ``bench_table*.py`` regenerates one table of the paper's evaluation
section: it benchmarks the relevant computation (model evaluation and/or
functional micro-op at toy ring size) and prints the regenerated table —
paper value next to model/measured value — to stdout and to
``benchmarks/out/<name>.txt``.
"""

import os

import pytest

from repro.hardware import ClusterBootstrapModel, SingleFpgaModel

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def emit(name: str, text: str) -> None:
    """Print a regenerated table and persist it under benchmarks/out/."""
    print(f"\n{text}\n")
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")


@pytest.fixture(scope="session")
def fpga_model():
    return SingleFpgaModel()


@pytest.fixture(scope="session")
def cluster_model():
    return ClusterBootstrapModel()
