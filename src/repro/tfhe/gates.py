"""Standalone TFHE: programmable bootstrapping and boolean gates.

Section VII-A argues HEAP supports the standalone TFHE scheme because
BlindRotate *is* the core of programmable bootstrapping (PBS).  This
module provides that layer: a gate-level API (NAND/AND/OR/XOR/NOT/MUX)
whose non-linear steps run through :func:`programmable_bootstrap`.

Message encoding: booleans are encoded as ``q/8 * {-1, +1}``-ish points
on the torus — we use the classic 4-segment encoding: ``False -> -q/8``,
``True -> +q/8``; gate linear combinations land in a half-plane that the
sign-LUT bootstrap maps back to a clean encoding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..math.gadget import GadgetVector
from ..math.rns import RnsBasis
from ..math.sampling import Sampler
from ..params import TfheParams
from .blind_rotate import BlindRotateKey, MonomialCache, blind_rotate, build_test_vector
from .extract import extract_lwe, rlwe_secret_as_lwe_key
from .glwe import GlweSecretKey
from .lwe import (
    LweCiphertext,
    LweKeySwitchKey,
    LweSecretKey,
    lwe_decrypt,
    lwe_encrypt,
    lwe_keyswitch,
    modulus_switch,
)


@dataclass
class TfheKeySet:
    """All key material for standalone TFHE evaluation."""

    lwe_sk: LweSecretKey                 # dimension n_t (client key)
    glwe_sk: GlweSecretKey               # accumulator ring key
    brk: BlindRotateKey                  # bootstrapping key
    ksk: LweKeySwitchKey                 # dim-N -> dim-n_t switch


class TfheScheme:
    """A runnable standalone-TFHE instance (encrypt, gates, PBS)."""

    def __init__(self, params: TfheParams, sampler: Optional[Sampler] = None):
        self.params = params
        self.sampler = sampler or Sampler()
        self.basis = RnsBasis([params.q])
        self.gadget = GadgetVector(q=params.q, base_bits=params.decomp_base_bits,
                                   digits=params.decomp_digits)
        self._mono_cache = MonomialCache(params.n, self.basis)

    # -- keys ------------------------------------------------------------------

    def keygen(self) -> TfheKeySet:
        p = self.params
        lwe_sk = LweSecretKey.generate(p.n_t, self.sampler)
        glwe_sk = GlweSecretKey.generate(p.n, p.glwe_mask, self.sampler)
        brk = BlindRotateKey.generate(lwe_sk, glwe_sk, self.basis, self.gadget,
                                      self.sampler, p.error_std)
        ksk = LweKeySwitchKey.generate(
            rlwe_secret_as_lwe_key(glwe_sk.coeffs[0]), lwe_sk, p.q,
            self.gadget, self.sampler)
        return TfheKeySet(lwe_sk=lwe_sk, glwe_sk=glwe_sk, brk=brk, ksk=ksk)

    # -- encryption -------------------------------------------------------------

    def encrypt_bit(self, bit: bool, keys: TfheKeySet) -> LweCiphertext:
        m = self.params.q // 8 if bit else -(self.params.q // 8) % self.params.q
        return lwe_encrypt(m, keys.lwe_sk, self.params.q, self.sampler,
                           self.params.error_std)

    def decrypt_bit(self, ct: LweCiphertext, keys: TfheKeySet) -> bool:
        return lwe_decrypt(ct, keys.lwe_sk) > 0

    # -- programmable bootstrapping ----------------------------------------------

    def programmable_bootstrap(self, ct: LweCiphertext, keys: TfheKeySet,
                               lut: Callable[[int], int]) -> LweCiphertext:
        """Evaluate ``lut`` on the encrypted phase while refreshing noise.

        ``lut`` maps a phase bucket in ``[0, 2N)`` to an output in
        ``Z_q`` and must be negacyclic (``lut(t+N) = -lut(t) mod q``).
        """
        p = self.params
        switched = modulus_switch(ct, 2 * p.n)
        tv = build_test_vector(lut, p.n, self.basis)
        acc = blind_rotate(tv, switched, keys.brk, self._mono_cache)
        extracted = extract_lwe(acc, 0)
        return lwe_keyswitch(extracted, keys.ksk)

    def bootstrap_sign(self, ct: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        """Map any positive phase to ``+q/8`` and negative to ``-q/8``."""
        q8 = self.params.q // 8
        n = self.params.n

        def sign_lut(t: int) -> int:
            return q8 if t < n else -q8 % self.params.q

        return self.programmable_bootstrap(ct, keys, sign_lut)

    # -- gates ------------------------------------------------------------------------

    def nand(self, a: LweCiphertext, b: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        q8 = self.params.q // 8
        lin = _const(q8, a) - a - b
        return self.bootstrap_sign(lin, keys)

    def and_(self, a: LweCiphertext, b: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        q8 = self.params.q // 8
        lin = _const(-q8 % self.params.q, a) + a + b
        return self.bootstrap_sign(lin, keys)

    def or_(self, a: LweCiphertext, b: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        q8 = self.params.q // 8
        lin = _const(q8, a) + a + b
        return self.bootstrap_sign(lin, keys)

    def nor(self, a: LweCiphertext, b: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        return self.not_(self.or_(a, b, keys))

    def xor_(self, a: LweCiphertext, b: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        # Classic TFHE gate map: sign(2a + 2b + q/4) — keeps every input
        # combination a quarter-torus away from the decision boundary.
        q4 = self.params.q // 4
        lin = _const(q4, a) + a.scale(2) + b.scale(2)
        return self.bootstrap_sign(lin, keys)

    def xnor(self, a: LweCiphertext, b: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        return self.not_(self.xor_(a, b, keys))

    def not_(self, a: LweCiphertext) -> LweCiphertext:
        """NOT is free: negate (no bootstrap needed)."""
        return -a

    def mux(self, sel: LweCiphertext, on_true: LweCiphertext,
            on_false: LweCiphertext, keys: TfheKeySet) -> LweCiphertext:
        """(sel AND on_true) OR ((NOT sel) AND on_false), 3 bootstraps."""
        t = self.and_(sel, on_true, keys)
        f = self.and_(self.not_(sel), on_false, keys)
        return self.or_(t, f, keys)


def _const(value: int, like: LweCiphertext) -> LweCiphertext:
    """Trivial (noiseless, public) LWE encryption of a constant."""
    return LweCiphertext(a=np.zeros(like.dim, dtype=like.a.dtype),
                         b=value % like.q, q=like.q)
