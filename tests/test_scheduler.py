"""Edge-case coverage for the fan-out schedule and the recovery-target
policy (``pick_recovery_node``), including the executor-level case where
the recovery node itself fails on the re-dispatched slice."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet
from repro.switching.cluster_sim import Fault, FaultInjector, SimulatedCluster
from repro.switching.pipeline import BootstrapTrace
from repro.switching.scheduler import make_schedule, pick_recovery_node


class TestMakeSchedule:
    def test_even_split(self):
        sched = make_schedule(16, 4)
        assert [a.count for a in sched.nodes] == [4, 4, 4, 4]
        assert [a.start for a in sched.nodes] == [0, 4, 8, 12]

    def test_uneven_split_front_loads_extras(self):
        sched = make_schedule(10, 4)
        assert [a.count for a in sched.nodes] == [3, 3, 2, 2]
        assert sched.nodes[-1].stop == 10

    def test_more_nodes_than_work(self):
        sched = make_schedule(2, 4)
        assert [a.count for a in sched.nodes] == [1, 1, 0, 0]

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            make_schedule(0, 4)
        with pytest.raises(ParameterError):
            make_schedule(8, 0)


class TestPickRecoveryNode:
    def test_least_loaded_survivor_wins(self):
        assert pick_recovery_node([0, 1, 2], {0: 6, 1: 2, 2: 5},
                                  exclude=1) == 2

    def test_tied_loads_break_by_lowest_id(self):
        assert pick_recovery_node([2, 0, 1], {0: 4, 1: 4, 2: 4},
                                  exclude=2) == 0

    def test_missing_load_defaults_to_zero(self):
        # A freshly respawned worker with no recorded load is the most
        # attractive target.
        assert pick_recovery_node([0, 3], {0: 6}, exclude=None) == 3

    def test_single_survivor_is_chosen_even_when_excluded(self):
        """The failed node is avoided *unless* it is the only survivor —
        a respawned worker must be able to take back its own slice."""
        assert pick_recovery_node([1], {1: 9}, exclude=1) == 1

    def test_no_survivor_raises(self):
        with pytest.raises(ParameterError):
            pick_recovery_node([], {}, exclude=0)


class TestRecoveryNodeFailsToo:
    """The re-dispatched slice's target can itself fail: the slice must
    hop again until a healthy node finishes it, with the output unchanged."""

    @pytest.fixture(scope="class")
    def stack(self):
        params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                                 special_limbs=2)
        ctx = CkksContext(params.ckks, dnum=2)
        gen = CkksKeyGenerator(ctx, Sampler(501))
        sk = gen.secret_key()
        ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(502))
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(503), base_bits=4,
                                       error_std=0.8)
        return ctx, ev, swk

    def test_chained_failure_recovers_bit_identically(self, stack):
        ctx, ev, swk = stack
        z = np.random.default_rng(3).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        reference = SchemeSwitchBootstrapper(ctx, swk).bootstrap(ct)
        # 16 LWEs over 3 nodes: slices of 6, 5, 5.  Node 0 crashes on its
        # own slice; recovery (tied loads 5, 5 -> lowest id) targets node
        # 1, whose persistent ``after=5`` fault is harmless on its own
        # 5-LWE slice but fires mid way through the 6-LWE re-dispatched
        # one; the slice hops again to node 2, which finishes it.
        inj = FaultInjector([Fault.crash(0),
                             Fault.crash(1, after=5, persistent=True)])
        cluster = SimulatedCluster(ctx, swk, num_nodes=3, fault_injector=inj)
        trace = BootstrapTrace()
        out = cluster.bootstrap(ct, trace)
        for ref_l, got_l in zip(reference.c0.to_coeff().limbs,
                                out.c0.to_coeff().limbs):
            assert ref_l.tolist() == got_l.tolist()
        for ref_l, got_l in zip(reference.c1.to_coeff().limbs,
                                out.c1.to_coeff().limbs):
            assert ref_l.tolist() == got_l.tolist()
        assert trace.failed_nodes == [0, 1]
        assert trace.fanout_retries == 2
        hops = [n for n in trace.notes if n.startswith("re-dispatching")]
        assert "from node 0 to node 1" in hops[0]
        assert "from node 1 to node 2" in hops[1]
        # Node 1 burned 5 BlindRotates of the re-dispatched slice before
        # dying — the cycles are spent either way.
        assert cluster.utilisation()[1] == 10
