#!/usr/bin/env python3
"""Standalone TFHE on the HEAP stack (paper Section VII-A).

The paper argues HEAP supports the full TFHE scheme because BlindRotate
*is* programmable bootstrapping.  This example exercises that layer:
encrypted boolean gates (every non-linear gate is one PBS), a custom
look-up table evaluated during bootstrapping, and a small encrypted
circuit (a ripple-carry adder on 2-bit numbers).
"""

import itertools

from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.tfhe.gates import TfheScheme


def main() -> None:
    params = make_toy_params(n=32, limbs=1, limb_bits=28, n_t=16,
                             decomp_base_bits=7, decomp_digits=4,
                             special_limbs=1)
    scheme = TfheScheme(params.tfhe, Sampler(2024))
    keys = scheme.keygen()
    print(f"TFHE: n_t={params.tfhe.n_t}, accumulator ring N={params.tfhe.n}, "
          f"q={params.tfhe.q}")

    # -- gate truth tables, every gate one bootstrapped BlindRotate -----------------
    for gate, fn, truth in (
        ("NAND", scheme.nand, lambda a, b: not (a and b)),
        ("AND", scheme.and_, lambda a, b: a and b),
        ("OR", scheme.or_, lambda a, b: a or b),
        ("XOR", scheme.xor_, lambda a, b: a != b),
    ):
        results = []
        for a, b in itertools.product([False, True], repeat=2):
            out = fn(scheme.encrypt_bit(a, keys), scheme.encrypt_bit(b, keys), keys)
            got = scheme.decrypt_bit(out, keys)
            assert got == truth(a, b), (gate, a, b)
            results.append(int(got))
        print(f"{gate:4s} truth table (00,01,10,11): {results}")

    # -- a custom LUT through programmable bootstrapping ------------------------------
    q = params.tfhe.q
    n = params.tfhe.n

    def negate_lut(t: int) -> int:  # f(x) = -x on the torus encoding
        t = t % (2 * n)
        base = q // 8
        return (-base) % q if t < n else base

    ct = scheme.encrypt_bit(True, keys)
    flipped = scheme.programmable_bootstrap(ct, keys, negate_lut)
    print(f"custom PBS LUT (negation): True -> {scheme.decrypt_bit(flipped, keys)}")

    # -- 2-bit ripple-carry adder, all under encryption ---------------------------------
    def enc_bits(v):
        return [scheme.encrypt_bit(bool((v >> i) & 1), keys) for i in range(2)]

    def full_adder(a, b, c):
        s1 = scheme.xor_(a, b, keys)
        total = scheme.xor_(s1, c, keys)
        carry = scheme.or_(scheme.and_(a, b, keys),
                           scheme.and_(c, s1, keys), keys)
        return total, carry

    for x, y in ((1, 2), (3, 3), (2, 1)):
        ea, eb = enc_bits(x), enc_bits(y)
        carry = scheme.encrypt_bit(False, keys)
        out_bits = []
        for i in range(2):
            s, carry = full_adder(ea[i], eb[i], carry)
            out_bits.append(s)
        out_bits.append(carry)
        value = sum(int(scheme.decrypt_bit(b, keys)) << i
                    for i, b in enumerate(out_bits))
        print(f"encrypted adder: {x} + {y} = {value}")
        assert value == x + y


if __name__ == "__main__":
    main()
