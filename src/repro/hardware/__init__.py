"""HEAP accelerator performance model: single FPGA, cluster, baselines."""

from .area import AreaPoint, area_comparison, heap_area, heap_within_asic_envelope
from .baselines import (
    BOOTSTRAP_SHARE,
    HEAP_BOOTSTRAP_SPLIT_MS,
    HEAP_LR_ITER_S,
    HEAP_NTT_THROUGHPUT,
    HEAP_RESNET_S,
    HEAP_TABLE3,
    HEAP_TABLE5,
    TABLE3_REFERENCES,
    TABLE4_REFERENCES,
    TABLE5_REFERENCES,
    TABLE6_REFERENCES,
    TABLE7_REFERENCES,
    TABLE8_PAPER,
    ReferencePoint,
    reference_by_name,
)
from .cluster import BootstrapBreakdown, ClusterBootstrapModel
from .config import EIGHT_FPGA, SINGLE_FPGA, ClusterConfig, HeapHwConfig
from .fpga import CalibrationEntry, SingleFpgaModel
from .memory_layout import BramLayout, NttAddressGenerator, UramLayout, WordCoordinate
from .metrics import (
    compute_to_bootstrap_ratio,
    cycle_speedup,
    geometric_mean,
    speedup,
    t_mult_a_slot,
)
from .opmodel import HeapOpModel, OpCost
from .resources import PAPER_UTILIZED, U280_AVAILABLE, ResourceModel, ResourceReport
from .simulator import BootstrapEventSimulator, SimulationResult, TimelineEvent
from .traffic import (
    ConventionalKeyTraffic,
    bootstrap_hbm_seconds,
    key_traffic_reduction,
    scheme_switching_key_bytes,
    seeded_scheme_switching_key_bytes,
)

__all__ = [
    "AreaPoint",
    "area_comparison",
    "heap_area",
    "heap_within_asic_envelope",
    "BramLayout",
    "NttAddressGenerator",
    "UramLayout",
    "WordCoordinate",
    "BootstrapEventSimulator",
    "SimulationResult",
    "TimelineEvent",
    "BOOTSTRAP_SHARE",
    "HEAP_BOOTSTRAP_SPLIT_MS",
    "HEAP_LR_ITER_S",
    "HEAP_NTT_THROUGHPUT",
    "HEAP_RESNET_S",
    "HEAP_TABLE3",
    "HEAP_TABLE5",
    "TABLE3_REFERENCES",
    "TABLE4_REFERENCES",
    "TABLE5_REFERENCES",
    "TABLE6_REFERENCES",
    "TABLE7_REFERENCES",
    "TABLE8_PAPER",
    "ReferencePoint",
    "reference_by_name",
    "BootstrapBreakdown",
    "ClusterBootstrapModel",
    "EIGHT_FPGA",
    "SINGLE_FPGA",
    "ClusterConfig",
    "HeapHwConfig",
    "CalibrationEntry",
    "SingleFpgaModel",
    "compute_to_bootstrap_ratio",
    "cycle_speedup",
    "geometric_mean",
    "speedup",
    "t_mult_a_slot",
    "HeapOpModel",
    "OpCost",
    "PAPER_UTILIZED",
    "U280_AVAILABLE",
    "ResourceModel",
    "ResourceReport",
    "ConventionalKeyTraffic",
    "bootstrap_hbm_seconds",
    "key_traffic_reduction",
    "scheme_switching_key_bytes",
    "seeded_scheme_switching_key_bytes",
]
