#!/usr/bin/env python3
"""ResNet-20 inference workload (paper Section VI-F2).

Two parts, mirroring how the paper evaluates this workload:

1. a functional miniature — an encrypted convolution + activation +
   pooling block executed on CKKS ciphertexts and checked against the
   plaintext reference (the full homomorphic ResNet-20 takes ~3 hours on
   the paper's *CPU baseline*; nobody runs it in pure Python), and
2. the production-scale prediction through the hardware model: the
   op-sequence of Lee et al.'s multiplexed-convolution ResNet-20, 1024
   slots per ciphertext, ~230 bootstraps — regenerating the paper's
   Table VII numbers.
"""

import numpy as np

from repro.apps import (
    TinyEncryptedCnn,
    resnet20_op_counts,
    resnet_inference_model,
    synthetic_cifar_batch,
    total_bootstrap_count,
)
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.ckks.bootstrap import make_bootstrappable_toy_params
from repro.hardware import ClusterBootstrapModel, SingleFpgaModel
from repro.math.sampling import Sampler


def main() -> None:
    # -- functional miniature ----------------------------------------------------
    params = make_bootstrappable_toy_params(n=32, levels=6, delta_bits=24,
                                            q0_bits=30)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(71))
    sk = gen.secret_key()
    side = 4
    kernel = np.array([[0.6, -0.3], [0.2, 0.5]])
    rots = sorted({di * side + dj for di in range(2) for dj in range(2)} - {0})
    pool_rots = []
    shift = 1
    while shift < ctx.slots:
        pool_rots.append(shift)
        shift *= 2
    keys = gen.keyset(sk, rotations=sorted(set(rots + pool_rots)))
    ev = CkksEvaluator(ctx, keys, Sampler(72), scale_rtol=5e-2)
    cnn = TinyEncryptedCnn(ctx, ev, side, kernel)

    img = synthetic_cifar_batch(1, seed=5)[0, 0, :side, :side]  # one channel crop
    ct = ev.encrypt(cnn.pack_image(img))
    conv = cnn.conv(ct)
    act = cnn.square_activation(conv)
    pooled = cnn.sum_pool(act)

    got = ev.decrypt(act, sk).real
    want = cnn.reference(img, kernel)
    out_side = side - kernel.shape[0] + 1
    err = max(abs(got[i * side + j] - want[i, j])
              for i in range(out_side) for j in range(out_side))
    pooled_val = ev.decrypt(pooled, sk).real[0]
    print("functional miniature (encrypted conv + square + sum-pool):")
    print(f"  conv+activation max error vs plaintext: {err:.4f}")
    print(f"  pooled value: {pooled_val:.4f} "
          f"(plaintext window sum: {float(np.sum(want)):.4f})")

    # -- production-scale prediction ------------------------------------------------
    fpga = SingleFpgaModel()
    cluster = ClusterBootstrapModel()
    total, share = resnet_inference_model(fpga, cluster)
    print("\nhardware model, production scale (N=2^13, 8 FPGAs, 1024 slots):")
    print(f"  ResNet-20 inference: {total:.3f} s "
          f"(paper: 0.267 s)")
    print(f"  bootstrap share: {share:.1%} (paper: ~44%)")
    print(f"  bootstraps: {total_bootstrap_count()} across "
          f"{len(resnet20_op_counts())} homomorphic layers")
    print("\nper-layer op budget:")
    for layer in resnet20_op_counts():
        print(f"  {layer.name:18s} mults={layer.mults:4d} "
              f"rotates={layer.rotates:4d} adds={layer.adds:4d} "
              f"bootstraps={layer.bootstraps}")


if __name__ == "__main__":
    main()
