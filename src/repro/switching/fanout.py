"""Fault-tolerant BlindRotate fan-out, shared by every distributed executor.

PR 5 built the primary-side failure story — CRC-framed wire blobs,
deterministic fault injection, whole-slice re-dispatch to the least-
loaded survivor under a retry budget — inside the *simulated* cluster.
The real multiprocessing pool needs the identical loop, with "node"
meaning an OS process instead of a :class:`SimulatedNode`.  This module
is the unification: :class:`CommLog`, :class:`Fault` and
:class:`FaultInjector` live here (``cluster_sim`` re-exports them for
compatibility), and :class:`FaultTolerantFanout` owns the one recovery
loop both executors run:

1. First pass: the paper's Section-V send policy — each worker's full
   contiguous slice is dispatched before the next worker's.
2. Any slice whose reply fails validation (death, timeout, short reply,
   CRC mismatch) is queued and re-dispatched *whole* to the least-loaded
   surviving worker (:func:`~repro.switching.scheduler.
   pick_recovery_node`), under a retry budget.
3. A typed :class:`~repro.errors.ClusterExecutionError` is raised only
   when no healthy worker remains or the budget is exhausted.

Subclasses provide the transport: how a slice reaches a worker, how the
reply comes back, and what "death" looks like (a raised
``_NodeCrash`` in the simulation; ``SIGKILL`` / nonzero exit / reply
timeout on a real process pool).

Fault specs are plain picklable dataclasses and the injector's schedule
can be generated deterministically from a seed
(:meth:`FaultInjector.seeded`), so the *same* injection schedule can
drive the simulated cluster in-process and the worker pool across
process boundaries — the basis of the parity tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ClusterExecutionError
from ..profiling import record_fanout
from ..tfhe.glwe import GlweCiphertext
from ..tfhe.lwe import LweCiphertext
from .pipeline import BootstrapTrace
from .scheduler import make_schedule, pick_recovery_node

#: ``CommLog`` source/destination id of the pool's coordinating process.
#: The simulated cluster's primary is node 0 (it computes a slice
#: itself); the multiprocessing pool's parent only coordinates, so its
#: traffic is logged against this sentinel id instead.
PRIMARY = -1


@dataclass
class CommLog:
    """Bytes and message counts per (src, dst) link.

    First-attempt and recovery traffic are accounted *separately*:
    ``record(..., retry=True)`` adds to the grand totals **and** to the
    ``retry_*`` breakdowns, so :meth:`total_bytes` is everything that
    crossed the wire and :meth:`total_retry_bytes` the share caused by
    fault recovery.
    """

    bytes_sent: Dict[Tuple[int, int], int] = field(default_factory=dict)
    messages: Dict[Tuple[int, int], int] = field(default_factory=dict)
    retry_bytes: Dict[Tuple[int, int], int] = field(default_factory=dict)
    retry_messages: Dict[Tuple[int, int], int] = field(default_factory=dict)

    def record(self, src: int, dst: int, payload: bytes,
               retry: bool = False) -> None:
        key = (src, dst)
        self.bytes_sent[key] = self.bytes_sent.get(key, 0) + len(payload)
        self.messages[key] = self.messages.get(key, 0) + 1
        if retry:
            self.retry_bytes[key] = self.retry_bytes.get(key, 0) + len(payload)
            self.retry_messages[key] = self.retry_messages.get(key, 0) + 1

    def total_bytes(self) -> int:
        return sum(self.bytes_sent.values())

    def link_bytes(self, src: int, dst: int) -> int:
        return self.bytes_sent.get((src, dst), 0)

    def total_retry_bytes(self) -> int:
        return sum(self.retry_bytes.values())

    def retry_link_bytes(self, src: int, dst: int) -> int:
        return self.retry_bytes.get((src, dst), 0)


@dataclass
class Fault:
    """One injected fault against a node/worker.

    ``kind`` is one of ``"crash"`` (die after ``after`` BlindRotates of
    the incoming batch), ``"kill_worker"`` (the process-pool realisation
    of a crash: the worker SIGKILLs itself — or ``os._exit``\\ s with
    ``exit_code`` — after ``after`` BlindRotates; the simulated cluster
    treats it exactly like ``crash``), ``"drop_reply"`` /
    ``"corrupt_reply"`` (lose or bit-flip reply blob ``reply_index``),
    or ``"straggle"`` (add ``delay_seconds`` of latency — simulated on
    the cluster, a real ``sleep`` on the pool — a timeout failure if it
    exceeds the executor's ``straggler_timeout``).  Non-persistent
    faults fire exactly once, so recovery succeeds; ``persistent=True``
    models a node that stays broken.

    Faults are *per-slice*: a crash-family fault with ``after`` at or
    beyond the slice length cannot fire on that slice, so the executors
    leave it scheduled (:meth:`realisable` is the predicate the
    injector's ``take`` applies) — it may still fire on a later, longer
    slice, e.g. a re-dispatched one.  A consumed fault is therefore
    always actually realised, never silently swallowed.

    Faults are plain picklable dataclasses: the pool ships them to the
    worker process that must realise them.
    """

    kind: str
    node_id: int
    after: int = 0
    reply_index: int = 0
    delay_seconds: float = 0.0
    persistent: bool = False
    exit_code: Optional[int] = None

    @classmethod
    def crash(cls, node_id: int, after: int = 0,
              persistent: bool = False) -> "Fault":
        return cls("crash", node_id, after=after, persistent=persistent)

    @classmethod
    def kill_worker(cls, node_id: int, after: int = 0,
                    exit_code: Optional[int] = None,
                    persistent: bool = False) -> "Fault":
        """Real worker death: SIGKILL by default, or a nonzero
        ``exit_code`` for the orderly-crash flavour."""
        return cls("kill_worker", node_id, after=after, exit_code=exit_code,
                   persistent=persistent)

    @classmethod
    def drop_reply(cls, node_id: int, index: int = 0,
                   persistent: bool = False) -> "Fault":
        return cls("drop_reply", node_id, reply_index=index,
                   persistent=persistent)

    @classmethod
    def corrupt_reply(cls, node_id: int, index: int = 0,
                      persistent: bool = False) -> "Fault":
        return cls("corrupt_reply", node_id, reply_index=index,
                   persistent=persistent)

    @classmethod
    def straggler(cls, node_id: int, delay_seconds: float,
                  persistent: bool = False) -> "Fault":
        return cls("straggle", node_id, delay_seconds=delay_seconds,
                   persistent=persistent)

    def realisable(self, slice_len: int) -> bool:
        """Whether this fault can actually fire on a slice of
        ``slice_len`` LWEs: crash-family faults need ``after`` inside
        the slice; every other kind fires on any nonempty slice."""
        if self.kind in ("crash", "kill_worker"):
            return self.after < slice_len
        return slice_len > 0


class FaultInjector:
    """Deterministic fault source every fan-out executor consults.

    Holds a list of :class:`Fault` specs; :meth:`take` pops the first
    matching non-persistent fault (persistent ones keep firing).  An
    empty injector is a no-op — the default, fault-free execution.

    The injector is picklable and order-deterministic, so the exact
    schedule that drove a simulated run can be replayed against the
    process pool (and vice versa).
    """

    def __init__(self, faults: Sequence[Fault] = ()):
        self.faults: List[Fault] = list(faults)

    def take(self, node_id: int, kind: str,
             slice_len: Optional[int] = None) -> Optional[Fault]:
        """Pop the first matching fault.  With ``slice_len`` given, a
        fault that is not :meth:`~Fault.realisable` on a slice of that
        length is skipped *and left scheduled* — consuming it would make
        it silently disappear without ever firing."""
        for i, fault in enumerate(self.faults):
            if fault.node_id == node_id and fault.kind == kind:
                if slice_len is not None and not fault.realisable(slice_len):
                    continue
                if not fault.persistent:
                    del self.faults[i]
                return fault
        return None

    def take_any(self, node_id: int, *kinds: str,
                 slice_len: Optional[int] = None) -> Optional[Fault]:
        """First matching fault of any listed kind (``crash`` and
        ``kill_worker`` are interchangeable on most executors)."""
        for kind in kinds:
            fault = self.take(node_id, kind, slice_len=slice_len)
            if fault is not None:
                return fault
        return None

    @classmethod
    def seeded(cls, seed: int, node_ids: Sequence[int],
               kinds: Sequence[str] = ("crash", "drop_reply", "corrupt_reply"),
               count: int = 2) -> "FaultInjector":
        """A deterministic schedule of ``count`` faults drawn from
        ``kinds`` over ``node_ids``.  The same ``(seed, node_ids, kinds,
        count)`` always yields the same schedule — in this process, in a
        worker that unpickled it, and in a fresh interpreter — so one
        seed pins an injection scenario across both executors."""
        rng = random.Random(seed)
        faults: List[Fault] = []
        for _ in range(count):
            kind = rng.choice(list(kinds))
            node_id = rng.choice(list(node_ids))
            if kind in ("crash", "kill_worker"):
                faults.append(Fault(kind, node_id, after=rng.randrange(2)))
            elif kind == "straggle":
                faults.append(Fault(kind, node_id,
                                    delay_seconds=rng.uniform(0.05, 0.2)))
            else:
                faults.append(Fault(kind, node_id,
                                    reply_index=rng.randrange(4)))
        return cls(faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultInjector) and self.faults == other.faults

    def __repr__(self) -> str:  # pragma: no cover
        return f"FaultInjector({self.faults!r})"


class FaultTolerantFanout:
    """The shared dispatch + recovery loop (template-method base).

    Subclasses implement the transport:

    * :meth:`_workers` — ``{worker_id: handle}`` of currently-usable
      workers (the loop mutates this dict as deaths are detected);
    * :meth:`_load` — BlindRotates a handle has executed (recovery
      targets the least-loaded survivor);
    * a *synchronous* transport (the simulated cluster) implements
      :meth:`_dispatch` — send one contiguous slice, block for the
      reply, validate, splice results; return ``False`` on any detected
      failure — and inherits the default :meth:`_send`/:meth:`_collect`
      pair, which completes each dispatch inline;
    * a transport with real concurrency (the process pool) overrides
      :meth:`_send` (deliver the slice and return immediately) and
      :meth:`_collect` (block until at least one outstanding slice
      resolves), so **every worker's slice is in flight before any
      reply is awaited** — the property that makes the fan-out actually
      parallel in wall-clock time.
    """

    blind_rotate_engine: str
    #: Re-dispatch budget per fan-out (``None`` = 4x the worker count);
    #: exhausting it — only possible with persistent faults on healthy
    #: workers — raises ClusterExecutionError instead of looping forever.
    max_retries: Optional[int] = None
    #: Outcome buffer for the synchronous default transport; reset at
    #: the top of every :meth:`fanout`.
    _sync_outcomes: List[Tuple[int, bool]]
    #: LUT id for the current batch (set by :meth:`fanout`; ``None``
    #: selects the Algorithm-2 switching vector).
    _lut: Optional[str] = None

    # -- subclass contract ---------------------------------------------------

    def _workers(self) -> Dict[int, object]:
        raise NotImplementedError

    def _load(self, handle: object) -> int:
        raise NotImplementedError

    def _dispatch(self, handle: object, start: int, stop: int,
                  lwes: Sequence[LweCiphertext],
                  results: List[Optional[GlweCiphertext]],
                  healthy: Dict[int, object],
                  trace: BootstrapTrace, retry: bool) -> bool:
        raise NotImplementedError

    # -- default synchronous transport ---------------------------------------

    def _send(self, wid: int, handle: object, start: int, stop: int,
              lwes: Sequence[LweCiphertext],
              results: List[Optional[GlweCiphertext]],
              healthy: Dict[int, object],
              trace: BootstrapTrace, retry: bool) -> bool:
        """Synchronous default: the dispatch runs to completion inline
        (via :meth:`_dispatch`) and its outcome is buffered for the next
        :meth:`_collect`.  Returns ``False`` only when the slice never
        reached a worker — impossible inline, so always ``True`` here."""
        ok = self._dispatch(handle, start, stop, lwes, results, healthy,
                            trace, retry)
        self._sync_outcomes.append((wid, ok))
        return True

    def _collect(self, pending: Dict[int, Tuple[int, int]],
                 lwes: Sequence[LweCiphertext],
                 results: List[Optional[GlweCiphertext]],
                 healthy: Dict[int, object],
                 trace: BootstrapTrace) -> List[Tuple[int, bool]]:
        """Synchronous default: drain the outcomes buffered by
        :meth:`_send`.  Async transports block here until at least one
        outstanding slice resolves and return its ``(wid, ok)``."""
        outcomes = self._sync_outcomes
        self._sync_outcomes = []
        return outcomes

    # -- the one loop --------------------------------------------------------

    def fanout(self, lwes: Sequence[LweCiphertext],
               trace: BootstrapTrace,
               lut: Optional[str] = None) -> List[GlweCiphertext]:
        healthy = self._workers()
        num_workers = len(healthy)
        schedule = make_schedule(len(lwes), num_workers)
        results: List[Optional[GlweCiphertext]] = [None] * len(lwes)
        self._sync_outcomes = []
        # The batch-wide LUT selection, read by the transport's
        # _dispatch/_send (None = the Algorithm-2 switching vector).
        self._lut = lut
        pending: Dict[int, Tuple[int, int]] = {}  # wid -> slice in flight
        failed: List[Tuple[int, int, int]] = []  # (start, stop, failed id)

        # Send phase: the Section-V send policy, one worker's full
        # contiguous slice before the next — and *every* slice is sent
        # before any reply is awaited, so an async transport has all
        # workers computing concurrently.
        for assignment in schedule.nodes:
            if assignment.count == 0:
                continue
            wid = assignment.node_id
            record_fanout(dispatches=1)
            if self._send(wid, healthy[wid], assignment.start,
                          assignment.stop, lwes, results, healthy, trace,
                          retry=False):
                pending[wid] = (assignment.start, assignment.stop)
            else:
                failed.append((assignment.start, assignment.stop, wid))

        # Collect + recovery: gather replies as they land; re-dispatch
        # each failed contiguous slice whole to the least-loaded *idle*
        # survivor.  A slice whose only idle candidate is the worker
        # that just failed it waits for a busy worker to free up, so
        # recovery targeting matches the synchronous loop's.
        budget = self.max_retries if self.max_retries is not None \
            else 4 * num_workers
        while pending or failed:
            while failed:
                if not healthy:
                    raise ClusterExecutionError(
                        f"fan-out failed: no healthy node remains for "
                        f"{len(failed)} pending slice(s)",
                        failed_nodes=trace.failed_nodes,
                        pending_slices=[(s, e) for s, e, _ in failed])
                if trace.fanout_retries >= budget:
                    raise ClusterExecutionError(
                        f"fan-out failed: retry budget ({budget}) exhausted "
                        f"with {len(failed)} pending slice(s)",
                        failed_nodes=trace.failed_nodes,
                        pending_slices=[(s, e) for s, e, _ in failed])
                start, stop, origin = failed[0]
                idle = [wid for wid in healthy if wid not in pending]
                if not idle or (set(idle) == {origin} and len(healthy) > 1):
                    break  # a reply must free a better target first
                failed.pop(0)
                loads = {wid: self._load(healthy[wid]) for wid in idle}
                target_id = pick_recovery_node(idle, loads, exclude=origin)
                trace.fanout_retries += 1
                trace.fanout_redispatched_lwes += stop - start
                record_fanout(retries=1, redispatched_lwes=stop - start)
                trace.notes.append(
                    f"re-dispatching LWEs [{start}, {stop}) from node "
                    f"{origin} to node {target_id}")
                if self._send(target_id, healthy[target_id], start, stop,
                              lwes, results, healthy, trace, retry=True):
                    pending[target_id] = (start, stop)
                else:
                    failed.append((start, stop, target_id))
            if not pending:
                continue
            for wid, ok in self._collect(pending, lwes, results, healthy,
                                         trace):
                start, stop = pending.pop(wid)
                if not ok:
                    failed.append((start, stop, wid))
        # Recovery guarantees completeness: every slot is filled.
        return [acc for acc in results if acc is not None]

    # -- shared helpers ------------------------------------------------------

    @staticmethod
    def _add_time(trace: BootstrapTrace, wid: int, seconds: float) -> None:
        trace.node_seconds[wid] = trace.node_seconds.get(wid, 0.0) + seconds

    @staticmethod
    def _mark_dead(wid: int, healthy: Dict[int, object],
                   trace: BootstrapTrace, why: str) -> None:
        healthy.pop(wid, None)
        if wid not in trace.failed_nodes:
            trace.failed_nodes.append(wid)
        trace.notes.append(f"node {wid} {why}")
