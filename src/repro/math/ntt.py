"""Negacyclic number-theoretic transform over ``Z_q[X]/(X^N + 1)``.

The paper's NTT datapath (Section IV-D) performs radix-2 Cooley-Tukey
butterflies with grouped twiddle access; this module implements the same
algorithm in vectorised numpy.  The transform is *negacyclic*: pointwise
multiplication in the evaluation domain corresponds to multiplication
modulo ``X^N + 1`` in the coefficient domain, which is the convolution
both CKKS and TFHE need.

Implementation notes
--------------------
We use the classic psi-twisting formulation: with ``psi`` a primitive
``2N``-th root of unity and ``omega = psi**2``,

* forward:  ``NTT(a)_k = sum_j a_j psi^j omega^{jk}`` — a cyclic NTT of
  the twisted sequence ``a_j psi^j``;
* inverse:  untwist by ``psi^{-j}`` and scale by ``N^{-1}`` after the
  cyclic inverse NTT.

The cyclic transform itself is an iterative Cooley-Tukey with the grouped
addressing scheme of Section IV-D (coefficients sharing a twiddle are
processed together), vectorised so a whole stage is a handful of numpy
slice operations.  Transforms accept stacked inputs of shape
``(..., N)`` so multiple limbs are transformed in one call — the software
analogue of the paper's "two limbs per pass" memory layout.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..errors import ParameterError
from .modular import ModulusEngine, root_of_unity


class NttEngine:
    """Cached negacyclic NTT for a fixed ``(N, q)`` pair.

    ``twiddle_mode`` mirrors the control signal of paper Section IV-D:
    ``"cached"`` reads precomputed twiddles (the default, on-chip tables),
    ``"on_the_fly"`` regenerates each stage's twiddles from the root by
    repeated squaring — trading compute for table storage, "helpful when
    the on-chip memory is not sufficient to store all the twiddle factors
    at once and we have available compute bandwidth".  Both modes are
    bit-identical (tests assert it).
    """

    def __init__(self, n: int, q: int, twiddle_mode: str = "cached"):
        if n & (n - 1) or n < 2:
            raise ParameterError(f"N must be a power of two >= 2, got {n}")
        if twiddle_mode not in ("cached", "on_the_fly"):
            raise ParameterError(f"unknown twiddle mode {twiddle_mode!r}")
        self.twiddle_mode = twiddle_mode
        self.n = n
        self.mod = ModulusEngine(q)
        self.q = q
        self.psi = root_of_unity(q, 2 * n)
        self.omega = self.psi * self.psi % q
        self.n_inv = self.mod.inv(n)

        dtype = self.mod.dtype
        # psi^j and psi^-j twist vectors.
        psi_pows = np.empty(n, dtype=object)
        cur = 1
        for j in range(n):
            psi_pows[j] = cur
            cur = cur * self.psi % q
        self._psi = psi_pows.astype(dtype)
        psi_inv = self.mod.inv(self.psi)
        inv_pows = np.empty(n, dtype=object)
        cur = 1
        for j in range(n):
            inv_pows[j] = cur
            cur = cur * psi_inv % q
        self._psi_inv = inv_pows.astype(dtype)

        # omega^k tables for each stage of the cyclic transform, and their
        # inverses for the inverse transform.
        omega_pows = np.empty(n, dtype=object)
        cur = 1
        for j in range(n):
            omega_pows[j] = cur
            cur = cur * self.omega % q
        self._omega = omega_pows.astype(dtype)
        omega_inv = self.mod.inv(self.omega)
        oinv_pows = np.empty(n, dtype=object)
        cur = 1
        for j in range(n):
            oinv_pows[j] = cur
            cur = cur * omega_inv % q
        self._omega_inv = oinv_pows.astype(dtype)

    # -- public API -----------------------------------------------------------

    def forward(self, coeffs: np.ndarray) -> np.ndarray:
        """Coefficient -> evaluation domain (shape-preserving, last axis N)."""
        arr = np.asarray(coeffs)
        _profile_ntt(self.n, arr)
        a = self.mod.mul(arr.astype(self.mod.dtype, copy=False), self._psi)
        return self._cyclic(a, self._omega)

    def inverse(self, evals: np.ndarray) -> np.ndarray:
        """Evaluation -> coefficient domain."""
        arr = np.asarray(evals)
        _profile_ntt(self.n, arr)
        a = self._cyclic(arr.astype(self.mod.dtype, copy=False), self._omega_inv)
        a = self.mod.mul(a, self.n_inv)
        return self.mod.mul(a, self._psi_inv)

    def pointwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Hadamard product in the evaluation domain."""
        from ..profiling import record_mul

        record_mul(int(np.asarray(a).size))
        return self.mod.mul(a, b)

    def negacyclic_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Full negacyclic product of two coefficient-domain polynomials."""
        return self.inverse(self.pointwise(self.forward(a), self.forward(b)))

    # -- internals --------------------------------------------------------------

    def _cyclic(self, a: np.ndarray, omega_pows: np.ndarray) -> np.ndarray:
        """Iterative radix-2 DIT cyclic NTT on the last axis.

        ``omega_pows[k]`` must hold ``w^k`` for the transform direction's
        root ``w``.  Input is consumed in natural order; we bit-reverse
        first, then run log2(N) butterfly stages.  Each stage is expressed
        with the Section IV-D grouping: ``m`` butterflies share each
        twiddle ``w^{k * (n / (2m))}``.
        """
        n = self.n
        a = a[..., _bitrev_indices(n)].copy()
        q = self.q
        m = 1
        while m < n:
            # Twiddles for this stage: w^(j * n/(2m)) for j in [0, m).
            if self.twiddle_mode == "cached":
                tw = omega_pows[(np.arange(m) * (n // (2 * m)))]
            else:
                # On-the-fly generation: successive powers of the stage
                # root w^(n/(2m)) by running multiplication.
                stage_root = int(omega_pows[n // (2 * m)])
                tw = self.mod.zeros(m)
                cur = 1
                for j in range(m):
                    tw[j] = cur
                    cur = cur * stage_root % q
            a = a.reshape(a.shape[:-1] + (n // (2 * m), 2 * m))
            lo = a[..., :m]
            hi = a[..., m:]
            t = np.mod(hi * tw, q)
            a = np.concatenate(
                [
                    np.where(lo + t >= q, lo + t - q, lo + t),
                    np.where(lo - t < 0, lo - t + q, lo - t),
                ],
                axis=-1,
            )
            a = a.reshape(a.shape[:-2] + (n,))
            m *= 2
        return a


def naive_negacyclic_mul(a, b, q: int) -> np.ndarray:
    """Schoolbook ``O(N^2)`` negacyclic convolution — test reference only."""
    a = np.asarray(a, dtype=object)
    b = np.asarray(b, dtype=object)
    n = a.shape[-1]
    out = np.zeros(n, dtype=object)
    for i in range(n):
        ai = int(a[i])
        if ai == 0:
            continue
        for j in range(n):
            k = i + j
            term = ai * int(b[j])
            if k >= n:
                out[k - n] -= term
            else:
                out[k] += term
    return np.mod(out, q)


def naive_dft(a, q: int, root: int) -> np.ndarray:
    """Quadratic-time cyclic DFT used to validate the fast transform."""
    a = np.asarray(a, dtype=object)
    n = len(a)
    out = np.zeros(n, dtype=object)
    for k in range(n):
        acc = 0
        for j in range(n):
            acc += int(a[j]) * pow(root, j * k, q)
        out[k] = acc % q
    return out


def _profile_ntt(n: int, arr: np.ndarray) -> None:
    """Report transforms to the profiler (batch = product of lead dims)."""
    from ..profiling import record_ntt

    batch = int(arr.size // n) if arr.size else 0
    if batch:
        record_ntt(n, batch)


_BITREV_CACHE: Dict[int, np.ndarray] = {}


def _bitrev_indices(n: int) -> np.ndarray:
    """Bit-reversal permutation indices for length ``n`` (cached)."""
    cached = _BITREV_CACHE.get(n)
    if cached is not None:
        return cached
    bits = n.bit_length() - 1
    idx = np.arange(n)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    _BITREV_CACHE[n] = rev
    return rev


_ENGINE_CACHE: Dict[Tuple[int, int], NttEngine] = {}


def get_ntt_engine(n: int, q: int) -> NttEngine:
    """Process-wide cache of NTT engines (twiddle tables are expensive)."""
    key = (n, q)
    engine = _ENGINE_CACHE.get(key)
    if engine is None:
        engine = NttEngine(n, q)
        _ENGINE_CACHE[key] = engine
    return engine
