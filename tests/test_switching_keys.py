"""Tests for switching-key generation, size audits, and the key switcher
internals (ModUp/ModDown)."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksKeyGenerator
from repro.ckks.keyswitch import KeySwitcher
from repro.math.rns import RnsPoly, concat_bases
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching.keys import (
    SwitchingKeySet,
    conventional_bootstrap_key_bytes,
)

PARAMS = make_toy_params(n=16, limbs=4, limb_bits=28, scale_bits=22)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext(PARAMS.ckks, dnum=2)


@pytest.fixture(scope="module")
def sk(ctx):
    return CkksKeyGenerator(ctx, Sampler(3)).secret_key()


class TestSwitchingKeySet:
    def test_structure(self, ctx, sk):
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(4), base_bits=6)
        assert swk.brk.n_t == ctx.n  # functional pipeline: dimension-N keys
        # Raised basis = Q limbs + one auxiliary prime.
        assert len(swk.raised_basis) == ctx.params.max_limbs + 1
        assert swk.raised_basis.moduli[-1] == ctx.special_basis.moduli[0]
        # Repack needs log2(N) automorphism keys.
        assert len(swk.auto_keys.keys) == int(np.log2(ctx.n))

    def test_gadget_covers_modulus(self, ctx, sk):
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(5), base_bits=6)
        covered = swk.gadget.digits * swk.gadget.base_bits
        total = swk.raised_basis.product.bit_length()
        assert total - swk.gadget.base_bits < covered <= total

    def test_brk_encrypts_secret_indicators(self, ctx, sk):
        """RGSW(s_i^+) encrypts 1 exactly when s_i = 1 (spot check)."""
        from repro.tfhe.glwe import GlweCiphertext, glwe_decrypt_coeffs
        from repro.tfhe.rgsw import external_product
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(6), base_bits=4,
                                       error_std=0.8)
        basis = swk.raised_basis
        probe_val = basis.product // 7
        probe_coeffs = np.zeros(ctx.n, dtype=object)
        probe_coeffs[0] = probe_val
        probe = GlweCiphertext.trivial(
            RnsPoly.from_int_coeffs(ctx.n, basis, probe_coeffs), h=1)
        for i in range(4):
            out = external_product(swk.brk.plus[i], probe)
            const = int(glwe_decrypt_coeffs(out, swk.glwe_sk_ref)[0])
            expected = probe_val if int(sk.coeffs[i]) == 1 else 0
            assert abs(const - expected) < basis.product // 2**12, i


class TestConventionalTraffic:
    def test_order_of_magnitude(self):
        # ~25 keys of ~126 MB each per unique pass.
        assert conventional_bootstrap_key_bytes() > 1e9


class TestKeySwitcherInternals:
    def test_mod_down_divides_by_p(self, ctx, sk):
        """ModDown(P * x) == x exactly for multiples of P."""
        switcher = KeySwitcher(ctx)
        target = ctx.full_basis
        ext = concat_bases(target, ctx.special_basis)
        p_prod = ctx.special_basis.product
        rng = np.random.default_rng(8)
        x = np.asarray([int(v) for v in rng.integers(0, 10**6, ctx.n)], dtype=object)
        lifted = RnsPoly.from_int_coeffs(ctx.n, ext, x * p_prod)
        down = switcher.mod_down(lifted, target)
        assert list(down.to_int_coeffs()) == list(x % target.product)

    def test_mod_down_rounds_small_values(self, ctx, sk):
        """ModDown of a small (non-multiple) value lands within 1."""
        switcher = KeySwitcher(ctx)
        target = ctx.full_basis
        ext = concat_bases(target, ctx.special_basis)
        rng = np.random.default_rng(9)
        x = np.asarray([int(v) for v in rng.integers(0, 1000, ctx.n)], dtype=object)
        down = switcher.mod_down(RnsPoly.from_int_coeffs(ctx.n, ext, x), target)
        vals = down.to_centered_int_coeffs()
        assert all(abs(int(v)) <= len(ctx.special_basis) + 1 for v in vals)

    def test_switch_key_roundtrip_per_level(self, ctx, sk):
        """The hybrid switch is valid at every level (partial digit groups)."""
        gen = CkksKeyGenerator(ctx, Sampler(10))
        relin = gen.relin_key(sk)
        switcher = KeySwitcher(ctx)
        s2_coeffs = None
        from repro.ckks.keys import _negacyclic_int_mul
        s2_coeffs = _negacyclic_int_mul(sk.coeffs, sk.coeffs)
        for level in range(ctx.max_level + 1):
            basis = ctx.basis_at_level(level)
            rng = np.random.default_rng(20 + level)
            d = RnsPoly.from_int_coeffs(
                ctx.n, basis,
                np.asarray([int(v) for v in rng.integers(0, 10**5, ctx.n)],
                           dtype=object)).to_eval()
            u0, u1 = switcher.switch(d, relin)
            s = sk.on_basis(ctx.n, basis)
            got = (u0 + u1 * s).to_centered_int_coeffs()
            s2 = RnsPoly.from_int_coeffs(ctx.n, basis, s2_coeffs).to_eval()
            want = (d * s2).to_centered_int_coeffs()
            err = max(abs(int(a) - int(b)) for a, b in zip(got, want))
            # Key-switch noise stays far below the modulus.
            assert err < basis.product // 2**10, (level, err)


class TestDnumVariants:
    """The hybrid key switch across decomposition numbers: dnum=1 (GHS,
    one big digit), dnum=2 (the paper's d), dnum=L (BV, per-limb)."""

    @pytest.mark.parametrize("dnum", [1, 2, 4])
    def test_multiply_works_at_each_dnum(self, dnum):
        import numpy as np
        from repro.ckks import CkksEvaluator
        params = make_toy_params(n=16, limbs=4, limb_bits=28, scale_bits=26,
                                 special_limbs=4)
        ctx = CkksContext(params.ckks, dnum=dnum)
        gen = CkksKeyGenerator(ctx, Sampler(30 + dnum))
        sk = gen.secret_key()
        ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(40 + dnum))
        z = np.random.default_rng(dnum).uniform(-1, 1, ctx.slots)
        prod = ev.mul_relin_rescale(ev.encrypt(z), ev.encrypt(z))
        got = ev.decrypt(prod, sk).real
        assert np.allclose(got, z * z, atol=2e-2), dnum

    def test_key_component_count_scales_with_dnum(self):
        params = make_toy_params(n=16, limbs=4, limb_bits=28, scale_bits=26,
                                 special_limbs=4)
        sizes = {}
        for dnum in (1, 2, 4):
            ctx = CkksContext(params.ckks, dnum=dnum)
            gen = CkksKeyGenerator(ctx, Sampler(50))
            sk = gen.secret_key()
            sizes[dnum] = len(gen.relin_key(sk).components)
        assert sizes == {1: 1, 2: 2, 4: 4}
