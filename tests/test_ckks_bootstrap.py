"""End-to-end test of the conventional CKKS bootstrap baseline."""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    CkksEvaluator,
    CkksKeyGenerator,
    ConventionalBootstrapConfig,
    ConventionalBootstrapper,
    ConventionalBootstrapTrace,
    make_bootstrappable_toy_params,
)
from repro.errors import ParameterError
from repro.math.sampling import Sampler

PARAMS = make_bootstrappable_toy_params(n=32, levels=17, delta_bits=24, q0_bits=30)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(77))
    sk = gen.secret_key()
    rots = ConventionalBootstrapper.required_rotation_indices(ctx)
    keys = gen.keyset(sk, rotations=rots, conjugate=True)
    ev = CkksEvaluator(ctx, keys, Sampler(78), scale_rtol=5e-2)
    boot = ConventionalBootstrapper(ctx, keys, evaluator=ev)
    return ctx, sk, ev, boot


class TestSineApprox:
    def test_approximation_error(self, stack):
        ctx, sk, ev, boot = stack
        approx = boot._approx
        q0 = float(ctx.full_basis.moduli[0])
        delta = ctx.params.scale
        ratio = q0 / delta
        # On integer multiples of ratio (k*q0 in y-units) plus a small
        # message, the sine approx must return ~ the message.
        for k in (-5, -1, 0, 1, 5):
            for msg in (-0.4, 0.0, 0.7):
                y = k * ratio + msg
                assert abs(approx(np.asarray([y]))[0] - msg) < 2e-2, (k, msg)


class TestConventionalBootstrap:
    def test_refreshes_levels(self, stack):
        ctx, sk, ev, boot = stack
        rng = np.random.default_rng(0)
        z = rng.uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=0)
        trace = ConventionalBootstrapTrace()
        out = boot.bootstrap(ct, trace)
        assert out.level >= 1, "bootstrap must leave usable levels"
        got = ev.decrypt(out, sk)
        assert np.allclose(got.real, z, atol=0.1), np.max(np.abs(got.real - z))
        assert trace.levels_consumed > 0
        assert "EvalMod(deg=119)" in " ".join(trace.notes)

    def test_output_supports_multiplication(self, stack):
        ctx, sk, ev, boot = stack
        z = np.random.default_rng(1).uniform(0.3, 0.9, ctx.slots)
        out = boot.bootstrap(ev.encrypt(z, level=0))
        if out.level < 1:
            pytest.skip("toy chain too short for a post-bootstrap mult")
        prod = ev.mul_relin_rescale(
            out, ev.encrypt(z, level=out.level, scale=out.scale))
        got = ev.decrypt(prod, sk).real
        assert np.allclose(got, z * z, atol=0.2)

    def test_rejects_non_level0(self, stack):
        ctx, sk, ev, boot = stack
        with pytest.raises(ParameterError):
            boot.bootstrap(ev.encrypt(0.5))

    def test_consumes_many_levels(self, stack):
        """The headline contrast with scheme switching: conventional
        bootstrapping burns most of the chain (paper: 15-19 limbs at
        production scale), scheme switching burns exactly one."""
        ctx, sk, ev, boot = stack
        trace = ConventionalBootstrapTrace()
        boot.bootstrap(ev.encrypt(0.25, level=0), trace)
        assert trace.levels_consumed >= 8


class TestDoubleAngleEvalMod:
    """The Han-Ki refinement [30]: low-degree sine/cosine + r angle
    doublings replaces the high-degree sine."""

    def test_bootstrap_with_double_angle(self, stack):
        ctx, sk, ev, _ = stack
        from repro.ckks import ConventionalBootstrapConfig, ConventionalBootstrapper
        cfg = ConventionalBootstrapConfig(sine_degree=31, double_angle=2)
        boot = ConventionalBootstrapper(ctx, ev.keys, config=cfg, evaluator=ev)
        z = np.random.default_rng(5).uniform(-1, 1, ctx.slots)
        trace = ConventionalBootstrapTrace()
        out = boot.bootstrap(ev.encrypt(z, level=0), trace)
        got = ev.decrypt(out, sk)
        assert np.allclose(got.real, z, atol=0.15), np.max(np.abs(got.real - z))
        assert "double-angle r=2" in " ".join(trace.notes)

    def test_numeric_angle_doubling_identity(self, stack):
        """Plain-math check of the (s, c) <- (2sc, 2c^2-1) recurrence."""
        ctx, sk, ev, boot = stack
        theta = 0.37
        s, c = np.sin(theta / 4), np.cos(theta / 4)
        for _ in range(2):
            s, c = 2 * s * c, 2 * c * c - 1
        assert s == pytest.approx(np.sin(theta))
        assert c == pytest.approx(np.cos(theta))

    def test_lower_degree_suffices_with_doubling(self, stack):
        """Degree-31 sine alone cannot cover K=12 periods; with r=2
        doublings it can (the refinement's whole point)."""
        ctx, sk, ev, _ = stack
        from repro.ckks import ChebyshevApprox
        q0 = float(ctx.full_basis.moduli[0])
        ratio = q0 / ctx.params.scale
        bound = 12.5 * ratio
        plain = ChebyshevApprox.interpolate(
            lambda y: np.sin(2 * np.pi * np.asarray(y) / ratio),
            -bound, bound, 31)
        shrunk = ChebyshevApprox.interpolate(
            lambda y: np.sin(2 * np.pi * np.asarray(y) / ratio / 4),
            -bound, bound, 31)
        err_plain = plain.max_error(
            lambda y: np.sin(2 * np.pi * np.asarray(y) / ratio))
        err_shrunk = shrunk.max_error(
            lambda y: np.sin(2 * np.pi * np.asarray(y) / ratio / 4))
        assert err_shrunk < err_plain / 10
