"""Table III: basic FHE operation latencies (Add/Mult/Rescale/Rotate/
BlindRotate) — hardware-model regeneration plus *measured* functional
micro-benchmarks of this repo's own Python implementations at toy scale
(absolute numbers differ, the op-to-op ratios are the shape check)."""

import numpy as np
import pytest
from conftest import emit

from repro.analysis import format_table, table3_basic_ops
from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params

PARAMS = make_toy_params(n=64, limbs=4, limb_bits=28, scale_bits=26)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(9))
    sk = gen.secret_key()
    keys = gen.keyset(sk, rotations=[1])
    ev = CkksEvaluator(ctx, keys, Sampler(10))
    z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
    return ev, ev.encrypt(z), ev.encrypt(z)


def bench_table3_model(benchmark, fpga_model):
    headers, rows = benchmark(table3_basic_ops, fpga_model)
    emit("table3_basic_ops",
         "Table III: basic op latencies and speedups (single FPGA)\n" +
         format_table(headers, rows))
    by = {r["Operation"]: r for r in rows}
    # Mult is the most expensive CKKS primitive; Add the cheapest.
    assert by["mult"]["HEAP model (ms)"] > by["rescale"]["HEAP model (ms)"]
    assert by["add"]["HEAP model (ms)"] < by["rescale"]["HEAP model (ms)"]


def bench_functional_add(benchmark, stack):
    ev, a, b = stack
    benchmark(ev.add, a, b)


def bench_functional_mult(benchmark, stack):
    ev, a, b = stack
    benchmark(ev.multiply, a, b)


def bench_functional_rescale(benchmark, stack):
    ev, a, b = stack
    prod = ev.multiply(a, b)
    benchmark(ev.rescale, prod)


def bench_functional_rotate(benchmark, stack):
    ev, a, b = stack
    benchmark(ev.rotate, a, 1)
