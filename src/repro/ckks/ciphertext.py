"""CKKS RLWE ciphertext with level and scale bookkeeping."""

from __future__ import annotations

from dataclasses import dataclass
import math
from typing import Tuple

from ..errors import ParameterError
from ..math.rns import RnsPoly


@dataclass
class CkksCiphertext:
    """A pair ``(c0, c1)`` decrypting to ``c0 + c1 * s``.

    Attributes
    ----------
    c0, c1:
        RNS polynomials over the level's basis (evaluation domain by
        convention, as in the paper).
    scale:
        Current plaintext scale ``Delta`` (grows to ``Delta^2`` under
        multiplication until a Rescale).
    """

    c0: RnsPoly
    c1: RnsPoly
    scale: float

    def __post_init__(self):
        if self.c0.basis.moduli != self.c1.basis.moduli or self.c0.n != self.c1.n:
            raise ParameterError("ciphertext halves disagree on ring/basis")

    @property
    def level(self) -> int:
        """Remaining level = limb count - 1 (0 means no Rescales left)."""
        return len(self.c0.basis) - 1

    @property
    def n(self) -> int:
        return self.c0.n

    @property
    def basis(self):
        return self.c0.basis

    def parts(self) -> Tuple[RnsPoly, RnsPoly]:
        return self.c0, self.c1

    def copy(self) -> "CkksCiphertext":
        return CkksCiphertext(self.c0.copy(), self.c1.copy(), self.scale)

    def size_bytes(self) -> int:
        """Serialized size using the paper's ``2 * logQ * N`` accounting."""
        bits = sum(q.bit_length() for q in self.basis.moduli)
        return 2 * bits * self.n // 8

    def __repr__(self) -> str:  # pragma: no cover
        # Shapes and scale only — ciphertext/limb data never reaches repr.
        log_scale = math.log2(self.scale) if self.scale else 0.0
        return (f"CkksCiphertext(n={self.n}, level={self.level}, "
                f"scale=2^{log_scale:.1f})")
