"""CLI for heaplint: ``python -m repro.lint [paths...]``.

Exit codes: 0 = clean (or everything baselined/suppressed), 1 = new
findings, 2 = usage error.  ``--update-baseline`` rewrites the baseline
from the current tree instead of failing, which is the intended workflow
when a rule lands with known pre-existing findings.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
import sys
from typing import Dict, List, Optional, Sequence

from .core import Baseline, Finding, all_rules, analyze_paths

DEFAULT_BASELINE = "heaplint-baseline.json"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="heaplint: AST-based crypto-invariant checks",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--baseline", default=None, metavar="FILE",
                        help="baseline JSON of accepted findings (default: "
                             f"./{DEFAULT_BASELINE} when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from the current findings "
                             "and exit 0")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (default: text); 'sarif' emits "
                             "SARIF 2.1.0 for CI code-scanning annotation")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--statistics", action="store_true",
                        help="print per-rule finding counts")
    return parser


def _list_rules() -> None:
    for rule in all_rules():
        print(f"{rule.code}  {rule.name:<24} {rule.description}")


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.exists() or args.update_baseline else None


def _sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """SARIF 2.1.0 document: one run, one rule entry per registered rule,
    one result per finding.  GitHub code scanning ingests this shape and
    renders each result as an inline PR annotation."""
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "partialFingerprints": {"heaplint/v1": f.fingerprint()},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": max(f.col, 0) + 1,
                            "snippet": {"text": f.snippet},
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    return {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "heaplint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def _emit(findings: Sequence[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps(
            [{"rule": f.rule, "path": f.path, "line": f.line, "col": f.col,
              "message": f.message, "fingerprint": f.fingerprint()}
             for f in findings],
            indent=2))
    elif fmt == "sarif":
        print(json.dumps(_sarif(findings), indent=2))
    else:
        for f in findings:
            print(f.render())


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules()
        return 0

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}",
              file=sys.stderr)
        return 2

    findings = analyze_paths(paths, root=Path.cwd())

    if args.statistics:
        by_rule: Dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        for code in sorted(by_rule):
            print(f"{code}: {by_rule[code]}", file=sys.stderr)

    baseline_path = _resolve_baseline(args)
    if args.update_baseline:
        if baseline_path is None:
            baseline_path = Path(DEFAULT_BASELINE)
        Baseline.dump(findings, baseline_path)
        print(f"baseline updated: {baseline_path} "
              f"({len(findings)} finding(s))", file=sys.stderr)
        return 0

    new: List[Finding] = findings
    if baseline_path is not None and baseline_path.exists():
        new = Baseline.load(baseline_path).filter_new(findings)

    _emit(new, args.format)
    if new:
        print(f"heaplint: {len(new)} new finding(s) "
              f"({len(findings)} total before baseline)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
