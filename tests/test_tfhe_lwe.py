"""Tests for LWE encryption, modulus switching and key switching."""

import pytest

from repro.errors import ParameterError
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.sampling import Sampler
from repro.tfhe.lwe import (
    LweKeySwitchKey,
    LweSecretKey,
    lwe_decrypt,
    lwe_encrypt,
    lwe_keyswitch,
    lwe_phase,
    modulus_switch,
)

Q = find_ntt_primes(28, 32, 1)[0]
DIM = 24


@pytest.fixture(scope="module")
def sk():
    return LweSecretKey.generate(DIM, Sampler(7))


def encode(x, q=Q, levels=16):
    return x * (q // levels) % q


class TestEncryptDecrypt:
    def test_phase_recovers_message(self, sk):
        s = Sampler(0)
        m = encode(3)
        ct = lwe_encrypt(m, sk, Q, s)
        assert abs(lwe_phase(ct, sk) - m) < 100 or abs(lwe_phase(ct, sk) - m) > Q - 100

    def test_decrypt_centred(self, sk):
        s = Sampler(1)
        ct = lwe_encrypt(5, sk, Q, s)
        assert abs(lwe_decrypt(ct, sk) - 5) < 100

    def test_decrypt_negative_message(self, sk):
        s = Sampler(2)
        ct = lwe_encrypt(-5 % Q, sk, Q, s)
        assert abs(lwe_decrypt(ct, sk) + 5) < 100

    def test_many_roundtrips(self, sk):
        s = Sampler(3)
        for x in range(16):
            m = encode(x)
            got = lwe_decrypt(lwe_encrypt(m, sk, Q, s), sk) % Q
            err = min((got - m) % Q, (m - got) % Q)
            assert err < 100


class TestHomomorphic:
    def test_addition(self, sk):
        s = Sampler(4)
        a = lwe_encrypt(encode(3), sk, Q, s)
        b = lwe_encrypt(encode(5), sk, Q, s)
        got = lwe_decrypt(a + b, sk) % Q
        err = min((got - encode(8)) % Q, (encode(8) - got) % Q)
        assert err < 200

    def test_subtraction(self, sk):
        s = Sampler(5)
        a = lwe_encrypt(encode(7), sk, Q, s)
        b = lwe_encrypt(encode(2), sk, Q, s)
        got = lwe_decrypt(a - b, sk) % Q
        err = min((got - encode(5)) % Q, (encode(5) - got) % Q)
        assert err < 200

    def test_negation(self, sk):
        s = Sampler(6)
        a = lwe_encrypt(encode(1), sk, Q, s)
        got = lwe_decrypt(-a, sk)
        assert abs(got + encode(1)) < 200

    def test_scale(self, sk):
        s = Sampler(7)
        a = lwe_encrypt(encode(1), sk, Q, s)
        got = lwe_decrypt(a.scale(3), sk) % Q
        err = min((got - encode(3)) % Q, (encode(3) - got) % Q)
        assert err < 300

    def test_dim_mismatch_rejected(self, sk):
        s = Sampler(8)
        a = lwe_encrypt(0, sk, Q, s)
        other = lwe_encrypt(0, LweSecretKey.generate(DIM + 1, s), Q, s)
        with pytest.raises(ParameterError):
            _ = a + other


class TestModulusSwitch:
    def test_phase_preserved_proportionally(self, sk):
        s = Sampler(9)
        n = 64
        m = Q // 4  # phase q/4 should land near 2N/4
        ct = lwe_encrypt(m, sk, Q, s)
        switched = modulus_switch(ct, 2 * n)
        assert switched.q == 2 * n
        phase = lwe_phase(switched, sk) % (2 * n)
        target = 2 * n // 4
        err = min((phase - target) % (2 * n), (target - phase) % (2 * n))
        # Rounding noise ~ ||s||_1 / 2; generous bound.
        assert err <= DIM // 2 + 2

    def test_components_in_range(self, sk):
        s = Sampler(10)
        ct = modulus_switch(lwe_encrypt(123, sk, Q, s), 128)
        assert all(0 <= int(v) < 128 for v in ct.a)
        assert 0 <= ct.b < 128

    def test_size_accounting(self, sk):
        s = Sampler(11)
        ct = lwe_encrypt(0, sk, Q, s)
        assert ct.size_bytes() == (DIM + 1) * Q.bit_length() // 8


class TestKeySwitch:
    def test_switch_preserves_message(self):
        s = Sampler(12)
        sk_in = LweSecretKey.generate(48, s)
        sk_out = LweSecretKey.generate(DIM, s)
        gadget = GadgetVector(q=Q, base_bits=7, digits=4)
        ksk = LweKeySwitchKey.generate(sk_in, sk_out, Q, gadget, s)
        m = encode(6)
        ct = lwe_encrypt(m, sk_in, Q, s)
        switched = lwe_keyswitch(ct, ksk)
        assert switched.dim == DIM
        got = lwe_decrypt(switched, sk_out) % Q
        err = min((got - m) % Q, (m - got) % Q)
        assert err < Q // 64, f"keyswitch noise too large: {err}"

    def test_key_ciphertext_count(self):
        """Paper: the key-switching key is a vector of h*N*d LWE cts."""
        s = Sampler(13)
        sk_in = LweSecretKey.generate(16, s)
        sk_out = LweSecretKey.generate(8, s)
        gadget = GadgetVector(q=Q, base_bits=9, digits=3)
        ksk = LweKeySwitchKey.generate(sk_in, sk_out, Q, gadget, s)
        assert ksk.num_ciphertexts() == 16 * 3

    def test_dimension_mismatch_rejected(self, sk):
        s = Sampler(14)
        gadget = GadgetVector(q=Q, base_bits=7, digits=4)
        ksk = LweKeySwitchKey.generate(
            LweSecretKey.generate(10, s), sk, Q, gadget, s)
        ct = lwe_encrypt(0, sk, Q, s)  # dim 24 != 10
        with pytest.raises(ParameterError):
            lwe_keyswitch(ct, ksk)
