"""Area/power comparison vs ASIC proposals (paper Section VI-B).

FPGA and ASIC areas are not directly comparable, so the paper compares
the proxies that first-order power tracks: modular-multiplier count and
on-chip memory.  HEAP-1 has 512 multipliers / 43 MB; HEAP-8 has 4096 /
344 MB; the ASICs span 4096-20480 multipliers and 72-512 MB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .config import ClusterConfig, EIGHT_FPGA, SINGLE_FPGA


@dataclass(frozen=True)
class AreaPoint:
    name: str
    platform: str
    modular_multipliers: int
    onchip_memory_mb: float


#: ASIC comparator envelope quoted in Section VI-B.
ASIC_RANGE = [
    AreaPoint("F1", "ASIC", 4096, 72),
    AreaPoint("CraterLake", "ASIC", 11776, 256),
    AreaPoint("BTS-2", "ASIC", 8192, 512),
    AreaPoint("ARK", "ASIC", 20480, 512),
    AreaPoint("SHARP", "ASIC", 12288, 180),
]


def heap_area(cluster: ClusterConfig) -> AreaPoint:
    hw = cluster.node
    name = f"HEAP-{cluster.num_nodes}"
    return AreaPoint(
        name=name,
        platform="FPGA",
        modular_multipliers=hw.num_mod_units * cluster.num_nodes,
        onchip_memory_mb=round(hw.onchip_bytes * cluster.num_nodes / 1e6, 1),
    )


def area_comparison() -> List[AreaPoint]:
    """HEAP (1 and 8 FPGAs) alongside the ASIC envelope."""
    return [heap_area(SINGLE_FPGA), heap_area(EIGHT_FPGA)] + ASIC_RANGE


def heap_within_asic_envelope() -> bool:
    """The paper's takeaway: HEAP-8's compute/memory sit at the low end
    of the ASIC range, so power should be "comparable, if not better"."""
    heap8 = heap_area(EIGHT_FPGA)
    max_mult = max(p.modular_multipliers for p in ASIC_RANGE)
    max_mem = max(p.onchip_memory_mb for p in ASIC_RANGE)
    return (heap8.modular_multipliers <= max_mult and
            heap8.onchip_memory_mb <= max_mem)
