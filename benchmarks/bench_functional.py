"""Programmable bootstrapping: de-forked front-end perf + workload table.

Two parts, one ``BENCH_functional.json``:

1. **Front-end gate.**  The PBS front-end is ModSwitch+Extract (the old
   O(N^2) per-index Python loop, now a uint64 negacyclic gather) feeding
   BlindRotate (scalar reference schedule vs the batch tensor engine).
   Both compositions are timed interleaved on the same inputs at
   N in {2^8, 2^10}; the vectorized front-end must be >= 3x the scalar
   one at N = 2^10, batch = 32.  The untimed warmup pass doubles as the
   bit-identity check — every extracted LWE and every rotated
   accumulator must agree limb-for-limb before a timing counts.

2. **Workload table.**  The LUT workload library (sign, ReLU, threshold,
   k-bit quantisation) run end to end through ``FunctionalEvaluator``
   at toy parameters (N = 64): wall seconds per evaluate and max
   absolute error against plaintext ``f``, with inputs on exact
   phase-bucket centers a safe margin from each workload's
   discontinuities (the 2N-bucket LUT's contract — an input *at* a
   jump measures the quantiser, not the pipeline).

``python benchmarks/bench_functional.py --quick`` is the CI variant:
gate point only (N = 2^10, batch = 32) and a two-workload table.
"""

import os
import sys
import time

import numpy as np

from _timing import time_interleaved, write_bench_json
from conftest import emit

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import SwitchingKeySet, quantized, threshold
from repro.switching.functional import (
    FunctionalEvaluator,
    pbs_extract_reference,
    pbs_extract_vectorized,
    relu_fn,
    sigmoid_fn,
    sign_fn,
)
from repro.switching.luts import build_functional_lut
from repro.tfhe.batch_engine import BatchBlindRotateEngine
from repro.tfhe.blind_rotate import BlindRotateKey, blind_rotate_batch_reference
from repro.tfhe.glwe import GlweSecretKey
from repro.tfhe.lwe import LweCiphertext, LweSecretKey

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_functional.json")

#: LWE dimension for the front-end micro-benchmark (matches the blind
#: rotate bench so the numbers compose).
N_T = 8


def _frontend_setup(n):
    """Synthetic PBS front-end state at ring size ``n``: a level-0
    coefficient pair (c0, c1) mod q, a blind-rotate key, and a real
    functional LUT (single-limb basis, so the 2x14-bit gadget covers
    the whole modulus)."""
    basis = RnsBasis(find_ntt_primes(28, n, 1))
    q = basis.moduli[0]
    gadget = GadgetVector(q=q, base_bits=14, digits=2)
    s = Sampler(1234)
    lwe_sk = LweSecretKey.generate(N_T, s)
    glwe_sk = GlweSecretKey.generate(n, 1, s)
    brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)
    f = build_functional_lut(sign_fn, n, q, float(1 << 20), basis)
    rng = np.random.default_rng(7)
    c0 = np.asarray([int(v) for v in rng.integers(0, q, n)], dtype=object)
    c1 = np.asarray([int(v) for v in rng.integers(0, q, n)], dtype=object)
    return basis, q, brk, f, c0, c1


def _assert_lwes_identical(got, ref):
    for g, r in zip(got, ref):
        assert (np.asarray(g.a) == np.asarray(r.a)).all() and g.b == r.b


def _assert_glwes_identical(got, ref):
    for v, r in zip(got, ref):
        for pv, pr in zip(list(v.mask) + [v.body], list(r.mask) + [r.body]):
            for lv, lr in zip(pv.limbs, pr.limbs):
                assert (lv == lr).all()


def _frontend_results(quick):
    results = []
    combos = [(1 << 10, 32)] if quick else \
        [(n, b) for n in (1 << 8, 1 << 10) for b in (8, 32)]
    for n in sorted({c[0] for c in combos}):
        basis, q, brk, f, c0, c1 = _frontend_setup(n)
        engine = BatchBlindRotateEngine.for_key(brk, n, basis)
        two_n = 2 * n
        # Warmup + bit-identity: the de-forked kernels must agree.
        lwes_vec = pbs_extract_vectorized(c0, c1, n, two_n, q)
        lwes_ref = pbs_extract_reference(c0, c1, n, two_n, q)
        _assert_lwes_identical(lwes_vec, lwes_ref)

        def shrink(lwes, batch):
            # The extracted LWEs have dimension N; the bench's rotate
            # key deliberately uses a small synthetic n_t so the scalar
            # oracle stays tractable (as in bench_blind_rotate_batch).
            # Truncating the mask is the same on both sides, so the
            # bit-identity check above still covers the composition.
            return [LweCiphertext(a=lw.a[:N_T], b=lw.b, q=lw.q)
                    for lw in lwes[:batch]]

        for batch in sorted({c[1] for c in combos if c[0] == n}):
            sub = shrink(lwes_vec, batch)
            _assert_glwes_identical(engine.rotate_batch(f, sub),
                                    blind_rotate_batch_reference(f, sub, brk))

            def vec_side():
                lw = pbs_extract_vectorized(c0, c1, n, two_n, q)
                return engine.rotate_batch(f, shrink(lw, batch))

            def ref_side():
                lw = pbs_extract_reference(c0, c1, n, two_n, q)
                return blind_rotate_batch_reference(f, shrink(lw, batch),
                                                    brk)

            vec_s, ref_s = time_interleaved(vec_side, ref_side)
            results.append({
                "stage": "extract+blind_rotate",
                "n": n,
                "batch": batch,
                "n_t": N_T,
                "scalar_s": round(ref_s, 6),
                "vectorized_s": round(vec_s, 6),
                "speedup": round(ref_s / vec_s, 2),
            })
    return results


def _workload_table(quick):
    params = make_toy_params(n=64, limbs=3, limb_bits=30, scale_bits=28,
                             special_limbs=2)
    ctx = CkksContext(params.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(901))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(902))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(903), base_bits=4,
                                   error_std=0.6)
    fe = FunctionalEvaluator(ctx, swk)
    step = fe.quantisation_step()

    workloads = [("sign", sign_fn), ("relu", relu_fn)]
    if not quick:
        workloads += [("threshold(0.25)", threshold(0.25)),
                      ("quantized(sigmoid, 3-bit)",
                       quantized(sigmoid_fn, 3))]

    # Inputs sit on exact phase-bucket centers, >= 7 buckets (~0.22)
    # away from every workload's discontinuity (0 for sign/relu, 0.25
    # for the threshold): at toy parameters the extraction phase noise
    # spans a few buckets, so an input *at* a jump can legitimately
    # land on the other side — that would measure the quantiser, not
    # the pipeline.  Same margin discipline as tests/test_functional_eval.
    rng = np.random.default_rng(11)
    buckets = rng.choice(np.concatenate([np.arange(-28, -7),
                                         np.arange(15, 29)]),
                         ctx.n // 2, replace=True)
    values = buckets * step
    ct = ev.drop_to_level(ev.encrypt_coeffs(values), 0)

    rows = []
    for name, fn in workloads:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            out = fe.evaluate(ct, fn)
            best = min(best, time.perf_counter() - t0)
        decoded = ev.decrypt_coeffs_scaled(out, sk)[:ctx.n // 2]
        raw_fn = fn.fn if hasattr(fn, "fn") else fn  # LutSpec or callable
        expected = np.asarray([raw_fn(x) for x in values])
        rows.append({
            "workload": name,
            "n": ctx.n,
            "seconds": round(best, 6),
            "max_err": float(np.max(np.abs(decoded - expected))),
            "step": step,
        })
        # PBS output must be a usable fixed-point result, not noise
        # (same 0.3 envelope as the functional test suite, plus the
        # 3-bit staircase's half-level for the quantized workload).
        assert rows[-1]["max_err"] < 0.45, rows[-1]
    return rows


def _run(quick=False):
    frontend = _frontend_results(quick)
    table = _workload_table(quick)

    write_bench_json(JSON_PATH, "functional",
                     [dict(r) for r in frontend] + [dict(r) for r in table],
                     extra={"quick": quick})

    lines = ["PBS front-end: scalar loop+schedule vs gather+tensor engine",
             f"{'N':>6} {'batch':>6} {'scalar (s)':>12} {'vector (s)':>12} "
             f"{'speedup':>9}"]
    for r in frontend:
        lines.append(f"{r['n']:>6} {r['batch']:>6} {r['scalar_s']:>12.4f} "
                     f"{r['vectorized_s']:>12.4f} {r['speedup']:>8.1f}x")
    lines += ["", "LUT workloads end to end (FunctionalEvaluator, toy N=64)",
              f"{'workload':<24} {'seconds':>9} {'max err':>10} "
              f"{'bucket step':>12}"]
    for r in table:
        lines.append(f"{r['workload']:<24} {r['seconds']:>9.4f} "
                     f"{r['max_err']:>10.2e} {r['step']:>12.4f}")
    emit("functional", "\n".join(lines))

    gate = next(r for r in frontend
                if r["n"] == 1 << 10 and r["batch"] == 32)
    assert gate["speedup"] >= 3.0, (
        f"vectorized PBS front-end only {gate['speedup']}x "
        f"at N=2^10, batch=32")
    return frontend, table


def bench_functional():
    _run(quick=False)


if __name__ == "__main__":
    _run(quick="--quick" in sys.argv[1:])
    print("bench_functional: OK")
