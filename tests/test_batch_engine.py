"""Tests for the vectorized batched BlindRotate engine.

The central contract (ISSUE 1): the tensor engine must be *bit-identical*
to mapping the scalar ``blind_rotate`` oracle over the batch — every limb
of every output ciphertext equal, not just decryptable to the same value.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis
from repro.math.sampling import Sampler
from repro.tfhe.batch_engine import BatchBlindRotateEngine, blind_rotate_batch_vectorized
from repro.tfhe.blind_rotate import (
    BlindRotateKey,
    blind_rotate,
    blind_rotate_batch,
    blind_rotate_batch_reference,
    build_test_vector,
    get_monomial_cache,
    get_rgsw_one,
)
from repro.tfhe.glwe import GlweSecretKey
from repro.tfhe.lwe import LweCiphertext, LweSecretKey, lwe_encrypt
from repro.tfhe.rgsw import RgswCiphertext

N = 32
Q = find_ntt_primes(28, N, 1)[0]
BASIS = RnsBasis([Q])
GADGET = GadgetVector(q=Q, base_bits=7, digits=4)
N_T = 16


def _sign_lut(q, n):
    def g(t):
        t = t % (2 * n)
        return (q // 8) * (1 if t < n else -1) % q
    return g


def _assert_ciphertexts_identical(a, b, msg=""):
    assert a.h == b.h
    for pa, pb in zip(list(a.mask) + [a.body], list(b.mask) + [b.body]):
        assert pa.domain == pb.domain
        for la, lb in zip(pa.limbs, pb.limbs):
            assert np.array_equal(la, lb), msg


@pytest.fixture(scope="module")
def keys():
    s = Sampler(99)
    lwe_sk = LweSecretKey.generate(N_T, s)
    glwe_sk = GlweSecretKey.generate(N, 1, s)
    brk = BlindRotateKey.generate(lwe_sk, glwe_sk, BASIS, GADGET, s)
    return lwe_sk, glwe_sk, brk


class TestBitIdentity:
    def test_matches_scalar_oracle(self, keys):
        lwe_sk, _, brk = keys
        s = Sampler(1)
        f = build_test_vector(_sign_lut(Q, N), N, BASIS)
        cts = [lwe_encrypt(i * 7, lwe_sk, 2 * N, s, error_std=0.5) for i in range(6)]
        # Edge cases: an all-zero mask (every iteration skipped) and a
        # duplicate of an existing ciphertext (shared monomials).
        cts.append(LweCiphertext(a=np.zeros(N_T, dtype=np.int64), b=5, q=2 * N))
        cts.append(cts[0])
        vec = blind_rotate_batch(f, cts, brk, engine="vectorized")
        for j, (ct, out) in enumerate(zip(cts, vec)):
            oracle = blind_rotate(f, ct, brk)
            _assert_ciphertexts_identical(out, oracle, f"ciphertext {j}")

    def test_matches_reference_batch(self, keys):
        lwe_sk, _, brk = keys
        s = Sampler(2)
        f = build_test_vector(_sign_lut(Q, N), N, BASIS)
        cts = [lwe_encrypt(i, lwe_sk, 2 * N, s, error_std=0.5) for i in range(4)]
        vec = blind_rotate_batch(f, cts, brk, engine="vectorized")
        ref = blind_rotate_batch(f, cts, brk, engine="reference")
        for v, r in zip(vec, ref):
            _assert_ciphertexts_identical(v, r)

    @pytest.mark.parametrize("bits,limbs", [(28, 3), (36, 1), (36, 2)],
                             ids=["fast-L3", "wide-L1", "wide-L2"])
    def test_multi_limb_and_wide_moduli(self, bits, limbs):
        """Every dtype path: int64 fast, object wide, and CRT-composed RNS."""
        n = 16
        basis = RnsBasis(find_ntt_primes(bits, n, limbs))
        big_q = basis.product
        gadget = GadgetVector(q=big_q, base_bits=8, digits=3)
        s = Sampler(7)
        lwe_sk = LweSecretKey.generate(8, s)
        glwe_sk = GlweSecretKey.generate(n, 1, s)
        brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)
        f = build_test_vector(_sign_lut(big_q, n), n, basis)
        cts = [lwe_encrypt(i * 3, lwe_sk, 2 * n, s, error_std=0.5) for i in range(4)]
        vec = blind_rotate_batch_vectorized(f, cts, brk)
        ref = blind_rotate_batch_reference(f, cts, brk)
        for v, r in zip(vec, ref):
            _assert_ciphertexts_identical(v, r)

    def test_h2_glwe_dimension(self):
        """h = 2 exercises the non-trivial (h+1)-column tensor layout."""
        n = 16
        basis = RnsBasis(find_ntt_primes(26, n, 1))
        gadget = GadgetVector(q=basis.product, base_bits=6, digits=3)
        s = Sampler(21)
        lwe_sk = LweSecretKey.generate(6, s)
        glwe_sk = GlweSecretKey.generate(n, 2, s)
        brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)
        f = build_test_vector(_sign_lut(basis.product, n), n, basis)
        cts = [lwe_encrypt(i, lwe_sk, 2 * n, s, error_std=0.5) for i in range(3)]
        vec = blind_rotate_batch_vectorized(f, cts, brk)
        ref = blind_rotate_batch_reference(f, cts, brk)
        for v, r in zip(vec, ref):
            _assert_ciphertexts_identical(v, r)


class TestDispatchAndValidation:
    def test_empty_batch(self, keys):
        _, __, brk = keys
        f = build_test_vector(_sign_lut(Q, N), N, BASIS)
        assert blind_rotate_batch(f, [], brk) == []
        assert blind_rotate_batch(f, [], brk, engine="reference") == []

    def test_unknown_engine_rejected(self, keys):
        _, __, brk = keys
        f = build_test_vector(_sign_lut(Q, N), N, BASIS)
        with pytest.raises(ParameterError):
            blind_rotate_batch(f, [], brk, engine="quantum")

    def test_incompatible_ciphertext_rejected(self, keys):
        lwe_sk, _, brk = keys
        s = Sampler(3)
        f = build_test_vector(_sign_lut(Q, N), N, BASIS)
        bad = lwe_encrypt(0, lwe_sk, 4 * N, s)  # wrong modulus
        with pytest.raises(ParameterError):
            blind_rotate_batch(f, [bad], brk, engine="vectorized")

    def test_engine_cached_per_key(self, keys):
        _, __, brk = keys
        a = BatchBlindRotateEngine.for_key(brk, N, BASIS)
        b = BatchBlindRotateEngine.for_key(brk, N, BASIS)
        assert a is b

    def test_mismatched_ring_rejected(self, keys):
        _, __, brk = keys
        other_basis = RnsBasis(find_ntt_primes(26, N, 1))
        with pytest.raises(ParameterError):
            BatchBlindRotateEngine(brk, N, other_basis)


class TestSharedCaches:
    def test_monomial_cache_shared(self):
        assert get_monomial_cache(N, BASIS) is get_monomial_cache(N, BASIS)

    def test_rgsw_one_shared(self):
        assert get_rgsw_one(1, N, BASIS, GADGET) is get_rgsw_one(1, N, BASIS, GADGET)

    def test_rgsw_one_distinct_per_gadget(self):
        other = GadgetVector(q=Q, base_bits=9, digits=3)
        assert get_rgsw_one(1, N, BASIS, GADGET) is not get_rgsw_one(1, N, BASIS, other)


class TestTensorRoundTrip:
    def test_rgsw_limb_tensor_roundtrip(self, keys):
        _, __, brk = keys
        rgsw = brk.plus[0]
        tensors = rgsw.to_limb_tensors()
        assert tensors[0].shape == ((rgsw.h + 1) * GADGET.digits, rgsw.h + 1, N)
        back = RgswCiphertext.from_limb_tensors(tensors, BASIS, GADGET)
        for comp_a, comp_b in zip(rgsw.rows, back.rows):
            for row_a, row_b in zip(comp_a, comp_b):
                _assert_ciphertexts_identical(row_a.to_eval(), row_b)

    def test_row_layout_matches_gadget_digit_order(self, keys):
        """Row c*d + k of the tensor must hold rows[c][k]."""
        _, __, brk = keys
        rgsw = brk.minus[1]
        tensors = rgsw.to_limb_tensors()
        d = GADGET.digits
        for c in range(rgsw.h + 1):
            for k in range(d):
                row = rgsw.rows[c][k].to_eval()
                for col, poly in enumerate(list(row.mask) + [row.body]):
                    assert np.array_equal(tensors[0][c * d + k, col], poly.limbs[0])


class TestGadgetTensorDecompose:
    def test_int64_matches_object(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, Q, size=(3, 2, 8), dtype=np.int64)
        fast = GADGET.decompose_tensor(vals)
        slow = GADGET.decompose_tensor(vals.astype(object))
        assert len(fast) == GADGET.digits
        for f, s in zip(fast, slow):
            assert f.dtype == np.int64
            assert np.array_equal(f.astype(object), s)

    def test_matches_scalar_decompose(self):
        rng = np.random.default_rng(1)
        vals = rng.integers(0, Q, size=16, dtype=np.int64)
        tensor = GADGET.decompose_tensor(vals)
        scalar = GADGET.decompose(vals.astype(object))
        for t, s in zip(tensor, scalar):
            assert np.array_equal(t.astype(object), s)


class TestBootstrapRouting:
    def test_bootstrap_engines_bit_identical(self):
        """Algorithm 2's N-way fan-out through both backends, end to end."""
        from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
        from repro.params import make_toy_params
        from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet

        params = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                                 special_limbs=2)
        ctx = CkksContext(params.ckks, dnum=2)
        gen = CkksKeyGenerator(ctx, Sampler(41))
        sk = gen.secret_key()
        ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(42))
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(43), base_bits=8,
                                       error_std=0.8)
        ct = ev.encrypt(0.25, level=0)
        fast = SchemeSwitchBootstrapper(ctx, swk).bootstrap(ct)
        slow = SchemeSwitchBootstrapper(
            ctx, swk, blind_rotate_engine="reference").bootstrap(ct)
        for pa, pb in zip((fast.c0, fast.c1), (slow.c0, slow.c1)):
            for la, lb in zip(pa.to_coeff().limbs, pb.to_coeff().limbs):
                assert np.array_equal(la, lb)
