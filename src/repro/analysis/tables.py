"""Regenerate every table of the paper's evaluation section.

Each ``table*`` function returns ``(headers, rows)`` where rows are
dictionaries carrying the paper's reported value, our model's value and
the recomputed speedups, so the benchmark harness can print the table
and EXPERIMENTS.md can record paper-vs-measured side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..apps.logistic_regression import LrOpCounts, lr_iteration_model
from ..apps.resnet import resnet_inference_model
from ..hardware.baselines import (
    HEAP_LR_ITER_S,
    HEAP_RESNET_S,
    HEAP_TABLE3,
    HEAP_TABLE5,
    TABLE3_REFERENCES,
    TABLE4_REFERENCES,
    TABLE5_REFERENCES,
    TABLE6_REFERENCES,
    TABLE7_REFERENCES,
    TABLE8_PAPER,
)
from ..hardware.cluster import ClusterBootstrapModel
from ..hardware.fpga import SingleFpgaModel
from ..hardware.metrics import cycle_speedup, speedup, t_mult_a_slot
from ..hardware.resources import PAPER_UTILIZED, ResourceModel
from ..hardware.traffic import (
    ConventionalKeyTraffic,
    key_traffic_reduction,
    scheme_switching_key_bytes,
)
from ..params import make_heap_params

Row = Dict[str, object]
Table = Tuple[List[str], List[Row]]

HEAP_FREQ_GHZ = 0.3


def _models(fpga: Optional[SingleFpgaModel] = None,
            cluster: Optional[ClusterBootstrapModel] = None):
    return fpga or SingleFpgaModel(), cluster or ClusterBootstrapModel()


def table2_resources() -> Table:
    """Table II: FPGA resource utilisation."""
    headers = ["Resource", "Available", "Utilized (model)", "Utilized (paper)",
               "% Utilization"]
    report = ResourceModel().report()
    names = {"luts": "LUTs", "ffs": "FFs", "dsps": "DSPs",
             "bram": "BRAM blocks", "uram": "URAM blocks"}
    rows = []
    for key, rep in report.items():
        rows.append({
            "Resource": names[key],
            "Available": rep.available,
            "Utilized (model)": rep.utilized,
            "Utilized (paper)": PAPER_UTILIZED[key],
            "% Utilization": round(rep.percent, 2),
        })
    return headers, rows


def table3_basic_ops(fpga: Optional[SingleFpgaModel] = None) -> Table:
    """Table III: basic FHE op latencies and speedups (single FPGA)."""
    fpga, _ = _models(fpga, ClusterBootstrapModel.__new__(ClusterBootstrapModel))
    headers = ["Operation", "HEAP model (ms)", "HEAP paper (ms)",
               "vs FAB", "vs GPU", "vs GME", "vs TFHE",
               "paper vs FAB", "paper vs GPU", "paper vs GME", "paper vs TFHE"]
    paper_speedups = {
        "add": {"FAB": 40, "GPU": 160, "GME": 28},
        "mult": {"FAB": 61.1, "GPU": 105.71, "GME": 16.57},
        "rescale": {"FAB": 19, "GPU": 49, "GME": 6.9},
        "rotate": {"FAB": 62.8, "GPU": 102, "GME": 14.56},
        "blind_rotate": {"TFHE-lib": 156.7},
    }
    rows = []
    for op in ("add", "mult", "rescale", "rotate", "blind_rotate"):
        ours = fpga.latency_s(op)
        row: Row = {"Operation": op,
                    "HEAP model (ms)": ours * 1e3,
                    "HEAP paper (ms)": HEAP_TABLE3[op] * 1e3}
        for ref in TABLE3_REFERENCES:
            col = "vs TFHE" if ref.name == "TFHE-lib" else f"vs {ref.name}"
            if op in ref.metrics:
                row[col] = round(speedup(ref.metrics[op], ours), 2)
            else:
                row[col] = None
        for name, val in paper_speedups[op].items():
            col = "paper vs TFHE" if name == "TFHE-lib" else f"paper vs {name}"
            row[col] = val
        rows.append(row)
    return headers, rows


def table4_ntt(fpga: Optional[SingleFpgaModel] = None) -> Table:
    """Table IV: NTT throughput (N=2^13)."""
    fpga, _ = _models(fpga, ClusterBootstrapModel.__new__(ClusterBootstrapModel))
    ours = fpga.ntt_throughput_ops_per_s()
    headers = ["System", "NTT ops/s", "HEAP speedup (model)", "HEAP speedup (paper)"]
    paper = {"FAB": 2.04, "HEAX": 2.34}
    rows = [{"System": "HEAP", "NTT ops/s": ours,
             "HEAP speedup (model)": 1.0, "HEAP speedup (paper)": 1.0}]
    for ref in TABLE4_REFERENCES:
        theirs = ref.metrics["ntt_ops_per_s"]
        rows.append({"System": ref.name, "NTT ops/s": theirs,
                     "HEAP speedup (model)": round(ours / theirs, 2),
                     "HEAP speedup (paper)": paper[ref.name]})
    return headers, rows


def heap_t_mult_a_slot(fpga: SingleFpgaModel, cluster: ClusterBootstrapModel,
                       slots: int = 4096) -> float:
    """Eq. 3 for HEAP: 1.5 ms bootstrap, 5 post-bootstrap levels."""
    levels = fpga.params.ckks.max_limbs - 1  # depth-1 bootstrap leaves L-1
    mults = [fpga.latency_s("mult")] * levels
    return t_mult_a_slot(cluster.bootstrap_latency_s(slots), mults, slots)


def table5_bootstrap(fpga: Optional[SingleFpgaModel] = None,
                     cluster: Optional[ClusterBootstrapModel] = None) -> Table:
    """Table V: bootstrapping T_mult,a/slot and speedups vs 9 systems."""
    fpga, cluster = _models(fpga, cluster)
    ours = heap_t_mult_a_slot(fpga, cluster)
    paper_time = {"Lattigo": 3283, "GPU": 23.10, "GME": 2.39, "F1": 8208,
                  "BTS-2": 1.47, "CraterLake": 13.96, "ARK": 0.45,
                  "SHARP": 0.39, "FAB": 15.39}
    headers = ["Work", "Freq (GHz)", "Slots", "T_mult,a/slot (us)",
               "Speedup time (model)", "Speedup cycles (model)",
               "Speedup time (paper)"]
    rows = []
    for ref in TABLE5_REFERENCES:
        theirs = ref.metrics["t_mult_a_slot"]
        rows.append({
            "Work": ref.name, "Freq (GHz)": ref.freq_ghz, "Slots": ref.slots,
            "T_mult,a/slot (us)": theirs * 1e6,
            "Speedup time (model)": round(speedup(theirs, ours), 2),
            "Speedup cycles (model)": round(cycle_speedup(
                theirs, ref.freq_ghz, ours, HEAP_FREQ_GHZ), 2),
            "Speedup time (paper)": paper_time[ref.name],
        })
    rows.append({"Work": "HEAP (model)", "Freq (GHz)": HEAP_FREQ_GHZ,
                 "Slots": 4096, "T_mult,a/slot (us)": ours * 1e6,
                 "Speedup time (model)": 1.0, "Speedup cycles (model)": 1.0,
                 "Speedup time (paper)": None})
    rows.append({"Work": "HEAP (paper)", "Freq (GHz)": HEAP_FREQ_GHZ,
                 "Slots": 4096,
                 "T_mult,a/slot (us)": HEAP_TABLE5.metrics["t_mult_a_slot"] * 1e6,
                 "Speedup time (model)": None, "Speedup cycles (model)": None,
                 "Speedup time (paper)": None})
    return headers, rows


def table6_lr(fpga: Optional[SingleFpgaModel] = None,
              cluster: Optional[ClusterBootstrapModel] = None,
              counts: LrOpCounts = LrOpCounts()) -> Table:
    """Table VI: LR training time per iteration."""
    fpga, cluster = _models(fpga, cluster)
    ours, share = lr_iteration_model(fpga, cluster, counts)
    paper_speedup = {"Lattigo": 5293, "GPU": 111, "GME": 7.7, "F1": 146,
                     "BTS-2": 4, "ARK": 1.14, "SHARP": 0.29, "FAB": 14.71,
                     "FAB-2": 11.57}
    headers = ["Work", "Time (s)", "Speedup time (model)",
               "Speedup cycles (model)", "Speedup time (paper)"]
    rows = []
    for ref in TABLE6_REFERENCES:
        theirs = ref.metrics["lr_iter"]
        rows.append({
            "Work": ref.name, "Time (s)": theirs,
            "Speedup time (model)": round(speedup(theirs, ours), 2),
            "Speedup cycles (model)": round(cycle_speedup(
                theirs, ref.freq_ghz, ours, HEAP_FREQ_GHZ), 2),
            "Speedup time (paper)": paper_speedup[ref.name],
        })
    rows.append({"Work": "HEAP (model)", "Time (s)": ours,
                 "Speedup time (model)": 1.0, "Speedup cycles (model)": 1.0,
                 "Speedup time (paper)": None})
    rows.append({"Work": "HEAP (paper)", "Time (s)": HEAP_LR_ITER_S,
                 "Speedup time (model)": None, "Speedup cycles (model)": None,
                 "Speedup time (paper)": None})
    return headers, rows


def table7_resnet(fpga: Optional[SingleFpgaModel] = None,
                  cluster: Optional[ClusterBootstrapModel] = None) -> Table:
    """Table VII: ResNet-20 inference."""
    fpga, cluster = _models(fpga, cluster)
    ours, share = resnet_inference_model(fpga, cluster)
    paper_speedup = {"CPU": 39708, "GME": 3.7, "CraterLake": 1.20,
                     "ARK": 0.47, "SHARP": 0.37}
    headers = ["Work", "Time (s)", "Speedup time (model)",
               "Speedup cycles (model)", "Speedup time (paper)"]
    rows = []
    for ref in TABLE7_REFERENCES:
        theirs = ref.metrics["resnet"]
        rows.append({
            "Work": ref.name, "Time (s)": theirs,
            "Speedup time (model)": round(speedup(theirs, ours), 2),
            "Speedup cycles (model)": round(cycle_speedup(
                theirs, ref.freq_ghz, ours, HEAP_FREQ_GHZ), 2),
            "Speedup time (paper)": paper_speedup[ref.name],
        })
    rows.append({"Work": "HEAP (model)", "Time (s)": ours,
                 "Speedup time (model)": 1.0, "Speedup cycles (model)": 1.0,
                 "Speedup time (paper)": None})
    rows.append({"Work": "HEAP (paper)", "Time (s)": HEAP_RESNET_S,
                 "Speedup time (model)": None, "Speedup cycles (model)": None,
                 "Speedup time (paper)": None})
    return headers, rows


def table8_ablation(measured_cpu: Optional[Dict[str, Dict[str, float]]] = None
                    ) -> Table:
    """Table VIII: scheme-switching vs hardware speedup split.

    ``measured_cpu`` may supply this repo's *measured* Python runtimes for
    the "CKKS only on CPU" and "SS on CPU" columns (at toy scale), in
    which case the measured speedup-1 column is reported alongside the
    paper's; the SS-on-HEAP column always comes from the hardware model.
    """
    fpga, cluster = _models(None, None)
    model_heap = {
        "bootstrapping": cluster.bootstrap_latency_s(4096),
        "lr_training": lr_iteration_model(fpga, cluster)[0],
        "resnet20": resnet_inference_model(fpga, cluster)[0],
    }
    headers = ["Workload", "CKKS-CPU (paper s)", "SS-CPU (paper s)",
               "Speedup1 (paper)", "Speedup1 (measured)",
               "SS-HEAP (model s)", "Speedup2 (model)", "Speedup2 (paper)"]
    rows = []
    for workload, vals in TABLE8_PAPER.items():
        s1_paper = vals["ckks_cpu"] / vals["ss_cpu"]
        s1_measured = None
        if measured_cpu and workload in measured_cpu:
            m = measured_cpu[workload]
            s1_measured = round(m["ckks_cpu"] / m["ss_cpu"], 2)
        heap_s = model_heap[workload]
        rows.append({
            "Workload": workload,
            "CKKS-CPU (paper s)": vals["ckks_cpu"],
            "SS-CPU (paper s)": vals["ss_cpu"],
            "Speedup1 (paper)": round(s1_paper, 1),
            "Speedup1 (measured)": s1_measured,
            "SS-HEAP (model s)": heap_s,
            "Speedup2 (model)": round(vals["ss_cpu"] / heap_s, 1),
            "Speedup2 (paper)": round(vals["ss_cpu"] / vals["ss_heap"], 1),
        })
    return headers, rows


def key_size_table() -> Table:
    """Section III-C size audit + the 18x key-traffic claim."""
    params = make_heap_params()
    tfhe = params.ckks, params.tfhe
    log_q = params.ckks.log_q_total
    conv = ConventionalKeyTraffic()
    ss_bytes = scheme_switching_key_bytes(params.tfhe, log_q)
    headers = ["Quantity", "Model", "Paper"]
    rows = [
        {"Quantity": "RLWE ciphertext (MB)",
         "Model": round(2 * log_q * params.ckks.n / 8 / 1e6, 3), "Paper": 0.44},
        {"Quantity": "LWE ciphertext (KB)",
         "Model": round((params.tfhe.n_t + 1) * 36 / 8 / 1e3, 2), "Paper": 2.3},
        {"Quantity": "brk entry (MB)",
         "Model": round(ss_bytes / params.tfhe.n_t / 1e6, 2), "Paper": 3.52},
        {"Quantity": "total brk (GB)",
         "Model": round(ss_bytes / 1e9, 2), "Paper": 1.76},
        {"Quantity": "conventional key traffic (GB)",
         "Model": round(conv.total_bytes / 1e9, 1), "Paper": 32.0},
        {"Quantity": "key-traffic reduction (x)",
         "Model": round(key_traffic_reduction(params.tfhe, log_q), 1),
         "Paper": 18.0},
    ]
    return headers, rows


def format_table(headers: List[str], rows: List[Row],
                 float_fmt: str = "{:.4g}") -> str:
    """Plain-text rendering used by the benchmark harness."""
    def fmt(v):
        if v is None:
            return "-"
        if isinstance(v, float):
            return float_fmt.format(v)
        return str(v)

    cells = [headers] + [[fmt(r.get(h)) for h in headers] for r in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for i, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
