"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish parameter problems from runtime failures.
"""

from __future__ import annotations

from typing import Sequence, Tuple


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ParameterError(ReproError, ValueError):
    """A scheme or hardware parameter is malformed or unsupported."""


class KeyError_(ReproError, KeyError):
    """A required evaluation/rotation/bootstrapping key is missing."""


class LevelError(ReproError):
    """A ciphertext has too few remaining limbs for the requested op."""


class ScaleMismatchError(ReproError):
    """Two ciphertexts with incompatible scales were combined."""


class NoiseBudgetExceeded(ReproError):
    """Decryption noise exceeded the correctness bound."""


class WireFormatError(ReproError):
    """A framed wire blob failed its integrity check (bad CRC, truncated
    payload, or a header that does not match the payload length)."""


class SharedBufferError(ReproError):
    """A shared-memory buffer could not be published or attached.

    Raised when an array is unsuitable for zero-copy sharing (``object``
    dtype, non-contiguous layout), when a manifest does not match the
    block it claims to describe (size or CRC32 mismatch — the attach-time
    integrity check), or when the named block no longer exists."""


class ServiceOverloadError(ReproError):
    """The bootstrap service's request queue is full.

    Backpressure, not failure: the request was **not** enqueued and the
    caller should retry after ``retry_after`` seconds (the service's
    estimate of when queue room frees up, derived from its recent
    per-request service time — never negative, never zero)."""

    def __init__(self, message: str, retry_after: float = 0.1) -> None:
        super().__init__(message)
        self.retry_after: float = max(float(retry_after), 1e-3)


class ServiceClosedError(ReproError):
    """A request was submitted to a bootstrap service that has been
    stopped (or never started).  Requests accepted *before* the stop are
    still drained to completion; only new submissions are refused."""


class ClusterExecutionError(ReproError):
    """The distributed bootstrap could not complete.

    Raised by the cluster executor only after recovery has been
    exhausted: either no healthy node remains to take a failed fan-out
    slice, or the per-fan-out retry budget ran out (a guard against
    faults injected persistently on every node).  ``failed_nodes`` lists
    the node ids declared dead, ``pending_slices`` the ``(start, stop)``
    LWE ranges that never produced verified results.
    """

    def __init__(self, message: str,
                 failed_nodes: Sequence[int] = (),
                 pending_slices: Sequence[Tuple[int, int]] = ()) -> None:
        super().__init__(message)
        self.failed_nodes: Tuple[int, ...] = tuple(failed_nodes)
        self.pending_slices: Tuple[Tuple[int, int], ...] = tuple(pending_slices)
