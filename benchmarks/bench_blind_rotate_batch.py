"""Scalar vs vectorized BlindRotate batch engine (ISSUE 1 perf gate).

Times the reference per-ciphertext schedule against the structure-of-
arrays tensor engine at N in {2^8, 2^10} and batch in {8, 32}, and emits
``BENCH_blind_rotate.json`` at the repo root so successive PRs can track
the speedup trajectory.  The acceptance gate is a >= 5x speedup at
N = 2^10, batch = 32.

Methodology: both engines run once untimed first — that pass doubles as
the bit-identity check (the engines must agree on every limb of every
output before a timing counts) and as warmup, so the one-time costs
(key-tensor lift, monomial cache fill, workspace allocation) do not
distort either side.  Each engine is then timed interleaved via the
shared ``_timing.time_interleaved`` loop and the minimum is reported.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_blind_rotate_batch.py -q``
(the bench is excluded from tier-1 ``testpaths``).
"""

import os

from _timing import time_interleaved, write_bench_json
from conftest import emit

from repro.math.gadget import GadgetVector
from repro.math.modular import find_ntt_primes
from repro.math.rns import RnsBasis
from repro.math.sampling import Sampler
from repro.tfhe.batch_engine import BatchBlindRotateEngine
from repro.tfhe.blind_rotate import (
    BlindRotateKey,
    blind_rotate_batch_reference,
    build_test_vector,
)
from repro.tfhe.glwe import GlweSecretKey
from repro.tfhe.lwe import LweSecretKey, lwe_encrypt

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_blind_rotate.json")

#: LWE dimension for the micro-benchmark: small enough that the scalar
#: oracle finishes in seconds at N=2^10, large enough to amortise setup.
N_T = 8


def _setup(n):
    q = find_ntt_primes(28, n, 1)[0]
    basis = RnsBasis([q])
    gadget = GadgetVector(q=q, base_bits=14, digits=2)
    s = Sampler(1234)
    lwe_sk = LweSecretKey.generate(N_T, s)
    glwe_sk = GlweSecretKey.generate(n, 1, s)
    brk = BlindRotateKey.generate(lwe_sk, glwe_sk, basis, gadget, s)

    def g(t):
        t = t % (2 * n)
        return (q // 8) * (1 if t < n else -1) % q

    f = build_test_vector(g, n, basis)
    return basis, lwe_sk, brk, f


def _assert_bit_identical(vec, ref):
    for v, r in zip(vec, ref):
        for pv, pr in zip(list(v.mask) + [v.body], list(r.mask) + [r.body]):
            for lv, lr in zip(pv.limbs, pr.limbs):
                assert (lv == lr).all()


def bench_blind_rotate_batch_engines():
    results = []
    for n in (1 << 8, 1 << 10):
        basis, lwe_sk, brk, f = _setup(n)
        s = Sampler(42)
        engine = BatchBlindRotateEngine.for_key(brk, n, basis)
        for batch in (8, 32):
            cts = [lwe_encrypt(i * 5, lwe_sk, 2 * n, s, error_std=0.5)
                   for i in range(batch)]
            # Warmup + correctness: the engines must agree bit-for-bit.
            _assert_bit_identical(engine.rotate_batch(f, cts),
                                  blind_rotate_batch_reference(f, cts, brk))
            vec_s, ref_s = time_interleaved(
                lambda: engine.rotate_batch(f, cts),
                lambda: blind_rotate_batch_reference(f, cts, brk))
            results.append({
                "n": n,
                "batch": batch,
                "n_t": N_T,
                "scalar_s": round(ref_s, 6),
                "vectorized_s": round(vec_s, 6),
                "speedup": round(ref_s / vec_s, 2),
            })

    write_bench_json(JSON_PATH, "blind_rotate_batch", results)

    lines = ["BlindRotate batch: scalar reference vs vectorized tensor engine",
             f"{'N':>6} {'batch':>6} {'scalar (s)':>12} {'vector (s)':>12} {'speedup':>9}"]
    for r in results:
        lines.append(f"{r['n']:>6} {r['batch']:>6} {r['scalar_s']:>12.4f} "
                     f"{r['vectorized_s']:>12.4f} {r['speedup']:>8.1f}x")
    emit("blind_rotate_batch", "\n".join(lines))

    gate = next(r for r in results if r["n"] == 1 << 10 and r["batch"] == 32)
    assert gate["speedup"] >= 5.0, (
        f"vectorized engine only {gate['speedup']}x at N=2^10, batch=32")
