"""HEAP reproduction: CKKS-TFHE scheme-switching bootstrapping in Python.

Public entry points:

* :mod:`repro.params` -- parameter sets (paper + toy).
* :mod:`repro.ckks` -- the RNS-CKKS scheme with a conventional bootstrap.
* :mod:`repro.tfhe` -- the TFHE scheme (LWE/RGSW/BlindRotate/Extract).
* :mod:`repro.switching` -- the paper's scheme-switching bootstrap.
* :mod:`repro.hardware` -- the HEAP accelerator performance model.
* :mod:`repro.apps` -- LR training and ResNet-20 workloads.
"""

from .params import (
    CkksParams,
    HeapParams,
    TfheParams,
    make_conventional_params,
    make_heap_params,
    make_toy_params,
)

__version__ = "1.0.0"

__all__ = [
    "CkksParams",
    "HeapParams",
    "TfheParams",
    "make_conventional_params",
    "make_heap_params",
    "make_toy_params",
    "__version__",
]
