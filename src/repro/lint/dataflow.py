"""Repo-wide symbol table and call graph for the HL1xx concurrency rules.

The HL0xx rules are single-file: each invariant they check is visible in
one module's AST.  Concurrency invariants are not — whether a write to a
module-level cache races depends on *who can reach the writing function*:
an ``async def`` coroutine, a ``threading.Thread`` target, a function
shipped to ``asyncio.to_thread``, or a ``multiprocessing`` worker main
three modules away.  This module builds the cross-module picture those
rules consume:

* :class:`ProjectIndex` — every function/method of every analyzed file,
  keyed by qualified name (``module.Class.method``), plus each module's
  mutable module-level and class-level state (dicts, lists, sets,
  ndarrays — the cache shapes).
* A call graph over those functions.  Resolution is deliberately
  lightweight and *over-approximate*: plain names resolve through local
  definitions and ``from x import y`` aliases; ``self.m()`` prefers the
  enclosing class; any other ``obj.m()`` links to every project function
  named ``m`` (minus a denylist of ubiquitous names like ``get``/
  ``items`` that would connect everything to everything).  For a lint
  pass, reaching too much is safe — a finding needs a *write* to shared
  state, not mere reachability — while reaching too little silently
  hides races.
* Entry points and a BFS reachability map: which functions can execute
  on a worker thread, inside the event loop, or as a spawned process
  main, and through which entry they were reached (findings report the
  chain so the reader can judge the path).

Everything is stdlib :mod:`ast`; the index is rebuilt per lint run (the
tree is a few hundred functions — milliseconds, not a cost worth a
cache that could go stale).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .core import FileContext

#: Attribute-call names too common to resolve by bare name: linking every
#: ``d.get(k)`` to ``LruKeyCache.get`` would make the whole repo reachable
#: from any entry point through dict/list/set method homonyms.
UBIQUITOUS_METHOD_NAMES = frozenset({
    "get", "set", "add", "append", "extend", "insert", "pop", "update",
    "items", "keys", "values", "clear", "copy", "remove", "discard",
    "join", "split", "strip", "read", "write", "close", "open", "send",
    "recv", "put", "sort", "count", "index", "format", "encode", "decode",
    "setdefault", "reshape", "view", "astype", "stack", "mean", "sum",
})

#: Callables whose first argument runs on a worker thread / executor.
THREAD_DISPATCHERS = frozenset({"to_thread", "run_in_executor", "submit",
                                "map", "apply_async", "starmap"})

#: Constructors whose ``target=`` keyword becomes a thread/process main.
TARGET_CONSTRUCTORS = {
    "Thread": "thread",
    "Timer": "thread",
    "Process": "process",
}

#: np.ndarray-producing constructors (module-level arrays are shared state).
NDARRAY_CONSTRUCTORS = frozenset({"array", "zeros", "ones", "empty",
                                  "full", "arange", "asarray"})

MUTABLE_CONSTRUCTORS = frozenset({"dict", "list", "set", "bytearray",
                                  "OrderedDict", "defaultdict", "deque",
                                  "Counter"}) | NDARRAY_CONSTRUCTORS


def call_name(node: ast.Call) -> str:
    """Trailing identifier of the called object (``a.b.c()`` -> ``c``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` rendered as a dotted string (empty for other shapes)."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


def module_name_for_path(path: str) -> str:
    """Dotted module name derived from a repo-relative path
    (``src/repro/math/ntt.py`` -> ``repro.math.ntt``)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    while parts and parts[0] in ("src", ".", ""):
        parts = parts[1:]
    return ".".join(parts)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str          # trailing identifier
    dotted: str        # full dotted callee ('' when not a plain chain)
    node: ast.Call
    #: Receiver of a method call ('' for plain names; 'self'/'cls'
    #: trigger enclosing-class resolution).
    receiver: str


@dataclass
class FunctionInfo:
    """One function or method of the analyzed project."""

    qualname: str                     # module.Class.method / module.func
    name: str                         # bare name
    module: str
    cls: Optional[str]
    node: ast.AST                     # FunctionDef | AsyncFunctionDef
    ctx: FileContext
    is_async: bool
    #: Bare names of functions *defined lexically inside* this one
    #: (closures — relevant to the pickle rule).
    nested: Set[str] = field(default_factory=set)
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class MutableGlobal:
    """One module-level (or class-level) mutable binding."""

    module: str
    name: str                        # 'CACHE' or 'Class.attr'
    kind: str                        # 'dict' / 'list' / 'set' / 'ndarray'
    node: ast.AST                    # the defining assignment
    line: int


@dataclass
class EntryPoint:
    """Why a function counts as a concurrent execution root."""

    qualname: str
    kind: str                        # 'async' / 'thread' / 'process'
    detail: str


class ProjectIndex:
    """Symbol table + call graph + entry-point reachability over a set of
    parsed :class:`~repro.lint.core.FileContext` objects."""

    def __init__(self, contexts: Sequence[FileContext]):
        self.contexts = list(contexts)
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        #: module -> {alias: imported bare name} from ``from x import y``.
        self._import_aliases: Dict[str, Dict[str, str]] = {}
        self.mutable_globals: Dict[str, List[MutableGlobal]] = {}
        self.entry_points: List[EntryPoint] = []
        self.edges: Dict[str, Set[str]] = {}
        #: qualname -> (entry kind, human-readable chain description).
        self.reachable_from: Dict[str, Tuple[str, str]] = {}
        for ctx in self.contexts:
            self._index_module(ctx)
        self._build_edges()
        self._find_entry_points()
        self._propagate_reachability()

    # -- indexing -----------------------------------------------------------

    def _index_module(self, ctx: FileContext) -> None:
        module = module_name_for_path(ctx.path)
        aliases: Dict[str, str] = {}
        self._import_aliases[module] = aliases
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    aliases[alias.asname or alias.name] = alias.name
        self._index_scope(ctx, module, ctx.tree, cls=None)
        self.mutable_globals[module] = list(
            self._collect_mutable_globals(module, ctx.tree))

    def _index_scope(self, ctx: FileContext, module: str, scope: ast.AST,
                     cls: Optional[str]) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                self._index_scope(ctx, module, node, cls=node.name)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(ctx, module, node, cls)

    def _index_function(self, ctx: FileContext, module: str, node: ast.AST,
                        cls: Optional[str]) -> None:
        name = getattr(node, "name", "<lambda>")
        qual = f"{module}.{cls}.{name}" if cls else f"{module}.{name}"
        info = FunctionInfo(
            qualname=qual, name=name, module=module, cls=cls, node=node,
            ctx=ctx, is_async=isinstance(node, ast.AsyncFunctionDef))
        for child in ast.walk(node):
            if child is node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.nested.add(child.name)
                # Nested defs are indexed too (they may be thread targets).
                self._index_function(ctx, module, child, cls)
            elif isinstance(child, ast.Call):
                receiver = ""
                if isinstance(child.func, ast.Attribute) and isinstance(
                        child.func.value, ast.Name):
                    receiver = child.func.value.id
                info.calls.append(CallSite(
                    name=call_name(child), dotted=dotted_name(child.func),
                    node=child, receiver=receiver))
        # Later definitions win, matching runtime rebinding; nested
        # helpers keyed by the same qualname keep the outer one.
        if qual not in self.functions or getattr(
                self.functions[qual].node, "lineno", 0) < getattr(
                node, "lineno", 0):
            self.functions[qual] = info
        self.by_name.setdefault(name, []).append(info)

    # -- mutable module/class state -----------------------------------------

    def _collect_mutable_globals(self, module: str,
                                 tree: ast.AST) -> Iterator[MutableGlobal]:
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                yield from self._mutable_bindings(module, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                        yield from self._mutable_bindings(module, stmt,
                                                          cls=node.name)

    def _mutable_bindings(self, module: str, node: ast.AST,
                          cls: Optional[str]) -> Iterator[MutableGlobal]:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value: Optional[ast.expr] = node.value
        else:
            assert isinstance(node, ast.AnnAssign)
            targets = [node.target]
            value = node.value
        kind = self._mutable_kind(value)
        if kind is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                name = target.id if cls is None else f"{cls}.{target.id}"
                yield MutableGlobal(module=module, name=name, kind=kind,
                                    node=node,
                                    line=getattr(node, "lineno", 1))

    @staticmethod
    def _mutable_kind(value: Optional[ast.expr]) -> Optional[str]:
        if value is None:
            return None
        if isinstance(value, ast.Dict) or (
                isinstance(value, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            name = call_name(value)
            if name in NDARRAY_CONSTRUCTORS and \
                    dotted_name(value.func).split(".")[0] in ("np", "numpy"):
                return "ndarray"
            if name in ("dict", "OrderedDict", "defaultdict", "Counter"):
                return "dict"
            if name == "list" or name == "deque":
                return "list"
            if name in ("set", "bytearray"):
                return "set"
        return None

    # -- call graph ----------------------------------------------------------

    def _resolve(self, info: FunctionInfo, site: CallSite) -> List[str]:
        """Qualified names a call site may reach (over-approximate)."""
        out: List[str] = []
        is_plain = isinstance(site.node.func, ast.Name)
        if is_plain:
            # Local module function, or a `from x import y` alias.
            name = self._import_aliases.get(info.module, {}).get(
                site.name, site.name)
            qual = f"{info.module}.{name}"
            if qual in self.functions:
                return [qual]
            for cand in self.by_name.get(name, []):
                if cand.cls is None:
                    out.append(cand.qualname)
            return out
        if site.receiver in ("self", "cls") and info.cls is not None:
            own = f"{info.module}.{info.cls}.{site.name}"
            if own in self.functions:
                return [own]
        if site.name in UBIQUITOUS_METHOD_NAMES:
            return []
        for cand in self.by_name.get(site.name, []):
            out.append(cand.qualname)
        return out

    def _build_edges(self) -> None:
        for qual, info in self.functions.items():
            targets: Set[str] = set()
            for site in info.calls:
                targets.update(self._resolve(info, site))
            self.edges[qual] = targets

    # -- entry points ---------------------------------------------------------

    def _find_entry_points(self) -> None:
        for qual, info in self.functions.items():
            if info.is_async:
                self.entry_points.append(EntryPoint(
                    qual, "async", f"async def {info.name}"))
        for qual, info in self.functions.items():
            for site in info.calls:
                self._entry_from_call(info, site)

    def _entry_from_call(self, info: FunctionInfo, site: CallSite) -> None:
        kind = TARGET_CONSTRUCTORS.get(site.name)
        if kind is not None:
            for kw in site.node.keywords:
                if kw.arg == "target":
                    self._mark_targets(info, kw.value, kind,
                                       f"{site.name}(target=...) in "
                                       f"{info.qualname}")
            return
        if site.name in THREAD_DISPATCHERS and site.node.args:
            self._mark_targets(info, site.node.args[0], "thread",
                               f"{site.dotted or site.name}(...) in "
                               f"{info.qualname}")

    def _mark_targets(self, info: FunctionInfo, expr: ast.expr, kind: str,
                      detail: str) -> None:
        name = ""
        if isinstance(expr, ast.Name):
            name = expr.id
        elif isinstance(expr, ast.Attribute):
            name = expr.attr
        if not name:
            return
        local = f"{info.module}.{name}"
        candidates = [local] if local in self.functions else [
            c.qualname for c in self.by_name.get(name, [])]
        if info.cls is not None:
            own = f"{info.module}.{info.cls}.{name}"
            if own in self.functions:
                candidates = [own]
        for qual in candidates:
            self.entry_points.append(EntryPoint(qual, kind, detail))

    # -- reachability ---------------------------------------------------------

    def _propagate_reachability(self) -> None:
        frontier: List[str] = []
        for ep in self.entry_points:
            if ep.qualname in self.functions and \
                    ep.qualname not in self.reachable_from:
                self.reachable_from[ep.qualname] = (ep.kind, ep.detail)
                frontier.append(ep.qualname)
        while frontier:
            cur = frontier.pop()
            kind, detail = self.reachable_from[cur]
            for nxt in self.edges.get(cur, ()):
                if nxt not in self.reachable_from:
                    self.reachable_from[nxt] = (
                        kind, f"{detail} -> {self._short(cur)}"
                        if self._short(cur) not in detail else detail)
                    frontier.append(nxt)

    @staticmethod
    def _short(qualname: str) -> str:
        return qualname.split(".", 1)[-1]

    # -- queries for rules ----------------------------------------------------

    def functions_in(self, ctx: FileContext) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.ctx is ctx]

    def concurrent_reach(self, qualname: str) -> Optional[Tuple[str, str]]:
        """``(kind, chain)`` when ``qualname`` can run on a thread or the
        event loop (``process`` entries have private memory and do not
        count for shared-state rules)."""
        info = self.reachable_from.get(qualname)
        if info is not None and info[0] in ("async", "thread"):
            return info
        return None

    def is_async_function(self, name: str) -> bool:
        """Whether *every* project function with this bare name is a
        coroutine (used by the never-awaited check; a name that is async
        in one module and sync in another stays un-flagged)."""
        cands = self.by_name.get(name, [])
        return bool(cands) and all(c.is_async for c in cands)
