"""Event-level timeline simulation of the multi-FPGA bootstrap (§V).

The analytic :class:`~repro.hardware.cluster.ClusterBootstrapModel` gives
closed-form latencies; this module *simulates* the schedule event by
event — per-batch distribution (the primary "sends all the ciphertexts
intended for one of the secondary FPGAs before sending the ciphertexts
for the next one"), per-node batched BlindRotate compute, per-ciphertext
result streaming overlapped with compute, repack and the finishing steps
— and reports a timeline plus per-node utilisation.

Two claims become checkable numbers:

* the event-level end-to-end latency agrees with the analytic model
  (tests bound the gap), and
* "no FPGA is sitting idle": secondary busy-fraction during step 3 stays
  high because communication is overlapped with computation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ParameterError
from ..params import HeapParams, make_heap_params
from ..switching.scheduler import make_schedule
from .cluster import ClusterBootstrapModel
from .config import ClusterConfig, EIGHT_FPGA


@dataclass(frozen=True)
class TimelineEvent:
    """One closed interval of activity on a resource."""

    resource: str      # "node3", "link3", "primary"
    phase: str         # "recv-batch", "blind-rotate", "send-results", ...
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class SimulationResult:
    events: List[TimelineEvent] = field(default_factory=list)
    total_s: float = 0.0

    def busy_fraction(self, resource: str, window_start: float = 0.0,
                      window_end: Optional[float] = None) -> float:
        """Fraction of the window the resource spent busy."""
        end = window_end if window_end is not None else self.total_s
        if end <= window_start:
            raise ParameterError("empty window")
        busy = sum(max(0.0, min(e.end_s, end) - max(e.start_s, window_start))
                   for e in self.events if e.resource == resource)
        return busy / (end - window_start)

    def events_for(self, resource: str) -> List[TimelineEvent]:
        return sorted((e for e in self.events if e.resource == resource),
                      key=lambda e: e.start_s)


class BootstrapEventSimulator:
    """Replays the Section V schedule at event granularity."""

    def __init__(self, cluster: Optional[ClusterConfig] = None,
                 params: Optional[HeapParams] = None):
        self.cluster = cluster or EIGHT_FPGA
        self.params = params or make_heap_params()
        self.analytic = ClusterBootstrapModel(self.cluster, self.params)
        hw = self.cluster.node
        # Per-ciphertext transfer times on a CMAC link.  The distributed
        # LWE ciphertexts are the *modulus-switched* ones (Algorithm 2
        # step 2): components live in Z_2N, i.e. log2(2N)-bit words, far
        # smaller than the mod-q ciphertexts.
        self._result_tx_s = hw.cycles_to_seconds(hw.cycles_per_rlwe_tx)
        import math

        bits_2n = int(math.log2(2 * self.params.tfhe.n)) + 1
        lwe_bytes = (self.params.tfhe.n_t + 1) * bits_2n / 8.0
        self._lwe_tx_s = lwe_bytes / (hw.cmac_gbps * 1e9 / 8.0)

    def simulate(self, n_br: int, num_nodes: Optional[int] = None) -> SimulationResult:
        num_nodes = num_nodes or self.cluster.num_nodes
        schedule = make_schedule(n_br, num_nodes)
        bd = self.analytic.bootstrap_breakdown(n_br, num_nodes)
        result = SimulationResult()
        t = 0.0

        # Steps 1-2 on the primary.
        result.events.append(TimelineEvent("primary", "modswitch+extract",
                                           t, t + bd.modswitch_s))
        t += bd.modswitch_s

        # Distribution: node-by-node batch sends on the primary's port.
        send_clock = t
        compute_done: Dict[int, float] = {}
        results_arrived: Dict[int, float] = {}
        for a in schedule.nodes:
            if a.count == 0:
                compute_done[a.node_id] = send_clock
                results_arrived[a.node_id] = send_clock
                continue
            # Per-node compute time proportional to its share of step 3's
            # blind-rotate component.
            compute_s = bd.blind_rotate_s * (a.count / max(1, schedule.max_per_node))
            if a.is_primary:
                start = t  # primary's own batch needs no transfer
                result.events.append(TimelineEvent(
                    "node0", "blind-rotate", start, start + compute_s))
                compute_done[0] = start + compute_s
                results_arrived[0] = start + compute_s
                continue
            send_s = a.count * self._lwe_tx_s
            result.events.append(TimelineEvent(
                "primary", f"send-batch->{a.node_id}", send_clock,
                send_clock + send_s))
            result.events.append(TimelineEvent(
                f"link{a.node_id}", "lwe-in", send_clock, send_clock + send_s))
            # Compute is pipelined with reception: the batched BlindRotate
            # can start once the first ciphertexts land (per-LWE transfer
            # time is far below per-LWE compute time).
            start = send_clock + self._lwe_tx_s
            send_clock += send_s
            result.events.append(TimelineEvent(
                f"node{a.node_id}", "blind-rotate", start, start + compute_s))
            compute_done[a.node_id] = start + compute_s
            # Results stream back as produced, overlapped with compute:
            # the link finishes at most one transfer after the compute.
            per_ct = compute_s / a.count
            tx_start = start + min(per_ct, self._result_tx_s)
            tx_end = max(start + compute_s,
                         tx_start + a.count * self._result_tx_s)
            result.events.append(TimelineEvent(
                f"link{a.node_id}", "results-out", tx_start, tx_end))
            results_arrived[a.node_id] = tx_end

        gather_done = max(results_arrived.values())

        # Repack + finish on the primary.
        result.events.append(TimelineEvent("primary", "repack", gather_done,
                                           gather_done + bd.repack_s))
        finish_start = gather_done + bd.repack_s
        result.events.append(TimelineEvent("primary", "steps-4-5", finish_start,
                                           finish_start + bd.finish_s))
        result.total_s = finish_start + bd.finish_s
        return result

    def secondary_idle_fraction(self, n_br: int,
                                num_nodes: Optional[int] = None) -> float:
        """Average idle fraction of the secondaries during the compute
        window — the §V claim is that this stays small."""
        num_nodes = num_nodes or self.cluster.num_nodes
        if num_nodes < 2:
            raise ParameterError("no secondaries with a single node")
        sim = self.simulate(n_br, num_nodes)
        window_start = min(e.start_s for e in sim.events
                           if e.phase == "blind-rotate")
        window_end = max(e.end_s for e in sim.events
                         if e.phase == "blind-rotate")
        fractions = []
        for node_id in range(1, num_nodes):
            fractions.append(sim.busy_fraction(f"node{node_id}", window_start,
                                               window_end))
        return 1.0 - sum(fractions) / len(fractions)
