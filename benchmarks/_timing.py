"""Shared timing loop and BENCH json writer for the benchmark harness.

Every perf bench in this directory used to carry its own copy of the
same methodology: run each side once untimed (warmup doubling as the
bit-identity check), then time the sides ``REPS`` times *interleaved*
and report the minimum — the standard way to strip scheduler noise from
single-core container timings.  :func:`time_interleaved` is that loop,
extracted once; benches keep their own warmup/identity passes because
those are workload-specific.

:func:`write_bench_json` is the shared ``BENCH_*.json`` writer.  Besides
the per-bench file at the repo root it appends one run record to
``benchmarks/out/trajectory.jsonl`` — an append-only log of every bench
run, so the speedup trajectory across PRs can be read from one place
instead of diffing BENCH files out of git history.  Each trajectory
record is stamped with the current git commit (``git_commit``) and an
ISO-8601 UTC timestamp, so the per-commit perf trajectory (ROADMAP
item 4) can be reconstructed by grouping the log on the hash; when git
is unavailable (no binary, not a checkout) the stamp degrades to
``None`` instead of failing the bench.
"""

import json
import os
import subprocess
import time
from typing import Callable, Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")
TRAJECTORY_PATH = os.path.join(OUT_DIR, "trajectory.jsonl")

#: Interleaved timed repetitions per side; the minimum is reported.
REPS = 3

#: Sentinel distinguishing "not looked up yet" from "looked up, no git".
_GIT_UNRESOLVED = object()
_git_commit_cache: object = _GIT_UNRESOLVED


def git_commit() -> Optional[str]:
    """The repo's current commit hash, or ``None`` when it cannot be
    determined (git missing, not a checkout, or any other failure —
    benches must never die on provenance stamping).  Resolved once per
    process; a bench run does not change HEAD."""
    global _git_commit_cache
    if _git_commit_cache is _GIT_UNRESOLVED:
        try:
            out = subprocess.run(["git", "rev-parse", "HEAD"],
                                 cwd=REPO_ROOT, capture_output=True,
                                 timeout=10)
            commit = out.stdout.decode("ascii", "replace").strip()
            _git_commit_cache = commit if out.returncode == 0 and commit \
                else None
        except Exception:
            _git_commit_cache = None
    return _git_commit_cache  # type: ignore[return-value]


def time_interleaved(*sides: Callable[[], object],
                     reps: int = REPS) -> List[float]:
    """Time each zero-arg callable ``reps`` times, interleaved.

    Interleaving (side A, side B, side A, side B, ...) rather than
    back-to-back blocks means transient machine noise hits both sides
    roughly equally instead of biasing whichever ran second.  Returns
    the minimum wall-clock seconds per side, in argument order — pass
    the side under test first so it is also timed first within each rep.
    """
    samples: List[List[float]] = [[] for _ in sides]
    for _ in range(reps):
        for i, fn in enumerate(sides):
            t0 = time.perf_counter()
            fn()
            samples[i].append(time.perf_counter() - t0)
    return [min(s) for s in samples]


def write_bench_json(json_path: str, benchmark: str,
                     results: Sequence[Dict[str, object]],
                     reps: int = REPS,
                     extra: Optional[Dict[str, object]] = None) -> None:
    """Write a ``BENCH_*.json`` and append the run to trajectory.jsonl."""
    payload: Dict[str, object] = {"benchmark": benchmark,
                                  "unit": "seconds", "reps": reps,
                                  "timing": "min"}
    payload.update(extra or {})
    payload["results"] = list(results)
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)
        fh.write("\n")

    os.makedirs(OUT_DIR, exist_ok=True)
    record = {"timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
              "git_commit": git_commit(),
              "benchmark": benchmark,
              "file": os.path.basename(json_path)}
    record.update(payload)
    with open(TRAJECTORY_PATH, "a") as fh:
        fh.write(json.dumps(record) + "\n")
