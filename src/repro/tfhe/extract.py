"""Sample extraction (paper Eq. 2) and its inverse embedding.

``extract_lwe(ct, i)`` turns an RLWE ciphertext into the LWE encryption
of its ``i``-th phase coefficient under the key formed by the RLWE
secret's coefficient vector:

    a^(i) = (a_i, a_{i-1}, ..., a_0, -a_{N-1}, ..., -a_{i+1})

``embed_lwe`` is the inverse map used before repacking: it produces an
RLWE ciphertext whose constant phase coefficient equals the LWE phase
(the other coefficients are uncontrolled).  For multi-limb rings an
"RNS-LWE" ciphertext (one residue row per limb) is returned by
:func:`extract_rns_lwe`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..errors import ParameterError
from ..math.rns import RnsBasis, RnsPoly
from .glwe import GlweCiphertext
from .lwe import LweCiphertext, LweSecretKey


def extract_lwe(ct: GlweCiphertext, index: int = 0) -> LweCiphertext:
    """Extract coefficient ``index`` from a single-limb RLWE ciphertext."""
    if ct.h != 1:
        raise ParameterError("extraction expects an RLWE (h=1) ciphertext")
    if len(ct.basis) != 1:
        raise ParameterError("use extract_rns_lwe for multi-limb ciphertexts")
    q = ct.basis.moduli[0]
    src = ct.to_coeff()
    a_vec = _extraction_vector(src.mask[0].limbs[0], index, q)
    b = int(src.body.limbs[0][index])
    return LweCiphertext(a=src.mask[0].basis.engines[0].asarray(a_vec), b=b, q=q)


@dataclass
class RnsLweCiphertext:
    """LWE ciphertext whose components live in RNS (one row per limb)."""

    a: List[np.ndarray]   # per-limb residue vectors, length N each
    b: List[int]          # per-limb body residue
    basis: RnsBasis

    @property
    def dim(self) -> int:
        return len(self.a[0])

    def phase(self, sk_coeffs: np.ndarray) -> int:
        """Centred big-int phase given the RLWE secret's coefficients."""
        from ..math.modular import crt_compose

        residues = []
        for a_row, b_val, q in zip(self.a, self.b, self.basis.moduli):
            inner = int(np.dot(np.asarray(a_row, dtype=object), sk_coeffs))
            residues.append((b_val + inner) % q)
        stacked = np.asarray(residues, dtype=object).reshape(len(self.basis), 1)
        val = int(crt_compose(stacked, self.basis.moduli)[0])
        big_q = self.basis.product
        return val - big_q if val > big_q // 2 else val


def extract_rns_lwe(ct: GlweCiphertext, index: int = 0) -> RnsLweCiphertext:
    """Eq. 2 extraction from a multi-limb RLWE ciphertext."""
    if ct.h != 1:
        raise ParameterError("extraction expects an RLWE (h=1) ciphertext")
    src = ct.to_coeff()
    a_rows, b_vals = [], []
    for limb_a, limb_b, q in zip(src.mask[0].limbs, src.body.limbs, src.basis.moduli):
        a_rows.append(_extraction_vector(limb_a, index, q))
        b_vals.append(int(limb_b[index]))
    return RnsLweCiphertext(a=a_rows, b=b_vals, basis=src.basis)


def embed_lwe(ct: RnsLweCiphertext) -> GlweCiphertext:
    """Inverse of index-0 extraction: RLWE whose constant phase coefficient
    equals the LWE phase.  ``embed_lwe(extract_rns_lwe(ct, 0))``
    reproduces ``ct`` exactly (tests assert this)."""
    n = ct.dim
    limbs_a, limbs_b = [], []
    for a_row, b_val, (e, q) in zip(ct.a, ct.b, zip(ct.basis.engines, ct.basis.moduli)):
        poly = e.zeros(n)
        poly[0] = a_row[0]
        # A_{N-k} = -a_k for k >= 1.
        tail = np.asarray(a_row[1:], dtype=object)
        poly[1:] = np.where(tail == 0, tail, q - tail)[::-1]
        limbs_a.append(poly)
        body = e.zeros(n)
        body[0] = b_val % q
        limbs_b.append(body)
    mask = RnsPoly(n, ct.basis, limbs_a, "coeff")
    body = RnsPoly(n, ct.basis, limbs_b, "coeff")
    return GlweCiphertext(mask=[mask], body=body)


def rlwe_secret_as_lwe_key(sk_coeffs: np.ndarray) -> LweSecretKey:
    """The dimension-``N`` LWE key an extracted ciphertext decrypts under."""
    return LweSecretKey(coeffs=np.asarray(sk_coeffs, dtype=object))


def _extraction_vector(a_limb: np.ndarray, index: int, q: int) -> np.ndarray:
    """Build ``a^(i)`` of Eq. 2 from one limb of the mask polynomial."""
    n = len(a_limb)
    if not 0 <= index < n:
        raise ParameterError(f"coefficient index {index} out of range")
    a = np.asarray(a_limb, dtype=object)
    head = a[: index + 1][::-1]                       # a_i, a_{i-1}, ..., a_0
    tail = a[index + 1:][::-1]                        # a_{N-1}, ..., a_{i+1}
    neg_tail = np.where(tail == 0, tail, q - tail)
    return np.concatenate([head, neg_tail])
