"""The CKKS evaluator: encryption, decryption and homomorphic operations.

Implements the primitive operation set of paper Section II-A — ``PtAdd``,
``Add``, ``PtMult``, ``Mult`` (with relinearisation), ``Rescale``,
``Rotate`` and ``Conjugate`` — over the RNS representation, using the
hybrid key switcher for everything that changes the effective secret.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..errors import LevelError, NoiseBudgetExceeded, ParameterError, ScaleMismatchError
from ..math.rns import RnsPoly
from ..math.sampling import Sampler
from .ciphertext import CkksCiphertext
from .context import CkksContext
from .keys import KeySet, SecretKey
from .keyswitch import KeySwitcher

#: Relative tolerance when checking that two scales match.
_SCALE_RTOL = 1e-9


class CkksEvaluator:
    """Stateless-ish operation dispatcher bound to a context and key set."""

    def __init__(self, context: CkksContext, keys: KeySet,
                 sampler: Optional[Sampler] = None,
                 scale_rtol: float = _SCALE_RTOL,
                 keyswitch_engine: str = "batched"):
        self.ctx = context
        self.keys = keys
        self.switcher = KeySwitcher(context, engine=keyswitch_engine)
        self.sampler = sampler or Sampler()
        # Relative tolerance for combining scales.  The conventional
        # bootstrapper runs with a loose tolerance and near-Delta primes
        # (fixed-point style); normal use keeps the strict default.
        self.scale_rtol = scale_rtol

    # -- encryption / decryption -------------------------------------------------------

    def encrypt(self, values, scale: Optional[float] = None,
                level: Optional[int] = None) -> CkksCiphertext:
        """Public-key encryption of a slot vector."""
        delta = scale or self.ctx.params.scale
        lvl = self.ctx.max_level if level is None else level
        basis = self.ctx.basis_at_level(lvl)
        n = self.ctx.n
        m = self.ctx.encoder.encode(values, delta)
        m_poly = RnsPoly.from_int_coeffs(n, basis, m).to_eval()
        pk_b = self._restrict(self.keys.public.b, basis)
        pk_a = self._restrict(self.keys.public.a, basis)
        u = RnsPoly.from_int_coeffs(n, basis, self.sampler.ternary(n).astype(object)).to_eval()
        e0 = RnsPoly.from_int_coeffs(n, basis, self.sampler.gaussian(n).astype(object)).to_eval()
        e1 = RnsPoly.from_int_coeffs(n, basis, self.sampler.gaussian(n).astype(object)).to_eval()
        return CkksCiphertext(c0=pk_b * u + e0 + m_poly, c1=pk_a * u + e1, scale=delta)

    def decrypt(self, ct: CkksCiphertext, sk: SecretKey) -> np.ndarray:
        """Decrypt and decode to complex slots."""
        coeffs = self.decrypt_to_coeffs(ct, sk)
        return self.ctx.encoder.decode(coeffs, ct.scale)

    def decrypt_to_coeffs(self, ct: CkksCiphertext, sk: SecretKey) -> np.ndarray:
        """Raw phase ``c0 + c1*s`` as centred big-int coefficients."""
        s = sk.on_basis(ct.n, ct.basis)
        phase = ct.c0 + ct.c1 * s
        return phase.to_centered_int_coeffs()

    def encrypt_coeffs(self, values, scale: Optional[float] = None,
                       level: Optional[int] = None) -> CkksCiphertext:
        """Encrypt *coefficient-packed* real values: coefficient ``i`` of
        the plaintext polynomial is ``round(Delta * values[i])`` — no
        canonical embedding.  This is the packing the scheme-switching
        LUT path (Pegasus-style) operates on: the TFHE side sees one
        value per extracted coefficient."""
        delta = scale or self.ctx.params.scale
        lvl = self.ctx.max_level if level is None else level
        basis = self.ctx.basis_at_level(lvl)
        n = self.ctx.n
        vals = np.zeros(n)
        arr = np.asarray(values, dtype=np.float64).ravel()
        if len(arr) > n:
            raise ParameterError(f"too many values for {n} coefficients")
        vals[: len(arr)] = arr
        m = np.asarray([int(round(v * delta)) for v in vals], dtype=object)
        m_poly = RnsPoly.from_int_coeffs(n, basis, m).to_eval()
        pk_b = self._restrict(self.keys.public.b, basis)
        pk_a = self._restrict(self.keys.public.a, basis)
        u = RnsPoly.from_int_coeffs(n, basis, self.sampler.ternary(n).astype(object)).to_eval()
        e0 = RnsPoly.from_int_coeffs(n, basis, self.sampler.gaussian(n).astype(object)).to_eval()
        e1 = RnsPoly.from_int_coeffs(n, basis, self.sampler.gaussian(n).astype(object)).to_eval()
        return CkksCiphertext(c0=pk_b * u + e0 + m_poly, c1=pk_a * u + e1, scale=delta)

    def decrypt_coeffs_scaled(self, ct: CkksCiphertext, sk: SecretKey) -> np.ndarray:
        """Inverse of :meth:`encrypt_coeffs`: coefficients over the scale."""
        coeffs = self.decrypt_to_coeffs(ct, sk)
        return np.asarray([float(c) for c in coeffs]) / ct.scale

    def noise_bits(self, ct: CkksCiphertext, sk: SecretKey, expected) -> float:
        """log2 of the worst slot error against ``expected`` values.

        A diagnostic for tests and noise studies; pair with
        :meth:`check_noise_budget` to fail fast on drowned messages.
        """
        got = self.decrypt(ct, sk)
        z = self.ctx.encoder._to_slot_vector(expected)
        err = float(np.max(np.abs(got - z)))
        return math.log2(err) if err > 0 else float("-inf")

    def check_noise_budget(self, ct: CkksCiphertext, sk: SecretKey, expected,
                           max_error: float = 0.5) -> None:
        """Raise :class:`NoiseBudgetExceeded` if decryption error passed
        ``max_error`` — the correctness bound is gone and the ciphertext
        should have been bootstrapped earlier."""
        got = self.decrypt(ct, sk)
        z = self.ctx.encoder._to_slot_vector(expected)
        err = float(np.max(np.abs(got - z)))
        if err > max_error:
            raise NoiseBudgetExceeded(
                f"slot error {err:.4g} exceeds the budget {max_error:.4g}")

    # -- plaintext operand helpers -------------------------------------------------------

    def encode_plain(self, values, ct: CkksCiphertext,
                     scale: Optional[float] = None) -> RnsPoly:
        """Encode values over a ciphertext's basis for PtAdd/PtMult."""
        delta = ct.scale if scale is None else scale
        m = self.ctx.encoder.encode(values, delta)
        return RnsPoly.from_int_coeffs(ct.n, ct.basis, m).to_eval()

    # -- additive ops ---------------------------------------------------------------------

    def add(self, a: CkksCiphertext, b: CkksCiphertext) -> CkksCiphertext:
        a, b = self._align(a, b)
        return CkksCiphertext(a.c0 + b.c0, a.c1 + b.c1, a.scale)

    def sub(self, a: CkksCiphertext, b: CkksCiphertext) -> CkksCiphertext:
        a, b = self._align(a, b)
        return CkksCiphertext(a.c0 - b.c0, a.c1 - b.c1, a.scale)

    def negate(self, a: CkksCiphertext) -> CkksCiphertext:
        return CkksCiphertext(-a.c0, -a.c1, a.scale)

    def add_plain(self, ct: CkksCiphertext, values) -> CkksCiphertext:
        m = self.encode_plain(values, ct)
        return CkksCiphertext(ct.c0 + m, ct.c1, ct.scale)

    def sub_plain(self, ct: CkksCiphertext, values) -> CkksCiphertext:
        m = self.encode_plain(values, ct)
        return CkksCiphertext(ct.c0 - m, ct.c1, ct.scale)

    # -- multiplicative ops ------------------------------------------------------------------

    def mul_plain(self, ct: CkksCiphertext, values,
                  scale: Optional[float] = None) -> CkksCiphertext:
        """PtMult: multiply by an encoded plaintext; scale multiplies."""
        delta = scale or self.ctx.params.scale
        m = self.encode_plain(values, ct, scale=delta)
        return CkksCiphertext(ct.c0 * m, ct.c1 * m, ct.scale * delta)

    def mul_scalar_int(self, ct: CkksCiphertext, k: int) -> CkksCiphertext:
        """Exact integer scalar multiply (no scale change, no level use)."""
        return CkksCiphertext(ct.c0 * k, ct.c1 * k, ct.scale)

    def multiply(self, a: CkksCiphertext, b: CkksCiphertext,
                 relinearize: bool = True) -> CkksCiphertext:
        """Mult: tensor + relinearisation (scale becomes ``Delta^2``)."""
        a, b = self._align(a, b)
        d0 = a.c0 * b.c0
        d1 = a.c0 * b.c1 + a.c1 * b.c0
        d2 = a.c1 * b.c1
        out_scale = a.scale * b.scale
        if not relinearize:
            raise ParameterError("non-relinearised ciphertexts are not supported")
        if self.keys.relin is None:
            raise ParameterError("key set has no relinearisation key")
        u0, u1 = self.switcher.switch(d2, self.keys.relin)
        return CkksCiphertext(d0 + u0, d1 + u1, out_scale)

    def square(self, a: CkksCiphertext) -> CkksCiphertext:
        return self.multiply(a, a)

    def rescale(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Rescale: divide by the last limb prime, dropping one level."""
        if ct.level == 0:
            raise LevelError("cannot rescale a level-0 ciphertext")
        q_last = ct.basis.moduli[-1]
        return CkksCiphertext(
            ct.c0.rescale_last_limb().to_eval(),
            ct.c1.rescale_last_limb().to_eval(),
            ct.scale / q_last,
        )

    def mul_relin_rescale(self, a: CkksCiphertext, b: CkksCiphertext) -> CkksCiphertext:
        return self.rescale(self.multiply(a, b))

    # -- slot permutations ------------------------------------------------------------------

    def rotate(self, ct: CkksCiphertext, r: int) -> CkksCiphertext:
        """Rotate slots left by ``r``: slot k receives old slot k+r."""
        t = pow(5, r % self.ctx.slots, 2 * self.ctx.n)
        return self._apply_automorphism(ct, t)

    def conjugate(self, ct: CkksCiphertext) -> CkksCiphertext:
        """Complex-conjugate every slot (automorphism ``X -> X^(2N-1)``)."""
        return self._apply_automorphism(ct, 2 * self.ctx.n - 1)

    def rotate_hoisted(self, ct: CkksCiphertext, rotations: Sequence[int]):
        """Rotate one ciphertext by many amounts sharing a single ModUp.

        Hoisting (Halevi-Shoup): decompose/lift ``c1`` once, then for
        each rotation apply the automorphism to the *lifted digits* and
        finish with that rotation's key.  The approximate BConv's ``k*Q``
        offsets land differently than in :meth:`rotate`, so outputs are
        not bitwise identical — but they decrypt to the same values with
        the same noise class (tests assert value equality), at one ModUp
        for the whole rotation set instead of one per rotation.

        With the batched engine, the whole rotation set is ONE eval-domain
        gather on the lifted digit tensor, one stacked inner product and
        one batched ModDown (bit-identical to the scalar hoisted loop).
        """
        if not rotations:
            return {}
        two_n = 2 * self.ctx.n
        ts = [pow(5, r % self.ctx.slots, two_n) for r in rotations]
        eng = self.switcher.engine
        if eng is not None and eng.handles(ct.basis):
            keys = [self.keys.galois_key(t) for t in ts]
            parts = eng.rotate_hoisted_parts(ct.c1, ts, keys)
            c0_rot = eng.automorphism_eval_stack(ct.c0, ts)
            out = {}
            for i, r in enumerate(rotations):
                u0, u1 = parts[i]
                c0r = RnsPoly(ct.n, ct.basis,
                              [c0_rot[row, i] for row in range(len(ct.basis))],
                              "eval")
                out[r] = CkksCiphertext(c0r + u0, u1, ct.scale)
            return out
        ext, lifted = self.switcher.lift_digits(ct.c1.to_coeff())
        out = {}
        for t, r in zip(ts, rotations):
            key = self.keys.galois_key(t)
            rotated = [(j, lift.automorphism(t)) for j, lift in lifted]
            u0, u1 = self.switcher.inner_product_and_down(
                rotated, key, ext, ct.basis)
            c0r = ct.c0.automorphism(t).to_eval()
            out[r] = CkksCiphertext(c0r + u0, u1, ct.scale)
        return out

    def _apply_automorphism(self, ct: CkksCiphertext, t: int) -> CkksCiphertext:
        key = self.keys.galois_key(t)
        eng = self.switcher.engine
        if eng is not None and eng.handles(ct.basis):
            # Permute *first*, then lift — same operation order as the
            # scalar path (hoisting reorders it and lands different k*Q
            # offsets), with the automorphism applied as an eval-domain
            # gather: NTT(sigma_t(x)) == NTT(x)[eval_src] exactly.
            rows = range(len(ct.basis))
            c0g = eng.automorphism_eval_stack(ct.c0, [t])
            c1g = eng.automorphism_eval_stack(ct.c1, [t])
            c0r = RnsPoly(ct.n, ct.basis, [c0g[row, 0] for row in rows], "eval")
            c1r = RnsPoly(ct.n, ct.basis, [c1g[row, 0] for row in rows], "eval")
            u0, u1 = eng.switch(c1r, key)
            return CkksCiphertext(c0r + u0, u1, ct.scale)
        c0r = ct.c0.automorphism(t).to_eval()
        c1r = ct.c1.automorphism(t).to_eval()
        u0, u1 = self.switcher.switch(c1r, key)
        return CkksCiphertext(c0r + u0, u1, ct.scale)

    # -- level management ----------------------------------------------------------------------

    def drop_to_level(self, ct: CkksCiphertext, level: int) -> CkksCiphertext:
        """Discard limbs down to ``level`` (modulus reduction, scale kept)."""
        if level > ct.level:
            raise LevelError(f"cannot raise level from {ct.level} to {level}")
        c0, c1 = ct.c0, ct.c1
        while len(c0.basis) - 1 > level:
            c0 = c0.drop_last_limb()
            c1 = c1.drop_last_limb()
        return CkksCiphertext(c0, c1, ct.scale)

    def rescale_to_match(self, ct: CkksCiphertext, target: CkksCiphertext) -> CkksCiphertext:
        """Bring ``ct`` to the level of ``target`` by dropping limbs."""
        return self.drop_to_level(ct, target.level)

    # -- internals ------------------------------------------------------------------------------

    def _align(self, a: CkksCiphertext, b: CkksCiphertext):
        if a.level != b.level:
            if a.level > b.level:
                a = self.drop_to_level(a, b.level)
            else:
                b = self.drop_to_level(b, a.level)
        if not math.isclose(a.scale, b.scale, rel_tol=self.scale_rtol):
            raise ScaleMismatchError(
                f"scales differ: 2^{math.log2(a.scale):.3f} vs 2^{math.log2(b.scale):.3f}"
            )
        return a, b

    @staticmethod
    def _restrict(poly: RnsPoly, basis) -> RnsPoly:
        keep = {q: i for i, q in enumerate(poly.basis.moduli)}
        limbs = [poly.limbs[keep[q]] for q in basis.moduli]
        return RnsPoly(poly.n, basis, limbs, poly.domain)
