"""Failure-injection tests: corrupted keys/ciphertexts must fail loudly
(via the noise-budget check), not silently return plausible garbage."""

import json

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import NoiseBudgetExceeded
from repro.io import deserialize_ciphertext, serialize_ciphertext
from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.switching import SchemeSwitchBootstrapper, SwitchingKeySet

PARAMS = make_toy_params(n=16, limbs=3, limb_bits=30, scale_bits=23,
                         special_limbs=2)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(701))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(702))
    return ctx, sk, ev


class TestWrongKey:
    def test_decryption_under_wrong_key_is_garbage(self, stack):
        ctx, sk, ev = stack
        other_sk = CkksKeyGenerator(ctx, Sampler(999)).secret_key()
        z = np.full(ctx.slots, 0.5)
        ct = ev.encrypt(z)
        with pytest.raises(NoiseBudgetExceeded):
            ev.check_noise_budget(ct, other_sk, z)


class TestTamperedCiphertext:
    def test_bitflip_detected_by_noise_check(self, stack):
        ctx, sk, ev = stack
        z = np.full(ctx.slots, 0.25)
        blob = serialize_ciphertext(ev.encrypt(z))
        payload = json.loads(blob.decode())
        # Flip a high bit of one mask coefficient.
        payload["c1"]["limbs"][0][3] ^= 1 << 25
        tampered = deserialize_ciphertext(json.dumps(payload).encode())
        with pytest.raises(NoiseBudgetExceeded):
            ev.check_noise_budget(tampered, sk, z)

    def test_untampered_passes(self, stack):
        ctx, sk, ev = stack
        z = np.full(ctx.slots, 0.25)
        ct = deserialize_ciphertext(serialize_ciphertext(ev.encrypt(z)))
        ev.check_noise_budget(ct, sk, z)


class TestCorruptedSwitchingKeys:
    def test_swapped_brk_entries_break_bootstrap(self, stack):
        """Swapping RGSW(s_i^+) and RGSW(s_i^-) for a few indices makes the
        blind rotation compute the wrong phase — the output must fail the
        noise check rather than decrypt to something near the message."""
        ctx, sk, ev = stack
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(703), base_bits=4,
                                       error_std=0.8)
        # Corrupt: swap plus/minus for indices where the secret is nonzero.
        nonzero = [i for i in range(ctx.n) if int(sk.coeffs[i]) != 0][:4]
        for i in nonzero:
            swk.brk.plus[i], swk.brk.minus[i] = swk.brk.minus[i], swk.brk.plus[i]
        boot = SchemeSwitchBootstrapper(ctx, swk)
        z = np.random.default_rng(1).uniform(0.3, 0.9, ctx.slots)
        out = boot.bootstrap(ev.encrypt(z, level=0))
        with pytest.raises(NoiseBudgetExceeded):
            ev.check_noise_budget(out, sk, z, max_error=0.2)

    def test_intact_keys_pass_the_same_check(self, stack):
        ctx, sk, ev = stack
        swk = SwitchingKeySet.generate(ctx, sk, Sampler(704), base_bits=4,
                                       error_std=0.8)
        boot = SchemeSwitchBootstrapper(ctx, swk)
        z = np.random.default_rng(2).uniform(0.3, 0.9, ctx.slots)
        out = boot.bootstrap(ev.encrypt(z, level=0))
        ev.check_noise_budget(out, sk, z, max_error=0.2)
