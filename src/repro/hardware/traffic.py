"""Main-memory key-traffic accounting (paper Sections III-C and IV-E).

Two headline claims are reproduced here:

* conventional CKKS bootstrapping reads ~**32 GB** of key material per
  bootstrap (25 switching keys of ~126 MB, each re-read across the
  hundreds of KeySwitch operations inside CoeffToSlot / EvalMod /
  SlotToCoeff), whereas
* scheme-switching bootstrapping reads the **1.76 GB** blind-rotate key
  set exactly once (the Section IV-E batch schedule uses each ``brk_i``
  once per batch and discards it), i.e. ~**18x** less key traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..params import TfheParams

GB = float(2**30)
MB = float(2**20)


@dataclass(frozen=True)
class ConventionalKeyTraffic:
    """Key traffic of the conventional bootstrap (paper's accounting)."""

    key_bytes: float = 126 * MB   # one switching key at bootstrappable params
    num_unique_keys: int = 25     # 24 rotation keys + 1 relin key [1]
    #: Total key reads per bootstrap; the paper's ~32 GB over 126 MB keys
    #: implies each key is streamed ~10x across the bootstrap pipeline
    #: (every BSGS rotation in the linear transforms re-fetches its key).
    refetch_factor: float = 32 * GB / (25 * 126 * MB)

    @property
    def unique_bytes(self) -> float:
        return self.key_bytes * self.num_unique_keys

    @property
    def total_bytes(self) -> float:
        return self.unique_bytes * self.refetch_factor


def scheme_switching_key_bytes(tfhe: TfheParams, log_q_total: int) -> float:
    """Total brk bytes (read once per bootstrap): ``n_t`` RGSW pairs with
    full-``Q`` coefficients — the paper's 3.52 MB x 500 = 1.76 GB."""
    rows = (tfhe.glwe_mask + 1) * tfhe.decomp_digits
    cols = tfhe.glwe_mask + 1
    pair_bytes = 2 * rows * cols * tfhe.n * log_q_total / 8.0
    return tfhe.n_t * pair_bytes


def seeded_scheme_switching_key_bytes(tfhe: TfheParams,
                                      log_q_total: int) -> float:
    """At-rest bytes of the ARK-style seed+``b`` brk form: only each
    row's body polynomial is stored; the ``h`` uniform mask polynomials
    replay from a per-key 8-byte seed at expansion time.  At the
    paper's ``h = 1`` this halves the 1.76 GB resident set."""
    body_fraction = 1.0 / (tfhe.glwe_mask + 1)
    seeds = tfhe.n_t * 2 * 8.0  # one derived seed per RGSW(s+)/RGSW(s-)
    return scheme_switching_key_bytes(tfhe, log_q_total) * body_fraction + seeds


def key_traffic_reduction(tfhe: TfheParams, log_q_total: int,
                          conventional: ConventionalKeyTraffic = ConventionalKeyTraffic(),
                          ) -> float:
    """The paper's ~18x claim."""
    return conventional.total_bytes / scheme_switching_key_bytes(tfhe, log_q_total)


def bootstrap_hbm_seconds(bytes_moved: float, bandwidth_bytes_per_s: float) -> float:
    """Lower bound on bootstrap time from key streaming alone."""
    return bytes_moved / bandwidth_bytes_per_s
