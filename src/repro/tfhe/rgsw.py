"""RGSW/GGSW ciphertexts, the external product, CMux and InternalProduct.

An RGSW ciphertext is the ``(h+1)*d x (h+1)`` matrix of degree-``N-1``
polynomials from paper Section II-B: for each target component
``c in [0, h]`` and gadget digit ``k in [0, d)`` it stores a GLWE row
whose phase is ``g_k * m * s_c`` (mask rows) or ``g_k * m`` (body rows).

The **external product** ``RGSW(m) x GLWE(mu) -> GLWE(m * mu)`` gadget-
decomposes every GLWE component and MAC-accumulates the digits against
the rows — precisely the workload of HEAP's external-product unit
(Section IV-A): integer multiply, lazy accumulate, one reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ParameterError
from ..math.gadget import GadgetVector
from ..math.rns import RnsBasis, RnsPoly
from ..math.sampling import Sampler
from .glwe import (GlweCiphertext, GlweSecretKey, draw_uniform_masks,
                   glwe_encrypt, glwe_encrypt_seeded)


@dataclass
class RgswCiphertext:
    """Rows indexed ``rows[c][k]``: component ``c`` (``h`` = body), digit ``k``."""

    rows: List[List[GlweCiphertext]]
    gadget: GadgetVector

    @property
    def h(self) -> int:
        return len(self.rows) - 1

    @property
    def basis(self) -> RnsBasis:
        return self.rows[0][0].basis

    @property
    def n(self) -> int:
        return self.rows[0][0].n

    def matrix_shape(self):
        """Paper shape ``((h+1)*d, h+1)``."""
        d = self.gadget.digits
        return ((self.h + 1) * d, self.h + 1)

    # -- linear structure (used by the BlindRotate combined key) -------------------

    def __add__(self, other: "RgswCiphertext") -> "RgswCiphertext":
        if self.matrix_shape() != other.matrix_shape():
            raise ParameterError("RGSW shape mismatch")
        return RgswCiphertext(
            rows=[[x + y for x, y in zip(rs, ro)] for rs, ro in zip(self.rows, other.rows)],
            gadget=self.gadget,
        )

    def mul_eval_vector(self, eval_vecs: List[np.ndarray]) -> "RgswCiphertext":
        """Multiply every row polynomial pointwise by per-limb evaluation
        vectors — e.g. the transform of ``X^a - 1``.  Rows must be in the
        evaluation domain."""
        def scale_poly(p: RnsPoly) -> RnsPoly:
            p = p.to_eval()
            limbs = [e.mul(limb, v) for e, limb, v in zip(p.basis.engines, p.limbs, eval_vecs)]
            return RnsPoly(p.n, p.basis, limbs, "eval")

        return RgswCiphertext(
            rows=[[GlweCiphertext(mask=[scale_poly(a) for a in row.mask],
                                  body=scale_poly(row.body))
                   for row in comp] for comp in self.rows],
            gadget=self.gadget,
        )

    # -- dense tensor export (batched blind-rotate engine) --------------------

    def to_limb_tensors(self) -> List[np.ndarray]:
        """Export the RGSW matrix as one dense evaluation-domain tensor per
        limb, shape ``((h+1)*d, h+1, N)``.

        Row ``r = c*d + k`` holds the GLWE row for component ``c``, digit
        ``k`` — the same flattening the batched engine uses for its
        decomposed-digit tensors, so the external-product MAC becomes a
        single contraction over ``r``.  Column ``h`` is the body.
        """
        n = self.n
        basis = self.basis
        d = self.gadget.digits
        r_dim, c_dim = self.matrix_shape()
        out = [e.zeros((r_dim, c_dim, n)) for e in basis.engines]
        for c, comp in enumerate(self.rows):
            for k, row in enumerate(comp):
                row = row.to_eval()
                r = c * d + k
                for col, poly in enumerate(list(row.mask) + [row.body]):
                    for li, limb in enumerate(poly.limbs):
                        out[li][r, col] = limb
        return out

    @classmethod
    def from_limb_tensors(cls, tensors: List[np.ndarray], basis: RnsBasis,
                          gadget: GadgetVector) -> "RgswCiphertext":
        """Inverse of :meth:`to_limb_tensors` (evaluation domain)."""
        r_dim, c_dim, n = tensors[0].shape
        d = gadget.digits
        if r_dim != c_dim * d:
            raise ParameterError("tensor row count does not match gadget digits")
        h = c_dim - 1
        rows: List[List[GlweCiphertext]] = []
        for c in range(c_dim):
            comp_rows = []
            for k in range(d):
                r = c * d + k
                polys = [RnsPoly(n, basis, [t[r, col].copy() for t in tensors], "eval")
                         for col in range(c_dim)]
                comp_rows.append(GlweCiphertext(mask=polys[:h], body=polys[h]))
            rows.append(comp_rows)
        return cls(rows=rows, gadget=gadget)


def rgsw_encrypt(m: int, sk: GlweSecretKey, basis: RnsBasis,
                 gadget: GadgetVector, sampler: Sampler,
                 error_std: Optional[float] = None) -> RgswCiphertext:
    """Encrypt a small integer (typically a secret-key digit in {-1,0,1})."""
    n = sk.n
    h = sk.h
    rows: List[List[GlweCiphertext]] = []
    factors = gadget.factors()
    for c in range(h + 1):
        comp_rows = []
        for g in factors:
            payload = (int(m) * g) % basis.product
            if c < h:
                ct = glwe_encrypt(RnsPoly.zero(n, basis), sk, sampler, error_std)
                bump = RnsPoly.from_int_coeffs(
                    n, basis, _constant_vec(n, payload)).to_eval()
                ct = GlweCiphertext(
                    mask=[a + bump if i == c else a for i, a in enumerate(ct.mask)],
                    body=ct.body,
                )
            else:
                msg = RnsPoly.from_int_coeffs(n, basis, _constant_vec(n, payload))
                ct = glwe_encrypt(msg, sk, sampler, error_std)
            comp_rows.append(ct.to_eval())
        rows.append(comp_rows)
    return RgswCiphertext(rows=rows, gadget=gadget)


def rgsw_encrypt_seeded(m: int, sk: GlweSecretKey, basis: RnsBasis,
                        gadget: GadgetVector, mask_rng: Sampler, noise: Sampler,
                        error_std: Optional[float] = None) -> RgswCiphertext:
    """Seeded RGSW: every mask polynomial comes from one replayable stream.

    :func:`rgsw_encrypt` puts the payload ``g_k * m`` *into the mask* of
    component rows (``c < h``), which would make those masks
    non-derivable from a seed.  The seeded form keeps the identical phase
    — ``g_k * m * s_c`` for mask rows, ``g_k * m`` for the body row — but
    realises it through the body instead: all masks are uniform draws
    from ``mask_rng`` (row order ``c`` outer, digit ``k`` inner; the draw
    order of :func:`~repro.tfhe.glwe.draw_uniform_masks` within a row)
    and the body absorbs the payload.  Only the ``(h+1)d`` body
    polynomials plus the mask seed need to be stored — a ``(h+1)``-fold
    compression of the at-rest key.
    """
    n = sk.n
    h = sk.h
    s_polys = sk.on_basis(basis)
    rows: List[List[GlweCiphertext]] = []
    factors = gadget.factors()
    for c in range(h + 1):
        comp_rows = []
        for g in factors:
            payload = (int(m) * g) % basis.product
            const = RnsPoly.from_int_coeffs(n, basis, _constant_vec(n, payload)).to_eval()
            msg = const * s_polys[c] if c < h else const
            comp_rows.append(glwe_encrypt_seeded(msg, sk, mask_rng, noise, error_std))
        rows.append(comp_rows)
    return RgswCiphertext(rows=rows, gadget=gadget)


def rgsw_bodies(rgsw: RgswCiphertext) -> List[RnsPoly]:
    """Flat body list of a seeded RGSW, row order ``r = c*d + k`` (the
    stored half of the seed+``b`` at-rest form)."""
    return [row.body for comp in rgsw.rows for row in comp]


def expand_rgsw(mask_rng: Sampler, bodies: List[RnsPoly], basis: RnsBasis,
                gadget: GadgetVector, h: int) -> RgswCiphertext:
    """Rebuild a seeded RGSW from its mask stream and stored bodies.

    Replays exactly the draws :func:`rgsw_encrypt_seeded` made, so the
    result is bit-identical to the ciphertext produced at keygen.  Pure
    PRNG replay — masks are sampled directly in the evaluation domain, so
    expansion costs no NTTs.
    """
    d = gadget.digits
    if len(bodies) != (h + 1) * d:
        raise ParameterError("seeded RGSW body count does not match gadget digits")
    n = bodies[0].n
    rows: List[List[GlweCiphertext]] = []
    for c in range(h + 1):
        comp_rows = []
        for k in range(d):
            mask = draw_uniform_masks(mask_rng, h, n, basis)
            comp_rows.append(GlweCiphertext(mask=mask, body=bodies[c * d + k]))
        rows.append(comp_rows)
    return RgswCiphertext(rows=rows, gadget=gadget)


def rgsw_trivial(m: int, h: int, n: int, basis: RnsBasis,
                 gadget: GadgetVector) -> RgswCiphertext:
    """Noiseless RGSW of a public constant — ``RGSW(1)`` in Algorithm 1."""
    rows: List[List[GlweCiphertext]] = []
    for c in range(h + 1):
        comp_rows = []
        for g in gadget.factors():
            payload = (int(m) * g) % basis.product
            bump = RnsPoly.from_int_coeffs(n, basis, _constant_vec(n, payload)).to_eval()
            zero = RnsPoly.zero(n, basis, "eval")
            mask = [bump.copy() if i == c else zero.copy() for i in range(h)]
            body = bump.copy() if c == h else zero.copy()
            comp_rows.append(GlweCiphertext(mask=mask, body=body))
        rows.append(comp_rows)
    return RgswCiphertext(rows=rows, gadget=gadget)


def external_product(rgsw: RgswCiphertext, glwe: GlweCiphertext) -> GlweCiphertext:
    """``RGSW(m) x GLWE(mu) -> GLWE(m * mu)``.

    Decompose-NTT-MAC, the exact sub-operation sequence of the paper's
    BlindRotate datapath (Section IV-E): rotation and decompose happen on
    coefficients, the products in the evaluation domain.
    """
    if rgsw.h != glwe.h or rgsw.basis.moduli != glwe.basis.moduli:
        raise ParameterError("external product operand mismatch")
    from ..profiling import record_external_product

    record_external_product(1)
    basis = glwe.basis
    n = glwe.n
    h = glwe.h
    gadget = rgsw.gadget
    components = list(glwe.mask) + [glwe.body]
    acc: Optional[GlweCiphertext] = None
    for c in range(h + 1):
        coeffs = components[c].to_int_coeffs()  # big-int, in [0, Q)
        digit_vecs = gadget.decompose(coeffs)
        for k, dv in enumerate(digit_vecs):
            digit_poly = RnsPoly.from_int_coeffs(n, basis, dv).to_eval()
            term = rgsw.rows[c][k].mul_poly(digit_poly)
            acc = term if acc is None else acc + term
    return acc


def cmux(selector: RgswCiphertext, ct_false: GlweCiphertext,
         ct_true: GlweCiphertext) -> GlweCiphertext:
    """``CMux``: returns ``ct_true`` if the RGSW encrypts 1, else ``ct_false``.

    Mapped via "simple multiplication, addition, and subtraction"
    (Section VII-A): ``d0 + RGSW(c) x (d1 - d0)``.
    """
    return ct_false + external_product(selector, ct_true - ct_false)


def internal_product(a: RgswCiphertext, b: RgswCiphertext) -> RgswCiphertext:
    """``GGSW x GGSW`` as a list of independent external products.

    Section VII-A: view ``b`` as a list of GLWE rows, externally multiply
    each by ``a``, and reassemble — yields (approximately)
    ``RGSW(m_a * m_b)``.
    """
    if a.matrix_shape() != b.matrix_shape():
        raise ParameterError("internal product shape mismatch")
    rows = [[external_product(a, row) for row in comp] for comp in b.rows]
    return RgswCiphertext(rows=rows, gadget=b.gadget)


def _constant_vec(n: int, value: int) -> np.ndarray:
    out = np.zeros(n, dtype=object)
    out[0] = value
    return out
