"""Hybrid RNS key switching: ModUp, inner product with the key, ModDown.

This is the CKKS ``KeySwitch`` the paper accelerates with its external-
product/MAC units (Section IV-A, IV-E): the basis conversions in ModUp
and ModDown are exactly the fused multiply-accumulate workload, and the
digit structure (``dnum``) matches the decomposition number ``d = 2``.

Correctness sketch (per digit group ``j`` with sub-modulus ``Q_j``):

* ModUp lifts ``[d]_{Q_j}`` to the current basis ``Q_l * P`` — the result
  equals ``d + k Q_j`` for a small ``k`` (approximate BConv).
* The key component encrypts ``P * Q_j_tilde * s_src`` where
  ``Q_j_tilde = (Q/Q_j) * [(Q/Q_j)^{-1}]_{Q_j}``, so
  ``sum_j ModUp_j * key_j`` decrypts to ``P * d * s_src`` modulo every
  current prime (CRT interpolation), plus key noise scaled by the digits.
* ModDown divides by ``P``, leaving ``d * s_src`` with noise shrunk by P.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import ParameterError
from ..math.rns import RnsBasis, RnsPoly, basis_convert_reference, concat_bases
from .context import CkksContext
from .keys import SwitchKey


class KeySwitcher:
    """Applies hybrid switching keys to polynomials at any level.

    ``engine="batched"`` (the default) routes ``switch`` and ``mod_down``
    through :class:`~repro.ckks.keyswitch_engine.CkksKeyswitchEngine` —
    cached BConv plans, one stacked NTT per ModUp, fused uint64 MACs —
    whenever every extended-basis prime fits the fast-modulus bound and
    the operand basis is a prefix of the context's limb chain; otherwise
    it falls back to the scalar path.  ``engine="reference"`` pins the
    frozen scalar path (the pre-engine per-limb object-dtype loops),
    kept bit-identical as the cross-check oracle and benchmark baseline.
    """

    def __init__(self, context: CkksContext, engine: str = "batched"):
        if engine not in ("batched", "reference"):
            raise ParameterError(f"unknown keyswitch engine {engine!r}")
        self.ctx = context
        self.engine_mode = engine
        self._engine = None
        if engine == "batched":
            from .keyswitch_engine import CkksKeyswitchEngine

            try:
                self._engine = CkksKeyswitchEngine.for_context(context)
            except ParameterError:
                self._engine = None  # wide moduli: scalar fallback
        big_q = context.full_basis.product
        self._group_indices = context.digit_groups(context.max_level)
        # Q_j and Q_j_tilde for the *full* modulus; valid at every level
        # because all identities hold prime-wise (see module docstring).
        self._qj = []
        for group in self._group_indices:
            qj = 1
            for idx in group:
                qj *= context.full_basis.moduli[idx]
            self._qj.append(qj)

    @property
    def engine(self) -> Optional["object"]:
        """The batched engine, or ``None`` when running the scalar path."""
        return self._engine

    # -- the main entry point ----------------------------------------------------------

    def switch(self, d: RnsPoly, key: SwitchKey) -> Tuple[RnsPoly, RnsPoly]:
        """Return ``(u0, u1)`` over ``d``'s basis such that
        ``u0 + u1*s_dst ~ d*s_src``."""
        if self._engine is not None and self._engine.handles(d.basis):
            return self._engine.switch(d, key)
        ext, lifted = self.lift_digits(d)
        return self.inner_product_and_down(lifted, key, ext, d.basis)

    def lift_digits(self, d: RnsPoly):
        """ModUp every digit group once; reusable across rotations.

        Hoisting (Halevi-Shoup [28]): the lift is coefficient-wise, so it
        commutes bit-exactly with ring automorphisms — decompose once,
        rotate the lifted digits per target.
        """
        level = len(d.basis) - 1
        ext = concat_bases(d.basis, self.ctx.special_basis)
        d_coeff = d.to_coeff()
        lifted: List[Tuple[int, RnsPoly]] = []
        for j, group in enumerate(self._group_indices):
            present = [i for i in group if i <= level]
            if not present:
                continue
            lifted.append((j, self._mod_up(d_coeff, present, ext)))
        return ext, lifted

    def inner_product_and_down(self, lifted, key: SwitchKey, ext: RnsBasis,
                               target: RnsBasis) -> Tuple[RnsPoly, RnsPoly]:
        """MAC the lifted digits against the key and ModDown."""
        n = lifted[0][1].n
        acc0 = RnsPoly.zero(n, ext, "eval")
        acc1 = RnsPoly.zero(n, ext, "eval")
        restricted = key.restricted(ext)
        for j, lift in lifted:
            b_j, a_j = restricted[j]
            lift_eval = lift.to_eval()
            acc0 = acc0 + lift_eval * b_j
            acc1 = acc1 + lift_eval * a_j
        return self.mod_down(acc0, target), self.mod_down(acc1, target)

    # -- ModUp ------------------------------------------------------------------

    def _mod_up(self, d_coeff: RnsPoly, present: List[int], ext: RnsBasis) -> RnsPoly:
        """Lift the digit-group residues of ``d`` onto the extended basis.

        Residues for primes inside the group are copied verbatim (the lift
        is congruent to ``d`` there); all other limbs come from the
        approximate basis conversion.
        """
        group_basis = RnsBasis([self.ctx.full_basis.moduli[i] for i in present])
        group_poly = RnsPoly(
            d_coeff.n, group_basis, [d_coeff.limbs[i].copy() for i in present], "coeff"
        )
        others = [q for q in ext.moduli if q not in set(group_basis.moduli)]
        converted = basis_convert_reference(group_poly, RnsBasis(others))
        limb_for = {q: limb for q, limb in zip(others, converted.limbs)}
        for q, limb in zip(group_basis.moduli, group_poly.limbs):
            limb_for[q] = limb
        limbs = [limb_for[q] for q in ext.moduli]
        return RnsPoly(d_coeff.n, ext, limbs, "coeff")

    # -- ModDown ----------------------------------------------------------------

    def mod_down(self, u: RnsPoly, target: RnsBasis) -> RnsPoly:
        """Divide a ``Q_l * P`` polynomial by ``P`` and round, landing on ``Q_l``.

        ``(u - BConv([u]_P -> Q_l)) * P^{-1} mod q_i`` — exactly the
        ModDown datapath of the paper's external-product unit.
        """
        n_special = len(self.ctx.special_basis)
        if len(u.basis) != len(target) + n_special:
            raise ParameterError("ModDown basis arithmetic mismatch")
        if self._engine is not None and self._engine.handles(target) \
                and tuple(u.basis.moduli) == tuple(target.moduli) \
                + tuple(self.ctx.special_basis.moduli):
            return self._engine.mod_down_poly(u, target)
        u_coeff = u.to_coeff()
        p_basis = self.ctx.special_basis
        p_part = RnsPoly(u.n, p_basis, u_coeff.limbs[len(target):], "coeff")
        correction = basis_convert_reference(p_part, target)
        p_prod = p_basis.product
        limbs = []
        for idx, (e, q) in enumerate(zip(target.engines, target.moduli)):
            diff = e.sub(u_coeff.limbs[idx], correction.limbs[idx])
            limbs.append(e.mul(diff, e.inv(p_prod % q)))
        return RnsPoly(u.n, target, limbs, "coeff").to_eval()

    # -- helpers ------------------------------------------------------------------

    @staticmethod
    def _restrict_key(poly: RnsPoly, ext: RnsBasis) -> RnsPoly:
        """Drop key limbs whose primes are not in the current extended basis."""
        keep = {q: i for i, q in enumerate(poly.basis.moduli)}
        try:
            limbs = [poly.limbs[keep[q]] for q in ext.moduli]
        except KeyError as exc:  # pragma: no cover - config error
            raise ParameterError(f"key lacks limb for modulus {exc}") from exc
        return RnsPoly(poly.n, ext, limbs, poly.domain)
