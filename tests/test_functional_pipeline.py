"""De-forked programmable bootstrapping: the LUT path through the
unified pipeline, executors, and registry.

The anchor is ``legacy_evaluate`` — a verbatim copy of the pre-refactor
``FunctionalEvaluator.evaluate`` direct path (object-loop extract,
default-engine blind rotate, counter-reporting repack, rescale).  Every
engine combination and every executor must reproduce its output byte
for byte; on top of that, Hypothesis checks the LUT bucket math on
plain integers.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import ParameterError
from repro.math.modular import find_ntt_primes
from repro.math.sampling import Sampler
from repro.params import CkksParams
from repro.profiling import count_ops
from repro.switching import SwitchingKeySet
from repro.switching.cluster_sim import Fault, FaultInjector, SimulatedCluster
from repro.switching.functional import (
    FunctionalEvaluator,
    pbs_extract,
    pbs_extract_reference,
    pbs_extract_vectorized,
    relu_fn,
    sign_fn,
)
from repro.switching.luts import (
    RELU,
    SIGN,
    LutRegistry,
    LutSpec,
    build_functional_lut,
    functional_lut_g,
    quantized,
    threshold,
)
from repro.switching.mp_executor import ProcessPoolFanoutExecutor
from repro.switching.pipeline import BootstrapTrace
from repro.tfhe.blind_rotate import blind_rotate_batch
from repro.tfhe.lwe import LweCiphertext
from repro.tfhe.repack import repack_with_counters


def make_lut_params(n=32):
    primes = find_ntt_primes(30, n, 5)
    return CkksParams(n=n, moduli=primes[:3], special_moduli=primes[3:5],
                      scale_bits=28)


PARAMS = make_lut_params()


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(901))
    sk = gen.secret_key()
    ev = CkksEvaluator(ctx, gen.keyset(sk), Sampler(902))
    swk = SwitchingKeySet.generate(ctx, sk, Sampler(903), base_bits=4,
                                   error_std=0.6)
    ct = ev.drop_to_level(ev.encrypt_coeffs([0.5, -0.9, 0.05, -0.3]), 0)
    return ctx, sk, ev, swk, ct


def legacy_evaluate(ctx, keys, ct, f):
    """The pre-refactor direct path, kept verbatim as the oracle: the
    per-index extract+modswitch loop over object arrays, one default
    blind-rotate call against a freshly built LUT, repack, rescale."""
    n = ctx.n
    two_n = 2 * n
    q = ct.basis.moduli[0]
    c0 = np.asarray(ct.c0.to_coeff().limbs[0], dtype=object)
    c1 = np.asarray(ct.c1.to_coeff().limbs[0], dtype=object)
    lwes = []
    for i in range(n):
        head = c1[: i + 1][::-1]
        tail = c1[i + 1:][::-1]
        a_q = np.concatenate([head, (q - tail) % q]) % q
        a_ms = ((a_q * two_n + q // 2) // q) % two_n
        b_ms = ((int(c0[i]) * two_n + q // 2) // q) % two_n
        lwes.append(LweCiphertext(a=a_ms.astype(np.int64), b=int(b_ms),
                                  q=two_n))
    tv = build_functional_lut(f, n, q, ct.scale, keys.raised_basis)
    accs = blind_rotate_batch(tv, lwes, keys.brk)
    packed, _ = repack_with_counters(accs, keys.auto_keys)
    body = packed.body.rescale_last_limb().to_eval()
    mask = packed.mask[0].rescale_last_limb().to_eval()
    return type(ct)(c0=body, c1=mask, scale=ct.scale)


@pytest.fixture(scope="module")
def oracle(stack):
    ctx, _, _, swk, ct = stack
    return {"sign": legacy_evaluate(ctx, swk, ct, sign_fn),
            "relu": legacy_evaluate(ctx, swk, ct, relu_fn)}


def assert_ct_equal(a, b):
    for ref_l, got_l in zip(a.c0.to_coeff().limbs, b.c0.to_coeff().limbs):
        assert np.asarray(ref_l).tolist() == np.asarray(got_l).tolist()
    for ref_l, got_l in zip(a.c1.to_coeff().limbs, b.c1.to_coeff().limbs):
        assert np.asarray(ref_l).tolist() == np.asarray(got_l).tolist()


ENGINE_COMBOS = [("vectorized", "vectorized"), ("vectorized", "reference"),
                 ("reference", "vectorized"), ("reference", "reference")]


class TestDeForkedBitIdentity:
    """The refactored path equals the pre-refactor oracle byte for byte."""

    @pytest.mark.parametrize("br_engine,rp_engine", ENGINE_COMBOS)
    def test_local_matches_legacy(self, stack, oracle, br_engine, rp_engine):
        ctx, _, _, swk, ct = stack
        fev = FunctionalEvaluator(ctx, swk, blind_rotate_engine=br_engine,
                                  repack_engine=rp_engine)
        assert_ct_equal(oracle["sign"], fev.evaluate(ct, sign_fn))

    @pytest.mark.parametrize("extract_engine", ["vectorized", "reference"])
    def test_extract_engines_identical(self, stack, oracle, extract_engine):
        ctx, _, _, swk, ct = stack
        fev = FunctionalEvaluator(ctx, swk, extract_engine=extract_engine)
        assert_ct_equal(oracle["relu"], fev.evaluate(ct, relu_fn))

    @pytest.mark.parametrize("br_engine,rp_engine", ENGINE_COMBOS)
    def test_cluster_with_faults_matches_legacy(self, stack, oracle,
                                                br_engine, rp_engine):
        """The distributed path — crash + corrupt injected — recovers
        and still equals the oracle."""
        ctx, _, _, swk, ct = stack
        clus = SimulatedCluster(
            ctx, swk, num_nodes=4, blind_rotate_engine=br_engine,
            repack_engine=rp_engine,
            fault_injector=FaultInjector([Fault.crash(1, after=1),
                                          Fault.corrupt_reply(2)]))
        trace = BootstrapTrace()
        assert_ct_equal(oracle["sign"], clus.pbs(ct, sign_fn, trace))
        assert trace.fanout_retries >= 2

    def test_cluster_ships_lut_once_per_node(self, stack):
        ctx, _, _, swk, ct = stack
        clus = SimulatedCluster(ctx, swk, num_nodes=3)
        clus.pbs(ct, sign_fn)
        after_first = clus.comm.link_bytes(0, 1)
        clus.pbs(ct, sign_fn)
        # Second batch re-sends LWEs but NOT the LUT tensor.
        lut_id = clus.pipeline.resolve_lut(sign_fn, ct.scale)
        assert all((nid, lut_id) in clus.executor._lut_shipped
                   for nid in (0, 1, 2))
        assert clus.comm.link_bytes(0, 1) < 2 * after_first

    @pytest.mark.parametrize("br_engine", ["vectorized", "reference"])
    def test_pool_with_midbatch_kill_matches_legacy(self, stack, oracle,
                                                    br_engine):
        """A worker SIGKILLed mid-PBS-batch is respawned and the slice
        re-dispatched; the output is still byte-equal, for both repack
        engines off one pool."""
        ctx, _, _, swk, ct = stack
        with ProcessPoolFanoutExecutor.for_keys(
                ctx, swk, num_workers=2, blind_rotate_engine=br_engine,
                fault_injector=FaultInjector(
                    [Fault.kill_worker(0, after=1)])) as pool:
            trace = BootstrapTrace()
            fev = FunctionalEvaluator(ctx, swk, executor=pool)
            assert_ct_equal(oracle["sign"], fev.evaluate(ct, sign_fn, trace))
            assert trace.worker_respawns == 1
            fev_ref = FunctionalEvaluator(ctx, swk, executor=pool,
                                          repack_engine="reference")
            assert_ct_equal(oracle["relu"], fev_ref.evaluate(ct, relu_fn))

    def test_pool_publishes_lut_into_shared_memory(self, stack):
        ctx, _, _, swk, ct = stack
        with ProcessPoolFanoutExecutor.for_keys(ctx, swk,
                                                num_workers=1) as pool:
            key_only = pool.shared_key_bytes
            fev = FunctionalEvaluator(ctx, swk, executor=pool)
            fev.evaluate(ct, sign_fn)
            assert pool.shared_key_bytes > key_only
            lut_id = fev.pipeline.resolve_lut(sign_fn, ct.scale)
            assert lut_id in pool._lut_blocks
            grew_to = pool.shared_key_bytes
            fev.evaluate(ct, sign_fn)  # same LUT: no second block
            assert pool.shared_key_bytes == grew_to


class TestEngineRouting:
    """`blind_rotate_engine` must actually change the code path — the
    pre-refactor evaluator silently ignored it."""

    def test_reference_engine_runs_scalar_products(self, stack):
        ctx, _, _, swk, ct = stack
        fev = FunctionalEvaluator(ctx, swk, blind_rotate_engine="reference")
        with count_ops() as stats:
            fev.evaluate(ct, sign_fn)
        assert stats.ep_batch_hist and set(stats.ep_batch_hist) == {1}

    def test_vectorized_engine_runs_batched_products(self, stack):
        ctx, _, _, swk, ct = stack
        fev = FunctionalEvaluator(ctx, swk, blind_rotate_engine="vectorized")
        with count_ops() as stats:
            fev.evaluate(ct, sign_fn)
        assert stats.ep_batch_hist and max(stats.ep_batch_hist) > 1


class TestLutCache:
    def test_second_evaluate_hits(self, stack):
        ctx, _, _, swk, ct = stack
        fev = FunctionalEvaluator(ctx, swk)

        def fresh_fn(x):
            return 0.25 * x

        with count_ops() as stats:
            fev.evaluate(ct, fresh_fn)
            first = (stats.lut_cache_hits, stats.lut_cache_misses)
            fev.evaluate(ct, fresh_fn)
        assert first == (0, 1)
        assert (stats.lut_cache_hits, stats.lut_cache_misses) == (1, 1)

    def test_registry_race_builds_once(self):
        basis = find_ntt_primes(30, 32, 3)
        from repro.math.rns import RnsBasis
        reg = LutRegistry(RnsBasis(basis))
        got = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            lut_id = reg.resolve(SIGN, 32, basis[0], 2.0 ** 10)
            got.append(reg.vector(lut_id))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        with count_ops() as stats:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(got) == 8
        assert all(g is got[0] for g in got)  # one shared built tensor
        # The miss is recorded under the registry lock — exactly one
        # thread built (hit increments are lock-free, so not exact-counted).
        assert stats.lut_cache_misses == 1

    def test_switching_vector_shared_across_keyset_methods(self, stack):
        ctx, _, _, swk, _ = stack
        q = ctx.full_basis.moduli[0]
        assert swk.test_vector(ctx.n, q) is swk.test_vector(ctx.n, q)
        assert swk.test_vector(ctx.n, q) is swk.luts.switching_vector(
            ctx.n, q)

    def test_name_alias_rejected(self):
        basis = find_ntt_primes(30, 32, 3)
        from repro.math.rns import RnsBasis
        reg = LutRegistry(RnsBasis(basis))
        reg.spec_for(LutSpec("mine", sign_fn))
        with pytest.raises(ParameterError):
            reg.spec_for(LutSpec("mine", relu_fn))

    def test_unknown_name_and_id_rejected(self):
        basis = find_ntt_primes(30, 32, 3)
        from repro.math.rns import RnsBasis
        reg = LutRegistry(RnsBasis(basis))
        with pytest.raises(ParameterError):
            reg.spec_for("no-such-lut")
        with pytest.raises(ParameterError):
            reg.vector("sign@n32:q7:d0x1.0p+0")

    def test_spec_validation(self):
        with pytest.raises(ParameterError):
            LutSpec("has@at", sign_fn)
        with pytest.raises(ParameterError):
            LutSpec("", sign_fn)
        with pytest.raises(ParameterError):
            quantized(RELU, bits=0)

    def test_workload_names_resolve(self, stack):
        ctx, _, _, swk, ct = stack
        fev = FunctionalEvaluator(ctx, swk)
        by_name = fev.evaluate(ct, "sign")
        by_fn = fev.evaluate(ct, sign_fn)
        assert_ct_equal(by_name, by_fn)

    def test_threshold_and_quantized_mint_stable_names(self):
        assert threshold(0.25).name == threshold(0.25).name
        assert threshold(0.25).name != threshold(0.5).name
        assert quantized(RELU, 4).name == quantized(RELU, 4).name
        assert quantized(RELU, 4).name != quantized(RELU, 3).name


class TestExtractKernels:
    """The vectorized gather+modswitch equals the big-int loop."""

    def _random_limbs(self, n, q, seed):
        rng = np.random.default_rng(seed)
        return (rng.integers(0, q, n, dtype=np.int64),
                rng.integers(0, q, n, dtype=np.int64))

    @pytest.mark.parametrize("n", [8, 32, 64])
    def test_bit_identity(self, n):
        q = find_ntt_primes(30, n, 1)[0]
        c0, c1 = self._random_limbs(n, q, seed=n)
        ref = pbs_extract_reference(c0, c1, n, 2 * n, q)
        vec = pbs_extract_vectorized(c0, c1, n, 2 * n, q)
        for r, v in zip(ref, vec):
            assert r.b == v.b and r.q == v.q
            assert r.a.tolist() == v.a.tolist()

    def test_wide_q_guard(self):
        n = 8
        q = (1 << 62) - 57  # (q-1)*2N overflows uint64
        with pytest.raises(ParameterError):
            pbs_extract_vectorized(np.zeros(n, dtype=object),
                                   np.zeros(n, dtype=object), n, 2 * n, q)

    def test_dispatcher_falls_back_on_wide_q(self, stack, monkeypatch):
        """`pbs_extract(engine="vectorized")` silently takes the
        reference path when q exceeds the uint64 guard."""
        import repro.switching.functional as functional
        ctx, _, ev, _, ct = stack
        calls = []
        real = functional.pbs_extract_reference
        monkeypatch.setattr(functional, "pbs_extract_reference",
                            lambda *a: calls.append(1) or real(*a))
        monkeypatch.setattr(functional, "_U64_MAX", 2 ** 20)
        functional.pbs_extract(ct, engine="vectorized")
        assert calls

    def test_unknown_engine_rejected(self, stack):
        _, _, _, _, ct = stack
        with pytest.raises(ParameterError):
            pbs_extract(ct, engine="quantum")


# -- LUT bucket math properties (pure integers) -----------------------------------
#
# Fixed small parameters; coefficient ranges are chosen so that
# |round(f * Delta)| stays under Q/2 everywhere on the quantised domain
# (|x| <= N/2 * step = 4.0 here) — otherwise the centered-lift decode
# below would alias and the properties would test the wrong thing.

N_PROP = 32
Q_PROP = find_ntt_primes(28, N_PROP, 1)[0]
P_PROP = find_ntt_primes(29, N_PROP, 1)[0]
BIG_QP = Q_PROP * P_PROP
DELTA = float(1 << 24)
STEP = Q_PROP / (2 * N_PROP * DELTA)  # ~0.25 value units per bucket

lin_a = st.floats(min_value=-1.5, max_value=1.5, allow_nan=False)
lin_b = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
# Cubic: |a*x + b*x^3| at the domain edge x ~ 4.0 must stay under
# Q/(2*Delta) ~ 8.0 -> a in (-1, 1), b in (-0.05, 0.05) caps it at 7.2.
cub_a = st.floats(min_value=-1.0, max_value=1.0, allow_nan=False)
cub_b = st.floats(min_value=-0.05, max_value=0.05, allow_nan=False)


def centered(x: int) -> int:
    return x - BIG_QP if x > BIG_QP // 2 else x


def decode_bucket(g, t: int) -> int:
    """Invert the fold: bucket -> round(f * Delta) (an exact integer)."""
    val = centered((g(t % (2 * N_PROP)) * N_PROP) % BIG_QP)
    assert val % P_PROP == 0
    return val // P_PROP


class TestLutMathProperties:
    @given(a=lin_a, b=lin_b, t=st.integers(0, 2 * N_PROP - 1))
    @settings(max_examples=60, deadline=None)
    def test_negacyclic_for_any_function(self, a, b, t):
        """g(t) + g(t + N) = 0 (mod Qp) regardless of f — the ring
        forces anti-periodicity, the builder must honour it."""

        def fn(x):
            return a * x + b

        g = functional_lut_g(fn, N_PROP, Q_PROP, DELTA, P_PROP, BIG_QP)
        assert (g(t) + g(t + N_PROP)) % BIG_QP == 0

    @given(a=lin_a, b=lin_b,
           t_signed=st.integers(-(N_PROP // 2) + 1, N_PROP // 2 - 1))
    @settings(max_examples=60, deadline=None)
    def test_faithful_domain_is_exact(self, a, b, t_signed):
        """Inside |t| < N/2 the bucket holds exactly
        round(f(t_signed * step) * Delta)."""

        def fn(x):
            return a * x + b

        g = functional_lut_g(fn, N_PROP, Q_PROP, DELTA, P_PROP, BIG_QP)
        expected = int(round(fn(t_signed * STEP) * DELTA))
        assert decode_bucket(g, t_signed % (2 * N_PROP)) == expected

    @given(a=cub_a, b=cub_b)
    @settings(max_examples=60, deadline=None)
    def test_odd_function_edge_is_consistent(self, a, b):
        """For odd f the anti-periodic image at the domain edge t = N/2
        agrees with f itself: -value(-N/2) == value(N/2)."""

        def fn(x):
            return a * x + b * x ** 3

        g = functional_lut_g(fn, N_PROP, Q_PROP, DELTA, P_PROP, BIG_QP)
        expected = int(round(fn((N_PROP // 2) * STEP) * DELTA))
        assert decode_bucket(g, N_PROP // 2) == expected

    @given(c=st.floats(min_value=0.5, max_value=4.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_non_odd_function_edge_clamps(self, c):
        """For a constant (non-odd) f the edge bucket holds the
        anti-periodic image -round(c * Delta), not f — the documented
        clamp behaviour."""

        def fn(x):
            return c

        g = functional_lut_g(fn, N_PROP, Q_PROP, DELTA, P_PROP, BIG_QP)
        assert decode_bucket(g, N_PROP // 2) == -int(round(c * DELTA))

    @given(slope=st.floats(min_value=0.1, max_value=1.5, allow_nan=False),
           x=st.floats(min_value=-3.5, max_value=3.5, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_quantisation_error_bound(self, slope, x):
        """For Lipschitz-L f, the value decoded from x's nearest bucket
        is within L*step/2 + 1/(2*Delta) of f(x)."""

        def fn(x_):
            return slope * x_

        g = functional_lut_g(fn, N_PROP, Q_PROP, DELTA, P_PROP, BIG_QP)
        t = int(round(x / STEP))
        decoded = decode_bucket(g, t % (2 * N_PROP)) / DELTA
        bound = slope * STEP / 2 + 1 / (2 * DELTA)
        assert abs(fn(x) - decoded) <= bound + 1e-12
