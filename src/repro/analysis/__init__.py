"""Table generators regenerating the paper's evaluation section."""

from .opcounts import (
    ConventionalBootstrapOps,
    SchemeSwitchBootstrapOps,
    bootstrap_op_comparison,
)
from .tables import (
    format_table,
    heap_t_mult_a_slot,
    key_size_table,
    table2_resources,
    table3_basic_ops,
    table4_ntt,
    table5_bootstrap,
    table6_lr,
    table7_resnet,
    table8_ablation,
)

__all__ = [
    "ConventionalBootstrapOps",
    "SchemeSwitchBootstrapOps",
    "bootstrap_op_comparison",
    "format_table",
    "heap_t_mult_a_slot",
    "key_size_table",
    "table2_resources",
    "table3_basic_ops",
    "table4_ntt",
    "table5_bootstrap",
    "table6_lr",
    "table7_resnet",
    "table8_ablation",
]
