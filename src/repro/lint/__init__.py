"""heaplint: AST-based crypto-invariant checks for this repository.

The hot paths bought their speedups with tricks whose correctness rests
on invariants Python never checks — uint64 accumulation bounds, eval-
versus coefficient-domain operand discipline, fixed-width versus
object-dtype arrays, secret-key hygiene, validated parameter
construction.  This package encodes those invariants as static rules
over the repo's own AST (stdlib :mod:`ast` only, no third-party
dependencies) with per-rule codes, an inline suppression syntax and a
checked-in baseline for pre-existing findings.

Run it as ``python -m repro.lint src tests benchmarks``; see
``DESIGN.md`` section 8 for the rule catalogue and workflow.
"""

from __future__ import annotations

from .core import (
    BAD_SUPPRESSION_CODE,
    Baseline,
    FileContext,
    Finding,
    Rule,
    all_rules,
    analyze_file,
    analyze_paths,
    analyze_source,
    iter_python_files,
)
from .rules import (
    HotPathObjectDtypeRule,
    LazyBoundProofRule,
    NttDomainDisciplineRule,
    ParamConstructionRule,
    SecretHygieneRule,
)

__all__ = [
    "BAD_SUPPRESSION_CODE",
    "Baseline",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_file",
    "analyze_paths",
    "analyze_source",
    "iter_python_files",
    "HotPathObjectDtypeRule",
    "LazyBoundProofRule",
    "NttDomainDisciplineRule",
    "ParamConstructionRule",
    "SecretHygieneRule",
]
