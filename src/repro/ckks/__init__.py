"""The RNS-CKKS scheme: encoder, keys, evaluator, and bootstrapping."""

from .bootstrap import (
    ConventionalBootstrapConfig,
    ConventionalBootstrapper,
    ConventionalBootstrapTrace,
    make_bootstrappable_toy_params,
)
from .chebyshev import ChebyshevApprox, eval_chebyshev
from .ciphertext import CkksCiphertext
from .context import CkksContext
from .encoder import CkksEncoder
from .evaluator import CkksEvaluator
from .keys import CkksKeyGenerator, KeySet, PublicKey, SecretKey, SwitchKey
from .keyswitch import KeySwitcher
from .keyswitch_engine import CkksKeyswitchEngine
from .linear_transform import apply_conjugation_pair, apply_matrix, required_rotations

__all__ = [
    "CkksCiphertext",
    "CkksContext",
    "CkksEncoder",
    "CkksEvaluator",
    "CkksKeyGenerator",
    "KeySet",
    "PublicKey",
    "SecretKey",
    "SwitchKey",
    "KeySwitcher",
    "CkksKeyswitchEngine",
    "ConventionalBootstrapConfig",
    "ConventionalBootstrapper",
    "ConventionalBootstrapTrace",
    "make_bootstrappable_toy_params",
    "ChebyshevApprox",
    "eval_chebyshev",
    "apply_conjugation_pair",
    "apply_matrix",
    "required_rotations",
]
