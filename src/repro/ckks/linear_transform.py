"""Homomorphic slot-space linear transforms with baby-step/giant-step.

The linear-transformation steps of conventional CKKS bootstrapping
(CoeffToSlot / SlotToCoeff, paper Fig. 1a) are matrix-vector products in
slot space, realised as a sum of rotated ciphertexts multiplied by
plaintext diagonals.  The BSGS grouping (Halevi-Shoup [28], used by every
bootstrapping implementation the paper cites) reduces ``n`` rotations to
``~2*sqrt(n)`` at the cost of pre-rotating the diagonals.

Conventions (matching :meth:`CkksEvaluator.rotate`): ``rotate(ct, r)``
maps slot ``k`` to old slot ``k + r``, so for ``w = M z``::

    w_k = sum_r M[k, (k+r) mod n] * z_{(k+r) mod n}
        = sum_r diag_r(M)[k] * rotate(z, r)[k]
"""

from __future__ import annotations

import math
from typing import List, Set

import numpy as np

from ..errors import ParameterError
from .ciphertext import CkksCiphertext
from .evaluator import CkksEvaluator


def matrix_diagonals(m: np.ndarray) -> List[np.ndarray]:
    """Generalised diagonals ``diag_r[k] = M[k, (k+r) mod n]``."""
    n = m.shape[0]
    if m.shape != (n, n):
        raise ParameterError("matrix must be square")
    idx = np.arange(n)
    return [m[idx, (idx + r) % n] for r in range(n)]


def bsgs_split(n: int) -> int:
    """Baby-step count ``n1 ~ sqrt(n)`` (a divisor-friendly power of two)."""
    return 1 << int(math.ceil(math.log2(max(1, math.isqrt(n)))))


def required_rotations(n: int) -> List[int]:
    """Rotation amounts a BSGS transform needs: babies + giants."""
    n1 = bsgs_split(n)
    n2 = -(-n // n1)
    rots: Set[int] = set()
    for i in range(1, n1):
        rots.add(i)
    for j in range(1, n2):
        rots.add((j * n1) % n)
    rots.discard(0)
    return sorted(rots)


def apply_matrix(ev: CkksEvaluator, ct: CkksCiphertext,
                 m: np.ndarray) -> CkksCiphertext:
    """``slots(out) = M @ slots(ct)`` — consumes one level.

    BSGS: ``M z = sum_j rot_{j*n1}( sum_i rot_{-j*n1}(d_{j*n1+i}) * rot_i(z) )``.
    """
    n = ev.ctx.slots
    if m.shape != (n, n):
        raise ParameterError(f"matrix must be {n}x{n}")
    diags = matrix_diagonals(np.asarray(m, dtype=np.complex128))
    n1 = bsgs_split(n)
    n2 = -(-n // n1)
    # Baby rotations of the input (rot_0 = identity), hoisted: one ModUp
    # serves every baby step (Halevi-Shoup; see CkksEvaluator.rotate_hoisted).
    # Only baby steps that some non-zero diagonal actually consumes are
    # rotated — sparse transform matrices skip the rest of the set.
    nonzero = [r for r in range(n) if np.max(np.abs(diags[r])) >= 1e-14]
    needed = sorted({r % n1 for r in nonzero} - {0})
    babies = {0: ct}
    if needed:
        babies.update(ev.rotate_hoisted(ct, needed))
    out = None
    delta = ev.ctx.params.scale
    for j in range(n2):
        inner = None
        for i in range(n1):
            r = j * n1 + i
            if r >= n:
                break
            d = diags[r]
            if np.max(np.abs(d)) < 1e-14:
                continue
            # Pre-rotate the diagonal so it can be applied before the
            # giant rotation: rot_{j n1}(d_pre * x) = d * rot_{j n1}(x).
            d_pre = np.roll(d, j * n1)
            term = ev.mul_plain(babies[i], d_pre, scale=delta)
            inner = term if inner is None else ev.add(inner, term)
        if inner is None:
            continue
        rotated = ev.rotate(inner, (j * n1) % n) if (j * n1) % n else inner
        out = rotated if out is None else ev.add(out, rotated)
    if out is None:
        # Zero matrix: return an encryption of zero at the right level.
        return ev.rescale(ev.mul_plain(ct, np.zeros(n)))
    return ev.rescale(out)


def apply_conjugation_pair(ev: CkksEvaluator, ct: CkksCiphertext,
                           m1: np.ndarray, m2: np.ndarray) -> CkksCiphertext:
    """``slots(out) = M1 @ z + M2 @ conj(z)`` — the general R-linear map
    needed by CoeffToSlot/SlotToCoeff (conjugation is not C-linear, so
    both matrices are required)."""
    conj = ev.conjugate(ct)
    lhs = apply_matrix(ev, ct, m1)
    rhs = apply_matrix(ev, conj, m2)
    return ev.add(lhs, rhs)
