"""Residue number system (RNS) machinery for multi-limb CKKS arithmetic.

The CKKS ciphertext modulus ``Q = prod(q_i)`` is far wider than a machine
word, so polynomials are stored as a stack of *limbs*: one residue
polynomial per prime ``q_i`` (paper Section II-A).  This module provides

* :class:`RnsBasis` — an ordered set of NTT-friendly primes with cached
  CRT constants;
* :class:`RnsPoly` — a stack of limb polynomials with vectorised
  arithmetic, per-limb NTT domain tracking, limb dropping (Rescale) and
  limb extension (ModUp); and
* :func:`basis_convert` — the approximate fast basis conversion
  (HPS-style) that the paper's external-product unit executes during
  ``ModUp``/``ModDown`` in the hybrid key switch.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

import numpy as np

from ..errors import ParameterError
from .automorphism import get_automorphism_perm
from .modular import ModulusEngine, crt_compose
from .ntt import get_ntt_engine

COEFF = "coeff"
EVAL = "eval"


class RnsBasis:
    """An ordered list of distinct primes ``q_0, ..., q_{L-1}``."""

    def __init__(self, moduli: Sequence[int]):
        moduli = [int(q) for q in moduli]
        if len(set(moduli)) != len(moduli):
            raise ParameterError("RNS moduli must be distinct")
        if not moduli:
            raise ParameterError("RNS basis must be non-empty")
        self.moduli: List[int] = moduli
        self.engines = [ModulusEngine(q) for q in moduli]

    def __len__(self) -> int:
        return len(self.moduli)

    def __iter__(self):
        return iter(self.moduli)

    def __getitem__(self, i):
        return self.moduli[i]

    @property
    def product(self) -> int:
        prod = 1
        for q in self.moduli:
            prod *= q
        return prod

    def prefix(self, count: int) -> "RnsBasis":
        return RnsBasis(self.moduli[:count])

    def __eq__(self, other) -> bool:
        return isinstance(other, RnsBasis) and self.moduli == other.moduli

    def __repr__(self) -> str:  # pragma: no cover
        bits = [q.bit_length() for q in self.moduli]
        return f"RnsBasis(L={len(self)}, bits={bits})"


class RnsPoly:
    """A polynomial in ``R_Q`` stored limb-wise.

    ``limbs[i]`` is the residue vector modulo ``basis[i]``; every limb is
    in the same domain (all-coeff or all-eval), tracked by ``domain``.
    """

    __slots__ = ("n", "basis", "limbs", "domain")

    def __init__(self, n: int, basis: RnsBasis, limbs: List[np.ndarray], domain: str = COEFF):
        if len(limbs) != len(basis):
            raise ParameterError("limb count does not match basis size")
        self.n = n
        self.basis = basis
        self.limbs = limbs
        self.domain = domain

    # -- constructors -------------------------------------------------------------

    @classmethod
    def zero(cls, n: int, basis: RnsBasis, domain: str = COEFF) -> "RnsPoly":
        return cls(n, basis, [e.zeros(n) for e in basis.engines], domain)

    @classmethod
    def from_int_coeffs(cls, n: int, basis: RnsBasis, coeffs: Iterable[int]) -> "RnsPoly":
        """Reduce a vector of (possibly huge / signed) integers limb-wise."""
        coeffs = np.asarray(list(coeffs) if not isinstance(coeffs, np.ndarray) else coeffs,
                            dtype=object)
        if coeffs.shape != (n,):
            raise ParameterError(f"expected {n} coefficients, got {coeffs.shape}")
        limbs = [e.asarray(coeffs) for e in basis.engines]
        return cls(n, basis, limbs, COEFF)

    # -- domain management -----------------------------------------------------------

    def to_eval(self) -> "RnsPoly":
        if self.domain == EVAL:
            return self
        limbs = [
            get_ntt_engine(self.n, q).forward(limb)
            for q, limb in zip(self.basis.moduli, self.limbs)
        ]
        return RnsPoly(self.n, self.basis, limbs, EVAL)

    def to_coeff(self) -> "RnsPoly":
        if self.domain == COEFF:
            return self
        limbs = [
            get_ntt_engine(self.n, q).inverse(limb)
            for q, limb in zip(self.basis.moduli, self.limbs)
        ]
        return RnsPoly(self.n, self.basis, limbs, COEFF)

    # -- arithmetic -----------------------------------------------------------------

    def _check(self, other: "RnsPoly") -> None:
        if self.n != other.n or self.basis.moduli != other.basis.moduli:
            raise ParameterError("RNS poly mismatch (n or basis)")

    def _aligned(self, other: "RnsPoly"):
        self._check(other)
        if self.domain == other.domain:
            return self, other, self.domain
        return self.to_coeff(), other.to_coeff(), COEFF

    def __add__(self, other: "RnsPoly") -> "RnsPoly":
        a, b, dom = self._aligned(other)
        limbs = [e.add(x, y) for e, x, y in zip(self.basis.engines, a.limbs, b.limbs)]
        return RnsPoly(self.n, self.basis, limbs, dom)

    def __sub__(self, other: "RnsPoly") -> "RnsPoly":
        a, b, dom = self._aligned(other)
        limbs = [e.sub(x, y) for e, x, y in zip(self.basis.engines, a.limbs, b.limbs)]
        return RnsPoly(self.n, self.basis, limbs, dom)

    def __neg__(self) -> "RnsPoly":
        limbs = [e.neg(x) for e, x in zip(self.basis.engines, self.limbs)]
        return RnsPoly(self.n, self.basis, limbs, self.domain)

    def __mul__(self, other) -> "RnsPoly":
        if isinstance(other, (int, np.integer)):
            limbs = [
                e.mul(x, int(other) % e.q) for e, x in zip(self.basis.engines, self.limbs)
            ]
            return RnsPoly(self.n, self.basis, limbs, self.domain)
        self._check(other)
        a, b = self.to_eval(), other.to_eval()
        from ..profiling import record_mul

        record_mul(self.n * len(self.basis))
        limbs = [e.mul(x, y) for e, x, y in zip(self.basis.engines, a.limbs, b.limbs)]
        return RnsPoly(self.n, self.basis, limbs, EVAL)

    __rmul__ = __mul__

    def automorphism(self, t: int) -> "RnsPoly":
        """Apply ``X -> X^t`` limb-wise (used by Rotate/Conjugate)."""
        src_poly = self.to_coeff()
        n = self.n
        perm = get_automorphism_perm(n, t)
        limbs = []
        for e, limb in zip(self.basis.engines, src_poly.limbs):
            picked = limb[perm.src]
            limbs.append(np.where(perm.src_flip, e.neg(picked), picked))
        return RnsPoly(n, self.basis, limbs, COEFF)

    # -- limb management (Rescale / level handling) ------------------------------------

    def drop_last_limb(self) -> "RnsPoly":
        """Forget the last limb (basis shrink without value correction)."""
        if len(self.basis) == 1:
            raise ParameterError("cannot drop the last remaining limb")
        return RnsPoly(self.n, self.basis.prefix(len(self.basis) - 1),
                       self.limbs[:-1], self.domain)

    def rescale_last_limb(self) -> "RnsPoly":
        """Exact RNS rescale: divide by the last prime ``q_l`` and round.

        Standard full-RNS trick: for each remaining limb ``q_i`` compute
        ``(x_i - x_l) * q_l^{-1} mod q_i``.  Requires coefficient domain
        for the cross-limb subtraction of ``x_l``.
        """
        if len(self.basis) == 1:
            raise ParameterError("cannot rescale a single-limb polynomial")
        src = self.to_coeff()
        q_last = self.basis.moduli[-1]
        x_last = src.limbs[-1]
        new_basis = self.basis.prefix(len(self.basis) - 1)
        limbs = []
        for e, limb in zip(new_basis.engines, src.limbs[:-1]):
            diff = e.sub(limb, e.reduce(x_last))
            limbs.append(e.mul(diff, e.inv(q_last)))
        return RnsPoly(self.n, new_basis, limbs, COEFF)

    # -- integer views -------------------------------------------------------------------

    def to_int_coeffs(self) -> np.ndarray:
        """CRT-compose into big-int coefficients in ``[0, Q)`` (object array)."""
        src = self.to_coeff()
        stack = np.stack([np.asarray(limb, dtype=object) for limb in src.limbs])
        return crt_compose(stack, self.basis.moduli)

    def to_centered_int_coeffs(self) -> np.ndarray:
        """CRT-compose into centred big-int coefficients in ``(-Q/2, Q/2]``."""
        vals = self.to_int_coeffs()
        big_q = self.basis.product
        half = big_q // 2
        return np.where(vals > half, vals - big_q, vals)

    def copy(self) -> "RnsPoly":
        return RnsPoly(self.n, self.basis, [limb.copy() for limb in self.limbs], self.domain)

    def __eq__(self, other) -> bool:
        if not isinstance(other, RnsPoly):
            return NotImplemented
        if self.n != other.n or self.basis.moduli != other.basis.moduli:
            return False
        a, b = self.to_coeff(), other.to_coeff()
        return all(np.array_equal(x, y) for x, y in zip(a.limbs, b.limbs))

    def __repr__(self) -> str:  # pragma: no cover
        return f"RnsPoly(n={self.n}, L={len(self.basis)}, domain={self.domain})"


def basis_convert(poly: RnsPoly, target: RnsBasis) -> RnsPoly:
    """Approximate fast basis conversion (HPS BConv).

    Converts the residues of ``poly`` from basis ``B = {q_i}`` to a
    *disjoint* basis ``C = {p_j}`` without CRT reconstruction:

    ``y_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i) mod p_j``

    The result may differ from the exact value by a small multiple of
    ``Q`` (the well-known approximation error), which the hybrid key
    switch tolerates; tests bound this error explicitly.  This is exactly
    the MAC-unit workload described for ModUp/ModDown in Section IV-A.
    """
    src = poly.to_coeff()
    b_moduli = src.basis.moduli
    big_q = src.basis.product
    # [x_i * q_i_star^{-1}]_{q_i}
    scaled = []
    for e, limb in zip(src.basis.engines, src.limbs):
        qi_star = big_q // e.q
        qi_tilde = e.inv(qi_star % e.q)
        scaled.append(e.mul(limb, qi_tilde))
    out_limbs = []
    for e_out in target.engines:
        acc = e_out.zeros(src.n)
        for qi, s in zip(b_moduli, scaled):
            factor = (big_q // qi) % e_out.q
            acc = e_out.mac(acc, np.asarray(s, dtype=object) % e_out.q, factor)
        out_limbs.append(e_out.reduce(acc))
    return RnsPoly(src.n, target, out_limbs, COEFF)


def concat_bases(a: RnsBasis, b: RnsBasis) -> RnsBasis:
    return RnsBasis(list(a.moduli) + list(b.moduli))
