"""Batched hybrid-keyswitch engine vs the scalar reference (ISSUE 4 gate).

Two workloads, both routed through ``CkksEvaluator``:

* **Hoisted BSGS microbench** — one ciphertext, the whole baby-step
  rotation set 1..31 hoisted through a single ModUp at N = 2^10 over
  the full toy level chain.  This is the kernel the BSGS
  ``apply_matrix`` and CoeffToSlot/SlotToCoeff spend their time in.
  Acceptance gate: the batched engine is >= 4x faster than
  ``keyswitch_engine="reference"``.
* **Conventional bootstrap** — end-to-end ``ConventionalBootstrapper``
  at toy parameters (n = 64, 17 levels), where keyswitching is one cost
  among encode/rescale/NTT work it does not control.  Acceptance gate:
  >= 2x wall-clock.

Methodology mirrors ``bench_repack.py``: each configuration runs once
untimed first — that pass doubles as the bit-identity check (both
engines must agree on every limb before a timing counts) and as warmup
so one-time costs (BConv plan build, key eval-tensor lift, stacked NTT
tables) do not distort either side.  Each side is then timed
interleaved via the shared ``_timing.time_interleaved`` loop and the
minimum is reported, into ``BENCH_keyswitch.json`` at the repo root.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_keyswitch.py -q``
(excluded from tier-1 ``testpaths``), or directly as a script.
``python benchmarks/bench_keyswitch.py --quick`` runs the CI variant:
bit-identity of the hoisted rotation set at N = 2^6 and 2^7, no timing
gate.
"""

import os
import sys

import numpy as np

from repro.ckks.bootstrap import (
    ConventionalBootstrapConfig,
    ConventionalBootstrapper,
    make_bootstrappable_toy_params,
)
from repro.ckks.context import CkksContext
from repro.ckks.evaluator import CkksEvaluator
from repro.ckks.keys import CkksKeyGenerator
from repro.math.sampling import Sampler
from repro.params import make_toy_params

try:
    from conftest import emit
except ImportError:  # running as a plain script, not under pytest
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    from conftest import emit

from _timing import time_interleaved, write_bench_json

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
JSON_PATH = os.path.join(REPO_ROOT, "BENCH_keyswitch.json")


def _assert_same_ct(a, b):
    assert a.c0 == b.c0 and a.c1 == b.c1 and a.scale == b.scale


def _hoisted_setup(n, limbs, special, rotations):
    p = make_toy_params(n=n, limbs=limbs, limb_bits=28, special_limbs=special)
    ctx = CkksContext(p.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(seed=1234))
    sk = gen.secret_key()
    keys = gen.keyset(sk, rotations=rotations)
    ev_bat = CkksEvaluator(ctx, keys, sampler=Sampler(seed=7))
    ev_ref = CkksEvaluator(ctx, keys, sampler=Sampler(seed=7),
                           keyswitch_engine="reference")
    ct = ev_bat.encrypt(np.linspace(-1, 1, ctx.slots))
    return ev_bat, ev_ref, ct


def _bench_hoisted(ring_sizes, results, gate):
    for n in ring_sizes:
        rotations = list(range(1, 32))
        ev_bat, ev_ref, ct = _hoisted_setup(n, limbs=6, special=3,
                                            rotations=rotations)
        # Warmup + correctness: the whole hoisted rotation set must be
        # bit-identical between engines before any timing counts.
        out_bat = ev_bat.rotate_hoisted(ct, rotations)
        out_ref = ev_ref.rotate_hoisted(ct, rotations)
        for r in rotations:
            _assert_same_ct(out_bat[r], out_ref[r])
        bat_s, ref_s = time_interleaved(
            lambda: ev_bat.rotate_hoisted(ct, rotations),
            lambda: ev_ref.rotate_hoisted(ct, rotations))
        results.append({
            "workload": "hoisted_bsgs",
            "n": n,
            "rotations": len(rotations),
            "scalar_s": round(ref_s, 6),
            "batched_s": round(bat_s, 6),
            "speedup": round(ref_s / bat_s, 2),
        })
    if gate:
        top = next(r for r in results if r["workload"] == "hoisted_bsgs"
                   and r["n"] == max(ring_sizes))
        assert top["speedup"] >= 4.0, (
            f"keyswitch engine only {top['speedup']}x on hoisted BSGS "
            f"at N={top['n']}")


def _bootstrap_setup(n, levels):
    params = make_bootstrappable_toy_params(n=n, levels=levels)
    ctx = CkksContext(params, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(seed=1234))
    sk = gen.secret_key()
    rots = ConventionalBootstrapper.required_rotation_indices(ctx)
    keys = gen.keyset(sk, rotations=rots, conjugate=True)
    cfg = ConventionalBootstrapConfig()
    ev_bat = CkksEvaluator(ctx, keys, scale_rtol=5e-2)
    ev_ref = CkksEvaluator(ctx, keys, scale_rtol=5e-2,
                           keyswitch_engine="reference")
    boot_bat = ConventionalBootstrapper(ctx, keys, cfg, evaluator=ev_bat)
    boot_ref = ConventionalBootstrapper(ctx, keys, cfg, evaluator=ev_ref)
    vals = np.linspace(-0.4, 0.4, ctx.slots)
    ct0 = ev_bat.drop_to_level(ev_bat.encrypt(vals), 0)
    return boot_bat, boot_ref, ct0


def _bench_bootstrap(n, levels, results, gate):
    boot_bat, boot_ref, ct0 = _bootstrap_setup(n, levels)
    # Warmup + correctness: bootstrap output must be bit-identical.
    out_bat = boot_bat.bootstrap(ct0)
    out_ref = boot_ref.bootstrap(ct0)
    _assert_same_ct(out_bat, out_ref)
    bat_s, ref_s = time_interleaved(lambda: boot_bat.bootstrap(ct0),
                                    lambda: boot_ref.bootstrap(ct0))
    results.append({
        "workload": "conventional_bootstrap",
        "n": n,
        "levels": levels,
        "scalar_s": round(ref_s, 6),
        "batched_s": round(bat_s, 6),
        "speedup": round(ref_s / bat_s, 2),
    })
    if gate:
        top = results[-1]
        assert top["speedup"] >= 2.0, (
            f"keyswitch engine only {top['speedup']}x on conventional "
            f"bootstrap at n={n}")


def _report(results):
    write_bench_json(JSON_PATH, "keyswitch", results)
    lines = ["Keyswitch: scalar reference vs batched hybrid engine",
             f"{'workload':>22} {'N':>6} {'scalar (s)':>12} "
             f"{'batched (s)':>12} {'speedup':>9}"]
    for r in results:
        lines.append(f"{r['workload']:>22} {r['n']:>6} "
                     f"{r['scalar_s']:>12.4f} {r['batched_s']:>12.4f} "
                     f"{r['speedup']:>8.1f}x")
    emit("keyswitch", "\n".join(lines))


def _run_quick():
    # CI variant: small rings and a small bootstrap, bit-identity still
    # enforced in the warmup pass of each workload, no timing gate
    # (container timings are too noisy to gate every pull request on).
    results = []
    _bench_hoisted((1 << 6, 1 << 7), results, gate=False)
    _bench_bootstrap(32, 17, results, gate=False)
    _report(results)
    return results


def _run_full():
    results = []
    _bench_hoisted((1 << 8, 1 << 10), results, gate=True)
    _bench_bootstrap(64, 17, results, gate=True)
    _report(results)
    return results


def bench_keyswitch_engines():
    _run_full()


if __name__ == "__main__":
    if "--quick" in sys.argv[1:]:
        _run_quick()
    else:
        _run_full()
    print("bench_keyswitch: OK")
