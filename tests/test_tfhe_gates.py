"""Tests for standalone TFHE: PBS and bootstrapped boolean gates
(paper Section VII-A)."""

import itertools

import pytest

from repro.math.sampling import Sampler
from repro.params import make_toy_params
from repro.tfhe.gates import TfheScheme

PARAMS = make_toy_params(n=32, limbs=1, limb_bits=28, n_t=16,
                         decomp_base_bits=7, decomp_digits=4, special_limbs=1)


@pytest.fixture(scope="module")
def scheme():
    sch = TfheScheme(PARAMS.tfhe, Sampler(2024))
    return sch, sch.keygen()


class TestEncryption:
    def test_bit_roundtrip(self, scheme):
        sch, keys = scheme
        for bit in (True, False):
            assert sch.decrypt_bit(sch.encrypt_bit(bit, keys), keys) == bit


class TestBootstrapSign:
    def test_refresh_preserves_bit(self, scheme):
        sch, keys = scheme
        for bit in (True, False):
            ct = sch.encrypt_bit(bit, keys)
            refreshed = sch.bootstrap_sign(ct, keys)
            assert sch.decrypt_bit(refreshed, keys) == bit


class TestGates:
    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_nand(self, scheme, a, b):
        sch, keys = scheme
        out = sch.nand(sch.encrypt_bit(a, keys), sch.encrypt_bit(b, keys), keys)
        assert sch.decrypt_bit(out, keys) == (not (a and b))

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_and(self, scheme, a, b):
        sch, keys = scheme
        out = sch.and_(sch.encrypt_bit(a, keys), sch.encrypt_bit(b, keys), keys)
        assert sch.decrypt_bit(out, keys) == (a and b)

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_or(self, scheme, a, b):
        sch, keys = scheme
        out = sch.or_(sch.encrypt_bit(a, keys), sch.encrypt_bit(b, keys), keys)
        assert sch.decrypt_bit(out, keys) == (a or b)

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_xor(self, scheme, a, b):
        sch, keys = scheme
        out = sch.xor_(sch.encrypt_bit(a, keys), sch.encrypt_bit(b, keys), keys)
        assert sch.decrypt_bit(out, keys) == (a != b)

    def test_not_is_free(self, scheme):
        sch, keys = scheme
        for bit in (True, False):
            assert sch.decrypt_bit(sch.not_(sch.encrypt_bit(bit, keys)), keys) == (not bit)

    @pytest.mark.parametrize("sel", [False, True])
    def test_mux(self, scheme, sel):
        sch, keys = scheme
        out = sch.mux(sch.encrypt_bit(sel, keys),
                      sch.encrypt_bit(True, keys),
                      sch.encrypt_bit(False, keys), keys)
        assert sch.decrypt_bit(out, keys) == sel

    def test_gate_chain(self, scheme):
        """A small circuit: full-adder carry = (a AND b) OR (c AND (a XOR b))."""
        sch, keys = scheme
        for a, b, c in itertools.product([False, True], repeat=3):
            ea, eb, ec = (sch.encrypt_bit(v, keys) for v in (a, b, c))
            carry = sch.or_(sch.and_(ea, eb, keys),
                            sch.and_(ec, sch.xor_(ea, eb, keys), keys), keys)
            assert sch.decrypt_bit(carry, keys) == ((a and b) or (c and (a != b)))


class TestDerivedGates:
    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_nor(self, scheme, a, b):
        sch, keys = scheme
        out = sch.nor(sch.encrypt_bit(a, keys), sch.encrypt_bit(b, keys), keys)
        assert sch.decrypt_bit(out, keys) == (not (a or b))

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True], repeat=2)))
    def test_xnor(self, scheme, a, b):
        sch, keys = scheme
        out = sch.xnor(sch.encrypt_bit(a, keys), sch.encrypt_bit(b, keys), keys)
        assert sch.decrypt_bit(out, keys) == (a == b)

    def test_double_negation(self, scheme):
        sch, keys = scheme
        ct = sch.encrypt_bit(True, keys)
        assert sch.decrypt_bit(sch.not_(sch.not_(ct)), keys) is True
