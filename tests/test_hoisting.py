"""Tests for hoisted rotations (shared ModUp across a rotation set)."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksEvaluator, CkksKeyGenerator
from repro.errors import KeyError_
from repro.math.sampling import Sampler
from repro.params import make_toy_params

PARAMS = make_toy_params(n=32, limbs=4, limb_bits=28, scale_bits=26)


@pytest.fixture(scope="module")
def stack():
    ctx = CkksContext(PARAMS.ckks, dnum=2)
    gen = CkksKeyGenerator(ctx, Sampler(601))
    sk = gen.secret_key()
    keys = gen.keyset(sk, rotations=[1, 2, 3, 5])
    ev = CkksEvaluator(ctx, keys, Sampler(602))
    return ctx, sk, ev


class TestHoistedRotations:
    def test_matches_plain_rotations(self, stack):
        ctx, sk, ev = stack
        z = np.random.default_rng(0).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z)
        hoisted = ev.rotate_hoisted(ct, [1, 2, 5])
        for r, out in hoisted.items():
            want = ev.decrypt(ev.rotate(ct, r), sk).real
            got = ev.decrypt(out, sk).real
            assert np.allclose(got, want, atol=1e-3), r
            assert np.allclose(got, np.roll(z, -r), atol=1e-3), r

    def test_single_rotation(self, stack):
        ctx, sk, ev = stack
        z = np.random.default_rng(1).uniform(-1, 1, ctx.slots)
        out = ev.rotate_hoisted(ev.encrypt(z), [3])[3]
        assert np.allclose(ev.decrypt(out, sk).real, np.roll(z, -3), atol=1e-3)

    def test_at_lower_level(self, stack):
        ctx, sk, ev = stack
        z = np.random.default_rng(2).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z, level=1)
        out = ev.rotate_hoisted(ct, [1, 2])
        for r, o in out.items():
            assert o.level == 1
            assert np.allclose(ev.decrypt(o, sk).real, np.roll(z, -r), atol=1e-3)

    def test_missing_key_raises(self, stack):
        ctx, sk, ev = stack
        ct = ev.encrypt(np.zeros(ctx.slots))
        with pytest.raises(KeyError_):
            ev.rotate_hoisted(ct, [7])

    def test_hoisted_outputs_usable_downstream(self, stack):
        """BSGS-style usage: sum of hoisted rotations."""
        ctx, sk, ev = stack
        z = np.random.default_rng(3).uniform(-1, 1, ctx.slots)
        ct = ev.encrypt(z)
        outs = ev.rotate_hoisted(ct, [1, 2])
        acc = ev.add(outs[1], outs[2])
        want = np.roll(z, -1) + np.roll(z, -2)
        assert np.allclose(ev.decrypt(acc, sk).real, want, atol=2e-3)
